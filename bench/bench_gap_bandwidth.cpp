// FIG-2: NVM-only slowdown vs DRAM-only under reduced NVM bandwidth
// (1/2, 1/4, 1/8 of DRAM). Regenerates the paper line's bandwidth-gap
// characterization at task-parallel granularity.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace tahoe;
  Flags flags = bench::standard_flags();
  flags.parse(argc, argv);
  const bool csv = flags.get_bool("csv");

  const std::vector<std::string> specs{"bw:0.5", "bw:0.25", "bw:0.125"};
  Table table({"workload", "DRAM", "1/2 BW", "1/4 BW", "1/8 BW"});
  for (const std::string& name : workloads::workload_names()) {
    std::vector<std::string> row{name, "1.00"};
    bench::BenchConfig base = bench::config_from_flags(flags, specs[0]);
    const core::RunReport dram =
        bench::run_static(name, base, bench::fastest_tier(base));
    for (const std::string& spec : specs) {
      bench::BenchConfig config = bench::config_from_flags(flags, spec);
      const core::RunReport nvm =
          bench::run_static(name, config, bench::capacity_tier(config));
      row.push_back(Table::num(bench::normalized(nvm, dram)));
    }
    table.add_row(std::move(row));
  }
  bench::emit(
      "FIG-2: NVM-only performance vs bandwidth (normalized to DRAM-only; "
      "higher = slower)",
      table, csv);
  return 0;
}
