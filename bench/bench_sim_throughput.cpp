// SIM: raw throughput of the rebuilt fluid simulator (memsim/fluid.hpp).
// Closed-loop churn at a fixed active-flow population: prefill `--active`
// flows, then replace each completion with a fresh random flow until
// `flows` total have been simulated. Measured in simulated-tasks/sec
// (completions) and events/sec (starts + completions), on 2-tier and
// 4-tier device counts, for both engines:
//
//   * indexed   — FluidSim, which switches to the per-device-heap lazy
//                 engine once the population crosses its threshold;
//   * reference — ReferenceFluidSim, the original O(active × devices)
//                 per-event scan, skipped above --ref-cap flows where its
//                 quadratic cost makes the cell pointlessly slow.
//
//   bench/bench_sim_throughput [--flows 10000,100000,1000000]
//       [--active N] [--ref-cap N] [--quick] [--check] [--csv]
//       [--report-json FILE]
//
// With --report-json every cell appends one RunReport JSON line (workload
// "sim_throughput", policy = engine, strategy = "<devices>d_<flows>",
// iteration_seconds = cell wall time, tasks_executed = flows). With
// --check the bench exits nonzero unless the indexed engine clears the
// --min-events-per-sec floor in every cell and is >= 5x the reference's
// simulated-tasks/sec in every cell of at least 100k flows where both
// engines ran (the acceptance bar for the hot-path rebuild).
#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "memsim/fluid.hpp"

namespace {

using namespace tahoe;

struct CellResult {
  double seconds = 0.0;
  std::uint64_t events = 0;

  double tasks_per_sec(std::size_t flows) const {
    return static_cast<double>(flows) / seconds;
  }
  double events_per_sec() const {
    return static_cast<double>(events) / seconds;
  }
};

/// Drive `total` flows through `sim` keeping ~`active_target` in flight.
/// Demands are seeded-random, device-skewed, with occasional serial and
/// multi-device components — the shape the schedule executor produces.
template <typename Sim>
CellResult churn(Sim& sim, std::size_t total, std::size_t active_target,
                 std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t devices = sim.num_devices();
  CellResult res;
  std::size_t started = 0;
  const auto start_one = [&] {
    memsim::FlowSpec s;
    s.device_seconds.assign(devices, 0.0);
    s.device_seconds[rng.next_below(devices)] =
        1e-5 + rng.next_double() * 1e-3;
    if (rng.next_below(4) == 0) {
      s.device_seconds[rng.next_below(devices)] += rng.next_double() * 1e-4;
    }
    if (rng.next_below(4) == 0) s.serial_seconds = rng.next_double() * 1e-4;
    s.tag = started;
    sim.start_flow(std::move(s));
    ++started;
    ++res.events;
  };

  const auto begin = std::chrono::steady_clock::now();
  while (started < total && started < active_target) start_one();
  std::size_t done = 0;
  while (done < total) {
    const auto c = sim.step();
    if (!c.has_value()) {
      std::cerr << "sim ran dry after " << done << " completions\n";
      std::exit(1);
    }
    ++done;
    ++res.events;
    if (started < total) start_one();
  }
  const auto end = std::chrono::steady_clock::now();
  res.seconds = std::chrono::duration<double>(end - begin).count();
  return res;
}

std::vector<std::size_t> parse_sizes(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoull(item));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_string("flows", "10000,100000,1000000",
                      "comma-separated total flow counts per cell");
  flags.define_int("active", 1024, "target concurrent-flow population");
  flags.define_int("ref-cap", 100000,
                   "largest flow count the reference engine still runs");
  flags.define_int("min-events-per-sec", 200000,
                   "indexed-engine floor enforced by --check");
  flags.define_bool("quick", false, "CI smoke: 2-tier only, smaller cells");
  flags.define_bool("check", false,
                    "enforce the events/sec floor and the >=5x speedup "
                    "over the reference at 100k+ flows");
  flags.define_bool("csv", false, "emit CSV after the table");
  tahoe::bench::register_artifact_flags(flags);
  flags.parse(argc, argv);
  const tahoe::bench::ArtifactFlags artifacts =
      tahoe::bench::apply_artifact_flags(flags);

  const bool quick = flags.get_bool("quick");
  std::vector<std::size_t> flow_counts = parse_sizes(flags.get_string("flows"));
  std::vector<std::size_t> device_counts = {2, 4};
  if (quick) {
    flow_counts = {10000, 100000};
    device_counts = {2};
  }
  const auto active =
      static_cast<std::size_t>(flags.get_int("active"));
  const auto ref_cap = static_cast<std::size_t>(flags.get_int("ref-cap"));
  const double min_events =
      static_cast<double>(flags.get_int("min-events-per-sec"));

  Table table({"devices", "flows", "engine", "Mtasks/s", "Mevents/s",
               "speedup"});
  bool ok = true;
  for (const std::size_t devices : device_counts) {
    for (const std::size_t flows : flow_counts) {
      const std::uint64_t seed = 1000 * devices + flows;
      memsim::FluidSim sim(devices);
      const CellResult indexed = churn(sim, flows, active, seed);

      double ref_tasks_per_sec = 0.0;
      if (flows <= ref_cap) {
        memsim::ReferenceFluidSim ref(devices);
        const CellResult reference = churn(ref, flows, active, seed);
        ref_tasks_per_sec = reference.tasks_per_sec(flows);
        table.add_row({std::to_string(devices), std::to_string(flows),
                       "reference",
                       Table::num(ref_tasks_per_sec / 1e6),
                       Table::num(reference.events_per_sec() / 1e6), "1.00"});
        core::RunReport report;
        report.workload = "sim_throughput";
        report.policy = "reference";
        report.strategy =
            std::to_string(devices) + "d_" + std::to_string(flows);
        report.iteration_seconds = {reference.seconds};
        report.compute_seconds = reference.seconds;
        report.tasks_executed = flows;
        tahoe::bench::append_report_json(report, artifacts.report_json);
      }

      const double speedup =
          ref_tasks_per_sec > 0.0
              ? indexed.tasks_per_sec(flows) / ref_tasks_per_sec
              : 0.0;
      table.add_row({std::to_string(devices), std::to_string(flows),
                     "indexed",
                     Table::num(indexed.tasks_per_sec(flows) / 1e6),
                     Table::num(indexed.events_per_sec() / 1e6),
                     ref_tasks_per_sec > 0.0 ? Table::num(speedup) : "-"});
      core::RunReport report;
      report.workload = "sim_throughput";
      report.policy = "indexed";
      report.strategy = std::to_string(devices) + "d_" + std::to_string(flows);
      report.iteration_seconds = {indexed.seconds};
      report.compute_seconds = indexed.seconds;
      report.tasks_executed = flows;
      tahoe::bench::append_report_json(report, artifacts.report_json);

      if (flags.get_bool("check")) {
        if (indexed.events_per_sec() < min_events) {
          std::cerr << "CHECK FAILED: indexed events/sec "
                    << indexed.events_per_sec() << " below floor "
                    << min_events << " at " << devices << "d/" << flows
                    << " flows\n";
          ok = false;
        }
        if (flows >= 100000 && ref_tasks_per_sec > 0.0 && speedup < 5.0) {
          std::cerr << "CHECK FAILED: indexed engine only " << speedup
                    << "x the reference at " << devices << "d/" << flows
                    << " flows (need >= 5x)\n";
          ok = false;
        }
      }
    }
  }

  tahoe::bench::emit("fluid simulator throughput (" + std::to_string(active) +
                         " concurrent flows, closed-loop churn)",
                     table, flags.get_bool("csv"));
  if (!ok) return 1;
  return 0;
}
