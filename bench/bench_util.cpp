#include "bench_util.hpp"

#include <cstdlib>
#include <fstream>

#include "baselines/reactive.hpp"
#include "baselines/xmem.hpp"
#include "common/assert.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "core/calibration.hpp"
#include "trace/chrome_export.hpp"
#include "trace/counters.hpp"
#include "trace/flight.hpp"
#include "trace/histogram.hpp"
#include "trace/telemetry.hpp"
#include "trace/trace.hpp"

namespace tahoe::bench {

memsim::Machine make_machine(const BenchConfig& config) {
  memsim::Machine m = [&]() {
    if (config.nvm_spec == "optane") {
      memsim::Machine om = memsim::machines::optane_platform(
          config.dram_capacity);
      om.devices.back().capacity = config.nvm_capacity;
      return om;
    }
    const auto colon = config.nvm_spec.find(':');
    TAHOE_REQUIRE(colon != std::string::npos,
                  "nvm spec must be bw:<f>, lat:<m> or optane");
    const std::string kind = config.nvm_spec.substr(0, colon);
    const double value =
        std::strtod(config.nvm_spec.c_str() + colon + 1, nullptr);
    const memsim::DeviceModel dram =
        memsim::devices::dram(config.dram_capacity);
    if (kind == "bw") {
      return memsim::machines::platform_a(
          memsim::devices::nvm_bw_fraction(dram, value, config.nvm_capacity),
          config.dram_capacity);
    }
    if (kind == "lat") {
      return memsim::machines::platform_a(
          memsim::devices::nvm_lat_multiple(dram, value, config.nvm_capacity),
          config.dram_capacity);
    }
    TAHOE_REQUIRE(false, "unknown nvm spec kind '" + kind + "'");
    return memsim::Machine{};
  }();
  if (config.workers != 0) m.workers = config.workers;
  return m;
}

memsim::TierId fastest_tier(const BenchConfig& config) {
  return make_machine(config).fastest_tier();
}

memsim::TierId capacity_tier(const BenchConfig& config) {
  return make_machine(config).capacity_tier();
}

core::RuntimeConfig runtime_config(const BenchConfig& config) {
  core::RuntimeConfig c;
  c.machine = make_machine(config);
  c.backing = hms::Backing::Virtual;
  c.attribution = config.attribution;
  return c;
}

void append_report_json(const core::RunReport& report,
                        const std::string& path) {
  if (path.empty()) return;
  std::ofstream os(path, std::ios::app);
  if (!os) {
    TAHOE_WARN("cannot open report output file '" << path << "'");
    return;
  }
  // Split snapshots: gauges and histograms land in their own JSON objects
  // so downstream diffing of the monotonic counters stays deterministic.
  auto& reg = trace::global_counters();
  report.write_json(os, reg.snapshot_counters(), reg.snapshot_gauges(),
                    reg.snapshot_histograms());
  os << '\n';
}

void append_explain_json(const core::RunReport& report,
                         const std::string& path) {
  if (path.empty()) return;
  std::ofstream os(path, std::ios::app);
  if (!os) {
    TAHOE_WARN("cannot open explain output file '" << path << "'");
    return;
  }
  report.write_explain_json(os);
  os << '\n';
}

core::RunReport run_static(const std::string& workload,
                           const BenchConfig& config, memsim::DeviceId tier) {
  core::Runtime rt(runtime_config(config));
  auto app = workloads::make_workload(workload, config.scale);
  core::RunReport report = rt.run_static(*app, tier);
  append_report_json(report, config.report_json);
  return report;
}

core::RunReport run_tahoe(const std::string& workload,
                          const BenchConfig& config,
                          const core::TahoeOptions& options,
                          const Tweaks& tweaks) {
  core::RuntimeConfig rc = runtime_config(config);
  rc.initial_placement = tweaks.initial_placement;
  rc.chunking = tweaks.chunking;
  rc.adaptive = tweaks.adaptive;
  core::Runtime rt(rc);
  auto app = workloads::make_workload(workload, config.scale);
  core::TahoePolicy policy(core::calibrate(rt.machine()).to_constants(),
                           options);
  core::RunReport report = rt.run(*app, policy);
  append_report_json(report, config.report_json);
  append_explain_json(report, config.explain_out);
  return report;
}

core::RunReport run_xmem(const std::string& workload,
                         const BenchConfig& config) {
  core::Runtime rt(runtime_config(config));
  auto app = workloads::make_workload(workload, config.scale);
  baselines::XMemPolicy policy;
  core::RunReport report = rt.run(*app, policy);
  append_report_json(report, config.report_json);
  append_explain_json(report, config.explain_out);
  return report;
}

core::RunReport run_reactive(const std::string& workload,
                             const BenchConfig& config) {
  core::Runtime rt(runtime_config(config));
  auto app = workloads::make_workload(workload, config.scale);
  baselines::ReactiveLruPolicy policy;
  core::RunReport report = rt.run(*app, policy);
  append_report_json(report, config.report_json);
  append_explain_json(report, config.explain_out);
  return report;
}

double normalized(const core::RunReport& run, const core::RunReport& dram) {
  const double base = dram.steady_iteration_seconds();
  TAHOE_REQUIRE(base > 0.0, "degenerate DRAM baseline");
  return run.steady_iteration_seconds() / base;
}

void register_artifact_flags(Flags& flags) {
  flags.define_string("trace-out", "",
                      "write a Chrome trace_event JSON timeline here "
                      "(open in chrome://tracing or Perfetto)");
  flags.define_string("report-json", "",
                      "append each run's RunReport as a JSON line here");
  flags.define_string("explain-out", "",
                      "append each policy run's plan provenance (candidates, "
                      "weights, accept/reject reasons) as a JSON line here");
  fault::register_flags(flags);
  trace::register_telemetry_flags(flags);
}

ArtifactFlags apply_artifact_flags(const Flags& flags) {
  // Chaos benchmarking: arm the global injector when any --fault-* rate is
  // set (all seeded, so chaos runs replay exactly).
  fault::configure_from_flags(flags);
  ArtifactFlags out;
  out.report_json = flags.get_string("report-json");
  out.explain_out = flags.get_string("explain-out");
  out.trace_out = flags.get_string("trace-out");
  // Latency histograms ride along whenever any artifact is requested; they
  // are off by default so uninstrumented runs pay only a relaxed load.
  if (!out.report_json.empty() || !out.explain_out.empty() ||
      !out.trace_out.empty()) {
    trace::set_histograms_enabled(true);
  }
  if (!out.trace_out.empty()) {
    // Export at process exit so one invocation (possibly many runs) yields
    // one timeline. The path outlives the call via a static. The retained
    // overload stitches back any events the telemetry sampler drained into
    // the flight-recorder ring before the exit hook runs.
    static std::string trace_path;
    const bool first = trace_path.empty();
    trace_path = out.trace_out;
    trace::global().set_enabled(true);
    if (first) {
      std::atexit([] {
        trace::export_chrome_trace(trace::global(), trace_path,
                                   trace::flight().take_retained());
      });
    }
  }
  // Telemetry sampler + flight recorder; retain drained events only when a
  // full trace export is also pending (see above).
  trace::configure_telemetry_from_flags(flags, !out.trace_out.empty());
  return out;
}

Flags standard_flags() {
  Flags flags;
  flags.define_string("scale", "bench", "problem scale: test | bench");
  flags.define_bool("csv", false, "also emit CSV");
  flags.define_int("dram-mib", 256, "DRAM tier capacity in MiB");
  flags.define_int("workers", 0, "worker override (0 = machine default)");
  register_artifact_flags(flags);
  return flags;
}

BenchConfig config_from_flags(const Flags& flags, const std::string& nvm_spec) {
  const ArtifactFlags artifacts = apply_artifact_flags(flags);
  BenchConfig config;
  config.nvm_spec = nvm_spec;
  config.dram_capacity =
      static_cast<std::uint64_t>(flags.get_int("dram-mib")) * kMiB;
  config.workers = static_cast<std::uint32_t>(flags.get_int("workers"));
  config.scale = flags.get_string("scale") == "test" ? workloads::Scale::Test
                                                     : workloads::Scale::Bench;
  config.report_json = artifacts.report_json;
  config.explain_out = artifacts.explain_out;
  config.attribution =
      !config.report_json.empty() || !config.explain_out.empty();
  return config;
}

void emit(const std::string& title, const Table& table, bool csv) {
  std::cout << "== " << title << " ==\n";
  table.print(std::cout);
  if (csv) {
    std::cout << "-- csv --\n";
    table.print_csv(std::cout);
  }
  std::cout << '\n';
}

}  // namespace tahoe::bench
