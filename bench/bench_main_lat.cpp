// FIG-10: main comparison with NVM at 4x DRAM latency.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace tahoe;
  Flags flags = bench::standard_flags();
  flags.parse(argc, argv);
  const bool csv = flags.get_bool("csv");
  const bench::BenchConfig config = bench::config_from_flags(flags, "lat:4");

  Table table(
      {"workload", "DRAM-only", "NVM-only", "X-Mem", "Reactive", "Tahoe"});
  for (const std::string& name : workloads::workload_names()) {
    const core::RunReport dram =
        bench::run_static(name, config, bench::fastest_tier(config));
    const core::RunReport nvm = bench::run_static(name, config, bench::capacity_tier(config));
    const core::RunReport xmem = bench::run_xmem(name, config);
    const core::RunReport reactive = bench::run_reactive(name, config);
    const core::RunReport tahoe = bench::run_tahoe(name, config);
    table.add_row({name, "1.00", Table::num(bench::normalized(nvm, dram)),
                   Table::num(bench::normalized(xmem, dram)),
                   Table::num(bench::normalized(reactive, dram)),
                   Table::num(bench::normalized(tahoe, dram))});
  }
  bench::emit(
      "FIG-10: normalized execution time, NVM = 4x DRAM latency (lower is "
      "better; 1.00 = DRAM-only)",
      table, csv);
  return 0;
}
