// TAB-1: memory-device characteristics used by the simulator (the
// NVMDB/Optane survey table with end-to-end latencies).
#include "bench_util.hpp"
#include "memsim/device.hpp"

int main(int argc, char** argv) {
  using namespace tahoe;
  Flags flags = bench::standard_flags();
  flags.parse(argc, argv);
  const bool csv = flags.get_bool("csv");

  Table table({"device", "read-lat-ns", "write-lat-ns", "read-bw-MB/s",
               "write-bw-MB/s"});
  for (const memsim::DeviceModel& d : memsim::devices::all_presets()) {
    table.add_row({d.name, Table::num(d.read_lat_s * 1e9, 0),
                   Table::num(d.write_lat_s * 1e9, 0),
                   Table::num(d.read_bw / 1e6, 0),
                   Table::num(d.write_bw / 1e6, 0)});
  }
  bench::emit("TAB-1: device characteristics (simulator presets)", table,
              csv);
  return 0;
}
