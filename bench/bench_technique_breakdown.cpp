// FIG-11: contribution of the four major techniques to the total
// improvement over NVM-only — cross-phase global search, phase-local
// search, partitioning large data objects (chunking), and initial data
// placement — applied cumulatively in that order.
#include <algorithm>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace tahoe;
  Flags flags = bench::standard_flags();
  flags.parse(argc, argv);
  const bool csv = flags.get_bool("csv");
  const bench::BenchConfig config = bench::config_from_flags(flags, "bw:0.5");

  Table table({"workload", "global-search%", "local-search%", "chunking%",
               "initial-placement%"});
  for (const std::string& name : workloads::workload_names()) {
    const double nvm = bench::run_static(name, config, bench::capacity_tier(config))
                           .steady_iteration_seconds();

    core::TahoeOptions global_only;
    global_only.strategy = core::TahoeOptions::Strategy::GlobalOnly;
    core::TahoeOptions auto_strategy;  // global + local, pick best

    bench::Tweaks bare;
    bare.initial_placement = false;
    bare.chunking = false;
    bench::Tweaks with_chunking = bare;
    with_chunking.chunking = true;
    bench::Tweaks full = with_chunking;
    full.initial_placement = true;

    const double t1 = bench::run_tahoe(name, config, global_only, bare)
                          .steady_iteration_seconds();
    const double t2 = bench::run_tahoe(name, config, auto_strategy, bare)
                          .steady_iteration_seconds();
    const double t3 =
        bench::run_tahoe(name, config, auto_strategy, with_chunking)
            .steady_iteration_seconds();
    // Initial placement mostly affects the early iterations; measure its
    // contribution on the whole run rather than the steady state.
    const double t3_total =
        bench::run_tahoe(name, config, auto_strategy, with_chunking)
            .total_seconds();
    const double t4_total = bench::run_tahoe(name, config, auto_strategy, full)
                                .total_seconds();
    // Scale the initial-placement whole-run gain to per-iteration units.
    const double iters =
        static_cast<double>(std::max<std::size_t>(
            bench::run_static(name, config, bench::fastest_tier(config))
                .iteration_seconds.size(),
            1));
    const double init_gain = (t3_total - t4_total) / iters;

    // Contributions are the positive increments of the cumulative
    // application, normalized to sum to 100% (the paper's stacked bars).
    const double g1 = std::max(nvm - t1, 0.0);
    const double g2 = std::max(t1 - t2, 0.0);
    const double g3 = std::max(t2 - t3, 0.0);
    const double g4 = std::max(init_gain, 0.0);
    const double denom = std::max(g1 + g2 + g3 + g4, 1e-12);
    auto pct = [&](double gain) {
      return Table::num(gain / denom * 100.0, 1);
    };
    table.add_row({name, pct(g1), pct(g2), pct(g3), pct(g4)});
  }
  bench::emit(
      "FIG-11: per-technique contribution to the improvement over NVM-only "
      "(% of total gain; cumulative application order: global, +local, "
      "+chunking, +initial placement)",
      table, csv);
  return 0;
}
