// Shared plumbing for the experiment-regeneration binaries (one binary per
// paper table/figure). Every bench prints a normalized table in the same
// form as the paper's figure it regenerates, plus an optional CSV dump.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/planner.hpp"
#include "core/report.hpp"
#include "core/runtime.hpp"
#include "workloads/common.hpp"

namespace tahoe::bench {

struct BenchConfig {
  /// NVM spec: "bw:<fraction>", "lat:<multiple>", or "optane".
  std::string nvm_spec = "bw:0.5";
  std::uint64_t dram_capacity = 256 * kMiB;
  std::uint64_t nvm_capacity = 16 * kGiB;
  std::uint32_t workers = 0;  ///< 0 = machine default
  workloads::Scale scale = workloads::Scale::Bench;
  /// When non-empty, every run_* helper appends its RunReport (plus the
  /// metrics-registry snapshot) as one JSON line to this file.
  std::string report_json;
  /// When non-empty, every policy run appends its decision provenance
  /// (RunReport::write_explain_json) as one JSON line to this file.
  std::string explain_out;
  /// Collect per-(task type, object) attribution into the reports. Enabled
  /// automatically whenever report_json or explain_out is set.
  bool attribution = false;
};

/// Build the machine for a config (platform-a unless spec == "optane").
memsim::Machine make_machine(const BenchConfig& config);

/// Tier pins for the static-placement baselines, resolved from the
/// config's machine — the N-tier-safe spelling of the old kDram/kNvm
/// literals (fastest tier = DRAM, capacity tier = NVM on the two-tier
/// platforms).
memsim::TierId fastest_tier(const BenchConfig& config);
memsim::TierId capacity_tier(const BenchConfig& config);

/// Runtime configuration with virtual backing (simulation only).
core::RuntimeConfig runtime_config(const BenchConfig& config);

/// Optional runtime-feature overrides for ablations.
struct Tweaks {
  bool initial_placement = true;
  bool chunking = true;
  bool adaptive = true;
};

/// Run one workload under one setup; all return the full report.
core::RunReport run_static(const std::string& workload,
                           const BenchConfig& config, memsim::DeviceId tier);
core::RunReport run_tahoe(const std::string& workload,
                          const BenchConfig& config,
                          const core::TahoeOptions& options = {},
                          const Tweaks& tweaks = {});
core::RunReport run_xmem(const std::string& workload,
                         const BenchConfig& config);
core::RunReport run_reactive(const std::string& workload,
                             const BenchConfig& config);

/// Normalization helper: steady-state iteration time relative to the
/// DRAM-only run.
double normalized(const core::RunReport& run, const core::RunReport& dram);

/// Parsed artifact-output flag values (apply_artifact_flags).
struct ArtifactFlags {
  std::string report_json;
  std::string explain_out;
  std::string trace_out;
};

/// Register the artifact + fault-injection flags (--trace-out,
/// --report-json, --explain-out, --fault-*) on an existing Flags set.
/// Benches that roll their own flag set call this instead of duplicating
/// the registrations; standard_flags() goes through it too, so every
/// bench exposes the same artifact surface.
void register_artifact_flags(Flags& flags);

/// Apply the artifact + fault flags after parsing: arm the seeded fault
/// injector, enable latency histograms whenever any artifact output is
/// requested, and install the at-exit Chrome-trace export for
/// --trace-out. Returns the parsed paths.
ArtifactFlags apply_artifact_flags(const Flags& flags);

/// Standard flag set (--scale, --csv, --dram-mib, --workers, --trace-out,
/// --report-json, --explain-out); returns the parsed flags after
/// registering bench defaults.
Flags standard_flags();
/// Builds the config; additionally enables global tracing when --trace-out
/// is set (the Chrome trace is exported at process exit), and turns on
/// latency histograms + attribution when any artifact output is requested.
BenchConfig config_from_flags(const Flags& flags, const std::string& nvm_spec);

/// Append `report` (with the current counter/gauge/histogram snapshots)
/// as one JSON line to `path`; no-op when `path` is empty.
void append_report_json(const core::RunReport& report,
                        const std::string& path);

/// Append the report's decision provenance (write_explain_json) as one
/// JSON line to `path`; no-op when `path` is empty.
void append_explain_json(const core::RunReport& report,
                         const std::string& path);

/// Print with the standard bench banner; emits CSV too when requested.
void emit(const std::string& title, const Table& table, bool csv);

}  // namespace tahoe::bench
