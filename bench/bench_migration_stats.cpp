// TAB-5: data-migration details for HMS with Tahoe (NVM = 1/2 DRAM
// bandwidth): migration count, migrated volume, pure runtime cost, and
// the fraction of movement overlapped with computation.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace tahoe;
  Flags flags = bench::standard_flags();
  flags.parse(argc, argv);
  const bool csv = flags.get_bool("csv");
  const bench::BenchConfig config = bench::config_from_flags(flags, "bw:0.5");

  Table table({"workload", "migrations", "moved-MiB", "runtime-cost-%",
               "overlap-%", "strategy"});
  for (const std::string& name : workloads::workload_names()) {
    const core::RunReport r = bench::run_tahoe(name, config);
    table.add_row({name, std::to_string(r.migrations),
                   Table::num(to_mib(r.bytes_moved), 1),
                   Table::num(r.runtime_cost_fraction() * 100.0),
                   Table::num(r.overlap_fraction() * 100.0, 1), r.strategy});
  }
  bench::emit(
      "TAB-5: migration details for HMS with Tahoe (NVM = 1/2 DRAM "
      "bandwidth)",
      table, csv);
  return 0;
}
