// FIG-12: strong scaling of CG — DRAM-only, HMS with Tahoe, NVM-only —
// as the worker count grows (the task-parallel analogue of the paper's
// node-scaling study).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace tahoe;
  Flags flags = bench::standard_flags();
  flags.parse(argc, argv);
  const bool csv = flags.get_bool("csv");

  Table table({"workers", "DRAM-only", "Tahoe", "NVM-only"});
  for (const std::uint32_t workers : {4u, 8u, 16u, 32u, 64u}) {
    bench::BenchConfig config = bench::config_from_flags(flags, "bw:0.6");
    config.workers = workers;
    const core::RunReport dram = bench::run_static("cg", config, bench::fastest_tier(config));
    const core::RunReport nvm = bench::run_static("cg", config, bench::capacity_tier(config));
    const core::RunReport tahoe = bench::run_tahoe("cg", config);
    table.add_row({std::to_string(workers), "1.00",
                   Table::num(bench::normalized(tahoe, dram)),
                   Table::num(bench::normalized(nvm, dram))});
  }
  bench::emit(
      "FIG-12: CG strong scaling (normalized to DRAM-only at each worker "
      "count; NVM = 0.6x DRAM bandwidth, as on the NUMA-emulated platform)",
      table, csv);
  return 0;
}
