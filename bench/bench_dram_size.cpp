// FIG-13: sensitivity to the DRAM capacity of the heterogeneous system
// (128 / 256 / 512 MiB), Tahoe vs the static baselines.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace tahoe;
  Flags flags = bench::standard_flags();
  flags.parse(argc, argv);
  const bool csv = flags.get_bool("csv");

  Table table({"workload", "DRAM=128MiB", "DRAM=256MiB", "DRAM=512MiB",
               "NVM-only"});
  for (const std::string& name : workloads::workload_names()) {
    std::vector<std::string> row{name};
    double nvm_norm = 0.0;
    for (const std::uint64_t mib : {128ull, 256ull, 512ull}) {
      bench::BenchConfig config = bench::config_from_flags(flags, "bw:0.5");
      config.dram_capacity = mib * kMiB;
      const core::RunReport dram =
          bench::run_static(name, config, bench::fastest_tier(config));
      const core::RunReport tahoe = bench::run_tahoe(name, config);
      row.push_back(Table::num(bench::normalized(tahoe, dram)));
      if (mib == 256) {
        nvm_norm = bench::normalized(
            bench::run_static(name, config, bench::capacity_tier(config)), dram);
      }
    }
    row.push_back(Table::num(nvm_norm));
    table.add_row(std::move(row));
  }
  bench::emit(
      "FIG-13: Tahoe sensitivity to DRAM size (normalized to DRAM-only; "
      "NVM = 1/2 DRAM bandwidth)",
      table, csv);
  return 0;
}
