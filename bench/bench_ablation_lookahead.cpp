// ABL-1: value of proactive (lookahead) migration — Tahoe with lookahead
// triggers vs the same plans fired only when needed, plus the reactive
// baseline. Reports normalized time and exposed stall per iteration.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace tahoe;
  Flags flags = bench::standard_flags();
  flags.parse(argc, argv);
  const bool csv = flags.get_bool("csv");
  const bench::BenchConfig config = bench::config_from_flags(flags, "bw:0.5");

  Table table({"workload", "proactive", "no-lookahead", "reactive",
               "stall-ms/iter(pro)", "stall-ms/iter(nolook)"});
  for (const std::string& name : workloads::workload_names()) {
    const core::RunReport dram =
        bench::run_static(name, config, bench::fastest_tier(config));
    const core::RunReport pro = bench::run_tahoe(name, config);
    core::TahoeOptions no_look;
    no_look.proactive = false;
    const core::RunReport nolook = bench::run_tahoe(name, config, no_look);
    const core::RunReport reactive = bench::run_reactive(name, config);
    const double iters =
        static_cast<double>(pro.iteration_seconds.size());
    table.add_row({name, Table::num(bench::normalized(pro, dram)),
                   Table::num(bench::normalized(nolook, dram)),
                   Table::num(bench::normalized(reactive, dram)),
                   Table::num(pro.stall_seconds / iters * 1e3),
                   Table::num(nolook.stall_seconds / iters * 1e3)});
  }
  bench::emit(
      "ABL-1: proactive-migration ablation (normalized to DRAM-only; stall "
      "= migration cost exposed on the critical path)",
      table, csv);
  return 0;
}
