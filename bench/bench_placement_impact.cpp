// FIG-4: per-object placement impact on the SP workload. Each critical
// data object (lhs / rhs / in_buffer+out_buffer) is placed alone in DRAM
// with everything else on NVM, under a bandwidth-limited and a
// latency-limited NVM — exposing which objects are bandwidth- vs
// latency-sensitive.
#include "bench_util.hpp"

namespace {

using namespace tahoe;

double pinned_normalized(const std::string& workload,
                         const bench::BenchConfig& config,
                         const std::vector<std::string>& dram_objects,
                         const core::RunReport& dram) {
  core::Runtime rt(bench::runtime_config(config));
  auto app = workloads::make_workload(workload, config.scale);
  return rt.run_pinned(*app, dram_objects).steady_iteration_seconds() /
         dram.steady_iteration_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = bench::standard_flags();
  flags.parse(argc, argv);
  const bool csv = flags.get_bool("csv");

  const std::vector<std::pair<std::string, std::vector<std::string>>>
      placements{
          {"lhs in DRAM", {"lhs"}},
          {"rhs in DRAM", {"rhs"}},
          {"in+out_buffer in DRAM", {"in_buffer", "out_buffer"}},
      };

  Table table({"placement", "1/2 BW", "4x LAT"});
  const bench::BenchConfig bw = bench::config_from_flags(flags, "bw:0.5");
  const bench::BenchConfig lat = bench::config_from_flags(flags, "lat:4");
  const core::RunReport dram_bw = bench::run_static("sp", bw, bench::fastest_tier(bw));
  const core::RunReport dram_lat = bench::run_static("sp", lat, bench::fastest_tier(lat));

  table.add_row({"DRAM-only", "1.00", "1.00"});
  for (const auto& [label, objects] : placements) {
    table.add_row({label,
                   Table::num(pinned_normalized("sp", bw, objects, dram_bw)),
                   Table::num(pinned_normalized("sp", lat, objects,
                                                dram_lat))});
  }
  const core::RunReport nvm_bw = bench::run_static("sp", bw, bench::capacity_tier(bw));
  const core::RunReport nvm_lat = bench::run_static("sp", lat, bench::capacity_tier(lat));
  table.add_row({"NVM-only", Table::num(bench::normalized(nvm_bw, dram_bw)),
                 Table::num(bench::normalized(nvm_lat, dram_lat))});

  bench::emit(
      "FIG-4: impact of single-object DRAM placement on SP (normalized to "
      "DRAM-only)",
      table, csv);
  return 0;
}
