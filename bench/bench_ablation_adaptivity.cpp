// ABL-2: workload-variation adaptation. A drifting workload (the hot
// object switches mid-run) under Tahoe with adaptivity on vs off; the
// per-iteration series shows the re-profiling recovering performance.
#include "common/units.hpp"
#include "core/calibration.hpp"
#include "workloads/synthetic.hpp"

#include "bench_util.hpp"

namespace {

using namespace tahoe;

core::RunReport run_drift(const bench::BenchConfig& config, bool adaptive) {
  core::RuntimeConfig rc = bench::runtime_config(config);
  rc.adaptive = adaptive;
  core::Runtime rt(rc);
  workloads::DriftApp app(
      {config.dram_capacity * 3 / 4, 8, 20, 10});  // drift at iteration 10
  core::TahoePolicy policy(core::calibrate(rt.machine()).to_constants());
  return rt.run(app, policy);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = bench::standard_flags();
  flags.parse(argc, argv);
  const bool csv = flags.get_bool("csv");
  bench::BenchConfig config = bench::config_from_flags(flags, "bw:0.5");
  config.dram_capacity = 64 * kMiB;

  const core::RunReport adaptive = run_drift(config, true);
  const core::RunReport frozen = run_drift(config, false);

  Table table({"iteration", "adaptive-s", "frozen-s"});
  for (std::size_t i = 0; i < adaptive.iteration_seconds.size(); ++i) {
    table.add_row({std::to_string(i),
                   Table::num(adaptive.iteration_seconds[i], 4),
                   Table::num(frozen.iteration_seconds[i], 4)});
  }
  bench::emit(
      "ABL-2: adaptivity on a drifting workload (hot object switches at "
      "iteration 10; adaptive re-profiles: " +
          std::to_string(adaptive.reprofiles) + " time(s))",
      table, csv);
  return 0;
}
