// EXECUTOR: raw task-throughput of the real work-stealing executors,
// head-to-head across backends (Chase–Lev shared deques vs the
// channel/steal-half design) and across a worker sweep, in four regimes:
//
//   empty    independent no-op tasks: pure scheduling overhead
//   kernel   independent tasks of a few hundred flops: the paper's
//            fine-grained task-parallel regime
//   fib      recursive Fibonacci dependence tree (post-order fan-in):
//            spawn-heavy, deep, one hot path — the classic work-stealing
//            stress test where steal-half pays off
//   nqueens  N-queens search tree (pre-order fan-out): spawn-heavy with
//            irregular branching
//
// Each (mode, backend, workers) cell reports the best rep so that one
// descheduled rep on a shared box does not poison the number. fib and
// nqueens verify their results every rep — a scheduler bug that drops or
// reorders work shows up as a wrong sum, not just a slow cell.
//
//   bench/bench_executor_throughput [--backend both|chaselev|channel]
//       [--modes empty,kernel,fib,nqueens] [--tasks N] [--fib-n N]
//       [--queens-n N] [--reps R] [--quick] [--csv] [--report-json FILE]
//       [--check] [--check-workers W] [--check-min-ratio F]
//
// With --report-json every cell appends one RunReport JSON line
// (workload "executor_throughput", policy = mode, strategy =
// "<backend>:<N>w", iteration_seconds = per-rep wall times) plus the
// executor counters from the global registry.
//
// --check turns the run into a head-to-head gate: on the fib cell at
// --check-workers workers, the channel backend's best throughput must be
// at least --check-min-ratio times the Chase–Lev backend's (exit 1
// otherwise). Requires --backend both and a fib mode.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "task/channel_executor.hpp"
#include "task/executor.hpp"
#include "trace/counters.hpp"

namespace {

using namespace tahoe;

// volatile sink keeps the kernel loop from folding away without pulling
// in google-benchmark for this harness.
volatile double g_sink = 0.0;
void benchmark_sink(double v) { g_sink = v; }

std::uint64_t fib_iterative(int n) {
  std::uint64_t a = 0;
  std::uint64_t b = 1;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  return a;
}

task::DataAccess obj_access(std::size_t obj, task::AccessMode mode) {
  task::DataAccess a;
  a.object = static_cast<hms::ObjectId>(obj);
  a.mode = mode;
  a.traffic.loads = 1;
  a.traffic.footprint = 64;
  return a;
}

/// One benchmark workload: a graph plus the state its tasks write and the
/// check that state must pass after every rep.
struct Workload {
  task::TaskGraph graph;
  std::size_t tasks = 0;
  std::function<void()> reset;    // before each rep (may be empty)
  std::function<bool()> verify;   // after each rep (may be empty)
};

Workload make_flat(std::size_t tasks, bool kernel) {
  task::GraphBuilder gb;
  gb.begin_group("throughput");
  for (std::size_t i = 0; i < tasks; ++i) {
    task::Task t;
    // Distinct objects: an embarrassingly parallel graph. Scheduling is
    // the only serialization left, which is exactly what we measure.
    t.accesses = {obj_access(i, task::AccessMode::Write)};
    if (kernel) {
      t.work = [i] {
        double acc = static_cast<double>(i);
        for (int k = 0; k < 256; ++k) acc = acc * 1.0000001 + 0.5;
        benchmark_sink(acc);
      };
    } else {
      t.work = [] {};
    }
    gb.add_task(std::move(t));
  }
  Workload w;
  w.graph = gb.build();
  w.tasks = tasks;
  return w;
}

/// fib(n) as a dependence tree: every node below the cutoff is a leaf that
/// computes its value iteratively; an inner node sums its two children.
/// Children are added before their parent (post-order) so the builder's
/// program-order RAW edges (child writes its slot, parent reads both) give
/// the fan-in tree. Each completed inner task releases its parent — the
/// spawn-heavy, join-dominated shape adaptive steal-half is built for.
Workload make_fib(int n, int cutoff) {
  auto results = std::make_shared<std::vector<std::uint64_t>>();
  task::GraphBuilder gb;
  gb.begin_group("fib");
  std::size_t next_slot = 0;
  // Recursive build; returns the node's result-slot/object id.
  const std::function<std::size_t(int)> build = [&](int k) -> std::size_t {
    if (k <= cutoff) {
      const std::size_t me = next_slot++;
      task::Task t;
      t.accesses = {obj_access(me, task::AccessMode::Write)};
      t.work = [results, me, k] { (*results)[me] = fib_iterative(k); };
      gb.add_task(std::move(t));
      return me;
    }
    const std::size_t left = build(k - 1);
    const std::size_t right = build(k - 2);
    const std::size_t me = next_slot++;
    task::Task t;
    t.accesses = {obj_access(left, task::AccessMode::Read),
                  obj_access(right, task::AccessMode::Read),
                  obj_access(me, task::AccessMode::Write)};
    t.work = [results, me, left, right] {
      (*results)[me] = (*results)[left] + (*results)[right];
    };
    gb.add_task(std::move(t));
    return me;
  };
  const std::size_t root = build(n);
  results->assign(next_slot, 0);
  Workload w;
  w.graph = gb.build();
  w.tasks = next_slot;
  const std::uint64_t expected = fib_iterative(n);
  w.reset = [results] { std::fill(results->begin(), results->end(), 0); };
  w.verify = [results, root, expected] { return (*results)[root] == expected; };
  return w;
}

/// N-queens search tree: one task per valid partial placement, parent
/// added before its children (pre-order fan-out; child reads the parent's
/// slot). Leaves at depth n count solutions; every task re-validates its
/// placement at run time so a misscheduled graph is caught, not hidden.
Workload make_queens(int n) {
  auto solutions = std::make_shared<std::atomic<std::uint64_t>>(0);
  task::GraphBuilder gb;
  gb.begin_group("nqueens");
  std::size_t next_slot = 0;
  const auto valid = [](const std::vector<int>& rows, int col) {
    const int r = rows[col];
    for (int c = 0; c < col; ++c) {
      if (rows[c] == r || std::abs(rows[c] - r) == col - c) return false;
    }
    return true;
  };
  const std::function<void(std::vector<int>&, std::size_t)> build =
      [&](std::vector<int>& rows, std::size_t parent_slot) {
        const int col = static_cast<int>(rows.size());
        for (int r = 0; r < n; ++r) {
          rows.push_back(r);
          if (valid(rows, col)) {
            const std::size_t me = next_slot++;
            task::Task t;
            t.accesses = {obj_access(parent_slot, task::AccessMode::Read),
                          obj_access(me, task::AccessMode::Write)};
            const bool leaf = col + 1 == n;
            std::vector<int> placement = rows;  // small prefix copy
            t.work = [solutions, leaf, placement, valid] {
              // Re-validate the whole placement: wrong results mean the
              // scheduler ran something it should not have.
              bool ok = true;
              for (std::size_t c = 0; c < placement.size(); ++c) {
                if (!valid(placement, static_cast<int>(c))) ok = false;
              }
              if (ok && leaf) {
                solutions->fetch_add(1, std::memory_order_relaxed);
              }
            };
            gb.add_task(std::move(t));
            if (!leaf) build(rows, me);
          }
          rows.pop_back();
        }
      };
  {
    const std::size_t root = next_slot++;
    task::Task t;
    t.accesses = {obj_access(root, task::AccessMode::Write)};
    t.work = [] {};
    gb.add_task(std::move(t));
    std::vector<int> rows;
    build(rows, root);
  }
  static const std::map<int, std::uint64_t> kSolutions = {
      {4, 2},  {5, 10},  {6, 4},    {7, 40},
      {8, 92}, {9, 352}, {10, 724}, {11, 2680}};
  const auto it = kSolutions.find(n);
  const std::uint64_t expected = it == kSolutions.end() ? 0 : it->second;
  Workload w;
  w.graph = gb.build();
  w.tasks = next_slot;
  w.reset = [solutions] { solutions->store(0, std::memory_order_relaxed); };
  if (expected != 0) {
    w.verify = [solutions, expected] {
      return solutions->load(std::memory_order_relaxed) == expected;
    };
  }
  return w;
}

double run_once(task::IExecutor& ex, const Workload& w) {
  if (w.reset) w.reset();
  const auto begin = std::chrono::steady_clock::now();
  ex.run(w.graph);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - begin).count();
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  for (const char c : csv) {
    if (c == ',') {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item.push_back(c);
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_string("backend", "both",
                      "executor backend: chaselev, channel, or both");
  flags.define_string("modes", "empty,kernel,fib,nqueens",
                      "comma-separated workload modes");
  flags.define_int("tasks", 100000, "tasks per rep (empty/kernel modes)");
  flags.define_int("fib-n", 24, "fib mode: Fibonacci index");
  flags.define_int("fib-cutoff", 2, "fib mode: leaf cutoff");
  flags.define_int("queens-n", 10, "nqueens mode: board size");
  flags.define_int("reps", 5, "repetitions per (mode, backend, workers) cell");
  flags.define_bool("quick", false, "CI smoke: fewer tasks, reps, workers");
  flags.define_bool("csv", false, "emit CSV after the table");
  flags.define_bool("check", false,
                    "gate: channel must reach check-min-ratio x chaselev "
                    "throughput on fib at check-workers workers");
  flags.define_int("check-workers", 16, "worker count the gate compares at");
  flags.define_string("check-min-ratio", "1.0",
                      "minimum channel/chaselev throughput ratio");
  bench::register_artifact_flags(flags);
  flags.parse(argc, argv);

  // Arms the fault injector and turns on histograms (steal latency, park
  // time, task duration) + tracing with any artifact request; off
  // otherwise so the hot loops stay unperturbed.
  const bench::ArtifactFlags artifacts = bench::apply_artifact_flags(flags);

  const bool quick = flags.get_bool("quick");
  const std::size_t tasks =
      quick ? 20000 : static_cast<std::size_t>(flags.get_int("tasks"));
  const int fib_n = quick ? 20 : static_cast<int>(flags.get_int("fib-n"));
  const int queens_n = quick ? 8 : static_cast<int>(flags.get_int("queens-n"));
  const int reps = quick ? 2 : static_cast<int>(flags.get_int("reps"));
  const bool check = flags.get_bool("check");
  const auto check_workers =
      static_cast<unsigned>(flags.get_int("check-workers"));
  const double check_min_ratio = std::stod(flags.get_string("check-min-ratio"));

  std::vector<task::ExecutorBackend> backends;
  const std::string backend_flag = flags.get_string("backend");
  if (backend_flag == "both") {
    backends = {task::ExecutorBackend::kChaseLev,
                task::ExecutorBackend::kChannel};
  } else if (const auto b = task::parse_executor_backend(backend_flag)) {
    backends = {*b};
  } else {
    std::cerr << "unknown backend: " << backend_flag << "\n";
    return 2;
  }
  if (check && backends.size() != 2) {
    std::cerr << "--check needs --backend both\n";
    return 2;
  }

  std::vector<unsigned> workers = {1, 2, 4, 8, 16, 32, 64};
  if (quick) workers = {1, 4, 16};
  if (check &&
      std::find(workers.begin(), workers.end(), check_workers) ==
          workers.end()) {
    workers.push_back(check_workers);
    std::sort(workers.begin(), workers.end());
  }

  std::vector<std::pair<std::string, Workload>> modes;
  for (const std::string& m : split_csv(flags.get_string("modes"))) {
    if (m == "empty") {
      modes.emplace_back(m, make_flat(tasks, /*kernel=*/false));
    } else if (m == "kernel") {
      modes.emplace_back(m, make_flat(tasks, /*kernel=*/true));
    } else if (m == "fib") {
      modes.emplace_back(
          m, make_fib(fib_n, static_cast<int>(flags.get_int("fib-cutoff"))));
    } else if (m == "nqueens") {
      modes.emplace_back(m, make_queens(queens_n));
    } else {
      std::cerr << "unknown mode: " << m << "\n";
      return 2;
    }
  }
  if (modes.empty()) {
    std::cerr << "empty mode list\n";
    return 2;
  }

  // best Mtasks/s per (mode, backend, workers) for the gate.
  std::map<std::string, double> best_rate;
  const auto cell_key = [](const std::string& mode,
                           task::ExecutorBackend backend, unsigned w) {
    return mode + "/" + task::to_string(backend) + "/" + std::to_string(w);
  };

  bool verified = true;
  Table table({"mode", "backend", "workers", "tasks", "best Mtasks/s",
               "mean Mtasks/s", "steals", "steal_reqs", "parks"});
  for (const auto& [mode, workload] : modes) {
    for (const task::ExecutorBackend backend : backends) {
      for (const unsigned w : workers) {
        trace::CounterRegistry& reg = trace::global_counters();
        const std::uint64_t steals0 = reg.get("executor.steals").value();
        const std::uint64_t reqs0 = reg.get("executor.steal_requests").value();
        const std::uint64_t parks0 = reg.get("executor.parks").value();
        core::RunReport report;
        report.workload = "executor_throughput";
        report.policy = mode;
        report.strategy =
            std::string(task::to_string(backend)) + ":" + std::to_string(w) +
            "w";
        double best = 0.0;
        double sum = 0.0;
        {
          const std::unique_ptr<task::IExecutor> ex =
              task::make_executor(backend, w);
          for (int r = 0; r < reps; ++r) {
            const double secs = run_once(*ex, workload);
            if (workload.verify && !workload.verify()) {
              std::cerr << "VERIFY FAILED: " << mode << " on "
                        << task::to_string(backend) << " with " << w
                        << " workers\n";
              verified = false;
            }
            report.iteration_seconds.push_back(secs);
            const double rate = static_cast<double>(workload.tasks) / secs;
            best = std::max(best, rate);
            sum += rate;
          }
          report.tasks_executed = ex->stats().tasks_run;
        }
        best_rate[cell_key(mode, backend, w)] = best;
        report.compute_seconds = 0.0;
        for (const double s : report.iteration_seconds) {
          report.compute_seconds += s;
        }
        table.add_row(
            {mode, task::to_string(backend), std::to_string(w),
             std::to_string(workload.tasks), Table::num(best / 1e6),
             Table::num(sum / reps / 1e6),
             std::to_string(reg.get("executor.steals").value() - steals0),
             std::to_string(reg.get("executor.steal_requests").value() -
                            reqs0),
             std::to_string(reg.get("executor.parks").value() - parks0)});
        bench::append_report_json(report, artifacts.report_json);
      }
    }
  }
  bench::emit("executor task throughput, " + backend_flag +
                  " backend(s) (best of " + std::to_string(reps) + " reps)",
              table, flags.get_bool("csv"));
  if (!verified) return 1;

  if (check) {
    const double chaselev =
        best_rate[cell_key("fib", task::ExecutorBackend::kChaseLev,
                           check_workers)];
    const double channel = best_rate[cell_key(
        "fib", task::ExecutorBackend::kChannel, check_workers)];
    if (chaselev <= 0.0 || channel <= 0.0) {
      std::cerr << "--check needs the fib mode in --modes\n";
      return 2;
    }
    const double ratio = channel / chaselev;
    std::cout << "check: fib @" << check_workers << "w channel/chaselev = "
              << ratio << " (min " << check_min_ratio << ")\n";
    if (ratio < check_min_ratio) {
      std::cerr << "CHECK FAILED: channel backend below " << check_min_ratio
                << "x chaselev on fib\n";
      return 1;
    }
  }
  return 0;
}
