// EXECUTOR: raw task-throughput of the work-stealing executor across a
// worker sweep, in two regimes: empty tasks (pure scheduling overhead —
// push/pop/steal/park costs dominate) and small kernels (a few hundred
// flops per task, the paper's fine-grained task-parallel regime). Each
// (mode, workers) cell reports the best rep so that one descheduled rep
// on a shared box does not poison the number.
//
//   bench/bench_executor_throughput [--tasks N] [--reps R] [--quick]
//       [--csv] [--report-json FILE]
//
// With --report-json every cell appends one RunReport JSON line
// (workload "executor_throughput", policy = mode, strategy = worker
// count, iteration_seconds = per-rep wall times) plus the executor's
// steal/park counters from the global counter registry.
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "task/executor.hpp"
#include "trace/counters.hpp"

namespace {

using namespace tahoe;

// volatile sink keeps the kernel loop from folding away without pulling
// in google-benchmark for this harness.
volatile double g_sink = 0.0;
void benchmark_sink(double v) { g_sink = v; }

task::TaskGraph make_graph(std::size_t tasks, bool kernel) {
  task::GraphBuilder gb;
  gb.begin_group("throughput");
  for (std::size_t i = 0; i < tasks; ++i) {
    task::Task t;
    task::DataAccess a;
    // Distinct objects: an embarrassingly parallel graph. Scheduling is
    // the only serialization left, which is exactly what we measure.
    a.object = static_cast<hms::ObjectId>(i);
    a.mode = task::AccessMode::Write;
    a.traffic.loads = 1;
    a.traffic.footprint = 64;
    t.accesses = {a};
    if (kernel) {
      t.work = [i] {
        double acc = static_cast<double>(i);
        for (int k = 0; k < 256; ++k) acc = acc * 1.0000001 + 0.5;
        benchmark_sink(acc);
      };
    } else {
      t.work = [] {};
    }
    gb.add_task(std::move(t));
  }
  return gb.build();
}

double run_once(task::Executor& ex, const task::TaskGraph& g) {
  const auto begin = std::chrono::steady_clock::now();
  ex.run(g);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - begin).count();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_int("tasks", 100000, "tasks per rep");
  flags.define_int("reps", 5, "repetitions per (mode, workers) cell");
  flags.define_bool("quick", false, "CI smoke: fewer tasks, reps, workers");
  flags.define_bool("csv", false, "emit CSV after the table");
  bench::register_artifact_flags(flags);
  flags.parse(argc, argv);

  // Arms the fault injector and turns on histograms (steal latency, park
  // time, task duration) + tracing with any artifact request; off
  // otherwise so the hot loops stay unperturbed.
  const bench::ArtifactFlags artifacts = bench::apply_artifact_flags(flags);

  const bool quick = flags.get_bool("quick");
  const std::size_t tasks = quick
                                ? 20000
                                : static_cast<std::size_t>(
                                      flags.get_int("tasks"));
  const int reps = quick ? 2 : static_cast<int>(flags.get_int("reps"));
  std::vector<unsigned> workers = {1, 2, 4, 8, 16, 32, 64};
  if (quick) workers = {1, 4, 16};

  Table table({"mode", "workers", "best Mtasks/s", "mean Mtasks/s",
               "steals", "parks"});
  for (const bool kernel : {false, true}) {
    const std::string mode = kernel ? "kernel" : "empty";
    const task::TaskGraph g = make_graph(tasks, kernel);
    for (const unsigned w : workers) {
      trace::CounterRegistry& reg = trace::global_counters();
      const std::uint64_t steals0 = reg.get("executor.steals").value();
      const std::uint64_t parks0 = reg.get("executor.parks").value();
      core::RunReport report;
      report.workload = "executor_throughput";
      report.policy = mode;
      report.strategy = std::to_string(w) + "w";
      double best = 0.0;
      double sum = 0.0;
      {
        task::Executor ex(w);
        for (int r = 0; r < reps; ++r) {
          const double secs = run_once(ex, g);
          report.iteration_seconds.push_back(secs);
          const double rate = static_cast<double>(tasks) / secs;
          best = std::max(best, rate);
          sum += rate;
        }
        report.tasks_executed = ex.stats().tasks_run;
      }
      report.compute_seconds = 0.0;
      for (const double s : report.iteration_seconds) {
        report.compute_seconds += s;
      }
      table.add_row({mode, std::to_string(w), Table::num(best / 1e6),
                     Table::num(sum / reps / 1e6),
                     std::to_string(reg.get("executor.steals").value() -
                                    steals0),
                     std::to_string(reg.get("executor.parks").value() -
                                    parks0)});
      bench::append_report_json(report, artifacts.report_json);
    }
  }
  bench::emit("executor task throughput (" + std::to_string(tasks) +
                  " independent tasks/rep, best of " + std::to_string(reps) +
                  ")",
              table, flags.get_bool("csv"));
  return 0;
}
