// MICRO: google-benchmark microbenchmarks of the runtime's own machinery —
// the components whose cost makes up the paper's "pure runtime cost"
// (sampling, modeling, knapsack decision, dependence derivation, queue and
// allocator operations).
#include <benchmark/benchmark.h>

#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/calibration.hpp"
#include "core/knapsack.hpp"
#include "core/planner.hpp"
#include "hms/arena.hpp"
#include "memsim/fluid.hpp"
#include "memsim/sampler.hpp"
#include "task/graph.hpp"
#include "trace/chrome_export.hpp"
#include "trace/counters.hpp"
#include "trace/histogram.hpp"
#include "trace/trace.hpp"

namespace {

using namespace tahoe;

void BM_KnapsackSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(42);
  std::vector<core::KnapsackItem> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    items.push_back(core::KnapsackItem{rng.next_below(64 * kMiB) + 1,
                                       rng.next_double()});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::solve(items, 256 * kMiB));
  }
}
BENCHMARK(BM_KnapsackSolve)->Arg(16)->Arg(64)->Arg(256);

void BM_SamplerSample(benchmark::State& state) {
  memsim::Sampler sampler(1000, 2.4e9, 7);
  memsim::ObjectTraffic t;
  t.loads = 50'000'000;
  t.stores = 10'000'000;
  t.footprint = 256 * kMiB;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(t, 0.1));
  }
}
BENCHMARK(BM_SamplerSample);

void BM_GraphBuild(benchmark::State& state) {
  const auto tasks = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    task::GraphBuilder gb;
    gb.begin_group("g");
    for (std::size_t i = 0; i < tasks; ++i) {
      task::Task t;
      task::DataAccess a;
      a.object = static_cast<hms::ObjectId>(i % 8);
      a.mode = i % 3 == 0 ? task::AccessMode::Write : task::AccessMode::Read;
      a.traffic.loads = 1000;
      a.traffic.footprint = 64 * kKiB;
      t.accesses = {a};
      gb.add_task(std::move(t));
    }
    benchmark::DoNotOptimize(gb.build());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(tasks));
}
BENCHMARK(BM_GraphBuild)->Arg(64)->Arg(512);

void BM_FluidSimSteadyLoad(benchmark::State& state) {
  for (auto _ : state) {
    memsim::FluidSim sim(2);
    for (int i = 0; i < 64; ++i) {
      memsim::FlowSpec f;
      f.serial_seconds = 0.001;
      f.device_seconds = {0.001, 0.0005};
      sim.start_flow(f);
    }
    while (sim.step().has_value()) {
    }
    benchmark::DoNotOptimize(sim.now());
  }
}
BENCHMARK(BM_FluidSimSteadyLoad);

void BM_ArenaAllocFree(benchmark::State& state) {
  hms::Arena arena("bench", 256 * kMiB, hms::Backing::Virtual);
  std::vector<void*> live;
  live.reserve(64);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      void* p = arena.alloc(1 * kMiB);
      if (p != nullptr) live.push_back(p);
    }
    for (void* p : live) arena.free(p);
    live.clear();
  }
}
BENCHMARK(BM_ArenaAllocFree);

void BM_Calibration(benchmark::State& state) {
  const memsim::Machine m = memsim::machines::platform_a(
      memsim::devices::nvm_bw_fraction(memsim::devices::dram(256 * kMiB), 0.5,
                                       16 * kGiB),
      256 * kMiB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::calibrate(m));
  }
}
BENCHMARK(BM_Calibration);

// The tracing hot path, both ways. Disabled must be a single relaxed load
// (the state every bench run is in); enabled is one wait-free ring push.
void BM_TraceEmitDisabled(benchmark::State& state) {
  trace::Tracer tracer;
  tracer.set_enabled(false);
  for (auto _ : state) {
    if (tracer.enabled()) {
      tracer.complete(0, "task", 0.0, 1e-6, "id", 1);
    }
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceEmitDisabled);

void BM_TraceEmitEnabled(benchmark::State& state) {
  trace::Tracer tracer;
  tracer.set_enabled(true);
  for (auto _ : state) {
    tracer.complete(0, "task", 0.0, 1e-6, "id", 1);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceEmitEnabled);

void BM_CounterAdd(benchmark::State& state) {
  trace::CounterRegistry registry;
  trace::Counter& c = registry.get("bench.counter");
  for (auto _ : state) {
    c.increment();
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_CounterAdd);

// The histogram hot path, both ways. Disabled is the guard every
// instrumentation site uses (one relaxed load, no record); enabled is a
// bit_width + relaxed fetch_add into a log-spaced bucket.
void BM_HistogramRecordDisabled(benchmark::State& state) {
  trace::set_histograms_enabled(false);
  trace::CounterRegistry registry;
  trace::Histogram& h = registry.histogram("bench.histogram");
  std::uint64_t v = 1;
  for (auto _ : state) {
    if (trace::histograms_enabled()) h.record(v);
    v = v * 2862933555777941757ULL + 3037000493ULL;  // cheap lcg
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_HistogramRecordDisabled);

void BM_HistogramRecordEnabled(benchmark::State& state) {
  trace::set_histograms_enabled(true);
  trace::CounterRegistry registry;
  trace::Histogram& h = registry.histogram("bench.histogram");
  std::uint64_t v = 1;
  for (auto _ : state) {
    if (trace::histograms_enabled()) h.record(v);
    v = v * 2862933555777941757ULL + 3037000493ULL;
    benchmark::ClobberMemory();
  }
  trace::set_histograms_enabled(false);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecordEnabled);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): google-benchmark aborts on
// flags it does not know, so strip the shared artifact flags first and
// honor them here (timeline of the benchmark process itself).
int main(int argc, char** argv) {
  std::string trace_out;
  std::vector<char*> passthrough;
  passthrough.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    constexpr std::string_view kTrace = "--trace-out=";
    if (arg.rfind(kTrace, 0) == 0) {
      trace_out = arg.substr(kTrace.size());
      continue;
    }
    passthrough.push_back(argv[i]);
  }
  int pass_argc = static_cast<int>(passthrough.size());
  if (!trace_out.empty()) tahoe::trace::global().set_enabled(true);

  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (!trace_out.empty()) {
    tahoe::trace::export_chrome_trace(tahoe::trace::global(), trace_out);
  }
  return 0;
}
