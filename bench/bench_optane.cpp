// FIG-14: Optane-PMM-style platform with asymmetric read/write — DRAM-only,
// NVM-only, hardware Memory Mode (DRAM as a direct-mapped cache), X-Mem,
// Tahoe without read/write distinction (Eqs. 2/3) and Tahoe with it
// (Eqs. 4/5).
#include "baselines/hwcache.hpp"
#include "bench_util.hpp"

namespace {

// Memory-Mode run: software cannot place data; the whole footprint lives
// on the cached effective device.
double memory_mode_seconds(const std::string& name,
                           const tahoe::bench::BenchConfig& config) {
  using namespace tahoe;
  // Footprint: sum of the workload's objects.
  auto app = workloads::make_workload(name, config.scale);
  hms::ObjectRegistry probe({config.dram_capacity, config.nvm_capacity},
                            hms::Backing::Virtual);
  hms::ChunkingPolicy chunking;
  chunking.dram_capacity = config.dram_capacity;
  app->setup(probe, chunking);
  std::uint64_t footprint = 0;
  for (const hms::ObjectId id : probe.live_objects()) {
    footprint += probe.get(id).bytes;
  }

  core::RuntimeConfig rc = bench::runtime_config(config);
  rc.machine = baselines::memory_mode_machine(rc.machine, footprint);
  core::Runtime rt(rc);
  auto app2 = workloads::make_workload(name, config.scale);
  return rt.run_static(*app2, rt.machine().capacity_tier())
      .steady_iteration_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tahoe;
  Flags flags = bench::standard_flags();
  flags.parse(argc, argv);
  const bool csv = flags.get_bool("csv");
  const bench::BenchConfig config = bench::config_from_flags(flags, "optane");

  Table table({"workload", "DRAM-only", "NVM-only", "MemMode", "X-Mem",
               "Tahoe w.o drw", "Tahoe w. drw"});
  for (const std::string& name : workloads::workload_names()) {
    const core::RunReport dram =
        bench::run_static(name, config, bench::fastest_tier(config));
    const core::RunReport nvm = bench::run_static(name, config, bench::capacity_tier(config));
    const core::RunReport xmem = bench::run_xmem(name, config);
    core::TahoeOptions no_drw;
    no_drw.distinguish_rw = false;
    const core::RunReport wo = bench::run_tahoe(name, config, no_drw);
    const core::RunReport w = bench::run_tahoe(name, config);
    const double mm = memory_mode_seconds(name, config) /
                      dram.steady_iteration_seconds();
    table.add_row({name, "1.00", Table::num(bench::normalized(nvm, dram)),
                   Table::num(mm), Table::num(bench::normalized(xmem, dram)),
                   Table::num(bench::normalized(wo, dram)),
                   Table::num(bench::normalized(w, dram))});
  }
  bench::emit(
      "FIG-14: Optane-PM platform (normalized to DRAM-only; 'drw' = "
      "read/write distinction in the performance model)",
      table, csv);
  return 0;
}
