// FIG-NT: the N-tier generalization on the four-tier CXL platform
// (HBM + DRAM + CXL-DRAM + Optane). For each workload: fastest-tier-only
// and capacity-tier-only static bounds, Tahoe in between, plus how many
// distinct (src, dst) tier pairs the plan actually migrated across.
#include <set>

#include "bench_util.hpp"
#include "core/calibration.hpp"

int main(int argc, char** argv) {
  using namespace tahoe;
  Flags flags = bench::standard_flags();
  flags.parse(argc, argv);
  const bool csv = flags.get_bool("csv");
  const bench::BenchConfig config = bench::config_from_flags(flags, "optane");

  // Fast tiers sized well below the working sets so placement matters;
  // --dram-mib scales the whole constrained pyramid.
  const std::uint64_t dram = config.dram_capacity;
  memsim::Machine machine = memsim::machines::cxl_platform(
      dram / 4, dram, 2 * dram, config.nvm_capacity);
  if (config.workers != 0) machine.workers = config.workers;

  core::RuntimeConfig rc;
  rc.machine = machine;
  rc.backing = hms::Backing::Virtual;
  rc.attribution = true;

  Table table({"workload", "HBM-only", "Tahoe", "Optane-only", "tier-pairs"});
  for (const std::string name : {"cg", "mg", "lu", "nekproxy"}) {
    core::Runtime rt_fast(rc);
    auto app_fast = workloads::make_workload(name, config.scale);
    const core::RunReport fast =
        rt_fast.run_static(*app_fast, machine.fastest_tier());
    bench::append_report_json(fast, config.report_json);

    core::Runtime rt_cap(rc);
    auto app_cap = workloads::make_workload(name, config.scale);
    const core::RunReport cap =
        rt_cap.run_static(*app_cap, machine.capacity_tier());
    bench::append_report_json(cap, config.report_json);

    core::Runtime rt(rc);
    auto app = workloads::make_workload(name, config.scale);
    core::TahoePolicy policy(core::calibrate(machine).to_constants());
    const core::RunReport tahoe = rt.run(*app, policy);
    bench::append_report_json(tahoe, config.report_json);
    bench::append_explain_json(tahoe, config.explain_out);

    std::set<std::pair<std::uint32_t, std::uint32_t>> pairs;
    for (const core::ObjectMigrationRow& o : tahoe.objects) {
      for (const core::TierFlowRow& f : o.flows) pairs.insert({f.src, f.dst});
    }
    table.add_row({name, "1.00", Table::num(bench::normalized(tahoe, fast)),
                   Table::num(bench::normalized(cap, fast)),
                   std::to_string(pairs.size())});
  }
  bench::emit(
      "FIG-NT: four-tier CXL platform (normalized to HBM-only; "
      "HBM = DRAM/4, CXL-DRAM = 2x DRAM; Optane capacity tier)",
      table, csv);
  return 0;
}
