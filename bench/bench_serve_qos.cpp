// QOS: multi-tenant serving — per-tenant tail latency with priority/quota
// planning (multi-tenant knapsack rows) versus the quota-free shared
// knapsack, on one shared Optane-class machine.
//
//   bench/bench_serve_qos [--duration S] [--epoch S] [--rate-scale X]
//       [--dram-mib N] [--deterministic] [--check] [--csv]
//       [--report-json FILE] [--trace-out FILE] [--fault-*...]
//
// Three tenants share the box:
//   prod  (priority 6): Zipfian KV/cache — latency-critical, dependence-
//                       heavy probing that suffers most on NVM;
//   batch (priority 2): tensor-pipeline inference — streaming weights with
//                       the highest raw bytes/s, which is exactly what the
//                       tenant-blind knapsack maximizes;
//   bg    (priority 1): graph analytics with irregular reuse.
//
// Quota-free planning promotes the throughput-heavy batch/bg data and
// starves prod; QoS rows reserve prod's priority share, so its p99 request
// latency improves strictly. --check asserts that ordering (CI smoke), and
// --deterministic zeroes the wall-clock planning fields so same-seed runs
// emit byte-identical schema-v4 reports.
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "serve/driver.hpp"
#include "trace/counters.hpp"

namespace {

using namespace tahoe;

void add_tenants(serve::TenantManager& tm, double rate_scale) {
  serve::TenantConfig prod;
  prod.name = "prod";
  prod.priority = 6.0;
  prod.arrival_hz = 400.0 * rate_scale;
  prod.seed = 101;
  serve::KvConfig kv;
  kv.prefix = "prod";
  kv.shards = 2;
  kv.chunks_per_shard = 8;
  kv.chunk_bytes = 2ull << 20;
  kv.keys = 4096;
  kv.zipf_s = 1.1;
  kv.ops_per_request = 8;
  kv.value_bytes = 16ull << 10;
  prod.service = serve::make_kv_service(kv);
  tm.add(std::move(prod));

  serve::TenantConfig batch;
  batch.name = "batch";
  batch.priority = 2.0;
  batch.arrival_hz = 40.0 * rate_scale;
  batch.seed = 202;
  serve::TensorConfig tensor;
  tensor.prefix = "batch";
  tensor.layers = 6;
  tensor.layer_bytes = 8ull << 20;
  tensor.activation_bytes = 1ull << 20;
  batch.service = serve::make_tensor_service(tensor);
  tm.add(std::move(batch));

  serve::TenantConfig bg;
  bg.name = "bg";
  bg.priority = 1.0;
  bg.arrival_hz = 30.0 * rate_scale;
  bg.seed = 303;
  serve::GraphConfig graph;
  graph.prefix = "bg";
  bg.service = serve::make_graph_service(graph);
  tm.add(std::move(bg));
}

double ms(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_double("duration", 1.0, "virtual seconds of offered traffic");
  flags.define_double("epoch", 0.005, "batching epoch in virtual seconds");
  flags.define_double("rate-scale", 1.0, "multiply every arrival rate");
  flags.define_int("dram-mib", 64, "DRAM tier capacity in MiB");
  flags.define_int("workers", 0, "worker override (0 = machine default)");
  flags.define_bool("deterministic", false,
                    "zero wall-clock report fields for byte-stable output");
  flags.define_bool("check", false,
                    "exit non-zero unless QoS strictly improves the "
                    "high-priority tenant's p99 over quota-free");
  flags.define_bool("csv", false, "also emit CSV");
  bench::register_artifact_flags(flags);
  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n' << flags.usage(argv[0]);
    return 2;
  }
  const bench::ArtifactFlags artifacts = bench::apply_artifact_flags(flags);

  memsim::Machine machine = memsim::machines::optane_platform(
      static_cast<std::uint64_t>(flags.get_int("dram-mib")) * kMiB);
  if (flags.get_int("workers") != 0) {
    machine.workers = static_cast<std::uint32_t>(flags.get_int("workers"));
  }

  serve::ServeOptions opts;
  opts.duration_seconds = flags.get_double("duration");
  opts.epoch_seconds = flags.get_double("epoch");
  opts.deterministic = flags.get_bool("deterministic");
  opts.workers = static_cast<std::uint32_t>(flags.get_int("workers"));

  // Same seeds + virtual time: both modes see the identical request
  // streams, so the only difference is the placement plan.
  const double rate_scale = flags.get_double("rate-scale");
  std::vector<serve::ServeResult> results;
  for (const bool qos : {true, false}) {
    trace::global_counters().reset();
    serve::TenantManager tm(machine);
    add_tenants(tm, rate_scale);
    opts.enforce_quotas = qos;
    serve::ServeResult r = serve::run_serve(tm, opts);
    bench::append_report_json(r.report, artifacts.report_json);
    results.push_back(std::move(r));
  }
  const core::RunReport& qos_report = results[0].report;
  const core::RunReport& free_report = results[1].report;

  Table table({"tenant", "prio", "quota MiB", "dram MiB", "reqs", "queued",
               "qos p50 ms", "qos p99 ms", "free p50 ms", "free p99 ms"});
  for (std::size_t i = 0; i < qos_report.tenants.size(); ++i) {
    const core::TenantReportRow& q = qos_report.tenants[i];
    const core::TenantReportRow& f = free_report.tenants[i];
    table.add_row({q.name, Table::num(q.priority),
                   Table::num(static_cast<double>(q.quota_bytes) / kMiB),
                   Table::num(static_cast<double>(q.fast_bytes) / kMiB),
                   std::to_string(q.requests), std::to_string(q.dropped),
                   Table::num(ms(q.request_latency.p50())),
                   Table::num(ms(q.request_latency.p99())),
                   Table::num(ms(f.request_latency.p50())),
                   Table::num(ms(f.request_latency.p99()))});
  }
  bench::emit("multi-tenant serving QoS (priority rows vs quota-free)", table,
              flags.get_bool("csv"));

  if (flags.get_bool("check")) {
    const core::TenantReportRow& q = qos_report.tenants.front();
    const core::TenantReportRow& f = free_report.tenants.front();
    if (q.requests == 0 || f.requests == 0) {
      std::cerr << "check FAILED: high-priority tenant completed no requests\n";
      return 1;
    }
    if (q.request_latency.p99() >= f.request_latency.p99()) {
      std::cerr << "check FAILED: qos p99 " << q.request_latency.p99()
                << "ns is not strictly below quota-free p99 "
                << f.request_latency.p99() << "ns\n";
      return 1;
    }
    std::cout << "check OK: prod p99 " << ms(q.request_latency.p99())
              << " ms (qos) < " << ms(f.request_latency.p99())
              << " ms (quota-free)\n";
  }
  return 0;
}
