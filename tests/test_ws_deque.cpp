// Chase–Lev work-stealing deque: owner-only semantics, thief semantics,
// ring growth, and the concurrent interleavings (owner pop vs. steal on
// the last element, thief vs. thief races) where the lock-free protocol
// could go wrong. The stress tests are the TSan targets guarding the
// executor rewrite.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "task/ws_deque.hpp"

namespace tahoe::task {
namespace {

TEST(WsDeque, StartsEmpty) {
  WsDeque<std::uint32_t> dq;
  std::uint32_t out = 0;
  EXPECT_TRUE(dq.empty_approx());
  EXPECT_EQ(dq.size_approx(), 0u);
  EXPECT_FALSE(dq.pop(out));
  EXPECT_FALSE(dq.steal(out));
}

TEST(WsDeque, OwnerPopIsLifo) {
  WsDeque<std::uint32_t> dq;
  for (std::uint32_t i = 0; i < 100; ++i) dq.push(i);
  EXPECT_EQ(dq.size_approx(), 100u);
  std::uint32_t out = 0;
  for (std::uint32_t i = 100; i-- > 0;) {
    ASSERT_TRUE(dq.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(dq.pop(out));
}

TEST(WsDeque, StealIsFifo) {
  WsDeque<std::uint32_t> dq;
  for (std::uint32_t i = 0; i < 100; ++i) dq.push(i);
  std::uint32_t out = 0;
  for (std::uint32_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(dq.steal(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(dq.steal(out));
}

TEST(WsDeque, MixedPopAndStealDrainOppositeEnds) {
  WsDeque<std::uint32_t> dq;
  for (std::uint32_t i = 0; i < 10; ++i) dq.push(i);
  std::uint32_t out = 0;
  ASSERT_TRUE(dq.steal(out));
  EXPECT_EQ(out, 0u);  // oldest
  ASSERT_TRUE(dq.pop(out));
  EXPECT_EQ(out, 9u);  // newest
  ASSERT_TRUE(dq.steal(out));
  EXPECT_EQ(out, 1u);
  ASSERT_TRUE(dq.pop(out));
  EXPECT_EQ(out, 8u);
  EXPECT_EQ(dq.size_approx(), 6u);
}

TEST(WsDeque, GrowsBeyondInitialCapacity) {
  WsDeque<std::uint32_t> dq(2);
  EXPECT_EQ(dq.capacity(), 2u);
  constexpr std::uint32_t kN = 1000;
  for (std::uint32_t i = 0; i < kN; ++i) dq.push(i);
  EXPECT_GE(dq.capacity(), static_cast<std::size_t>(kN));
  EXPECT_EQ(dq.size_approx(), static_cast<std::size_t>(kN));
  // Every element survived the copies across ring generations.
  std::uint32_t out = 0;
  for (std::uint32_t i = kN; i-- > 0;) {
    ASSERT_TRUE(dq.pop(out));
    ASSERT_EQ(out, i);
  }
}

TEST(WsDeque, WrapsAroundTheRing) {
  // Interleaved push/pop keeps the population below the capacity while the
  // absolute indices run far past it, exercising the mask arithmetic.
  WsDeque<std::uint32_t> dq(4);
  std::uint32_t out = 0;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    dq.push(i);
    dq.push(i + 1000000);
    ASSERT_TRUE(dq.pop(out));
    EXPECT_EQ(out, i + 1000000);
    ASSERT_TRUE(dq.steal(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(dq.empty_approx());
  EXPECT_EQ(dq.capacity(), 4u);  // never needed to grow
}

TEST(WsDeque, RejectsDegenerateCapacity) {
  EXPECT_THROW(WsDeque<std::uint32_t>(0), ContractError);
  EXPECT_NO_THROW(WsDeque<std::uint32_t>(2));
  WsDeque<std::uint32_t> dq(3);  // rounded up to a power of two
  EXPECT_EQ(dq.capacity(), 4u);
}

// ABA-adjacent interleaving: owner pop and a thief race for the single
// remaining element; exactly one side may win, every element is delivered
// exactly once.
TEST(WsDeque, LastElementRaceDeliversExactlyOnce) {
  constexpr int kRounds = 2000;
  WsDeque<std::uint32_t> dq;
  std::atomic<int> round{-1};
  std::atomic<std::uint64_t> thief_sum{0};
  std::atomic<std::uint64_t> thief_wins{0};
  std::thread thief([&] {
    int seen = -1;
    for (;;) {
      const int r = round.load(std::memory_order_acquire);
      if (r == kRounds) return;
      if (r == seen) continue;
      seen = r;
      std::uint32_t v = 0;
      if (dq.steal(v)) {
        thief_sum.fetch_add(v, std::memory_order_relaxed);
        thief_wins.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::uint64_t owner_sum = 0;
  for (int r = 0; r < kRounds; ++r) {
    const std::uint32_t v = static_cast<std::uint32_t>(r) + 1;
    dq.push(v);
    round.store(r, std::memory_order_release);
    std::uint32_t got = 0;
    if (dq.pop(got)) {
      owner_sum += got;
    } else {
      // The thief won the race; wait until the element really left.
      while (!dq.empty_approx()) {
      }
    }
  }
  round.store(kRounds, std::memory_order_release);
  thief.join();
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kRounds) * (kRounds + 1) / 2;
  EXPECT_EQ(owner_sum + thief_sum.load(), expected);
}

// The TSan stress target: one owner hammering push/pop while several
// thieves steal, with ring growth forced mid-flight. Every pushed value
// must be consumed exactly once (checked via per-value tally).
TEST(WsDeque, ConcurrentStressDeliversEachItemOnce) {
  constexpr std::uint32_t kItems = 20000;
  constexpr int kThieves = 3;
  WsDeque<std::uint32_t> dq(4);  // small: forces growth under contention
  std::vector<std::atomic<std::uint8_t>> taken(kItems);
  for (auto& t : taken) t.store(0);
  std::atomic<bool> done{false};
  std::atomic<std::uint32_t> consumed{0};

  auto consume = [&](std::uint32_t v) {
    ASSERT_LT(v, kItems);
    EXPECT_EQ(taken[v].fetch_add(1, std::memory_order_relaxed), 0)
        << "value " << v << " delivered twice";
    consumed.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      std::uint32_t v = 0;
      while (!done.load(std::memory_order_acquire)) {
        if (dq.steal(v)) consume(v);
      }
      while (dq.steal(v)) consume(v);
    });
  }

  std::uint32_t next = 0;
  while (next < kItems) {
    // Bursts of pushes followed by some owner pops: keeps both ends and
    // the growth path busy.
    for (int burst = 0; burst < 64 && next < kItems; ++burst) dq.push(next++);
    std::uint32_t v = 0;
    for (int p = 0; p < 32 && dq.pop(v); ++p) consume(v);
  }
  std::uint32_t v = 0;
  while (dq.pop(v)) consume(v);
  while (consumed.load(std::memory_order_acquire) < kItems) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(consumed.load(), kItems);
  for (std::uint32_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(taken[i].load(), 1) << "value " << i;
  }
}

}  // namespace
}  // namespace tahoe::task
