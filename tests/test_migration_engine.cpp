// Helper-thread migration engine: FIFO semantics, tag synchronization,
// concurrency with application reads.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/units.hpp"
#include "hms/migration.hpp"

namespace tahoe::hms {
namespace {

TEST(MigrationEngine, InlineModeExecutesImmediately) {
  ObjectRegistry reg({1 * kMiB, 16 * kMiB});
  const ObjectId id = reg.create("v", 64 * kKiB, memsim::kNvm);
  MigrationEngine engine(reg, MigrationEngine::Mode::Inline);
  engine.enqueue(MigrationRequest{id, 0, memsim::kDram, 0});
  EXPECT_EQ(reg.get(id).device(), memsim::kDram);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(MigrationEngine, HelperThreadDrains) {
  ObjectRegistry reg({4 * kMiB, 16 * kMiB});
  std::vector<ObjectId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(reg.create("v" + std::to_string(i), 256 * kKiB,
                             memsim::kNvm));
  }
  MigrationEngine engine(reg, MigrationEngine::Mode::HelperThread);
  for (const ObjectId id : ids) {
    engine.enqueue(MigrationRequest{id, 0, memsim::kDram, 1});
  }
  engine.drain();
  for (const ObjectId id : ids) {
    EXPECT_EQ(reg.get(id).device(), memsim::kDram);
  }
  EXPECT_EQ(reg.stats().migrations, 8u);
}

TEST(MigrationEngine, WaitTagBlocksUntilTagDone) {
  ObjectRegistry reg({16 * kMiB, 64 * kMiB});
  std::vector<ObjectId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(reg.create("v" + std::to_string(i), 2 * kMiB,
                             memsim::kNvm));
  }
  MigrationEngine engine(reg, MigrationEngine::Mode::HelperThread);
  engine.enqueue(MigrationRequest{ids[0], 0, memsim::kDram, 1});
  engine.enqueue(MigrationRequest{ids[1], 0, memsim::kDram, 1});
  engine.enqueue(MigrationRequest{ids[2], 0, memsim::kDram, 2});
  engine.enqueue(MigrationRequest{ids[3], 0, memsim::kDram, 3});
  engine.wait_tag(1);
  EXPECT_EQ(reg.get(ids[0]).device(), memsim::kDram);
  EXPECT_EQ(reg.get(ids[1]).device(), memsim::kDram);
  engine.wait_tag(3);
  EXPECT_EQ(reg.get(ids[3]).device(), memsim::kDram);
}

TEST(MigrationEngine, WaitTagWithNoMatchingWorkReturns) {
  ObjectRegistry reg({1 * kMiB, 16 * kMiB});
  MigrationEngine engine(reg, MigrationEngine::Mode::HelperThread);
  engine.wait_tag(42);  // must not deadlock
  SUCCEED();
}

TEST(MigrationEngine, RejectedMovesAreCounted) {
  ObjectRegistry reg({64 * kKiB, 16 * kMiB});
  const ObjectId big = reg.create("big", 1 * kMiB, memsim::kNvm);
  MigrationEngine engine(reg, MigrationEngine::Mode::HelperThread);
  engine.enqueue(MigrationRequest{big, 0, memsim::kDram, 0});
  engine.drain();
  EXPECT_EQ(engine.rejected(), 1u);
  EXPECT_EQ(reg.get(big).device(), memsim::kNvm);
}

TEST(MigrationEngine, ConcurrentReadersOfOtherObjectsUndisturbed) {
  // The paper's key mechanism: the helper thread migrates while the
  // application computes *on other data* (the runtime's dependence
  // analysis guarantees the migrated object itself is quiescent). Readers
  // of an unrelated object must never observe interference.
  ObjectRegistry reg({32 * kMiB, 64 * kMiB});
  Handle<std::uint64_t> moving =
      make_array<std::uint64_t>(reg, "moving", 1 << 18, memsim::kNvm);
  Handle<std::uint64_t> stable =
      make_array<std::uint64_t>(reg, "stable", 1 << 16, memsim::kNvm);
  for (std::size_t i = 0; i < moving.size(); ++i) moving[i] = 7;
  for (std::size_t i = 0; i < stable.size(); ++i) stable[i] = 3;

  MigrationEngine engine(reg, MigrationEngine::Mode::HelperThread);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};
  std::thread reader([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t* d = stable.data();
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < stable.size(); i += 1024) sum += d[i];
      if (sum != 3 * (stable.size() / 1024)) {
        bad.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (int round = 0; round < 20; ++round) {
    engine.enqueue(MigrationRequest{moving.id(), 0,
                                    round % 2 == 0 ? memsim::kDram
                                                   : memsim::kNvm,
                                    static_cast<std::uint64_t>(round)});
    engine.wait_tag(static_cast<std::uint64_t>(round));
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(bad.load(), 0u);
  EXPECT_EQ(reg.stats().migrations, 20u);
}

TEST(MigrationEngine, PingPongPreservesPayloadAtPhaseBoundaries) {
  // Phase-boundary protocol: enqueue, wait_tag (= the runtime's queue
  // check at group start), then access. The payload must survive any
  // number of moves.
  ObjectRegistry reg({32 * kMiB, 64 * kMiB});
  Handle<std::uint64_t> h =
      make_array<std::uint64_t>(reg, "v", 1 << 16, memsim::kNvm);
  for (std::size_t i = 0; i < h.size(); ++i) h[i] = i * 31 + 5;
  MigrationEngine engine(reg, MigrationEngine::Mode::HelperThread);
  for (int round = 0; round < 12; ++round) {
    engine.enqueue(MigrationRequest{h.id(), 0,
                                    round % 2 == 0 ? memsim::kDram
                                                   : memsim::kNvm,
                                    static_cast<std::uint64_t>(round)});
    engine.wait_tag(static_cast<std::uint64_t>(round));
    // Application phase: read and mutate between migrations.
    ASSERT_EQ(h[12345], 12345u * 31u + 5u + static_cast<unsigned>(round));
    for (std::size_t i = 0; i < h.size(); i += (1 << 12)) h[i] += 0;
    h[12345] += 1;
  }
}

TEST(MigrationEngine, EnqueueAfterShutdownThrows) {
  ObjectRegistry reg({1 * kMiB, 16 * kMiB});
  const ObjectId id = reg.create("v", 64, memsim::kNvm);
  auto engine = std::make_unique<MigrationEngine>(
      reg, MigrationEngine::Mode::HelperThread);
  engine->drain();
  engine.reset();  // clean shutdown joins the helper thread
  SUCCEED();
  (void)id;
}

}  // namespace
}  // namespace tahoe::hms
