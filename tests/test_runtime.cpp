// Runtime facade: the full profile -> decide -> enforce -> adapt loop on
// synthetic workloads (simulated timing path).
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/calibration.hpp"
#include "core/planner.hpp"
#include "core/runtime.hpp"
#include "workloads/synthetic.hpp"

namespace tahoe {
namespace {

memsim::Machine machine(std::uint64_t dram = 64 * kMiB) {
  return memsim::machines::platform_a(
      memsim::devices::nvm_bw_fraction(memsim::devices::dram(dram), 0.5,
                                       4 * kGiB),
      dram);
}

core::RuntimeConfig config(std::uint64_t dram = 64 * kMiB) {
  core::RuntimeConfig c;
  c.machine = machine(dram);
  c.backing = hms::Backing::Virtual;
  return c;
}

core::TahoePolicy tahoe_policy(const memsim::Machine& m,
                               core::TahoeOptions opts = {}) {
  return core::TahoePolicy(core::calibrate(m).to_constants(), opts);
}

TEST(Runtime, StaticBaselinesOrderCorrectly) {
  workloads::StreamApp app({48 * kMiB, 8, 5});
  core::Runtime rt(config());
  const core::RunReport dram = rt.run_static(app, memsim::kDram);
  const core::RunReport nvm = rt.run_static(app, memsim::kNvm);
  EXPECT_GT(nvm.total_seconds(), 1.5 * dram.total_seconds());
  EXPECT_EQ(dram.policy, "dram-only");
  EXPECT_EQ(nvm.policy, "nvm-only");
  EXPECT_EQ(dram.iteration_seconds.size(), 5u);
}

TEST(Runtime, TahoeClosesTheGapOnStreams) {
  workloads::StreamApp app({24 * kMiB, 8, 10});
  core::RuntimeConfig c = config();
  c.initial_placement = false;  // force runtime migration to do the work
  core::Runtime rt(c);
  core::TahoePolicy policy = tahoe_policy(rt.machine());
  const core::RunReport r = rt.run(app, policy);
  const core::RunReport dram = rt.run_static(app, memsim::kDram);
  const core::RunReport nvm = rt.run_static(app, memsim::kNvm);
  // Steady state within 10% of DRAM-only (both objects fit: 48 of 64 MiB).
  EXPECT_LT(r.steady_iteration_seconds(),
            1.10 * dram.steady_iteration_seconds());
  EXPECT_LT(r.steady_iteration_seconds(), nvm.steady_iteration_seconds());
  EXPECT_GT(r.migrations, 0u);
}

TEST(Runtime, LatencyBoundWorkloadAlsoImproves) {
  workloads::ChaseApp app({16 * kMiB, 12});
  core::RuntimeConfig c;
  c.machine = memsim::machines::platform_a(
      memsim::devices::nvm_lat_multiple(memsim::devices::dram(64 * kMiB), 4.0,
                                        4 * kGiB),
      64 * kMiB);
  c.backing = hms::Backing::Virtual;
  core::Runtime rt(c);
  core::TahoePolicy policy = tahoe_policy(rt.machine());
  const core::RunReport r = rt.run(app, policy);
  const core::RunReport dram = rt.run_static(app, memsim::kDram);
  const core::RunReport nvm = rt.run_static(app, memsim::kNvm);
  EXPECT_GT(nvm.steady_iteration_seconds(),
            3.0 * dram.steady_iteration_seconds());
  EXPECT_LT(r.steady_iteration_seconds(),
            1.10 * dram.steady_iteration_seconds());
}

TEST(Runtime, OverheadIsSmallFraction) {
  workloads::StreamApp app({24 * kMiB, 8, 12});
  core::Runtime rt(config());
  core::TahoePolicy policy = tahoe_policy(rt.machine());
  const core::RunReport r = rt.run(app, policy);
  EXPECT_LT(r.runtime_cost_fraction(), 0.05);
  EXPECT_GT(r.overhead_seconds, 0.0);
  EXPECT_GE(r.decision_seconds, 0.0);
}

TEST(Runtime, AdaptivityReprofilesOnDrift) {
  workloads::DriftApp app({48 * kMiB, 8, 16, 8});
  core::Runtime rt(config());  // DRAM holds one of the two 48 MiB objects
  core::TahoePolicy policy = tahoe_policy(rt.machine());
  const core::RunReport r = rt.run(app, policy);
  EXPECT_GE(r.reprofiles, 1u);
  // After re-deciding, the new hot object is resident: the final
  // iterations must be fast again (close to the early steady state).
  const double early = r.iteration_seconds[6];   // pre-drift steady
  const double late = r.iteration_seconds.back();
  EXPECT_LT(late, 1.25 * early);
}

TEST(Runtime, FrozenPlanSuffersAfterDrift) {
  workloads::DriftApp app({48 * kMiB, 8, 16, 8});
  core::RuntimeConfig c = config();
  c.adaptive = false;
  core::Runtime rt(c);
  core::TahoePolicy policy = tahoe_policy(rt.machine());
  const core::RunReport frozen = rt.run(app, policy);
  EXPECT_EQ(frozen.reprofiles, 0u);
  workloads::DriftApp app2({48 * kMiB, 8, 16, 8});
  core::Runtime rt2(config());
  core::TahoePolicy policy2 = tahoe_policy(rt2.machine());
  const core::RunReport adaptive = rt2.run(app2, policy2);
  EXPECT_LT(adaptive.iteration_seconds.back(),
            frozen.iteration_seconds.back());
}

TEST(Runtime, InitialPlacementReducesFirstEnforcementTraffic) {
  workloads::StreamApp app({24 * kMiB, 8, 8});
  core::RuntimeConfig with = config();
  core::RuntimeConfig without = config();
  without.initial_placement = false;
  core::Runtime rt_with(with);
  core::Runtime rt_without(without);
  core::TahoePolicy p1 = tahoe_policy(rt_with.machine());
  core::TahoePolicy p2 = tahoe_policy(rt_without.machine());
  const core::RunReport a = rt_with.run(app, p1);
  const core::RunReport b = rt_without.run(app, p2);
  // Static estimates put the hot arrays in DRAM at allocation: less data
  // moves at runtime and profiling iterations already run fast.
  EXPECT_LE(a.bytes_moved, b.bytes_moved);
  EXPECT_LE(a.iteration_seconds[0], b.iteration_seconds[0] * 1.001);
}

TEST(Runtime, ReportAccountingConsistent) {
  workloads::StreamApp app({24 * kMiB, 4, 6});
  core::Runtime rt(config());
  core::TahoePolicy policy = tahoe_policy(rt.machine());
  const core::RunReport r = rt.run(app, policy);
  double sum = 0.0;
  for (double s : r.iteration_seconds) sum += s;
  EXPECT_NEAR(sum, r.compute_seconds, 1e-12);
  EXPECT_NEAR(r.total_seconds(), r.compute_seconds + r.overhead_seconds,
              1e-12);
  EXPECT_GE(r.overlap_fraction(), 0.0);
  EXPECT_LE(r.overlap_fraction(), 1.0);
  EXPECT_EQ(r.workload, "stream");
  EXPECT_EQ(r.policy, "tahoe");
}

TEST(Runtime, RunRealExecutesAndVerifies) {
  // Small real run exercising real kernels + real helper-thread
  // migrations driven by a real decision.
  workloads::StreamApp app({4 * kMiB, 4, 3});
  core::RuntimeConfig c = config(16 * kMiB);
  c.backing = hms::Backing::Real;
  core::Runtime rt(c);
  core::TahoePolicy policy = tahoe_policy(rt.machine());
  const core::RunReport r = rt.run(app, policy);
  workloads::StreamApp app2({4 * kMiB, 4, 3});
  EXPECT_TRUE(rt.run_real(app2, /*schedule=*/{}, 2));
}

TEST(Runtime, ConfigContracts) {
  core::RuntimeConfig c = config();
  c.profile_iterations = 0;
  EXPECT_THROW(core::Runtime{c}, ContractError);
}

}  // namespace
}  // namespace tahoe
