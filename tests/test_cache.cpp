// Analytic cache model properties, validated against the reference
// set-associative simulator.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "memsim/cache_model.hpp"
#include "memsim/cache_sim.hpp"

namespace tahoe::memsim {
namespace {

ObjectTraffic make_traffic(std::uint64_t accesses, std::uint64_t footprint,
                           double locality, double store_frac = 0.0) {
  ObjectTraffic t;
  t.stores = static_cast<std::uint64_t>(
      static_cast<double>(accesses) * store_frac);
  t.loads = accesses - t.stores;
  t.footprint = footprint;
  t.locality = locality;
  return t;
}

TEST(CacheModel, CompulsoryFloor) {
  // Even a perfectly cache-resident object pays one fill per line.
  const CacheModel llc{32 * kMiB};
  const MemTraffic mm = llc.filter(make_traffic(1'000'000, 64 * kKiB, 1.0),
                                   64 * kKiB);
  EXPECT_GE(mm.read_lines, 64 * kKiB / kCacheLine);
}

TEST(CacheModel, FullyResidentHighLocalityFiltersReuse) {
  const CacheModel llc{32 * kMiB};
  const std::uint64_t fp = 1 * kMiB;
  const MemTraffic mm = llc.filter(make_traffic(10'000'000, fp, 1.0), fp);
  // Only compulsory misses survive.
  EXPECT_NEAR(static_cast<double>(mm.read_lines),
              static_cast<double>(fp / kCacheLine),
              static_cast<double>(fp / kCacheLine) * 0.01);
}

TEST(CacheModel, MonotoneInFootprint) {
  const CacheModel llc{8 * kMiB};
  double prev = 0.0;
  for (const std::uint64_t fp : {4 * kMiB, 16 * kMiB, 64 * kMiB, 256 * kMiB}) {
    const MemTraffic mm = llc.filter(make_traffic(50'000'000, fp, 0.8), fp);
    const auto lines = static_cast<double>(mm.lines());
    EXPECT_GE(lines, prev);
    prev = lines;
  }
}

TEST(CacheModel, MonotoneInLocality) {
  const CacheModel llc{32 * kMiB};
  const std::uint64_t fp = 16 * kMiB;
  double prev = 1e300;
  for (const double loc : {0.0, 0.3, 0.6, 0.9}) {
    const MemTraffic mm = llc.filter(make_traffic(50'000'000, fp, loc), fp);
    EXPECT_LE(static_cast<double>(mm.lines()), prev);
    prev = static_cast<double>(mm.lines());
  }
}

TEST(CacheModel, StoresProduceWritebacks) {
  const CacheModel llc{8 * kMiB};
  const std::uint64_t fp = 64 * kMiB;
  const MemTraffic ro = llc.filter(make_traffic(10'000'000, fp, 0.2, 0.0), fp);
  const MemTraffic rw = llc.filter(make_traffic(10'000'000, fp, 0.2, 0.5), fp);
  EXPECT_EQ(ro.write_lines, 0u);
  EXPECT_GT(rw.write_lines, 0u);
  // Half the misses are stores; write-backs mirror store misses.
  EXPECT_NEAR(static_cast<double>(rw.write_lines),
              static_cast<double>(rw.read_lines) / 2.0,
              static_cast<double>(rw.read_lines) * 0.02);
}

TEST(CacheModel, ProportionalSharePenalizesCrowdedTasks) {
  const CacheModel llc{8 * kMiB};
  const std::uint64_t fp = 8 * kMiB;
  const MemTraffic alone = llc.filter(make_traffic(10'000'000, fp, 0.9), fp);
  const MemTraffic crowded =
      llc.filter(make_traffic(10'000'000, fp, 0.9), 8 * fp);
  EXPECT_GT(crowded.lines(), alone.lines());
}

// ---- reference simulator ----

TEST(CacheSim, SequentialStreamMissesOncePerLine) {
  CacheSim sim(64 * kKiB, 8, 64);
  for (std::uint64_t addr = 0; addr < 32 * kKiB; addr += 8) {
    sim.access(addr, false);
  }
  EXPECT_EQ(sim.stats().misses(), 32 * kKiB / 64);
  EXPECT_EQ(sim.stats().hits, 32 * kKiB / 8 - 32 * kKiB / 64);
}

TEST(CacheSim, ResidentWorkingSetHitsOnReuse) {
  CacheSim sim(64 * kKiB, 8, 64);
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint64_t addr = 0; addr < 32 * kKiB; addr += 64) {
      sim.access(addr, false);
    }
  }
  EXPECT_EQ(sim.stats().misses(), 32 * kKiB / 64);  // first pass only
}

TEST(CacheSim, OversizedWorkingSetThrashesWithLru) {
  CacheSim sim(64 * kKiB, 8, 64);
  for (int pass = 0; pass < 3; ++pass) {
    for (std::uint64_t addr = 0; addr < 128 * kKiB; addr += 64) {
      sim.access(addr, false);
    }
  }
  // Cyclic sweep over 2x capacity with LRU: everything misses.
  EXPECT_EQ(sim.stats().hits, 0u);
}

TEST(CacheSim, DirtyEvictionProducesWriteback) {
  CacheSim sim(4 * kKiB, 1, 64);  // direct-mapped, 64 sets
  sim.access(0, true);            // dirty line in set 0
  sim.access(4 * kKiB, false);    // conflicting line evicts it
  EXPECT_EQ(sim.stats().writebacks, 1u);
}

TEST(CacheSim, FlushWritesBackDirtyLines) {
  CacheSim sim(4 * kKiB, 2, 64);
  sim.access(0, true);
  sim.access(64, true);
  sim.access(128, false);
  sim.flush();
  EXPECT_EQ(sim.stats().writebacks, 2u);
  // After flush, the same lines miss again.
  sim.access(0, false);
  EXPECT_EQ(sim.stats().load_misses, 2u);
}

TEST(CacheSim, RejectsBadGeometry) {
  EXPECT_THROW(CacheSim(1000, 8, 64), ContractError);   // not a multiple
  EXPECT_THROW(CacheSim(4096, 8, 63), ContractError);   // non-pow2 line
  EXPECT_THROW(CacheSim(4096, 0, 64), ContractError);   // zero ways
}

// Cross-validation: the analytic model's miss count for a random-access
// pattern should be within a factor of ~2 of the reference simulator.
TEST(CacheCrossValidation, RandomAccessPattern) {
  const std::uint64_t cache_bytes = 256 * kKiB;
  const std::uint64_t fp = 1 * kMiB;
  const std::uint64_t accesses = 200'000;

  CacheSim sim(cache_bytes, 8, 64);
  Rng rng(42);
  for (std::uint64_t i = 0; i < accesses; ++i) {
    sim.access(rng.next_below(fp), false);
  }
  const double sim_misses = static_cast<double>(sim.stats().misses());

  // Random uniform reuse: steady-state hit probability ~ resident share,
  // with no spatial adjacency between consecutive accesses.
  const CacheModel model{cache_bytes};
  ObjectTraffic t = make_traffic(accesses, fp, 1.0);
  t.spatial = 0.0;
  const MemTraffic mm = model.filter(t, fp);
  const double model_misses = static_cast<double>(mm.read_lines);

  EXPECT_GT(model_misses, sim_misses * 0.5);
  EXPECT_LT(model_misses, sim_misses * 2.0);
}

}  // namespace
}  // namespace tahoe::memsim
