// Real thread-pool executors: correctness under dependences and the
// phase-boundary hook. Everything here runs against both scheduling
// backends (Chase–Lev shared deques and the channel/steal-half design)
// through the IExecutor factory — the backends must be observably
// interchangeable.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "task/channel_executor.hpp"
#include "task/executor.hpp"

namespace tahoe::task {
namespace {

DataAccess acc(hms::ObjectId obj, AccessMode mode) {
  DataAccess a;
  a.object = obj;
  a.mode = mode;
  a.traffic.loads = 1;
  a.traffic.footprint = 64;
  return a;
}

class ExecutorBackendTest : public ::testing::TestWithParam<ExecutorBackend> {
 protected:
  std::unique_ptr<IExecutor> make(unsigned workers) const {
    return make_executor(GetParam(), workers);
  }
};

TEST_P(ExecutorBackendTest, RunsEveryTaskOnce) {
  GraphBuilder gb;
  gb.begin_group("g");
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    Task t;
    t.accesses = {acc(static_cast<hms::ObjectId>(i), AccessMode::Write)};
    t.work = [&count]() { count.fetch_add(1, std::memory_order_relaxed); };
    gb.add_task(std::move(t));
  }
  const TaskGraph g = gb.build();
  const auto ex = make(4);
  ex->run(g);
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(ex->stats().tasks_run, 100u);
}

TEST_P(ExecutorBackendTest, DependencesOrderEffects) {
  // Chain: each task appends its id; RAW deps force program order.
  GraphBuilder gb;
  gb.begin_group("g");
  std::vector<int> order;
  std::mutex m;
  for (int i = 0; i < 32; ++i) {
    Task t;
    t.accesses = {acc(1, AccessMode::ReadWrite)};  // serial chain
    t.work = [&order, &m, i]() {
      const std::lock_guard<std::mutex> lock(m);
      order.push_back(i);
    };
    gb.add_task(std::move(t));
  }
  const TaskGraph g = gb.build();
  const auto ex = make(4);
  ex->run(g);
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
}

TEST_P(ExecutorBackendTest, ForkJoinComputesCorrectSum) {
  // One producer writes, N parallel readers accumulate, one reducer reads.
  GraphBuilder gb;
  gb.begin_group("g");
  int shared_value = 0;
  std::atomic<long> sum{0};
  {
    Task t;
    t.accesses = {acc(1, AccessMode::Write)};
    t.work = [&shared_value]() { shared_value = 21; };
    gb.add_task(std::move(t));
  }
  for (int i = 0; i < 64; ++i) {
    Task t;
    t.accesses = {acc(1, AccessMode::Read),
                  acc(static_cast<hms::ObjectId>(100 + i), AccessMode::Write)};
    t.work = [&shared_value, &sum]() {
      sum.fetch_add(shared_value, std::memory_order_relaxed);
    };
    gb.add_task(std::move(t));
  }
  long result = 0;
  {
    Task t;
    t.accesses = {acc(1, AccessMode::Write)};
    t.work = [&result, &sum]() { result = sum.load(); };
    gb.add_task(std::move(t));
  }
  const TaskGraph g = gb.build();
  const auto ex = make(8);
  ex->run(g);
  EXPECT_EQ(result, 64L * 21L);
}

TEST_P(ExecutorBackendTest, PhaseHookRunsBeforeEachGroup) {
  GraphBuilder gb;
  std::atomic<int> phase_marker{-1};
  std::vector<int> seen_by_group(3, -2);
  for (int gi = 0; gi < 3; ++gi) {
    gb.begin_group("g" + std::to_string(gi));
    for (int i = 0; i < 8; ++i) {
      Task t;
      t.accesses = {acc(static_cast<hms::ObjectId>(gi), AccessMode::ReadWrite)};
      t.work = [&phase_marker, &seen_by_group, gi]() {
        seen_by_group[gi] = phase_marker.load(std::memory_order_acquire);
      };
      gb.add_task(std::move(t));
    }
  }
  const TaskGraph g = gb.build();
  const auto ex = make(4);
  std::vector<GroupId> hook_order;
  ex->run(g, [&](GroupId gi) {
    hook_order.push_back(gi);
    phase_marker.store(static_cast<int>(gi), std::memory_order_release);
  });
  EXPECT_EQ(hook_order, (std::vector<GroupId>{0, 1, 2}));
  // Every task observed its own group's marker: the hook really ran before
  // the group and no task of a later group overlapped.
  for (int gi = 0; gi < 3; ++gi) EXPECT_EQ(seen_by_group[gi], gi);
}

TEST_P(ExecutorBackendTest, ExceptionsPropagate) {
  GraphBuilder gb;
  gb.begin_group("g");
  Task t;
  t.accesses = {acc(1, AccessMode::Write)};
  t.work = []() { throw std::runtime_error("kernel failed"); };
  gb.add_task(std::move(t));
  const TaskGraph g = gb.build();
  const auto ex = make(2);
  EXPECT_THROW(ex->run(g), std::runtime_error);
}

// A task throwing mid-group in phase mode must not wedge the group
// barrier: the remaining tasks of its group and every later group still
// run, and run() rethrows the error once the whole graph drained.
TEST_P(ExecutorBackendTest, PhaseModeExceptionReleasesBarrierAndRethrows) {
  GraphBuilder gb;
  std::atomic<int> completed{0};
  std::atomic<int> last_group_tasks{0};
  constexpr int kGroups = 3;
  constexpr int kPerGroup = 8;
  for (int gi = 0; gi < kGroups; ++gi) {
    gb.begin_group("g" + std::to_string(gi));
    for (int i = 0; i < kPerGroup; ++i) {
      Task t;
      t.accesses = {acc(static_cast<hms::ObjectId>(gi * 100 + i),
                        AccessMode::Write)};
      if (gi == 1 && i == 3) {
        t.work = []() { throw std::runtime_error("mid-group failure"); };
      } else {
        t.work = [&completed, &last_group_tasks, gi]() {
          completed.fetch_add(1, std::memory_order_relaxed);
          if (gi == kGroups - 1) {
            last_group_tasks.fetch_add(1, std::memory_order_relaxed);
          }
        };
      }
      gb.add_task(std::move(t));
    }
  }
  const TaskGraph g = gb.build();
  const auto ex = make(4);
  std::vector<GroupId> hook_order;
  EXPECT_THROW(
      ex->run(g, [&](GroupId gi) { hook_order.push_back(gi); }),
      std::runtime_error);
  // All groups were started and every non-throwing task ran to completion.
  EXPECT_EQ(hook_order, (std::vector<GroupId>{0, 1, 2}));
  EXPECT_EQ(completed.load(), kGroups * kPerGroup - 1);
  EXPECT_EQ(last_group_tasks.load(), kPerGroup);
  EXPECT_EQ(ex->stats().tasks_run,
            static_cast<std::uint64_t>(kGroups * kPerGroup));
}

TEST_P(ExecutorBackendTest, ReusableAcrossRuns) {
  const auto ex = make(3);
  for (int round = 0; round < 5; ++round) {
    GraphBuilder gb;
    gb.begin_group("g");
    std::atomic<int> n{0};
    for (int i = 0; i < 20; ++i) {
      Task t;
      t.accesses = {acc(static_cast<hms::ObjectId>(i), AccessMode::Write)};
      t.work = [&n]() { n.fetch_add(1); };
      gb.add_task(std::move(t));
    }
    const TaskGraph g = gb.build();
    ex->run(g);
    EXPECT_EQ(n.load(), 20);
  }
  EXPECT_EQ(ex->stats().tasks_run, 100u);
}

TEST_P(ExecutorBackendTest, SingleWorkerIsSequential) {
  GraphBuilder gb;
  gb.begin_group("g");
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    Task t;
    t.accesses = {acc(static_cast<hms::ObjectId>(i), AccessMode::Write)};
    t.work = [&order, i]() { order.push_back(i); };
    gb.add_task(std::move(t));
  }
  const TaskGraph g = gb.build();
  const auto ex = make(1);
  ex->run(g);
  EXPECT_EQ(order.size(), 10u);
}

// Regression: a single-worker pool has no victims, so an empty acquisition
// round is an idle spin, not a failed steal. The counter used to be bumped
// on every such round, inflating executor.steals_failed by the number of
// idle spins between activations.
TEST_P(ExecutorBackendTest, SingleWorkerReportsNoFailedSteals) {
  GraphBuilder gb;
  gb.begin_group("g");
  for (int i = 0; i < 16; ++i) {
    Task t;
    t.accesses = {acc(1, AccessMode::ReadWrite)};  // serial chain
    t.work = []() {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    };
    gb.add_task(std::move(t));
  }
  const TaskGraph g = gb.build();
  const auto ex = make(1);
  ex->run(g);
  EXPECT_EQ(ex->stats().tasks_run, 16u);
  EXPECT_EQ(ex->stats().failed_steals, 0u);
  EXPECT_EQ(ex->stats().steals, 0u);
}

TEST_P(ExecutorBackendTest, RejectsBadConfig) {
  EXPECT_THROW(make(0), ContractError);
  const auto ex = make(1);
  GraphBuilder gb;
  gb.begin_group("empty");
  EXPECT_THROW(ex->run(gb.build()), ContractError);
}

TEST_P(ExecutorBackendTest, RejectsMisSizedTierHints) {
  GraphBuilder gb;
  gb.begin_group("g");
  for (int i = 0; i < 4; ++i) {
    Task t;
    t.accesses = {acc(static_cast<hms::ObjectId>(i), AccessMode::Write)};
    t.work = [] {};
    gb.add_task(std::move(t));
  }
  const TaskGraph g = gb.build();
  const auto ex = make(2);
  const std::vector<TierHint> wrong(3, TierHint::kHot);
  EXPECT_THROW(ex->run(g, {}, wrong), ContractError);
}

TEST_P(ExecutorBackendTest, StatsAccountForEveryTask) {
  GraphBuilder gb;
  gb.begin_group("g");
  std::atomic<int> count{0};
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    Task t;
    t.accesses = {acc(static_cast<hms::ObjectId>(i % 16),
                      i % 4 == 0 ? AccessMode::Write : AccessMode::Read)};
    t.work = [&count]() { count.fetch_add(1, std::memory_order_relaxed); };
    gb.add_task(std::move(t));
  }
  const TaskGraph g = gb.build();
  const auto ex = make(4);
  ex->run(g);
  EXPECT_EQ(count.load(), kTasks);
  const ExecutorStats& s = ex->stats();
  EXPECT_EQ(s.tasks_run, static_cast<std::uint64_t>(kTasks));
  // Every task was taken for execution exactly once, whichever backend.
  EXPECT_EQ(s.pops + s.steals + s.inject_takes,
            static_cast<std::uint64_t>(kTasks));
  if (GetParam() == ExecutorBackend::kChaseLev) {
    // Chase–Lev enqueues each task exactly once. The channel backend
    // re-enqueues the tail of steal-half batches locally, so its pushes
    // may exceed the task count (but never undercount it).
    EXPECT_EQ(s.pushes, static_cast<std::uint64_t>(kTasks));
    EXPECT_EQ(s.steal_requests, 0u);
    EXPECT_EQ(s.steal_halves, 0u);
  } else {
    EXPECT_GE(s.pushes, static_cast<std::uint64_t>(kTasks));
    // Every steal was granted by an explicit request; declines on top.
    EXPECT_GE(s.steal_requests, s.steals + s.steal_declines);
  }
  // The per-worker breakdown adds up to the aggregate.
  std::uint64_t per_worker_tasks = 0;
  for (unsigned w = 0; w < ex->num_workers(); ++w) {
    per_worker_tasks += ex->worker_stats(w).tasks_run;
  }
  EXPECT_EQ(per_worker_tasks, s.tasks_run);
}

TEST_P(ExecutorBackendTest, ColdHintedTasksAllRunAndAreCounted) {
  GraphBuilder gb;
  gb.begin_group("g");
  std::atomic<int> count{0};
  constexpr int kTasks = 64;
  std::vector<TierHint> hints;
  for (int i = 0; i < kTasks; ++i) {
    Task t;
    t.accesses = {acc(static_cast<hms::ObjectId>(i), AccessMode::Write)};
    t.work = [&count]() { count.fetch_add(1, std::memory_order_relaxed); };
    gb.add_task(std::move(t));
    hints.push_back(i % 2 == 0 ? TierHint::kCold : TierHint::kHot);
  }
  const TaskGraph g = gb.build();
  const auto ex = make(4);
  ex->run(g, {}, hints);
  EXPECT_EQ(count.load(), kTasks);
  EXPECT_EQ(ex->stats().cold_takes, static_cast<std::uint64_t>(kTasks / 2));
}

TEST_P(ExecutorBackendTest, SingleWorkerRunsHotTasksBeforeColdOnes) {
  // A head task fans out to 8 hot + 8 cold successors. With one worker all
  // successors are enqueued by that worker when the head completes, so the
  // hot-before-cold scheduling order is deterministic.
  GraphBuilder gb;
  gb.begin_group("g");
  std::vector<TierHint> hints;
  std::vector<int> order;
  {
    Task head;
    head.accesses = {acc(0, AccessMode::Write)};
    head.work = [] {};
    gb.add_task(std::move(head));
    hints.push_back(TierHint::kHot);
  }
  for (int i = 0; i < 16; ++i) {
    Task t;
    t.accesses = {acc(0, AccessMode::Read),
                  acc(static_cast<hms::ObjectId>(10 + i), AccessMode::Write)};
    t.work = [&order, i]() { order.push_back(i); };
    gb.add_task(std::move(t));
    hints.push_back(i % 2 == 0 ? TierHint::kHot : TierHint::kCold);
  }
  const TaskGraph g = gb.build();
  const auto ex = make(1);
  ex->run(g, {}, hints);
  ASSERT_EQ(order.size(), 16u);
  // The 8 hot successors (even i) all execute before any cold one.
  for (int pos = 0; pos < 8; ++pos) {
    EXPECT_EQ(order[pos] % 2, 0) << "cold task ran at position " << pos;
  }
}

TEST_P(ExecutorBackendTest, PhaseModeWithHintsKeepsBarrierSemantics) {
  GraphBuilder gb;
  std::atomic<int> running{0};
  std::vector<TierHint> hints;
  std::atomic<int> current_group{-1};
  std::atomic<bool> violation{false};
  for (int gi = 0; gi < 3; ++gi) {
    gb.begin_group("g" + std::to_string(gi));
    for (int i = 0; i < 12; ++i) {
      Task t;
      t.accesses = {acc(static_cast<hms::ObjectId>(gi * 100 + i),
                        AccessMode::Write)};
      t.work = [&, gi]() {
        if (current_group.load(std::memory_order_acquire) != gi) {
          violation.store(true, std::memory_order_release);
        }
        running.fetch_add(1, std::memory_order_relaxed);
      };
      gb.add_task(std::move(t));
      hints.push_back(i % 3 == 0 ? TierHint::kCold : TierHint::kHot);
    }
  }
  const TaskGraph g = gb.build();
  const auto ex = make(4);
  ex->run(g, [&](GroupId gi) {
    current_group.store(static_cast<int>(gi), std::memory_order_release);
  }, hints);
  EXPECT_EQ(running.load(), 36);
  EXPECT_FALSE(violation.load());
}

TEST_P(ExecutorBackendTest, DestructorDrainsParkedWorkers) {
  // Workers park when idle; destruction must wake and join them promptly
  // whether or not a run ever happened.
  {
    const auto idle = make(8);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }  // destructor must not hang
  {
    const auto used = make(8);
    GraphBuilder gb;
    gb.begin_group("g");
    std::atomic<int> n{0};
    for (int i = 0; i < 32; ++i) {
      Task t;
      t.accesses = {acc(static_cast<hms::ObjectId>(i), AccessMode::Write)};
      t.work = [&n]() { n.fetch_add(1); };
      gb.add_task(std::move(t));
    }
    used->run(gb.build());
    EXPECT_EQ(n.load(), 32);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }  // parked-after-work destructor must not hang either
  SUCCEED();
}

// Regression: the round-robin injection cursor used to restart at slot 0
// for every group, so a phase-parallel app built from many small groups
// piled all its activations onto the first workers while the rest starved.
// The cursor now persists across groups (and runs): over many 2-task
// groups the scatter must come out balanced across all slots.
TEST_P(ExecutorBackendTest, InjectionScatterIsBalancedAcrossSmallGroups) {
  constexpr unsigned kWorkers = 4;
  constexpr int kGroups = 50;
  constexpr int kPerGroup = 2;  // fewer eligible tasks than workers
  GraphBuilder gb;
  std::atomic<int> n{0};
  for (int gi = 0; gi < kGroups; ++gi) {
    gb.begin_group("g" + std::to_string(gi));
    for (int i = 0; i < kPerGroup; ++i) {
      Task t;
      t.accesses = {acc(static_cast<hms::ObjectId>(gi * 10 + i),
                        AccessMode::Write)};
      t.work = [&n]() { n.fetch_add(1, std::memory_order_relaxed); };
      gb.add_task(std::move(t));
    }
  }
  const TaskGraph g = gb.build();
  const auto ex = make(kWorkers);
  ex->run(g, [](GroupId) {});  // phase mode: groups activate one at a time
  EXPECT_EQ(n.load(), kGroups * kPerGroup);
  const std::vector<std::uint64_t> per_slot = ex->injection_slot_pushes();
  ASSERT_EQ(per_slot.size(), kWorkers);
  std::uint64_t total = 0;
  for (const std::uint64_t c : per_slot) total += c;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kGroups * kPerGroup));
  // 100 activations round-robin over 4 slots: exactly 25 each. With the
  // old per-group cursor reset, slots 0 and 1 would get 50 each and slots
  // 2 and 3 nothing.
  for (unsigned w = 0; w < kWorkers; ++w) {
    EXPECT_EQ(per_slot[w], static_cast<std::uint64_t>(kGroups * kPerGroup) /
                               kWorkers)
        << "slot " << w;
  }
}

// Randomized graph-execution oracle: arbitrary access patterns produce
// arbitrary DAGs; execution must run every task exactly once and never
// start a task before all of its predecessors finished. The completion
// index per task is recorded and checked against every edge.
TEST_P(ExecutorBackendTest, RandomizedGraphOracle) {
  for (const std::uint64_t seed : {1ull, 7ull, 1234ull, 0xdeadull}) {
    Rng rng(seed);
    GraphBuilder gb;
    const int groups = 1 + static_cast<int>(rng.next_below(3));
    const int per_group = 20 + static_cast<int>(rng.next_below(30));
    const int total = groups * per_group;
    std::vector<std::atomic<int>> done(total);
    for (auto& d : done) d.store(0);
    std::atomic<bool> order_violation{false};
    std::atomic<int> executed{0};

    // Build first (task id known = insertion order), then wire the checks.
    for (int gi = 0; gi < groups; ++gi) {
      gb.begin_group("g" + std::to_string(gi));
      for (int i = 0; i < per_group; ++i) {
        Task t;
        const int accesses = 1 + static_cast<int>(rng.next_below(3));
        for (int a = 0; a < accesses; ++a) {
          const auto obj = static_cast<hms::ObjectId>(rng.next_below(8));
          const auto mode = rng.next_below(3) == 0 ? AccessMode::Write
                            : rng.next_below(2) == 0 ? AccessMode::ReadWrite
                                                     : AccessMode::Read;
          t.accesses.push_back(acc(obj, mode));
        }
        gb.add_task(std::move(t));
      }
    }
    TaskGraph g = gb.build();
    // Rebuild with work functors that verify predecessor completion: the
    // builder assigned ids in program order, so predecessors of task n all
    // have ids < n and their edges are queryable from the built graph.
    GraphBuilder gb2;
    for (int gi = 0; gi < groups; ++gi) {
      gb2.begin_group("g" + std::to_string(gi));
      for (int i = 0; i < per_group; ++i) {
        const TaskId id = static_cast<TaskId>(gi * per_group + i);
        Task t;
        t.accesses = g.task(id).accesses;
        t.work = [&, id]() {
          // Every predecessor (direct in-edge) must already be done.
          for (TaskId p = 0; p < static_cast<TaskId>(total); ++p) {
            const auto& succs = g.successors(p);
            if (std::find(succs.begin(), succs.end(), id) != succs.end() &&
                done[p].load(std::memory_order_acquire) == 0) {
              order_violation.store(true, std::memory_order_release);
            }
          }
          done[id].store(1, std::memory_order_release);
          executed.fetch_add(1, std::memory_order_relaxed);
        };
        gb2.add_task(std::move(t));
      }
    }
    const TaskGraph g2 = gb2.build();
    // Random tier hints must never affect correctness, only order.
    std::vector<TierHint> hints;
    for (int i = 0; i < total; ++i) {
      hints.push_back(rng.next_below(2) == 0 ? TierHint::kHot
                                             : TierHint::kCold);
    }
    const auto ex = make(4);
    const bool phase = rng.next_below(2) == 0;
    if (phase) {
      ex->run(g2, [](GroupId) {}, hints);
    } else {
      ex->run(g2, {}, hints);
    }
    EXPECT_EQ(executed.load(), total) << "seed " << seed;
    EXPECT_FALSE(order_violation.load()) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ExecutorBackendTest,
    ::testing::Values(ExecutorBackend::kChaseLev, ExecutorBackend::kChannel),
    [](const ::testing::TestParamInfo<ExecutorBackend>& param_info) {
      return std::string(to_string(param_info.param));
    });

TEST(ExecutorBackendParsing, RoundTripsAndRejectsUnknown) {
  EXPECT_EQ(parse_executor_backend("chaselev"), ExecutorBackend::kChaseLev);
  EXPECT_EQ(parse_executor_backend("channel"), ExecutorBackend::kChannel);
  EXPECT_FALSE(parse_executor_backend("").has_value());
  EXPECT_FALSE(parse_executor_backend("Channel").has_value());
  EXPECT_STREQ(to_string(ExecutorBackend::kChaseLev), "chaselev");
  EXPECT_STREQ(to_string(ExecutorBackend::kChannel), "channel");
}

}  // namespace
}  // namespace tahoe::task
