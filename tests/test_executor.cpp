// Real thread-pool executor: correctness under dependences and the
// phase-boundary hook.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "task/executor.hpp"

namespace tahoe::task {
namespace {

DataAccess acc(hms::ObjectId obj, AccessMode mode) {
  DataAccess a;
  a.object = obj;
  a.mode = mode;
  a.traffic.loads = 1;
  a.traffic.footprint = 64;
  return a;
}

TEST(Executor, RunsEveryTaskOnce) {
  GraphBuilder gb;
  gb.begin_group("g");
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    Task t;
    t.accesses = {acc(static_cast<hms::ObjectId>(i), AccessMode::Write)};
    t.work = [&count]() { count.fetch_add(1, std::memory_order_relaxed); };
    gb.add_task(std::move(t));
  }
  const TaskGraph g = gb.build();
  Executor ex(4);
  ex.run(g);
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(ex.stats().tasks_run, 100u);
}

TEST(Executor, DependencesOrderEffects) {
  // Chain: each task appends its id; RAW deps force program order.
  GraphBuilder gb;
  gb.begin_group("g");
  std::vector<int> order;
  std::mutex m;
  for (int i = 0; i < 32; ++i) {
    Task t;
    t.accesses = {acc(1, AccessMode::ReadWrite)};  // serial chain
    t.work = [&order, &m, i]() {
      const std::lock_guard<std::mutex> lock(m);
      order.push_back(i);
    };
    gb.add_task(std::move(t));
  }
  const TaskGraph g = gb.build();
  Executor ex(4);
  ex.run(g);
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
}

TEST(Executor, ForkJoinComputesCorrectSum) {
  // One producer writes, N parallel readers accumulate, one reducer reads.
  GraphBuilder gb;
  gb.begin_group("g");
  int shared_value = 0;
  std::atomic<long> sum{0};
  {
    Task t;
    t.accesses = {acc(1, AccessMode::Write)};
    t.work = [&shared_value]() { shared_value = 21; };
    gb.add_task(std::move(t));
  }
  for (int i = 0; i < 64; ++i) {
    Task t;
    t.accesses = {acc(1, AccessMode::Read),
                  acc(static_cast<hms::ObjectId>(100 + i), AccessMode::Write)};
    t.work = [&shared_value, &sum]() {
      sum.fetch_add(shared_value, std::memory_order_relaxed);
    };
    gb.add_task(std::move(t));
  }
  long result = 0;
  {
    Task t;
    t.accesses = {acc(1, AccessMode::Write)};
    t.work = [&result, &sum]() { result = sum.load(); };
    gb.add_task(std::move(t));
  }
  const TaskGraph g = gb.build();
  Executor ex(8);
  ex.run(g);
  EXPECT_EQ(result, 64L * 21L);
}

TEST(Executor, PhaseHookRunsBeforeEachGroup) {
  GraphBuilder gb;
  std::atomic<int> phase_marker{-1};
  std::vector<int> seen_by_group(3, -2);
  for (int gi = 0; gi < 3; ++gi) {
    gb.begin_group("g" + std::to_string(gi));
    for (int i = 0; i < 8; ++i) {
      Task t;
      t.accesses = {acc(static_cast<hms::ObjectId>(gi), AccessMode::ReadWrite)};
      t.work = [&phase_marker, &seen_by_group, gi]() {
        seen_by_group[gi] = phase_marker.load(std::memory_order_acquire);
      };
      gb.add_task(std::move(t));
    }
  }
  const TaskGraph g = gb.build();
  Executor ex(4);
  std::vector<GroupId> hook_order;
  ex.run(g, [&](GroupId gi) {
    hook_order.push_back(gi);
    phase_marker.store(static_cast<int>(gi), std::memory_order_release);
  });
  EXPECT_EQ(hook_order, (std::vector<GroupId>{0, 1, 2}));
  // Every task observed its own group's marker: the hook really ran before
  // the group and no task of a later group overlapped.
  for (int gi = 0; gi < 3; ++gi) EXPECT_EQ(seen_by_group[gi], gi);
}

TEST(Executor, ExceptionsPropagate) {
  GraphBuilder gb;
  gb.begin_group("g");
  Task t;
  t.accesses = {acc(1, AccessMode::Write)};
  t.work = []() { throw std::runtime_error("kernel failed"); };
  gb.add_task(std::move(t));
  const TaskGraph g = gb.build();
  Executor ex(2);
  EXPECT_THROW(ex.run(g), std::runtime_error);
}

TEST(Executor, ReusableAcrossRuns) {
  Executor ex(3);
  for (int round = 0; round < 5; ++round) {
    GraphBuilder gb;
    gb.begin_group("g");
    std::atomic<int> n{0};
    for (int i = 0; i < 20; ++i) {
      Task t;
      t.accesses = {acc(static_cast<hms::ObjectId>(i), AccessMode::Write)};
      t.work = [&n]() { n.fetch_add(1); };
      gb.add_task(std::move(t));
    }
    const TaskGraph g = gb.build();
    ex.run(g);
    EXPECT_EQ(n.load(), 20);
  }
  EXPECT_EQ(ex.stats().tasks_run, 100u);
}

TEST(Executor, SingleWorkerIsSequential) {
  GraphBuilder gb;
  gb.begin_group("g");
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    Task t;
    t.accesses = {acc(static_cast<hms::ObjectId>(i), AccessMode::Write)};
    t.work = [&order, i]() { order.push_back(i); };
    gb.add_task(std::move(t));
  }
  const TaskGraph g = gb.build();
  Executor ex(1);
  ex.run(g);
  EXPECT_EQ(order.size(), 10u);
}

TEST(Executor, RejectsBadConfig) {
  EXPECT_THROW(Executor(0), ContractError);
  Executor ex(1);
  GraphBuilder gb;
  gb.begin_group("empty");
  EXPECT_THROW(ex.run(gb.build()), ContractError);
}

}  // namespace
}  // namespace tahoe::task
