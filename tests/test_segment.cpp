// Segment allocator: randomized stress against a shadow-map oracle,
// exhaustion and fault-injection failure paths, attach-time header
// validation, and freelist reuse semantics.
#include "hms/segment.hpp"

#include <gtest/gtest.h>
#include <sys/mman.h>

#include <cstring>
#include <map>
#include <vector>

#include "common/assert.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace tahoe::hms {
namespace {

TEST(Segment, HeaderIsInitialized) {
  Segment seg(1 * kMiB);
  EXPECT_EQ(seg.header().magic, SegmentHeader::kMagic);
  EXPECT_EQ(seg.header().version, SegmentHeader::kVersion);
  EXPECT_EQ(seg.header().bytes, seg.size());
  EXPECT_EQ(seg.root(), 0u);
  EXPECT_EQ(seg.live_allocations(), 0u);
  EXPECT_GE(seg.used(), sizeof(SegmentHeader));
}

TEST(Segment, AllocFreeRoundTrip) {
  Segment seg(1 * kMiB);
  void* a = seg.alloc(100);
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(seg.contains(a));
  EXPECT_EQ(seg.live_allocations(), 1u);
  // Offsets and addresses round-trip.
  EXPECT_EQ(seg.at(seg.offset_of(a)), a);
  seg.free(a);
  EXPECT_EQ(seg.live_allocations(), 0u);
  EXPECT_EQ(seg.freelist_blocks(), 1u);
  // A same-class allocation reuses the freed block exactly.
  void* b = seg.alloc(100);
  EXPECT_EQ(b, a);
  EXPECT_EQ(seg.freelist_blocks(), 0u);
}

TEST(Segment, LargeBlocksUseFirstFitReuse) {
  Segment seg(4 * kMiB);
  void* big = seg.alloc(200 * kKiB);  // beyond the largest pow2 class
  ASSERT_NE(big, nullptr);
  seg.free(big);
  // A smaller large-class request reuses the freed block (first fit).
  void* again = seg.alloc(100 * kKiB);
  EXPECT_EQ(again, big);
}

TEST(Segment, ZeroByteAllocThrows) {
  Segment seg(1 * kMiB);
  EXPECT_THROW(seg.alloc(0), ContractError);
}

TEST(Segment, ForeignAndDoubleFreesThrow) {
  Segment seg(1 * kMiB);
  int x = 0;
  EXPECT_THROW(seg.free(&x), ContractError);
  EXPECT_THROW(seg.free(nullptr), ContractError);
  void* p = seg.alloc(64);
  seg.free(p);
  EXPECT_THROW(seg.free(p), ContractError);  // double free
}

TEST(Segment, ExhaustionReturnsNull) {
  Segment seg(64 * kKiB);
  std::vector<void*> live;
  while (void* p = seg.alloc(1 * kKiB)) live.push_back(p);
  EXPECT_GT(live.size(), 10u);   // most of the segment was allocatable
  EXPECT_EQ(seg.alloc(1 * kKiB), nullptr);  // and it fails cleanly when full
  // Freeing restores allocatability.
  seg.free(live.back());
  live.pop_back();
  EXPECT_NE(seg.alloc(1 * kKiB), nullptr);
}

TEST(Segment, ReallocGrowsAndPreservesContents) {
  Segment seg(1 * kMiB);
  auto* p = static_cast<std::byte*>(seg.alloc(40));
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x5a, 40);
  // Within the same size class the block is reused in place.
  EXPECT_EQ(seg.realloc(p, 48), p);
  // Growing beyond the class moves the payload.
  auto* q = static_cast<std::byte*>(seg.realloc(p, 4096));
  ASSERT_NE(q, nullptr);
  EXPECT_NE(q, p);
  for (int i = 0; i < 40; ++i) ASSERT_EQ(q[i], std::byte{0x5a});
  // realloc(nullptr) behaves like alloc.
  EXPECT_NE(seg.realloc(nullptr, 16), nullptr);
}

TEST(Segment, RootOffsetPersists) {
  Segment seg(1 * kMiB);
  void* p = seg.alloc(128);
  seg.set_root(seg.offset_of(p));
  EXPECT_EQ(seg.at(seg.root()), p);
}

// ---- randomized stress with a shadow-map oracle -------------------------

TEST(SegmentStress, RandomizedAllocFreeReallocMatchesOracle) {
  Segment seg(8 * kMiB);
  Rng rng(0xdecafbadULL);
  // ptr -> (size, fill byte). Every live block stays filled with its tag;
  // any allocator overlap or lost-update bug corrupts a tag.
  std::map<std::byte*, std::pair<std::uint64_t, std::uint8_t>> oracle;
  std::uint8_t next_tag = 1;

  auto check_all = [&] {
    for (const auto& [p, meta] : oracle) {
      for (std::uint64_t i = 0; i < meta.first; ++i) {
        ASSERT_EQ(p[i], std::byte{meta.second})
            << "corruption in block of " << meta.first << " bytes";
      }
    }
  };

  for (int step = 0; step < 4000; ++step) {
    const double roll = rng.next_double();
    if (roll < 0.5 || oracle.empty()) {
      const std::uint64_t size = 1 + rng.next_below(80 * 1024);
      auto* p = static_cast<std::byte*>(seg.alloc(size));
      if (p == nullptr) continue;  // exhausted this round: fine
      const std::uint8_t tag = next_tag++;
      if (next_tag == 0) next_tag = 1;
      std::memset(p, tag, size);
      ASSERT_TRUE(oracle.emplace(p, std::make_pair(size, tag)).second)
          << "allocator returned a live pointer twice";
    } else if (roll < 0.8) {
      auto it = oracle.begin();
      std::advance(it, static_cast<long>(rng.next_below(oracle.size())));
      seg.free(it->first);
      oracle.erase(it);
    } else {
      auto it = oracle.begin();
      std::advance(it, static_cast<long>(rng.next_below(oracle.size())));
      const std::uint64_t size = 1 + rng.next_below(96 * 1024);
      auto* p = static_cast<std::byte*>(seg.realloc(it->first, size));
      if (p == nullptr) continue;  // grow failed; original block untouched
      const std::uint64_t keep = std::min(size, it->second.first);
      for (std::uint64_t i = 0; i < keep; ++i) {
        ASSERT_EQ(p[i], std::byte{it->second.second});
      }
      const std::uint8_t tag = it->second.second;
      if (p != it->first) oracle.erase(it);
      std::memset(p, tag, size);
      oracle[p] = {size, tag};
    }
    if (step % 512 == 0) check_all();
    ASSERT_EQ(seg.live_allocations(), oracle.size());
  }
  check_all();
  // Drain and confirm full accounting.
  while (!oracle.empty()) {
    seg.free(oracle.begin()->first);
    oracle.erase(oracle.begin());
  }
  EXPECT_EQ(seg.live_allocations(), 0u);
  EXPECT_EQ(seg.live_bytes(), 0u);
}

// ---- fault injection ----------------------------------------------------

TEST(SegmentFault, InjectedSegmentAllocFailuresReturnNull) {
  fault::FaultConfig cfg;
  cfg.segment_alloc = 1.0;  // every segment allocation fails
  fault::global().configure(cfg);
  Segment seg(1 * kMiB);
  EXPECT_EQ(seg.alloc(64), nullptr);
  EXPECT_EQ(fault::global().injected(fault::Site::SegmentAlloc), 1u);
  fault::global().disarm();
  EXPECT_NE(seg.alloc(64), nullptr);  // recovers once disarmed
}

TEST(SegmentFault, PartialRateStillLeavesProgress) {
  fault::FaultConfig cfg;
  cfg.segment_alloc = 0.5;
  fault::global().configure(cfg);
  Segment seg(4 * kMiB);
  int ok = 0;
  for (int i = 0; i < 200; ++i) {
    if (seg.alloc(64) != nullptr) ++ok;
  }
  const std::uint64_t injected =
      fault::global().injected(fault::Site::SegmentAlloc);
  fault::global().disarm();  // disarm resets the counts; read first
  EXPECT_GT(ok, 0);
  EXPECT_LT(ok, 200);
  EXPECT_GT(injected, 0u);
}

// ---- attach validation --------------------------------------------------

TEST(SegmentAttach, AcceptsAValidImage) {
  Segment seg(1 * kMiB);
  void* p = seg.alloc(64);
  seg.set_root(seg.offset_of(p));
  Segment view = Segment::attach(seg.base(), seg.size());
  EXPECT_FALSE(view.owning());
  EXPECT_EQ(view.root(), seg.root());
  EXPECT_EQ(view.live_allocations(), 1u);
}

TEST(SegmentAttach, RejectsBadMagic) {
  Segment seg(1 * kMiB);
  std::vector<std::byte> image(seg.size());
  std::memcpy(image.data(), seg.base(), seg.size());
  image[0] = std::byte{0x00};  // corrupt the magic
  EXPECT_THROW(Segment::attach(image.data(), image.size()), ContractError);
}

TEST(SegmentAttach, RejectsWrongVersion) {
  Segment seg(1 * kMiB);
  std::vector<std::byte> image(seg.size());
  std::memcpy(image.data(), seg.base(), seg.size());
  auto* header = reinterpret_cast<SegmentHeader*>(image.data());
  header->version = SegmentHeader::kVersion + 1;
  EXPECT_THROW(Segment::attach(image.data(), image.size()), ContractError);
}

TEST(SegmentAttach, RejectsSizeMismatch) {
  Segment seg(1 * kMiB);
  EXPECT_THROW(Segment::attach(seg.base(), seg.size() / 2), ContractError);
  EXPECT_THROW(Segment::attach(nullptr, seg.size()), ContractError);
}

TEST(SegmentShm, FileBackedSegmentWorksWhenShmIsAvailable) {
  // /dev/shm may be unavailable in minimal containers; the constructor
  // contract (throw, not crash) is all this asserts in that case.
  ::shm_unlink("/tahoe-test-segment");  // clear leftovers from crashed runs
  try {
    Segment seg("/tahoe-test-segment", 1 * kMiB);
    EXPECT_EQ(seg.shm_name(), "/tahoe-test-segment");
    void* p = seg.alloc(64);
    EXPECT_NE(p, nullptr);
  } catch (const ContractError&) {
    GTEST_SKIP() << "shm_open unavailable in this environment";
  }
}

TEST(SegmentShm, NameMustStartWithSlash) {
  EXPECT_THROW(Segment("bad-name", 1 * kMiB), ContractError);
}

}  // namespace
}  // namespace tahoe::hms
