// Cross-module property tests: randomized invariants that must hold for
// any input the generators produce.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/knapsack.hpp"
#include "hms/space_manager.hpp"
#include "memsim/fluid.hpp"
#include "memsim/machine.hpp"
#include "task/graph.hpp"
#include "task/sim_executor.hpp"

namespace tahoe {
namespace {

// ---------- fluid simulator ----------

TEST(FluidProperty, WorkConservationUnderRandomArrivals) {
  // Total served channel-seconds equal total demand; no flow finishes
  // before its uncontended lower bound.
  Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    memsim::FluidSim sim(3);
    std::vector<double> demand(3, 0.0);
    std::map<memsim::FlowId, double> lower_bound;
    std::map<memsim::FlowId, double> start;
    const int flows = 5 + static_cast<int>(rng.next_below(20));
    for (int f = 0; f < flows; ++f) {
      memsim::FlowSpec spec;
      spec.serial_seconds = rng.next_double() * 0.2;
      spec.device_seconds = {rng.next_double() * 0.5, rng.next_double() * 0.3,
                             rng.next_double() * 0.1};
      double lb = spec.serial_seconds;
      for (std::size_t d = 0; d < 3; ++d) {
        demand[d] += spec.device_seconds[d];
        lb = std::max(lb, spec.device_seconds[d]);
      }
      const memsim::FlowId id = sim.start_flow(spec);
      lower_bound[id] = lb;
      start[id] = sim.now();
      if (rng.next_below(3) == 0) sim.advance(rng.next_double() * 0.1);
    }
    while (const auto c = sim.step()) {
      EXPECT_GE(c->time - start[c->id] + 1e-9, lower_bound[c->id]);
    }
    for (std::size_t d = 0; d < 3; ++d) {
      EXPECT_NEAR(sim.device_busy_seconds(d), demand[d], 1e-9);
    }
  }
}

TEST(FluidProperty, CompletionTimesNondecreasing) {
  Rng rng(7);
  memsim::FluidSim sim(2);
  for (int f = 0; f < 40; ++f) {
    memsim::FlowSpec spec;
    spec.serial_seconds = rng.next_double() * 0.01;
    spec.device_seconds = {rng.next_double() * 0.05, rng.next_double() * 0.05};
    sim.start_flow(spec);
  }
  double last = 0.0;
  while (const auto c = sim.step()) {
    EXPECT_GE(c->time + 1e-12, last);
    last = c->time;
  }
}

// ---------- task graph ----------

task::TaskGraph random_graph(Rng& rng, std::size_t groups,
                             std::size_t tasks_per_group,
                             std::size_t objects) {
  task::GraphBuilder gb;
  for (std::size_t g = 0; g < groups; ++g) {
    gb.begin_group("g" + std::to_string(g));
    for (std::size_t i = 0; i < tasks_per_group; ++i) {
      task::Task t;
      const std::size_t n_acc = 1 + rng.next_below(3);
      for (std::size_t a = 0; a < n_acc; ++a) {
        task::DataAccess acc;
        acc.object = static_cast<hms::ObjectId>(rng.next_below(objects));
        acc.mode = static_cast<task::AccessMode>(rng.next_below(3));
        acc.traffic.loads = 1 + rng.next_below(1000);
        acc.traffic.footprint = 64 * (1 + rng.next_below(1000));
        t.accesses.push_back(acc);
      }
      gb.add_task(std::move(t));
    }
  }
  return gb.build();
}

TEST(GraphProperty, RandomGraphsAreAcyclicAndConsistent) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const task::TaskGraph g = random_graph(rng, 4, 8, 5);
    EXPECT_TRUE(g.edges_respect_program_order());
    // Predecessor counts match the successor lists exactly.
    std::vector<std::uint32_t> counted(g.num_tasks(), 0);
    std::size_t edges = 0;
    for (task::TaskId id = 0; id < g.num_tasks(); ++id) {
      for (task::TaskId s : g.successors(id)) {
        ++counted[s];
        ++edges;
      }
    }
    EXPECT_EQ(edges, g.num_edges());
    for (task::TaskId id = 0; id < g.num_tasks(); ++id) {
      EXPECT_EQ(counted[id], g.num_predecessors(id));
    }
  }
}

TEST(GraphProperty, ConflictingAccessesAlwaysOrdered) {
  // Any two tasks where at least one writes a shared unit must be
  // connected by a directed path.
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    const task::TaskGraph g = random_graph(rng, 3, 6, 3);
    // Floyd-style reachability over the small DAG.
    const std::size_t n = g.num_tasks();
    std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
    for (auto id = static_cast<task::TaskId>(n); id-- > 0;) {
      for (task::TaskId s : g.successors(id)) {
        reach[id][s] = true;
        for (std::size_t k = 0; k < n; ++k) {
          if (reach[s][k]) reach[id][k] = true;
        }
      }
    }
    for (task::TaskId a = 0; a < n; ++a) {
      for (task::TaskId b = a + 1; b < n; ++b) {
        bool conflict = false;
        for (const task::DataAccess& x : g.task(a).accesses) {
          for (const task::DataAccess& y : g.task(b).accesses) {
            if (x.object == y.object && (x.writes() || y.writes())) {
              conflict = true;
            }
          }
        }
        if (conflict) {
          EXPECT_TRUE(reach[a][b] || reach[b][a])
              << "unordered conflict between " << a << " and " << b;
        }
      }
    }
  }
}

// ---------- simulated executor ----------

TEST(SimExecutorProperty, MoreWorkersNeverSlower) {
  Rng rng(5);
  const memsim::Machine m = memsim::machines::platform_a(
      memsim::devices::nvm_bw_fraction(memsim::devices::dram(64 * kMiB), 0.5,
                                       kGiB),
      64 * kMiB);
  for (int trial = 0; trial < 8; ++trial) {
    const task::TaskGraph g = random_graph(rng, 3, 12, 6);
    double prev = 1e300;
    for (const std::uint32_t workers : {1u, 2u, 4u, 16u}) {
      task::SimExecutor ex;
      task::SimExecutor::Options opts;
      opts.workers = workers;
      opts.check_capacity = false;
      hms::PlacementMap p;
      const double t = ex.run(g, m, p, {}, opts).makespan;
      EXPECT_LE(t, prev * (1.0 + 1e-9));
      prev = t;
    }
  }
}

TEST(SimExecutorProperty, DramPlacementNeverSlowerThanNvm) {
  Rng rng(31);
  const memsim::Machine m = memsim::machines::platform_a(
      memsim::devices::nvm_bw_fraction(memsim::devices::dram(64 * kMiB), 0.5,
                                       kGiB),
      64 * kMiB);
  for (int trial = 0; trial < 8; ++trial) {
    const task::TaskGraph g = random_graph(rng, 2, 8, 4);
    task::SimExecutor ex;
    task::SimExecutor::Options opts;
    opts.check_capacity = false;
    hms::PlacementMap all_dram;
    hms::PlacementMap all_nvm;
    for (hms::ObjectId o = 0; o < 4; ++o) {
      all_dram.set(o, 0, memsim::kDram);
      all_nvm.set(o, 0, memsim::kNvm);
    }
    const double t_dram = ex.run(g, m, all_dram, {}, opts).makespan;
    const double t_nvm = ex.run(g, m, all_nvm, {}, opts).makespan;
    EXPECT_LE(t_dram, t_nvm * (1.0 + 1e-9));
  }
}

// ---------- knapsack vs space manager ----------

TEST(KnapsackProperty, SolutionsAlwaysFitAndBeatGreedyOrTie) {
  Rng rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<core::KnapsackItem> items;
    const std::size_t n = 4 + rng.next_below(12);
    for (std::size_t i = 0; i < n; ++i) {
      items.push_back(core::KnapsackItem{rng.next_below(800) + 1,
                                         rng.next_double() * 4.0 - 0.5});
    }
    const std::uint64_t cap = 400 + rng.next_below(2000);
    const core::KnapsackResult dp = core::solve(items, cap, 4096);
    const core::KnapsackResult greedy = core::solve_greedy(items, cap);
    EXPECT_LE(dp.total_size, cap);
    EXPECT_GE(dp.total_value + 1e-9, greedy.total_value);
    // Chosen indices are unique and ascending.
    for (std::size_t i = 1; i < dp.chosen.size(); ++i) {
      EXPECT_LT(dp.chosen[i - 1], dp.chosen[i]);
    }
  }
}

TEST(SpaceManagerProperty, VictimsAlwaysSufficientAndMinimalish) {
  Rng rng(77);
  for (int trial = 0; trial < 40; ++trial) {
    hms::SpaceManager sm(1 << 20);
    std::map<hms::SpaceManager::Unit, std::uint64_t> sizes;
    for (hms::ObjectId o = 0; o < 12; ++o) {
      const std::uint64_t bytes = 1 + rng.next_below(200'000);
      if (sm.add(o, 0, bytes)) sizes[{o, 0}] = bytes;
    }
    const std::uint64_t request = 1 + rng.next_below(900'000);
    const auto victims = sm.pick_victims(request);
    if (!victims.empty()) {
      std::uint64_t freed = 0;
      for (const auto& v : victims) freed += sizes.at(v);
      EXPECT_GE(sm.free_bytes() + freed, request);
    } else {
      // Either it already fits or it is hopeless even when empty.
      EXPECT_TRUE(sm.can_fit(request) || request > sm.capacity());
    }
  }
}

}  // namespace
}  // namespace tahoe
