// Property-based stress test for TaskGraph dependence derivation: hundreds
// of randomized access sets checked against a brute-force RAW/WAR/WAW
// oracle. The builder may dedup or transitively reduce edges, so the
// contract is ordering, not edge identity: every conflicting task pair must
// be ordered by a directed path, and every edge must be justified by a
// direct conflict.
#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "task/graph.hpp"

namespace tahoe {
namespace {

/// Do two declared accesses touch overlapping storage? A whole-object
/// access (kAllChunks) overlaps every chunk of that object.
bool overlaps(const task::DataAccess& a, const task::DataAccess& b) {
  if (a.object != b.object) return false;
  return a.chunk == task::kAllChunks || b.chunk == task::kAllChunks ||
         a.chunk == b.chunk;
}

/// OpenMP-style conflict: overlapping storage and at least one writer.
bool conflicts(const task::Task& x, const task::Task& y) {
  for (const task::DataAccess& a : x.accesses) {
    for (const task::DataAccess& b : y.accesses) {
      if (overlaps(a, b) && (a.writes() || b.writes())) return true;
    }
  }
  return false;
}

/// Reachability matrix via forward BFS from every task. Graphs here are
/// small (tens of tasks), so the O(T * E) cost is negligible.
std::vector<std::vector<bool>> reachability(const task::TaskGraph& g) {
  const std::size_t n = g.num_tasks();
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (task::TaskId s = 0; s < n; ++s) {
    std::deque<task::TaskId> frontier{s};
    while (!frontier.empty()) {
      const task::TaskId t = frontier.front();
      frontier.pop_front();
      for (const task::TaskId next : g.successors(t)) {
        if (!reach[s][next]) {
          reach[s][next] = true;
          frontier.push_back(next);
        }
      }
    }
  }
  return reach;
}

/// Random graph with chunked, whole-object, and mixed accesses.
task::TaskGraph random_graph(Rng& rng) {
  const std::size_t groups = 1 + rng.next_below(5);
  const std::size_t objects = 1 + rng.next_below(4);
  const std::size_t chunks = 1 + rng.next_below(3);
  task::GraphBuilder gb;
  for (std::size_t g = 0; g < groups; ++g) {
    gb.begin_group("g" + std::to_string(g));
    const std::size_t tasks = 1 + rng.next_below(8);
    for (std::size_t i = 0; i < tasks; ++i) {
      task::Task t;
      const std::size_t n_acc = 1 + rng.next_below(3);
      for (std::size_t a = 0; a < n_acc; ++a) {
        task::DataAccess acc;
        acc.object = static_cast<hms::ObjectId>(rng.next_below(objects));
        // 1-in-4 accesses cover the whole object, the rest one chunk.
        acc.chunk = rng.next_below(4) == 0 ? task::kAllChunks
                                           : rng.next_below(chunks);
        acc.mode = static_cast<task::AccessMode>(rng.next_below(3));
        acc.traffic.loads = 1 + rng.next_below(100);
        acc.traffic.footprint = 64 * (1 + rng.next_below(100));
        t.accesses.push_back(acc);
      }
      gb.add_task(std::move(t));
    }
  }
  return gb.build();
}

TEST(GraphOracle, ConflictingPairsAreAlwaysOrdered) {
  Rng rng(0xdead5eed);
  for (int trial = 0; trial < 300; ++trial) {
    const task::TaskGraph g = random_graph(rng);
    const auto reach = reachability(g);
    for (task::TaskId i = 0; i < g.num_tasks(); ++i) {
      for (task::TaskId j = i + 1; j < g.num_tasks(); ++j) {
        if (conflicts(g.task(i), g.task(j))) {
          ASSERT_TRUE(reach[i][j])
              << "trial " << trial << ": conflicting tasks " << i << " -> "
              << j << " not ordered by any path";
        }
      }
    }
  }
}

TEST(GraphOracle, EveryEdgeIsJustifiedByADirectConflict) {
  Rng rng(0xfeedbead);
  for (int trial = 0; trial < 300; ++trial) {
    const task::TaskGraph g = random_graph(rng);
    for (task::TaskId i = 0; i < g.num_tasks(); ++i) {
      for (const task::TaskId j : g.successors(i)) {
        ASSERT_LT(i, j) << "trial " << trial << ": edge against program order";
        ASSERT_TRUE(conflicts(g.task(i), g.task(j)))
            << "trial " << trial << ": spurious edge " << i << " -> " << j;
      }
    }
    ASSERT_TRUE(g.edges_respect_program_order()) << "trial " << trial;
  }
}

TEST(GraphOracle, PredecessorCountsMatchInEdges) {
  Rng rng(0xabcdef01);
  for (int trial = 0; trial < 200; ++trial) {
    const task::TaskGraph g = random_graph(rng);
    std::vector<std::uint32_t> in_degree(g.num_tasks(), 0);
    std::size_t edges = 0;
    for (task::TaskId i = 0; i < g.num_tasks(); ++i) {
      for (const task::TaskId j : g.successors(i)) {
        ++in_degree[j];
        ++edges;
      }
    }
    EXPECT_EQ(edges, g.num_edges()) << "trial " << trial;
    for (task::TaskId t = 0; t < g.num_tasks(); ++t) {
      ASSERT_EQ(in_degree[t], g.num_predecessors(t))
          << "trial " << trial << " task " << t;
    }
  }
}

TEST(GraphOracle, GroupReferenceIndexMatchesAccessSets) {
  Rng rng(0x5eedf00d);
  for (int trial = 0; trial < 200; ++trial) {
    const task::TaskGraph g = random_graph(rng);
    for (const auto& [obj, chunk] : g.referenced_units()) {
      const std::vector<task::GroupId> via_index =
          g.groups_referencing(obj, chunk);
      for (task::GroupId grp = 0; grp < g.num_groups(); ++grp) {
        const bool listed = std::find(via_index.begin(), via_index.end(),
                                      grp) != via_index.end();
        EXPECT_EQ(listed, g.group_references(grp, obj, chunk))
            << "trial " << trial << " unit (" << obj << ", " << chunk
            << ") group " << grp;
      }
    }
  }
}

}  // namespace
}  // namespace tahoe
