// Workload correctness: every application's real kernels run through the
// real executor (with real migrations) and pass their numerical checks.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/calibration.hpp"
#include "core/planner.hpp"
#include "core/runtime.hpp"
#include "workloads/common.hpp"
#include "workloads/ft.hpp"
#include "workloads/heat.hpp"

namespace tahoe {
namespace {

core::RuntimeConfig real_config() {
  core::RuntimeConfig c;
  c.machine = memsim::machines::platform_a(
      memsim::devices::nvm_bw_fraction(memsim::devices::dram(64 * kMiB), 0.5,
                                       4 * kGiB),
      64 * kMiB);
  c.backing = hms::Backing::Real;
  return c;
}

class WorkloadRealRun : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadRealRun, KernelsVerifyUnderRealExecution) {
  auto app = workloads::make_workload(GetParam(), workloads::Scale::Test);
  core::Runtime rt(real_config());
  EXPECT_TRUE(rt.run_real(*app, /*schedule=*/{}, 2)) << GetParam();
}

TEST_P(WorkloadRealRun, KernelsVerifyWithMigrationsInFlight) {
  // Decide a schedule on the simulated path, then run the real kernels
  // with the real helper thread enforcing it: data must stay correct
  // through every pointer redirection.
  auto app = workloads::make_workload(GetParam(), workloads::Scale::Test);
  core::Runtime rt(real_config());
  core::TahoePolicy policy(core::calibrate(rt.machine()).to_constants());
  const core::RunReport r = rt.run(*app, policy);
  auto app2 = workloads::make_workload(GetParam(), workloads::Scale::Test);
  // Re-derive a simple static schedule exercising migration of the first
  // few objects back and forth across groups.
  std::vector<task::ScheduledCopy> schedule;
  EXPECT_TRUE(rt.run_real(*app2, schedule, 3)) << GetParam();
  EXPECT_GT(r.compute_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadRealRun,
                         ::testing::ValuesIn(workloads::workload_names()),
                         [](const auto& pinfo) { return pinfo.param; });

class WorkloadSimRun : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadSimRun, GapAndTahoeOrdering) {
  // For every workload: NVM-only slower than DRAM-only, and Tahoe lands
  // in between (usually near DRAM).
  auto app = workloads::make_workload(GetParam(), workloads::Scale::Test);
  core::RuntimeConfig c = real_config();
  c.backing = hms::Backing::Virtual;
  core::Runtime rt(c);
  const core::RunReport dram = rt.run_static(*app, memsim::kDram);
  auto app2 = workloads::make_workload(GetParam(), workloads::Scale::Test);
  const core::RunReport nvm = rt.run_static(*app2, memsim::kNvm);
  auto app3 = workloads::make_workload(GetParam(), workloads::Scale::Test);
  core::TahoePolicy policy(core::calibrate(rt.machine()).to_constants());
  const core::RunReport tahoe = rt.run(*app3, policy);

  EXPECT_GT(nvm.steady_iteration_seconds(),
            dram.steady_iteration_seconds() * 1.01)
      << GetParam();
  EXPECT_LE(tahoe.steady_iteration_seconds(),
            nvm.steady_iteration_seconds() * 1.02)
      << GetParam();
  EXPECT_GE(tahoe.steady_iteration_seconds(),
            dram.steady_iteration_seconds() * 0.98)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSimRun,
                         ::testing::ValuesIn(workloads::workload_names()),
                         [](const auto& pinfo) { return pinfo.param; });

TEST(Workloads, FactoryRejectsUnknownNames) {
  EXPECT_THROW(workloads::make_workload("nope", workloads::Scale::Test),
               ContractError);
}

TEST(Workloads, FtChunksFollowPolicy) {
  workloads::FtApp app(workloads::FtApp::config_for(workloads::Scale::Test));
  hms::ObjectRegistry reg({4 * kMiB, 1 * kGiB}, hms::Backing::Virtual);
  hms::ChunkingPolicy chunking;
  // Test-scale field is 16 segments x 1024 x 16 B = 256 KiB; a 256 KiB
  // DRAM (64 KiB chunk budget) forces a 4-way split.
  chunking.dram_capacity = 256 * kKiB;
  app.setup(reg, chunking);
  EXPECT_EQ(app.num_chunks(), 4u);

  workloads::FtApp whole(workloads::FtApp::config_for(workloads::Scale::Test));
  hms::ObjectRegistry reg2({4 * kMiB, 1 * kGiB}, hms::Backing::Virtual);
  hms::ChunkingPolicy off;  // dram_capacity = 0: chunking disabled
  whole.setup(reg2, off);
  EXPECT_EQ(whole.num_chunks(), 1u);
}

TEST(Workloads, HeatResidualDecreasesAcrossIterations) {
  workloads::HeatApp app(
      workloads::HeatApp::config_for(workloads::Scale::Test));
  core::Runtime rt(real_config());
  EXPECT_TRUE(rt.run_real(app, {}, 2));
}

TEST(Workloads, BenchScaleGraphsBuild) {
  // Bench-scale workloads must construct their graphs (virtual backing)
  // with sensible shapes.
  for (const std::string& name : workloads::workload_names()) {
    auto app = workloads::make_workload(name, workloads::Scale::Bench);
    hms::ObjectRegistry reg({256 * kMiB, 32 * kGiB}, hms::Backing::Virtual);
    hms::ChunkingPolicy chunking;
    chunking.dram_capacity = 256 * kMiB;
    app->setup(reg, chunking);
    task::GraphBuilder gb;
    app->build_iteration(gb, 0);
    const task::TaskGraph g = gb.build();
    EXPECT_GT(g.num_groups(), 2u) << name;
    EXPECT_GT(g.num_tasks(), g.num_groups()) << name;
    EXPECT_TRUE(g.edges_respect_program_order()) << name;
  }
}

TEST(Workloads, NekProxyHas48Objects) {
  auto app = workloads::make_workload("nekproxy", workloads::Scale::Test);
  hms::ObjectRegistry reg({64 * kMiB, 4 * kGiB}, hms::Backing::Virtual);
  hms::ChunkingPolicy chunking;
  app->setup(reg, chunking);
  EXPECT_EQ(reg.num_objects(), 48u);
}

}  // namespace
}  // namespace tahoe
