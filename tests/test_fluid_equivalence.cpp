// Differential oracle for the rebuilt fluid simulator.
//
// FluidSim's indexed engine (per-device finish-time heaps + lazy
// virtual-time draining) must be observationally equivalent to
// ReferenceFluidSim, the pre-rebuild scan engine whose arithmetic the
// golden reports pin. Equivalence means: identical completion id-order,
// completion/start times within 1e-9, and per-device busy seconds within
// 1e-9. Runs whose active flow count stays under the default lazy
// threshold must be *bit-identical* — they execute the very same scan
// arithmetic. The randomized schedules here interleave start_flow /
// step / advance the same way the schedule executor does.
#include "memsim/fluid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "memsim/machine.hpp"
#include "task/sim_executor.hpp"

namespace tahoe::memsim {
namespace {

constexpr double kTol = 1e-9;

FluidSim::Tuning forced_lazy() {
  FluidSim::Tuning t;
  t.lazy_threshold = 0;  // indexed engine from the first flow
  return t;
}

FlowSpec flow(double serial, std::vector<double> dev, std::uint64_t tag = 0) {
  FlowSpec s;
  s.serial_seconds = serial;
  s.device_seconds = std::move(dev);
  s.tag = tag;
  return s;
}

/// One randomized schedule op, applied to both sims in lockstep.
struct Op {
  enum class Kind { Start, Step, Advance } kind = Kind::Start;
  FlowSpec spec;
  double dt = 0.0;
};

/// `with_eps_specs` mixes in zero-demand and sub-epsilon flows. Those are
/// the one deliberate behavioral divergence from the reference: the rebuilt
/// FluidSim completes them at now() without touching device active counts
/// (the old engine briefly diluted sharing rates by a vanishing amount), so
/// the bit-identity test below excludes them — golden configs contain none.
std::vector<Op> random_schedule(std::uint64_t seed, std::size_t flows,
                                std::size_t devices,
                                bool with_eps_specs = true) {
  Rng rng(seed);
  std::vector<Op> ops;
  std::size_t started = 0;
  while (started < flows) {
    const std::uint64_t roll = rng.next_below(10);
    if (roll < 6) {
      Op op;
      op.kind = Op::Kind::Start;
      op.spec.tag = started;
      // Mix of shapes: serial-only, single-device, multi-device,
      // zero-demand, and sub-epsilon components.
      const std::uint64_t shape =
          with_eps_specs ? rng.next_below(8) : 1 + rng.next_below(7);
      if (shape != 0) {  // shape 0: pure zero-demand flow
        if (shape != 1) {  // shape 1: serial-only
          op.spec.device_seconds.assign(devices, 0.0);
          const std::size_t dev = rng.next_below(devices);
          op.spec.device_seconds[dev] = rng.next_double() * 1e-3;
          for (std::size_t d = 0; d < devices; ++d) {
            if (d != dev && rng.next_below(3) == 0) {
              op.spec.device_seconds[d] = rng.next_double() * 1e-3;
            }
          }
          if (with_eps_specs && rng.next_below(5) == 0) {
            op.spec.device_seconds[rng.next_below(devices)] = 1e-16;
          }
        }
        if (shape == 1 || rng.next_below(2) == 0) {
          op.spec.serial_seconds = rng.next_double() * 1e-3;
        }
      }
      ++started;
      ops.push_back(std::move(op));
    } else if (roll < 8) {
      Op op;
      op.kind = Op::Kind::Advance;
      op.dt = rng.next_double() * 5e-4;
      ops.push_back(op);
    } else {
      Op op;
      op.kind = Op::Kind::Step;
      ops.push_back(op);
    }
  }
  return ops;
}

struct RunLog {
  std::vector<FlowCompletion> completions;
  std::vector<double> advanced;  ///< return value of every Advance op
  std::vector<double> busy;
};

template <typename Sim>
RunLog run_schedule(Sim& sim, const std::vector<Op>& ops) {
  RunLog log;
  for (const Op& op : ops) {
    switch (op.kind) {
      case Op::Kind::Start:
        sim.start_flow(op.spec);
        break;
      case Op::Kind::Advance:
        log.advanced.push_back(sim.advance(op.dt));
        break;
      case Op::Kind::Step: {
        const auto c = sim.step();
        if (c.has_value()) log.completions.push_back(*c);
        break;
      }
    }
  }
  while (true) {
    const auto c = sim.step();
    if (!c.has_value()) break;
    log.completions.push_back(*c);
  }
  for (std::size_t d = 0; d < sim.num_devices(); ++d) {
    log.busy.push_back(sim.device_busy_seconds(d));
  }
  return log;
}

void expect_equivalent(const RunLog& test, const RunLog& oracle,
                       double tol = kTol) {
  ASSERT_EQ(test.completions.size(), oracle.completions.size());
  for (std::size_t i = 0; i < oracle.completions.size(); ++i) {
    EXPECT_EQ(test.completions[i].id, oracle.completions[i].id) << "at " << i;
    EXPECT_EQ(test.completions[i].tag, oracle.completions[i].tag);
    EXPECT_NEAR(test.completions[i].time, oracle.completions[i].time, tol)
        << "completion " << i;
    EXPECT_NEAR(test.completions[i].start_time,
                oracle.completions[i].start_time, tol);
  }
  ASSERT_EQ(test.advanced.size(), oracle.advanced.size());
  for (std::size_t i = 0; i < oracle.advanced.size(); ++i) {
    EXPECT_NEAR(test.advanced[i], oracle.advanced[i], tol) << "advance " << i;
  }
  ASSERT_EQ(test.busy.size(), oracle.busy.size());
  for (std::size_t d = 0; d < oracle.busy.size(); ++d) {
    EXPECT_NEAR(test.busy[d], oracle.busy[d], tol) << "device " << d;
  }
}

TEST(FluidEquivalence, RandomizedTwoTierMatchesReference) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::vector<Op> ops = random_schedule(seed, 200, 2);
    FluidSim sim(2, forced_lazy());
    ReferenceFluidSim ref(2);
    expect_equivalent(run_schedule(sim, ops), run_schedule(ref, ops));
    EXPECT_TRUE(sim.indexed());
  }
}

TEST(FluidEquivalence, RandomizedFourTierMatchesReference) {
  for (std::uint64_t seed = 11; seed <= 15; ++seed) {
    const std::vector<Op> ops = random_schedule(seed, 200, 4);
    FluidSim sim(4, forced_lazy());
    ReferenceFluidSim ref(4);
    expect_equivalent(run_schedule(sim, ops), run_schedule(ref, ops));
  }
}

TEST(FluidEquivalence, UnderDefaultThresholdIsBitIdentical) {
  // Below Tuning::lazy_threshold FluidSim runs the scan core itself, so
  // every completion time must match the reference to the last bit — this
  // is the property that keeps the golden report JSON byte-stable.
  for (std::uint64_t seed = 21; seed <= 23; ++seed) {
    // 40 flows total can never exceed the default threshold of 64 active;
    // eps specs are excluded (see random_schedule) — they are the one
    // intentional divergence and get their own test below.
    const std::vector<Op> ops =
        random_schedule(seed, 40, 2, /*with_eps_specs=*/false);
    FluidSim sim(2);
    ReferenceFluidSim ref(2);
    const RunLog a = run_schedule(sim, ops);
    const RunLog b = run_schedule(ref, ops);
    EXPECT_FALSE(sim.indexed());
    ASSERT_EQ(a.completions.size(), b.completions.size());
    for (std::size_t i = 0; i < a.completions.size(); ++i) {
      EXPECT_EQ(a.completions[i].id, b.completions[i].id);
      EXPECT_DOUBLE_EQ(a.completions[i].time, b.completions[i].time);
      EXPECT_DOUBLE_EQ(a.completions[i].start_time,
                       b.completions[i].start_time);
    }
    for (std::size_t d = 0; d < a.busy.size(); ++d) {
      EXPECT_DOUBLE_EQ(a.busy[d], b.busy[d]);
    }
  }
}

TEST(FluidEquivalence, ThresholdCrossingMidRunMatchesReference) {
  // Start enough flows to cross a small threshold mid-run: the in-flight
  // partially-drained flows migrate from the scan core into the indexed
  // engine, and every completion must still line up with the oracle.
  FluidSim::Tuning t;
  t.lazy_threshold = 8;
  const std::vector<Op> ops = random_schedule(31, 100, 2);
  FluidSim sim(2, t);
  ReferenceFluidSim ref(2);
  expect_equivalent(run_schedule(sim, ops), run_schedule(ref, ops));
  EXPECT_TRUE(sim.indexed());
}

TEST(FluidEquivalence, SerialOnlyFlowsMatch) {
  FluidSim sim(2, forced_lazy());
  ReferenceFluidSim ref(2);
  std::vector<Op> ops;
  for (int i = 0; i < 20; ++i) {
    Op start;
    start.kind = Op::Kind::Start;
    start.spec = flow(0.25 * (i % 4 + 1), {}, static_cast<std::uint64_t>(i));
    ops.push_back(std::move(start));
    Op adv;
    adv.kind = Op::Kind::Advance;
    adv.dt = 0.125;
    ops.push_back(adv);
  }
  expect_equivalent(run_schedule(sim, ops), run_schedule(ref, ops));
}

TEST(FluidEquivalence, ZeroDemandFlowsCompleteImmediatelyInBoth) {
  FluidSim sim(1, forced_lazy());
  ReferenceFluidSim ref(1);
  std::vector<Op> ops;
  for (int i = 0; i < 6; ++i) {
    Op start;
    start.kind = Op::Kind::Start;
    start.spec = i % 2 == 0 ? flow(0.0, {0.0}, static_cast<std::uint64_t>(i))
                            : flow(0.0, {0.5}, static_cast<std::uint64_t>(i));
    ops.push_back(std::move(start));
  }
  const RunLog a = run_schedule(sim, ops);
  const RunLog b = run_schedule(ref, ops);
  expect_equivalent(a, b);
  // The zero-demand flows complete at t=0 ahead of every real flow.
  ASSERT_GE(a.completions.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(a.completions[i].time, 0.0);
    EXPECT_EQ(a.completions[i].tag % 2, 0u);
  }
}

// --- property/stress tests for the index structures ----------------------

TEST(FluidEquivalence, SimultaneousCompletionsAcrossDevicesKeepIdOrder) {
  // Four flows, pairwise on different devices, all finishing at t=2 (the
  // demands are dyadic so both engines hit the boundary exactly). The
  // completion stream must be ordered by flow id.
  FluidSim sim(2, forced_lazy());
  ReferenceFluidSim ref(2);
  std::vector<Op> ops;
  for (int i = 0; i < 4; ++i) {
    Op start;
    start.kind = Op::Kind::Start;
    // Two flows per device sharing it equally: 1.0 demand at rate 1/2.
    start.spec = flow(0.0, i % 2 == 0 ? std::vector<double>{1.0, 0.0}
                                      : std::vector<double>{0.0, 1.0},
                      static_cast<std::uint64_t>(i));
    ops.push_back(std::move(start));
  }
  const RunLog a = run_schedule(sim, ops);
  const RunLog b = run_schedule(ref, ops);
  expect_equivalent(a, b);
  ASSERT_EQ(a.completions.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a.completions[i].id, i);
    EXPECT_DOUBLE_EQ(a.completions[i].time, 2.0);
  }
}

TEST(FluidEquivalence, FlowSpanningAllDevicesFinishesWithSlowestComponent) {
  FluidSim sim(4, forced_lazy());
  sim.start_flow(flow(0.5, {0.25, 1.0, 0.125, 0.5}));
  const auto c = sim.step();
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->time, 1.0);
  EXPECT_DOUBLE_EQ(sim.device_busy_seconds(1), 1.0);
}

TEST(FluidEquivalence, AdvanceStopsExactlyAtFirstCompletion) {
  FluidSim sim(1, forced_lazy());
  sim.start_flow(flow(0.0, {1.0}, 7));
  // The flow finishes at t=1; a 5-second advance must stop there and leave
  // the completion consumable without further time passing.
  EXPECT_DOUBLE_EQ(sim.advance(5.0), 1.0);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
  const auto c = sim.step();
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->tag, 7u);
  EXPECT_DOUBLE_EQ(c->time, 1.0);
  // With nothing active, time passes freely again.
  EXPECT_DOUBLE_EQ(sim.advance(2.0), 2.0);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(FluidEquivalence, BusySecondsConserved10kRandomFlows) {
  // Conservation: every channel-second demanded is eventually served, no
  // matter how the processor-sharing rates shifted while draining.
  constexpr std::size_t kFlows = 10000;
  Rng rng(99);
  FluidSim sim(2, forced_lazy());
  std::vector<double> demand(2, 0.0);
  for (std::size_t i = 0; i < kFlows; ++i) {
    FlowSpec s;
    s.device_seconds.assign(2, 0.0);
    s.device_seconds[rng.next_below(2)] = rng.next_double() * 1e-3;
    if (rng.next_below(4) == 0) {
      s.device_seconds[rng.next_below(2)] += rng.next_double() * 1e-3;
    }
    demand[0] += s.device_seconds[0];
    demand[1] += s.device_seconds[1];
    sim.start_flow(std::move(s));
  }
  std::size_t completions = 0;
  while (sim.step().has_value()) ++completions;
  EXPECT_EQ(completions, kFlows);
  EXPECT_EQ(sim.active_flows(), 0u);
  for (std::size_t d = 0; d < 2; ++d) {
    EXPECT_NEAR(sim.device_busy_seconds(d), demand[d],
                1e-9 * static_cast<double>(kFlows));
    // A unit-capacity device cannot serve demand faster than wall time.
    EXPECT_GE(sim.now() + 1e-9, sim.device_busy_seconds(d));
  }
}

TEST(FluidEquivalence, Churn10kFlowsDeliversEveryIdOnce) {
  // Open-loop churn at high active counts: each completion triggers a
  // replacement start, exercising slot reuse and heap growth/shrink.
  constexpr std::size_t kActive = 1000;
  constexpr std::size_t kTotal = 10000;
  Rng rng(7);
  FluidSim sim(2, forced_lazy());
  std::size_t started = 0;
  const auto start_one = [&]() {
    FlowSpec s;
    s.device_seconds = {rng.next_double() * 1e-3, rng.next_double() * 1e-3};
    s.tag = started;
    sim.start_flow(std::move(s));
    ++started;
  };
  while (started < kActive) start_one();
  std::vector<bool> seen(kTotal, false);
  while (true) {
    const auto c = sim.step();
    if (!c.has_value()) break;
    ASSERT_LT(c->tag, kTotal);
    EXPECT_FALSE(seen[c->tag]) << "duplicate completion " << c->tag;
    seen[c->tag] = true;
    if (started < kTotal) start_one();
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

// --- FluidSim::start_flow epsilon-spec regression (fixed in this PR) -----

TEST(FluidEquivalence, EpsSpecCompletesAtNowWithoutTouchingActiveCounts) {
  // A spec whose components are all <= the drain epsilon completes at
  // now() immediately. It must never increment device active counts: the
  // in-flight flow below keeps its full-rate share, so it still finishes
  // at t=1.0 exactly (a diluted rate would push it later).
  for (const bool lazy : {false, true}) {
    FluidSim sim(2, lazy ? forced_lazy() : FluidSim::Tuning{});
    sim.start_flow(flow(0.0, {1.0, 0.0}, 1));
    sim.advance(0.5);
    const FlowId eps_id = sim.start_flow(flow(1e-16, {1e-16, 1e-16}, 2));
    const auto eps = sim.step();
    ASSERT_TRUE(eps.has_value());
    EXPECT_EQ(eps->id, eps_id);
    EXPECT_EQ(eps->tag, 2u);
    EXPECT_DOUBLE_EQ(eps->time, 0.5);
    EXPECT_DOUBLE_EQ(eps->start_time, 0.5);
    const auto real = sim.step();
    ASSERT_TRUE(real.has_value());
    EXPECT_EQ(real->tag, 1u);
    EXPECT_DOUBLE_EQ(real->time, 1.0) << (lazy ? "lazy" : "exact");
  }
}

TEST(FluidEquivalence, RejectsInvalidSpecsInBothEngines) {
  FluidSim lazy_sim(1, forced_lazy());
  EXPECT_THROW(lazy_sim.start_flow(flow(-1.0, {1.0})), ContractError);
  EXPECT_THROW(lazy_sim.start_flow(flow(0.0, {-2.0})), ContractError);
  EXPECT_THROW(lazy_sim.start_flow(flow(0.0, {1.0, 1.0})), ContractError);
  ReferenceFluidSim ref(1);
  EXPECT_THROW(ref.start_flow(flow(-1.0, {1.0})), ContractError);
  EXPECT_THROW(ref.start_flow(flow(0.0, {1.0, 1.0})), ContractError);
}

// --- golden determinism extension ----------------------------------------

TEST(FluidEquivalence, SimExecutorTimingsMatchAcrossEngines) {
  // The schedule executor is the consumer the golden reports are pinned
  // through. Forcing the indexed engine (threshold 1) must reproduce the
  // default run's timings within the oracle tolerance on a copy-heavy
  // multi-group graph.
  const memsim::Machine m = memsim::machines::platform_a(
      memsim::devices::nvm_bw_fraction(memsim::devices::dram(64 * kMiB), 0.5,
                                       4 * kGiB),
      64 * kMiB);
  task::GraphBuilder gb;
  for (int g = 0; g < 3; ++g) {
    gb.begin_group("g" + std::to_string(g));
    for (int i = 0; i < 12; ++i) {
      task::Task t;
      t.compute_seconds = 1e-5 * (i % 3 + 1);
      task::DataAccess a;
      a.object = static_cast<hms::ObjectId>(i % 4 + 1);
      a.chunk = 0;
      a.mode = task::AccessMode::Read;
      a.traffic.loads = 1 << 16;
      a.traffic.footprint = (1 << 16) * 8;
      t.accesses = {a};
      gb.add_task(std::move(t));
    }
  }
  const task::TaskGraph graph = gb.build();
  std::vector<task::ScheduledCopy> schedule;
  schedule.push_back(task::ScheduledCopy{1, 0, 512 * 1024, memsim::kDram,
                                         0, 1});
  schedule.push_back(task::ScheduledCopy{2, 0, 256 * 1024, memsim::kDram,
                                         1, 2});

  const auto run_with = [&](std::size_t threshold) {
    hms::PlacementMap placement;
    for (hms::ObjectId o = 1; o <= 4; ++o) placement.set(o, 0, memsim::kNvm);
    task::SimExecutor ex;
    task::SimExecutor::Options opts;
    opts.check_capacity = false;
    opts.sim_lazy_threshold = threshold;
    return ex.run(graph, m, placement, schedule, opts);
  };
  const task::SimReport def = run_with(0);
  const task::SimReport idx = run_with(1);
  EXPECT_NEAR(def.makespan, idx.makespan, kTol);
  EXPECT_NEAR(def.stall_seconds, idx.stall_seconds, kTol);
  EXPECT_NEAR(def.copy_busy_seconds, idx.copy_busy_seconds, kTol);
  ASSERT_EQ(def.group_seconds.size(), idx.group_seconds.size());
  for (std::size_t g = 0; g < def.group_seconds.size(); ++g) {
    EXPECT_NEAR(def.group_seconds[g], idx.group_seconds[g], kTol);
  }
  ASSERT_EQ(def.task_seconds.size(), idx.task_seconds.size());
  for (std::size_t i = 0; i < def.task_seconds.size(); ++i) {
    EXPECT_NEAR(def.task_seconds[i], idx.task_seconds[i], kTol);
  }
  ASSERT_EQ(def.device_busy_seconds.size(), idx.device_busy_seconds.size());
  for (std::size_t d = 0; d < def.device_busy_seconds.size(); ++d) {
    EXPECT_NEAR(def.device_busy_seconds[d], idx.device_busy_seconds[d], kTol);
  }
  EXPECT_EQ(def.copies_done, idx.copies_done);
  EXPECT_EQ(def.bytes_copied, idx.bytes_copied);
}

}  // namespace
}  // namespace tahoe::memsim
