// Device model timing math and presets.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "memsim/device.hpp"

namespace tahoe::memsim {
namespace {

TEST(Device, ChannelSecondsUsesAsymmetricBandwidth) {
  DeviceModel d = devices::optane_pm(kGiB);
  MemTraffic t;
  t.read_lines = 1'000'000;
  t.write_lines = 1'000'000;
  const double bytes = 1'000'000.0 * 64.0;
  EXPECT_NEAR(d.channel_seconds(t), bytes / d.read_bw + bytes / d.write_bw,
              1e-12);
}

TEST(Device, LatencySecondsScalesWithDependenceFraction) {
  DeviceModel d = devices::dram(kGiB);
  MemTraffic t;
  t.read_lines = 1000;
  t.dep_frac = 1.0;
  const double serial = d.latency_seconds(t, 10.0);
  t.dep_frac = 0.0;
  const double overlapped = d.latency_seconds(t, 10.0);
  EXPECT_NEAR(serial / overlapped, 10.0, 1e-9);
}

TEST(Device, UncontendedIsMaxOfChannelAndLatency) {
  DeviceModel d = devices::pcram(kGiB);
  MemTraffic bw_bound;
  bw_bound.read_lines = 10'000'000;
  bw_bound.dep_frac = 0.0;
  EXPECT_DOUBLE_EQ(d.uncontended_seconds(bw_bound, 10.0),
                   d.channel_seconds(bw_bound));
  MemTraffic lat_bound;
  lat_bound.read_lines = 1000;
  lat_bound.dep_frac = 1.0;
  EXPECT_DOUBLE_EQ(d.uncontended_seconds(lat_bound, 10.0),
                   d.latency_seconds(lat_bound, 10.0));
}

TEST(Device, BwFractionPreservesLatency) {
  const DeviceModel dram = devices::dram(kGiB);
  const DeviceModel nvm = devices::nvm_bw_fraction(dram, 0.25, 4 * kGiB);
  EXPECT_DOUBLE_EQ(nvm.read_lat_s, dram.read_lat_s);
  EXPECT_DOUBLE_EQ(nvm.read_bw, dram.read_bw * 0.25);
  EXPECT_DOUBLE_EQ(nvm.write_bw, dram.write_bw * 0.25);
  EXPECT_EQ(nvm.capacity, 4 * kGiB);
}

TEST(Device, LatMultiplePreservesBandwidth) {
  const DeviceModel dram = devices::dram(kGiB);
  const DeviceModel nvm = devices::nvm_lat_multiple(dram, 8.0, 4 * kGiB);
  EXPECT_DOUBLE_EQ(nvm.read_bw, dram.read_bw);
  EXPECT_DOUBLE_EQ(nvm.read_lat_s, dram.read_lat_s * 8.0);
  EXPECT_DOUBLE_EQ(nvm.write_lat_s, dram.write_lat_s * 8.0);
}

TEST(Device, PresetsMatchSurveyTable) {
  // Spot-check the NVMDB/Optane characteristics table.
  const auto presets = devices::all_presets();
  ASSERT_EQ(presets.size(), 7u);
  EXPECT_EQ(presets[0].name, "DRAM");
  EXPECT_NEAR(presets[0].read_lat_s, ns(80), 1e-15);
  EXPECT_EQ(presets[4].name, "Optane-PM");
  EXPECT_NEAR(presets[4].read_bw, mbps(3'900), 1.0);
  EXPECT_NEAR(presets[4].write_bw, mbps(1'300), 1.0);
  // Presets 1..4 are the NVM technologies: slower than DRAM on both axes.
  for (std::size_t i = 1; i <= 4; ++i) {
    EXPECT_GT(presets[i].read_lat_s, presets[0].read_lat_s) << presets[i].name;
    EXPECT_LT(presets[i].read_bw, presets[0].read_bw) << presets[i].name;
  }
  // N-tier additions: HBM out-bandwidths DRAM; CXL-attached DRAM sits
  // between local DRAM and Optane on both latency and bandwidth.
  EXPECT_EQ(presets[5].name, "HBM");
  EXPECT_GT(presets[5].read_bw, presets[0].read_bw);
  EXPECT_EQ(presets[6].name, "CXL-DRAM");
  EXPECT_GT(presets[6].read_lat_s, presets[0].read_lat_s);
  EXPECT_LT(presets[6].read_bw, presets[0].read_bw);
  EXPECT_GT(presets[6].read_bw, presets[4].read_bw);
}

TEST(Device, InvalidParametersThrow) {
  const DeviceModel dram = devices::dram(kGiB);
  EXPECT_THROW(devices::nvm_bw_fraction(dram, 0.0, kGiB), ContractError);
  EXPECT_THROW(devices::nvm_bw_fraction(dram, 1.5, kGiB), ContractError);
  EXPECT_THROW(devices::nvm_lat_multiple(dram, 0.5, kGiB), ContractError);
}

TEST(MemTraffic, AccumulationWeighsDependence) {
  MemTraffic a;
  a.read_lines = 100;
  a.dep_frac = 1.0;
  MemTraffic b;
  b.read_lines = 300;
  b.dep_frac = 0.0;
  a += b;
  EXPECT_EQ(a.read_lines, 400u);
  EXPECT_NEAR(a.dep_frac, 0.25, 1e-12);
}

}  // namespace
}  // namespace tahoe::memsim
