#include "common/assert.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace tahoe {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowBounds) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
  EXPECT_THROW(r.next_below(0), ContractError);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng r(99);
  std::vector<int> counts(10, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[r.next_below(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, n / 10.0 * 0.1);
  }
}

TEST(Rng, NextInInclusiveRange) {
  Rng r(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const std::int64_t v = r.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BinomialMeanAndBounds) {
  Rng r(11);
  const std::uint64_t n = 1'000'000;
  const double p = 0.001;
  double sum = 0.0;
  const int trials = 200;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t k = r.binomial(n, p);
    EXPECT_LE(k, n);
    sum += static_cast<double>(k);
  }
  const double mean = sum / trials;
  const double expect = static_cast<double>(n) * p;  // 1000
  EXPECT_NEAR(mean, expect, expect * 0.05);
}

TEST(Rng, BinomialSmallNExact) {
  Rng r(13);
  EXPECT_EQ(r.binomial(0, 0.5), 0u);
  EXPECT_EQ(r.binomial(100, 0.0), 0u);
  EXPECT_EQ(r.binomial(100, 1.0), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(r.binomial(10, 0.3), 10u);
  }
  EXPECT_THROW(r.binomial(10, 1.5), ContractError);
}

TEST(Rng, GaussianMoments) {
  Rng r(17);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const double g = r.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(SplitMix, ExpandsSeedsDeterministically) {
  SplitMix64 a(0);
  SplitMix64 b(0);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), SplitMix64(1).next());
}

}  // namespace
}  // namespace tahoe
