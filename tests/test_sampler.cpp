// Sampling-counter emulation: the planner's only window into traffic.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include "memsim/sampler.hpp"

namespace tahoe::memsim {
namespace {

ObjectTraffic traffic(std::uint64_t loads, std::uint64_t stores) {
  ObjectTraffic t;
  t.loads = loads;
  t.stores = stores;
  t.footprint = 1 << 20;
  return t;
}

TEST(Sampler, ScaledEstimateApproximatesTruth) {
  Sampler s(1000, 2.4e9, 7);
  const std::uint64_t truth = 50'000'000;
  const SampledCounts c = s.sample(traffic(truth, truth / 2), 0.5);
  EXPECT_NEAR(c.est_loads(1000), static_cast<double>(truth),
              static_cast<double>(truth) * 0.05);
  EXPECT_NEAR(c.est_stores(1000), static_cast<double>(truth) / 2.0,
              static_cast<double>(truth) * 0.05);
}

TEST(Sampler, SampleCountsAreSubsampled) {
  Sampler s(1000, 2.4e9, 7);
  const SampledCounts c = s.sample(traffic(10'000'000, 0), 0.1);
  // ~1/1000 of the true count is captured.
  EXPECT_GT(c.loads, 8'000u);
  EXPECT_LT(c.loads, 12'000u);
  EXPECT_EQ(c.stores, 0u);
}

TEST(Sampler, TotalSamplesFromDurationAndClock) {
  Sampler s(1000, 1e9, 7);
  const SampledCounts c = s.sample(traffic(1'000'000, 0), 0.01);
  // 0.01 s at 1 GHz = 1e7 cycles -> 1e4 samples.
  EXPECT_EQ(c.total_samples, 10'000u);
}

TEST(Sampler, ActiveFractionSaturatesForDenseStreams) {
  Sampler s(1000, 1e9, 7);
  // 1e8 accesses over 1e8 cycles: every window contains accesses.
  const SampledCounts c = s.sample(traffic(100'000'000, 0), 0.1);
  EXPECT_GT(c.active_fraction(), 0.95);
}

TEST(Sampler, ActiveFractionSmallForSparseStreams) {
  Sampler s(1000, 1e9, 7);
  // 1000 accesses over 1e8 cycles: most windows are empty.
  const SampledCounts c = s.sample(traffic(1000, 0), 0.1);
  EXPECT_LT(c.active_fraction(), 0.05);
}

TEST(Sampler, ZeroDurationYieldsNothing) {
  Sampler s(1000, 1e9, 7);
  const SampledCounts c = s.sample(traffic(1000, 1000), 0.0);
  EXPECT_EQ(c.total_samples, 0u);
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_DOUBLE_EQ(c.active_fraction(), 0.0);
}

TEST(Sampler, DeterministicGivenSeed) {
  Sampler a(1000, 2.4e9, 99);
  Sampler b(1000, 2.4e9, 99);
  const ObjectTraffic t = traffic(5'000'000, 1'000'000);
  for (int i = 0; i < 5; ++i) {
    const SampledCounts ca = a.sample(t, 0.05);
    const SampledCounts cb = b.sample(t, 0.05);
    EXPECT_EQ(ca.loads, cb.loads);
    EXPECT_EQ(ca.stores, cb.stores);
    EXPECT_EQ(ca.samples_with_access, cb.samples_with_access);
  }
}

TEST(Sampler, RejectsBadConfig) {
  EXPECT_THROW(Sampler(0, 1e9, 1), ContractError);
  EXPECT_THROW(Sampler(1000, 0.0, 1), ContractError);
  Sampler s(1000, 1e9, 1);
  EXPECT_THROW(s.sample(traffic(1, 0), -1.0), ContractError);
}

}  // namespace
}  // namespace tahoe::memsim
