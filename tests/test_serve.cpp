// Multi-tenant serving subsystem: the tenant-row knapsack against the
// exhaustive oracle, per-tenant histogram merging, byte-stable
// deterministic reports, and the QoS tail-latency ordering the serving
// bench asserts in CI.
#include "serve/driver.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/knapsack.hpp"
#include "memsim/machine.hpp"
#include "trace/histogram.hpp"

namespace tahoe::serve {
namespace {

// ---- multi-tenant knapsack ------------------------------------------

TEST(TenantKnapsack, MatchesExactOracleOnSmallInstances) {
  // Capacity below the grid size means granule = 1 byte: the DP is exact,
  // so its objective must equal the exhaustive oracle's.
  Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 3 + rng.next_below(8);  // <= 10 items
    const std::uint32_t tenants = 1 + static_cast<std::uint32_t>(
        rng.next_below(3));
    std::vector<core::TenantItem> items;
    for (std::size_t i = 0; i < n; ++i) {
      core::TenantItem it;
      it.size = 1 + rng.next_below(100);
      it.value = rng.next_double() * 10.0 - 1.0;  // some non-positive
      it.tenant = static_cast<std::uint32_t>(rng.next_below(tenants));
      items.push_back(it);
    }
    std::vector<core::TenantRow> rows;
    for (std::uint32_t t = 0; t < tenants; ++t) {
      core::TenantRow row;
      row.quota = 40 + rng.next_below(200);
      row.priority = 1.0 + rng.next_double() * 7.0;
      rows.push_back(row);
    }
    const std::uint64_t capacity = 100 + rng.next_below(300);
    const core::TenantKnapsackResult dp =
        core::solve_tenant_rows(items, capacity, rows);
    const core::TenantKnapsackResult oracle =
        core::solve_tenant_rows_exact(items, capacity, rows);
    EXPECT_NEAR(dp.total_value, oracle.total_value, 1e-9)
        << "trial " << trial << ": DP missed the optimum";
  }
}

TEST(TenantKnapsack, NeverViolatesQuotaOrCapacityUnderCoarseGrid) {
  // Sizes round up and quotas round down, so even a very coarse grid must
  // keep every row and the shared capacity feasible.
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<core::TenantItem> items;
    for (int i = 0; i < 24; ++i) {
      core::TenantItem it;
      it.size = 1 + rng.next_below(1 << 20);
      it.value = rng.next_double() * 5.0;
      it.tenant = static_cast<std::uint32_t>(rng.next_below(3));
      items.push_back(it);
    }
    std::vector<core::TenantRow> rows(3);
    for (auto& row : rows) {
      row.quota = rng.next_below(4u << 20);
      row.priority = 1.0 + rng.next_double() * 4.0;
    }
    const std::uint64_t capacity = 1 + rng.next_below(8u << 20);
    const core::TenantKnapsackResult r =
        core::solve_tenant_rows(items, capacity, rows, /*grid=*/16);
    EXPECT_LE(r.total_size, capacity);
    ASSERT_EQ(r.tenant_sizes.size(), rows.size());
    std::vector<std::uint64_t> recomputed(rows.size(), 0);
    for (const std::size_t i : r.chosen) {
      recomputed[items[i].tenant] += items[i].size;
      EXPECT_GT(items[i].value, 0.0);
    }
    for (std::size_t t = 0; t < rows.size(); ++t) {
      EXPECT_EQ(r.tenant_sizes[t], recomputed[t]);
      EXPECT_LE(r.tenant_sizes[t], rows[t].quota) << "row " << t;
    }
  }
}

TEST(TenantKnapsack, DerivedQuotasArePrioritySharesAndFeasible) {
  const std::vector<double> priorities{6.0, 2.0, 1.0};
  const std::vector<std::uint64_t> quotas =
      core::derive_tenant_quotas(90, priorities);
  ASSERT_EQ(quotas.size(), 3u);
  EXPECT_EQ(quotas[0], 60u);
  EXPECT_EQ(quotas[1], 20u);
  EXPECT_EQ(quotas[2], 10u);
  std::uint64_t sum = 0;
  for (const std::uint64_t q : quotas) sum += q;
  EXPECT_LE(sum, 90u);
}

// ---- histogram merging across tenants -------------------------------

TEST(ServeHistograms, SnapshotMergeEqualsRecordingIntoOne) {
  // Per-tenant histograms merged after the fact must agree bucket-for-
  // bucket with one histogram that saw every sample — that is what makes
  // cross-tenant aggregate percentiles in reports trustworthy.
  trace::Histogram prod, batch, bg, all;
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t v = rng.next_below(1u << 20);
    trace::Histogram* per_tenant = i % 3 == 0 ? &prod
                                 : i % 3 == 1 ? &batch
                                              : &bg;
    per_tenant->record(v);
    all.record(v);
  }
  trace::HistogramSnapshot merged = prod.snapshot();
  merged.merge(batch.snapshot());
  merged.merge(bg.snapshot());
  const trace::HistogramSnapshot direct = all.snapshot();
  EXPECT_EQ(merged.count(), 3000u);
  EXPECT_EQ(merged.sum, direct.sum);
  EXPECT_EQ(merged.max, direct.max);
  EXPECT_EQ(merged.buckets, direct.buckets);
  EXPECT_EQ(merged.p50(), direct.p50());
  EXPECT_EQ(merged.p99(), direct.p99());
}

// ---- end-to-end serving ---------------------------------------------

// The bench_serve_qos tenant mix, scaled down for test runtime: a
// latency-critical Zipfian KV tenant, a streaming tensor tenant (highest
// raw bytes/s — what a tenant-blind knapsack promotes), and background
// graph analytics.
void add_tenants(TenantManager& tm) {
  TenantConfig prod;
  prod.name = "prod";
  prod.priority = 6.0;
  prod.arrival_hz = 400.0;
  prod.seed = 101;
  KvConfig kv;
  kv.prefix = "prod";
  kv.shards = 2;
  kv.chunks_per_shard = 8;
  kv.chunk_bytes = 2 * kMiB;
  prod.service = make_kv_service(kv);
  tm.add(std::move(prod));

  TenantConfig batch;
  batch.name = "batch";
  batch.priority = 2.0;
  batch.arrival_hz = 40.0;
  batch.seed = 202;
  TensorConfig tensor;
  tensor.prefix = "batch";
  batch.service = make_tensor_service(tensor);
  tm.add(std::move(batch));

  TenantConfig bg;
  bg.name = "bg";
  bg.priority = 1.0;
  bg.arrival_hz = 30.0;
  bg.seed = 303;
  GraphConfig graph;
  graph.prefix = "bg";
  bg.service = make_graph_service(graph);
  tm.add(std::move(bg));
}

core::RunReport serve_once(bool enforce_quotas, double duration) {
  const memsim::Machine machine = memsim::machines::optane_platform(64 * kMiB);
  TenantManager tm(machine);
  add_tenants(tm);
  ServeOptions opts;
  opts.duration_seconds = duration;
  opts.epoch_seconds = 0.005;
  opts.enforce_quotas = enforce_quotas;
  opts.deterministic = true;
  const ServeResult r = run_serve(tm, opts);
  return r.report;
}

std::string to_json(const core::RunReport& report) {
  std::ostringstream os;
  report.write_json(os);
  return os.str();
}

TEST(ServeDriver, DeterministicRunsProduceByteIdenticalReports) {
  const core::RunReport a = serve_once(/*enforce_quotas=*/true, 0.1);
  const core::RunReport b = serve_once(/*enforce_quotas=*/true, 0.1);
  const std::string ja = to_json(a);
  const std::string jb = to_json(b);
  EXPECT_EQ(ja, jb);
  EXPECT_NE(ja.find("\"schema_version\":4"), std::string::npos);
  EXPECT_NE(ja.find("\"tenants\":["), std::string::npos);
  ASSERT_EQ(a.tenants.size(), 3u);
  EXPECT_TRUE(a.serving());
  EXPECT_GT(a.tenants[0].requests, 0u);
}

TEST(ServeDriver, QosStrictlyImprovesHighPriorityTailLatency) {
  const core::RunReport qos = serve_once(/*enforce_quotas=*/true, 0.2);
  const core::RunReport free_for_all = serve_once(/*enforce_quotas=*/false, 0.2);
  ASSERT_EQ(qos.tenants.size(), 3u);
  ASSERT_EQ(free_for_all.tenants.size(), 3u);
  const core::TenantReportRow& q = qos.tenants.front();
  const core::TenantReportRow& f = free_for_all.tenants.front();
  EXPECT_EQ(q.name, "prod");
  ASSERT_GT(q.requests, 0u);
  ASSERT_GT(f.requests, 0u);
  // Both modes see identical request streams (same seeds, virtual time),
  // so the placement plan is the only difference: the priority rows must
  // strictly beat the quota-free knapsack for the high-priority tenant.
  EXPECT_LT(q.request_latency.p99(), f.request_latency.p99());
  // Under QoS the prod tenant actually holds fast-tier residency.
  EXPECT_GT(q.fast_bytes, 0u);
}

}  // namespace
}  // namespace tahoe::serve
