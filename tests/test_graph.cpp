// Task graph construction: dependence derivation and reference queries.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include "task/graph.hpp"

namespace tahoe::task {
namespace {

DataAccess acc(hms::ObjectId obj, AccessMode mode,
               std::size_t chunk = kAllChunks) {
  DataAccess a;
  a.object = obj;
  a.chunk = chunk;
  a.mode = mode;
  a.traffic.loads = 1;
  a.traffic.footprint = 64;
  return a;
}

Task task(std::vector<DataAccess> accesses) {
  Task t;
  t.accesses = std::move(accesses);
  return t;
}

bool has_edge(const TaskGraph& g, TaskId from, TaskId to) {
  for (TaskId s : g.successors(from)) {
    if (s == to) return true;
  }
  return false;
}

TEST(Graph, RawDependence) {
  GraphBuilder gb;
  gb.begin_group("g");
  const TaskId w = gb.add_task(task({acc(1, AccessMode::Write)}));
  const TaskId r = gb.add_task(task({acc(1, AccessMode::Read)}));
  const TaskGraph g = gb.build();
  EXPECT_TRUE(has_edge(g, w, r));
  EXPECT_EQ(g.num_predecessors(r), 1u);
  EXPECT_EQ(g.num_predecessors(w), 0u);
}

TEST(Graph, WarDependence) {
  GraphBuilder gb;
  gb.begin_group("g");
  const TaskId r = gb.add_task(task({acc(1, AccessMode::Read)}));
  const TaskId w = gb.add_task(task({acc(1, AccessMode::Write)}));
  const TaskGraph g = gb.build();
  EXPECT_TRUE(has_edge(g, r, w));
}

TEST(Graph, WawDependence) {
  GraphBuilder gb;
  gb.begin_group("g");
  const TaskId w1 = gb.add_task(task({acc(1, AccessMode::Write)}));
  const TaskId w2 = gb.add_task(task({acc(1, AccessMode::Write)}));
  const TaskGraph g = gb.build();
  EXPECT_TRUE(has_edge(g, w1, w2));
}

TEST(Graph, ParallelReadersShareNoEdges) {
  GraphBuilder gb;
  gb.begin_group("g");
  const TaskId w = gb.add_task(task({acc(1, AccessMode::Write)}));
  const TaskId r1 = gb.add_task(task({acc(1, AccessMode::Read)}));
  const TaskId r2 = gb.add_task(task({acc(1, AccessMode::Read)}));
  const TaskId r3 = gb.add_task(task({acc(1, AccessMode::Read)}));
  const TaskGraph g = gb.build();
  EXPECT_FALSE(has_edge(g, r1, r2));
  EXPECT_FALSE(has_edge(g, r2, r3));
  EXPECT_TRUE(has_edge(g, w, r1));
  EXPECT_TRUE(has_edge(g, w, r3));
}

TEST(Graph, WriterAfterReadersWaitsForAll) {
  GraphBuilder gb;
  gb.begin_group("g");
  gb.add_task(task({acc(1, AccessMode::Write)}));
  const TaskId r1 = gb.add_task(task({acc(1, AccessMode::Read)}));
  const TaskId r2 = gb.add_task(task({acc(1, AccessMode::Read)}));
  const TaskId w2 = gb.add_task(task({acc(1, AccessMode::Write)}));
  const TaskGraph g = gb.build();
  EXPECT_TRUE(has_edge(g, r1, w2));
  EXPECT_TRUE(has_edge(g, r2, w2));
}

TEST(Graph, IndependentObjectsNoEdges) {
  GraphBuilder gb;
  gb.begin_group("g");
  const TaskId t1 = gb.add_task(task({acc(1, AccessMode::Write)}));
  const TaskId t2 = gb.add_task(task({acc(2, AccessMode::Write)}));
  const TaskGraph g = gb.build();
  EXPECT_FALSE(has_edge(g, t1, t2));
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, ChunkGranularDependences) {
  GraphBuilder gb;
  gb.begin_group("g");
  const TaskId w0 = gb.add_task(task({acc(1, AccessMode::Write, 0)}));
  const TaskId w1 = gb.add_task(task({acc(1, AccessMode::Write, 1)}));
  const TaskId r0 = gb.add_task(task({acc(1, AccessMode::Read, 0)}));
  const TaskGraph g = gb.build();
  EXPECT_FALSE(has_edge(g, w0, w1));  // different chunks
  EXPECT_TRUE(has_edge(g, w0, r0));
  EXPECT_FALSE(has_edge(g, w1, r0));
}

TEST(Graph, WholeObjectConflictsWithChunks) {
  GraphBuilder gb;
  gb.begin_group("g");
  const TaskId w0 = gb.add_task(task({acc(1, AccessMode::Write, 0)}));
  const TaskId w1 = gb.add_task(task({acc(1, AccessMode::Write, 1)}));
  const TaskId all = gb.add_task(task({acc(1, AccessMode::Read)}));
  const TaskId w2 = gb.add_task(task({acc(1, AccessMode::Write, 1)}));
  const TaskGraph g = gb.build();
  EXPECT_TRUE(has_edge(g, w0, all));
  EXPECT_TRUE(has_edge(g, w1, all));
  EXPECT_TRUE(has_edge(g, all, w2));  // WAR through the whole-object read
}

TEST(Graph, GroupsDelimitTasks) {
  GraphBuilder gb;
  gb.begin_group("a");
  gb.add_task(task({acc(1, AccessMode::Read)}));
  gb.add_task(task({acc(1, AccessMode::Read)}));
  gb.begin_group("b");
  gb.add_task(task({acc(2, AccessMode::Read)}));
  const TaskGraph g = gb.build();
  ASSERT_EQ(g.num_groups(), 2u);
  EXPECT_EQ(g.group(0).name, "a");
  EXPECT_EQ(g.group(0).size(), 2u);
  EXPECT_EQ(g.group(1).size(), 1u);
  EXPECT_EQ(g.task(2).group, 1u);
}

TEST(Graph, ReferenceQueries) {
  GraphBuilder gb;
  gb.begin_group("g0");
  gb.add_task(task({acc(1, AccessMode::Write)}));
  gb.begin_group("g1");
  gb.add_task(task({acc(2, AccessMode::Write)}));
  gb.begin_group("g2");
  gb.add_task(task({acc(1, AccessMode::Read)}));
  const TaskGraph g = gb.build();

  EXPECT_EQ(g.groups_referencing(1, kAllChunks),
            (std::vector<GroupId>{0, 2}));
  EXPECT_TRUE(g.group_references(1, 1, kAllChunks) == false);
  EXPECT_TRUE(g.group_references(2, 1, kAllChunks));
  ASSERT_TRUE(g.last_reference_before(1, kAllChunks, 2).has_value());
  EXPECT_EQ(*g.last_reference_before(1, kAllChunks, 2), 0u);
  EXPECT_FALSE(g.last_reference_before(2, kAllChunks, 1).has_value());
}

TEST(Graph, EdgesRespectProgramOrder) {
  GraphBuilder gb;
  gb.begin_group("g");
  for (int i = 0; i < 20; ++i) {
    gb.add_task(task({acc(static_cast<hms::ObjectId>(i % 3),
                          i % 2 == 0 ? AccessMode::Write : AccessMode::Read)}));
  }
  const TaskGraph g = gb.build();
  EXPECT_TRUE(g.edges_respect_program_order());
}

TEST(Graph, ContractViolations) {
  GraphBuilder gb;
  EXPECT_THROW(gb.add_task(task({acc(1, AccessMode::Read)})), ContractError);
  GraphBuilder gb2;
  EXPECT_THROW(gb2.build(), ContractError);
}

}  // namespace
}  // namespace tahoe::task
