// End-to-end integration: the paper's headline claims on the full stack.
#include <gtest/gtest.h>

#include "baselines/xmem.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "core/calibration.hpp"
#include "core/planner.hpp"
#include "core/runtime.hpp"
#include "workloads/common.hpp"

namespace tahoe {
namespace {

core::RuntimeConfig sim_config(memsim::DeviceModel nvm,
                               std::uint64_t dram = 64 * kMiB) {
  core::RuntimeConfig c;
  c.machine = memsim::machines::platform_a(std::move(nvm), dram);
  c.backing = hms::Backing::Virtual;
  return c;
}

memsim::DeviceModel half_bw(std::uint64_t dram = 64 * kMiB) {
  return memsim::devices::nvm_bw_fraction(memsim::devices::dram(dram), 0.5,
                                          4 * kGiB);
}

struct GapResult {
  double dram;
  double nvm;
  double tahoe;
  double xmem;
};

GapResult run_workload(const std::string& name,
                       const core::RuntimeConfig& config) {
  core::Runtime rt(config);
  GapResult out{};
  {
    auto app = workloads::make_workload(name, workloads::Scale::Test);
    out.dram = rt.run_static(*app, memsim::kDram).steady_iteration_seconds();
  }
  {
    auto app = workloads::make_workload(name, workloads::Scale::Test);
    out.nvm = rt.run_static(*app, memsim::kNvm).steady_iteration_seconds();
  }
  {
    auto app = workloads::make_workload(name, workloads::Scale::Test);
    core::TahoePolicy policy(core::calibrate(rt.machine()).to_constants());
    out.tahoe = rt.run(*app, policy).steady_iteration_seconds();
  }
  {
    auto app = workloads::make_workload(name, workloads::Scale::Test);
    baselines::XMemPolicy xmem;
    out.xmem = rt.run(*app, xmem).steady_iteration_seconds();
  }
  return out;
}

TEST(Integration, TahoeNarrowsTheGapAcrossTheSuite) {
  // The paper's headline: the DRAM/NVM gap shrinks substantially under
  // the runtime, across all workloads (geometric mean of the recovered
  // fraction >= 50%).
  std::vector<double> recovered;
  for (const std::string& name : workloads::workload_names()) {
    const GapResult r = run_workload(name, sim_config(half_bw()));
    ASSERT_GT(r.nvm, r.dram) << name;
    const double gap = r.nvm - r.dram;
    const double closed = r.nvm - r.tahoe;
    recovered.push_back(std::max(closed / gap, 0.01));
    // Tahoe never loses to NVM-only by more than noise.
    EXPECT_LT(r.tahoe, r.nvm * 1.02) << name;
  }
  EXPECT_GE(geomean_of(recovered), 0.5);
}

TEST(Integration, TahoeCompetitiveWithXmemEverywhere) {
  double tahoe_total = 0.0;
  double xmem_total = 0.0;
  for (const std::string& name : workloads::workload_names()) {
    const GapResult r = run_workload(name, sim_config(half_bw()));
    tahoe_total += r.tahoe;
    xmem_total += r.xmem;
    EXPECT_LT(r.tahoe, r.xmem * 1.15) << name;  // never much worse
  }
  EXPECT_LE(tahoe_total, xmem_total * 1.05);  // at least on par overall
}

TEST(Integration, LatencyConfigurationAlsoRecovers) {
  const auto nvm = memsim::devices::nvm_lat_multiple(
      memsim::devices::dram(64 * kMiB), 4.0, 4 * kGiB);
  std::vector<double> recovered;
  // The latency-sensitive workloads: gathers (cg) and line recurrences
  // (sp, bt). Pure streams are latency-insensitive by design.
  for (const std::string& name : {std::string("cg"), std::string("sp"),
                                  std::string("bt")}) {
    const GapResult r = run_workload(name, sim_config(nvm));
    ASSERT_GT(r.nvm, r.dram) << name;
    recovered.push_back(
        std::max((r.nvm - r.tahoe) / (r.nvm - r.dram), 0.01));
  }
  EXPECT_GE(geomean_of(recovered), 0.4);
}

TEST(Integration, MigrationStatsWithinPaperEnvelope) {
  // Table-5 shape: small pure-runtime cost, meaningful overlap.
  core::Runtime rt(sim_config(half_bw()));
  for (const std::string& name : workloads::workload_names()) {
    auto app = workloads::make_workload(name, workloads::Scale::Test);
    core::TahoePolicy policy(core::calibrate(rt.machine()).to_constants());
    const core::RunReport r = rt.run(*app, policy);
    // At Test scale the simulated iterations are microseconds while the
    // (real, measured) one-off decision time is fixed, so the paper's
    // <=3% total holds only at Bench scale (checked by
    // bench_migration_stats). Here: the recurring overheads (sampling +
    // phase-boundary sync) must be a small fraction, and the one-off
    // decision must be bounded in absolute terms.
    // Recurring cost is a fixed few microseconds per phase boundary plus
    // sampling: bounded in absolute terms at this scale (its *fraction*
    // of Bench-scale runs is what bench_migration_stats checks).
    const double recurring = r.overhead_seconds - r.decision_seconds;
    EXPECT_LT(recurring, 5e-3) << name;
    EXPECT_LT(r.decision_seconds, 0.10) << name;
    if (r.migrations > 0) {
      EXPECT_GT(r.bytes_moved, 0u) << name;
    }
  }
}

TEST(Integration, DeterministicEndToEnd) {
  auto once = []() {
    core::Runtime rt(sim_config(half_bw()));
    auto app = workloads::make_workload("cg", workloads::Scale::Test);
    core::TahoePolicy policy(core::calibrate(rt.machine()).to_constants());
    return rt.run(*app, policy);
  };
  const core::RunReport a = once();
  const core::RunReport b = once();
  ASSERT_EQ(a.iteration_seconds.size(), b.iteration_seconds.size());
  for (std::size_t i = 0; i < a.iteration_seconds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.iteration_seconds[i], b.iteration_seconds[i]);
  }
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.strategy, b.strategy);
}

TEST(Integration, ReadWriteDistinctionHelpsOnOptane) {
  core::RuntimeConfig c;
  c.machine = memsim::machines::optane_platform(64 * kMiB);
  c.backing = hms::Backing::Virtual;
  core::Runtime rt(c);
  const core::ModelConstants mc =
      core::calibrate(rt.machine()).to_constants();
  double with_total = 0.0;
  double without_total = 0.0;
  for (const std::string& name : workloads::workload_names()) {
    auto app1 = workloads::make_workload(name, workloads::Scale::Test);
    core::TahoeOptions w;
    w.distinguish_rw = true;
    core::TahoePolicy pw(mc, w);
    with_total += rt.run(*app1, pw).steady_iteration_seconds();

    auto app2 = workloads::make_workload(name, workloads::Scale::Test);
    core::TahoeOptions wo;
    wo.distinguish_rw = false;
    core::TahoePolicy pwo(mc, wo);
    without_total += rt.run(*app2, pwo).steady_iteration_seconds();
  }
  // Modeling Optane's asymmetric read/write must not hurt, and should
  // help in aggregate.
  EXPECT_LE(with_total, without_total * 1.01);
}

}  // namespace
}  // namespace tahoe
