// Cholesky and heat: the workloads outside the canonical seven, plus
// structural checks shared by every registered workload.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/calibration.hpp"
#include "core/planner.hpp"
#include "core/runtime.hpp"
#include "workloads/cholesky.hpp"
#include "workloads/common.hpp"

namespace tahoe {
namespace {

core::RuntimeConfig config(hms::Backing backing) {
  core::RuntimeConfig c;
  c.machine = memsim::machines::platform_a(
      memsim::devices::nvm_bw_fraction(memsim::devices::dram(64 * kMiB), 0.5,
                                       4 * kGiB),
      64 * kMiB);
  c.backing = backing;
  return c;
}

TEST(Cholesky, FactorizationVerifiesUnderRealExecution) {
  workloads::CholeskyApp app(
      workloads::CholeskyApp::config_for(workloads::Scale::Test));
  core::Runtime rt(config(hms::Backing::Real));
  EXPECT_TRUE(rt.run_real(app, /*schedule=*/{}, 3));
}

TEST(Cholesky, FactoryConstructsIt) {
  auto app = workloads::make_workload("cholesky", workloads::Scale::Test);
  EXPECT_EQ(app->name(), "cholesky");
  EXPECT_GE(app->iterations(), 1u);
}

TEST(Cholesky, TriangularDagShrinksAcrossGroups) {
  auto app = workloads::make_workload("cholesky", workloads::Scale::Test);
  hms::ObjectRegistry reg({64 * kMiB, 4 * kGiB}, hms::Backing::Virtual);
  hms::ChunkingPolicy chunking;
  app->setup(reg, chunking);
  task::GraphBuilder gb;
  app->build_iteration(gb, 0);
  const task::TaskGraph g = gb.build();
  // Update groups must shrink: 3, 2, 1 trailing columns for 4 blocks.
  std::vector<std::size_t> update_sizes;
  for (task::GroupId gi = 0; gi < g.num_groups(); ++gi) {
    if (g.group(gi).name == "chol_update") {
      update_sizes.push_back(g.group(gi).size());
    }
  }
  ASSERT_GE(update_sizes.size(), 2u);
  for (std::size_t i = 1; i < update_sizes.size(); ++i) {
    EXPECT_LT(update_sizes[i], update_sizes[i - 1]);
  }
}

TEST(Cholesky, TahoeBeatsNvmOnly) {
  core::Runtime rt(config(hms::Backing::Virtual));
  auto a1 = workloads::make_workload("cholesky", workloads::Scale::Test);
  const core::RunReport nvm = rt.run_static(*a1, memsim::kNvm);
  auto a2 = workloads::make_workload("cholesky", workloads::Scale::Test);
  core::TahoePolicy policy(core::calibrate(rt.machine()).to_constants());
  const core::RunReport tahoe = rt.run(*a2, policy);
  EXPECT_LE(tahoe.steady_iteration_seconds(),
            nvm.steady_iteration_seconds() * 1.02);
}

class RegisteredWorkload : public ::testing::TestWithParam<std::string> {};

TEST_P(RegisteredWorkload, GroupNamesStableAcrossIterations) {
  // The adaptivity machinery assumes the per-iteration group sequence is
  // stable; every workload must rebuild the same group names in order.
  auto app = workloads::make_workload(GetParam(), workloads::Scale::Test);
  hms::ObjectRegistry reg({64 * kMiB, 4 * kGiB}, hms::Backing::Virtual);
  hms::ChunkingPolicy chunking;
  app->setup(reg, chunking);

  std::vector<std::string> first;
  for (std::size_t iter = 0; iter < 2; ++iter) {
    task::GraphBuilder gb;
    app->build_iteration(gb, iter);
    const task::TaskGraph g = gb.build();
    std::vector<std::string> names;
    for (task::GroupId gi = 0; gi < g.num_groups(); ++gi) {
      names.push_back(g.group(gi).name);
    }
    if (iter == 0) {
      first = names;
    } else {
      EXPECT_EQ(names, first);
    }
  }
}

TEST_P(RegisteredWorkload, DeclaredTrafficIsSane) {
  auto app = workloads::make_workload(GetParam(), workloads::Scale::Test);
  hms::ObjectRegistry reg({64 * kMiB, 4 * kGiB}, hms::Backing::Virtual);
  hms::ChunkingPolicy chunking;
  app->setup(reg, chunking);
  task::GraphBuilder gb;
  app->build_iteration(gb, 0);
  const task::TaskGraph g = gb.build();
  for (const task::Task& t : g.tasks()) {
    EXPECT_GE(t.compute_seconds, 0.0);
    EXPECT_FALSE(t.accesses.empty()) << t.label;
    for (const task::DataAccess& a : t.accesses) {
      EXPECT_NE(a.object, hms::kInvalidObject);
      EXPECT_GT(a.traffic.accesses(), 0u) << t.label;
      EXPECT_GT(a.traffic.footprint, 0u) << t.label;
      EXPECT_GE(a.traffic.dep_frac, 0.0);
      EXPECT_LE(a.traffic.dep_frac, 1.0);
      EXPECT_GE(a.traffic.locality, 0.0);
      EXPECT_LE(a.traffic.locality, 1.0);
      EXPECT_GE(a.traffic.spatial, 0.0);
      EXPECT_LE(a.traffic.spatial, 1.0);
      // Reads imply loads, writes imply stores.
      if (a.mode == task::AccessMode::Read) {
        EXPECT_EQ(a.traffic.stores, 0u);
      }
      if (a.mode == task::AccessMode::Write) {
        EXPECT_GT(a.traffic.stores, 0u) << t.label;
      }
      // Every declared access must refer to a live registry object/chunk.
      const hms::DataObject& obj = reg.get(a.object);
      if (a.chunk != task::kAllChunks) {
        EXPECT_LT(a.chunk, obj.num_chunks()) << t.label;
      }
    }
  }
}

TEST_P(RegisteredWorkload, ObjectsCoverDeclaredFootprints) {
  auto app = workloads::make_workload(GetParam(), workloads::Scale::Test);
  hms::ObjectRegistry reg({64 * kMiB, 4 * kGiB}, hms::Backing::Virtual);
  hms::ChunkingPolicy chunking;
  app->setup(reg, chunking);
  task::GraphBuilder gb;
  app->build_iteration(gb, 0);
  const task::TaskGraph g = gb.build();
  for (const task::Task& t : g.tasks()) {
    for (const task::DataAccess& a : t.accesses) {
      const hms::DataObject& obj = reg.get(a.object);
      const std::uint64_t unit_bytes =
          (a.chunk == task::kAllChunks) ? obj.bytes
                                        : obj.chunk(a.chunk).bytes;
      EXPECT_LE(a.traffic.footprint, obj.bytes) << t.label;
      // Per-chunk accesses should not claim more than ~the chunk itself
      // (whole-object footprints are allowed for gathers).
      if (a.chunk != task::kAllChunks &&
          a.traffic.footprint > obj.chunk(a.chunk).bytes) {
        EXPECT_LE(a.traffic.footprint, obj.bytes) << t.label;
      }
      (void)unit_bytes;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, RegisteredWorkload,
    ::testing::Values("cg", "ft", "bt", "lu", "sp", "mg", "nekproxy", "heat",
                      "cholesky"),
    [](const auto& pinfo) { return pinfo.param; });

}  // namespace
}  // namespace tahoe
