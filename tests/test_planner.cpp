// Tahoe placement planner: Eq. (7) weights, local vs global search,
// schedule structure and capacity safety.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/calibration.hpp"
#include "core/planner.hpp"
#include "hms/space_manager.hpp"

namespace tahoe::core {
namespace {

constexpr std::uint64_t kObjBytes = 96 * kMiB;

memsim::Machine machine(std::uint64_t dram = 128 * kMiB) {
  return memsim::machines::platform_a(
      memsim::devices::nvm_bw_fraction(memsim::devices::dram(dram), 0.5,
                                       16 * kGiB),
      dram);
}

/// Graph: group 0 streams object 1 heavily; group 1 streams object 2
/// heavily; each lightly reads the other.
task::TaskGraph graph() {
  auto acc = [](hms::ObjectId obj, std::uint64_t loads) {
    task::DataAccess a;
    a.object = obj;
    a.chunk = 0;
    a.mode = task::AccessMode::Read;
    a.traffic.loads = loads;
    a.traffic.footprint = kObjBytes;
    return a;
  };
  task::GraphBuilder gb;
  gb.begin_group("g0");
  {
    task::Task t;
    t.accesses = {acc(1, 40'000'000), acc(2, 100'000)};
    gb.add_task(std::move(t));
  }
  gb.begin_group("g1");
  {
    task::Task t;
    t.accesses = {acc(2, 40'000'000), acc(1, 100'000)};
    gb.add_task(std::move(t));
  }
  return gb.build();
}

PhaseProfiles profiles() {
  PhaseProfiles p;
  p.iterations_profiled = 1;
  p.groups.resize(2);
  p.groups[0].duration_seconds = 0.5;
  p.groups[1].duration_seconds = 0.5;
  auto counts = [](std::uint64_t loads) {
    memsim::SampledCounts c;
    c.loads = loads;
    c.samples_with_access = 950;
    c.total_samples = 1000;
    return c;
  };
  p.groups[0].units[UnitKey{1, 0}] = counts(40'000);
  p.groups[0].units[UnitKey{2, 0}] = counts(100);
  p.groups[1].units[UnitKey{2, 0}] = counts(40'000);
  p.groups[1].units[UnitKey{1, 0}] = counts(100);
  return p;
}

PlanInputs inputs(const task::TaskGraph& g, const memsim::Machine& m,
                  const PhaseProfiles& p) {
  PlanInputs in;
  in.graph = &g;
  in.machine = &m;
  in.profiles = &p;
  in.objects = {
      ObjectInfo{1, "hot0", {kObjBytes}, 0.0},
      ObjectInfo{2, "hot1", {kObjBytes}, 0.0},
  };
  for (const ObjectInfo& o : in.objects) in.current.set(o.id, 0, memsim::kNvm);
  return in;
}

ModelConstants constants(const memsim::Machine& m) {
  return calibrate(m).to_constants();
}

TEST(GroupWeights, HotUnitHasLargeBenefit) {
  const task::TaskGraph g = graph();
  const memsim::Machine m = machine();
  const PhaseProfiles p = profiles();
  const PlanInputs in = inputs(g, m, p);
  const PerfModel model(constants(m), m.tier(memsim::kDram), m.tier(memsim::kNvm), m.copy_engine_bw,
                        m.sample_interval);
  const auto weights = group_weights(in, model, 0, {}, true);
  ASSERT_EQ(weights.size(), 2u);
  const UnitWeight* hot = nullptr;
  const UnitWeight* cold = nullptr;
  for (const UnitWeight& w : weights) {
    (w.unit.object == 1 ? hot : cold) = &w;
  }
  ASSERT_TRUE(hot != nullptr && cold != nullptr);
  EXPECT_GT(hot->benefit, 10.0 * cold->benefit);
  EXPECT_GT(hot->weight(), 0.0);
}

TEST(GroupWeights, ResidentUnitsHaveNoMovementCost) {
  const task::TaskGraph g = graph();
  const memsim::Machine m = machine();
  const PhaseProfiles p = profiles();
  const PlanInputs in = inputs(g, m, p);
  const PerfModel model(constants(m), m.tier(memsim::kDram), m.tier(memsim::kNvm), m.copy_engine_bw,
                        m.sample_interval);
  const auto weights =
      group_weights(in, model, 0, {UnitKey{1, 0}}, true);
  for (const UnitWeight& w : weights) {
    if (w.unit.object == 1) {
      EXPECT_DOUBLE_EQ(w.cost, 0.0);
      EXPECT_DOUBLE_EQ(w.extra_cost, 0.0);
    }
  }
}

TEST(GroupWeights, EvictionAddsExtraCost) {
  const task::TaskGraph g = graph();
  const memsim::Machine m = machine();  // DRAM 128 MiB, objects 96 MiB
  const PhaseProfiles p = profiles();
  const PlanInputs in = inputs(g, m, p);
  const PerfModel model(constants(m), m.tier(memsim::kDram), m.tier(memsim::kNvm), m.copy_engine_bw,
                        m.sample_interval);
  // Object 2 resident: placing object 1 requires evicting it.
  const auto weights =
      group_weights(in, model, 0, {UnitKey{2, 0}}, true);
  for (const UnitWeight& w : weights) {
    if (w.unit.object == 1) {
      EXPECT_GT(w.extra_cost, 0.0);
    }
  }
}

TEST(TahoePolicy, LocalSearchPingPongsScarceDram) {
  const task::TaskGraph g = graph();
  const memsim::Machine m = machine();  // holds only one object
  const PhaseProfiles p = profiles();
  TahoeOptions opts;
  opts.strategy = TahoeOptions::Strategy::LocalOnly;
  TahoePolicy policy(constants(m), opts);
  const PlanDecision d = policy.decide(inputs(g, m, p));
  EXPECT_EQ(d.strategy, "local");
  // The cyclic body must move object 1 in for g0 and object 2 in for g1.
  bool fills_1_for_g0 = false;
  bool fills_2_for_g1 = false;
  for (const task::ScheduledCopy& c : d.schedule) {
    if (c.object == 1 && c.dst == memsim::kDram && c.needed_group == 0) {
      fills_1_for_g0 = true;
    }
    if (c.object == 2 && c.dst == memsim::kDram && c.needed_group == 1) {
      fills_2_for_g1 = true;
    }
  }
  EXPECT_TRUE(fills_1_for_g0);
  EXPECT_TRUE(fills_2_for_g1);
}

TEST(TahoePolicy, GlobalSearchPicksSingleBestSet) {
  const task::TaskGraph g = graph();
  const memsim::Machine m = machine();
  const PhaseProfiles p = profiles();
  TahoeOptions opts;
  opts.strategy = TahoeOptions::Strategy::GlobalOnly;
  TahoePolicy policy(constants(m), opts);
  const PlanDecision d = policy.decide(inputs(g, m, p));
  EXPECT_EQ(d.strategy, "global");
  // Global: only iteration-start (trigger 0, needed 0) copies.
  std::uint64_t dram_bytes = 0;
  for (const task::ScheduledCopy& c : d.schedule) {
    EXPECT_EQ(c.trigger_group, 0u);
    EXPECT_EQ(c.needed_group, 0u);
    if (c.dst == memsim::kDram) dram_bytes += c.bytes;
  }
  EXPECT_LE(dram_bytes, m.tier(memsim::kDram).capacity);
  EXPECT_GT(d.predicted_gain, 0.0);
}

TEST(TahoePolicy, AutoChoosesLargerPredictedGain) {
  const task::TaskGraph g = graph();
  const memsim::Machine m = machine();
  const PhaseProfiles p = profiles();
  TahoePolicy auto_policy(constants(m));
  const PlanDecision d = auto_policy.decide(inputs(g, m, p));

  TahoeOptions lo;
  lo.strategy = TahoeOptions::Strategy::LocalOnly;
  TahoeOptions go;
  go.strategy = TahoeOptions::Strategy::GlobalOnly;
  const double local_gain =
      TahoePolicy(constants(m), lo).decide(inputs(g, m, p)).predicted_gain;
  const double global_gain =
      TahoePolicy(constants(m), go).decide(inputs(g, m, p)).predicted_gain;
  EXPECT_NEAR(d.predicted_gain, std::max(local_gain, global_gain), 1e-9);
}

TEST(TahoePolicy, BigDramGoesGlobalAndKeepsBoth) {
  const task::TaskGraph g = graph();
  const memsim::Machine m = machine(512 * kMiB);  // both objects fit
  const PhaseProfiles p = profiles();
  TahoePolicy policy(constants(m));
  const PlanDecision d = policy.decide(inputs(g, m, p));
  // With room for everything, global search wins (no movement at all).
  EXPECT_EQ(d.strategy, "global");
  std::uint64_t fills = 0;
  for (const task::ScheduledCopy& c : d.schedule) {
    if (c.dst == memsim::kDram) ++fills;
  }
  EXPECT_EQ(fills, 2u);
}

TEST(TahoePolicy, ScheduleRespectsLookaheadTriggers) {
  const task::TaskGraph g = graph();
  const memsim::Machine m = machine();
  const PhaseProfiles p = profiles();
  TahoeOptions opts;
  opts.strategy = TahoeOptions::Strategy::LocalOnly;
  TahoePolicy policy(constants(m), opts);
  const PlanDecision d = policy.decide(inputs(g, m, p));
  for (const task::ScheduledCopy& c : d.schedule) {
    EXPECT_LE(c.trigger_group, c.needed_group);
    // Triggers never precede the unit's last reference: object 1 is
    // referenced in g0, so a copy needed at g1 may trigger at g1 only.
    if (c.object == 1 && c.needed_group == 1) {
      EXPECT_EQ(c.trigger_group, 1u);
    }
  }
}

TEST(CyclicPreamble, ForcesStartResidency) {
  const task::TaskGraph g = graph();
  const memsim::Machine m = machine();
  const PhaseProfiles p = profiles();
  PlanInputs in = inputs(g, m, p);
  in.current.set(1, 0, memsim::kDram);  // leftover resident
  const std::vector<task::ScheduledCopy> body{
      task::ScheduledCopy{2, 0, kObjBytes, memsim::kDram, 1, 1}};
  const auto pre = cyclic_preamble(in, {{2, 0}}, body);
  // Object 1 (not in start set) must be evicted; object 2 filled.
  bool evicts_1 = false;
  bool fills_2 = false;
  for (const task::ScheduledCopy& c : pre) {
    if (c.object == 1 && c.dst == memsim::kNvm) evicts_1 = true;
    if (c.object == 2 && c.dst == memsim::kDram) fills_2 = true;
    EXPECT_EQ(c.trigger_group, 0u);
    EXPECT_EQ(c.needed_group, 0u);
  }
  EXPECT_TRUE(evicts_1);
  EXPECT_TRUE(fills_2);
}

}  // namespace
}  // namespace tahoe::core
