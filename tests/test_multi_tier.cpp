// N-tier hierarchy end-to-end: machine shape, the MCKP planner path,
// schema-v3 reports, and migration flows on the four-tier CXL platform.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "common/units.hpp"
#include "core/calibration.hpp"
#include "core/initial_placement.hpp"
#include "core/planner.hpp"
#include "core/runtime.hpp"

namespace tahoe {
namespace {

memsim::Machine cxl(std::uint64_t hbm = 8 * kMiB, std::uint64_t dram = 8 * kMiB,
                    std::uint64_t cxl_dram = 8 * kMiB) {
  return memsim::machines::cxl_platform(hbm, dram, cxl_dram, 1 * kGiB);
}

/// Group k streams over object k, so on a machine whose fast tiers cannot
/// hold every object at once the planner must keep shuffling data.
class RotatingHotApp : public core::Application {
 public:
  RotatingHotApp(std::size_t objects, std::uint64_t bytes, std::size_t iters)
      : n_(objects), bytes_(bytes), iters_(iters) {}
  std::string name() const override { return "rotating-hot"; }
  std::size_t iterations() const override { return iters_; }

  void setup(hms::ObjectRegistry& registry,
             const hms::ChunkingPolicy& chunking) override {
    (void)chunking;
    ids_.clear();
    for (std::size_t i = 0; i < n_; ++i) {
      ids_.push_back(registry.create("obj" + std::to_string(i), bytes_,
                                     registry.capacity_tier()));
    }
  }

  void build_iteration(task::GraphBuilder& builder,
                       std::size_t iteration) override {
    (void)iteration;
    for (std::size_t i = 0; i < n_; ++i) {
      builder.begin_group("phase" + std::to_string(i));
      for (int k = 0; k < 4; ++k) {
        task::Task t;
        t.label = "work";
        t.compute_seconds = 1e-5;
        task::DataAccess a;
        a.object = ids_[i];
        a.mode = task::AccessMode::Read;
        a.traffic.loads = 2'000'000;
        a.traffic.footprint = bytes_;
        a.traffic.locality = 0.1;
        t.accesses = {a};
        builder.add_task(std::move(t));
      }
    }
  }

 private:
  std::size_t n_;
  std::uint64_t bytes_;
  std::size_t iters_;
  std::vector<hms::ObjectId> ids_;
};

core::RuntimeConfig config(const memsim::Machine& m) {
  core::RuntimeConfig c;
  c.machine = m;
  c.backing = hms::Backing::Virtual;
  c.attribution = true;
  c.fixed_decision_seconds = 0.0;
  return c;
}

core::TahoePolicy policy(const memsim::Machine& m,
                         core::TahoeOptions opts = {}) {
  return core::TahoePolicy(core::calibrate(m).to_constants(), opts);
}

std::set<std::pair<std::uint32_t, std::uint32_t>> flow_pairs(
    const core::RunReport& r) {
  std::set<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (const core::ObjectMigrationRow& o : r.objects) {
    for (const core::TierFlowRow& f : o.flows) pairs.insert({f.src, f.dst});
  }
  return pairs;
}

TEST(CxlPlatform, ShapeAndTierAccessors) {
  const memsim::Machine m = cxl();
  ASSERT_EQ(m.num_tiers(), 4u);
  EXPECT_EQ(m.fastest_tier(), 0u);
  EXPECT_EQ(m.capacity_tier(), 3u);
  EXPECT_EQ(m.tier(0).name, "HBM");
  EXPECT_EQ(m.tier(1).name, "DRAM");
  EXPECT_EQ(m.tier(2).name, "CXL-DRAM");
  EXPECT_EQ(m.tier(3).name, "Optane-PM");
  // Tiers are ordered fastest-first by read bandwidth.
  for (memsim::TierId t = 1; t < m.num_tiers(); ++t) {
    EXPECT_LT(m.tier(t).read_bw, m.tier(t - 1).read_bw) << "tier " << t;
  }
  // The deprecated two-tier accessors still resolve to the edge tiers.
  EXPECT_EQ(&m.tier(memsim::kDram), &m.tier(0));
}

TEST(CxlPlatform, PerPairCopyBandwidthFallsBackToEngineDefault) {
  const memsim::Machine m = cxl();
  EXPECT_GT(m.copy_bw_for(0, 1), m.copy_engine_bw);  // fast HBM<->DRAM link
  EXPECT_DOUBLE_EQ(m.copy_bw_for(1, 0), m.copy_bw_for(0, 1));
  // No configured path touches the capacity tier: engine default applies.
  EXPECT_DOUBLE_EQ(m.copy_bw_for(3, 0), m.copy_engine_bw);
  EXPECT_DOUBLE_EQ(m.copy_bw_for(2, 3), m.copy_engine_bw);
}

TEST(MultiTier, ReportSerializesAsSchemaV3WithTierNames) {
  RotatingHotApp app(3, 6 * kMiB, 8);
  core::Runtime rt(config(cxl()));
  core::TahoePolicy p = policy(rt.machine());
  const core::RunReport report = rt.run(app, p);
  ASSERT_EQ(report.tier_names.size(), 4u);
  EXPECT_TRUE(report.multi_tier());
  std::ostringstream os;
  report.write_json(os, {}, {}, {});
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema_version\":3"), std::string::npos);
  EXPECT_NE(json.find("\"tiers\":[\"HBM\",\"DRAM\",\"CXL-DRAM\",\"Optane-PM\"]"),
            std::string::npos);
  std::ostringstream es;
  report.write_explain_json(es);
  EXPECT_NE(es.str().find("\"schema_version\":3"), std::string::npos);
}

TEST(MultiTier, TwoTierReportStaysSchemaV2) {
  const memsim::Machine m = memsim::machines::platform_a(
      memsim::devices::nvm_bw_fraction(memsim::devices::dram(32 * kMiB), 0.5,
                                       1 * kGiB),
      32 * kMiB);
  RotatingHotApp app(2, 6 * kMiB, 6);
  core::Runtime rt(config(m));
  core::TahoePolicy p = policy(rt.machine());
  const core::RunReport report = rt.run(app, p);
  EXPECT_FALSE(report.multi_tier());
  std::ostringstream os;
  report.write_json(os, {}, {}, {});
  EXPECT_NE(os.str().find("\"schema_version\":2"), std::string::npos);
  EXPECT_EQ(os.str().find("\"tiers\""), std::string::npos);
}

TEST(MultiTier, MigratesAcrossMultipleDistinctTierPairs) {
  // Three 6 MiB hot objects over three 8 MiB fast tiers: each lands on a
  // different tier, so the promotion flows span distinct (src, dst) pairs.
  RotatingHotApp app(3, 6 * kMiB, 8);
  core::Runtime rt(config(cxl()));
  core::TahoePolicy p = policy(rt.machine());
  const core::RunReport report = rt.run(app, p);
  EXPECT_GT(report.migrations, 0u);
  const auto pairs = flow_pairs(report);
  EXPECT_GE(pairs.size(), 2u) << "flows collapsed onto one tier pair";
  for (const auto& [src, dst] : pairs) {
    EXPECT_NE(src, dst);
    EXPECT_LT(src, 4u);
    EXPECT_LT(dst, 4u);
  }
}

TEST(MultiTier, LocalPlanMovesBothDirectionsAcrossNonAdjacentTiers) {
  // Four hot objects but only three constrained tiers: the phase-local
  // plan has to evict between phases, so data flows toward the capacity
  // tier as well as out of it, including across non-adjacent tier pairs.
  RotatingHotApp app(4, 6 * kMiB, 10);
  core::TahoeOptions opts;
  opts.strategy = core::TahoeOptions::Strategy::LocalOnly;
  core::Runtime rt(config(cxl()));
  core::TahoePolicy p = policy(rt.machine(), opts);
  const core::RunReport report = rt.run(app, p);
  EXPECT_EQ(report.strategy, "local");
  const auto pairs = flow_pairs(report);
  bool promotion = false, eviction = false, non_adjacent = false;
  for (const auto& [src, dst] : pairs) {
    if (dst < src) promotion = true;
    if (dst > src) eviction = true;
    const std::uint32_t gap = src > dst ? src - dst : dst - src;
    if (gap > 1) non_adjacent = true;
  }
  EXPECT_TRUE(promotion) << "no flow into a faster tier";
  EXPECT_TRUE(eviction) << "no flow toward the capacity tier";
  EXPECT_TRUE(non_adjacent) << "all flows between adjacent tiers";
  // The report-level promotion/eviction tallies agree with the flows.
  std::uint64_t promos = 0, evicts = 0;
  for (const core::ObjectMigrationRow& o : report.objects) {
    promos += o.promotions;
    evicts += o.evictions;
  }
  EXPECT_GT(promos, 0u);
  EXPECT_GT(evicts, 0u);
}

TEST(MultiTier, StaticRunsNameTiersExplicitly) {
  RotatingHotApp app(2, 6 * kMiB, 4);
  core::Runtime rt(config(cxl()));
  EXPECT_EQ(rt.run_static(app, 0).policy, "tier0-only");
  RotatingHotApp app1(2, 6 * kMiB, 4);
  EXPECT_EQ(rt.run_static(app1, 1).policy, "tier1-only");
  RotatingHotApp app3(2, 6 * kMiB, 4);
  EXPECT_EQ(rt.run_static(app3, 3).policy, "tier3-only");
}

TEST(MultiTier, InitialPlacementWaterfallsFastestFirst) {
  // Estimates rank a > b > c; capacities admit exactly one object per
  // constrained tier, so the waterfall assigns a->0, b->1, c->2 and the
  // coldest object stays on the capacity tier.
  std::vector<core::ObjectInfo> objects(4);
  const std::uint64_t sz = 6 * kMiB;
  for (std::size_t i = 0; i < objects.size(); ++i) {
    objects[i].id = static_cast<hms::ObjectId>(i);
    objects[i].name = "o" + std::to_string(i);
    objects[i].chunk_bytes = {sz};
    objects[i].static_ref_estimate = 100.0 - 10.0 * static_cast<double>(i);
  }
  const auto placed = core::choose_initial_tiers(objects, cxl());
  ASSERT_EQ(placed.size(), 3u);
  std::map<hms::ObjectId, memsim::TierId> where;
  for (const auto& [unit, tier] : placed) where[unit.object] = tier;
  EXPECT_EQ(where.at(0), 0u);
  EXPECT_EQ(where.at(1), 1u);
  EXPECT_EQ(where.at(2), 2u);
  EXPECT_FALSE(where.contains(3));
}

}  // namespace
}  // namespace tahoe
