#include <gtest/gtest.h>

#include <sstream>

#include "common/assert.hpp"
#include "common/table.hpp"

namespace tahoe {
namespace {

TEST(Table, AlignedOutputContainsCells) {
  Table t({"workload", "dram", "nvm"});
  t.add_row({"cg", "1.00", "1.25"});
  t.add_row({"ft", "1.00", "1.09"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("workload"), std::string::npos);
  EXPECT_NE(s.find("1.25"), std::string::npos);
  EXPECT_NE(s.find("ft"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"x", "1"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,1\n");
}

TEST(Table, ArityEnforced) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractError);
  EXPECT_THROW(Table({}), ContractError);
}

TEST(Table, NumFormatsFixedPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::num(0.5), "0.50");
}

TEST(Table, ColumnsPadToWidestCell) {
  Table t({"n", "value"});
  t.add_row({"verylongname", "1"});
  t.add_row({"x", "2"});
  std::istringstream is(t.to_string());
  std::string header;
  std::string sep;
  std::string row1;
  std::string row2;
  std::getline(is, header);
  std::getline(is, sep);
  std::getline(is, row1);
  std::getline(is, row2);
  EXPECT_EQ(row1.size(), row2.size());
}

}  // namespace
}  // namespace tahoe
