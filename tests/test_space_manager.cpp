#include "common/assert.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "hms/space_manager.hpp"

namespace tahoe::hms {
namespace {

TEST(SpaceManager, AddRemoveAccounting) {
  SpaceManager sm(1 * kMiB);
  EXPECT_TRUE(sm.add(1, 0, 256 * kKiB));
  EXPECT_TRUE(sm.add(2, 0, 512 * kKiB));
  EXPECT_EQ(sm.used(), 768 * kKiB);
  EXPECT_TRUE(sm.resident(1));
  EXPECT_FALSE(sm.resident(3));
  EXPECT_EQ(sm.remove(1, 0), 256 * kKiB);
  EXPECT_EQ(sm.used(), 512 * kKiB);
  EXPECT_EQ(sm.remove(1, 0), 0u);  // idempotent
}

TEST(SpaceManager, AddIsIdempotentAndCapacityChecked) {
  SpaceManager sm(1 * kMiB);
  EXPECT_TRUE(sm.add(1, 0, 768 * kKiB));
  EXPECT_TRUE(sm.add(1, 0, 768 * kKiB));  // already resident
  EXPECT_EQ(sm.used(), 768 * kKiB);
  EXPECT_FALSE(sm.add(2, 0, 512 * kKiB));  // does not fit
  EXPECT_FALSE(sm.resident(2));
}

TEST(SpaceManager, ChunksAreIndependentUnits) {
  SpaceManager sm(1 * kMiB);
  EXPECT_TRUE(sm.add(1, 0, 128 * kKiB));
  EXPECT_TRUE(sm.add(1, 3, 128 * kKiB));
  EXPECT_TRUE(sm.resident(1, 0));
  EXPECT_FALSE(sm.resident(1, 1));
  EXPECT_TRUE(sm.resident(1, 3));
}

TEST(SpaceManager, PickVictimsEmptyWhenItFits) {
  SpaceManager sm(1 * kMiB);
  (void)sm.add(1, 0, 256 * kKiB);
  EXPECT_TRUE(sm.pick_victims(512 * kKiB).empty());
}

TEST(SpaceManager, PickVictimsPrefersSmallestSufficient) {
  SpaceManager sm(1 * kMiB);
  (void)sm.add(1, 0, 512 * kKiB);  // big
  (void)sm.add(2, 0, 256 * kKiB);  // just enough for a 256 KiB request
  (void)sm.add(3, 0, 256 * kKiB);
  const auto victims = sm.pick_victims(128 * kKiB);
  ASSERT_EQ(victims.size(), 1u);
  // Smallest single unit freeing >= 128 KiB is a 256 KiB one.
  EXPECT_EQ(victims[0].second, 0u);
  EXPECT_TRUE(victims[0].first == 2 || victims[0].first == 3);
}

TEST(SpaceManager, PickVictimsAccumulatesWhenNoSingleSuffices) {
  SpaceManager sm(1 * kMiB);
  (void)sm.add(1, 0, 256 * kKiB);
  (void)sm.add(2, 0, 256 * kKiB);
  (void)sm.add(3, 0, 256 * kKiB);
  (void)sm.add(4, 0, 256 * kKiB);
  const auto victims = sm.pick_victims(640 * kKiB);
  // Needs 640 KiB; largest-first eviction: 3 units of 256 KiB.
  EXPECT_EQ(victims.size(), 3u);
}

TEST(SpaceManager, PinnedUnitsNeverChosen) {
  SpaceManager sm(512 * kKiB);
  (void)sm.add(1, 0, 256 * kKiB);
  (void)sm.add(2, 0, 256 * kKiB);
  const auto victims =
      sm.pick_victims(256 * kKiB, {{1, 0}});
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0].first, 2u);
  // Everything pinned: impossible.
  EXPECT_TRUE(sm.pick_victims(256 * kKiB, {{1, 0}, {2, 0}}).empty());
}

TEST(SpaceManager, OversizedRequestHopeless) {
  SpaceManager sm(1 * kMiB);
  (void)sm.add(1, 0, 512 * kKiB);
  EXPECT_TRUE(sm.pick_victims(2 * kMiB).empty());
}

TEST(SpaceManager, ContractViolations) {
  EXPECT_THROW(SpaceManager(0), ContractError);
  SpaceManager sm(64);
  EXPECT_THROW(sm.add(1, 0, 0), ContractError);
}

}  // namespace
}  // namespace tahoe::hms
