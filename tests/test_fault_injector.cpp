// Deterministic fault injection: seeded streams, per-site independence,
// disarm fast path, counts, and flag wiring.
#include "common/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/assert.hpp"
#include "common/flags.hpp"

namespace tahoe::fault {
namespace {

std::vector<bool> draw(FaultInjector& inj, Site site, int n) {
  std::vector<bool> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(inj.should_fail(site));
  return out;
}

TEST(FaultInjector, DisarmedNeverFires) {
  FaultInjector inj;
  EXPECT_FALSE(inj.armed());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(inj.should_fail(Site::ArenaExhaustion));
  }
  EXPECT_EQ(inj.total_injected(), 0u);
  EXPECT_DOUBLE_EQ(inj.stall_seconds(), 0.0);
  EXPECT_EQ(inj.spurious_samples(12345), 0u);
}

TEST(FaultInjector, SameSeedSameSchedule) {
  FaultConfig cfg;
  cfg.seed = 42;
  cfg.migration_abort = 0.3;
  FaultInjector a;
  FaultInjector b;
  a.configure(cfg);
  b.configure(cfg);
  EXPECT_EQ(draw(a, Site::MigrationAbort, 500),
            draw(b, Site::MigrationAbort, 500));
  EXPECT_EQ(a.injected(Site::MigrationAbort), b.injected(Site::MigrationAbort));
  EXPECT_GT(a.injected(Site::MigrationAbort), 0u);
}

TEST(FaultInjector, ReconfigureResetsStreamsAndCounts) {
  FaultConfig cfg;
  cfg.seed = 42;
  cfg.alloc_failure = 0.5;
  FaultInjector inj;
  inj.configure(cfg);
  const std::vector<bool> first = draw(inj, Site::AllocFailure, 200);
  inj.configure(cfg);  // same seed -> identical replay
  EXPECT_EQ(inj.injected(Site::AllocFailure), 0u);
  EXPECT_EQ(draw(inj, Site::AllocFailure, 200), first);
}

TEST(FaultInjector, SitesAreIndependentStreams) {
  // Arming a second site must not perturb the first site's schedule —
  // that is what makes fault scenarios composable.
  FaultConfig lone;
  lone.seed = 7;
  lone.arena_exhaustion = 0.25;
  FaultInjector a;
  a.configure(lone);
  const std::vector<bool> alone = draw(a, Site::ArenaExhaustion, 300);

  FaultConfig both = lone;
  both.migration_abort = 0.9;
  FaultInjector b;
  b.configure(both);
  std::vector<bool> interleaved;
  for (int i = 0; i < 300; ++i) {
    (void)b.should_fail(Site::MigrationAbort);
    interleaved.push_back(b.should_fail(Site::ArenaExhaustion));
  }
  EXPECT_EQ(interleaved, alone);
}

TEST(FaultInjector, CountsMatchFirings) {
  FaultConfig cfg;
  cfg.seed = 99;
  cfg.dram_reservation = 0.4;
  cfg.copy_stall = 0.2;
  cfg.copy_stall_seconds = 0.25;
  FaultInjector inj;
  inj.configure(cfg);
  std::uint64_t fired = 0;
  for (int i = 0; i < 400; ++i) {
    if (inj.should_fail(Site::DramReservation)) ++fired;
  }
  EXPECT_EQ(inj.injected(Site::DramReservation), fired);
  std::uint64_t stalls = 0;
  for (int i = 0; i < 400; ++i) {
    const double s = inj.stall_seconds();
    if (s > 0.0) {
      EXPECT_DOUBLE_EQ(s, 0.25);
      ++stalls;
    }
  }
  EXPECT_EQ(inj.injected(Site::CopyStall), stalls);
  EXPECT_EQ(inj.total_injected(), fired + stalls);
}

TEST(FaultInjector, SpuriousSamplesBoundedByRate) {
  FaultConfig cfg;
  cfg.seed = 5;
  cfg.sampler_noise = 0.1;
  FaultInjector inj;
  inj.configure(cfg);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(inj.spurious_samples(1000), 100u);
  }
  EXPECT_EQ(inj.spurious_samples(0), 0u);
}

TEST(FaultInjector, RejectsRatesOutsideUnitInterval) {
  FaultInjector inj;
  FaultConfig bad;
  bad.migration_abort = 1.5;
  EXPECT_THROW(inj.configure(bad), ContractError);
  bad.migration_abort = -0.1;
  EXPECT_THROW(inj.configure(bad), ContractError);
}

TEST(FaultInjector, ArmTracksConfiguredRates) {
  FaultInjector inj;
  FaultConfig cfg;
  inj.configure(cfg);  // all-zero rates: armed stays off
  EXPECT_FALSE(inj.armed());
  cfg.copy_stall = 0.01;
  inj.configure(cfg);
  EXPECT_TRUE(inj.armed());
  inj.disarm();
  EXPECT_FALSE(inj.armed());
}

TEST(FaultFlags, RoundTripThroughParser) {
  Flags flags;
  register_flags(flags);
  std::vector<const char*> argv{"prog",
                                "--fault-seed=123",
                                "--fault-arena-exhaustion=0.01",
                                "--fault-alloc-failure=0.02",
                                "--fault-migration-abort=0.03",
                                "--fault-dram-reservation=0.04",
                                "--fault-copy-stall=0.05",
                                "--fault-copy-stall-ms=2.5",
                                "--fault-sampler-noise=0.06"};
  flags.parse(static_cast<int>(argv.size()), argv.data());
  const FaultConfig cfg = config_from_flags(flags);
  EXPECT_EQ(cfg.seed, 123u);
  EXPECT_DOUBLE_EQ(cfg.arena_exhaustion, 0.01);
  EXPECT_DOUBLE_EQ(cfg.alloc_failure, 0.02);
  EXPECT_DOUBLE_EQ(cfg.migration_abort, 0.03);
  EXPECT_DOUBLE_EQ(cfg.dram_reservation, 0.04);
  EXPECT_DOUBLE_EQ(cfg.copy_stall, 0.05);
  EXPECT_DOUBLE_EQ(cfg.copy_stall_seconds, 2.5e-3);
  EXPECT_DOUBLE_EQ(cfg.sampler_noise, 0.06);
  EXPECT_TRUE(cfg.any());
}

TEST(FaultFlags, DefaultsLeaveGlobalDisarmed) {
  Flags flags;
  register_flags(flags);
  std::vector<const char*> argv{"prog"};
  flags.parse(static_cast<int>(argv.size()), argv.data());
  configure_from_flags(flags);
  EXPECT_FALSE(global().armed());
}

TEST(FaultInjector, SiteNamesAreStable) {
  EXPECT_STREQ(site_name(Site::ArenaExhaustion), "arena_exhaustion");
  EXPECT_STREQ(site_name(Site::AllocFailure), "alloc_failure");
  EXPECT_STREQ(site_name(Site::MigrationAbort), "migration_abort");
  EXPECT_STREQ(site_name(Site::DramReservation), "dram_reservation");
  EXPECT_STREQ(site_name(Site::CopyStall), "copy_stall");
  EXPECT_STREQ(site_name(Site::SamplerNoise), "sampler_noise");
}

}  // namespace
}  // namespace tahoe::fault
