// Histogram unit tests: bucket boundaries of the log-spaced layout,
// percentile interpolation, snapshot merging, concurrent recording, and
// the registry plumbing that serves address-stable histograms.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "trace/counters.hpp"
#include "trace/histogram.hpp"

namespace tahoe::trace {
namespace {

TEST(Histogram, BucketOfPowerOfTwoBoundaries) {
  // 0 has its own bucket; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);
}

TEST(Histogram, BucketEdgesAreConsistentWithBucketOf) {
  for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
    EXPECT_EQ(Histogram::bucket_of(HistogramSnapshot::bucket_lo(b)), b);
    EXPECT_EQ(Histogram::bucket_of(HistogramSnapshot::bucket_hi(b)), b);
  }
}

TEST(Histogram, CountSumMax) {
  Histogram h;
  h.record(0);
  h.record(5);
  h.record(100);
  h.record(7);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count(), 4u);
  EXPECT_EQ(s.sum, 112u);
  EXPECT_EQ(s.max, 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 28.0);
}

TEST(Histogram, RecordSecondsConvertsToNanosAndClampsNegative) {
  Histogram h;
  h.record_seconds(1e-6);   // 1000 ns
  h.record_seconds(-3.0);   // clamped to 0
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.sum, 1000u);
  EXPECT_EQ(s.buckets[0], 1u);  // the clamped negative
  EXPECT_EQ(s.buckets[Histogram::bucket_of(1000)], 1u);
}

TEST(Histogram, PercentilesOnUniformSpread) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count(), 1000u);
  // Log buckets bound the answer within a factor of 2 of the true value
  // and the interpolated result is clamped to the observed max.
  const std::uint64_t p50 = s.p50();
  EXPECT_GE(p50, 250u);
  EXPECT_LE(p50, 1000u);
  const std::uint64_t p99 = s.p99();
  EXPECT_GE(p99, 495u);
  EXPECT_LE(p99, 1000u);
  EXPECT_GE(s.p90(), s.p50());
  EXPECT_GE(s.p99(), s.p90());
  EXPECT_EQ(s.percentile(1.0), s.max);
}

TEST(Histogram, PercentileOfEmptyIsZero) {
  const HistogramSnapshot s = Histogram().snapshot();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.p50(), 0u);
  EXPECT_EQ(s.p99(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, PercentileSingleValue) {
  Histogram h;
  h.record(42);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.p50(), 42u);
  EXPECT_EQ(s.p99(), 42u);
  EXPECT_EQ(s.max, 42u);
}

TEST(Histogram, MergeIsBucketwiseSumAndMaxOfMax) {
  Histogram a;
  Histogram b;
  a.record(3);
  a.record(1000);
  b.record(3);
  b.record(70000);
  HistogramSnapshot sa = a.snapshot();
  const HistogramSnapshot sb = b.snapshot();
  sa.merge(sb);
  EXPECT_EQ(sa.count(), 4u);
  EXPECT_EQ(sa.sum, 3u + 1000u + 3u + 70000u);
  EXPECT_EQ(sa.max, 70000u);
  EXPECT_EQ(sa.buckets[Histogram::bucket_of(3)], 2u);
  // Merging preserves the per-bucket totals a sum over workers needs.
  EXPECT_EQ(sa.buckets[Histogram::bucket_of(1000)], 1u);
  EXPECT_EQ(sa.buckets[Histogram::bucket_of(70000)], 1u);
}

TEST(Histogram, MergeEmptyIsIdentityBothWays) {
  Histogram a;
  a.record(3);
  a.record(1000);
  const HistogramSnapshot populated = a.snapshot();
  const HistogramSnapshot empty{};

  HistogramSnapshot lhs = populated;
  lhs.merge(empty);
  EXPECT_EQ(lhs.count(), populated.count());
  EXPECT_EQ(lhs.sum, populated.sum);
  EXPECT_EQ(lhs.max, populated.max);
  EXPECT_EQ(lhs.p99(), populated.p99());

  HistogramSnapshot rhs = empty;
  rhs.merge(populated);
  EXPECT_EQ(rhs.count(), populated.count());
  EXPECT_EQ(rhs.sum, populated.sum);
  EXPECT_EQ(rhs.max, populated.max);
  EXPECT_EQ(rhs.p50(), populated.p50());
}

TEST(Histogram, MergeMismatchedDistributionsKeepsDigestsInRange) {
  // Two snapshots with disjoint bucket populations: a cluster of small
  // values and a cluster of large ones. The merged digest must sit inside
  // the combined range and keep both populations' bucket counts intact.
  Histogram small;
  Histogram large;
  for (int i = 0; i < 90; ++i) small.record(4);
  for (int i = 0; i < 10; ++i) large.record(1'000'000);
  HistogramSnapshot merged = small.snapshot();
  merged.merge(large.snapshot());
  EXPECT_EQ(merged.count(), 100u);
  EXPECT_EQ(merged.max, 1'000'000u);
  EXPECT_EQ(merged.buckets[Histogram::bucket_of(4)], 90u);
  EXPECT_EQ(merged.buckets[Histogram::bucket_of(1'000'000)], 10u);
  // p50 comes from the small cluster, p99 from the large one.
  EXPECT_LE(merged.p50(), 7u);
  EXPECT_GE(merged.p99(), 524288u);
  EXPECT_LE(merged.p99(), merged.max);
}

TEST(Histogram, ResetZeroesEverything) {
  Histogram h;
  h.record(9);
  h.reset();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.max, 0u);
}

TEST(Histogram, ConcurrentRecordLosesNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record((i % 1024) + static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count(), kThreads * kPerThread);
  EXPECT_EQ(s.max, 1023u + kThreads - 1);
}

TEST(Histogram, RegistryServesAddressStableHistograms) {
  CounterRegistry reg;
  Histogram& h1 = reg.histogram("test.h");
  Histogram& h2 = reg.histogram("test.h");
  EXPECT_EQ(&h1, &h2);
  h1.record(17);
  const auto snaps = reg.snapshot_histograms();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].first, "test.h");
  EXPECT_EQ(snaps[0].second.count(), 1u);
  // Registry reset zeroes but never invalidates the reference.
  reg.reset();
  EXPECT_TRUE(h1.snapshot().empty());
  h1.record(1);
  EXPECT_EQ(reg.snapshot_histograms()[0].second.count(), 1u);
}

TEST(Histogram, GlobalEnableSwitch) {
  EXPECT_FALSE(histograms_enabled());  // default off
  set_histograms_enabled(true);
  EXPECT_TRUE(histograms_enabled());
  set_histograms_enabled(false);
  EXPECT_FALSE(histograms_enabled());
}

}  // namespace
}  // namespace tahoe::trace
