// Chaos matrix (satellite of the fault-injection PR): every placement
// policy crossed with every injected fault scenario, on heat and CG.
// Simulated runs must complete with a self-consistent report; real runs
// must still pass their residual checks — graceful degradation, never
// wrong answers.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "baselines/reactive.hpp"
#include "baselines/xmem.hpp"
#include "common/fault.hpp"
#include "common/units.hpp"
#include "core/calibration.hpp"
#include "core/planner.hpp"
#include "core/runtime.hpp"
#include "workloads/common.hpp"
#include "workloads/heat.hpp"

namespace tahoe {
namespace {

struct Scenario {
  std::string name;
  fault::FaultConfig cfg;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  {
    Scenario s;
    s.name = "clean";
    out.push_back(s);  // all-zero rates: injector disarmed
  }
  {
    Scenario s;
    s.name = "arena";
    s.cfg.arena_exhaustion = 0.05;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "alloc";
    s.cfg.alloc_failure = 0.15;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "abort";
    s.cfg.migration_abort = 0.30;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "reserve";
    s.cfg.dram_reservation = 0.50;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "stall";
    s.cfg.copy_stall = 0.30;
    s.cfg.copy_stall_seconds = 1e-4;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "noise";
    s.cfg.sampler_noise = 0.50;
    out.push_back(s);
  }
  {
    Scenario s;
    s.name = "chaos";
    s.cfg.arena_exhaustion = 0.02;
    s.cfg.alloc_failure = 0.05;
    s.cfg.migration_abort = 0.15;
    s.cfg.dram_reservation = 0.25;
    s.cfg.copy_stall = 0.10;
    s.cfg.copy_stall_seconds = 1e-4;
    s.cfg.sampler_noise = 0.25;
    out.push_back(s);
  }
  return out;
}

const Scenario& scenario_by_name(const std::string& name) {
  static const std::vector<Scenario> all = scenarios();
  for (const Scenario& s : all) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "unknown scenario " << name;
  return all.front();
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> out;
  for (const Scenario& s : scenarios()) out.push_back(s.name);
  return out;
}

void arm(const Scenario& s) {
  if (s.cfg.any()) {
    fault::global().configure(s.cfg);
  } else {
    fault::global().disarm();
  }
}

core::RuntimeConfig base_config(hms::Backing backing) {
  core::RuntimeConfig c;
  c.machine = memsim::machines::platform_a(
      memsim::devices::nvm_bw_fraction(memsim::devices::dram(64 * kMiB), 0.5,
                                       4 * kGiB),
      64 * kMiB);
  c.backing = backing;
  return c;
}

std::unique_ptr<core::Application> make_app(const std::string& name) {
  if (name == "heat") {
    return std::make_unique<workloads::HeatApp>(
        workloads::HeatApp::config_for(workloads::Scale::Test));
  }
  return workloads::make_workload(name, workloads::Scale::Test);
}

class FaultMatrix
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string, std::string>> {
 protected:
  void TearDown() override { fault::global().disarm(); }
};

TEST_P(FaultMatrix, SimulatedRunSurvivesAndReportsConsistently) {
  const auto& [workload, policy_name, scenario_name] = GetParam();
  const Scenario& scenario = scenario_by_name(scenario_name);
  arm(scenario);

  auto app = make_app(workload);
  core::Runtime rt(base_config(hms::Backing::Virtual));
  core::RunReport report;
  if (policy_name == "dram-only") {
    report = rt.run_static(*app, memsim::kDram);
  } else if (policy_name == "nvm-only") {
    report = rt.run_static(*app, memsim::kNvm);
  } else if (policy_name == "xmem") {
    baselines::XMemPolicy policy;
    report = rt.run(*app, policy);
  } else if (policy_name == "reactive") {
    baselines::ReactiveLruPolicy policy;
    report = rt.run(*app, policy);
  } else {
    core::TahoePolicy policy(core::calibrate(rt.machine()).to_constants());
    report = rt.run(*app, policy);
  }

  // The run must have actually happened ...
  EXPECT_EQ(report.iteration_seconds.size(), app->iterations());
  EXPECT_GT(report.compute_seconds, 0.0);
  for (const double s : report.iteration_seconds) EXPECT_GT(s, 0.0);
  // ... and the accounting must be internally consistent.
  EXPECT_DOUBLE_EQ(report.total_seconds(),
                   report.compute_seconds + report.overhead_seconds);
  EXPECT_GE(report.overlap_fraction(), 0.0);
  EXPECT_LE(report.overlap_fraction(), 1.0);
  if (!scenario.cfg.any()) {
    EXPECT_EQ(report.faults_injected, 0u);
    EXPECT_EQ(report.plans_degraded, 0u);
  }
  // Every degradation event is backed by at least one injected or genuine
  // failure the counters can explain.
  if (report.plans_degraded > 0) {
    EXPECT_GT(report.faults_injected + report.failed_no_space, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesTimesFaults, FaultMatrix,
    ::testing::Combine(::testing::Values(std::string("heat"),
                                         std::string("cg")),
                       ::testing::Values(std::string("tahoe"),
                                         std::string("xmem"),
                                         std::string("reactive"),
                                         std::string("dram-only"),
                                         std::string("nvm-only")),
                       ::testing::ValuesIn(scenario_names())),
    [](const auto& pinfo) {
      std::string name = std::get<0>(pinfo.param) + "_" +
                         std::get<1>(pinfo.param) + "_" +
                         std::get<2>(pinfo.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

/// Build a promote/demote ping-pong schedule covering every chunk of the
/// app's objects, so real runs exercise actual memcpy migrations under
/// injected faults. Object ids are deterministic (creation order), so a
/// scratch registry predicts the ids the runtime will assign.
std::vector<task::ScheduledCopy> pingpong_schedule(
    const std::string& workload, const core::RuntimeConfig& cfg) {
  auto app = make_app(workload);
  hms::ObjectRegistry reg(
      {cfg.machine.tier(memsim::kDram).capacity, cfg.machine.devices[memsim::kNvm].capacity},
      hms::Backing::Virtual);
  hms::ChunkingPolicy chunking;
  chunking.dram_capacity = cfg.chunking ? cfg.machine.tier(memsim::kDram).capacity : 0;
  app->setup(reg, chunking);

  task::GraphBuilder gb;
  app->build_iteration(gb, 0);
  const task::TaskGraph graph = gb.build();
  const task::GroupId last = static_cast<task::GroupId>(
      graph.num_groups() > 0 ? graph.num_groups() - 1 : 0);

  std::vector<task::ScheduledCopy> schedule;
  for (const hms::ObjectId id : reg.live_objects()) {
    const hms::DataObject& obj = reg.get(id);
    for (std::size_t c = 0; c < obj.num_chunks(); ++c) {
      schedule.push_back(task::ScheduledCopy{id, c, obj.chunk(c).bytes,
                                             memsim::kDram, 0, 0});
      schedule.push_back(task::ScheduledCopy{id, c, obj.chunk(c).bytes,
                                             memsim::kNvm, last, last});
    }
  }
  return schedule;
}

class FaultMatrixReal
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
 protected:
  void TearDown() override { fault::global().disarm(); }
};

TEST_P(FaultMatrixReal, RealKernelsStayNumericallyCorrect) {
  const auto& [workload, scenario_name] = GetParam();
  const Scenario& scenario = scenario_by_name(scenario_name);

  core::RuntimeConfig cfg = base_config(hms::Backing::Real);
  // Bound phase-boundary waits so stalled copies degrade instead of
  // serializing the run; generous enough to stay off the cancel path in
  // clean scenarios.
  cfg.migration_wait_deadline_seconds = 0.05;
  const std::vector<task::ScheduledCopy> schedule =
      pingpong_schedule(workload, cfg);
  ASSERT_FALSE(schedule.empty());

  arm(scenario);
  auto app = make_app(workload);
  core::Runtime rt(cfg);
  const core::RunReport report = rt.run_real_report(*app, schedule, 3);

  // Degradation must never corrupt data: the residual checks in verify()
  // are the ground truth.
  EXPECT_TRUE(report.verified) << workload << " under " << scenario_name;
  if (!scenario.cfg.any()) {
    EXPECT_EQ(report.faults_injected, 0u);
    EXPECT_EQ(report.migrations_retried, 0u);
    EXPECT_EQ(report.migrations_aborted, 0u);
    EXPECT_GT(report.migrations, 0u);  // the ping-pong plan really moves
  }
  // Engine bookkeeping: every abandoned request implies retries, and
  // every abort-site firing is visible to the injector's counters.
  if (report.migrations_aborted > 0) {
    EXPECT_GE(report.migrations_retried, report.migrations_aborted);
  }
  EXPECT_EQ(fault::global().total_injected(), report.faults_injected);
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsTimesFaults, FaultMatrixReal,
    ::testing::Combine(::testing::Values(std::string("heat"),
                                         std::string("cg")),
                       ::testing::ValuesIn(scenario_names())),
    [](const auto& pinfo) {
      return std::get<0>(pinfo.param) + "_" + std::get<1>(pinfo.param);
    });

}  // namespace
}  // namespace tahoe
