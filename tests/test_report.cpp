// RunReport machine-readable export: the JSON line benches emit must parse
// back with every field intact, including the counters sub-object.
#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hpp"
#include "trace/json.hpp"

namespace tahoe::core {
namespace {

RunReport sample_report() {
  RunReport r;
  r.workload = "cg";
  r.policy = "tahoe";
  r.strategy = "global";
  r.iteration_seconds = {2.0, 1.5, 1.2, 1.0, 1.0, 1.0};
  r.compute_seconds = 7.7;
  r.overhead_seconds = 0.1;
  r.decision_seconds = 0.02;
  r.migrations = 12;
  r.bytes_moved = 48u << 20;
  r.copy_busy_seconds = 0.5;
  r.stall_seconds = 0.1;
  r.reprofiles = 1;
  return r;
}

TEST(ReportJson, RoundTripsThroughParser) {
  const RunReport r = sample_report();
  std::ostringstream os;
  r.write_json(os, {{"executor.steals", 7}, {"migrate.bytes.t1_t0", 123}});

  // Single line, JSONL-friendly.
  EXPECT_EQ(os.str().find('\n'), std::string::npos);

  const trace::JsonValue v = trace::parse_json(os.str());
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("workload").string, "cg");
  EXPECT_EQ(v.at("policy").string, "tahoe");
  EXPECT_EQ(v.at("strategy").string, "global");
  EXPECT_DOUBLE_EQ(v.at("compute_seconds").number, 7.7);
  EXPECT_DOUBLE_EQ(v.at("overhead_seconds").number, 0.1);
  EXPECT_DOUBLE_EQ(v.at("total_seconds").number, 7.8);
  EXPECT_DOUBLE_EQ(v.at("steady_iteration_seconds").number, 1.0);
  EXPECT_DOUBLE_EQ(v.at("migrations").number, 12.0);
  EXPECT_DOUBLE_EQ(v.at("bytes_moved").number,
                   static_cast<double>(48u << 20));
  EXPECT_DOUBLE_EQ(v.at("reprofiles").number, 1.0);
  ASSERT_EQ(v.at("iteration_seconds").array.size(), 6u);
  EXPECT_DOUBLE_EQ(v.at("iteration_seconds").array[0].number, 2.0);
  EXPECT_DOUBLE_EQ(v.at("overlap_fraction").number, 0.8);
  ASSERT_TRUE(v.at("counters").is_object());
  EXPECT_DOUBLE_EQ(v.at("counters").at("executor.steals").number, 7.0);
  EXPECT_DOUBLE_EQ(v.at("counters").at("migrate.bytes.t1_t0").number, 123.0);
}

TEST(ReportJson, EmptyReportStillParses) {
  const RunReport r;
  std::ostringstream os;
  r.write_json(os);
  const trace::JsonValue v = trace::parse_json(os.str());
  EXPECT_EQ(v.at("workload").string, "");
  EXPECT_DOUBLE_EQ(v.at("steady_iteration_seconds").number, 0.0);
  EXPECT_TRUE(v.at("iteration_seconds").array.empty());
  EXPECT_TRUE(v.at("counters").object.empty());
}

}  // namespace
}  // namespace tahoe::core
