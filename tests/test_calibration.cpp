// Offline calibration: peak-bandwidth measurement and constant factors.
#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/calibration.hpp"

namespace tahoe::core {
namespace {

memsim::Machine half_bw() {
  return memsim::machines::platform_a(
      memsim::devices::nvm_bw_fraction(memsim::devices::dram(256 * kMiB), 0.5,
                                       16 * kGiB),
      256 * kMiB);
}

TEST(Calibration, PeakBandwidthTracksDeviceRatio) {
  const CalibrationResult r = calibrate(half_bw());
  ASSERT_GT(r.bw_peak_dram, 0.0);
  ASSERT_GT(r.bw_peak_nvm, 0.0);
  // NVM has half the DRAM bandwidth; Eq. (1) should recover roughly that.
  EXPECT_NEAR(r.bw_peak_dram / r.bw_peak_nvm, 2.0, 0.4);
}

TEST(Calibration, PeakBandwidthNearHardwarePeak) {
  const memsim::Machine m = half_bw();
  const CalibrationResult r = calibrate(m);
  // The Eq. (1) estimator counts *instruction-level* accesses (pre-cache,
  // like the paper's load/store events), so its "bandwidth" exceeds the
  // device line bandwidth by up to the per-line access multiplicity (8 for
  // sequential doubles). It must stay within that envelope.
  EXPECT_GT(r.bw_peak_dram, 0.3 * m.tier(memsim::kDram).read_bw);
  EXPECT_LT(r.bw_peak_dram, 8.0 * m.tier(memsim::kDram).read_bw);
}

TEST(Calibration, ConstantFactorsAreSaneCorrections) {
  const CalibrationResult r = calibrate(half_bw());
  // measured/predicted: positive, within an order of magnitude of 1.
  EXPECT_GT(r.cf_bw, 0.1);
  EXPECT_LT(r.cf_bw, 10.0);
  EXPECT_GT(r.cf_lat, 0.1);
  EXPECT_LT(r.cf_lat, 10.0);
}

TEST(Calibration, DeterministicPerMachine) {
  const CalibrationResult a = calibrate(half_bw());
  const CalibrationResult b = calibrate(half_bw());
  EXPECT_DOUBLE_EQ(a.cf_bw, b.cf_bw);
  EXPECT_DOUBLE_EQ(a.cf_lat, b.cf_lat);
  EXPECT_DOUBLE_EQ(a.bw_peak_nvm, b.bw_peak_nvm);
}

TEST(Calibration, ToConstantsCarriesThresholds) {
  CalibrationResult r;
  r.cf_bw = 0.8;
  r.cf_lat = 1.2;
  r.bw_peak_nvm = 5e9;
  const ModelConstants mc = r.to_constants(0.7, 0.2);
  EXPECT_DOUBLE_EQ(mc.cf_bw, 0.8);
  EXPECT_DOUBLE_EQ(mc.t1, 0.7);
  EXPECT_DOUBLE_EQ(mc.t2, 0.2);
  EXPECT_DOUBLE_EQ(mc.bw_peak_nvm, 5e9);
}

TEST(Calibration, OptanePlatformCalibrates) {
  const CalibrationResult r =
      calibrate(memsim::machines::optane_platform(256 * kMiB));
  EXPECT_GT(r.bw_peak_nvm, 0.0);
  EXPECT_LT(r.bw_peak_nvm, r.bw_peak_dram);
}

}  // namespace
}  // namespace tahoe::core
