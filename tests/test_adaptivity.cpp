#include <gtest/gtest.h>

#include "core/adaptivity.hpp"

#include "common/assert.hpp"

namespace tahoe::core {
namespace {

TEST(AdaptiveMonitor, StableWorkloadDoesNotTrigger) {
  AdaptiveMonitor mon(0.10);
  mon.set_baseline({1.0, 2.0, 3.0});
  EXPECT_FALSE(mon.deviates({1.0, 2.0, 3.0}));
  EXPECT_FALSE(mon.deviates({1.05, 2.05, 3.05}));  // < 10%
}

TEST(AdaptiveMonitor, GroupDeviationTriggers) {
  AdaptiveMonitor mon(0.10);
  mon.set_baseline({1.0, 2.0, 3.0});
  EXPECT_TRUE(mon.deviates({1.0, 2.5, 3.0}));  // group 1 off by 25%
}

TEST(AdaptiveMonitor, TotalDeviationTriggers) {
  AdaptiveMonitor mon(0.10);
  mon.set_baseline({1.0, 1.0, 1.0});
  EXPECT_TRUE(mon.deviates({1.08, 1.08, 1.2}));  // total off by ~12%
}

TEST(AdaptiveMonitor, TinyGroupsIgnored) {
  AdaptiveMonitor mon(0.10);
  // Group 0 carries <1% of the iteration: its noise must not trigger.
  mon.set_baseline({0.001, 10.0});
  EXPECT_FALSE(mon.deviates({0.002, 10.0}));
}

TEST(AdaptiveMonitor, ShapeChangeTriggers) {
  AdaptiveMonitor mon(0.10);
  mon.set_baseline({1.0, 2.0});
  EXPECT_TRUE(mon.deviates({1.0, 2.0, 0.5}));
}

TEST(AdaptiveMonitor, RequiresBaseline) {
  AdaptiveMonitor mon(0.10);
  EXPECT_FALSE(mon.has_baseline());
  EXPECT_THROW(mon.deviates({1.0}), ContractError);
  mon.set_baseline({1.0});
  EXPECT_TRUE(mon.has_baseline());
}

TEST(AdaptiveMonitor, ThresholdConfigurable) {
  AdaptiveMonitor strict(0.01);
  strict.set_baseline({1.0});
  EXPECT_TRUE(strict.deviates({1.05}));
  AdaptiveMonitor lax(0.50);
  lax.set_baseline({1.0});
  EXPECT_FALSE(lax.deviates({1.3}));
}

}  // namespace
}  // namespace tahoe::core
