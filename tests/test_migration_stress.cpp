// Concurrency stress for the MigrationEngine under injected faults: many
// producers enqueueing and syncing against the helper thread while copies
// abort, stall, and get cancelled. Designed to run clean under TSan (the
// repo's TAHOE_SANITIZE=thread preset) — it exercises every lock/condvar
// path the engine has.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/fault.hpp"
#include "common/units.hpp"
#include "hms/migration.hpp"

namespace tahoe::hms {
namespace {

class MigrationStress : public ::testing::Test {
 protected:
  void TearDown() override { fault::global().disarm(); }
};

TEST_F(MigrationStress, ManyProducersSurviveInjectedAborts) {
  // 8 producers ping-pong their own object through the shared engine for
  // 24 rounds while ~30% of copies abort (each retried up to 3 times).
  // Payloads must survive every outcome: moved, retried-then-moved, or
  // abandoned-and-pinned.
  fault::FaultConfig cfg;
  cfg.seed = 2024;
  cfg.migration_abort = 0.30;
  fault::global().configure(cfg);

  constexpr int kProducers = 8;
  constexpr int kRounds = 24;
  constexpr std::size_t kWords = 1 << 12;
  ObjectRegistry reg({64 * kMiB, 256 * kMiB});
  std::vector<Handle<std::uint64_t>> handles;
  for (int p = 0; p < kProducers; ++p) {
    handles.push_back(make_array<std::uint64_t>(
        reg, "obj" + std::to_string(p), kWords, memsim::kNvm));
    for (std::size_t i = 0; i < kWords; ++i) {
      handles[static_cast<std::size_t>(p)][i] =
          static_cast<std::uint64_t>(p) * 1000003u + i;
    }
  }

  MigrationEngine engine(reg, MigrationEngine::Mode::HelperThread);
  std::atomic<int> corrupt{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Handle<std::uint64_t>& h = handles[static_cast<std::size_t>(p)];
      for (int r = 0; r < kRounds; ++r) {
        const std::uint64_t tag =
            static_cast<std::uint64_t>(p * kRounds + r);
        engine.enqueue(MigrationRequest{
            h.id(), 0, r % 2 == 0 ? memsim::kDram : memsim::kNvm, tag});
        engine.wait_tag(tag);
        // Application phase: validate and touch own data.
        for (std::size_t i = 0; i < kWords; i += 512) {
          if (h[i] != static_cast<std::uint64_t>(p) * 1000003u + i) {
            corrupt.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  engine.drain();

  EXPECT_EQ(corrupt.load(), 0);
  EXPECT_EQ(engine.pending(), 0u);
  // Every abort-site firing is accounted for in the registry stats, and
  // every abandoned request paid its retries first.
  EXPECT_EQ(reg.stats().copy_aborts,
            fault::global().injected(fault::Site::MigrationAbort));
  if (engine.aborted() > 0) {
    EXPECT_GE(engine.retried(), engine.aborted());
  }
  // Pinned objects are exactly the degraded ones, and they ended on NVM.
  for (const ObjectId id : engine.degraded_objects()) {
    EXPECT_TRUE(engine.is_pinned(id));
    EXPECT_EQ(reg.get(id).device(), memsim::kNvm);
  }
}

TEST_F(MigrationStress, AlwaysAbortingCopyPinsObjectDeterministically) {
  fault::FaultConfig cfg;
  cfg.seed = 1;
  cfg.migration_abort = 1.0;  // every attempt fails
  fault::global().configure(cfg);

  ObjectRegistry reg({16 * kMiB, 64 * kMiB});
  const ObjectId id = reg.create("doomed", 1 * kMiB, memsim::kNvm);
  MigrationEngine::Options opts;
  opts.mode = MigrationEngine::Mode::HelperThread;
  opts.max_retries = 3;
  opts.retry_backoff_seconds = 1e-6;
  MigrationEngine engine(reg, opts);

  engine.enqueue(MigrationRequest{id, 0, memsim::kDram, 0});
  engine.drain();
  EXPECT_EQ(engine.retried(), 3u);
  EXPECT_EQ(engine.aborted(), 1u);
  EXPECT_TRUE(engine.is_pinned(id));
  EXPECT_EQ(reg.get(id).device(), memsim::kNvm);
  EXPECT_EQ(reg.stats().copy_aborts, 4u);  // 1 try + 3 retries

  // Later promotion attempts for the pinned object are dropped up front.
  engine.enqueue(MigrationRequest{id, 0, memsim::kDram, 1});
  engine.drain();
  EXPECT_EQ(engine.cancelled(), 1u);
  EXPECT_EQ(engine.aborted(), 1u);  // no new execution happened
  // Demotions (already there) still pass through unharmed.
  engine.enqueue(MigrationRequest{id, 0, memsim::kNvm, 2});
  engine.drain();
  EXPECT_EQ(reg.get(id).device(), memsim::kNvm);
}

TEST_F(MigrationStress, CancelTagDropsQueuedButNeverInFlight) {
  // A guaranteed stall holds the worker on the first request long enough
  // for cancel_tag to see the rest still queued.
  fault::FaultConfig cfg;
  cfg.seed = 3;
  cfg.copy_stall = 1.0;
  cfg.copy_stall_seconds = 0.2;
  fault::global().configure(cfg);

  ObjectRegistry reg({64 * kMiB, 256 * kMiB});
  std::vector<ObjectId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(
        reg.create("v" + std::to_string(i), 1 * kMiB, memsim::kNvm));
  }
  MigrationEngine engine(reg, MigrationEngine::Mode::HelperThread);
  for (const ObjectId id : ids) {
    engine.enqueue(MigrationRequest{id, 0, memsim::kDram, 0});
  }
  // Give the worker time to pick up (and stall on) the first request.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(engine.wait_tag_for(0, 0.01));  // stalled: deadline expires
  const std::size_t n = engine.cancel_tag(0);
  EXPECT_GE(n, 3u);  // at least the tail of the queue was still pending
  engine.drain();
  EXPECT_EQ(engine.cancelled(), n);
  EXPECT_EQ(engine.pending(), 0u);
  // The in-flight copy completed despite the cancellation sweep.
  EXPECT_GE(reg.stats().migrations, 1u);
  EXPECT_LE(reg.stats().migrations, ids.size() - n);
  // Cancelled objects never moved.
  std::size_t on_dram = 0;
  for (const ObjectId id : ids) {
    if (reg.get(id).device() == memsim::kDram) ++on_dram;
  }
  EXPECT_EQ(on_dram, reg.stats().migrations);
}

TEST_F(MigrationStress, ProducersRaceCancellationCleanly) {
  // Producers enqueue while another thread repeatedly cancels: exercises
  // the queue/condvar paths against each other. No assertion beyond
  // "terminates with consistent bookkeeping" — TSan checks the rest.
  fault::FaultConfig cfg;
  cfg.seed = 7;
  cfg.copy_stall = 0.5;
  cfg.copy_stall_seconds = 1e-3;
  cfg.migration_abort = 0.2;
  fault::global().configure(cfg);

  ObjectRegistry reg({64 * kMiB, 256 * kMiB});
  std::vector<ObjectId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(
        reg.create("v" + std::to_string(i), 256 * kKiB, memsim::kNvm));
  }
  MigrationEngine engine(reg, MigrationEngine::Mode::HelperThread);

  std::atomic<bool> stop{false};
  std::thread canceller([&] {
    while (!stop.load(std::memory_order_acquire)) {
      engine.cancel_tag(1);  // sweep anything still queued for early tags
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (int r = 0; r < 30; ++r) {
        const std::size_t idx =
            static_cast<std::size_t>((p + r) % static_cast<int>(ids.size()));
        engine.enqueue(MigrationRequest{
            ids[idx], 0, r % 2 == 0 ? memsim::kDram : memsim::kNvm,
            static_cast<std::uint64_t>(r % 3)});
      }
      engine.wait_tag(2);
    });
  }
  for (std::thread& t : producers) t.join();
  stop.store(true, std::memory_order_release);
  canceller.join();
  engine.drain();
  EXPECT_EQ(engine.pending(), 0u);
  // All requests are accounted for: executed, rejected, or cancelled.
  SUCCEED();
}

}  // namespace
}  // namespace tahoe::hms
