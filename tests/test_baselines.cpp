// Baseline policies: X-Mem static placement, reactive LRU, hardware
// DRAM-cache machine derivation.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include "baselines/hwcache.hpp"
#include "baselines/reactive.hpp"
#include "baselines/xmem.hpp"
#include "common/units.hpp"
#include "core/runtime.hpp"
#include "workloads/synthetic.hpp"

namespace tahoe {
namespace {

memsim::Machine machine(std::uint64_t dram = 64 * kMiB) {
  return memsim::machines::platform_a(
      memsim::devices::nvm_bw_fraction(memsim::devices::dram(dram), 0.5,
                                       4 * kGiB),
      dram);
}

core::RuntimeConfig config(std::uint64_t dram = 64 * kMiB) {
  core::RuntimeConfig c;
  c.machine = machine(dram);
  c.backing = hms::Backing::Virtual;
  return c;
}

TEST(XMem, PlacesHottestObjectStatically) {
  // Stream workload: src and dst equally hot, 32 MiB each; DRAM 64 MiB
  // fits both.
  workloads::StreamApp app({32 * kMiB, 4, 6});
  core::Runtime rt(config());
  baselines::XMemPolicy xmem;
  const core::RunReport r = rt.run(app, xmem);
  EXPECT_EQ(r.policy, "xmem");
  EXPECT_EQ(r.strategy, "static-offline");
  // Static placement: migrations happen once, then the plan is no-ops.
  EXPECT_LE(r.migrations, 2u);
  const core::RunReport nvm = rt.run_static(app, memsim::kNvm);
  EXPECT_LT(r.iteration_seconds.back(), nvm.iteration_seconds.back());
}

TEST(XMem, RespectsDramCapacityWithWholeObjects) {
  workloads::StreamApp app({48 * kMiB, 4, 4});  // two 48 MiB objects
  core::Runtime rt(config());                   // 64 MiB DRAM: only one fits
  baselines::XMemPolicy xmem;
  const core::RunReport r = rt.run(app, xmem);
  EXPECT_LE(r.bytes_moved, 48 * kMiB + 1);
}

TEST(ReactiveLru, MovesDataButPaysOnCriticalPath) {
  workloads::DriftApp app({24 * kMiB, 4, 8, 0});
  core::Runtime rt(config());
  baselines::ReactiveLruPolicy reactive;
  const core::RunReport r = rt.run(app, reactive);
  EXPECT_EQ(r.strategy, "reactive");
  EXPECT_GT(r.migrations, 0u);
  // Reactive copies trigger when needed: overlap is (near) zero.
  EXPECT_LT(r.overlap_fraction(), 0.2);
}

TEST(ReactiveLru, StillBeatsNvmOnlyOnHotReuse) {
  workloads::DriftApp app({24 * kMiB, 4, 10, 0});
  core::Runtime rt(config());
  baselines::ReactiveLruPolicy reactive;
  const core::RunReport r = rt.run(app, reactive);
  const core::RunReport nvm = rt.run_static(app, memsim::kNvm);
  // After the first (paying) iteration, the hot object sits in DRAM.
  EXPECT_LT(r.iteration_seconds.back(), nvm.iteration_seconds.back());
}

TEST(HwCache, EffectiveDeviceBetweenDramAndNvm) {
  const memsim::Machine base = machine();
  const memsim::Machine mm =
      baselines::memory_mode_machine(base, 256 * kMiB);
  const memsim::DeviceModel& eff = mm.tier(memsim::kNvm);
  EXPECT_GT(eff.read_bw, base.tier(memsim::kNvm).read_bw);
  EXPECT_LT(eff.read_bw, base.tier(memsim::kDram).read_bw);
  EXPECT_GT(eff.read_lat_s, base.tier(memsim::kDram).read_lat_s);
}

TEST(HwCache, SmallFootprintApproachesDram) {
  const memsim::Machine base = machine(64 * kMiB);
  const memsim::Machine mm =
      baselines::memory_mode_machine(base, 64 * kMiB, 0.0);
  // Footprint fits the cache: full hit rate, DRAM-like bandwidth.
  EXPECT_NEAR(mm.tier(memsim::kNvm).read_bw, base.tier(memsim::kDram).read_bw,
              base.tier(memsim::kDram).read_bw * 0.01);
}

TEST(HwCache, HugeFootprintApproachesNvm) {
  const memsim::Machine base = machine(64 * kMiB);
  const memsim::Machine mm =
      baselines::memory_mode_machine(base, 64 * kGiB, 0.0);
  EXPECT_NEAR(mm.tier(memsim::kNvm).read_bw, base.tier(memsim::kNvm).read_bw,
              base.tier(memsim::kNvm).read_bw * 0.01);
}

TEST(HwCache, ContractChecks) {
  const memsim::Machine base = machine();
  EXPECT_THROW(baselines::memory_mode_machine(base, 0), ContractError);
  EXPECT_THROW(baselines::memory_mode_machine(base, 1, 1.5), ContractError);
}

}  // namespace
}  // namespace tahoe
