// Telemetry sampler, SLO watchdog and flight recorder: rule parsing and
// evaluation, registry delta tracking, virtual-clock cadence, stream
// byte-reproducibility, the stall detector on a wedged simulated run, and
// the bounded flight rings.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/fault.hpp"
#include "common/units.hpp"
#include "core/runtime.hpp"
#include "memsim/machine.hpp"
#include "task/sim_executor.hpp"
#include "trace/counters.hpp"
#include "trace/flight.hpp"
#include "trace/json.hpp"
#include "trace/telemetry.hpp"
#include "workloads/synthetic.hpp"

namespace tahoe::trace {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    if (!line.empty()) out.push_back(line);
  }
  return out;
}

/// Every test reconfigures the process-global sampler; tear it down so the
/// next test (and the rest of the binary) starts disarmed.
class TelemetryTest : public ::testing::Test {
 protected:
  void TearDown() override {
    telemetry().shutdown();
    flight().disarm();
    fault::global().disarm();
  }
};

// ---- SLO rule grammar --------------------------------------------------

TEST(SloRuleParse, CounterDefaultsToRate) {
  const SloRule r = parse_slo_rule("counter:sim.tasks_executed > 1000");
  EXPECT_EQ(r.kind, SloRule::Kind::Counter);
  EXPECT_EQ(r.metric, "sim.tasks_executed");
  EXPECT_EQ(r.stat, "rate");
  EXPECT_EQ(r.op, SloRule::Op::Gt);
  EXPECT_DOUBLE_EQ(r.limit, 1000.0);
}

TEST(SloRuleParse, HistStatAndUnitSuffix) {
  const SloRule r = parse_slo_rule("hist:serve.prod.request_ns.p99 < 250ms");
  EXPECT_EQ(r.kind, SloRule::Kind::Hist);
  // The metric name itself contains dots; only the known stat suffix is
  // split off.
  EXPECT_EQ(r.metric, "serve.prod.request_ns");
  EXPECT_EQ(r.stat, "p99");
  EXPECT_EQ(r.op, SloRule::Op::Lt);
  EXPECT_DOUBLE_EQ(r.limit, 250e6);  // ms -> ns
}

TEST(SloRuleParse, GaugeTwoCharOpsAndDelta) {
  const SloRule g = parse_slo_rule("gauge:migrate.queue_depth <= 8");
  EXPECT_EQ(g.kind, SloRule::Kind::Gauge);
  EXPECT_EQ(g.stat, "level");
  EXPECT_EQ(g.op, SloRule::Op::Le);
  const SloRule c = parse_slo_rule("counter:faults.delta >= 0");
  // ".delta" is a counter stat, not part of the metric name.
  EXPECT_EQ(c.metric, "faults");
  EXPECT_EQ(c.stat, "delta");
  EXPECT_EQ(c.op, SloRule::Op::Ge);
}

TEST(SloRuleParse, CsvListAndEmpty) {
  const std::vector<SloRule> rules = parse_slo_rules(
      "counter:a > 1, hist:b.p50 < 2us");
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].metric, "a");
  EXPECT_EQ(rules[1].metric, "b");
  EXPECT_DOUBLE_EQ(rules[1].limit, 2000.0);
  EXPECT_TRUE(parse_slo_rules("").empty());
}

TEST(SloRuleParse, MalformedSpecsThrow) {
  EXPECT_THROW(parse_slo_rule("nokind"), ContractError);
  EXPECT_THROW(parse_slo_rule("widget:a < 1"), ContractError);
  EXPECT_THROW(parse_slo_rule("counter:a ? 1"), ContractError);
  EXPECT_THROW(parse_slo_rule("counter:a < "), ContractError);
  EXPECT_THROW(parse_slo_rule("counter:a < 1parsecs"), ContractError);
}

TEST(SloRule, HoldsImplementsAllOps) {
  EXPECT_TRUE(parse_slo_rule("gauge:g < 5").holds(4.0));
  EXPECT_FALSE(parse_slo_rule("gauge:g < 5").holds(5.0));
  EXPECT_TRUE(parse_slo_rule("gauge:g <= 5").holds(5.0));
  EXPECT_TRUE(parse_slo_rule("gauge:g > 5").holds(6.0));
  EXPECT_FALSE(parse_slo_rule("gauge:g >= 5").holds(4.0));
}

TEST(SloRule, ObservedSemanticsOverSample) {
  IntervalSample s;
  s.t = 1.0;
  s.dt = 0.5;
  s.counter_deltas = {{"tasks", 10}};
  s.gauges = {{"depth", 3}};
  HistogramSnapshot lat;
  lat.buckets[Histogram::bucket_of(1000)] = 4;
  lat.sum = 4000;
  lat.max = 1000;
  s.hist_deltas = {{"lat", lat}};

  double observed = 0.0;
  // Counter rate = delta / dt.
  ASSERT_TRUE(slo_observed(parse_slo_rule("counter:tasks > 1"), s, &observed));
  EXPECT_DOUBLE_EQ(observed, 20.0);
  ASSERT_TRUE(
      slo_observed(parse_slo_rule("counter:tasks.delta > 1"), s, &observed));
  EXPECT_DOUBLE_EQ(observed, 10.0);
  // Absent counters evaluate with a zero delta (throughput floors catch
  // quiet intervals).
  ASSERT_TRUE(
      slo_observed(parse_slo_rule("counter:missing > 1"), s, &observed));
  EXPECT_DOUBLE_EQ(observed, 0.0);
  // Gauges are levels; absent gauges are not evaluated.
  ASSERT_TRUE(slo_observed(parse_slo_rule("gauge:depth < 8"), s, &observed));
  EXPECT_DOUBLE_EQ(observed, 3.0);
  EXPECT_FALSE(slo_observed(parse_slo_rule("gauge:missing < 8"), s, &observed));
  // Hist stats read the interval-delta digest; absent hists are skipped.
  ASSERT_TRUE(slo_observed(parse_slo_rule("hist:lat.count > 0"), s, &observed));
  EXPECT_DOUBLE_EQ(observed, 4.0);
  ASSERT_TRUE(slo_observed(parse_slo_rule("hist:lat.mean > 0"), s, &observed));
  EXPECT_DOUBLE_EQ(observed, 1000.0);
  EXPECT_FALSE(slo_observed(parse_slo_rule("hist:none.p99 < 1"), s, &observed));
}

// ---- delta tracking ----------------------------------------------------

TEST(DeltaTracker, CountersDeltaGaugesLevelHistsBucketwise) {
  CounterRegistry reg;
  Counter& c = reg.get("c");
  Counter& g = reg.gauge("g");
  Histogram& h = reg.histogram("h");
  c.add(5);
  g.set(7);
  h.record(100);

  DeltaTracker tracker;
  tracker.reset(reg);  // seeds prev = current: first advance sees only new
  c.add(3);
  g.set(4);  // gauge decreased
  h.record(200);
  h.record(300);
  const IntervalSample s = tracker.advance(reg, 1.0, 1.0);
  ASSERT_EQ(s.counter_deltas.size(), 1u);
  EXPECT_EQ(s.counter_deltas[0].first, "c");
  EXPECT_EQ(s.counter_deltas[0].second, 3u);  // not the cumulative 8
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_EQ(s.gauges[0].second, 4u);  // level, decrease is fine
  ASSERT_EQ(s.hist_deltas.size(), 1u);
  EXPECT_EQ(s.hist_deltas[0].second.count(), 2u);  // only the new samples

  // A counter first seen mid-run contributes its full value.
  reg.get("late").add(11);
  const IntervalSample s2 = tracker.advance(reg, 2.0, 1.0);
  ASSERT_EQ(s2.counter_deltas.size(), 1u);
  EXPECT_EQ(s2.counter_deltas[0].first, "late");
  EXPECT_EQ(s2.counter_deltas[0].second, 11u);

  // Registry reset between runs: a counter that shrank restarts — the
  // delta is the new value, never an underflow.
  reg.reset();
  c.add(2);
  const IntervalSample s3 = tracker.advance(reg, 3.0, 1.0);
  ASSERT_EQ(s3.counter_deltas.size(), 1u);
  EXPECT_EQ(s3.counter_deltas[0].first, "c");
  EXPECT_EQ(s3.counter_deltas[0].second, 2u);
}

// ---- sampler cadence ---------------------------------------------------

TEST_F(TelemetryTest, VirtualClockEmitsOneIntervalPerBoundary) {
  const std::string path = "telemetry_cadence.jsonl";
  TelemetryConfig cfg;
  cfg.out_path = path;
  cfg.interval_seconds = 0.5;
  telemetry().configure(cfg);
  ASSERT_TRUE(telemetry().enabled());

  telemetry().begin_run("cadence");
  global_counters().get("cadence.ticks").add(2);
  telemetry().advance_virtual(0.4);  // no boundary crossed yet
  EXPECT_EQ(telemetry().intervals_emitted(), 0u);
  telemetry().advance_virtual(0.6);  // crosses t=0.5
  EXPECT_EQ(telemetry().intervals_emitted(), 1u);
  global_counters().get("cadence.ticks").add(1);
  telemetry().advance_virtual(2.1);  // crosses 1.0, 1.5, 2.0 at once
  EXPECT_EQ(telemetry().intervals_emitted(), 4u);
  telemetry().shutdown();

  const std::vector<std::string> lines = lines_of(read_file(path));
  ASSERT_EQ(lines.size(), 5u);  // phase marker + 4 intervals
  const JsonValue phase = parse_json(lines[0]);
  EXPECT_EQ(phase.at("type").string, "phase");
  EXPECT_EQ(phase.at("label").string, "cadence");
  const JsonValue first = parse_json(lines[1]);
  EXPECT_EQ(first.at("type").string, "interval");
  EXPECT_EQ(static_cast<int>(first.at("seq").number), 0);
  EXPECT_DOUBLE_EQ(first.at("t").number, 0.5);
  EXPECT_DOUBLE_EQ(first.at("dt").number, 0.5);
  EXPECT_DOUBLE_EQ(
      first.at("counters").at("cadence.ticks").at("delta").number, 2.0);
  // Catch-up intervals land exactly on multiples of the cadence.
  const JsonValue last = parse_json(lines[4]);
  EXPECT_DOUBLE_EQ(last.at("t").number, 2.0);
  EXPECT_EQ(static_cast<int>(last.at("seq").number), 3);
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, SeededRunsWriteByteIdenticalStreams) {
  // Two identical simulated runs with a reconfigure between them must
  // produce byte-identical JSONL: the registry keeps accumulating, but the
  // stream carries only interval deltas.
  const auto run_once = [](const std::string& path) {
    TelemetryConfig cfg;
    cfg.out_path = path;
    cfg.interval_seconds = 1e-4;
    telemetry().configure(cfg);
    workloads::StreamApp app({24 * kMiB, 8, 4});
    core::RuntimeConfig c;
    c.machine = memsim::machines::platform_a(
        memsim::devices::nvm_bw_fraction(memsim::devices::dram(64 * kMiB),
                                         0.5, 4 * kGiB),
        64 * kMiB);
    c.backing = hms::Backing::Virtual;
    core::Runtime rt(c);
    (void)rt.run_static(app, memsim::kNvm);
    telemetry().shutdown();
  };
  run_once("telemetry_det_a.jsonl");
  run_once("telemetry_det_b.jsonl");
  const std::string a = read_file("telemetry_det_a.jsonl");
  const std::string b = read_file("telemetry_det_b.jsonl");
  EXPECT_FALSE(a.empty());
  EXPECT_GT(lines_of(a).size(), 2u);  // phase marker + real intervals
  EXPECT_EQ(a, b);
  std::remove("telemetry_det_a.jsonl");
  std::remove("telemetry_det_b.jsonl");
}

TEST_F(TelemetryTest, StallDetectorFiresOnWedgedRun) {
  // Group 0 makes progress, then group 1 blocks on a huge proactive copy
  // over a starved NVM link: the post-stall advance_virtual crosses many
  // cadence boundaries with zero task progress, which is exactly the
  // wedge signature the detector watches for.
  const std::string tele_path = "telemetry_stall.jsonl";
  const std::string flight_path = "telemetry_stall_flight.json";
  FlightRecorder::Config fc;
  fc.out_path = flight_path;
  flight().configure(fc);
  TelemetryConfig cfg;
  cfg.out_path = tele_path;
  cfg.interval_seconds = 1e-3;
  cfg.stall_intervals = 5;
  telemetry().configure(cfg);
  telemetry().begin_run("wedge");

  memsim::Machine m = memsim::machines::platform_a(
      memsim::devices::nvm_bw_fraction(memsim::devices::dram(256 * kMiB),
                                       0.01, 16 * kGiB),
      256 * kMiB);
  task::GraphBuilder gb;
  gb.begin_group("warm");
  for (int i = 0; i < 4; ++i) {
    task::Task t;
    t.compute_seconds = 1e-4;
    task::DataAccess a;
    a.object = 1;
    a.mode = task::AccessMode::Read;
    a.traffic.loads = 1000;
    a.traffic.footprint = 8000;
    t.accesses = {a};
    gb.add_task(std::move(t));
  }
  gb.begin_group("blocked");
  {
    task::Task t;
    t.compute_seconds = 1e-4;
    task::DataAccess a;
    a.object = 2;
    a.mode = task::AccessMode::Read;
    a.traffic.loads = 1000;
    a.traffic.footprint = 8000;
    t.accesses = {a};
    gb.add_task(std::move(t));
  }
  const task::TaskGraph g = gb.build();
  // The copy fires at group 0 and gates group 1: 64 MiB over the starved
  // link is a long exposed stall.
  task::ScheduledCopy copy;
  copy.object = 2;
  copy.chunk = 0;
  copy.bytes = 64 * kMiB;
  copy.dst = memsim::kDram;
  copy.trigger_group = 0;
  copy.needed_group = 1;
  task::SimExecutor ex;
  task::SimExecutor::Options opts;
  opts.check_capacity = false;
  hms::PlacementMap placement;
  placement.set(1, 0, memsim::kDram);
  placement.set(2, 0, memsim::kNvm);
  (void)ex.run(g, m, placement, {copy}, opts);
  telemetry().shutdown();

  const std::string text = read_file(tele_path);
  const std::vector<std::string> lines = lines_of(text);
  ASSERT_GT(lines.size(), 6u);
  bool saw_stall = false;
  for (const std::string& line : lines) {
    const JsonValue v = parse_json(line);
    if (v.at("type").string == "breach" && v.at("kind").string == "stall") {
      saw_stall = true;
      EXPECT_GE(static_cast<int>(v.at("intervals").number), 5);
    }
  }
  EXPECT_TRUE(saw_stall);
  // The breach also bumped the counter and dumped the flight rings.
  EXPECT_GE(global_counters().get("slo.breaches").value(), 1u);
  const std::string flight_text = read_file(flight_path);
  ASSERT_FALSE(flight_text.empty());
  const JsonValue doc = parse_json(flight_text);
  EXPECT_EQ(doc.at("schema").string, "tahoe_flight_v1");
  EXPECT_EQ(doc.at("reason").string, "stall");
  EXPECT_FALSE(doc.at("intervals").array.empty());
  std::remove(tele_path.c_str());
  std::remove(flight_path.c_str());
}

// ---- flight recorder ---------------------------------------------------

TEST_F(TelemetryTest, FlightRingsAreBounded) {
  FlightRecorder::Config fc;
  fc.out_path = "flight_ring.json";
  fc.max_events = 8;
  fc.max_intervals = 4;
  flight().configure(fc);
  std::vector<TraceEvent> batch(3);
  for (int i = 0; i < 8; ++i) flight().record_events(batch);  // 24 events
  EXPECT_EQ(flight().event_count(), 8u);
  for (int i = 0; i < 10; ++i) {
    flight().record_line("{\"type\":\"interval\",\"seq\":" +
                         std::to_string(i) + "}");
  }
  EXPECT_EQ(flight().line_count(), 4u);

  ASSERT_TRUE(flight().dump("test", 1.5));
  const JsonValue doc = parse_json(read_file("flight_ring.json"));
  EXPECT_EQ(doc.at("schema").string, "tahoe_flight_v1");
  EXPECT_EQ(doc.at("reason").string, "test");
  EXPECT_DOUBLE_EQ(doc.at("t").number, 1.5);
  EXPECT_EQ(doc.at("events").array.size(), 8u);
  // The line ring kept the newest four, spliced verbatim.
  ASSERT_EQ(doc.at("intervals").array.size(), 4u);
  EXPECT_DOUBLE_EQ(doc.at("intervals").array[0].at("seq").number, 6.0);
  EXPECT_EQ(flight().dumps(), 1u);
  std::remove("flight_ring.json");
}

TEST_F(TelemetryTest, InjectedFaultTriggersDump) {
  const std::string tele_path = "telemetry_fault.jsonl";
  const std::string flight_path = "telemetry_fault_flight.json";
  FlightRecorder::Config fc;
  fc.out_path = flight_path;
  flight().configure(fc);
  TelemetryConfig cfg;
  cfg.out_path = tele_path;
  cfg.interval_seconds = 0.5;
  telemetry().configure(cfg);
  telemetry().begin_run("faulty");

  // Inject after arming: the next emitted interval polls the fault
  // injector and dumps on the observed delta.
  fault::FaultConfig fcfg;
  fcfg.dram_reservation = 1.0;
  fault::global().configure(fcfg);
  EXPECT_TRUE(fault::global().should_fail(fault::Site::DramReservation));
  telemetry().advance_virtual(0.6);
  telemetry().shutdown();

  const JsonValue doc = parse_json(read_file(flight_path));
  EXPECT_EQ(doc.at("schema").string, "tahoe_flight_v1");
  EXPECT_EQ(doc.at("reason").string, "fault");
  std::remove(tele_path.c_str());
  std::remove(flight_path.c_str());
}

TEST_F(TelemetryTest, DisarmedSamplerIgnoresAdvance) {
  telemetry().shutdown();
  EXPECT_FALSE(telemetry().enabled());
  // advance_virtual on a disarmed sampler is a no-op, not a crash.
  const std::uint64_t before = telemetry().intervals_emitted();
  telemetry().advance_virtual(123.0);
  EXPECT_EQ(telemetry().intervals_emitted(), before);
}

}  // namespace
}  // namespace tahoe::trace
