#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/initial_placement.hpp"

namespace tahoe::core {
namespace {

TEST(InitialPlacement, PicksLargestEstimatesWithinCapacity) {
  std::vector<ObjectInfo> objects{
      ObjectInfo{1, "hot", {64 * kMiB}, 1e9},
      ObjectInfo{2, "warm", {64 * kMiB}, 1e6},
      ObjectInfo{3, "cold", {64 * kMiB}, 1e3},
  };
  const auto chosen = choose_initial_dram(objects, 128 * kMiB);
  ASSERT_EQ(chosen.size(), 2u);
  EXPECT_EQ(chosen[0].object, 1u);
  EXPECT_EQ(chosen[1].object, 2u);
}

TEST(InitialPlacement, SkipsStaticallyUnknownObjects) {
  std::vector<ObjectInfo> objects{
      ObjectInfo{1, "unknown", {16 * kMiB}, 0.0},
      ObjectInfo{2, "known", {16 * kMiB}, 10.0},
  };
  const auto chosen = choose_initial_dram(objects, 64 * kMiB);
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0].object, 2u);
}

TEST(InitialPlacement, ChunkedObjectsPlacePerChunk) {
  std::vector<ObjectInfo> objects{
      ObjectInfo{1, "chunked", {64 * kMiB, 64 * kMiB, 64 * kMiB}, 3e9},
  };
  // Only two chunks fit.
  const auto chosen = choose_initial_dram(objects, 128 * kMiB);
  EXPECT_EQ(chosen.size(), 2u);
  for (const UnitKey& u : chosen) EXPECT_EQ(u.object, 1u);
}

TEST(InitialPlacement, EmptyWhenNothingFits) {
  std::vector<ObjectInfo> objects{
      ObjectInfo{1, "big", {1 * kGiB}, 1e9},
  };
  EXPECT_TRUE(choose_initial_dram(objects, 64 * kMiB).empty());
}

TEST(InitialPlacement, NoObjectsNoChoice) {
  EXPECT_TRUE(choose_initial_dram({}, 64 * kMiB).empty());
}

}  // namespace
}  // namespace tahoe::core
