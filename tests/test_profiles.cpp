// Online profiler: sampling accumulation across iterations.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/profiles.hpp"
#include "memsim/machine.hpp"

namespace tahoe::core {
namespace {

memsim::Machine machine() {
  return memsim::machines::platform_a(
      memsim::devices::nvm_bw_fraction(memsim::devices::dram(256 * kMiB), 0.5,
                                       16 * kGiB),
      256 * kMiB);
}

task::TaskGraph two_group_graph() {
  task::GraphBuilder gb;
  gb.begin_group("a");
  {
    task::Task t;
    task::DataAccess a;
    a.object = 1;
    a.chunk = 0;
    a.mode = task::AccessMode::Read;
    a.traffic.loads = 10'000'000;
    a.traffic.footprint = 64 * kMiB;
    t.accesses = {a};
    gb.add_task(std::move(t));
  }
  gb.begin_group("b");
  {
    task::Task t;
    task::DataAccess a;
    a.object = 2;
    a.chunk = 1;
    a.mode = task::AccessMode::ReadWrite;
    a.traffic.loads = 4'000'000;
    a.traffic.stores = 2'000'000;
    a.traffic.footprint = 32 * kMiB;
    t.accesses = {a};
    gb.add_task(std::move(t));
  }
  return gb.build();
}

task::SimReport fake_report(const task::TaskGraph& g) {
  task::SimReport r;
  r.group_seconds = {0.25, 0.50};
  r.group_start = {0.0, 0.25};
  r.task_seconds.assign(g.num_tasks(), 0.25);
  r.makespan = 0.75;
  return r;
}

TEST(Profiler, AccumulatesPerUnitCounts) {
  const task::TaskGraph g = two_group_graph();
  const memsim::Machine m = machine();
  Profiler prof(memsim::Sampler(m.sample_interval, m.cpu_hz, m.seed));
  prof.observe(g, fake_report(g));
  prof.observe(g, fake_report(g));

  const PhaseProfiles& p = prof.profiles();
  EXPECT_EQ(p.iterations_profiled, 2u);
  ASSERT_EQ(p.groups.size(), 2u);
  // Group durations average back to the per-iteration values.
  EXPECT_NEAR(p.group_duration(0), 0.25, 1e-12);
  EXPECT_NEAR(p.group_duration(1), 0.50, 1e-12);

  const auto& ga = p.groups[0].units;
  ASSERT_EQ(ga.size(), 1u);
  const auto& [key_a, counts_a] = *ga.begin();
  EXPECT_EQ(key_a.object, 1u);
  EXPECT_EQ(key_a.chunk, 0u);
  // Two iterations of 10M loads sampled at 1/1000: ~20k events.
  EXPECT_NEAR(static_cast<double>(counts_a.loads), 20'000.0, 2'000.0);
  EXPECT_EQ(counts_a.stores, 0u);

  const auto& gb_units = p.groups[1].units;
  const auto& [key_b, counts_b] = *gb_units.begin();
  EXPECT_EQ(key_b.object, 2u);
  EXPECT_EQ(key_b.chunk, 1u);
  EXPECT_GT(counts_b.stores, 0u);
  EXPECT_GT(counts_b.loads, counts_b.stores);
}

TEST(Profiler, SamplesTakenTracksOverheadBase) {
  const task::TaskGraph g = two_group_graph();
  const memsim::Machine m = machine();
  Profiler prof(memsim::Sampler(m.sample_interval, m.cpu_hz, m.seed));
  EXPECT_EQ(prof.samples_taken(), 0u);
  prof.observe(g, fake_report(g));
  const std::uint64_t after_one = prof.samples_taken();
  EXPECT_GT(after_one, 0u);
  prof.observe(g, fake_report(g));
  EXPECT_GT(prof.samples_taken(), after_one);
}

TEST(Profiler, ResetClearsEverything) {
  const task::TaskGraph g = two_group_graph();
  const memsim::Machine m = machine();
  Profiler prof(memsim::Sampler(m.sample_interval, m.cpu_hz, m.seed));
  prof.observe(g, fake_report(g));
  prof.reset();
  EXPECT_EQ(prof.profiles().iterations_profiled, 0u);
  EXPECT_TRUE(prof.profiles().groups.empty());
}

TEST(Profiler, MismatchedReportRejected) {
  const task::TaskGraph g = two_group_graph();
  const memsim::Machine m = machine();
  Profiler prof(memsim::Sampler(m.sample_interval, m.cpu_hz, m.seed));
  task::SimReport bad = fake_report(g);
  bad.task_seconds.pop_back();
  EXPECT_THROW(prof.observe(g, bad), ContractError);
}

TEST(PhaseProfiles, GroupDurationGuards) {
  PhaseProfiles p;
  p.groups.resize(1);
  EXPECT_DOUBLE_EQ(p.group_duration(0), 0.0);  // nothing profiled yet
  EXPECT_THROW(p.group_duration(5), ContractError);
}

}  // namespace
}  // namespace tahoe::core
