// Bounded SPSC ring channel: the transport under the channel executor's
// steal-request protocol.
#include "task/spsc_channel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace tahoe::task {
namespace {

TEST(SpscChannel, StartsEmptyAndRoundsCapacityToPowerOfTwo) {
  SpscChannel<int> ch(3);
  EXPECT_TRUE(ch.empty_approx());
  EXPECT_EQ(ch.size_approx(), 0u);
  EXPECT_EQ(ch.capacity(), 4u);  // next power of two
  SpscChannel<int> tiny(1);
  EXPECT_EQ(tiny.capacity(), 2u);  // minimum
  SpscChannel<int> exact(8);
  EXPECT_EQ(exact.capacity(), 8u);
}

TEST(SpscChannel, FifoOrderSingleThread) {
  SpscChannel<int> ch(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ch.try_send(i));
  EXPECT_EQ(ch.size_approx(), 8u);
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(ch.try_recv(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ch.try_recv(v));
  EXPECT_TRUE(ch.empty_approx());
}

TEST(SpscChannel, SendFailsWhenFullRecvFailsWhenEmpty) {
  SpscChannel<int> ch(2);
  int v = 0;
  EXPECT_FALSE(ch.try_recv(v));
  EXPECT_TRUE(ch.try_send(1));
  EXPECT_TRUE(ch.try_send(2));
  EXPECT_FALSE(ch.try_send(3));  // full
  EXPECT_TRUE(ch.try_recv(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(ch.try_send(3));  // slot freed
  EXPECT_TRUE(ch.try_recv(v));
  EXPECT_EQ(v, 2);
  EXPECT_TRUE(ch.try_recv(v));
  EXPECT_EQ(v, 3);
  EXPECT_FALSE(ch.try_recv(v));
}

TEST(SpscChannel, WrapsAroundManyTimes) {
  SpscChannel<std::uint64_t> ch(4);
  std::uint64_t next_recv = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(ch.try_send(i));
    if (i % 3 == 0) {  // drain partially so head/tail wrap out of phase
      std::uint64_t v = 0;
      while (ch.try_recv(v)) {
        EXPECT_EQ(v, next_recv);
        ++next_recv;
      }
    }
  }
  std::uint64_t v = 0;
  while (ch.try_recv(v)) {
    EXPECT_EQ(v, next_recv);
    ++next_recv;
  }
  EXPECT_EQ(next_recv, 1000u);
}

TEST(SpscChannel, ConcurrentProducerConsumerDeliversEverythingInOrder) {
  constexpr std::uint64_t kItems = 200000;
  SpscChannel<std::uint64_t> ch(64);
  std::thread producer([&ch] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      while (!ch.try_send(i)) std::this_thread::yield();
    }
  });
  std::uint64_t received = 0;
  bool in_order = true;
  while (received < kItems) {
    std::uint64_t v = 0;
    if (ch.try_recv(v)) {
      if (v != received) in_order = false;
      ++received;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(in_order);
  EXPECT_EQ(received, kItems);
  EXPECT_TRUE(ch.empty_approx());
}

TEST(SpscChannel, CarriesTriviallyCopyableStructsIntact) {
  struct Payload {
    std::uint32_t a;
    bool flag;
    std::uint64_t values[4];
  };
  SpscChannel<Payload> ch(4);
  Payload p{};
  p.a = 42;
  p.flag = true;
  for (int i = 0; i < 4; ++i) p.values[i] = 100 + i;
  EXPECT_TRUE(ch.try_send(p));
  Payload q{};
  EXPECT_TRUE(ch.try_recv(q));
  EXPECT_EQ(q.a, 42u);
  EXPECT_TRUE(q.flag);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.values[i], 100u + i);
}

}  // namespace
}  // namespace tahoe::task
