// End-to-end checks of the tahoe_sweep fork/merge driver, including the
// child-failure contract: a cell whose child exits non-zero must surface
// as an explicit failed run entry in the merged artifact (and a non-zero
// sweep exit), never as a silently merged partial result.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "trace/json.hpp"

namespace tahoe {
namespace {

#ifdef TAHOE_SWEEP_BIN

int run_sweep(const std::string& args) {
  const std::string cmd =
      std::string(TAHOE_SWEEP_BIN) + " " + args + " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

trace::JsonValue read_artifact(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is) << "sweep wrote no artifact at " << path;
  std::stringstream buf;
  buf << is.rdbuf();
  return trace::parse_json(buf.str());
}

TEST(Sweep, HealthyGridMergesEveryCell) {
  const std::string out = ::testing::TempDir() + "sweep_ok.json";
  ASSERT_EQ(run_sweep("--out " + out +
                      " --workloads cg --policies static-dram,static-nvm"
                      " --nvm-specs bw:0.5 --scale test --jobs 2"),
            0);
  const trace::JsonValue v = read_artifact(out);
  EXPECT_EQ(v.at("schema").string, "tahoe_sweep_v1");
  EXPECT_EQ(v.at("cells").number, 2.0);
  EXPECT_EQ(v.at("failed_cells").number, 0.0);
  ASSERT_EQ(v.at("runs").array.size(), 2u);
  for (const trace::JsonValue& run : v.at("runs").array) {
    EXPECT_TRUE(run.object.count("steady_iteration_seconds"));
    EXPECT_FALSE(run.object.count("failed"));
  }
  EXPECT_EQ(v.at("comparison").array.size(), 1u);
  EXPECT_EQ(v.at("comparison").array[0].at("rows").array.size(), 2u);
  std::remove(out.c_str());
}

TEST(Sweep, FailedCellIsMarkedNotSilentlyMerged) {
  // "bogus" is not a policy: its child exits non-zero before producing a
  // report. The sweep must still write the artifact, mark the cell failed,
  // keep the healthy cell's run intact, and exit non-zero itself.
  const std::string out = ::testing::TempDir() + "sweep_fail.json";
  ASSERT_NE(run_sweep("--out " + out +
                      " --workloads cg --policies static-dram,bogus"
                      " --nvm-specs bw:0.5 --scale test --jobs 2"),
            0);
  const trace::JsonValue v = read_artifact(out);
  EXPECT_EQ(v.at("cells").number, 2.0);
  EXPECT_EQ(v.at("failed_cells").number, 1.0);
  ASSERT_EQ(v.at("runs").array.size(), 2u);
  int failed_entries = 0;
  int healthy_entries = 0;
  for (const trace::JsonValue& run : v.at("runs").array) {
    if (run.object.count("failed")) {
      ++failed_entries;
      EXPECT_TRUE(run.at("failed").boolean);
      EXPECT_EQ(run.at("policy").string, "bogus");
      EXPECT_EQ(run.at("workload").string, "cg");
      // No partial results may ride along on a failed entry.
      EXPECT_FALSE(run.object.count("steady_iteration_seconds"));
    } else {
      ++healthy_entries;
      EXPECT_TRUE(run.object.count("steady_iteration_seconds"));
    }
  }
  EXPECT_EQ(failed_entries, 1);
  EXPECT_EQ(healthy_entries, 1);
  // The comparison section only ranks real runs.
  ASSERT_EQ(v.at("comparison").array.size(), 1u);
  EXPECT_EQ(v.at("comparison").array[0].at("rows").array.size(), 1u);
  std::remove(out.c_str());
}

#else

TEST(Sweep, RequiresBenchBuild) {
  GTEST_SKIP() << "tahoe_sweep is only built with TAHOE_BUILD_BENCH=ON";
}

#endif  // TAHOE_SWEEP_BIN

}  // namespace
}  // namespace tahoe
