// Fluid processor-sharing simulator: timing semantics the whole
// reproduction rests on.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include "memsim/fluid.hpp"

namespace tahoe::memsim {
namespace {

FlowSpec flow(double serial, std::vector<double> dev, std::uint64_t tag = 0) {
  FlowSpec s;
  s.serial_seconds = serial;
  s.device_seconds = std::move(dev);
  s.tag = tag;
  return s;
}

TEST(Fluid, SingleFlowTakesItsDemand) {
  FluidSim sim(2);
  sim.start_flow(flow(0.0, {1.0, 0.0}));
  const auto c = sim.step();
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->time, 1.0);
  EXPECT_DOUBLE_EQ(sim.now(), 1.0);
}

TEST(Fluid, SerialFloorDominatesWhenLarger) {
  FluidSim sim(1);
  sim.start_flow(flow(5.0, {1.0}));
  const auto c = sim.step();
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->time, 5.0);
}

TEST(Fluid, TwoFlowsShareOneDeviceEqually) {
  FluidSim sim(1);
  sim.start_flow(flow(0.0, {1.0}, 1));
  sim.start_flow(flow(0.0, {1.0}, 2));
  const auto c1 = sim.step();
  const auto c2 = sim.step();
  ASSERT_TRUE(c1 && c2);
  // Each needs 1 channel-second at half rate: both finish at t=2.
  EXPECT_DOUBLE_EQ(c1->time, 2.0);
  EXPECT_DOUBLE_EQ(c2->time, 2.0);
}

TEST(Fluid, UnequalDemandsReleaseCapacityEarly) {
  FluidSim sim(1);
  sim.start_flow(flow(0.0, {1.0}, 1));
  sim.start_flow(flow(0.0, {3.0}, 2));
  const auto c1 = sim.step();
  const auto c2 = sim.step();
  ASSERT_TRUE(c1 && c2);
  // Shared until the small flow drains: it needs 1 at rate 1/2 -> t=2.
  EXPECT_DOUBLE_EQ(c1->time, 2.0);
  EXPECT_EQ(c1->tag, 1u);
  // Large flow served 1 by t=2, then runs alone: 2 more -> t=4.
  EXPECT_DOUBLE_EQ(c2->time, 4.0);
}

TEST(Fluid, FlowsOnDifferentDevicesDoNotInterfere) {
  FluidSim sim(2);
  sim.start_flow(flow(0.0, {1.0, 0.0}, 1));
  sim.start_flow(flow(0.0, {0.0, 1.0}, 2));
  const auto c1 = sim.step();
  const auto c2 = sim.step();
  ASSERT_TRUE(c1 && c2);
  EXPECT_DOUBLE_EQ(c1->time, 1.0);
  EXPECT_DOUBLE_EQ(c2->time, 1.0);
}

TEST(Fluid, LateArrivalSharesOnlyFromItsStart) {
  FluidSim sim(1);
  sim.start_flow(flow(0.0, {2.0}, 1));
  // Let 1 second pass (flow 1 drains 1 of its 2 channel-seconds).
  const double advanced = sim.advance(1.0);
  EXPECT_DOUBLE_EQ(advanced, 1.0);
  sim.start_flow(flow(0.0, {2.0}, 2));
  const auto c1 = sim.step();
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(c1->tag, 1u);
  // Flow 1 has 1 left at rate 1/2 -> finishes at t=3.
  EXPECT_DOUBLE_EQ(c1->time, 3.0);
  const auto c2 = sim.step();
  ASSERT_TRUE(c2.has_value());
  // Flow 2: served 1 by t=3, 1 left alone -> t=4.
  EXPECT_DOUBLE_EQ(c2->time, 4.0);
}

TEST(Fluid, ZeroDemandFlowCompletesInstantly) {
  FluidSim sim(1);
  sim.start_flow(flow(0.0, {0.0}));
  const auto c = sim.step();
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->time, 0.0);
}

TEST(Fluid, SerialAndChannelOverlap) {
  // Serial work and channel work drain concurrently: total = max.
  FluidSim sim(1);
  sim.start_flow(flow(2.0, {1.0}));
  const auto c = sim.step();
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->time, 2.0);
}

TEST(Fluid, BusySecondsAccounted) {
  FluidSim sim(2);
  sim.start_flow(flow(0.0, {1.5, 0.25}));
  (void)sim.step();
  EXPECT_DOUBLE_EQ(sim.device_busy_seconds(0), 1.5);
  EXPECT_DOUBLE_EQ(sim.device_busy_seconds(1), 0.25);
}

TEST(Fluid, AdvanceWithNothingActivePassesTime) {
  FluidSim sim(1);
  EXPECT_DOUBLE_EQ(sim.advance(2.5), 2.5);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
}

TEST(Fluid, StepWithNoFlowsReturnsNullopt) {
  FluidSim sim(1);
  EXPECT_FALSE(sim.step().has_value());
}

TEST(Fluid, ManyFlowsDeterministicOrder) {
  FluidSim sim(1);
  for (std::uint64_t i = 0; i < 8; ++i) {
    sim.start_flow(flow(0.0, {1.0}, i));
  }
  // All identical: all complete at t=8, delivered in flow-id order.
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto c = sim.step();
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->tag, i);
    EXPECT_DOUBLE_EQ(c->time, 8.0);
  }
}

TEST(Fluid, RejectsNegativeDemand) {
  FluidSim sim(1);
  EXPECT_THROW(sim.start_flow(flow(-1.0, {1.0})), ContractError);
  EXPECT_THROW(sim.start_flow(flow(0.0, {-2.0})), ContractError);
}

TEST(Fluid, ThroughputConservation) {
  // Property: regardless of arrival pattern, total busy time equals total
  // demand, and makespan >= total demand (single device).
  FluidSim sim(1);
  double total = 0.0;
  for (int i = 0; i < 20; ++i) {
    const double d = 0.1 * (i % 5 + 1);
    total += d;
    sim.start_flow(flow(0.0, {d}));
    if (i % 3 == 0) sim.advance(0.05);
  }
  while (sim.step().has_value()) {
  }
  EXPECT_NEAR(sim.device_busy_seconds(0), total, 1e-9);
  EXPECT_GE(sim.now() + 1e-12, total);
}

}  // namespace
}  // namespace tahoe::memsim
