// Two-tier behavior-preservation goldens (N-tier refactor PR).
//
// The N-tier generalization must not change a single byte of the report or
// explain JSON of existing two-tier configurations. These tests replay
// seeded simulated runs on `platform_a` and `optane_platform` and compare
// the serialized output against goldens captured *before* the refactor
// (tests/golden/*.json). Regenerate deliberately with
// TAHOE_UPDATE_GOLDENS=1 after verifying a behavior change is intended.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/fault.hpp"
#include "common/units.hpp"
#include "core/calibration.hpp"
#include "core/planner.hpp"
#include "core/runtime.hpp"
#include "trace/counters.hpp"
#include "workloads/common.hpp"

#ifndef TAHOE_GOLDEN_DIR
#define TAHOE_GOLDEN_DIR "tests/golden"
#endif

namespace tahoe {
namespace {

core::RuntimeConfig platform_a_config() {
  core::RuntimeConfig c;
  c.machine = memsim::machines::platform_a(
      memsim::devices::nvm_bw_fraction(memsim::devices::dram(64 * kMiB), 0.5,
                                       4 * kGiB),
      64 * kMiB);
  c.backing = hms::Backing::Virtual;
  c.fixed_decision_seconds = 0.0;
  c.attribution = true;
  return c;
}

core::RuntimeConfig optane_config() {
  core::RuntimeConfig c;
  c.machine = memsim::machines::optane_platform(64 * kMiB);
  c.backing = hms::Backing::Virtual;
  c.fixed_decision_seconds = 0.0;
  c.attribution = true;
  return c;
}

struct RunJson {
  std::string report;
  std::string explain;
};

/// One fully reset seeded run: the report body alone (no counter/gauge
/// snapshots — those may legitimately gain new entries over time) plus the
/// explain document.
RunJson run_json(const core::RuntimeConfig& config,
                 const std::string& workload) {
  fault::global().disarm();
  trace::global_counters().reset();
  auto app = workloads::make_workload(workload, workloads::Scale::Test);
  core::Runtime rt(config);
  core::TahoePolicy policy(core::calibrate(rt.machine()).to_constants());
  const core::RunReport report = rt.run(*app, policy);
  RunJson out;
  {
    std::ostringstream os;
    report.write_json(os);
    out.report = os.str();
  }
  {
    std::ostringstream os;
    report.write_explain_json(os);
    out.explain = os.str();
  }
  return out;
}

std::string golden_path(const std::string& name) {
  return std::string(TAHOE_GOLDEN_DIR) + "/" + name;
}

/// Compare `actual` against the stored golden; with TAHOE_UPDATE_GOLDENS=1
/// rewrite the golden instead (capture mode).
void check_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (std::getenv("TAHOE_UPDATE_GOLDENS") != nullptr) {
    std::ofstream os(path);
    ASSERT_TRUE(os.good()) << "cannot write golden " << path;
    os << actual;
    GTEST_SKIP() << "golden " << name << " updated";
  }
  std::ifstream is(path);
  ASSERT_TRUE(is.good()) << "missing golden " << path
                         << " (run with TAHOE_UPDATE_GOLDENS=1 to capture)";
  std::ostringstream buf;
  buf << is.rdbuf();
  EXPECT_EQ(buf.str(), actual) << "two-tier run diverged from the "
                                  "pre-refactor golden " << name;
}

TEST(TierGoldens, PlatformACgReportIsByteIdentical) {
  const RunJson r = run_json(platform_a_config(), "cg");
  check_golden("platform_a_cg.report.json", r.report);
}

TEST(TierGoldens, PlatformACgExplainIsByteIdentical) {
  const RunJson r = run_json(platform_a_config(), "cg");
  check_golden("platform_a_cg.explain.json", r.explain);
}

TEST(TierGoldens, PlatformAHeatReportIsByteIdentical) {
  const RunJson r = run_json(platform_a_config(), "heat");
  check_golden("platform_a_heat.report.json", r.report);
}

TEST(TierGoldens, OptaneCgReportIsByteIdentical) {
  const RunJson r = run_json(optane_config(), "cg");
  check_golden("optane_cg.report.json", r.report);
}

TEST(TierGoldens, OptaneSpReportIsByteIdentical) {
  const RunJson r = run_json(optane_config(), "sp");
  check_golden("optane_sp.report.json", r.report);
}

}  // namespace
}  // namespace tahoe
