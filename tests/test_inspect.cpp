// Analyzer tests: the trace -> analysis pipeline behind tahoe_inspect.
// Builds synthetic traces through the real Tracer + chrome exporter, then
// checks the derived critical path, overlap accounting, worker lanes, the
// ring-overflow drop count round-trip, and the explain/report echoes.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/units.hpp"
#include "core/report.hpp"
#include "hms/registry.hpp"
#include "trace/analyze.hpp"
#include "trace/chrome_export.hpp"
#include "trace/counters.hpp"
#include "trace/json.hpp"
#include "trace/trace.hpp"

namespace tahoe::trace {
namespace {

JsonValue exported(Tracer& tracer) {
  std::ostringstream os;
  write_chrome_trace(os, tracer.drain(), tracer.track_names(),
                     tracer.dropped());
  return parse_json(os.str());
}

// Two phases, two workers, one partly-exposed migration — every derived
// quantity is checkable by hand.
TEST(Analyze, SyntheticTraceDerivesKnownQuantities) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_track_name(0, "worker 0");
  tracer.set_track_name(1, "worker 1");
  tracer.complete(kRuntimeTrack, "group build", 0.0, 1.0);
  tracer.complete(kRuntimeTrack, "group apply", 1.2, 0.8);
  tracer.complete(0, "build", 0.1, 0.4, "task", 1);
  tracer.complete(1, "build", 0.2, 0.6, "task", 2);
  tracer.complete(0, "apply", 1.3, 0.5, "task", 3);
  tracer.complete(kRuntimeTrack, "migration-stall", 1.0, 0.2);
  tracer.complete(kMigrationTrack, "migrate", 0.5, 0.3, "bytes", 1000);
  // Instants and counters carry no duration and must not perturb anything.
  tracer.instant(kPlannerTrack, "decision", 0.4, "cost_us", 123456);
  tracer.counter(kRuntimeTrack, "migrate.queue_depth", 0.5, 1);

  const JsonValue doc = exported(tracer);
  const Analysis a = analyze(doc, nullptr, nullptr);

  EXPECT_EQ(a.schema_version, 2u);
  EXPECT_EQ(a.dropped_events, 0u);
  EXPECT_NEAR(a.makespan_seconds, 2.0, 1e-9);
  EXPECT_EQ(a.group_spans, 2u);
  EXPECT_EQ(a.task_spans, 3u);
  // Critical path: longest task per group (0.6 + 0.5) + exposed stall 0.2.
  EXPECT_NEAR(a.critical_path_seconds, 1.3, 1e-9);
  EXPECT_NEAR(a.critical_path_fraction, 0.65, 1e-9);
  EXPECT_NEAR(a.copy_busy_seconds, 0.3, 1e-9);
  EXPECT_NEAR(a.stall_seconds, 0.2, 1e-9);
  EXPECT_NEAR(a.overlap_efficiency, (0.3 - 0.2) / 0.3, 1e-9);
  EXPECT_EQ(a.migrations, 1u);
  EXPECT_EQ(a.bytes_moved, 1000u);

  ASSERT_EQ(a.workers.size(), 2u);
  EXPECT_EQ(a.workers[0].name, "worker 0");
  EXPECT_EQ(a.workers[0].tasks, 2u);
  EXPECT_NEAR(a.workers[0].busy_seconds, 0.9, 1e-9);
  EXPECT_NEAR(a.workers[0].utilization, 0.45, 1e-9);
  EXPECT_EQ(a.workers[1].name, "worker 1");
  EXPECT_NEAR(a.workers[1].busy_seconds, 0.6, 1e-9);
}

TEST(Analyze, EmptyTraceYieldsZeroes) {
  Tracer tracer;  // enabled=false, nothing recorded
  const JsonValue doc = exported(tracer);
  const Analysis a = analyze(doc, nullptr, nullptr);
  EXPECT_EQ(a.makespan_seconds, 0.0);
  EXPECT_EQ(a.critical_path_seconds, 0.0);
  EXPECT_EQ(a.migrations, 0u);
  EXPECT_EQ(a.overlap_efficiency, 1.0);  // nothing moved = nothing exposed
  EXPECT_TRUE(a.workers.empty());
}

TEST(Analyze, RejectedMigrationsDoNotCountAsCopies) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.complete(kMigrationTrack, "migrate rejected", 0.0, 0.1);
  tracer.complete(kMigrationTrack, "migrate", 0.2, 0.1, "bytes", 64);
  const Analysis a = analyze(exported(tracer), nullptr, nullptr);
  EXPECT_EQ(a.migrations, 1u);
  EXPECT_EQ(a.bytes_moved, 64u);
  EXPECT_NEAR(a.copy_busy_seconds, 0.1, 1e-9);
}

TEST(Analyze, RingOverflowDropCountRoundTrips) {
  // A deliberately tiny ring: most events drop, the exporter writes the
  // drop count into the "tahoe" metadata, and the analyzer surfaces it —
  // overflow is visible in the artifact, never silent.
  Tracer tracer(/*ring_capacity=*/8);
  tracer.set_enabled(true);
  for (int i = 0; i < 100; ++i) {
    tracer.complete(0, "spam", 0.001 * i, 0.0005, "task",
                    static_cast<std::uint64_t>(i));
  }
  const std::uint64_t dropped = tracer.dropped();
  EXPECT_GT(dropped, 0u);

  const JsonValue doc = exported(tracer);
  const Analysis a = analyze(doc, nullptr, nullptr);
  EXPECT_EQ(a.dropped_events, dropped);
  // The surviving events are still analyzable.
  EXPECT_EQ(a.task_spans + a.dropped_events, 100u);
}

TEST(Analyze, ReportAndExplainSectionsAreEchoed) {
  core::RunReport report;
  report.workload = "unit";
  report.policy = "tahoe";
  report.strategy = "global";

  core::PlanRecord plan;
  plan.iteration = 3;
  plan.strategy = "global";
  plan.local_gain = 0.25;
  plan.global_gain = 0.5;
  plan.predicted_gain = 0.5;
  core::PlanCandidate cand;
  cand.object = "index";
  cand.object_id = 7;
  cand.pass = "global";
  cand.sensitivity = "latency";
  cand.benefit = 0.5;
  cand.value = 0.5;
  cand.bytes = 1024;
  cand.accepted = true;
  cand.reason = "selected";
  plan.candidates.push_back(cand);
  cand.object = "table";
  cand.accepted = false;
  cand.reason = "capacity";
  plan.candidates.push_back(cand);
  report.plans.push_back(plan);

  std::ostringstream ros;
  report.write_json(ros);
  std::ostringstream eos;
  report.write_explain_json(eos);
  const JsonValue rdoc = parse_json(ros.str());
  const JsonValue edoc = parse_json(eos.str());

  Tracer tracer;
  const JsonValue tdoc = exported(tracer);
  const Analysis a = analyze(tdoc, &rdoc, &edoc);

  EXPECT_TRUE(a.has_report);
  EXPECT_EQ(a.workload, "unit");
  EXPECT_EQ(a.policy, "tahoe");
  EXPECT_EQ(a.strategy, "global");
  EXPECT_TRUE(a.has_explain);
  EXPECT_DOUBLE_EQ(a.local_gain, 0.25);
  EXPECT_DOUBLE_EQ(a.global_gain, 0.5);
  ASSERT_EQ(a.rationale.size(), 2u);
  EXPECT_EQ(a.rationale[0].object, "index");
  EXPECT_TRUE(a.rationale[0].accepted);
  EXPECT_EQ(a.rationale[1].reason, "capacity");
  EXPECT_EQ(a.rationale[1].bytes, 1024u);
}

TEST(SegmentStats, DigestParsesCountersGaugesAndArenaRows) {
  core::RunReport report;
  report.workload = "unit";
  std::ostringstream os;
  report.write_json(
      os,
      {{"hms.segment.allocs", 12}, {"hms.segment.frees", 5}, {"other", 9}},
      {{"hms.segment.arena.dram.free_ranges", 1},
       {"hms.segment.arena.dram.meta_bytes", 96},
       {"hms.segment.arena.nvm.free_ranges", 2},
       {"hms.segment.arena.nvm.meta_bytes", 144},
       {"hms.segment.bytes_capacity", 1024},
       {"hms.segment.bytes_used", 512},
       {"hms.segment.freelist_blocks", 3},
       {"hms.segment.freelist_bytes", 192},
       {"hms.segment.slot_capacity", 65536},
       {"hms.segment.slots_live", 7},
       {"unrelated.gauge", 1}});
  const SegmentStats s = analyze_segment_stats(parse_json(os.str()));

  EXPECT_TRUE(s.present);
  EXPECT_EQ(s.allocs, 12u);
  EXPECT_EQ(s.frees, 5u);
  EXPECT_EQ(s.slots_live, 7u);
  EXPECT_EQ(s.slot_capacity, 65536u);
  EXPECT_EQ(s.bytes_used, 512u);
  EXPECT_EQ(s.bytes_capacity, 1024u);
  EXPECT_DOUBLE_EQ(s.occupancy(), 0.5);
  EXPECT_EQ(s.freelist_blocks, 3u);
  EXPECT_EQ(s.freelist_bytes, 192u);
  ASSERT_EQ(s.arenas.size(), 2u);
  EXPECT_EQ(s.arenas[0].name, "dram");
  EXPECT_EQ(s.arenas[0].meta_bytes, 96u);
  EXPECT_EQ(s.arenas[0].free_ranges, 1u);
  EXPECT_EQ(s.arenas[1].name, "nvm");
  EXPECT_EQ(s.arenas[1].meta_bytes, 144u);

  // Rendering is deterministic and carries the schema tag.
  std::ostringstream j1;
  std::ostringstream j2;
  write_segment_stats_json(j1, s);
  write_segment_stats_json(j2, s);
  EXPECT_EQ(j1.str(), j2.str());
  EXPECT_NE(j1.str().find("\"tahoe_segment_stats_v1\""), std::string::npos);
  std::ostringstream table;
  write_segment_stats_table(table, s);
  EXPECT_NE(table.str().find("dram"), std::string::npos);
}

TEST(SegmentStats, ReportsWithoutSegmentMetricsAreAbsent) {
  core::RunReport report;
  std::ostringstream os;
  report.write_json(os, {{"executor.tasks", 4}}, {{"queue.depth", 2}});
  const SegmentStats s = analyze_segment_stats(parse_json(os.str()));
  EXPECT_FALSE(s.present);
  EXPECT_TRUE(s.arenas.empty());
  std::ostringstream table;
  write_segment_stats_table(table, s);
  EXPECT_NE(table.str().find("no hms.segment."), std::string::npos);
}

TEST(SegmentStats, LiveRegistryGaugesRoundTripThroughAReport) {
  // End to end: a real registry publishes its gauges, a report snapshots
  // them, and the digest reconstructs the registry's state.
  hms::ObjectRegistry reg({256 * kKiB, 4 * kMiB}, hms::Backing::Virtual);
  reg.create("a", 16 * kKiB, 0, 2);
  reg.create("b", 8 * kKiB, 1, 1);

  core::RunReport report;
  std::ostringstream os;
  report.write_json(os, global_counters().snapshot_counters(),
                    global_counters().snapshot_gauges());
  const SegmentStats s = analyze_segment_stats(parse_json(os.str()));

  EXPECT_TRUE(s.present);
  EXPECT_EQ(s.slots_live, reg.num_objects());
  EXPECT_EQ(s.slot_capacity, hms::ObjectRegistry::kDefaultSlotCapacity);
  EXPECT_EQ(s.bytes_capacity, reg.segment().size());
  EXPECT_EQ(s.bytes_used, reg.segment().used());
  EXPECT_GE(s.allocs, reg.segment().live_allocations());
  // Both tier arenas publish their range-list footprint.
  ASSERT_GE(s.arenas.size(), 2u);
  for (const SegmentArenaRow& row : s.arenas) {
    EXPECT_GT(row.meta_bytes, 0u) << row.name;
    EXPECT_GE(row.free_ranges, 1u) << row.name;
  }
}

TEST(Analyze, JsonRenderingIsDeterministic) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.complete(kRuntimeTrack, "group g", 0.0, 1.0);
  tracer.complete(0, "t", 0.0, 0.75, "task", 1);
  const JsonValue doc = exported(tracer);
  const Analysis a = analyze(doc, nullptr, nullptr);

  std::ostringstream o1;
  std::ostringstream o2;
  write_analysis_json(o1, a);
  write_analysis_json(o2, a);
  EXPECT_EQ(o1.str(), o2.str());
  EXPECT_NE(o1.str().find("\"critical_path_seconds\":"), std::string::npos);
  EXPECT_NE(o1.str().find("\"overlap_efficiency\":"), std::string::npos);
  EXPECT_EQ(o1.str().back(), '\n');
}

}  // namespace
}  // namespace tahoe::trace
