// End-to-end trace round-trip: run the runtime with tracing enabled,
// export Chrome trace_event JSON, parse it back and validate the schema —
// worker tracks, at least one migration span carrying tier/bytes args, and
// planner decision events. Also validates the trace emitted by the real
// `examples/quickstart --trace-out=...` binary when it is available.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "common/units.hpp"
#include "core/calibration.hpp"
#include "core/planner.hpp"
#include "core/runtime.hpp"
#include "trace/chrome_export.hpp"
#include "trace/json.hpp"
#include "trace/trace.hpp"

namespace tahoe {
namespace {

// Two-phase app with a footprint larger than DRAM, so the planner must
// schedule real migrations (mirrors examples/quickstart.cpp).
class TwoPhaseApp : public core::Application {
 public:
  std::string name() const override { return "twophase"; }
  std::size_t iterations() const override { return 8; }

  void setup(hms::ObjectRegistry& registry,
             const hms::ChunkingPolicy& chunking) override {
    (void)chunking;
    table_ = registry.create("table", 48 * kMiB, memsim::kNvm);
    index_ = registry.create("index", 24 * kMiB, memsim::kNvm);
  }

  void build_iteration(task::GraphBuilder& builder,
                       std::size_t iteration) override {
    (void)iteration;
    builder.begin_group("build");
    for (int i = 0; i < 6; ++i) {
      task::Task t;
      t.label = "build";
      t.compute_seconds = 1e-4;
      task::DataAccess a;
      a.object = table_;
      a.mode = task::AccessMode::ReadWrite;
      a.traffic.loads = 750'000;
      a.traffic.stores = 750'000;
      a.traffic.footprint = 8 * kMiB;
      a.traffic.locality = 0.1;
      t.accesses = {a};
      builder.add_task(std::move(t));
    }
    builder.begin_group("apply");
    for (int i = 0; i < 6; ++i) {
      task::Task t;
      t.label = "apply";
      t.compute_seconds = 1e-4;
      task::DataAccess a;
      a.object = index_;
      a.mode = task::AccessMode::Read;
      a.traffic.loads = 125'000;
      a.traffic.footprint = 24 * kMiB;
      a.traffic.dep_frac = 0.9;
      t.accesses = {a};
      builder.add_task(std::move(t));
    }
  }

 private:
  hms::ObjectId table_ = hms::kInvalidObject;
  hms::ObjectId index_ = hms::kInvalidObject;
};

struct TraceSummary {
  int worker_tracks = 0;
  int worker_spans = 0;
  int migration_spans_with_args = 0;
  int planner_decisions = 0;
  int counter_events = 0;
};

/// Parse a Chrome trace document and count the schema features the
/// acceptance criteria require. Fails the current test on malformed JSON.
TraceSummary summarize_chrome_trace(const std::string& text) {
  TraceSummary s;
  const trace::JsonValue doc = trace::parse_json(text);
  EXPECT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.has("traceEvents"));

  // tid -> label, from thread_name metadata.
  std::map<double, std::string> track_label;
  for (const trace::JsonValue& ev : doc.at("traceEvents").array) {
    if (ev.at("ph").string == "M" && ev.at("name").string == "thread_name") {
      track_label[ev.at("tid").number] = ev.at("args").at("name").string;
    }
  }
  for (const auto& [tid, label] : track_label) {
    if (label.rfind("worker", 0) == 0) ++s.worker_tracks;
  }

  for (const trace::JsonValue& ev : doc.at("traceEvents").array) {
    const std::string& ph = ev.at("ph").string;
    if (ph == "M") continue;
    const std::string& name = ev.at("name").string;
    const std::string label = track_label.count(ev.at("tid").number)
                                  ? track_label[ev.at("tid").number]
                                  : "";
    if (ph == "X" && label.rfind("worker", 0) == 0) ++s.worker_spans;
    if (ph == "X" && name.rfind("migrate", 0) == 0) {
      const trace::JsonValue& args = ev.at("args");
      if (args.has("bytes") && args.has("dst_tier") &&
          args.has("src_tier")) {
        ++s.migration_spans_with_args;
      }
    }
    if (ph == "i" && name.rfind("decide", 0) == 0) ++s.planner_decisions;
    if (ph == "C") ++s.counter_events;
  }
  return s;
}

void expect_valid_tahoe_trace(const TraceSummary& s) {
  EXPECT_GE(s.worker_tracks, 1);
  EXPECT_GT(s.worker_spans, 0);
  EXPECT_GE(s.migration_spans_with_args, 1)
      << "no migration span carried tier/bytes args";
  EXPECT_GE(s.planner_decisions, 1) << "no planner decision event";
  EXPECT_GT(s.counter_events, 0);
}

TEST(TraceRoundTrip, SimulatedRunExportsValidChromeTrace) {
  trace::Tracer& tracer = trace::global();
  tracer.drain();  // discard anything earlier tests left behind
  tracer.set_enabled(true);

  memsim::DeviceModel nvm = memsim::devices::nvm_bw_fraction(
      memsim::devices::dram(32 * kMiB), 0.5, 4 * kGiB);
  core::RuntimeConfig config;
  config.machine = memsim::machines::platform_a(nvm, 32 * kMiB);
  config.backing = hms::Backing::Virtual;
  core::Runtime runtime(config);

  TwoPhaseApp app;
  core::TahoePolicy policy(core::calibrate(runtime.machine()).to_constants());
  const core::RunReport report = runtime.run(app, policy);
  tracer.set_enabled(false);
  ASSERT_GT(report.migrations, 0u) << "app too small to trigger migration";

  std::ostringstream os;
  trace::write_chrome_trace(os, tracer.drain(), tracer.track_names());
  const TraceSummary s = summarize_chrome_trace(os.str());
  expect_valid_tahoe_trace(s);
}

#ifdef TAHOE_QUICKSTART_BIN
TEST(TraceRoundTrip, QuickstartBinaryProducesValidTrace) {
  const std::string out = ::testing::TempDir() + "quickstart_trace.json";
  const std::string cmd = std::string(TAHOE_QUICKSTART_BIN) +
                          " --trace-out=" + out + " > /dev/null 2>&1";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << "quickstart failed: " << cmd;

  std::ifstream is(out);
  ASSERT_TRUE(is) << "quickstart produced no trace file";
  std::stringstream buf;
  buf << is.rdbuf();
  const TraceSummary s = summarize_chrome_trace(buf.str());
  expect_valid_tahoe_trace(s);
  std::remove(out.c_str());
}
#endif

}  // namespace
}  // namespace tahoe
