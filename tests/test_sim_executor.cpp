// Simulated executor: placement-dependent timing, proactive copies,
// stall accounting, capacity invariants.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "memsim/machine.hpp"
#include "task/sim_executor.hpp"

namespace tahoe::task {
namespace {

memsim::Machine half_bw_machine(std::uint64_t dram = 256 * kMiB) {
  return memsim::machines::platform_a(
      memsim::devices::nvm_bw_fraction(memsim::devices::dram(dram), 0.5,
                                       16 * kGiB),
      dram);
}

DataAccess stream_access(hms::ObjectId obj, std::uint64_t elems,
                         AccessMode mode = AccessMode::Read) {
  DataAccess a;
  a.object = obj;
  a.chunk = 0;
  a.mode = mode;
  a.traffic.loads = elems;
  a.traffic.footprint = elems * 8;
  a.traffic.locality = 0.0;
  a.traffic.dep_frac = 0.0;
  return a;
}

TaskGraph one_group_graph(std::size_t tasks, hms::ObjectId obj,
                          std::uint64_t elems) {
  GraphBuilder gb;
  gb.begin_group("g");
  for (std::size_t i = 0; i < tasks; ++i) {
    Task t;
    t.accesses = {stream_access(obj, elems)};
    gb.add_task(std::move(t));
  }
  return gb.build();
}

TEST(SimExecutor, NvmSlowerThanDramForStreams) {
  const memsim::Machine m = half_bw_machine();
  const TaskGraph g = one_group_graph(8, 1, 4 << 20);
  SimExecutor ex;
  SimExecutor::Options opts;
  opts.check_capacity = false;

  hms::PlacementMap on_nvm;
  on_nvm.set(1, 0, memsim::kNvm);
  const double t_nvm = ex.run(g, m, on_nvm, {}, opts).makespan;

  hms::PlacementMap on_dram;
  on_dram.set(1, 0, memsim::kDram);
  const double t_dram = ex.run(g, m, on_dram, {}, opts).makespan;

  EXPECT_GT(t_nvm, 1.5 * t_dram);  // ~2x minus compute/latency floors
}

TEST(SimExecutor, WorkerLimitSerializesExcessTasks) {
  const memsim::Machine m = half_bw_machine();
  // Compute-only tasks: makespan scales with ceil(tasks/workers).
  GraphBuilder gb;
  gb.begin_group("g");
  for (int i = 0; i < 8; ++i) {
    Task t;
    t.compute_seconds = 1.0;
    t.accesses = {stream_access(1, 1)};
    gb.add_task(std::move(t));
  }
  const TaskGraph g = gb.build();
  SimExecutor ex;
  SimExecutor::Options o2;
  o2.workers = 2;
  o2.check_capacity = false;
  hms::PlacementMap p;
  EXPECT_NEAR(ex.run(g, m, p, {}, o2).makespan, 4.0, 1e-6);
  SimExecutor::Options o8;
  o8.workers = 8;
  o8.check_capacity = false;
  hms::PlacementMap p2;
  EXPECT_NEAR(ex.run(g, m, p2, {}, o8).makespan, 1.0, 1e-6);
}

TEST(SimExecutor, IntraGroupDependencesSerialize) {
  const memsim::Machine m = half_bw_machine();
  GraphBuilder gb;
  gb.begin_group("g");
  for (int i = 0; i < 4; ++i) {
    Task t;
    t.compute_seconds = 1.0;
    t.accesses = {stream_access(1, 1, AccessMode::ReadWrite)};  // chain
    gb.add_task(std::move(t));
  }
  const TaskGraph g = gb.build();
  SimExecutor ex;
  SimExecutor::Options opts;
  opts.workers = 8;
  opts.check_capacity = false;
  hms::PlacementMap p;
  EXPECT_NEAR(ex.run(g, m, p, {}, opts).makespan, 4.0, 1e-6);
}

TEST(SimExecutor, CopyUpdatesPlacementAndSpeedsLaterGroups) {
  const memsim::Machine m = half_bw_machine();
  const std::uint64_t elems = 8 << 20;  // 64 MiB object
  GraphBuilder gb;
  // Group 0 does unrelated compute; group 1 streams object 1.
  gb.begin_group("warmup");
  {
    Task t;
    t.compute_seconds = 1.0;  // plenty of time to hide the copy
    t.accesses = {stream_access(2, 1)};
    gb.add_task(std::move(t));
  }
  gb.begin_group("consume");
  for (int i = 0; i < 4; ++i) {
    Task t;
    t.accesses = {stream_access(1, elems / 4)};
    gb.add_task(std::move(t));
  }
  const TaskGraph g = gb.build();

  SimExecutor ex;
  SimExecutor::Options opts;
  opts.check_capacity = false;

  hms::PlacementMap stay;
  stay.set(1, 0, memsim::kNvm);
  const SimReport no_copy = ex.run(g, m, stay, {}, opts);

  hms::PlacementMap moved;
  moved.set(1, 0, memsim::kNvm);
  const std::vector<ScheduledCopy> schedule{
      ScheduledCopy{1, 0, elems * 8, memsim::kDram, 0, 1}};
  const SimReport with_copy = ex.run(g, m, moved, schedule, opts);

  EXPECT_EQ(with_copy.copies_done, 1u);
  EXPECT_EQ(with_copy.bytes_copied, elems * 8);
  EXPECT_EQ(moved.device_of(1, 0), memsim::kDram);
  EXPECT_LT(with_copy.makespan, no_copy.makespan);
  // The 64 MiB copy at 6 GB/s (~11 ms) hides under 1 s of compute.
  EXPECT_NEAR(with_copy.stall_seconds, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(with_copy.overlap_fraction(), 1.0);
}

TEST(SimExecutor, UnhiddenCopyStallsTheNeedingGroup) {
  const memsim::Machine m = half_bw_machine();
  const std::uint64_t elems = 8 << 20;
  GraphBuilder gb;
  gb.begin_group("consume");  // copy needed by the very first group
  {
    Task t;
    t.accesses = {stream_access(1, elems)};
    gb.add_task(std::move(t));
  }
  const TaskGraph g = gb.build();
  SimExecutor ex;
  SimExecutor::Options opts;
  opts.check_capacity = false;
  hms::PlacementMap p;
  p.set(1, 0, memsim::kNvm);
  const std::vector<ScheduledCopy> schedule{
      ScheduledCopy{1, 0, elems * 8, memsim::kDram, 0, 0}};
  const SimReport r = ex.run(g, m, p, schedule, opts);
  EXPECT_GT(r.stall_seconds, 0.0);
  EXPECT_LT(r.overlap_fraction(), 0.1);
}

TEST(SimExecutor, NoopCopyIsFree) {
  const memsim::Machine m = half_bw_machine();
  const TaskGraph g = one_group_graph(2, 1, 1 << 20);
  SimExecutor ex;
  SimExecutor::Options opts;
  opts.check_capacity = false;
  hms::PlacementMap p;
  p.set(1, 0, memsim::kDram);  // already there
  const std::vector<ScheduledCopy> schedule{
      ScheduledCopy{1, 0, 8 << 20, memsim::kDram, 0, 0}};
  const SimReport r = ex.run(g, m, p, schedule, opts);
  EXPECT_EQ(r.copies_done, 0u);
  EXPECT_EQ(r.bytes_copied, 0u);
  EXPECT_DOUBLE_EQ(r.stall_seconds, 0.0);
}

TEST(SimExecutor, CapacityInvariantEnforced) {
  const memsim::Machine m = half_bw_machine(64 * kMiB);
  const TaskGraph g = one_group_graph(1, 1, 1 << 20);
  SimExecutor ex;
  SimExecutor::Options opts;
  opts.unit_size = [](hms::ObjectId, std::size_t) -> std::uint64_t {
    return 48 * kMiB;
  };
  hms::PlacementMap p;
  p.set(1, 0, memsim::kNvm);
  p.set(2, 0, memsim::kDram);  // 48 MiB already resident
  // Filling object 1 (48 MiB) would exceed the 64 MiB DRAM.
  const std::vector<ScheduledCopy> schedule{
      ScheduledCopy{1, 0, 48 * kMiB, memsim::kDram, 0, 0}};
  EXPECT_THROW(ex.run(g, m, p, schedule, opts), ContractError);
}

TEST(SimExecutor, EvictionBeforeFillSatisfiesCapacity) {
  const memsim::Machine m = half_bw_machine(64 * kMiB);
  const TaskGraph g = one_group_graph(1, 1, 1 << 20);
  SimExecutor ex;
  SimExecutor::Options opts;
  opts.unit_size = [](hms::ObjectId, std::size_t) -> std::uint64_t {
    return 48 * kMiB;
  };
  hms::PlacementMap p;
  p.set(1, 0, memsim::kNvm);
  p.set(2, 0, memsim::kDram);
  const std::vector<ScheduledCopy> schedule{
      ScheduledCopy{2, 0, 48 * kMiB, memsim::kNvm, 0, 0},   // eviction first
      ScheduledCopy{1, 0, 48 * kMiB, memsim::kDram, 0, 0}};
  const SimReport r = ex.run(g, m, p, schedule, opts);
  EXPECT_EQ(r.copies_done, 2u);
  EXPECT_EQ(p.device_of(1, 0), memsim::kDram);
  EXPECT_EQ(p.device_of(2, 0), memsim::kNvm);
}

TEST(SimExecutor, GroupTimesSumToMakespan) {
  const memsim::Machine m = half_bw_machine();
  GraphBuilder gb;
  for (int gi = 0; gi < 4; ++gi) {
    gb.begin_group("g" + std::to_string(gi));
    for (int i = 0; i < 3; ++i) {
      Task t;
      t.compute_seconds = 0.01;
      t.accesses = {stream_access(static_cast<hms::ObjectId>(gi), 1 << 16)};
      gb.add_task(std::move(t));
    }
  }
  const TaskGraph g = gb.build();
  SimExecutor ex;
  SimExecutor::Options opts;
  opts.check_capacity = false;
  hms::PlacementMap p;
  const SimReport r = ex.run(g, m, p, {}, opts);
  double sum = 0.0;
  for (double s : r.group_seconds) sum += s;
  EXPECT_NEAR(sum, r.makespan, 1e-9);
  ASSERT_EQ(r.task_seconds.size(), g.num_tasks());
  for (double ts : r.task_seconds) EXPECT_GT(ts, 0.0);
}

TEST(SimExecutor, DeterministicAcrossRuns) {
  const memsim::Machine m = half_bw_machine();
  const TaskGraph g = one_group_graph(16, 1, 1 << 20);
  SimExecutor ex;
  SimExecutor::Options opts;
  opts.check_capacity = false;
  hms::PlacementMap p1;
  hms::PlacementMap p2;
  const double a = ex.run(g, m, p1, {}, opts).makespan;
  const double b = ex.run(g, m, p2, {}, opts).makespan;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(SimExecutor, RejectsMalformedSchedules) {
  const memsim::Machine m = half_bw_machine();
  const TaskGraph g = one_group_graph(1, 1, 1024);
  SimExecutor ex;
  hms::PlacementMap p;
  const std::vector<ScheduledCopy> bad{
      ScheduledCopy{1, 0, 64, memsim::kDram, 3, 1}};  // trigger after needed
  SimExecutor::Options opts;
  opts.check_capacity = false;
  EXPECT_THROW(ex.run(g, m, p, bad, opts), ContractError);
}

}  // namespace
}  // namespace tahoe::task
