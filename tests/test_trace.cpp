// Tracer subsystem tests: ring-buffer semantics (per-thread ordering,
// counted drops instead of blocking), JSON writer/parser round-trips, the
// Chrome trace_event exporter's schema, and the counters registry.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "trace/chrome_export.hpp"
#include "trace/counters.hpp"
#include "trace/json.hpp"
#include "trace/trace.hpp"

namespace tahoe::trace {
namespace {

TEST(EventRing, PushPopInOrder) {
  EventRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    TraceEvent ev;
    ev.ts = static_cast<double>(i);
    EXPECT_TRUE(ring.try_push(ev));
  }
  std::vector<TraceEvent> out;
  ring.drain(out);
  ASSERT_EQ(out.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(out[i].ts, static_cast<double>(i));
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(EventRing, FullRingDropsAndCounts) {
  EventRing ring(4);
  TraceEvent ev;
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(ev));
  // Never blocks: pushes beyond capacity return immediately as drops.
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(ring.try_push(ev));
  EXPECT_EQ(ring.dropped(), 10u);
  std::vector<TraceEvent> out;
  ring.drain(out);
  EXPECT_EQ(out.size(), 4u);
  // Space is reclaimed after a drain.
  EXPECT_TRUE(ring.try_push(ev));
}

TEST(EventRing, WrapsAroundAfterDrain) {
  EventRing ring(4);
  std::vector<TraceEvent> out;
  for (std::uint64_t round = 0; round < 10; ++round) {
    TraceEvent ev;
    ev.ts = static_cast<double>(round);
    EXPECT_TRUE(ring.try_push(ev));
    ring.drain(out);
  }
  ASSERT_EQ(out.size(), 10u);
  EXPECT_DOUBLE_EQ(out.back().ts, 9.0);
}

TEST(Tracer, DisabledEmitsNothing) {
  Tracer tracer(16);
  tracer.complete(0, "span", 0.0, 1.0);
  tracer.instant(0, "point", 0.5);
  EXPECT_TRUE(tracer.drain().empty());
  EXPECT_EQ(tracer.num_rings(), 0u);  // not even a ring was registered
}

TEST(Tracer, EventFieldsSurvive) {
  Tracer tracer(16);
  tracer.set_enabled(true);
  tracer.complete(3, "migrate", 1.5, 0.25, "bytes", 4096, "dst_tier", 0);
  tracer.counter(7, "depth", 2.0, 42);
  const std::vector<TraceEvent> events = tracer.drain();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::Complete);
  EXPECT_EQ(events[0].track, 3u);
  EXPECT_STREQ(events[0].name, "migrate");
  EXPECT_DOUBLE_EQ(events[0].ts, 1.5);
  EXPECT_DOUBLE_EQ(events[0].dur, 0.25);
  ASSERT_EQ(events[0].num_args, 2);
  EXPECT_STREQ(events[0].arg_key[0], "bytes");
  EXPECT_EQ(events[0].arg_val[0], 4096u);
  EXPECT_EQ(events[1].kind, EventKind::Counter);
  EXPECT_EQ(events[1].arg_val[0], 42u);
}

TEST(Tracer, LongNamesTruncateSafely) {
  Tracer tracer(16);
  tracer.set_enabled(true);
  const std::string longname(200, 'x');
  tracer.instant(0, longname.c_str(), 0.0);
  const std::vector<TraceEvent> events = tracer.drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name).size(), TraceEvent::kNameCap - 1);
}

TEST(Tracer, ConcurrentEmissionPreservesPerThreadOrder) {
  Tracer tracer(1 << 12);
  tracer.set_enabled(true);
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 1000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        TraceEvent ev;
        ev.track = static_cast<TrackId>(t);
        ev.ts = static_cast<double>(i);
        ev.add_arg("seq", i);
        tracer.emit(ev);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const std::vector<TraceEvent> events = tracer.drain();
  ASSERT_EQ(events.size(), kThreads * kPerThread);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.num_rings(), static_cast<std::size_t>(kThreads));

  // Rings are drained thread-by-thread, so each thread's events must
  // appear as one strictly ascending run.
  std::vector<std::uint64_t> next(kThreads, 0);
  for (const TraceEvent& ev : events) {
    const TrackId t = ev.track;
    ASSERT_LT(t, static_cast<TrackId>(kThreads));
    EXPECT_EQ(ev.arg_val[0], next[t]) << "out-of-order event on thread " << t;
    ++next[t];
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(next[t], kPerThread);
}

TEST(Tracer, ConcurrentOverflowDropsInsteadOfBlocking) {
  Tracer tracer(64);  // tiny rings: every thread must overflow
  tracer.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        TraceEvent ev;
        ev.ts = static_cast<double>(i);
        tracer.emit(ev);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::vector<TraceEvent> events = tracer.drain();
  // Nothing blocked: exactly (emitted - dropped) events survived.
  EXPECT_EQ(events.size() + tracer.dropped(), kThreads * kPerThread);
  EXPECT_GT(tracer.dropped(), 0u);
  EXPECT_LE(events.size(), static_cast<std::size_t>(kThreads) * 64);
}

TEST(Json, WriterEscapesAndParserRoundTrips) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("plain", "hello");
  w.kv("quoted", "she said \"hi\"\n\ttab\\slash");
  w.kv("num", 2.5);
  w.kv("neg", std::int64_t{-7});
  w.kv("big", std::uint64_t{1} << 60);
  w.kv("flag", true);
  w.key("null_value").null();
  w.key("list").begin_array().value(1.0).value(2.0).end_array();
  w.key("nested").begin_object().kv("k", "v").end_object();
  w.end_object();

  const JsonValue v = parse_json(os.str());
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("plain").string, "hello");
  EXPECT_EQ(v.at("quoted").string, "she said \"hi\"\n\ttab\\slash");
  EXPECT_DOUBLE_EQ(v.at("num").number, 2.5);
  EXPECT_DOUBLE_EQ(v.at("neg").number, -7.0);
  EXPECT_DOUBLE_EQ(v.at("big").number,
                   static_cast<double>(std::uint64_t{1} << 60));
  EXPECT_TRUE(v.at("flag").boolean);
  EXPECT_EQ(v.at("null_value").type, JsonValue::Type::Null);
  ASSERT_EQ(v.at("list").array.size(), 2u);
  EXPECT_EQ(v.at("nested").at("k").string, "v");
}

TEST(Json, ParserRejectsGarbage) {
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("[1,]2"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW(parse_json("nope"), std::runtime_error);
}

TEST(ChromeExport, EmitsValidTraceEventJson) {
  Tracer tracer(256);
  tracer.set_enabled(true);
  tracer.set_track_name(0, "worker 0");
  tracer.set_track_name(kMigrationTrack, "migration engine");
  tracer.complete(0, "task_a", 0.001, 0.002, "task", 7);
  tracer.complete(kMigrationTrack, "migrate DRAM->NVM", 0.0015, 0.001,
                  "bytes", 1 << 20, "dst_tier", 1);
  tracer.instant(kPlannerTrack, "decide global", 0.004, "copies", 3);
  tracer.counter(kMigrationTrack, "queue_depth", 0.002, 2);

  std::ostringstream os;
  write_chrome_trace(os, tracer.drain(), tracer.track_names());
  const JsonValue doc = parse_json(os.str());

  ASSERT_TRUE(doc.is_object());
  ASSERT_TRUE(doc.has("traceEvents"));
  const std::vector<JsonValue>& events = doc.at("traceEvents").array;

  int spans = 0, instants = 0, counters = 0, metas = 0;
  bool saw_worker_meta = false, saw_migration_args = false;
  for (const JsonValue& ev : events) {
    const std::string ph = ev.at("ph").string;
    if (ph == "M") {
      ++metas;
      if (ev.at("name").string == "thread_name" &&
          ev.at("args").at("name").string == "worker 0") {
        saw_worker_meta = true;
      }
      continue;
    }
    // Every real event carries pid/tid/name/ts.
    EXPECT_TRUE(ev.has("pid"));
    EXPECT_TRUE(ev.has("tid"));
    EXPECT_TRUE(ev.has("name"));
    EXPECT_TRUE(ev.has("ts"));
    if (ph == "X") {
      ++spans;
      EXPECT_TRUE(ev.has("dur"));
      if (ev.at("name").string.rfind("migrate", 0) == 0) {
        const JsonValue& args = ev.at("args");
        EXPECT_TRUE(args.has("bytes"));
        EXPECT_TRUE(args.has("dst_tier"));
        saw_migration_args = true;
      }
    } else if (ph == "i") {
      ++instants;
    } else if (ph == "C") {
      ++counters;
      EXPECT_TRUE(ev.at("args").has("value"));
    }
  }
  EXPECT_EQ(spans, 2);
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(counters, 1);
  EXPECT_GE(metas, 2);
  EXPECT_TRUE(saw_worker_meta);
  EXPECT_TRUE(saw_migration_args);

  // Timestamps are microseconds, sorted ascending.
  double last = -1.0;
  for (const JsonValue& ev : events) {
    if (ev.at("ph").string == "M") continue;
    EXPECT_GE(ev.at("ts").number, last);
    last = ev.at("ts").number;
  }
  EXPECT_DOUBLE_EQ(last, 4000.0);  // 0.004 s -> 4000 us
}

TEST(Counters, RegistryAccumulatesAndSnapshots) {
  CounterRegistry reg;
  Counter& a = reg.get("alpha");
  Counter& b = reg.get("beta");
  a.add(5);
  a.increment();
  b.set(100);
  EXPECT_EQ(&reg.get("alpha"), &a);  // stable handle
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "alpha");
  EXPECT_EQ(snap[0].second, 6u);
  EXPECT_EQ(snap[1].second, 100u);
  reg.reset();
  EXPECT_EQ(reg.get("alpha").value(), 0u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Counters, ConcurrentAddsDoNotLose) {
  CounterRegistry reg;
  Counter& c = reg.get("hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace tahoe::trace
