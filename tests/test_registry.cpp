// Object registry: allocation, typed handles, migration with pointer
// redirection and alias rewriting.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/fault.hpp"
#include "common/units.hpp"
#include "hms/registry.hpp"

namespace tahoe::hms {
namespace {

std::vector<std::uint64_t> caps() { return {1 * kMiB, 64 * kMiB}; }

TEST(Registry, CreateAndTypedHandle) {
  ObjectRegistry reg(caps());
  Handle<double> h = make_array<double>(reg, "v", 1000, memsim::kNvm);
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(h.size(), 1000u);
  for (std::size_t i = 0; i < h.size(); ++i) h[i] = static_cast<double>(i);
  EXPECT_DOUBLE_EQ(h[999], 999.0);
  EXPECT_EQ(reg.get(h.id()).device(), memsim::kNvm);
  EXPECT_EQ(reg.num_objects(), 1u);
}

TEST(Registry, MigrationPreservesPayloadAndRedirects) {
  ObjectRegistry reg(caps());
  Handle<int> h = make_array<int>(reg, "v", 4096, memsim::kNvm);
  std::iota(h.data(), h.data() + h.size(), 17);
  const int* before = h.data();
  ASSERT_TRUE(reg.migrate(h.id(), memsim::kDram));
  const int* after = h.data();
  EXPECT_NE(before, after);
  EXPECT_EQ(reg.get(h.id()).device(), memsim::kDram);
  for (std::size_t i = 0; i < h.size(); ++i) {
    ASSERT_EQ(h[i], static_cast<int>(i) + 17);
  }
  EXPECT_EQ(reg.stats().migrations, 1u);
  EXPECT_EQ(reg.stats().bytes_moved, 4096 * sizeof(int));
  EXPECT_EQ(reg.stats().to_dram, 1u);
}

TEST(Registry, MigrationToSameTierIsNoop) {
  ObjectRegistry reg(caps());
  const ObjectId id = reg.create("v", 4096, memsim::kNvm);
  EXPECT_TRUE(reg.migrate(id, memsim::kNvm));
  EXPECT_EQ(reg.stats().migrations, 0u);
}

TEST(Registry, MigrationFailsWhenTierFull) {
  ObjectRegistry reg(caps());
  const ObjectId big = reg.create("big", 900 * kKiB, memsim::kNvm);
  const ObjectId blocker = reg.create("blocker", 512 * kKiB, memsim::kDram);
  (void)blocker;
  EXPECT_FALSE(reg.migrate(big, memsim::kDram));
  EXPECT_EQ(reg.get(big).device(), memsim::kNvm);  // untouched
  EXPECT_EQ(reg.stats().failed_no_space, 1u);
}

TEST(Registry, AliasSlotsRewrittenOnMigration) {
  ObjectRegistry reg(caps());
  const ObjectId id = reg.create("v", 4096, memsim::kNvm);
  void* alias1 = nullptr;
  void* alias2 = nullptr;
  reg.register_alias(id, &alias1);
  reg.register_alias(id, &alias2);
  EXPECT_EQ(alias1, reg.chunk_ptr(id));
  ASSERT_TRUE(reg.migrate(id, memsim::kDram));
  EXPECT_EQ(alias1, reg.chunk_ptr(id));
  EXPECT_EQ(alias2, reg.chunk_ptr(id));
}

TEST(Registry, ChunkedObjectsMigratePerChunk) {
  ObjectRegistry reg(caps());
  const ObjectId id = reg.create("c", 256 * kKiB, memsim::kNvm, 4);
  EXPECT_EQ(reg.get(id).num_chunks(), 4u);
  EXPECT_TRUE(reg.get(id).chunked());
  ASSERT_TRUE(reg.migrate_chunk(id, 2, memsim::kDram));
  EXPECT_EQ(reg.get(id).chunk(2).device, memsim::kDram);
  EXPECT_EQ(reg.get(id).chunk(1).device, memsim::kNvm);
  EXPECT_EQ(reg.get(id).bytes_on(memsim::kDram), 64 * kKiB);
  EXPECT_EQ(reg.get(id).bytes_on(memsim::kNvm), 192 * kKiB);
  // device() is only defined for unchunked objects.
  EXPECT_THROW(reg.get(id).device(), ContractError);
  // Aliases are unsupported for chunked objects.
  void* slot = nullptr;
  EXPECT_THROW(reg.register_alias(id, &slot), ContractError);
}

TEST(Registry, ChunkSizesCoverObjectExactly) {
  ObjectRegistry reg(caps());
  const ObjectId id = reg.create("c", 1000 * 64, memsim::kNvm, 7);
  std::uint64_t total = 0;
  for (const Chunk& c : reg.get(id).chunks()) total += c.bytes;
  EXPECT_EQ(total, 1000u * 64u);
}

TEST(Registry, DestroyReleasesSpace) {
  ObjectRegistry reg(caps());
  const ObjectId id = reg.create("v", 512 * kKiB, memsim::kDram);
  EXPECT_EQ(reg.resident_bytes(memsim::kDram), 512 * kKiB);
  reg.destroy(id);
  EXPECT_EQ(reg.resident_bytes(memsim::kDram), 0u);
  EXPECT_EQ(reg.num_objects(), 0u);
  EXPECT_THROW(reg.get(id), ContractError);
}

TEST(Registry, VirtualBackingSkipsPayload) {
  ObjectRegistry reg({1 * kGiB, 16 * kGiB}, Backing::Virtual);
  const ObjectId id = reg.create("huge", 8 * kGiB, memsim::kNvm, 8);
  EXPECT_EQ(reg.get(id).bytes, 8 * kGiB);
  ASSERT_TRUE(reg.migrate_chunk(id, 0, memsim::kDram));  // no real memcpy
  EXPECT_EQ(reg.get(id).chunk(0).device, memsim::kDram);
  EXPECT_EQ(reg.stats().bytes_moved, 1 * kGiB);
}

TEST(Registry, LiveObjectsEnumeration) {
  ObjectRegistry reg(caps());
  const ObjectId a = reg.create("a", 64, memsim::kNvm);
  const ObjectId b = reg.create("b", 64, memsim::kNvm);
  const ObjectId c = reg.create("c", 64, memsim::kNvm);
  reg.destroy(b);
  const auto live = reg.live_objects();
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0], a);
  EXPECT_EQ(live[1], c);
}

TEST(Registry, ContractViolations) {
  EXPECT_THROW(ObjectRegistry({1 * kMiB}), ContractError);  // one tier
  ObjectRegistry reg(caps());
  EXPECT_THROW(reg.create("v", 0, memsim::kNvm), ContractError);
  EXPECT_THROW(reg.create("v", 64, 9), ContractError);
  // Larger than every tier: even fallback cannot place it.
  EXPECT_THROW(reg.create("v", 128 * kMiB, memsim::kDram), ContractError);
}

TEST(Registry, CreateFallsBackToNvmWhenDramIsFull) {
  ObjectRegistry reg(caps());
  // 2 MiB cannot fit the 1 MiB DRAM tier; graceful degradation lands it
  // on NVM instead of aborting the application.
  const ObjectId id = reg.create("v", 2 * kMiB, memsim::kDram);
  EXPECT_EQ(reg.get(id).device(), memsim::kNvm);
  EXPECT_EQ(reg.stats().alloc_fallbacks, 1u);
}

// ---- N-tier hierarchies (three tiers: 1 MiB / 2 MiB / 64 MiB). ----

std::vector<std::uint64_t> caps3() { return {1 * kMiB, 2 * kMiB, 64 * kMiB}; }

TEST(RegistryNTier, AllocHopsTwoTiersWhenFastOnesAreTooSmall) {
  ObjectRegistry reg(caps3());
  EXPECT_EQ(reg.capacity_tier(), 2u);
  // 3 MiB fits neither the 1 MiB tier 0 nor the 2 MiB tier 1: the chunk
  // must hop two tiers down to the capacity tier in one create call.
  const ObjectId id = reg.create("big", 3 * kMiB, memsim::kDram);
  EXPECT_EQ(reg.get(id).device(), 2u);
  EXPECT_EQ(reg.stats().alloc_fallbacks, 1u);
}

TEST(RegistryNTier, ExhaustedFastTiersCascadeInOrder) {
  ObjectRegistry reg(caps3());
  const ObjectId a = reg.create("a", 900 * kKiB, 0);    // lands on tier 0
  const ObjectId b = reg.create("b", 1800 * kKiB, 0);   // tier 0 full -> 1
  const ObjectId c = reg.create("c", 1800 * kKiB, 0);   // 0 and 1 full -> 2
  EXPECT_EQ(reg.get(a).device(), 0u);
  EXPECT_EQ(reg.get(b).device(), 1u);
  EXPECT_EQ(reg.get(c).device(), 2u);
  EXPECT_EQ(reg.stats().alloc_fallbacks, 2u);
}

TEST(RegistryNTier, MidTierRequestDegradesDownOnly) {
  ObjectRegistry reg(caps3());
  // A tier-1 request that does not fit must degrade to tier 2; the default
  // chain also offers tier 0 but 3 MiB cannot fit there either.
  const ObjectId id = reg.create("mid", 3 * kMiB, 1);
  EXPECT_EQ(reg.get(id).device(), 2u);
  EXPECT_EQ(reg.stats().alloc_fallbacks, 1u);
}

TEST(RegistryNTier, FallbackOrderRestrictsTheChain) {
  ObjectRegistry reg(caps3());
  reg.set_fallback_order({2});  // never consider the middle tier
  const ObjectId id = reg.create("x", 1800 * kKiB, 0);  // too big for tier 0
  EXPECT_EQ(reg.get(id).device(), 2u);  // tier 1 would fit but is skipped
  reg.set_fallback_order({});           // restore default device order
  const ObjectId y = reg.create("y", 1800 * kKiB, 0);
  EXPECT_EQ(reg.get(y).device(), 1u);
}

TEST(RegistryNTier, FallbackOrderOutOfRangeThrows) {
  ObjectRegistry reg(caps3());
  EXPECT_THROW(reg.set_fallback_order({3}), ContractError);
}

TEST(RegistryNTier, ToTierStatsTrackEveryDestination) {
  ObjectRegistry reg(caps3());
  const ObjectId id = reg.create("v", 512 * kKiB, 2);
  ASSERT_TRUE(reg.migrate(id, 1));
  ASSERT_TRUE(reg.migrate(id, 0));
  ASSERT_TRUE(reg.migrate(id, 2));
  const MigrationStats& s = reg.stats();
  ASSERT_EQ(s.to_tier.size(), 3u);
  EXPECT_EQ(s.to_tier[0], 1u);
  EXPECT_EQ(s.to_tier[1], 1u);
  EXPECT_EQ(s.to_tier[2], 1u);
  // Legacy counters stay coherent with the per-tier view on the two
  // fastest tiers.
  EXPECT_EQ(s.to_dram, s.to_tier[0]);
  EXPECT_EQ(s.to_nvm, s.to_tier[1]);
  EXPECT_EQ(s.migrations, 3u);
}

TEST(RegistryNTier, NoSpaceIsCountedEveryTimeButWarnedOnce) {
  ObjectRegistry reg(caps3());
  const ObjectId blocker = reg.create("blocker", 900 * kKiB, 0);
  (void)blocker;
  const ObjectId big = reg.create("big", 1800 * kKiB, 2);
  // Tier 0 cannot take it; every refusal counts, the log warns only once
  // per object (not asserted here — it must merely not crash or grow).
  EXPECT_EQ(reg.try_migrate_chunk(big, 0, 0), MigrateResult::kNoSpace);
  EXPECT_EQ(reg.try_migrate_chunk(big, 0, 0), MigrateResult::kNoSpace);
  EXPECT_EQ(reg.try_migrate_chunk(big, 0, 0), MigrateResult::kNoSpace);
  EXPECT_EQ(reg.stats().failed_no_space, 3u);
  EXPECT_EQ(reg.get(big).device(), 2u);
}

TEST(RegistryNTier, InjectedAllocFaultsExhaustEveryTierThenThrow) {
  fault::FaultConfig cfg;
  cfg.alloc_failure = 1.0;  // every attempt on every tier fails
  fault::global().configure(cfg);
  ObjectRegistry reg(caps3());
  EXPECT_THROW(reg.create("doomed", 64 * kKiB, 0), ContractError);
  fault::global().disarm();
  // With the injector disarmed the same allocation succeeds again.
  const ObjectId id = reg.create("fine", 64 * kKiB, 0);
  EXPECT_EQ(reg.get(id).device(), 0u);
}

}  // namespace
}  // namespace tahoe::hms
