// Object registry: allocation, typed handles, migration with pointer
// redirection and alias rewriting.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "common/units.hpp"
#include "hms/registry.hpp"

namespace tahoe::hms {
namespace {

std::vector<std::uint64_t> caps() { return {1 * kMiB, 64 * kMiB}; }

TEST(Registry, CreateAndTypedHandle) {
  ObjectRegistry reg(caps());
  Handle<double> h = make_array<double>(reg, "v", 1000, memsim::kNvm);
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(h.size(), 1000u);
  for (std::size_t i = 0; i < h.size(); ++i) h[i] = static_cast<double>(i);
  EXPECT_DOUBLE_EQ(h[999], 999.0);
  EXPECT_EQ(reg.get(h.id()).device(), memsim::kNvm);
  EXPECT_EQ(reg.num_objects(), 1u);
}

TEST(Registry, MigrationPreservesPayloadAndRedirects) {
  ObjectRegistry reg(caps());
  Handle<int> h = make_array<int>(reg, "v", 4096, memsim::kNvm);
  std::iota(h.data(), h.data() + h.size(), 17);
  const int* before = h.data();
  ASSERT_TRUE(reg.migrate(h.id(), memsim::kDram));
  const int* after = h.data();
  EXPECT_NE(before, after);
  EXPECT_EQ(reg.get(h.id()).device(), memsim::kDram);
  for (std::size_t i = 0; i < h.size(); ++i) {
    ASSERT_EQ(h[i], static_cast<int>(i) + 17);
  }
  EXPECT_EQ(reg.stats().migrations, 1u);
  EXPECT_EQ(reg.stats().bytes_moved, 4096 * sizeof(int));
  EXPECT_EQ(reg.stats().to_dram, 1u);
}

TEST(Registry, MigrationToSameTierIsNoop) {
  ObjectRegistry reg(caps());
  const ObjectId id = reg.create("v", 4096, memsim::kNvm);
  EXPECT_TRUE(reg.migrate(id, memsim::kNvm));
  EXPECT_EQ(reg.stats().migrations, 0u);
}

TEST(Registry, MigrationFailsWhenTierFull) {
  ObjectRegistry reg(caps());
  const ObjectId big = reg.create("big", 900 * kKiB, memsim::kNvm);
  const ObjectId blocker = reg.create("blocker", 512 * kKiB, memsim::kDram);
  (void)blocker;
  EXPECT_FALSE(reg.migrate(big, memsim::kDram));
  EXPECT_EQ(reg.get(big).device(), memsim::kNvm);  // untouched
  EXPECT_EQ(reg.stats().failed_no_space, 1u);
}

TEST(Registry, AliasSlotsRewrittenOnMigration) {
  ObjectRegistry reg(caps());
  const ObjectId id = reg.create("v", 4096, memsim::kNvm);
  void* alias1 = nullptr;
  void* alias2 = nullptr;
  reg.register_alias(id, &alias1);
  reg.register_alias(id, &alias2);
  EXPECT_EQ(alias1, reg.chunk_ptr(id));
  ASSERT_TRUE(reg.migrate(id, memsim::kDram));
  EXPECT_EQ(alias1, reg.chunk_ptr(id));
  EXPECT_EQ(alias2, reg.chunk_ptr(id));
}

TEST(Registry, ChunkedObjectsMigratePerChunk) {
  ObjectRegistry reg(caps());
  const ObjectId id = reg.create("c", 256 * kKiB, memsim::kNvm, 4);
  EXPECT_EQ(reg.get(id).num_chunks(), 4u);
  EXPECT_TRUE(reg.get(id).chunked());
  ASSERT_TRUE(reg.migrate_chunk(id, 2, memsim::kDram));
  EXPECT_EQ(reg.get(id).chunks[2].device, memsim::kDram);
  EXPECT_EQ(reg.get(id).chunks[1].device, memsim::kNvm);
  EXPECT_EQ(reg.get(id).bytes_on(memsim::kDram), 64 * kKiB);
  EXPECT_EQ(reg.get(id).bytes_on(memsim::kNvm), 192 * kKiB);
  // device() is only defined for unchunked objects.
  EXPECT_THROW(reg.get(id).device(), ContractError);
  // Aliases are unsupported for chunked objects.
  void* slot = nullptr;
  EXPECT_THROW(reg.register_alias(id, &slot), ContractError);
}

TEST(Registry, ChunkSizesCoverObjectExactly) {
  ObjectRegistry reg(caps());
  const ObjectId id = reg.create("c", 1000 * 64, memsim::kNvm, 7);
  std::uint64_t total = 0;
  for (const Chunk& c : reg.get(id).chunks) total += c.bytes;
  EXPECT_EQ(total, 1000u * 64u);
}

TEST(Registry, DestroyReleasesSpace) {
  ObjectRegistry reg(caps());
  const ObjectId id = reg.create("v", 512 * kKiB, memsim::kDram);
  EXPECT_EQ(reg.resident_bytes(memsim::kDram), 512 * kKiB);
  reg.destroy(id);
  EXPECT_EQ(reg.resident_bytes(memsim::kDram), 0u);
  EXPECT_EQ(reg.num_objects(), 0u);
  EXPECT_THROW(reg.get(id), ContractError);
}

TEST(Registry, VirtualBackingSkipsPayload) {
  ObjectRegistry reg({1 * kGiB, 16 * kGiB}, Backing::Virtual);
  const ObjectId id = reg.create("huge", 8 * kGiB, memsim::kNvm, 8);
  EXPECT_EQ(reg.get(id).bytes, 8 * kGiB);
  ASSERT_TRUE(reg.migrate_chunk(id, 0, memsim::kDram));  // no real memcpy
  EXPECT_EQ(reg.get(id).chunks[0].device, memsim::kDram);
  EXPECT_EQ(reg.stats().bytes_moved, 1 * kGiB);
}

TEST(Registry, LiveObjectsEnumeration) {
  ObjectRegistry reg(caps());
  const ObjectId a = reg.create("a", 64, memsim::kNvm);
  const ObjectId b = reg.create("b", 64, memsim::kNvm);
  const ObjectId c = reg.create("c", 64, memsim::kNvm);
  reg.destroy(b);
  const auto live = reg.live_objects();
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0], a);
  EXPECT_EQ(live[1], c);
}

TEST(Registry, ContractViolations) {
  EXPECT_THROW(ObjectRegistry({1 * kMiB}), ContractError);  // one tier
  ObjectRegistry reg(caps());
  EXPECT_THROW(reg.create("v", 0, memsim::kNvm), ContractError);
  EXPECT_THROW(reg.create("v", 64, 9), ContractError);
  // Larger than every tier: even fallback cannot place it.
  EXPECT_THROW(reg.create("v", 128 * kMiB, memsim::kDram), ContractError);
}

TEST(Registry, CreateFallsBackToNvmWhenDramIsFull) {
  ObjectRegistry reg(caps());
  // 2 MiB cannot fit the 1 MiB DRAM tier; graceful degradation lands it
  // on NVM instead of aborting the application.
  const ObjectId id = reg.create("v", 2 * kMiB, memsim::kDram);
  EXPECT_EQ(reg.get(id).device(), memsim::kNvm);
  EXPECT_EQ(reg.stats().alloc_fallbacks, 1u);
}

}  // namespace
}  // namespace tahoe::hms
