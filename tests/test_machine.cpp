// Machine model: traffic -> flow conversion.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "memsim/machine.hpp"

namespace tahoe::memsim {
namespace {

Machine test_machine() {
  return machines::platform_a(
      devices::nvm_bw_fraction(devices::dram(256 * kMiB), 0.5, 16 * kGiB),
      256 * kMiB);
}

ObjectTraffic stream(std::uint64_t elems) {
  ObjectTraffic t;
  t.loads = elems;
  t.stores = elems;
  t.footprint = elems * 8;
  t.locality = 0.0;
  t.dep_frac = 0.0;
  return t;
}

TEST(Machine, TaskFlowChargesTheRightDevice) {
  const Machine m = test_machine();
  const FlowSpec on_dram = m.task_flow(0.0, {{stream(1 << 20), kDram}}, 0);
  const FlowSpec on_nvm = m.task_flow(0.0, {{stream(1 << 20), kNvm}}, 0);
  EXPECT_GT(on_dram.device_seconds[kDram], 0.0);
  EXPECT_DOUBLE_EQ(on_dram.device_seconds[kNvm], 0.0);
  EXPECT_GT(on_nvm.device_seconds[kNvm], 0.0);
  EXPECT_DOUBLE_EQ(on_nvm.device_seconds[kDram], 0.0);
  // Half-bandwidth NVM needs twice the channel time.
  EXPECT_NEAR(on_nvm.device_seconds[kNvm],
              2.0 * on_dram.device_seconds[kDram], 1e-12);
}

TEST(Machine, ComputeAddsToSerial) {
  const Machine m = test_machine();
  const FlowSpec f = m.task_flow(0.25, {{stream(1024), kDram}}, 0);
  EXPECT_GE(f.serial_seconds, 0.25);
}

TEST(Machine, UncontendedSecondsIsRooflineMax) {
  const Machine m = test_machine();
  // Bandwidth-bound stream: duration == channel time.
  const double t_bw = m.uncontended_task_seconds(
      0.0, {{stream(64 << 20), kNvm}});
  const FlowSpec f = m.task_flow(0.0, {{stream(64 << 20), kNvm}}, 0);
  EXPECT_NEAR(t_bw, f.device_seconds[kNvm], t_bw * 1e-9);

  // Compute-bound task: duration == compute.
  const double t_cpu = m.uncontended_task_seconds(10.0, {{stream(64), kNvm}});
  EXPECT_NEAR(t_cpu, 10.0, 1e-4);  // tiny latency-chain term rides along
}

TEST(Machine, LatencyBoundChainIsBandwidthInsensitive) {
  const Machine half_bw = test_machine();
  ObjectTraffic chase;
  chase.loads = 100'000;
  chase.footprint = 64 * chase.loads;
  chase.dep_frac = 1.0;
  chase.locality = 0.0;
  const double on_nvm =
      half_bw.uncontended_task_seconds(0.0, {{chase, kNvm}});
  const double on_dram =
      half_bw.uncontended_task_seconds(0.0, {{chase, kDram}});
  // Same latency on both tiers (bw-scaled NVM): no benefit from DRAM.
  EXPECT_NEAR(on_nvm, on_dram, on_dram * 0.01);

  const Machine lat4 = machines::platform_a(
      devices::nvm_lat_multiple(devices::dram(256 * kMiB), 4.0, 16 * kGiB),
      256 * kMiB);
  const double on_slow = lat4.uncontended_task_seconds(0.0, {{chase, kNvm}});
  EXPECT_NEAR(on_slow, 4.0 * on_dram, on_slow * 0.01);
}

TEST(Machine, CopyFlowTouchesBothDevices) {
  const Machine m = test_machine();
  const FlowSpec c = m.copy_flow(64 * kMiB, kNvm, kDram, 1);
  EXPECT_GT(c.device_seconds[kNvm], 0.0);   // read source
  EXPECT_GT(c.device_seconds[kDram], 0.0);  // write destination
  EXPECT_GT(c.serial_seconds, 0.0);         // copy-engine ceiling
  EXPECT_THROW(m.copy_flow(64, kDram, kDram, 1), ContractError);
}

TEST(Machine, PlatformPresetsAreSane) {
  const Machine a = test_machine();
  EXPECT_EQ(a.devices.size(), 2u);
  EXPECT_GT(a.workers, 0u);
  EXPECT_GT(a.llc.llc_bytes, 0u);
  const Machine o = machines::optane_platform(256 * kMiB);
  EXPECT_EQ(o.tier(kNvm).name, "Optane-PM");
  EXPECT_GT(o.tier(kNvm).read_bw, o.tier(kNvm).write_bw);  // asymmetric
}

}  // namespace
}  // namespace tahoe::memsim
