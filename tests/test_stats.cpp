#include <gtest/gtest.h>

#include <cmath>

#include "common/assert.hpp"
#include "common/stats.hpp"

namespace tahoe {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  const RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(static_cast<double>(i));
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.99), 7.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 0.5), ContractError);
  EXPECT_THROW(percentile({1.0}, 1.5), ContractError);
}

TEST(Means, ArithmeticAndGeometric) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_NEAR(geomean_of({1.0, 8.0}), std::sqrt(8.0), 1e-12);
  EXPECT_THROW(geomean_of({1.0, -1.0}), ContractError);
}

TEST(RelDiff, SymmetricAndScaled) {
  EXPECT_NEAR(rel_diff(100.0, 110.0), 10.0 / 110.0, 1e-12);
  EXPECT_DOUBLE_EQ(rel_diff(5.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(rel_diff(0.0, 0.0), 0.0);
}

}  // namespace
}  // namespace tahoe
