#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "common/flags.hpp"

namespace tahoe {
namespace {

Flags make_flags() {
  Flags f;
  f.define_int("count", 4, "how many");
  f.define_double("ratio", 0.5, "a ratio");
  f.define_bool("verbose", false, "chatty");
  f.define_string("name", "cg", "workload");
  return f;
}

std::vector<std::string> parse(Flags& f, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return f.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, DefaultsWhenUnset) {
  Flags f = make_flags();
  parse(f, {});
  EXPECT_EQ(f.get_int("count"), 4);
  EXPECT_DOUBLE_EQ(f.get_double("ratio"), 0.5);
  EXPECT_FALSE(f.get_bool("verbose"));
  EXPECT_EQ(f.get_string("name"), "cg");
}

TEST(Flags, EqualsSyntax) {
  Flags f = make_flags();
  parse(f, {"--count=9", "--ratio=1.25", "--name=ft", "--verbose=true"});
  EXPECT_EQ(f.get_int("count"), 9);
  EXPECT_DOUBLE_EQ(f.get_double("ratio"), 1.25);
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_EQ(f.get_string("name"), "ft");
}

TEST(Flags, SpaceSyntaxAndBareBool) {
  Flags f = make_flags();
  parse(f, {"--count", "7", "--verbose"});
  EXPECT_EQ(f.get_int("count"), 7);
  EXPECT_TRUE(f.get_bool("verbose"));
}

TEST(Flags, PositionalArgsReturned) {
  Flags f = make_flags();
  const auto pos = parse(f, {"alpha", "--count=2", "beta"});
  ASSERT_EQ(pos.size(), 2u);
  EXPECT_EQ(pos[0], "alpha");
  EXPECT_EQ(pos[1], "beta");
}

TEST(Flags, UnknownFlagFailsLoudly) {
  Flags f = make_flags();
  EXPECT_THROW(parse(f, {"--notaflag=1"}), ContractError);
}

TEST(Flags, BadValuesRejected) {
  Flags f = make_flags();
  EXPECT_THROW(parse(f, {"--count=notanint"}), ContractError);
  Flags g = make_flags();
  EXPECT_THROW(parse(g, {"--ratio=NaNope"}), ContractError);
  Flags h = make_flags();
  EXPECT_THROW(parse(h, {"--verbose=maybe"}), ContractError);
}

TEST(Flags, MissingValueRejected) {
  Flags f = make_flags();
  EXPECT_THROW(parse(f, {"--count"}), ContractError);
}

TEST(Flags, TypeMismatchOnGet) {
  Flags f = make_flags();
  parse(f, {});
  EXPECT_THROW(f.get_int("ratio"), ContractError);
  EXPECT_THROW(f.get_double("nope"), ContractError);
}

TEST(Flags, UsageListsEverything) {
  Flags f = make_flags();
  const std::string u = f.usage("bench");
  EXPECT_NE(u.find("--count"), std::string::npos);
  EXPECT_NE(u.find("--ratio"), std::string::npos);
  EXPECT_NE(u.find("bench"), std::string::npos);
}

}  // namespace
}  // namespace tahoe
