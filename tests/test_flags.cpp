#include <gtest/gtest.h>

#include "common/assert.hpp"
#include "common/flags.hpp"

namespace tahoe {
namespace {

Flags make_flags() {
  Flags f;
  f.define_int("count", 4, "how many");
  f.define_double("ratio", 0.5, "a ratio");
  f.define_bool("verbose", false, "chatty");
  f.define_string("name", "cg", "workload");
  return f;
}

std::vector<std::string> parse(Flags& f, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return f.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, DefaultsWhenUnset) {
  Flags f = make_flags();
  parse(f, {});
  EXPECT_EQ(f.get_int("count"), 4);
  EXPECT_DOUBLE_EQ(f.get_double("ratio"), 0.5);
  EXPECT_FALSE(f.get_bool("verbose"));
  EXPECT_EQ(f.get_string("name"), "cg");
}

TEST(Flags, EqualsSyntax) {
  Flags f = make_flags();
  parse(f, {"--count=9", "--ratio=1.25", "--name=ft", "--verbose=true"});
  EXPECT_EQ(f.get_int("count"), 9);
  EXPECT_DOUBLE_EQ(f.get_double("ratio"), 1.25);
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_EQ(f.get_string("name"), "ft");
}

TEST(Flags, SpaceSyntaxAndBareBool) {
  Flags f = make_flags();
  parse(f, {"--count", "7", "--verbose"});
  EXPECT_EQ(f.get_int("count"), 7);
  EXPECT_TRUE(f.get_bool("verbose"));
}

TEST(Flags, BoolTwoTokenForm) {
  // --flag false / --flag true consume the token instead of silently
  // treating it as a positional while the flag flips to true.
  Flags f = make_flags();
  const auto pos = parse(f, {"--verbose", "false"});
  EXPECT_FALSE(f.get_bool("verbose"));
  EXPECT_TRUE(pos.empty());

  Flags g = make_flags();
  const auto pos2 = parse(g, {"--verbose", "true", "tail"});
  EXPECT_TRUE(g.get_bool("verbose"));
  ASSERT_EQ(pos2.size(), 1u);
  EXPECT_EQ(pos2[0], "tail");
}

TEST(Flags, BareBoolDoesNotEatNonBoolToken) {
  // Only a literal true/false is consumed; anything else stays positional
  // and the bare flag still means true.
  Flags f = make_flags();
  const auto pos = parse(f, {"--verbose", "maybe"});
  EXPECT_TRUE(f.get_bool("verbose"));
  ASSERT_EQ(pos.size(), 1u);
  EXPECT_EQ(pos[0], "maybe");
}

TEST(Flags, NegativeValuesBothForms) {
  Flags f = make_flags();
  parse(f, {"--count=-7", "--ratio=-0.25"});
  EXPECT_EQ(f.get_int("count"), -7);
  EXPECT_DOUBLE_EQ(f.get_double("ratio"), -0.25);

  Flags g = make_flags();
  parse(g, {"--count", "-9", "--ratio", "-1.5"});
  EXPECT_EQ(g.get_int("count"), -9);
  EXPECT_DOUBLE_EQ(g.get_double("ratio"), -1.5);
}

TEST(Flags, OverflowRejected) {
  // strtoll/strtod clamp on ERANGE; the parser must refuse instead of
  // silently clamping.
  Flags f = make_flags();
  EXPECT_THROW(parse(f, {"--count=99999999999999999999"}), ContractError);
  Flags g = make_flags();
  EXPECT_THROW(parse(g, {"--count=-99999999999999999999"}), ContractError);
  Flags h = make_flags();
  EXPECT_THROW(parse(h, {"--ratio=1e999"}), ContractError);
  Flags k = make_flags();
  EXPECT_THROW(parse(k, {"--ratio=-1e999"}), ContractError);
  try {
    Flags m = make_flags();
    parse(m, {"--count=99999999999999999999"});
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("expects an integer"),
              std::string::npos);
  }
  // Boundary values still parse.
  Flags n = make_flags();
  parse(n, {"--count=9223372036854775807"});
  EXPECT_EQ(n.get_int("count"), INT64_MAX);
}

TEST(Flags, TinyDoubleUnderflowAccepted) {
  // Underflow (ERANGE with a finite result) is benign, unlike overflow.
  Flags f = make_flags();
  parse(f, {"--ratio=1e-400"});
  EXPECT_GE(f.get_double("ratio"), 0.0);
  EXPECT_LT(f.get_double("ratio"), 1e-300);
}

TEST(Flags, BareDoubleDashRejected) {
  Flags f = make_flags();
  EXPECT_THROW(parse(f, {"--"}), ContractError);
  Flags g = make_flags();
  EXPECT_THROW(parse(g, {"--=3"}), ContractError);
  try {
    Flags h = make_flags();
    parse(h, {"--"});
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("bare '--'"), std::string::npos);
  }
}

TEST(Flags, EmptyValueAfterEquals) {
  Flags f = make_flags();
  EXPECT_THROW(parse(f, {"--count="}), ContractError);
  Flags g = make_flags();
  EXPECT_THROW(parse(g, {"--verbose="}), ContractError);
  Flags h = make_flags();
  parse(h, {"--name="});  // empty string is a legitimate string value
  EXPECT_EQ(h.get_string("name"), "");
}

TEST(Flags, PositionalArgsReturned) {
  Flags f = make_flags();
  const auto pos = parse(f, {"alpha", "--count=2", "beta"});
  ASSERT_EQ(pos.size(), 2u);
  EXPECT_EQ(pos[0], "alpha");
  EXPECT_EQ(pos[1], "beta");
}

TEST(Flags, UnknownFlagFailsLoudly) {
  Flags f = make_flags();
  EXPECT_THROW(parse(f, {"--notaflag=1"}), ContractError);
}

TEST(Flags, BadValuesRejected) {
  Flags f = make_flags();
  EXPECT_THROW(parse(f, {"--count=notanint"}), ContractError);
  Flags g = make_flags();
  EXPECT_THROW(parse(g, {"--ratio=NaNope"}), ContractError);
  Flags h = make_flags();
  EXPECT_THROW(parse(h, {"--verbose=maybe"}), ContractError);
}

TEST(Flags, MissingValueRejected) {
  Flags f = make_flags();
  EXPECT_THROW(parse(f, {"--count"}), ContractError);
}

TEST(Flags, TypeMismatchOnGet) {
  Flags f = make_flags();
  parse(f, {});
  EXPECT_THROW(f.get_int("ratio"), ContractError);
  EXPECT_THROW(f.get_double("nope"), ContractError);
}

TEST(Flags, UsageListsEverything) {
  Flags f = make_flags();
  const std::string u = f.usage("bench");
  EXPECT_NE(u.find("--count"), std::string::npos);
  EXPECT_NE(u.find("--ratio"), std::string::npos);
  EXPECT_NE(u.find("bench"), std::string::npos);
}

}  // namespace
}  // namespace tahoe
