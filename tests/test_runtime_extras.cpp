// Runtime extras: pinned placement runs, preamble lookahead, Memory-Mode
// machine derivation through the runtime, and the N-tier generality of the
// substrate.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include "baselines/hwcache.hpp"
#include "common/units.hpp"
#include "core/calibration.hpp"
#include "core/planner.hpp"
#include "core/runtime.hpp"
#include "workloads/sp.hpp"
#include "workloads/synthetic.hpp"

namespace tahoe {
namespace {

core::RuntimeConfig config(std::uint64_t dram = 64 * kMiB) {
  core::RuntimeConfig c;
  c.machine = memsim::machines::platform_a(
      memsim::devices::nvm_lat_multiple(memsim::devices::dram(dram), 4.0,
                                        4 * kGiB),
      dram);
  c.backing = hms::Backing::Virtual;
  return c;
}

TEST(RunPinned, SingleObjectPlacementBetweenExtremes) {
  workloads::SpApp dram_app(
      workloads::SpApp::config_for(workloads::Scale::Test, workloads::SpApp::Kind::SP));
  workloads::SpApp nvm_app(
      workloads::SpApp::config_for(workloads::Scale::Test, workloads::SpApp::Kind::SP));
  workloads::SpApp pin_app(
      workloads::SpApp::config_for(workloads::Scale::Test, workloads::SpApp::Kind::SP));
  core::Runtime rt(config());
  const double dram =
      rt.run_static(dram_app, memsim::kDram).steady_iteration_seconds();
  const double nvm =
      rt.run_static(nvm_app, memsim::kNvm).steady_iteration_seconds();
  const double lhs_pinned =
      rt.run_pinned(pin_app, {"lhs"}).steady_iteration_seconds();
  // Pinning the latency-sensitive lhs recovers part of the 4x-LAT gap.
  EXPECT_LT(lhs_pinned, nvm * 0.999);
  EXPECT_GT(lhs_pinned, dram);
}

TEST(RunPinned, PinningEverythingEqualsDramOnly) {
  workloads::StreamApp a({8 * kMiB, 4, 4});
  workloads::StreamApp b({8 * kMiB, 4, 4});
  core::Runtime rt(config());
  const double dram =
      rt.run_static(a, memsim::kDram).steady_iteration_seconds();
  const double pinned =
      rt.run_pinned(b, {"stream_src", "stream_dst"})
          .steady_iteration_seconds();
  EXPECT_NEAR(pinned, dram, dram * 1e-9);
}

TEST(RunPinned, UnknownNamesPinNothing) {
  workloads::StreamApp a({8 * kMiB, 4, 4});
  workloads::StreamApp b({8 * kMiB, 4, 4});
  core::Runtime rt(config());
  const double nvm = rt.run_static(a, memsim::kNvm).steady_iteration_seconds();
  const double pinned =
      rt.run_pinned(b, {"no_such_object"}).steady_iteration_seconds();
  EXPECT_NEAR(pinned, nvm, nvm * 1e-9);
}

TEST(CyclicPreamble, FillsNeededAtFirstReferenceGroup) {
  // Build inputs where object 2 is first referenced in group 1: its
  // preamble fill must carry needed_group = 1 (a lookahead window), while
  // an object referenced in group 0 is needed immediately.
  task::GraphBuilder gb;
  auto make_task = [](hms::ObjectId obj) {
    task::Task t;
    task::DataAccess a;
    a.object = obj;
    a.chunk = 0;
    a.mode = task::AccessMode::Read;
    a.traffic.loads = 100;
    a.traffic.footprint = 4096;
    t.accesses = {a};
    return t;
  };
  gb.begin_group("g0");
  gb.add_task(make_task(1));
  gb.begin_group("g1");
  gb.add_task(make_task(2));
  const task::TaskGraph graph = gb.build();

  const memsim::Machine m = config().machine;
  core::PlanInputs in;
  in.graph = &graph;
  in.machine = &m;
  in.objects = {core::ObjectInfo{1, "one", {4096}, 0.0},
                core::ObjectInfo{2, "two", {4096}, 0.0}};
  in.current.set(1, 0, memsim::kNvm);
  in.current.set(2, 0, memsim::kNvm);

  const auto pre = core::cyclic_preamble(in, {{1, 0}, {2, 0}}, {});
  ASSERT_EQ(pre.size(), 2u);
  for (const task::ScheduledCopy& c : pre) {
    EXPECT_EQ(c.trigger_group, 0u);
    EXPECT_EQ(c.needed_group, c.object == 1 ? 0u : 1u);
  }
}

TEST(MultiTier, ThreeTierMachineAndRegistryWork) {
  // The substrate is tier-count generic: DRAM + two NVM generations.
  memsim::Machine m = memsim::machines::platform_a(
      memsim::devices::optane_pm(4 * kGiB), 64 * kMiB);
  m.devices.push_back(memsim::devices::pcram(8 * kGiB));

  hms::ObjectRegistry reg({64 * kMiB, 4 * kGiB, 8 * kGiB},
                          hms::Backing::Virtual);
  const hms::ObjectId obj = reg.create("v", 16 * kMiB, 2);  // slowest tier
  EXPECT_EQ(reg.get(obj).device(), 2u);
  ASSERT_TRUE(reg.migrate(obj, memsim::kDram));
  EXPECT_EQ(reg.get(obj).device(), memsim::kDram);

  // Simulated timing distinguishes all three tiers.
  task::GraphBuilder gb;
  gb.begin_group("g");
  task::Task t;
  task::DataAccess a;
  a.object = obj;
  a.chunk = 0;
  a.mode = task::AccessMode::Read;
  a.traffic.loads = 4 << 20;
  a.traffic.footprint = 16 * kMiB;
  t.accesses = {a};
  gb.add_task(std::move(t));
  const task::TaskGraph g = gb.build();

  task::SimExecutor ex;
  task::SimExecutor::Options opts;
  opts.check_capacity = false;
  std::vector<double> times;
  for (memsim::DeviceId d = 0; d < 3; ++d) {
    hms::PlacementMap p;
    p.set(obj, 0, d);
    times.push_back(ex.run(g, m, p, {}, opts).makespan);
  }
  EXPECT_LT(times[0], times[1]);  // DRAM < Optane
  EXPECT_LT(times[1], times[2]);  // Optane < PCRAM
}

TEST(MemoryMode, RuntimeRunsOnDerivedMachine) {
  workloads::StreamApp app({32 * kMiB, 4, 4});
  core::RuntimeConfig c = config();
  c.machine = baselines::memory_mode_machine(c.machine, 64 * kMiB);
  core::Runtime rt(c);
  const core::RunReport r = rt.run_static(app, memsim::kNvm);
  EXPECT_GT(r.compute_seconds, 0.0);
}

TEST(RunReport, SteadyIterationHandlesShortRuns) {
  // Regression: runs with no post-warmup iterations must report 0.0 (the
  // old fallback silently averaged warmup noise).
  core::RunReport r;
  EXPECT_DOUBLE_EQ(r.steady_iteration_seconds(), 0.0);
  r.iteration_seconds = {5.0};
  EXPECT_DOUBLE_EQ(r.steady_iteration_seconds(), 0.0);
  r.iteration_seconds = {9.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(r.steady_iteration_seconds(3), 0.0);
  r.iteration_seconds = {9.0, 1.0, 1.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(r.steady_iteration_seconds(3), 2.0);
  EXPECT_DOUBLE_EQ(r.steady_iteration_seconds(0), 3.0);
  EXPECT_DOUBLE_EQ(r.steady_iteration_seconds(4), 3.0);
  EXPECT_DOUBLE_EQ(r.steady_iteration_seconds(5), 0.0);
}

}  // namespace
}  // namespace tahoe
