#include <gtest/gtest.h>

#include "common/units.hpp"
#include "hms/chunking.hpp"

namespace tahoe::hms {
namespace {

TEST(Chunking, SmallObjectsStayWhole) {
  const ChunkingPolicy p{256 * kMiB, 0.25, 64};
  EXPECT_EQ(p.chunks_for(32 * kMiB, true), 1u);
  EXPECT_EQ(p.chunks_for(64 * kMiB, true), 1u);  // exactly the budget
}

TEST(Chunking, LargeObjectsSplitToBudget) {
  const ChunkingPolicy p{256 * kMiB, 0.25, 64};
  // Budget 64 MiB: 1 GiB -> 16 chunks.
  EXPECT_EQ(p.chunks_for(1 * kGiB, true), 16u);
  EXPECT_EQ(p.chunks_for(65 * kMiB, true), 2u);
}

TEST(Chunking, NonPartitionableNeverSplit) {
  const ChunkingPolicy p{256 * kMiB, 0.25, 64};
  EXPECT_EQ(p.chunks_for(4 * kGiB, false), 1u);
}

TEST(Chunking, DisabledPolicyNeverSplits) {
  const ChunkingPolicy p{0, 0.25, 64};
  EXPECT_EQ(p.chunks_for(4 * kGiB, true), 1u);
}

TEST(Chunking, MaxChunksCaps) {
  const ChunkingPolicy p{64 * kMiB, 0.25, 8};
  // Budget 16 MiB: 1 GiB would want 64 chunks, capped at 8.
  EXPECT_EQ(p.chunks_for(1 * kGiB, true), 8u);
}

TEST(Chunking, ZeroBytesDegenerate) {
  const ChunkingPolicy p{256 * kMiB, 0.25, 64};
  EXPECT_EQ(p.chunks_for(0, true), 1u);
}

}  // namespace
}  // namespace tahoe::hms
