// Golden determinism (satellite of the fault-injection PR): identical
// seeds + flags must produce byte-identical report JSON across two runs —
// for a simulated-executor run and for a real-executor run — including
// under armed fault injection. This is what makes chaos runs replayable.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/fault.hpp"
#include "common/units.hpp"
#include "core/calibration.hpp"
#include "core/planner.hpp"
#include "core/runtime.hpp"
#include "trace/counters.hpp"
#include "workloads/common.hpp"
#include "workloads/heat.hpp"

namespace tahoe {
namespace {

core::RuntimeConfig golden_config(hms::Backing backing) {
  core::RuntimeConfig c;
  c.machine = memsim::machines::platform_a(
      memsim::devices::nvm_bw_fraction(memsim::devices::dram(64 * kMiB), 0.5,
                                       4 * kGiB),
      64 * kMiB);
  c.backing = backing;
  // The one wall-clock-measured report field; pin it for reproducibility.
  c.fixed_decision_seconds = 0.0;
  return c;
}

fault::FaultConfig golden_faults() {
  fault::FaultConfig cfg;
  cfg.seed = 0x601d;  // fixed scenario seed
  cfg.migration_abort = 0.25;
  cfg.dram_reservation = 0.30;
  cfg.sampler_noise = 0.20;
  return cfg;
}

/// One fully reset simulated run serialized to JSON. Global state (fault
/// streams, counters) is re-seeded/zeroed so the run only depends on the
/// configured seeds. Uses the split counter/gauge/histogram snapshots —
/// the same serialization path the bench harness uses for --report-json.
std::string sim_run_json() {
  fault::global().configure(golden_faults());
  trace::global_counters().reset();
  auto app = workloads::make_workload("cg", workloads::Scale::Test);
  core::RuntimeConfig config = golden_config(hms::Backing::Virtual);
  config.attribution = true;
  core::Runtime rt(config);
  core::TahoePolicy policy(core::calibrate(rt.machine()).to_constants());
  const core::RunReport report = rt.run(*app, policy);
  std::ostringstream os;
  auto& reg = trace::global_counters();
  report.write_json(os, reg.snapshot_counters(), reg.snapshot_gauges(),
                    reg.snapshot_histograms());
  return os.str();
}

/// The same run's decision provenance (--explain-out payload).
std::string sim_explain_json() {
  fault::global().configure(golden_faults());
  trace::global_counters().reset();
  auto app = workloads::make_workload("cg", workloads::Scale::Test);
  core::RuntimeConfig config = golden_config(hms::Backing::Virtual);
  config.attribution = true;
  core::Runtime rt(config);
  core::TahoePolicy policy(core::calibrate(rt.machine()).to_constants());
  const core::RunReport report = rt.run(*app, policy);
  std::ostringstream os;
  report.write_explain_json(os);
  return os.str();
}

/// One fully reset real-executor run serialized to JSON. The report's
/// real-path fields are all event counts (no wall-clock), so the bytes
/// must match as long as the injected fault schedule does.
std::string real_run_json() {
  fault::global().configure(golden_faults());
  trace::global_counters().reset();
  workloads::HeatApp app(workloads::HeatApp::config_for(
      workloads::Scale::Test));
  core::Runtime rt(golden_config(hms::Backing::Real));

  // A small deterministic promote/demote schedule over heat's objects.
  hms::ObjectRegistry scratch({64 * kMiB, 4 * kGiB}, hms::Backing::Virtual);
  hms::ChunkingPolicy chunking;
  chunking.dram_capacity = 64 * kMiB;
  workloads::HeatApp probe(workloads::HeatApp::config_for(
      workloads::Scale::Test));
  probe.setup(scratch, chunking);
  std::vector<task::ScheduledCopy> schedule;
  for (const hms::ObjectId id : scratch.live_objects()) {
    const hms::DataObject& obj = scratch.get(id);
    for (std::size_t c = 0; c < obj.num_chunks(); ++c) {
      schedule.push_back(task::ScheduledCopy{id, c, obj.chunk(c).bytes,
                                             memsim::kDram, 0, 0});
      schedule.push_back(task::ScheduledCopy{id, c, obj.chunk(c).bytes,
                                             memsim::kNvm, 2, 2});
    }
  }
  const core::RunReport report = rt.run_real_report(app, schedule, 2);
  std::ostringstream os;
  report.write_json(os);
  return os.str();
}

class GoldenDeterminism : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::global().disarm();
    trace::global_counters().reset();
  }
};

TEST_F(GoldenDeterminism, SimulatedRunIsByteIdentical) {
  const std::string first = sim_run_json();
  const std::string second = sim_run_json();
  EXPECT_EQ(first, second);
  // Sanity: the run is non-trivial and the faults really fired.
  EXPECT_NE(first.find("\"faults_injected\""), std::string::npos);
  EXPECT_EQ(first.find("\"faults_injected\":0,"), std::string::npos);
}

TEST_F(GoldenDeterminism, ExplainOutputIsByteIdentical) {
  // Decision provenance must replay exactly: it deliberately excludes the
  // one wall-clock field (decision_seconds), so two seeded runs serialize
  // candidate-for-candidate identical explain documents.
  const std::string first = sim_explain_json();
  const std::string second = sim_explain_json();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"schema_version\":2"), std::string::npos);
  EXPECT_NE(first.find("\"plans\":["), std::string::npos);
  EXPECT_NE(first.find("\"candidates\":["), std::string::npos);
  EXPECT_NE(first.find("\"reason\":"), std::string::npos);
}

TEST_F(GoldenDeterminism, AttributionTablesAreByteIdentical) {
  // The report JSON now carries attribution + per-object migration rows;
  // those ride the same determinism guarantee as the scalar fields.
  const std::string first = sim_run_json();
  EXPECT_NE(first.find("\"schema_version\":2"), std::string::npos);
  EXPECT_NE(first.find("\"attribution\":["), std::string::npos);
  EXPECT_NE(first.find("\"objects\":["), std::string::npos);
}

TEST_F(GoldenDeterminism, RealRunIsByteIdentical) {
  const std::string first = real_run_json();
  const std::string second = real_run_json();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"verified\":true"), std::string::npos);
}

TEST_F(GoldenDeterminism, DifferentFaultSeedsDiverge) {
  // The complement property: the seed is what controls the schedule, so
  // changing it must be able to change the outcome-bearing counters.
  fault::FaultConfig a = golden_faults();
  fault::FaultConfig b = golden_faults();
  b.seed ^= 0x9e3779b97f4a7c15ULL;
  fault::FaultInjector ia;
  fault::FaultInjector ib;
  ia.configure(a);
  ib.configure(b);
  std::vector<bool> da;
  std::vector<bool> db;
  for (int i = 0; i < 256; ++i) {
    da.push_back(ia.should_fail(fault::Site::MigrationAbort));
    db.push_back(ib.should_fail(fault::Site::MigrationAbort));
  }
  EXPECT_NE(da, db);
}

}  // namespace
}  // namespace tahoe
