// OffsetPtr/OffsetSpan: self-relative addressing survives wholesale
// relocation of the bytes that hold both pointer and pointee.
#include "common/offset_ptr.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace tahoe {
namespace {

TEST(OffsetPtr, DefaultIsNull) {
  OffsetPtr<int> p;
  EXPECT_FALSE(p);
  EXPECT_EQ(p.get(), nullptr);
  EXPECT_TRUE(p == nullptr);
  EXPECT_EQ(p.raw_offset(), 0);
}

TEST(OffsetPtr, PointsWithinAStruct) {
  struct Node {
    int value = 0;
    OffsetPtr<int> self;
  } node;
  node.value = 42;
  node.self = &node.value;
  EXPECT_TRUE(node.self);
  EXPECT_EQ(*node.self, 42);
  *node.self = 7;
  EXPECT_EQ(node.value, 7);
  // The offset is the (negative) distance from the pointer cell back to
  // the value field.
  EXPECT_LT(node.self.raw_offset(), 0);
}

TEST(OffsetPtr, WholeBufferMemcpyRelocates) {
  // Build a linked pair inside one buffer, memcpy the buffer elsewhere,
  // and check the copy's pointer resolves to the copy's data — never the
  // original's.
  struct Layout {
    OffsetPtr<int> ptr;
    int payload = 0;
  };
  alignas(Layout) std::byte a[sizeof(Layout)];
  alignas(Layout) std::byte b[sizeof(Layout)];
  auto* la = new (a) Layout{};
  la->payload = 123;
  la->ptr = &la->payload;

  std::memcpy(b, a, sizeof(Layout));
  auto* lb = reinterpret_cast<Layout*>(b);
  EXPECT_EQ(*lb->ptr, 123);
  *lb->ptr = 456;
  EXPECT_EQ(lb->payload, 456);
  EXPECT_EQ(la->payload, 123);  // the original is untouched
}

TEST(OffsetPtr, CopyConstructionRebinds) {
  int x = 5;
  OffsetPtr<int> p(&x);
  OffsetPtr<int> q(p);  // q lives at a different address than p
  EXPECT_EQ(q.get(), &x);
  OffsetPtr<int> r;
  r = p;
  EXPECT_EQ(r.get(), &x);
  r = nullptr;
  EXPECT_FALSE(r);
}

TEST(OffsetPtr, IndexingAndArrow) {
  struct S {
    int field = 9;
  };
  std::vector<S> v(3);
  v[2].field = 11;
  OffsetPtr<S> p(v.data());
  EXPECT_EQ(p->field, 9);
  EXPECT_EQ(p[2].field, 11);
}

TEST(OffsetSpan, ResetAndIterate) {
  int data[4] = {1, 2, 3, 4};
  OffsetSpan<int> span;
  EXPECT_TRUE(span.empty());
  span.reset(data, 4);
  EXPECT_EQ(span.size(), 4u);
  int sum = 0;
  for (int x : span) sum += x;
  EXPECT_EQ(sum, 10);
  EXPECT_EQ(span[3], 4);
  span.clear();
  EXPECT_TRUE(span.empty());
  EXPECT_EQ(span.data(), nullptr);
}

TEST(OffsetSpan, RelocatesWithItsBuffer) {
  struct Layout {
    OffsetSpan<int> span;
    int values[3] = {0, 0, 0};
  };
  alignas(Layout) std::byte a[sizeof(Layout)];
  alignas(Layout) std::byte b[sizeof(Layout)];
  auto* la = new (a) Layout{};
  la->values[0] = 10;
  la->values[1] = 20;
  la->values[2] = 30;
  la->span.reset(la->values, 3);

  std::memcpy(b, a, sizeof(Layout));
  auto* lb = reinterpret_cast<Layout*>(b);
  ASSERT_EQ(lb->span.size(), 3u);
  EXPECT_EQ(lb->span.data(), lb->values);
  EXPECT_NE(lb->span.data(), la->values);
  EXPECT_EQ(lb->span[1], 20);
}

}  // namespace
}  // namespace tahoe
