// Relocatability of the segment-hosted registry: the same image attached
// at a different base address — or in a forked child — must walk to
// identical names, chunks, residency and owner accounting.
#include <gtest/gtest.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/units.hpp"
#include "hms/registry.hpp"
#include "hms/walk.hpp"

namespace tahoe::hms {
namespace {

/// Exercise every structure the walk reports: chunked and unchunked
/// objects, migrations, aliases, owner tags, and a destroy + recreate
/// that recycles a slot with a bumped generation.
void populate(ObjectRegistry& reg, void** alias_slot) {
  const ObjectId grid = reg.create("grid", 64 * kKiB, memsim::kDram, 4);
  const ObjectId halo = reg.create("halo", 8 * kKiB, memsim::kNvm, 1);
  const ObjectId scratch = reg.create("scratch", 4 * kKiB, memsim::kNvm, 2);
  reg.register_alias(halo, alias_slot);
  ASSERT_TRUE(reg.migrate_chunk(grid, 1, memsim::kNvm));
  ASSERT_TRUE(reg.migrate(halo, memsim::kDram));
  reg.set_owner(grid, 1);
  reg.set_owner(halo, 2);
  reg.destroy(scratch);
  const ObjectId reborn = reg.create("reborn", 2 * kKiB, memsim::kNvm, 1);
  // The freed slot is recycled under a new generation, so the stale id
  // stays detectably dead.
  EXPECT_EQ(object_slot(reborn), object_slot(scratch));
  EXPECT_NE(reborn, scratch);
  EXPECT_EQ(object_generation(reborn), 1u);
}

TEST(Relocation, SameImageAtTwoBasesWalksIdentically) {
  ObjectRegistry reg({256 * kKiB, 4 * kMiB}, Backing::Real);
  void* alias_slot = nullptr;
  populate(reg, &alias_slot);

  const Segment& seg = reg.segment();
  const RegistryWalk original = walk_registry(seg);

  // Copy the raw bytes to a fresh mapping — a guaranteed different base —
  // and walk the copy through only self-relative references.
  void* copy = ::mmap(nullptr, seg.size(), PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  ASSERT_NE(copy, MAP_FAILED);
  ASSERT_NE(copy, seg.base());
  std::memcpy(copy, seg.base(), seg.size());

  {
    const Segment view = Segment::attach(copy, seg.size());
    const RegistryWalk relocated = walk_registry(view);
    EXPECT_EQ(relocated, original);
    EXPECT_EQ(relocated.to_json(), original.to_json());

    // The walk carries real content, not just matching emptiness.
    ASSERT_EQ(relocated.objects.size(), 3u);
    EXPECT_EQ(relocated.objects[0].name, "grid");
    ASSERT_EQ(relocated.objects[0].chunks.size(), 4u);
    EXPECT_EQ(relocated.objects[0].chunks[1].second, memsim::kNvm);
    EXPECT_EQ(relocated.objects[0].chunks[0].second, memsim::kDram);
    EXPECT_EQ(relocated.objects[1].name, "halo");
    EXPECT_EQ(relocated.objects[1].chunks[0].second, memsim::kDram);
    EXPECT_EQ(relocated.objects[1].num_aliases, 1u);
    EXPECT_EQ(relocated.objects[2].name, "reborn");  // recycled slot
  }
  ::munmap(copy, seg.size());
}

TEST(Relocation, WalkMatchesRegistryAccounting) {
  ObjectRegistry reg({256 * kKiB, 4 * kMiB}, Backing::Real);
  void* alias_slot = nullptr;
  populate(reg, &alias_slot);

  const RegistryWalk walk = walk_registry(reg.segment());
  EXPECT_EQ(walk.live_objects, reg.num_objects());
  EXPECT_EQ(walk.num_tiers, reg.num_tiers());
  ASSERT_EQ(walk.resident_by_tier.size(), reg.num_tiers());
  for (memsim::TierId t = 0; t < reg.num_tiers(); ++t) {
    EXPECT_EQ(walk.resident_by_tier[t], reg.resident_bytes(t)) << "tier " << t;
  }
  // Owner accounting from the bytes alone agrees with the registry's own
  // owned queries, tier by tier.
  for (const auto& [owner, by_tier] : walk.owned_by_tier) {
    for (memsim::TierId t = 0; t < reg.num_tiers(); ++t) {
      EXPECT_EQ(by_tier[t], reg.resident_bytes_owned(owner, t))
          << "owner " << owner << " tier " << t;
    }
  }
  ASSERT_EQ(walk.owned_by_tier.size(), 2u);  // owners 1 and 2 were tagged
  ASSERT_EQ(walk.arenas.size(), reg.num_tiers());
  for (memsim::TierId t = 0; t < reg.num_tiers(); ++t) {
    EXPECT_EQ(walk.arenas[t].used, reg.arena(t).used());
    EXPECT_EQ(walk.arenas[t].capacity, reg.arena(t).capacity());
    EXPECT_EQ(walk.arenas[t].live_blocks, reg.arena(t).live_allocations());
  }
}

TEST(Relocation, ForkAttachSmoke) {
  ObjectRegistry reg({256 * kKiB, 4 * kMiB}, Backing::Real);
  void* alias_slot = nullptr;
  populate(reg, &alias_slot);
  const std::string expected = walk_registry(reg.segment()).to_json();

  // CI publishes the walk as an artifact when asked to.
  if (const char* out = std::getenv("TAHOE_WALK_OUT")) {
    std::ofstream f(out);
    f << expected << "\n";
  }

  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: the segment is an anonymous MAP_SHARED mapping, inherited at
    // the same address. Attach it as a foreign image and ship the walk
    // back over the pipe. _exit keeps gtest/atexit state out of the child.
    ::close(fds[0]);
    int status = 0;
    try {
      const Segment view =
          Segment::attach(reg.segment().base(), reg.segment().size());
      const std::string json = walk_registry(view).to_json();
      const char* p = json.data();
      std::size_t left = json.size();
      while (left > 0) {
        const ssize_t n = ::write(fds[1], p, left);
        if (n <= 0) {
          status = 2;
          break;
        }
        p += n;
        left -= static_cast<std::size_t>(n);
      }
    } catch (...) {
      status = 1;
    }
    ::close(fds[1]);
    ::_exit(status);
  }

  ::close(fds[1]);
  std::string got;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(fds[0], buf, sizeof buf)) > 0) {
    got.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fds[0]);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
  EXPECT_EQ(got, expected);
}

TEST(Relocation, MutationsAfterCopyDoNotLeakIntoTheImage) {
  ObjectRegistry reg({256 * kKiB, 4 * kMiB}, Backing::Real);
  void* alias_slot = nullptr;
  populate(reg, &alias_slot);
  const Segment& seg = reg.segment();

  std::vector<std::byte> image(seg.size());
  std::memcpy(image.data(), seg.base(), seg.size());
  const RegistryWalk snapshot = walk_registry(Segment::attach(
      image.data(), image.size()));

  // Mutate the live registry; the detached image must be unaffected.
  reg.create("late", 16 * kKiB, memsim::kDram, 2);
  const RegistryWalk live = walk_registry(seg);
  const RegistryWalk frozen = walk_registry(Segment::attach(
      image.data(), image.size()));
  EXPECT_EQ(frozen, snapshot);
  EXPECT_NE(live, frozen);
  EXPECT_EQ(live.live_objects, frozen.live_objects + 1);
}

}  // namespace
}  // namespace tahoe::hms
