// Free-list arena: allocation, coalescing, fragmentation behaviour.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/units.hpp"
#include "hms/arena.hpp"

namespace tahoe::hms {
namespace {

TEST(Arena, AllocWithinCapacityAndAlignment) {
  Arena a("t", 1 * kMiB);
  void* p = a.alloc(100);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(a.owns(p));
  // Rounded to 64-byte granules.
  EXPECT_EQ(a.used(), 128u);
  a.free(p);
  EXPECT_EQ(a.used(), 0u);
  EXPECT_FALSE(a.owns(p));
}

TEST(Arena, ReturnsNullWhenFull) {
  Arena a("t", 64 * kKiB);
  void* p1 = a.alloc(48 * kKiB);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(a.alloc(32 * kKiB), nullptr);  // does not fit
  void* p2 = a.alloc(16 * kKiB);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(a.free_bytes(), 0u);
  a.free(p1);
  a.free(p2);
}

TEST(Arena, CoalescingRestoresLargeRange) {
  Arena a("t", 256 * kKiB);
  std::vector<void*> ps;
  for (int i = 0; i < 4; ++i) ps.push_back(a.alloc(64 * kKiB));
  for (void* p : ps) ASSERT_NE(p, nullptr);
  EXPECT_EQ(a.largest_free_range(), 0u);
  // Free out of order; neighbours must coalesce back to one range.
  a.free(ps[1]);
  a.free(ps[3]);
  a.free(ps[0]);
  a.free(ps[2]);
  EXPECT_EQ(a.largest_free_range(), 256 * kKiB);
  EXPECT_EQ(a.live_allocations(), 0u);
}

TEST(Arena, FragmentationBlocksLargeAlloc) {
  Arena a("t", 256 * kKiB);
  void* p0 = a.alloc(64 * kKiB);
  void* p1 = a.alloc(64 * kKiB);
  void* p2 = a.alloc(64 * kKiB);
  void* p3 = a.alloc(64 * kKiB);
  a.free(p0);
  a.free(p2);
  // 128 KiB free but split in two 64 KiB holes.
  EXPECT_EQ(a.free_bytes(), 128 * kKiB);
  EXPECT_EQ(a.largest_free_range(), 64 * kKiB);
  EXPECT_EQ(a.alloc(128 * kKiB), nullptr);
  a.free(p1);
  a.free(p3);
}

TEST(Arena, FirstFitReusesEarliestHole) {
  Arena a("t", 256 * kKiB);
  void* p0 = a.alloc(64 * kKiB);
  void* p1 = a.alloc(64 * kKiB);
  (void)p1;
  a.free(p0);
  void* p2 = a.alloc(32 * kKiB);
  ASSERT_NE(p2, nullptr);
  // Backing pointers differ but the logical hole is reused: the arena can
  // still satisfy the remaining capacity exactly.
  EXPECT_EQ(a.free_bytes(), 256 * kKiB - 64 * kKiB - 32 * kKiB);
}

TEST(Arena, RealBackingIsWritable) {
  Arena a("t", 1 * kMiB, Backing::Real);
  auto* p = static_cast<std::byte*>(a.alloc(4096));
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, 4096);
  EXPECT_EQ(std::to_integer<int>(p[4095]), 0xab);
  a.free(p);
}

TEST(Arena, VirtualBackingTracksAccounting) {
  Arena a("t", 1 * kGiB, Backing::Virtual);
  void* p = a.alloc(512 * kMiB);  // no real half-GiB allocation happens
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(a.used(), 512 * kMiB);
  void* q = a.alloc(512 * kMiB);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(a.alloc(64), nullptr);
  EXPECT_NE(p, q);  // identities stay unique
  a.free(p);
  a.free(q);
}

TEST(Arena, ContractViolations) {
  Arena a("t", 1 * kMiB);
  EXPECT_THROW(a.alloc(0), ContractError);
  EXPECT_THROW(a.free(nullptr), ContractError);
  int x = 0;
  EXPECT_THROW(a.free(&x), ContractError);
  EXPECT_THROW(Arena("bad", 0), ContractError);
}

TEST(Arena, StressAllocFreeCycles) {
  Arena a("t", 4 * kMiB, Backing::Virtual);
  std::vector<void*> live;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 8; ++i) {
      void* p = a.alloc(17 * kKiB + i * 1000);
      if (p != nullptr) live.push_back(p);
    }
    // Free every other allocation.
    std::vector<void*> keep;
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (i % 2 == 0) {
        a.free(live[i]);
      } else {
        keep.push_back(live[i]);
      }
    }
    live = std::move(keep);
  }
  for (void* p : live) a.free(p);
  EXPECT_EQ(a.used(), 0u);
  EXPECT_EQ(a.largest_free_range(), a.capacity());
}

}  // namespace
}  // namespace tahoe::hms
