// Zipfian key-popularity generator: analytic CDF sanity and cross-run
// determinism (same seed => identical key stream).
#include "serve/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace tahoe::serve {
namespace {

TEST(Zipf, CdfIsMonotoneAndNormalized) {
  for (const double s : {0.0, 0.5, 0.99, 1.1, 1.5}) {
    Zipf z(64, s);
    ASSERT_EQ(z.size(), 64u);
    EXPECT_DOUBLE_EQ(z.exponent(), s);
    double prev = 0.0;
    double pmf_sum = 0.0;
    for (std::size_t k = 0; k < z.size(); ++k) {
      const double c = z.cdf(k);
      EXPECT_GE(c, prev) << "cdf not monotone at k=" << k << " s=" << s;
      EXPECT_NEAR(z.pmf(k), c - prev, 1e-12);
      pmf_sum += z.pmf(k);
      prev = c;
    }
    EXPECT_DOUBLE_EQ(z.cdf(z.size() - 1), 1.0);
    EXPECT_NEAR(pmf_sum, 1.0, 1e-9);
  }
}

TEST(Zipf, ZeroExponentDegeneratesToUniform) {
  Zipf z(10, 0.0);
  for (std::size_t k = 0; k < z.size(); ++k) {
    EXPECT_NEAR(z.pmf(k), 0.1, 1e-12);
  }
}

TEST(Zipf, HeavierExponentConcentratesMassOnLowRanks) {
  Zipf light(1000, 0.8);
  Zipf heavy(1000, 1.4);
  EXPECT_GT(heavy.cdf(9), light.cdf(9));
  EXPECT_GT(heavy.pmf(0), light.pmf(0));
}

TEST(Zipf, EmpiricalDistributionMatchesAnalyticCdf) {
  constexpr std::size_t kRanks = 100;
  constexpr std::size_t kSamples = 200000;
  Zipf z(kRanks, 1.1);
  Rng rng(42);
  std::vector<std::size_t> hits(kRanks, 0);
  for (std::size_t i = 0; i < kSamples; ++i) {
    const std::size_t k = z.sample(rng);
    ASSERT_LT(k, kRanks);
    ++hits[k];
  }
  // Empirical CDF tracks the analytic one everywhere. With n = 2e5 the
  // standard error of any CDF point is < 0.002, so 0.01 is ~5 sigma.
  std::size_t cum = 0;
  for (std::size_t k = 0; k < kRanks; ++k) {
    cum += hits[k];
    const double empirical =
        static_cast<double>(cum) / static_cast<double>(kSamples);
    EXPECT_NEAR(empirical, z.cdf(k), 0.01) << "at rank " << k;
  }
}

TEST(Zipf, SameSeedSameStreamDifferentSeedDiverges) {
  Zipf z(4096, 1.1);
  Rng a(7), b(7), c(8);
  bool diverged = false;
  for (int i = 0; i < 1000; ++i) {
    const std::size_t ka = z.sample(a);
    EXPECT_EQ(ka, z.sample(b)) << "same-seed streams diverged at draw " << i;
    if (ka != z.sample(c)) diverged = true;
  }
  EXPECT_TRUE(diverged) << "different seeds produced identical streams";
}

}  // namespace
}  // namespace tahoe::serve
