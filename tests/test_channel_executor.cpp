// Channel-executor specifics: steal-request accounting, forced and
// adaptive steal modes, and stress. Backend-agnostic behavior (graph
// semantics, barriers, hints) is covered for both backends in
// test_executor.cpp via the IExecutor parameterization.
#include "task/channel_executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/assert.hpp"

namespace tahoe::task {
namespace {

DataAccess acc(hms::ObjectId obj, AccessMode mode) {
  DataAccess a;
  a.object = obj;
  a.mode = mode;
  a.traffic.loads = 1;
  a.traffic.footprint = 64;
  return a;
}

TaskGraph flat_graph(int tasks, std::atomic<int>& count) {
  GraphBuilder gb;
  gb.begin_group("g");
  for (int i = 0; i < tasks; ++i) {
    Task t;
    t.accesses = {acc(static_cast<hms::ObjectId>(i), AccessMode::Write)};
    t.work = [&count]() { count.fetch_add(1, std::memory_order_relaxed); };
    gb.add_task(std::move(t));
  }
  return gb.build();
}

TEST(ChannelExecutor, RejectsBadOptions) {
  ChannelExecutor::Options opts;
  opts.adapt_window = 0;
  EXPECT_THROW(ChannelExecutor(2, opts), ContractError);
}

TEST(ChannelExecutor, RequestAccountingIsConsistent) {
  std::atomic<int> count{0};
  const TaskGraph g = flat_graph(300, count);
  ChannelExecutor ex(4);
  ex.run(g);
  EXPECT_EQ(count.load(), 300);
  const ExecutorStats& s = ex.stats();
  EXPECT_EQ(s.tasks_run, 300u);
  EXPECT_EQ(s.pops + s.steals + s.inject_takes, 300u);
  // Every reply is either a grant or a decline; at most one request per
  // worker can still be in flight when the run's snapshot is taken.
  EXPECT_GE(s.steal_requests, s.steals + s.steal_declines);
  EXPECT_LE(s.steal_requests,
            s.steals + s.steal_declines + ex.num_workers());
}

TEST(ChannelExecutor, ForcedStealOneNeverBatches) {
  ChannelExecutor::Options opts;
  opts.initial_mode = StealMode::kOne;
  opts.adaptive = false;
  std::atomic<int> count{0};
  const TaskGraph g = flat_graph(400, count);
  ChannelExecutor ex(4, opts);
  ex.run(g);
  EXPECT_EQ(count.load(), 400);
  EXPECT_EQ(ex.stats().steal_halves, 0u);
  EXPECT_EQ(ex.stats().mode_switches, 0u);
  for (unsigned w = 0; w < ex.num_workers(); ++w) {
    EXPECT_EQ(ex.steal_mode(w), StealMode::kOne);
  }
  // Steal-one: every enqueue is unique, so pushes match the task count
  // exactly (only steal-half re-enqueues batch tails).
  EXPECT_EQ(ex.stats().pushes, 400u);
}

TEST(ChannelExecutor, ForcedStealHalfStaysInHalfMode) {
  ChannelExecutor::Options opts;
  opts.initial_mode = StealMode::kHalf;
  opts.adaptive = false;
  std::atomic<int> count{0};
  const TaskGraph g = flat_graph(400, count);
  ChannelExecutor ex(4, opts);
  ex.run(g);
  EXPECT_EQ(count.load(), 400);
  EXPECT_EQ(ex.stats().mode_switches, 0u);
  for (unsigned w = 0; w < ex.num_workers(); ++w) {
    EXPECT_EQ(ex.steal_mode(w), StealMode::kHalf);
  }
  // Identity still holds: batch tails count as pushes, later taken as pops.
  const ExecutorStats& s = ex.stats();
  EXPECT_EQ(s.pops + s.steals + s.inject_takes, 400u);
  EXPECT_GE(s.pushes, 400u);
}

TEST(ChannelExecutor, AdaptiveControllerSwitchesToHalfUnderScarcity) {
  // A serial chain keeps exactly one task runnable: every steal request
  // from the three idle workers comes back declined (or moves the single
  // task), so their decline rate crosses the steal-half threshold within
  // a few adaptation windows.
  ChannelExecutor::Options opts;
  opts.initial_mode = StealMode::kOne;
  opts.adaptive = true;
  opts.adapt_window = 4;
  GraphBuilder gb;
  gb.begin_group("g");
  std::atomic<int> n{0};
  for (int i = 0; i < 300; ++i) {
    Task t;
    t.accesses = {acc(1, AccessMode::ReadWrite)};  // serial chain
    t.work = [&n]() {
      n.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(20));
    };
    gb.add_task(std::move(t));
  }
  const TaskGraph g = gb.build();
  ChannelExecutor ex(4, opts);
  ex.run(g);
  EXPECT_EQ(n.load(), 300);
  EXPECT_GE(ex.stats().mode_switches, 1u);
  unsigned in_half = 0;
  for (unsigned w = 0; w < ex.num_workers(); ++w) {
    if (ex.steal_mode(w) == StealMode::kHalf) ++in_half;
  }
  EXPECT_GE(in_half, 1u);
}

TEST(ChannelExecutor, ReusableAcrossRunsWithStealHalf) {
  ChannelExecutor::Options opts;
  opts.initial_mode = StealMode::kHalf;
  opts.adaptive = false;
  ChannelExecutor ex(4, opts);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> count{0};
    const TaskGraph g = flat_graph(100, count);
    ex.run(g);
    EXPECT_EQ(count.load(), 100);
  }
  EXPECT_EQ(ex.stats().tasks_run, 500u);
  EXPECT_EQ(ex.stats().pops + ex.stats().steals + ex.stats().inject_takes,
            500u);
}

TEST(ChannelExecutor, SmallInboxesStillDrainEverything) {
  // Inbox capacity far below the group size: the caller's scatter loop has
  // to wait for workers to drain, and victims must serve inbox tasks to
  // thieves. Everything still runs exactly once.
  ChannelExecutor::Options opts;
  opts.inbox_capacity = 2;
  std::atomic<int> count{0};
  const TaskGraph g = flat_graph(500, count);
  ChannelExecutor ex(4, opts);
  ex.run(g);
  EXPECT_EQ(count.load(), 500);
  EXPECT_EQ(ex.stats().tasks_run, 500u);
  EXPECT_EQ(ex.stats().pops + ex.stats().steals + ex.stats().inject_takes,
            500u);
}

TEST(ChannelExecutor, WideDagStress) {
  // Alternating fan-out/fan-in layers with many workers; all tasks run,
  // accounting stays exact across the steal traffic.
  GraphBuilder gb;
  std::atomic<int> count{0};
  constexpr int kLayers = 6;
  constexpr int kWidth = 64;
  for (int layer = 0; layer < kLayers; ++layer) {
    gb.begin_group("l" + std::to_string(layer));
    for (int i = 0; i < kWidth; ++i) {
      Task t;
      if (layer % 2 == 0) {
        t.accesses = {acc(0, AccessMode::Read),
                      acc(static_cast<hms::ObjectId>(10 + i),
                          AccessMode::Write)};
      } else {
        t.accesses = {acc(static_cast<hms::ObjectId>(10 + i),
                          AccessMode::Read),
                      acc(0, i == 0 ? AccessMode::Write : AccessMode::Read)};
      }
      t.work = [&count]() { count.fetch_add(1, std::memory_order_relaxed); };
      gb.add_task(std::move(t));
    }
  }
  const TaskGraph g = gb.build();
  ChannelExecutor ex(8);
  ex.run(g);
  EXPECT_EQ(count.load(), kLayers * kWidth);
  const ExecutorStats& s = ex.stats();
  EXPECT_EQ(s.tasks_run, static_cast<std::uint64_t>(kLayers * kWidth));
  EXPECT_EQ(s.pops + s.steals + s.inject_takes, s.tasks_run);
}

}  // namespace
}  // namespace tahoe::task
