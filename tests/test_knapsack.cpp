// Knapsack solvers: DP vs exhaustive oracle property tests.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/knapsack.hpp"

namespace tahoe::core {
namespace {

TEST(Knapsack, PicksBestSimpleCase) {
  const std::vector<KnapsackItem> items{
      {60, 10.0}, {100, 20.0}, {120, 30.0}};
  const KnapsackResult r = solve(items, 220, 2048);
  // Optimal: items 1+2 (value 50, size 220).
  EXPECT_DOUBLE_EQ(r.total_value, 50.0);
  EXPECT_EQ(r.chosen, (std::vector<std::size_t>{1, 2}));
}

TEST(Knapsack, SkipsNonPositiveAndOversized) {
  const std::vector<KnapsackItem> items{
      {10, -5.0}, {10, 0.0}, {1000, 99.0}, {10, 1.0}};
  const KnapsackResult r = solve(items, 100, 2048);
  EXPECT_EQ(r.chosen, (std::vector<std::size_t>{3}));
  EXPECT_DOUBLE_EQ(r.total_value, 1.0);
}

TEST(Knapsack, EmptyInputsAndZeroCapacity) {
  EXPECT_TRUE(solve({}, 100).chosen.empty());
  const std::vector<KnapsackItem> items{{10, 1.0}};
  EXPECT_TRUE(solve(items, 0).chosen.empty());
}

TEST(Knapsack, NeverExceedsCapacityUnderCoarseGrid) {
  // The grid rounds sizes *up*, so even a coarse grid stays feasible.
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<KnapsackItem> items;
    for (int i = 0; i < 12; ++i) {
      items.push_back(KnapsackItem{rng.next_below(1000) + 1,
                                   rng.next_double() * 10.0});
    }
    const std::uint64_t cap = rng.next_below(3000) + 100;
    const KnapsackResult r = solve(items, cap, 16);  // very coarse
    EXPECT_LE(r.total_size, cap);
  }
}

TEST(Knapsack, DpMatchesOracleOnRandomInstances) {
  Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<KnapsackItem> items;
    const std::size_t n = 3 + rng.next_below(10);
    for (std::size_t i = 0; i < n; ++i) {
      items.push_back(KnapsackItem{rng.next_below(500) + 1,
                                   (rng.next_double() - 0.2) * 20.0});
    }
    const std::uint64_t cap = rng.next_below(1500) + 200;
    const KnapsackResult dp = solve(items, cap, 4096);
    const KnapsackResult oracle = solve_exact(items, cap);
    // Fine grid (4096 on cap <= 1700 -> granule 1): exact match expected.
    EXPECT_NEAR(dp.total_value, oracle.total_value, 1e-9)
        << "trial " << trial;
    EXPECT_LE(dp.total_size, cap);
  }
}

TEST(Knapsack, GreedyFeasibleAndDecent) {
  Rng rng(21);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<KnapsackItem> items;
    for (int i = 0; i < 15; ++i) {
      items.push_back(KnapsackItem{rng.next_below(400) + 1,
                                   rng.next_double() * 5.0});
    }
    const std::uint64_t cap = 800;
    const KnapsackResult greedy = solve_greedy(items, cap);
    const KnapsackResult oracle = solve_exact(items, cap);
    EXPECT_LE(greedy.total_size, cap);
    EXPECT_LE(greedy.total_value, oracle.total_value + 1e-9);
    // Density greedy is a decent approximation on random instances.
    EXPECT_GE(greedy.total_value, 0.5 * oracle.total_value - 1e-9);
  }
}

TEST(Knapsack, LargeInstanceRunsFast) {
  Rng rng(5);
  std::vector<KnapsackItem> items;
  for (int i = 0; i < 500; ++i) {
    items.push_back(
        KnapsackItem{(rng.next_below(1u << 26)) + 1, rng.next_double()});
  }
  const KnapsackResult r = solve(items, 1ULL << 28, 2048);
  EXPECT_LE(r.total_size, 1ULL << 28);
  EXPECT_GT(r.chosen.size(), 0u);
}

TEST(Knapsack, OracleRejectsHugeInstances) {
  std::vector<KnapsackItem> items(30, KnapsackItem{1, 1.0});
  EXPECT_THROW(solve_exact(items, 10), ContractError);
}

TEST(Knapsack, DeterministicTieBreaks) {
  const std::vector<KnapsackItem> items{{50, 5.0}, {50, 5.0}, {50, 5.0}};
  const KnapsackResult a = solve(items, 100, 2048);
  const KnapsackResult b = solve(items, 100, 2048);
  EXPECT_EQ(a.chosen, b.chosen);
  EXPECT_EQ(a.chosen.size(), 2u);
}

}  // namespace
}  // namespace tahoe::core
