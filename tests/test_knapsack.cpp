// Knapsack solvers: DP vs exhaustive oracle property tests.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/knapsack.hpp"

namespace tahoe::core {
namespace {

TEST(Knapsack, PicksBestSimpleCase) {
  const std::vector<KnapsackItem> items{
      {60, 10.0}, {100, 20.0}, {120, 30.0}};
  const KnapsackResult r = solve(items, 220, 2048);
  // Optimal: items 1+2 (value 50, size 220).
  EXPECT_DOUBLE_EQ(r.total_value, 50.0);
  EXPECT_EQ(r.chosen, (std::vector<std::size_t>{1, 2}));
}

TEST(Knapsack, SkipsNonPositiveAndOversized) {
  const std::vector<KnapsackItem> items{
      {10, -5.0}, {10, 0.0}, {1000, 99.0}, {10, 1.0}};
  const KnapsackResult r = solve(items, 100, 2048);
  EXPECT_EQ(r.chosen, (std::vector<std::size_t>{3}));
  EXPECT_DOUBLE_EQ(r.total_value, 1.0);
}

TEST(Knapsack, EmptyInputsAndZeroCapacity) {
  EXPECT_TRUE(solve({}, 100).chosen.empty());
  const std::vector<KnapsackItem> items{{10, 1.0}};
  EXPECT_TRUE(solve(items, 0).chosen.empty());
}

TEST(Knapsack, NeverExceedsCapacityUnderCoarseGrid) {
  // The grid rounds sizes *up*, so even a coarse grid stays feasible.
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<KnapsackItem> items;
    for (int i = 0; i < 12; ++i) {
      items.push_back(KnapsackItem{rng.next_below(1000) + 1,
                                   rng.next_double() * 10.0});
    }
    const std::uint64_t cap = rng.next_below(3000) + 100;
    const KnapsackResult r = solve(items, cap, 16);  // very coarse
    EXPECT_LE(r.total_size, cap);
  }
}

TEST(Knapsack, DpMatchesOracleOnRandomInstances) {
  Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<KnapsackItem> items;
    const std::size_t n = 3 + rng.next_below(10);
    for (std::size_t i = 0; i < n; ++i) {
      items.push_back(KnapsackItem{rng.next_below(500) + 1,
                                   (rng.next_double() - 0.2) * 20.0});
    }
    const std::uint64_t cap = rng.next_below(1500) + 200;
    const KnapsackResult dp = solve(items, cap, 4096);
    const KnapsackResult oracle = solve_exact(items, cap);
    // Fine grid (4096 on cap <= 1700 -> granule 1): exact match expected.
    EXPECT_NEAR(dp.total_value, oracle.total_value, 1e-9)
        << "trial " << trial;
    EXPECT_LE(dp.total_size, cap);
  }
}

TEST(Knapsack, GreedyFeasibleAndDecent) {
  Rng rng(21);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<KnapsackItem> items;
    for (int i = 0; i < 15; ++i) {
      items.push_back(KnapsackItem{rng.next_below(400) + 1,
                                   rng.next_double() * 5.0});
    }
    const std::uint64_t cap = 800;
    const KnapsackResult greedy = solve_greedy(items, cap);
    const KnapsackResult oracle = solve_exact(items, cap);
    EXPECT_LE(greedy.total_size, cap);
    EXPECT_LE(greedy.total_value, oracle.total_value + 1e-9);
    // Density greedy is a decent approximation on random instances.
    EXPECT_GE(greedy.total_value, 0.5 * oracle.total_value - 1e-9);
  }
}

TEST(Knapsack, LargeInstanceRunsFast) {
  Rng rng(5);
  std::vector<KnapsackItem> items;
  for (int i = 0; i < 500; ++i) {
    items.push_back(
        KnapsackItem{(rng.next_below(1u << 26)) + 1, rng.next_double()});
  }
  const KnapsackResult r = solve(items, 1ULL << 28, 2048);
  EXPECT_LE(r.total_size, 1ULL << 28);
  EXPECT_GT(r.chosen.size(), 0u);
}

TEST(Knapsack, OracleRejectsHugeInstances) {
  std::vector<KnapsackItem> items(30, KnapsackItem{1, 1.0});
  EXPECT_THROW(solve_exact(items, 10), ContractError);
}

// ---- Multi-choice knapsack (N-tier placement). ----

namespace {

/// Recompute a MultiTierResult's value and per-tier usage from its
/// assignment, so tests catch solvers whose bookkeeping disagrees with
/// their choices.
void check_consistent(std::span<const MultiTierItem> items,
                      std::span<const std::uint64_t> capacities,
                      const MultiTierResult& r) {
  ASSERT_EQ(r.assignment.size(), items.size());
  ASSERT_EQ(r.tier_sizes.size(), capacities.size());
  double value = 0.0;
  std::vector<std::uint64_t> used(capacities.size(), 0);
  for (std::size_t i = 0; i < items.size(); ++i) {
    const int t = r.assignment[i];
    if (t < 0) continue;
    ASSERT_LT(static_cast<std::size_t>(t), capacities.size());
    value += items[i].values[static_cast<std::size_t>(t)];
    used[static_cast<std::size_t>(t)] += items[i].size;
  }
  EXPECT_NEAR(value, r.total_value, 1e-9);
  for (std::size_t t = 0; t < capacities.size(); ++t) {
    EXPECT_LE(used[t], capacities[t]) << "tier " << t;
    EXPECT_EQ(used[t], r.tier_sizes[t]) << "tier " << t;
  }
}

}  // namespace

TEST(MultiKnapsack, OneTierDegeneratesToZeroOne) {
  // With one constrained tier the MCKP must find the same optimum as the
  // 0/1 solver (assignments may differ under ties; totals may not).
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<KnapsackItem> flat;
    std::vector<MultiTierItem> items;
    const std::size_t n = 3 + rng.next_below(9);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t size = rng.next_below(180) + 1;
      const double value = (rng.next_double() - 0.2) * 20.0;
      flat.push_back(KnapsackItem{size, value});
      items.push_back(MultiTierItem{size, {value}});
    }
    const std::uint64_t cap = rng.next_below(350) + 50;
    const std::uint64_t caps[]{cap};
    const MultiTierResult multi = solve_multi(items, caps);
    const KnapsackResult flat_dp = solve(flat, cap, 4096);
    EXPECT_NEAR(multi.total_value, flat_dp.total_value, 1e-9)
        << "trial " << trial;
    check_consistent(items, caps, multi);
  }
}

TEST(MultiKnapsack, PicksBestTierPerItem) {
  // Item 0 is worth more on tier 1, item 1 on tier 0; both fit.
  const std::vector<MultiTierItem> items{
      {50, {1.0, 9.0}},
      {50, {8.0, 2.0}},
  };
  const std::uint64_t caps[]{64, 64};
  const MultiTierResult r = solve_multi(items, caps);
  EXPECT_EQ(r.assignment, (std::vector<int>{1, 0}));
  EXPECT_DOUBLE_EQ(r.total_value, 17.0);
}

TEST(MultiKnapsack, NonPositiveChoicesStayOnCapacityTier) {
  const std::vector<MultiTierItem> items{
      {10, {-1.0, 0.0}},
      {10, {0.0, -5.0}},
  };
  const std::uint64_t caps[]{100, 100};
  const MultiTierResult r = solve_multi(items, caps);
  EXPECT_EQ(r.assignment, (std::vector<int>{-1, -1}));
  EXPECT_DOUBLE_EQ(r.total_value, 0.0);
}

TEST(MultiKnapsack, TwoTierDpMatchesOracleOnRandomInstances) {
  // Capacities <= 400 with a 2^18 state budget give granule-1 grids, so
  // the DP is exact and must match the brute-force enumeration of all
  // 3^n tier assignments.
  Rng rng(29);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<MultiTierItem> items;
    const std::size_t n = 3 + rng.next_below(8);
    for (std::size_t i = 0; i < n; ++i) {
      items.push_back(MultiTierItem{
          rng.next_below(150) + 1,
          {(rng.next_double() - 0.25) * 10.0,
           (rng.next_double() - 0.25) * 10.0}});
    }
    const std::uint64_t caps[]{rng.next_below(300) + 50,
                               rng.next_below(300) + 50};
    const MultiTierResult dp = solve_multi(items, caps);
    const MultiTierResult oracle = solve_multi_exact(items, caps);
    EXPECT_NEAR(dp.total_value, oracle.total_value, 1e-9)
        << "trial " << trial;
    check_consistent(items, caps, dp);
    check_consistent(items, caps, oracle);
  }
}

TEST(MultiKnapsack, ThreeTierDpMatchesOracle) {
  // Three constrained tiers (a 4-tier machine). Caps <= 60 keep the
  // granule at 1 under the budget's ~63-granule per-tier grid.
  Rng rng(41);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<MultiTierItem> items;
    const std::size_t n = 3 + rng.next_below(6);
    for (std::size_t i = 0; i < n; ++i) {
      items.push_back(MultiTierItem{
          rng.next_below(25) + 1,
          {(rng.next_double() - 0.25) * 10.0,
           (rng.next_double() - 0.25) * 10.0,
           (rng.next_double() - 0.25) * 10.0}});
    }
    const std::uint64_t caps[]{rng.next_below(50) + 10,
                               rng.next_below(50) + 10,
                               rng.next_below(50) + 10};
    const MultiTierResult dp = solve_multi(items, caps);
    const MultiTierResult oracle = solve_multi_exact(items, caps);
    EXPECT_NEAR(dp.total_value, oracle.total_value, 1e-9)
        << "trial " << trial;
    check_consistent(items, caps, dp);
  }
}

TEST(MultiKnapsack, NeverExceedsAnyTierCapacityUnderCoarseGrid) {
  // Big byte sizes and a tiny state budget force coarse granules; the
  // round-up quantization must keep every tier feasible anyway.
  Rng rng(57);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<MultiTierItem> items;
    for (int i = 0; i < 10; ++i) {
      items.push_back(MultiTierItem{
          (rng.next_below(1u << 24)) + 1,
          {rng.next_double() * 5.0, rng.next_double() * 5.0}});
    }
    const std::uint64_t caps[]{(1ULL << 25) + rng.next_below(1u << 24),
                               (1ULL << 24) + rng.next_below(1u << 23)};
    const MultiTierResult r = solve_multi(items, caps, /*state_budget=*/256);
    check_consistent(items, caps, r);
  }
}

TEST(MultiKnapsack, DeterministicAcrossCalls) {
  const std::vector<MultiTierItem> items{
      {50, {5.0, 5.0}}, {50, {5.0, 5.0}}, {50, {5.0, 5.0}}};
  const std::uint64_t caps[]{100, 50};
  const MultiTierResult a = solve_multi(items, caps);
  const MultiTierResult b = solve_multi(items, caps);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.total_value, 15.0);  // all three fit across the tiers
}

TEST(MultiKnapsack, OracleRejectsHugeInstances) {
  std::vector<MultiTierItem> items(30, MultiTierItem{1, {1.0, 1.0, 1.0}});
  const std::uint64_t caps[]{10, 10, 10};
  EXPECT_THROW(solve_multi_exact(items, caps), ContractError);
}

TEST(Knapsack, DeterministicTieBreaks) {
  const std::vector<KnapsackItem> items{{50, 5.0}, {50, 5.0}, {50, 5.0}};
  const KnapsackResult a = solve(items, 100, 2048);
  const KnapsackResult b = solve(items, 100, 2048);
  EXPECT_EQ(a.chosen, b.chosen);
  EXPECT_EQ(a.chosen.size(), 2u);
}

}  // namespace
}  // namespace tahoe::core
