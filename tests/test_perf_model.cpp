// Performance-model equations (Eqs. (1)-(6)) and sensitivity thresholds.
#include "common/assert.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"
#include "core/perf_model.hpp"

namespace tahoe::core {
namespace {

constexpr std::uint64_t kInterval = 1000;

memsim::SampledCounts counts(std::uint64_t loads, std::uint64_t stores,
                             std::uint64_t with_access = 900,
                             std::uint64_t total = 1000) {
  memsim::SampledCounts c;
  c.loads = loads;
  c.stores = stores;
  c.samples_with_access = with_access;
  c.total_samples = total;
  return c;
}

PerfModel model(double bw_peak = 5e9, bool optane = false) {
  ModelConstants mc;
  mc.cf_bw = 1.0;
  mc.cf_lat = 1.0;
  mc.bw_peak_nvm = bw_peak;
  const memsim::DeviceModel dram = memsim::devices::dram(kGiB);
  const memsim::DeviceModel nvm =
      optane ? memsim::devices::optane_pm(kGiB)
             : memsim::devices::nvm_bw_fraction(dram, 0.5, kGiB);
  return PerfModel(mc, dram, nvm, gbps(6.0), kInterval);
}

TEST(PerfModel, BandwidthEstimateEq1) {
  const PerfModel m = model();
  // 10k sampled accesses * 1000 interval * 64 B = 640 MB over 0.9 * 1 s.
  const double bw = m.bandwidth_estimate(counts(6000, 4000), 1.0);
  EXPECT_NEAR(bw, 10'000.0 * 1000.0 * 64.0 / 0.9, 1.0);
}

TEST(PerfModel, BandwidthEstimateDegenerateInputs) {
  const PerfModel m = model();
  EXPECT_DOUBLE_EQ(m.bandwidth_estimate(counts(100, 0), 0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.bandwidth_estimate(counts(100, 0, 0, 1000), 1.0), 0.0);
}

TEST(PerfModel, ClassificationThresholds) {
  const PerfModel m = model(/*bw_peak=*/1e9);
  EXPECT_EQ(m.classify(0.9e9), Sensitivity::Bandwidth);   // >= 80%
  EXPECT_EQ(m.classify(0.8e9), Sensitivity::Bandwidth);
  EXPECT_EQ(m.classify(0.5e9), Sensitivity::Mixed);
  EXPECT_EQ(m.classify(0.05e9), Sensitivity::Latency);    // <= 10%
}

TEST(PerfModel, BenefitBwEq2MatchesClosedForm) {
  const PerfModel m = model();
  const memsim::SampledCounts c = counts(1000, 0);
  const double est = 1000.0 * 1000.0 * 64.0;  // bytes
  const double expected = est / m.constants().cf_bw / 5e9 - est / 10e9;
  // nvm read bw = 5 GB/s (half of DRAM's 10 GB/s); cf = 1.
  EXPECT_NEAR(m.benefit_bw(c, false), expected, expected * 1e-9);
  // Loads only: distinguishing read/write changes nothing.
  EXPECT_NEAR(m.benefit_bw(c, true), m.benefit_bw(c, false), 1e-12);
}

TEST(PerfModel, ReadWriteDistinctionMattersOnAsymmetricNvm) {
  const PerfModel m = model(5e9, /*optane=*/true);
  const memsim::SampledCounts wr = counts(0, 1000);
  // Optane write bw (1.3 GB/s) << read bw (3.9 GB/s): Eq. (4) sees a much
  // larger benefit than Eq. (2), which charges writes at the read rate.
  EXPECT_GT(m.benefit_bw(wr, true), 2.0 * m.benefit_bw(wr, false));
  // Latency: Optane writes are *faster* than reads (buffered), so the
  // distinction lowers the predicted benefit.
  EXPECT_LT(m.benefit_lat(wr, true), m.benefit_lat(wr, false));
}

TEST(PerfModel, BenefitLatEq3MatchesClosedForm) {
  const memsim::DeviceModel dram = memsim::devices::dram(kGiB);
  ModelConstants mc;
  mc.bw_peak_nvm = 5e9;
  const PerfModel m(mc, dram,
                    memsim::devices::nvm_lat_multiple(dram, 4.0, kGiB),
                    gbps(6.0), kInterval);
  const memsim::SampledCounts c = counts(500, 0);
  const double est = 500.0 * 1000.0;
  const double expected = est * (4.0 - 1.0) * dram.read_lat_s;
  EXPECT_NEAR(m.benefit_lat(c, false), expected, expected * 1e-9);
}

TEST(PerfModel, MixedTakesMaxOfBothModels) {
  const PerfModel m = model(/*bw_peak=*/1e9);
  // Mid-range bandwidth estimate -> Mixed -> max of the two benefits.
  const memsim::SampledCounts c = counts(700, 0, 900, 1000);
  const double b = m.benefit(c, 0.1, false);
  EXPECT_NEAR(b, std::max(m.benefit_bw(c, false), m.benefit_lat(c, false)),
              1e-12);
}

TEST(PerfModel, ZeroAccessesZeroBenefit) {
  const PerfModel m = model();
  EXPECT_DOUBLE_EQ(m.benefit(counts(0, 0), 1.0, true), 0.0);
}

TEST(PerfModel, MovementCostEq6) {
  const PerfModel m = model();
  // Toward DRAM the copy is bottlenecked by the NVM read side (5 GB/s,
  // below the 6 GB/s engine): 5 GB take exactly 1 s.
  const std::uint64_t bytes = 5'000'000'000ULL;
  EXPECT_NEAR(m.copy_seconds(bytes, true), 1.0, 1e-6);
  EXPECT_NEAR(m.movement_cost(bytes, 0.4, true), 0.6, 1e-6);
  // Fully overlapped: zero cost, never negative.
  EXPECT_DOUBLE_EQ(m.movement_cost(bytes, 2.0, true), 0.0);
}

TEST(PerfModel, CopyCostIsDirectionAwareOnAsymmetricNvm) {
  const PerfModel m = model(5e9, /*optane=*/true);
  const std::uint64_t bytes = 1'000'000'000ULL;
  // Toward NVM the Optane write bandwidth (1.3 GB/s) bottlenecks; toward
  // DRAM its read bandwidth (3.9 GB/s) does.
  EXPECT_GT(m.copy_seconds(bytes, /*to_dram=*/false),
            2.0 * m.copy_seconds(bytes, /*to_dram=*/true));
}

TEST(PerfModel, ConstantFactorsScaleBenefits) {
  ModelConstants mc;
  mc.cf_bw = 0.5;
  mc.cf_lat = 2.0;
  mc.bw_peak_nvm = 5e9;
  const memsim::DeviceModel dram = memsim::devices::dram(kGiB);
  const PerfModel m(mc, dram,
                    memsim::devices::nvm_bw_fraction(dram, 0.5, kGiB),
                    gbps(6.0), kInterval);
  const PerfModel base = model();
  const memsim::SampledCounts c = counts(1000, 200);
  EXPECT_NEAR(m.benefit_bw(c, true), 0.5 * base.benefit_bw(c, true), 1e-12);
  EXPECT_NEAR(m.benefit_lat(c, true), 2.0 * base.benefit_lat(c, true), 1e-12);
}

TEST(PerfModel, ContractChecks) {
  ModelConstants mc;
  mc.t1 = 0.1;
  mc.t2 = 0.8;  // inverted
  const memsim::DeviceModel dram = memsim::devices::dram(kGiB);
  EXPECT_THROW(
      PerfModel(mc, dram, dram, gbps(6.0), kInterval), ContractError);
  const PerfModel unpeaked = [] {
    ModelConstants c;
    c.bw_peak_nvm = 0.0;
    return PerfModel(c, memsim::devices::dram(kGiB),
                     memsim::devices::dram(kGiB), gbps(6.0), kInterval);
  }();
  EXPECT_THROW(unpeaked.classify(1e9), ContractError);
}

}  // namespace
}  // namespace tahoe::core
