// tahoe_inspect: post-run analyzer for Tahoe-TP trace/report artifacts.
//
//   tahoe_inspect --trace=run.trace.json
//                 [--report=run.report.json] [--explain=run.explain.json]
//                 [--format=table|json] [--out=analysis.json]
//   tahoe_inspect --timeline=run.telemetry.jsonl [--format=table|json]
//   tahoe_inspect --report=run.report.json --segment-stats
//                 [--format=table|json]
//
// Loads the Chrome trace (plus optional run report and --explain-out
// documents), computes the DAG critical path, migration-overlap
// efficiency, per-worker utilization and the placement rationale of the
// final plan, and renders them as aligned tables (default) or as one
// deterministic JSON object suitable for golden comparisons.
//
// --timeline mode instead reads a --telemetry-out JSONL stream and renders
// per-interval task/byte rates with phase boundaries and SLO-breach
// markers inline.
//
// --segment-stats mode reads only the report and renders the storage
// layer's hms.segment.* digest: slot-table occupancy, segment metadata
// bytes, allocator freelist levels and per-arena range-list footprints.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "common/flags.hpp"
#include "trace/analyze.hpp"
#include "trace/json.hpp"

namespace {

std::optional<tahoe::trace::JsonValue> load_json(const std::string& path,
                                                 const char* what) {
  std::ifstream is(path);
  if (!is) {
    std::cerr << "tahoe_inspect: cannot open " << what << " file '" << path
              << "'\n";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  try {
    return tahoe::trace::parse_json(buf.str());
  } catch (const std::exception& e) {
    std::cerr << "tahoe_inspect: failed to parse " << what << " '" << path
              << "': " << e.what() << '\n';
    return std::nullopt;
  }
}

}  // namespace

int main(int argc, char** argv) {
  tahoe::Flags flags;
  flags.define_string("trace", "", "Chrome trace JSON (required unless "
                                   "--timeline is given)");
  flags.define_string("report", "", "run report JSON (optional)");
  flags.define_string("explain", "", "planner --explain-out JSON (optional)");
  flags.define_string("timeline", "",
                      "telemetry JSONL stream (--telemetry-out); renders "
                      "interval rates, phases and breach markers instead of "
                      "the trace analysis");
  flags.define_bool("segment-stats", false,
                    "render the hms.segment.* storage-layer digest from "
                    "--report (slot table, metadata bytes, freelists, "
                    "per-arena range lists) instead of the trace analysis");
  flags.define_string("format", "table", "output format: table or json");
  flags.define_string("out", "", "write output to this file instead of stdout");

  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n' << flags.usage(argv[0]);
    return 2;
  }
  const std::string trace_path = flags.get_string("trace");
  const std::string timeline_path = flags.get_string("timeline");
  const std::string format = flags.get_string("format");
  const bool segment_stats = flags.get_bool("segment-stats");
  if (trace_path.empty() && timeline_path.empty() && !segment_stats) {
    std::cerr << "tahoe_inspect: --trace, --timeline or --segment-stats is "
                 "required\n"
              << flags.usage(argv[0]);
    return 2;
  }
  if (format != "table" && format != "json") {
    std::cerr << "tahoe_inspect: --format must be 'table' or 'json'\n";
    return 2;
  }

  if (segment_stats) {
    if (flags.get_string("report").empty()) {
      std::cerr << "tahoe_inspect: --segment-stats requires --report\n";
      return 2;
    }
    const auto report = load_json(flags.get_string("report"), "report");
    if (!report) return 1;
    const tahoe::trace::SegmentStats stats =
        tahoe::trace::analyze_segment_stats(*report);
    std::ofstream file_out;
    std::ostream* os = &std::cout;
    if (!flags.get_string("out").empty()) {
      file_out.open(flags.get_string("out"));
      if (!file_out) {
        std::cerr << "tahoe_inspect: cannot open output file '"
                  << flags.get_string("out") << "'\n";
        return 1;
      }
      os = &file_out;
    }
    if (format == "json") {
      tahoe::trace::write_segment_stats_json(*os, stats);
    } else {
      tahoe::trace::write_segment_stats_table(*os, stats);
    }
    return 0;
  }

  std::ofstream timeline_file_out;
  if (!timeline_path.empty()) {
    std::ifstream is(timeline_path);
    if (!is) {
      std::cerr << "tahoe_inspect: cannot open timeline file '"
                << timeline_path << "'\n";
      return 1;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    tahoe::trace::Timeline timeline;
    try {
      timeline = tahoe::trace::analyze_timeline(buf.str());
    } catch (const std::exception& e) {
      std::cerr << "tahoe_inspect: failed to parse timeline '"
                << timeline_path << "': " << e.what() << '\n';
      return 1;
    }
    std::ostream* os = &std::cout;
    if (!flags.get_string("out").empty()) {
      timeline_file_out.open(flags.get_string("out"));
      if (!timeline_file_out) {
        std::cerr << "tahoe_inspect: cannot open output file '"
                  << flags.get_string("out") << "'\n";
        return 1;
      }
      os = &timeline_file_out;
    }
    if (format == "json") {
      tahoe::trace::write_timeline_json(*os, timeline);
    } else {
      tahoe::trace::write_timeline_table(*os, timeline);
    }
    return 0;
  }

  const auto trace_doc = load_json(trace_path, "trace");
  if (!trace_doc) return 1;

  std::optional<tahoe::trace::JsonValue> report;
  if (!flags.get_string("report").empty()) {
    report = load_json(flags.get_string("report"), "report");
    if (!report) return 1;
  }
  std::optional<tahoe::trace::JsonValue> explain;
  if (!flags.get_string("explain").empty()) {
    explain = load_json(flags.get_string("explain"), "explain");
    if (!explain) return 1;
  }

  const tahoe::trace::Analysis analysis =
      tahoe::trace::analyze(*trace_doc, report ? &*report : nullptr,
                            explain ? &*explain : nullptr);

  std::ofstream file_out;
  std::ostream* os = &std::cout;
  if (!flags.get_string("out").empty()) {
    file_out.open(flags.get_string("out"));
    if (!file_out) {
      std::cerr << "tahoe_inspect: cannot open output file '"
                << flags.get_string("out") << "'\n";
      return 1;
    }
    os = &file_out;
  }
  if (format == "json") {
    tahoe::trace::write_analysis_json(*os, analysis);
  } else {
    tahoe::trace::write_analysis_tables(*os, analysis);
  }
  return 0;
}
