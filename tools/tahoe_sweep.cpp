// Scenario-grid sweep driver: fans (workload x policy x NVM spec) cells
// across child processes and merges their outputs into one comparison
// artifact.
//
//   tools/tahoe_sweep --out sweep.json [--workloads cg,mg]
//       [--policies tahoe,static-dram,static-nvm] [--nvm-specs bw:0.5]
//       [--scale test|bench] [--dram-mib 256] [--jobs 4] [--keep-cells]
//       [--telemetry-interval 0.01] [--slo-rules "counter:...  < 5"]
//
// Each cell forks a child that runs one (workload, policy, nvm) scenario
// through the bench runners with latency histograms enabled, appending its
// RunReport JSON line (the same v2/v3/v4 schema every bench emits) to a
// per-cell file plus a full-bucket snapshot of every histogram — the
// report JSON carries only count/percentile digests, which cannot be
// merged, so the buckets travel separately. The parent throttles to
// --jobs concurrent children, then merges:
//
//   * every cell's report line, spliced verbatim under "runs" (schema
//     versions preserved — consumers see exactly what the bench wrote);
//   * histograms, bucket-wise across all cells (HistogramSnapshot::merge
//     semantics), re-digested after the merge;
//   * a "comparison" section normalizing each policy's steady-state
//     iteration time against the cell's baseline policy (static-dram when
//     present, else the fastest policy in the cell).
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/flags.hpp"
#include "trace/analyze.hpp"
#include "trace/counters.hpp"
#include "trace/flight.hpp"
#include "trace/histogram.hpp"
#include "trace/json.hpp"
#include "trace/telemetry.hpp"

namespace {

using namespace tahoe;

struct Cell {
  std::string workload;
  std::string policy;
  std::string nvm_spec;
  std::string report_path;
  std::string hist_path;
  std::string telemetry_path;  ///< cell-prefixed telemetry JSONL ("" = off)
  std::string flight_path;     ///< cell-prefixed flight dump destination
};

/// Per-cell telemetry settings forwarded into the children.
struct SweepTelemetry {
  double interval = 0.0;  ///< sampling cadence in seconds; 0 disables
  std::string rules;      ///< --slo-rules pass-through
  bool enabled() const { return interval > 0.0; }
};

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Child body: run one scenario, write the cell's artifacts, never return.
[[noreturn]] void run_cell(const Cell& cell, const bench::BenchConfig& base,
                           const SweepTelemetry& tele) {
  trace::set_histograms_enabled(true);
  if (tele.enabled()) {
    trace::FlightRecorder::Config fc;
    fc.out_path = cell.flight_path;
    trace::flight().configure(fc);
    trace::TelemetryConfig tc;
    tc.out_path = cell.telemetry_path;
    tc.interval_seconds = tele.interval;
    tc.rules = trace::parse_slo_rules(tele.rules);
    trace::telemetry().configure(tc);
  }
  bench::BenchConfig config = base;
  config.nvm_spec = cell.nvm_spec;
  config.report_json = cell.report_path;
  config.attribution = true;

  core::RunReport report;
  if (cell.policy == "tahoe") {
    report = bench::run_tahoe(cell.workload, config);
  } else if (cell.policy == "static-dram") {
    report = bench::run_static(cell.workload, config, fastest_tier(config));
  } else if (cell.policy == "static-nvm") {
    report = bench::run_static(cell.workload, config, capacity_tier(config));
  } else if (cell.policy == "xmem") {
    report = bench::run_xmem(cell.workload, config);
  } else if (cell.policy == "reactive") {
    report = bench::run_reactive(cell.workload, config);
  } else {
    std::cerr << "unknown policy: " << cell.policy << "\n";
    std::_Exit(2);
  }
  (void)report;  // the runner already appended it to report_path
  // _Exit skips destructors: flush the telemetry stream by hand.
  trace::telemetry().shutdown();

  std::ofstream hist(cell.hist_path);
  trace::JsonWriter w(hist);
  w.begin_object().key("histograms").begin_object();
  for (const auto& [name, snap] :
       trace::global_counters().snapshot_histograms()) {
    w.key(name).begin_object();
    w.kv("sum", snap.sum).kv("max", snap.max);
    w.key("buckets").begin_array();
    for (const std::uint64_t b : snap.buckets) w.value(b);
    w.end_array().end_object();
  }
  w.end_object().end_object();
  hist << "\n";
  // _Exit skips stream destructors, so flush explicitly before leaving.
  hist.close();
  if (!hist) std::_Exit(3);
  std::_Exit(0);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// First non-empty line of a JSONL file (each cell runs one scenario, so
/// its report file holds exactly one line).
std::string first_line(const std::string& text) {
  const std::size_t end = text.find('\n');
  std::string line =
      end == std::string::npos ? text : text.substr(0, end);
  return line;
}

trace::HistogramSnapshot parse_snapshot(const trace::JsonValue& v) {
  trace::HistogramSnapshot snap;
  snap.sum = static_cast<std::uint64_t>(v.at("sum").number);
  snap.max = static_cast<std::uint64_t>(v.at("max").number);
  const auto& buckets = v.at("buckets").array;
  for (std::size_t b = 0;
       b < buckets.size() && b < trace::HistogramSnapshot::kBuckets; ++b) {
    snap.buckets[b] = static_cast<std::uint64_t>(buckets[b].number);
  }
  return snap;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define_string("out", "sweep.json", "merged comparison artifact path");
  flags.define_string("workloads", "cg,mg", "comma-separated workload names");
  flags.define_string("policies", "tahoe,static-dram,static-nvm",
                      "comma-separated policies (tahoe, static-dram, "
                      "static-nvm, xmem, reactive)");
  flags.define_string("nvm-specs", "bw:0.5",
                      "comma-separated NVM specs (bw:<f>, lat:<m>, optane)");
  flags.define_string("scale", "test", "problem size: test or bench");
  flags.define_int("dram-mib", 256, "DRAM capacity in MiB");
  flags.define_int("jobs", 4, "max concurrent child processes");
  flags.define_bool("keep-cells", false,
                    "keep the per-cell intermediate files");
  flags.define_double("telemetry-interval", 0.0,
                      "per-cell telemetry cadence in virtual seconds "
                      "(0 = telemetry off)");
  flags.define_string("slo-rules", "",
                      "comma-separated SLO watchdog rules evaluated inside "
                      "every cell (see --telemetry docs)");
  flags.parse(argc, argv);

  const std::string out = flags.get_string("out");
  SweepTelemetry tele;
  tele.interval = flags.get_double("telemetry-interval");
  tele.rules = flags.get_string("slo-rules");
  bench::BenchConfig base;
  base.dram_capacity =
      static_cast<std::uint64_t>(flags.get_int("dram-mib")) * kMiB;
  base.scale = flags.get_string("scale") == "bench" ? workloads::Scale::Bench
                                                    : workloads::Scale::Test;

  std::vector<Cell> cells;
  for (const std::string& nvm : split_csv(flags.get_string("nvm-specs"))) {
    for (const std::string& w : split_csv(flags.get_string("workloads"))) {
      for (const std::string& p : split_csv(flags.get_string("policies"))) {
        Cell cell;
        cell.workload = w;
        cell.policy = p;
        cell.nvm_spec = nvm;
        const std::string stem = out + ".cell" + std::to_string(cells.size());
        cell.report_path = stem + ".report.jsonl";
        cell.hist_path = stem + ".hist.json";
        if (tele.enabled()) {
          cell.telemetry_path = stem + ".telemetry.jsonl";
          cell.flight_path = stem + ".flight.json";
        }
        cells.push_back(std::move(cell));
      }
    }
  }
  if (cells.empty()) {
    std::cerr << "empty scenario grid\n";
    return 1;
  }

  // Fan out, at most --jobs children in flight.
  const auto jobs = static_cast<std::size_t>(flags.get_int("jobs"));
  std::map<pid_t, std::size_t> running;
  std::vector<bool> cell_failed(cells.size(), false);
  const auto reap_one = [&] {
    int status = 0;
    const pid_t pid = wait(&status);
    if (pid < 0) return;
    const auto it = running.find(pid);
    if (it == running.end()) return;
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      const Cell& c = cells[it->second];
      std::cerr << "cell failed: " << c.workload << "/" << c.policy << "/"
                << c.nvm_spec << "\n";
      cell_failed[it->second] = true;
    }
    running.erase(it);
  };
  for (std::size_t i = 0; i < cells.size(); ++i) {
    while (running.size() >= jobs) reap_one();
    const pid_t pid = fork();
    if (pid < 0) {
      std::cerr << "fork failed\n";
      return 1;
    }
    if (pid == 0) run_cell(cells[i], base, tele);  // never returns
    running.emplace(pid, i);
  }
  while (!running.empty()) reap_one();

  // Merge: raw report lines, bucket-wise histograms, and the parsed values
  // the comparison section needs. A failed cell (non-zero child exit, or a
  // child that died before writing its report) must not be silently
  // dropped — and the partial artifacts it may have left behind must not
  // be merged as if the cell succeeded. It contributes an explicit
  // `"failed":true` run entry instead, the artifact carries a top-level
  // failed_cells count, and the sweep still exits non-zero.
  struct Run {
    std::size_t cell = 0;
    double steady_seconds = 0.0;
  };
  std::vector<std::string> raw_runs;
  std::vector<Run> runs;
  std::map<std::string, trace::HistogramSnapshot> merged;
  std::size_t failed_cells = 0;
  std::size_t slo_breached_cells = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const std::string line = first_line(read_file(cells[i].report_path));
    if (line.empty() && !cell_failed[i]) {
      std::cerr << "cell produced no report: " << cells[i].report_path
                << "\n";
      cell_failed[i] = true;
    }
    if (cell_failed[i]) {
      ++failed_cells;
      std::ostringstream failed_entry;
      {
        trace::JsonWriter w(failed_entry);
        w.begin_object()
            .kv("workload", cells[i].workload)
            .kv("policy", cells[i].policy)
            .kv("nvm", cells[i].nvm_spec)
            .kv("failed", true)
            .end_object();
      }
      raw_runs.push_back(failed_entry.str());
    } else {
      const trace::JsonValue report = trace::parse_json(line);
      Run run;
      run.cell = i;
      run.steady_seconds = report.at("steady_iteration_seconds").number;
      runs.push_back(run);
      raw_runs.push_back(line);

      const trace::JsonValue hist =
          trace::parse_json(read_file(cells[i].hist_path));
      for (const auto& [name, snap] : hist.at("histograms").object) {
        merged[name].merge(parse_snapshot(snap));
      }

      // Telemetry and flight artifacts stay behind as cell-prefixed files
      // regardless of --keep-cells — they are the sweep's observability
      // record, not intermediates. Here we only scan for SLO breaches.
      if (tele.enabled()) {
        try {
          const trace::Timeline tl =
              trace::analyze_timeline(read_file(cells[i].telemetry_path));
          if (!tl.breaches.empty()) ++slo_breached_cells;
        } catch (const std::exception& e) {
          std::cerr << "cell telemetry unreadable: "
                    << cells[i].telemetry_path << ": " << e.what() << "\n";
        }
      }
    }
    if (!flags.get_bool("keep-cells")) {
      std::remove(cells[i].report_path.c_str());
      std::remove(cells[i].hist_path.c_str());
    }
  }

  std::ofstream os(out);
  os << "{\"schema\":\"tahoe_sweep_v1\",\"cells\":" << cells.size()
     << ",\"failed_cells\":" << failed_cells
     << ",\"slo_breached_cells\":" << slo_breached_cells << ",\"runs\":[";
  for (std::size_t i = 0; i < raw_runs.size(); ++i) {
    if (i != 0) os << ",";
    os << raw_runs[i];
  }
  os << "],";

  // JsonWriter emits one complete value per instance, so each merged
  // section gets its own writer spliced in behind a hand-written key.
  os << "\"histograms\":";
  {
    trace::JsonWriter w(os);
    w.begin_object();
    for (const auto& [name, snap] : merged) {
      w.key(name).begin_object();
      w.kv("count", snap.count())
          .kv("sum", snap.sum)
          .kv("max", snap.max)
          .kv("p50", snap.p50())
          .kv("p90", snap.p90())
          .kv("p99", snap.p99());
      w.key("buckets").begin_array();
      for (const std::uint64_t b : snap.buckets) w.value(b);
      w.end_array().end_object();
    }
    w.end_object();
  }

  // Comparison: group runs by (workload, nvm); normalize against
  // static-dram when the cell grid includes it, else the fastest run.
  os << ",\"comparison\":";
  {
    trace::JsonWriter w(os);
    w.begin_array();
    std::map<std::pair<std::string, std::string>, std::vector<Run>> groups;
    for (const Run& r : runs) {
      groups[{cells[r.cell].workload, cells[r.cell].nvm_spec}].push_back(r);
    }
    for (const auto& [key, group] : groups) {
      double baseline = 0.0;
      std::string baseline_policy;
      for (const Run& r : group) {
        if (cells[r.cell].policy == "static-dram") {
          baseline = r.steady_seconds;
          baseline_policy = "static-dram";
        }
      }
      if (baseline <= 0.0) {
        for (const Run& r : group) {
          if (baseline <= 0.0 || r.steady_seconds < baseline) {
            baseline = r.steady_seconds;
            baseline_policy = cells[r.cell].policy;
          }
        }
      }
      w.begin_object()
          .kv("workload", key.first)
          .kv("nvm", key.second)
          .kv("baseline_policy", baseline_policy);
      w.key("rows").begin_array();
      for (const Run& r : group) {
        w.begin_object()
            .kv("policy", cells[r.cell].policy)
            .kv("steady_seconds", r.steady_seconds)
            .kv("normalized",
                baseline > 0.0 ? r.steady_seconds / baseline : 0.0)
            .end_object();
      }
      w.end_array().end_object();
    }
    w.end_array();
  }
  os << "}\n";
  if (!os) {
    std::cerr << "failed writing " << out << "\n";
    return 1;
  }
  std::cout << "sweep: " << cells.size() << " cells";
  if (failed_cells != 0) std::cout << " (" << failed_cells << " failed)";
  if (slo_breached_cells != 0) {
    std::cout << " (" << slo_breached_cells << " SLO-breached)";
  }
  std::cout << " -> " << out << "\n";
  return failed_cells == 0 ? 0 : 1;
}
