// Heat diffusion example: a real 2-D Jacobi solver running its kernels on
// real memory through the real executor, with helper-thread migrations
// driven by a Tahoe decision — then the same application on the simulated
// timing path for the DRAM/NVM comparison.
#include <iostream>

#include "common/units.hpp"
#include "core/calibration.hpp"
#include "core/planner.hpp"
#include "core/runtime.hpp"
#include "workloads/heat.hpp"

int main() {
  using namespace tahoe;

  core::RuntimeConfig config;
  config.machine = memsim::machines::platform_a(
      memsim::devices::nvm_bw_fraction(memsim::devices::dram(64 * kMiB), 0.5,
                                       4 * kGiB),
      64 * kMiB);

  // ---- real execution: kernels, registry, helper-thread migration ----
  {
    config.backing = hms::Backing::Real;
    core::Runtime runtime(config);
    workloads::HeatApp app(
        workloads::HeatApp::config_for(workloads::Scale::Test));
    const bool ok = runtime.run_real(app, /*schedule=*/{}, 4);
    std::cout << "real 2-D Jacobi run: "
              << (ok ? "converging (verify passed)" : "FAILED") << "\n";
  }

  // ---- simulated timing: DRAM-only vs NVM-only vs Tahoe ----
  config.backing = hms::Backing::Virtual;
  core::Runtime runtime(config);
  workloads::HeatApp dram_app(
      workloads::HeatApp::config_for(workloads::Scale::Test));
  workloads::HeatApp nvm_app(
      workloads::HeatApp::config_for(workloads::Scale::Test));
  workloads::HeatApp tahoe_app(
      workloads::HeatApp::config_for(workloads::Scale::Test));

  const core::RunReport dram = runtime.run_static(dram_app, memsim::kDram);
  const core::RunReport nvm = runtime.run_static(nvm_app, memsim::kNvm);
  core::TahoePolicy policy(core::calibrate(runtime.machine()).to_constants());
  const core::RunReport tahoe = runtime.run(tahoe_app, policy);

  std::cout << "simulated steady-state iteration time\n"
            << "  DRAM-only: " << dram.steady_iteration_seconds() << " s\n"
            << "  NVM-only : " << nvm.steady_iteration_seconds() << " s ("
            << nvm.steady_iteration_seconds() /
                   dram.steady_iteration_seconds()
            << "x)\n"
            << "  Tahoe    : " << tahoe.steady_iteration_seconds() << " s ("
            << tahoe.steady_iteration_seconds() /
                   dram.steady_iteration_seconds()
            << "x, strategy " << tahoe.strategy << ", "
            << tahoe.migrations << " migrations, "
            << to_mib(tahoe.bytes_moved) << " MiB moved)\n";
  return 0;
}
