// Heat diffusion example: a real 2-D Jacobi solver running its kernels on
// real memory through the real executor, with helper-thread migrations
// driven by a Tahoe decision — then the same application on the simulated
// timing path for the DRAM/NVM comparison.
#include <fstream>
#include <iostream>

#include "common/flags.hpp"
#include "common/units.hpp"
#include "core/calibration.hpp"
#include "core/planner.hpp"
#include "core/runtime.hpp"
#include "trace/chrome_export.hpp"
#include "trace/counters.hpp"
#include "trace/histogram.hpp"
#include "trace/trace.hpp"
#include "workloads/heat.hpp"

int main(int argc, char** argv) {
  using namespace tahoe;

  Flags flags;
  flags.define_string("trace-out", "",
                      "write a Chrome trace_event JSON timeline here");
  flags.define_string("report-json", "",
                      "write the Tahoe run's RunReport as JSON here");
  flags.define_string("explain-out", "",
                      "write the Tahoe run's plan provenance as JSON here");
  flags.parse(argc, argv);
  const std::string trace_out = flags.get_string("trace-out");
  const std::string report_json = flags.get_string("report-json");
  const std::string explain_out = flags.get_string("explain-out");
  if (!trace_out.empty()) trace::global().set_enabled(true);
  if (!trace_out.empty() || !report_json.empty() || !explain_out.empty()) {
    trace::set_histograms_enabled(true);
  }

  core::RuntimeConfig config;
  config.machine = memsim::machines::platform_a(
      memsim::devices::nvm_bw_fraction(memsim::devices::dram(64 * kMiB), 0.5,
                                       4 * kGiB),
      64 * kMiB);

  // ---- real execution: kernels, registry, helper-thread migration ----
  {
    config.backing = hms::Backing::Real;
    core::Runtime runtime(config);
    workloads::HeatApp app(
        workloads::HeatApp::config_for(workloads::Scale::Test));
    const bool ok = runtime.run_real(app, /*schedule=*/{}, 4);
    std::cout << "real 2-D Jacobi run: "
              << (ok ? "converging (verify passed)" : "FAILED") << "\n";
  }

  // ---- simulated timing: DRAM-only vs NVM-only vs Tahoe ----
  config.backing = hms::Backing::Virtual;
  config.attribution = !report_json.empty() || !explain_out.empty();
  core::Runtime runtime(config);
  workloads::HeatApp dram_app(
      workloads::HeatApp::config_for(workloads::Scale::Test));
  workloads::HeatApp nvm_app(
      workloads::HeatApp::config_for(workloads::Scale::Test));
  workloads::HeatApp tahoe_app(
      workloads::HeatApp::config_for(workloads::Scale::Test));

  const core::RunReport dram = runtime.run_static(dram_app, memsim::kDram);
  const core::RunReport nvm = runtime.run_static(nvm_app, memsim::kNvm);
  core::TahoePolicy policy(core::calibrate(runtime.machine()).to_constants());
  const core::RunReport tahoe = runtime.run(tahoe_app, policy);

  std::cout << "simulated steady-state iteration time\n"
            << "  DRAM-only: " << dram.steady_iteration_seconds() << " s\n"
            << "  NVM-only : " << nvm.steady_iteration_seconds() << " s ("
            << nvm.steady_iteration_seconds() /
                   dram.steady_iteration_seconds()
            << "x)\n"
            << "  Tahoe    : " << tahoe.steady_iteration_seconds() << " s ("
            << tahoe.steady_iteration_seconds() /
                   dram.steady_iteration_seconds()
            << "x, strategy " << tahoe.strategy << ", "
            << tahoe.migrations << " migrations, "
            << to_mib(tahoe.bytes_moved) << " MiB moved)\n";

  if (!trace_out.empty()) {
    trace::export_chrome_trace(trace::global(), trace_out);
  }
  if (!report_json.empty()) {
    std::ofstream os(report_json);
    auto& reg = trace::global_counters();
    tahoe.write_json(os, reg.snapshot_counters(), reg.snapshot_gauges(),
                     reg.snapshot_histograms());
    os << '\n';
  }
  if (!explain_out.empty()) {
    std::ofstream os(explain_out);
    tahoe.write_explain_json(os);
    os << '\n';
  }
  return 0;
}
