// Quickstart: the smallest complete Tahoe-TP program.
//
// 1. Describe the heterogeneous machine (DRAM + NVM by default;
//    --machine=cxl selects a four-tier HBM + DRAM + CXL-DRAM + NVM box).
// 2. Write an iterative task-parallel application against the public API:
//    allocate data objects, declare per-task access sets, build the
//    per-iteration task graph.
// 3. Run it under the Tahoe runtime and compare with the DRAM-only and
//    NVM-only extremes.
#include <fstream>
#include <iostream>

#include "common/fault.hpp"
#include "common/flags.hpp"
#include "common/units.hpp"
#include "core/calibration.hpp"
#include "core/planner.hpp"
#include "core/runtime.hpp"
#include "trace/chrome_export.hpp"
#include "trace/counters.hpp"
#include "trace/flight.hpp"
#include "trace/histogram.hpp"
#include "trace/telemetry.hpp"
#include "trace/trace.hpp"

namespace {

using namespace tahoe;

// An application with two phases per iteration: a "build" phase streaming
// over a table, and an "apply" phase doing dependent lookups into an
// index. The index is latency-sensitive, the table bandwidth-sensitive —
// Tahoe has to figure that out from sampled counters alone.
class QuickstartApp : public core::Application {
 public:
  std::string name() const override { return "quickstart"; }
  std::size_t iterations() const override { return 10; }

  void setup(hms::ObjectRegistry& registry,
             const hms::ChunkingPolicy& chunking) override {
    (void)chunking;
    // Everything starts on the capacity tier; the runtime profiles the
    // first iterations and migrates what matters into the faster tiers.
    table_ = registry.create("table", 48 * kMiB, registry.capacity_tier());
    index_ = registry.create("index", 24 * kMiB, registry.capacity_tier());
  }

  void build_iteration(task::GraphBuilder& builder,
                       std::size_t iteration) override {
    (void)iteration;
    builder.begin_group("build");
    for (int i = 0; i < 8; ++i) {
      task::Task t;
      t.label = "build";
      t.compute_seconds = 1e-4;
      task::DataAccess a;
      a.object = table_;
      a.mode = task::AccessMode::ReadWrite;
      a.traffic.loads = 750'000;
      a.traffic.stores = 750'000;
      a.traffic.footprint = 6 * kMiB;
      a.traffic.locality = 0.1;
      t.accesses = {a};
      builder.add_task(std::move(t));
    }
    builder.begin_group("apply");
    for (int i = 0; i < 8; ++i) {
      task::Task t;
      t.label = "apply";
      t.compute_seconds = 1e-4;
      task::DataAccess a;
      a.object = index_;
      a.mode = task::AccessMode::Read;
      a.traffic.loads = 125'000;
      a.traffic.footprint = 24 * kMiB;
      a.traffic.dep_frac = 0.9;  // pointer-chasing-like lookups
      t.accesses = {a};
      builder.add_task(std::move(t));
    }
  }

 private:
  hms::ObjectId table_ = hms::kInvalidObject;
  hms::ObjectId index_ = hms::kInvalidObject;
};

}  // namespace

int main(int argc, char** argv) {
  tahoe::Flags flags;
  flags.define_string("trace-out", "",
                      "write a Chrome trace_event JSON timeline here "
                      "(open in chrome://tracing or Perfetto)");
  flags.define_string("report-json", "",
                      "write the Tahoe run's RunReport as JSON here");
  flags.define_string("explain-out", "",
                      "write the Tahoe run's plan provenance (candidates, "
                      "weights, accept/reject reasons) as JSON here");
  flags.define_string("machine", "platform-a",
                      "machine model: platform-a (DRAM+NVM) or cxl "
                      "(HBM+DRAM+CXL-DRAM+NVM, exercises the N-tier path)");
  flags.define_bool("deterministic", false,
                    "zero out the wall-clock-measured planning cost so "
                    "same-seed runs write byte-identical reports");
  tahoe::fault::register_flags(flags);
  tahoe::trace::register_telemetry_flags(flags);
  flags.parse(argc, argv);
  tahoe::fault::configure_from_flags(flags);
  const std::string trace_out = flags.get_string("trace-out");
  const std::string report_json = flags.get_string("report-json");
  const std::string explain_out = flags.get_string("explain-out");
  if (!trace_out.empty() || !report_json.empty() || !explain_out.empty()) {
    trace::set_histograms_enabled(true);
  }
  trace::configure_telemetry_from_flags(flags, !trace_out.empty());

  core::RuntimeConfig config;
  const std::string machine_name = flags.get_string("machine");
  if (machine_name == "cxl") {
    // Four tiers, sized so the 72 MiB working set cannot fit any single
    // fast tier: the planner has to spread it across the hierarchy.
    config.machine = memsim::machines::cxl_platform(16 * kMiB, 32 * kMiB,
                                                    56 * kMiB, 4 * kGiB);
  } else if (machine_name == "platform-a") {
    // A machine whose NVM has 1/2 the DRAM bandwidth and 4x its latency
    // would need Quartz twice; the simulator just takes both numbers.
    memsim::DeviceModel nvm = memsim::devices::nvm_bw_fraction(
        memsim::devices::dram(32 * kMiB), 0.5, 4 * kGiB);
    nvm.read_lat_s *= 4.0;
    nvm.write_lat_s *= 4.0;
    config.machine = memsim::machines::platform_a(nvm, 32 * kMiB);
  } else {
    std::cerr << "unknown --machine '" << machine_name
              << "' (expected platform-a or cxl)\n";
    return 2;
  }
  config.backing = hms::Backing::Virtual;  // timing-only run
  config.attribution = !report_json.empty() || !explain_out.empty();
  if (flags.get_bool("deterministic")) config.fixed_decision_seconds = 0.0;

  core::Runtime runtime(config);

  const memsim::TierId fast = config.machine.fastest_tier();
  const memsim::TierId cap = config.machine.capacity_tier();
  const bool two_tier = config.machine.num_tiers() == 2;
  const std::string fast_label =
      two_tier ? "DRAM-only" : config.machine.tier(fast).name + "-only";
  const std::string cap_label =
      two_tier ? "NVM-only" : config.machine.tier(cap).name + "-only";

  QuickstartApp dram_app;
  QuickstartApp nvm_app;
  QuickstartApp tahoe_app;
  const core::RunReport dram = runtime.run_static(dram_app, fast);
  const core::RunReport nvm_only = runtime.run_static(nvm_app, cap);

  // Calibrate once per machine, then run under the Tahoe policy. The
  // trace covers only this run: the static baselines share the same
  // virtual-time origin, so mixing all three into one timeline would
  // overlay unrelated spans on the same lanes.
  if (!trace_out.empty()) trace::global().set_enabled(true);
  core::TahoePolicy policy(
      core::calibrate(runtime.machine()).to_constants());
  const core::RunReport tahoe = runtime.run(tahoe_app, policy);

  std::cout << "quickstart (steady-state seconds per iteration)\n"
            << "  " << fast_label << " : " << dram.steady_iteration_seconds()
            << "\n"
            << "  " << cap_label << "  : "
            << nvm_only.steady_iteration_seconds() << "\n"
            << "  Tahoe     : " << tahoe.steady_iteration_seconds()
            << "  (strategy: " << tahoe.strategy
            << ", migrations: " << tahoe.migrations
            << ", overlap: " << tahoe.overlap_fraction() * 100.0 << "%)\n";

  const double gap = nvm_only.steady_iteration_seconds() -
                     dram.steady_iteration_seconds();
  const double closed =
      nvm_only.steady_iteration_seconds() - tahoe.steady_iteration_seconds();
  std::cout << "  -> Tahoe closed " << closed / gap * 100.0 << "% of the "
            << (two_tier ? "DRAM/NVM" : "fast-tier/capacity-tier")
            << " gap\n";

  // The retained overload stitches back any events the telemetry sampler
  // drained into the flight-recorder ring mid-run.
  if (!trace_out.empty() &&
      trace::export_chrome_trace(trace::global(), trace_out,
                                 trace::flight().take_retained())) {
    std::cout << "  trace written to " << trace_out
              << " (open in chrome://tracing or https://ui.perfetto.dev)\n";
  }
  trace::telemetry().shutdown();  // flush the JSONL stream before exit
  if (!report_json.empty()) {
    std::ofstream os(report_json);
    auto& reg = trace::global_counters();
    tahoe.write_json(os, reg.snapshot_counters(), reg.snapshot_gauges(),
                     reg.snapshot_histograms());
    os << '\n';
    std::cout << "  report written to " << report_json << "\n";
  }
  if (!explain_out.empty()) {
    std::ofstream os(explain_out);
    tahoe.write_explain_json(os);
    os << '\n';
    std::cout << "  plan provenance written to " << explain_out << "\n";
  }
  return 0;
}
