// Quickstart: the smallest complete Tahoe-TP program.
//
// 1. Describe the heterogeneous machine (DRAM + NVM).
// 2. Write an iterative task-parallel application against the public API:
//    allocate data objects, declare per-task access sets, build the
//    per-iteration task graph.
// 3. Run it under the Tahoe runtime and compare with the DRAM-only and
//    NVM-only extremes.
#include <iostream>

#include "common/units.hpp"
#include "core/calibration.hpp"
#include "core/planner.hpp"
#include "core/runtime.hpp"

namespace {

using namespace tahoe;

// An application with two phases per iteration: a "build" phase streaming
// over a table, and an "apply" phase doing dependent lookups into an
// index. The index is latency-sensitive, the table bandwidth-sensitive —
// Tahoe has to figure that out from sampled counters alone.
class QuickstartApp : public core::Application {
 public:
  std::string name() const override { return "quickstart"; }
  std::size_t iterations() const override { return 10; }

  void setup(hms::ObjectRegistry& registry,
             const hms::ChunkingPolicy& chunking) override {
    (void)chunking;
    table_ = registry.create("table", 48 * kMiB, memsim::kNvm);
    index_ = registry.create("index", 24 * kMiB, memsim::kNvm);
    // Optional: static reference estimates enable initial placement.
    registry.get_mutable(table_).static_ref_estimate = 6e6 * 10;
    registry.get_mutable(index_).static_ref_estimate = 1e6 * 10;
  }

  void build_iteration(task::GraphBuilder& builder,
                       std::size_t iteration) override {
    (void)iteration;
    builder.begin_group("build");
    for (int i = 0; i < 8; ++i) {
      task::Task t;
      t.label = "build";
      t.compute_seconds = 1e-4;
      task::DataAccess a;
      a.object = table_;
      a.mode = task::AccessMode::ReadWrite;
      a.traffic.loads = 750'000;
      a.traffic.stores = 750'000;
      a.traffic.footprint = 6 * kMiB;
      a.traffic.locality = 0.1;
      t.accesses = {a};
      builder.add_task(std::move(t));
    }
    builder.begin_group("apply");
    for (int i = 0; i < 8; ++i) {
      task::Task t;
      t.label = "apply";
      t.compute_seconds = 1e-4;
      task::DataAccess a;
      a.object = index_;
      a.mode = task::AccessMode::Read;
      a.traffic.loads = 125'000;
      a.traffic.footprint = 24 * kMiB;
      a.traffic.dep_frac = 0.9;  // pointer-chasing-like lookups
      t.accesses = {a};
      builder.add_task(std::move(t));
    }
  }

 private:
  hms::ObjectId table_ = hms::kInvalidObject;
  hms::ObjectId index_ = hms::kInvalidObject;
};

}  // namespace

int main() {
  // A machine whose NVM has 1/2 the DRAM bandwidth and 4x its latency
  // would need Quartz twice; the simulator just takes both numbers.
  memsim::DeviceModel nvm = memsim::devices::nvm_bw_fraction(
      memsim::devices::dram(32 * kMiB), 0.5, 4 * kGiB);
  nvm.read_lat_s *= 4.0;
  nvm.write_lat_s *= 4.0;
  core::RuntimeConfig config;
  config.machine = memsim::machines::platform_a(nvm, 32 * kMiB);
  config.backing = hms::Backing::Virtual;  // timing-only run

  core::Runtime runtime(config);

  QuickstartApp dram_app;
  QuickstartApp nvm_app;
  QuickstartApp tahoe_app;
  const core::RunReport dram = runtime.run_static(dram_app, memsim::kDram);
  const core::RunReport nvm_only = runtime.run_static(nvm_app, memsim::kNvm);

  // Calibrate once per machine, then run under the Tahoe policy.
  core::TahoePolicy policy(
      core::calibrate(runtime.machine()).to_constants());
  const core::RunReport tahoe = runtime.run(tahoe_app, policy);

  std::cout << "quickstart (steady-state seconds per iteration)\n"
            << "  DRAM-only : " << dram.steady_iteration_seconds() << "\n"
            << "  NVM-only  : " << nvm_only.steady_iteration_seconds() << "\n"
            << "  Tahoe     : " << tahoe.steady_iteration_seconds()
            << "  (strategy: " << tahoe.strategy
            << ", migrations: " << tahoe.migrations
            << ", overlap: " << tahoe.overlap_fraction() * 100.0 << "%)\n";

  const double gap = nvm_only.steady_iteration_seconds() -
                     dram.steady_iteration_seconds();
  const double closed =
      nvm_only.steady_iteration_seconds() - tahoe.steady_iteration_seconds();
  std::cout << "  -> Tahoe closed " << closed / gap * 100.0
            << "% of the DRAM/NVM gap\n";
  return 0;
}
