// Adaptivity example: a workload whose hot data object switches mid-run.
// With adaptivity enabled the runtime notices the per-phase time deviating
// by more than 10%, re-profiles, re-decides, and recovers; with a frozen
// plan the wrong object stays in DRAM forever.
#include <iomanip>
#include <iostream>

#include "common/units.hpp"
#include "core/calibration.hpp"
#include "core/planner.hpp"
#include "core/runtime.hpp"
#include "workloads/synthetic.hpp"

namespace {

tahoe::core::RunReport run(bool adaptive) {
  using namespace tahoe;
  core::RuntimeConfig config;
  config.machine = memsim::machines::platform_a(
      memsim::devices::nvm_bw_fraction(memsim::devices::dram(64 * kMiB), 0.5,
                                       4 * kGiB),
      64 * kMiB);
  config.backing = hms::Backing::Virtual;
  config.adaptive = adaptive;
  core::Runtime runtime(config);
  workloads::DriftApp app({48 * kMiB, 8, 18, 9});  // drift at iteration 9
  core::TahoePolicy policy(core::calibrate(runtime.machine()).to_constants());
  return runtime.run(app, policy);
}

}  // namespace

int main() {
  const tahoe::core::RunReport adaptive = run(true);
  const tahoe::core::RunReport frozen = run(false);

  std::cout << "iter   adaptive(s)   frozen(s)\n";
  std::cout << std::fixed << std::setprecision(5);
  for (std::size_t i = 0; i < adaptive.iteration_seconds.size(); ++i) {
    std::cout << std::setw(4) << i << "   " << std::setw(10)
              << adaptive.iteration_seconds[i] << "   " << std::setw(9)
              << frozen.iteration_seconds[i]
              << (i == 9 ? "   <- workload drifts here" : "") << "\n";
  }
  std::cout << "\nadaptive re-profiled " << adaptive.reprofiles
            << " time(s); final iteration "
            << frozen.iteration_seconds.back() /
                   adaptive.iteration_seconds.back()
            << "x faster than the frozen plan\n";
  return 0;
}
