// Adaptivity example: a workload whose hot data object switches mid-run.
// With adaptivity enabled the runtime notices the per-phase time deviating
// by more than 10%, re-profiles, re-decides, and recovers; with a frozen
// plan the wrong object stays in DRAM forever.
#include <fstream>
#include <iomanip>
#include <iostream>

#include "common/flags.hpp"
#include "common/units.hpp"
#include "core/calibration.hpp"
#include "core/planner.hpp"
#include "core/runtime.hpp"
#include "trace/chrome_export.hpp"
#include "trace/counters.hpp"
#include "trace/histogram.hpp"
#include "trace/trace.hpp"
#include "workloads/synthetic.hpp"

namespace {

tahoe::core::RunReport run(bool adaptive, bool attribution) {
  using namespace tahoe;
  core::RuntimeConfig config;
  config.machine = memsim::machines::platform_a(
      memsim::devices::nvm_bw_fraction(memsim::devices::dram(64 * kMiB), 0.5,
                                       4 * kGiB),
      64 * kMiB);
  config.backing = hms::Backing::Virtual;
  config.adaptive = adaptive;
  config.attribution = attribution;
  core::Runtime runtime(config);
  workloads::DriftApp app({48 * kMiB, 8, 18, 9});  // drift at iteration 9
  core::TahoePolicy policy(core::calibrate(runtime.machine()).to_constants());
  return runtime.run(app, policy);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tahoe;
  Flags flags;
  flags.define_string("trace-out", "",
                      "write a Chrome trace_event JSON timeline here");
  flags.define_string("report-json", "",
                      "write the adaptive run's RunReport as JSON here");
  flags.define_string("explain-out", "",
                      "write the adaptive run's plan provenance as JSON here");
  flags.parse(argc, argv);
  const std::string trace_out = flags.get_string("trace-out");
  const std::string report_json = flags.get_string("report-json");
  const std::string explain_out = flags.get_string("explain-out");
  if (!trace_out.empty()) trace::global().set_enabled(true);
  if (!trace_out.empty() || !report_json.empty() || !explain_out.empty()) {
    trace::set_histograms_enabled(true);
  }
  const bool attribution = !report_json.empty() || !explain_out.empty();

  const core::RunReport adaptive = run(true, attribution);
  const core::RunReport frozen = run(false, attribution);

  std::cout << "iter   adaptive(s)   frozen(s)\n";
  std::cout << std::fixed << std::setprecision(5);
  for (std::size_t i = 0; i < adaptive.iteration_seconds.size(); ++i) {
    std::cout << std::setw(4) << i << "   " << std::setw(10)
              << adaptive.iteration_seconds[i] << "   " << std::setw(9)
              << frozen.iteration_seconds[i]
              << (i == 9 ? "   <- workload drifts here" : "") << "\n";
  }
  std::cout << "\nadaptive re-profiled " << adaptive.reprofiles
            << " time(s); final iteration "
            << frozen.iteration_seconds.back() /
                   adaptive.iteration_seconds.back()
            << "x faster than the frozen plan\n";

  if (!trace_out.empty()) {
    trace::export_chrome_trace(trace::global(), trace_out);
  }
  if (!report_json.empty()) {
    std::ofstream os(report_json);
    auto& reg = trace::global_counters();
    adaptive.write_json(os, reg.snapshot_counters(), reg.snapshot_gauges(),
                        reg.snapshot_histograms());
    os << '\n';
  }
  if (!explain_out.empty()) {
    std::ofstream os(explain_out);
    adaptive.write_explain_json(os);
    os << '\n';
  }
  return 0;
}
