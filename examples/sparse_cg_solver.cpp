// Sparse CG example: conjugate gradient on a CSR matrix. Shows the full
// application lifecycle (allocation through the registry, per-task access
// declarations, verification of the numerical result) and how the planner
// treats the gather-heavy SpMV phase differently from the streaming AXPY
// phases.
#include <iostream>

#include "common/units.hpp"
#include "core/calibration.hpp"
#include "core/planner.hpp"
#include "core/runtime.hpp"
#include "workloads/cg.hpp"

int main() {
  using namespace tahoe;

  core::RuntimeConfig config;
  config.machine = memsim::machines::platform_a(
      memsim::devices::nvm_lat_multiple(memsim::devices::dram(48 * kMiB), 4.0,
                                        4 * kGiB),
      48 * kMiB);

  // Real solve with verification (residual must drop).
  {
    config.backing = hms::Backing::Real;
    core::Runtime runtime(config);
    workloads::CgApp app(workloads::CgApp::config_for(workloads::Scale::Test));
    const bool converged = runtime.run_real(app, /*schedule=*/{}, 4);
    std::cout << "real CG solve: "
              << (converged ? "residual reduced (verify passed)" : "FAILED")
              << "\n";
  }

  // Simulated comparison on the latency-limited NVM.
  config.backing = hms::Backing::Virtual;
  core::Runtime runtime(config);
  workloads::CgApp dram_app(
      workloads::CgApp::config_for(workloads::Scale::Test));
  workloads::CgApp nvm_app(workloads::CgApp::config_for(workloads::Scale::Test));
  workloads::CgApp tahoe_app(
      workloads::CgApp::config_for(workloads::Scale::Test));

  const core::RunReport dram = runtime.run_static(dram_app, memsim::kDram);
  const core::RunReport nvm = runtime.run_static(nvm_app, memsim::kNvm);
  core::TahoePolicy policy(core::calibrate(runtime.machine()).to_constants());
  const core::RunReport tahoe = runtime.run(tahoe_app, policy);

  std::cout << "CG on 4x-latency NVM (normalized to DRAM-only)\n"
            << "  NVM-only: "
            << nvm.steady_iteration_seconds() / dram.steady_iteration_seconds()
            << "x\n"
            << "  Tahoe   : "
            << tahoe.steady_iteration_seconds() /
                   dram.steady_iteration_seconds()
            << "x  (strategy " << tahoe.strategy << ", runtime overhead "
            << tahoe.runtime_cost_fraction() * 100.0 << "%)\n";
  return 0;
}
