// Sparse CG example: conjugate gradient on a CSR matrix. Shows the full
// application lifecycle (allocation through the registry, per-task access
// declarations, verification of the numerical result) and how the planner
// treats the gather-heavy SpMV phase differently from the streaming AXPY
// phases.
#include <fstream>
#include <iostream>

#include "common/flags.hpp"
#include "common/units.hpp"
#include "core/calibration.hpp"
#include "core/planner.hpp"
#include "core/runtime.hpp"
#include "trace/chrome_export.hpp"
#include "trace/counters.hpp"
#include "trace/histogram.hpp"
#include "trace/trace.hpp"
#include "workloads/cg.hpp"

int main(int argc, char** argv) {
  using namespace tahoe;

  Flags flags;
  flags.define_string("trace-out", "",
                      "write a Chrome trace_event JSON timeline here");
  flags.define_string("report-json", "",
                      "write the Tahoe run's RunReport as JSON here");
  flags.define_string("explain-out", "",
                      "write the Tahoe run's plan provenance as JSON here");
  flags.parse(argc, argv);
  const std::string trace_out = flags.get_string("trace-out");
  const std::string report_json = flags.get_string("report-json");
  const std::string explain_out = flags.get_string("explain-out");
  if (!trace_out.empty()) trace::global().set_enabled(true);
  if (!trace_out.empty() || !report_json.empty() || !explain_out.empty()) {
    trace::set_histograms_enabled(true);
  }

  core::RuntimeConfig config;
  config.machine = memsim::machines::platform_a(
      memsim::devices::nvm_lat_multiple(memsim::devices::dram(48 * kMiB), 4.0,
                                        4 * kGiB),
      48 * kMiB);

  // Real solve with verification (residual must drop).
  {
    config.backing = hms::Backing::Real;
    core::Runtime runtime(config);
    workloads::CgApp app(workloads::CgApp::config_for(workloads::Scale::Test));
    const bool converged = runtime.run_real(app, /*schedule=*/{}, 4);
    std::cout << "real CG solve: "
              << (converged ? "residual reduced (verify passed)" : "FAILED")
              << "\n";
  }

  // Simulated comparison on the latency-limited NVM.
  config.backing = hms::Backing::Virtual;
  config.attribution = !report_json.empty() || !explain_out.empty();
  core::Runtime runtime(config);
  workloads::CgApp dram_app(
      workloads::CgApp::config_for(workloads::Scale::Test));
  workloads::CgApp nvm_app(workloads::CgApp::config_for(workloads::Scale::Test));
  workloads::CgApp tahoe_app(
      workloads::CgApp::config_for(workloads::Scale::Test));

  const core::RunReport dram = runtime.run_static(dram_app, memsim::kDram);
  const core::RunReport nvm = runtime.run_static(nvm_app, memsim::kNvm);
  core::TahoePolicy policy(core::calibrate(runtime.machine()).to_constants());
  const core::RunReport tahoe = runtime.run(tahoe_app, policy);

  std::cout << "CG on 4x-latency NVM (normalized to DRAM-only)\n"
            << "  NVM-only: "
            << nvm.steady_iteration_seconds() / dram.steady_iteration_seconds()
            << "x\n"
            << "  Tahoe   : "
            << tahoe.steady_iteration_seconds() /
                   dram.steady_iteration_seconds()
            << "x  (strategy " << tahoe.strategy << ", runtime overhead "
            << tahoe.runtime_cost_fraction() * 100.0 << "%)\n";

  if (!trace_out.empty()) {
    trace::export_chrome_trace(trace::global(), trace_out);
  }
  if (!report_json.empty()) {
    std::ofstream os(report_json);
    auto& reg = trace::global_counters();
    tahoe.write_json(os, reg.snapshot_counters(), reg.snapshot_gauges(),
                     reg.snapshot_histograms());
    os << '\n';
  }
  if (!explain_out.empty()) {
    std::ofstream os(explain_out);
    tahoe.write_explain_json(os);
    os << '\n';
  }
  return 0;
}
