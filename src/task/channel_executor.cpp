#include "task/channel_executor.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "trace/counters.hpp"
#include "trace/trace.hpp"

namespace tahoe::task {

using detail::bump;

ChannelExecutor::ChannelExecutor(unsigned num_workers, Options options)
    : ExecutorBase(num_workers), options_(options) {
  TAHOE_REQUIRE(options_.adapt_window >= 1, "adapt window must be >= 1");
  worker_state_.reserve(num_workers);
  requests_.reserve(static_cast<std::size_t>(num_workers) * num_workers);
  replies_.reserve(num_workers);
  inbox_hot_.reserve(num_workers);
  inbox_cold_.reserve(num_workers);
  for (unsigned w = 0; w < num_workers; ++w) {
    // Deterministic per-worker seeds: only the victim rotation uses them.
    auto ws = std::make_unique<WorkerState>(0xc4a7e1 + w);
    ws->mode.store(options_.initial_mode, std::memory_order_relaxed);
    // Victim order: worker-tree neighbours first (parent and children of
    // this worker's node in the implicit binary tree over worker ids), so
    // steal traffic diffuses work between neighbours before going global;
    // the remaining workers follow in a rotation randomized per scan.
    std::vector<bool> in_tree(num_workers, false);
    in_tree[w] = true;
    const auto add_neighbour = [&](unsigned v) {
      if (v < num_workers && !in_tree[v]) {
        ws->victim_order.push_back(v);
        in_tree[v] = true;
      }
    };
    if (w > 0) add_neighbour((w - 1) / 2);
    add_neighbour(2 * w + 1);
    add_neighbour(2 * w + 2);
    ws->tree_count = static_cast<unsigned>(ws->victim_order.size());
    for (unsigned v = 0; v < num_workers; ++v) {
      if (!in_tree[v]) ws->victim_order.push_back(v);
    }
    worker_state_.push_back(std::move(ws));
  }
  for (unsigned v = 0; v < num_workers; ++v) {
    for (unsigned t = 0; t < num_workers; ++t) {
      // One slot per (victim, thief) pair: a thief never has more than one
      // request in flight.
      requests_.push_back(std::make_unique<SpscChannel<StealRequest>>(1));
    }
  }
  for (unsigned w = 0; w < num_workers; ++w) {
    replies_.push_back(std::make_unique<SpscChannel<StealReply>>(2));
    inbox_hot_.push_back(
        std::make_unique<SpscChannel<TaskId>>(options_.inbox_capacity));
    inbox_cold_.push_back(
        std::make_unique<SpscChannel<TaskId>>(options_.inbox_capacity));
  }
  workers_.reserve(num_workers);
  for (unsigned w = 0; w < num_workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
  if (trace::global().enabled()) {
    for (unsigned w = 0; w < num_workers; ++w) {
      trace::global().set_track_name(w, "worker " + std::to_string(w));
    }
  }
}

ChannelExecutor::~ChannelExecutor() {
  if (run_active_.load(std::memory_order_acquire)) {
    TAHOE_WARN("ChannelExecutor destroyed while run() is in flight — the "
               "executor must be owned (and outlived) by its running thread");
  }
  // seq_cst store + eventcount bump: every worker either sees stop_ on its
  // pre-park re-check or gets the wakeup; thieves blocked waiting for a
  // steal reply poll stop_ and abandon the request.
  stop_.store(true, std::memory_order_seq_cst);
  park_.notify();
  for (std::thread& t : workers_) t.join();
}

ExecutorStats ChannelExecutor::worker_snapshot(unsigned w) const {
  return detail::snapshot_stats(worker_state_[w]->stats);
}

StealMode ChannelExecutor::steal_mode(unsigned w) const {
  TAHOE_REQUIRE(w < num_workers_, "worker index out of range");
  return worker_state_[w]->mode.load(std::memory_order_relaxed);
}

void ChannelExecutor::inject_ready(TaskId id, unsigned slot) {
  auto& lane = cold_hint(id) ? inbox_cold_ : inbox_hot_;
  SpscChannel<TaskId>& inbox = *lane[slot];
  int spin = 0;
  // A full inbox means the slot's owner is behind; keep nudging it awake
  // and yield. Progress is guaranteed: the owner drains its inbox at every
  // scheduling boundary and victims serve inbox tasks to thieves.
  while (!inbox.try_send(id)) {
    park_.notify();
    detail::backoff(std::min(spin++, 4));
  }
  park_.notify();
}

void ChannelExecutor::push_ready(TaskId id, unsigned self) {
  WorkerState& ws = *worker_state_[self];
  const bool cold = cold_hint(id);
  PrivateDeque& deque = cold ? ws.cold : ws.hot;
  deque.push_back(id);
  (cold ? ws.cold_size : ws.hot_size)
      .store(static_cast<std::uint32_t>(deque.size()),
             std::memory_order_relaxed);
  bump(ws.stats.pushes);
  park_.notify();
}

bool ChannelExecutor::pop_local(unsigned self, bool cold, TaskId& out) {
  WorkerState& ws = *worker_state_[self];
  PrivateDeque& deque = cold ? ws.cold : ws.hot;
  if (!deque.pop_back(out)) return false;  // LIFO for locality
  (cold ? ws.cold_size : ws.hot_size)
      .store(static_cast<std::uint32_t>(deque.size()),
             std::memory_order_relaxed);
  return true;
}

void ChannelExecutor::service_requests(unsigned self) {
  WorkerState& ws = *worker_state_[self];
  if (ws.pending_requests.load(std::memory_order_acquire) == 0) return;
  for (unsigned t = 0; t < num_workers_; ++t) {
    if (t == self) continue;
    StealRequest req;
    while (request_channel(self, t).try_recv(req)) {
      ws.pending_requests.fetch_sub(1, std::memory_order_acq_rel);
      StealReply rep;
      // Serve hot work first; surrender cold (NVM-bound) tasks only when
      // this worker has no hot work at all and the thief's whole hot scan
      // already failed (allow_cold) — the cross-worker half of the
      // hot-before-cold order.
      const bool have_hot = !ws.hot.empty() || !inbox_hot_[self]->empty_approx();
      const bool have_cold =
          !ws.cold.empty() || !inbox_cold_[self]->empty_approx();
      if (have_hot) {
        rep.cold = false;
      } else if (req.allow_cold && have_cold) {
        rep.cold = true;
      } else {
        rep.count = 0;
        const bool ok = replies_[req.thief]->try_send(rep);
        TAHOE_ASSERT(ok, "steal reply channel overflow");
        continue;
      }
      PrivateDeque& deque = rep.cold ? ws.cold : ws.hot;
      SpscChannel<TaskId>& inbox =
          rep.cold ? *inbox_cold_[self] : *inbox_hot_[self];
      // Steal-half takes half of the visible lane (deque + own inbox),
      // oldest tasks first — the ones farthest from this worker's current
      // working set; steal-one takes a single task.
      const std::size_t visible = deque.size() + inbox.size_approx();
      std::size_t want = 1;
      if (req.mode == StealMode::kHalf) {
        want = std::min<std::size_t>((visible + 1) / 2, kMaxStealBatch);
        want = std::max<std::size_t>(want, 1);
      }
      while (rep.count < want) {
        TaskId id = 0;
        if (deque.pop_front(id)) {
          rep.tasks[rep.count++] = id;
          continue;
        }
        if (inbox.try_recv(id)) {
          rep.tasks[rep.count++] = id;
          continue;
        }
        break;
      }
      (rep.cold ? ws.cold_size : ws.hot_size)
          .store(static_cast<std::uint32_t>(deque.size()),
                 std::memory_order_relaxed);
      const bool ok = replies_[req.thief]->try_send(rep);
      TAHOE_ASSERT(ok, "steal reply channel overflow");
    }
  }
}

void ChannelExecutor::adapt_mode(WorkerState& ws, bool declined) {
  if (!options_.adaptive) return;
  ++ws.window_requests;
  if (declined) ++ws.window_declines;
  if (ws.window_requests < options_.adapt_window) return;
  const double rate = static_cast<double>(ws.window_declines) /
                      static_cast<double>(ws.window_requests);
  const StealMode mode = ws.mode.load(std::memory_order_relaxed);
  // High decline rate = work is scarce and fragmented: when a steal does
  // land, grab half the victim's lane so this worker stops re-stealing
  // (and stops flooding the pool with requests). Low decline rate = work
  // is plentiful: steal-one keeps it spread across workers. The band in
  // between is hysteresis.
  if (mode == StealMode::kOne && rate > options_.half_threshold) {
    ws.mode.store(StealMode::kHalf, std::memory_order_relaxed);
    bump(ws.stats.mode_switches);
  } else if (mode == StealMode::kHalf && rate < options_.one_threshold) {
    ws.mode.store(StealMode::kOne, std::memory_order_relaxed);
    bump(ws.stats.mode_switches);
  }
  ws.window_requests = 0;
  ws.window_declines = 0;
}

bool ChannelExecutor::steal_round(unsigned self, bool allow_cold,
                                  TaskId& out) {
  WorkerState& ws = *worker_state_[self];
  const auto& order = ws.victim_order;
  if (order.empty()) return false;
  const unsigned tree_n = ws.tree_count;
  const auto rest = static_cast<unsigned>(order.size()) - tree_n;
  const unsigned offset =
      rest > 1 ? static_cast<unsigned>(ws.rng.next_below(rest)) : 0;
  for (unsigned i = 0; i < order.size(); ++i) {
    // Tree neighbours in fixed order, then the rest rotated randomly.
    const unsigned victim =
        i < tree_n ? order[i] : order[tree_n + (i - tree_n + offset) % rest];
    if (remaining_.load(std::memory_order_acquire) == 0) return false;
    WorkerState& vs = *worker_state_[victim];
    StealRequest req;
    req.thief = self;
    req.mode = ws.mode.load(std::memory_order_relaxed);
    req.allow_cold = allow_cold;
    // Advertise before sending so the victim's pre-park re-check cannot
    // miss the request, then wake it if it is already parked.
    vs.pending_requests.fetch_add(1, std::memory_order_seq_cst);
    const bool sent = request_channel(victim, self).try_send(req);
    TAHOE_ASSERT(sent, "steal request channel overflow");
    park_.notify();
    bump(ws.stats.steal_requests);
    StealReply rep;
    int spin = 0;
    for (;;) {
      if (replies_[self]->try_recv(rep)) break;
      // Answer our own incoming requests while waiting: two workers
      // requesting from each other must both keep declining or they
      // deadlock.
      service_requests(self);
      if (stop_.load(std::memory_order_acquire)) return false;
      detail::backoff(std::min(spin++, 4));
    }
    if (rep.count == 0) {
      bump(ws.stats.steal_declines);
      adapt_mode(ws, /*declined=*/true);
      continue;
    }
    adapt_mode(ws, /*declined=*/false);
    if (rep.count > 1) bump(ws.stats.steal_halves);
    // Run the oldest task now; the rest of the batch joins this worker's
    // private deque (counted as pushes, popped later as pops).
    out = rep.tasks[0];
    if (rep.count > 1) {
      PrivateDeque& deque = rep.cold ? ws.cold : ws.hot;
      for (std::uint32_t k = 1; k < rep.count; ++k) {
        deque.push_back(rep.tasks[k]);
      }
      (rep.cold ? ws.cold_size : ws.hot_size)
          .store(static_cast<std::uint32_t>(deque.size()),
                 std::memory_order_relaxed);
      bump(ws.stats.pushes, rep.count - 1);
    }
    bump(ws.stats.steals);
    if (rep.cold) bump(ws.stats.cold_takes);
    trace::Tracer& tracer = trace::global();
    if (tracer.enabled()) {
      tracer.instant(self, "steal", trace::now_seconds(), "victim", victim);
    }
    return true;
  }
  return false;
}

bool ChannelExecutor::try_get_task(unsigned self, TaskId& out) {
  WorkerState& ws = *worker_state_[self];
  // 1. Own hot deque (LIFO), then own hot inbox (group activations).
  if (pop_local(self, /*cold=*/false, out)) {
    bump(ws.stats.pops);
    return true;
  }
  if (inbox_hot_[self]->try_recv(out)) {
    bump(ws.stats.inject_takes);
    return true;
  }
  // 2. Ask the other workers for hot work. Only while a run is in flight:
  // idle thieves between runs would otherwise storm the request channels.
  const bool active = remaining_.load(std::memory_order_acquire) != 0;
  const bool can_steal = num_workers_ > 1 && active;
  if (can_steal && steal_round(self, /*allow_cold=*/false, out)) return true;
  // 3. Cold (NVM-bound) work, same order: own deque, own inbox, steal.
  if (pop_local(self, /*cold=*/true, out)) {
    bump(ws.stats.pops);
    bump(ws.stats.cold_takes);
    return true;
  }
  if (inbox_cold_[self]->try_recv(out)) {
    bump(ws.stats.inject_takes);
    bump(ws.stats.cold_takes);
    return true;
  }
  if (can_steal && steal_round(self, /*allow_cold=*/true, out)) return true;
  // A failed steal requires real victim scans — single-worker pools and
  // idle spins between runs never scanned anyone.
  if (can_steal) bump(ws.stats.failed_steals);
  return false;
}

bool ChannelExecutor::any_work_visible() const {
  for (unsigned w = 0; w < num_workers_; ++w) {
    const WorkerState& ws = *worker_state_[w];
    if (ws.hot_size.load(std::memory_order_acquire) != 0) return true;
    if (ws.cold_size.load(std::memory_order_acquire) != 0) return true;
    if (!inbox_hot_[w]->empty_approx()) return true;
    if (!inbox_cold_[w]->empty_approx()) return true;
  }
  return false;
}

void ChannelExecutor::worker_loop(unsigned self) {
  WorkerState& ws = *worker_state_[self];
  int idle_rounds = 0;
  for (;;) {
    // Victim half of the protocol first: answering at every scheduling
    // boundary bounds how long a thief spins on its reply channel by one
    // task execution.
    service_requests(self);
    TaskId id = 0;
    if (try_get_task(self, id)) {
      idle_rounds = 0;
      // Count before executing: execute_task's remaining_ decrement is
      // what releases run()'s stats aggregation, so a bump after it could
      // be missed by the snapshot of the run that this task completes.
      bump(ws.stats.tasks_run);
      execute_task(id, self);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // Final drain: decline whatever raced in so no thief waits on a
      // reply from an exited worker (thieves also poll stop_).
      service_requests(self);
      return;
    }
    if (idle_rounds < detail::kSpinRounds) {
      detail::backoff(idle_rounds++);
      continue;
    }
    idle_rounds = 0;
    // Park. prepare_wait() registers us as a waiter *before* the re-check,
    // so a concurrent inject/push/steal-request is guaranteed to either
    // show up in the check below or bump the epoch and wake us.
    const std::uint64_t epoch = park_.prepare_wait();
    if (stop_.load(std::memory_order_acquire) ||
        ws.pending_requests.load(std::memory_order_acquire) != 0 ||
        any_work_visible()) {
      park_.cancel_wait();
      continue;
    }
    bump(ws.stats.parks);
    if (trace::histograms_enabled()) {
      const double park_begin = trace::now_seconds();
      park_.commit_wait(epoch);
      static trace::Histogram& park_seconds =
          trace::global_counters().histogram("executor.park_seconds");
      park_seconds.record_seconds(trace::now_seconds() - park_begin);
    } else {
      park_.commit_wait(epoch);
    }
  }
}

}  // namespace tahoe::task
