// Channel-based adaptive work-stealing executor (second `IExecutor`
// backend; see executor_base.hpp for the shared surface and executor.hpp
// for the Chase–Lev baseline).
//
// Design (after aprell/tasking-2.0): workers keep their ready tasks in
// *private* deques — plain, atomic-free containers only the owner ever
// touches — so the local push/pop hot path costs no synchronization at
// all, unlike a Chase–Lev deque whose owner pop must win a seq_cst race
// against thieves on every last element. Work moves between workers only
// through explicit messages over bounded SPSC channels
// (spsc_channel.hpp):
//
//   * A thief with no local work sends a `StealRequest` to one victim at
//     a time and spins (yielding, and answering its own incoming requests
//     to stay deadlock-free) until the victim replies.
//   * The victim answers at its next scheduling boundary: a `StealReply`
//     carrying one task (steal-one), *half of its deque* (steal-half,
//     oldest tasks first — the ones farthest from the owner's working
//     set), or nothing (a decline).
//   * Victim selection walks the *worker tree* first (parent and children
//     of the thief's node in an implicit binary tree over worker ids, so
//     work diffuses between neighbours before going global), then the
//     remaining workers in a randomized rotation.
//   * An adaptive controller flips each worker between steal-one and
//     steal-half from its observed failed-request (decline) rate: when
//     most requests come back empty, work is scarce and fragmented, so a
//     successful steal should grab half a deque and stop the request
//     storm; when requests mostly succeed, work is plentiful and
//     steal-one keeps it spread out.
//
// Tier lanes and barriers match the Chase–Lev backend: each worker has a
// hot and a cold private deque plus hot/cold SPSC inboxes fed by the
// run() caller, thieves ask for hot work everywhere before asking anyone
// for cold work, and a victim surrenders cold tasks only when it has no
// hot ones. The group-barrier/activation-token protocol lives in
// ExecutorBase, so `run_real` and phase-mode callers see identical
// semantics on both backends.
//
// Stats convention: a reply of k tasks counts 1 steal (the task the thief
// runs immediately) + (k-1) pushes into the thief's private deque, whose
// later pops count as pops — so pops + steals + inject_takes == tasks_run
// holds on both backends, while pushes exceeds the task count by the
// re-enqueued share of steal-half batches.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "task/executor_base.hpp"
#include "task/graph.hpp"
#include "task/spsc_channel.hpp"

namespace tahoe::task {

/// How much a thief asks for in one request.
enum class StealMode : std::uint8_t {
  kOne = 0,   ///< one task per successful request
  kHalf = 1,  ///< half the victim's deque (capped at kMaxStealBatch)
};

class ChannelExecutor final : public ExecutorBase {
 public:
  /// Upper bound on tasks per steal reply; bounds the reply message size.
  static constexpr unsigned kMaxStealBatch = 64;

  struct Options {
    /// Initial per-worker steal mode.
    StealMode initial_mode = StealMode::kOne;
    /// Adaptive steal-one<->steal-half switching from decline rates.
    bool adaptive = true;
    /// Requests per adaptation window.
    unsigned adapt_window = 32;
    /// Switch to steal-half above this decline rate…
    double half_threshold = 0.5;
    /// …and back to steal-one below this one (hysteresis band between).
    double one_threshold = 0.25;
    /// Per-worker injection inbox capacity (caller spins when full).
    std::size_t inbox_capacity = 1024;
  };

  // Two overloads rather than `Options options = {}`: gcc rejects a
  // brace-init default argument of a nested aggregate with member
  // initializers while the enclosing class is still incomplete.
  explicit ChannelExecutor(unsigned num_workers)
      : ChannelExecutor(num_workers, Options()) {}
  ChannelExecutor(unsigned num_workers, Options options);
  ~ChannelExecutor() override;

  ChannelExecutor(const ChannelExecutor&) = delete;
  ChannelExecutor& operator=(const ChannelExecutor&) = delete;

  ExecutorBackend backend() const noexcept override {
    return ExecutorBackend::kChannel;
  }
  const Options& options() const noexcept { return options_; }
  /// Current steal mode of worker `w` (racy read; exact when quiescent).
  StealMode steal_mode(unsigned w) const;

 private:
  struct StealRequest {
    std::uint32_t thief = 0;
    StealMode mode = StealMode::kOne;
    /// Second scan round: the thief found no hot work anywhere and now
    /// accepts NVM-bound tasks.
    bool allow_cold = false;
  };

  struct StealReply {
    std::uint32_t count = 0;  ///< 0 = decline
    bool cold = false;        ///< tasks came from the victim's cold lane
    TaskId tasks[kMaxStealBatch] = {};
  };

  /// Plain (atomic-free) growable ring deque. Owner-only by construction:
  /// only the owning worker thread ever touches it, which is the whole
  /// point of the channel design — local scheduling costs zero
  /// synchronization.
  class PrivateDeque {
   public:
    bool empty() const noexcept { return head_ == tail_; }
    std::size_t size() const noexcept {
      return static_cast<std::size_t>(tail_ - head_);
    }
    void push_back(TaskId id) {
      if (size() == ring_.size()) grow();
      ring_[tail_ & mask_] = id;
      ++tail_;
    }
    bool pop_back(TaskId& out) noexcept {  // newest (LIFO for the owner)
      if (empty()) return false;
      --tail_;
      out = ring_[tail_ & mask_];
      return true;
    }
    bool pop_front(TaskId& out) noexcept {  // oldest (FIFO for thieves)
      if (empty()) return false;
      out = ring_[head_ & mask_];
      ++head_;
      return true;
    }

   private:
    void grow() {
      const std::size_t old_cap = ring_.size();
      const std::size_t new_cap = old_cap == 0 ? 64 : old_cap * 2;
      std::vector<TaskId> next(new_cap);
      const std::size_t n = size();
      for (std::size_t i = 0; i < n; ++i) {
        next[i] = ring_[(head_ + i) & mask_];
      }
      ring_ = std::move(next);
      mask_ = new_cap - 1;
      head_ = 0;
      tail_ = n;
    }
    std::vector<TaskId> ring_;
    std::size_t mask_ = 0;
    std::uint64_t head_ = 0;  ///< index of oldest element
    std::uint64_t tail_ = 0;  ///< one past newest
  };

  /// One worker's scheduling state, cacheline-isolated. The deques are
  /// private: only the owning worker thread reads or writes them. The
  /// atomics are the owner's advertisements to the rest of the pool.
  struct alignas(64) WorkerState {
    explicit WorkerState(std::uint64_t seed) : rng(seed) {}
    PrivateDeque hot;   ///< private; back = newest (LIFO for owner)
    PrivateDeque cold;  ///< private; surrendered only when hot empty
    /// Approximate deque sizes, advertised for parking re-checks (owner-
    /// written, relaxed).
    std::atomic<std::uint32_t> hot_size{0};
    std::atomic<std::uint32_t> cold_size{0};
    /// Incoming steal requests outstanding (thieves bump before sending,
    /// the owner decrements on consume) — O(1) "any requests?" check.
    std::atomic<std::uint32_t> pending_requests{0};
    Rng rng;
    ExecutorStats stats;
    /// Owner-adapted; atomic only so steal_mode() observers are race-free.
    std::atomic<StealMode> mode{StealMode::kOne};
    unsigned window_requests = 0;
    unsigned window_declines = 0;
    std::vector<std::uint32_t> victim_order;  ///< tree neighbours first
    unsigned tree_count = 0;  ///< leading tree-neighbour entries above
  };

  void worker_loop(unsigned self);
  void inject_ready(TaskId id, unsigned slot) override;
  void push_ready(TaskId id, unsigned self) override;
  ExecutorStats worker_snapshot(unsigned w) const override;

  bool try_get_task(unsigned self, TaskId& out);
  bool pop_local(unsigned self, bool cold, TaskId& out);
  /// One full victim round over victim_order. `allow_cold` marks the
  /// second (cold-accepting) round. True = `out` holds a task.
  bool steal_round(unsigned self, bool allow_cold, TaskId& out);
  /// Answer every pending incoming request (serve or decline). Called at
  /// scheduling boundaries, while idling, and while waiting for a reply
  /// (the latter breaks mutual-steal deadlocks: two workers requesting
  /// from each other both keep declining while they wait).
  void service_requests(unsigned self);
  void adapt_mode(WorkerState& ws, bool declined);
  bool any_work_visible() const;
  SpscChannel<StealRequest>& request_channel(unsigned victim, unsigned thief) {
    return *requests_[victim * num_workers_ + thief];
  }

  Options options_;
  std::vector<std::unique_ptr<WorkerState>> worker_state_;
  /// requests_[victim * n + thief]: thief -> victim, capacity 1 slot (a
  /// thief has at most one request in flight).
  std::vector<std::unique_ptr<SpscChannel<StealRequest>>> requests_;
  /// replies_[thief]: current victim -> thief. Single-consumer; the
  /// producer identity changes between requests, ordered by the protocol
  /// itself (see spsc_channel.hpp).
  std::vector<std::unique_ptr<SpscChannel<StealReply>>> replies_;
  /// Caller -> worker activation inboxes, one hot/cold pair per worker.
  std::vector<std::unique_ptr<SpscChannel<TaskId>>> inbox_hot_;
  std::vector<std::unique_ptr<SpscChannel<TaskId>>> inbox_cold_;
  std::vector<std::thread> workers_;
};

}  // namespace tahoe::task
