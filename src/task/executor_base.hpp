// Shared surface of the real (wall-clock) task-graph executors.
//
// Two scheduling backends implement `IExecutor`:
//
//   * `Executor` (executor.hpp) — Chase–Lev lock-free deques, randomized
//     steal-one; thieves take directly from victims' shared deques.
//   * `ChannelExecutor` (channel_executor.hpp) — private per-worker
//     deques, explicit steal *requests* over bounded SPSC channels,
//     steal-half batches, worker-tree victim selection, and an adaptive
//     steal-one↔steal-half controller.
//
// `ExecutorBase` holds everything the backends share so that `run_real`
// and the tests observe identical semantics regardless of backend: the
// run() orchestration (predecessor counters with activation tokens, the
// sequential-phase group-barrier protocol, round-robin injection scatter
// with a cursor that persists across groups *and* runs), the task-body
// execution wrapper (tracing, error capture, successor release), and the
// stats aggregation/counter-flush pipeline. Backends only provide the
// worker loops and the two handoff primitives: `inject_ready` (caller →
// worker) and `push_ready` (worker → scheduler, for newly released
// successors).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "task/graph.hpp"

namespace tahoe::task {

/// Per-task scheduling hint derived from planned data residency.
enum class TierHint : std::uint8_t {
  kHot = 0,   ///< inputs DRAM-resident (or unknown): run eagerly
  kCold = 1,  ///< inputs NVM-bound: defer while hot work exists
};

/// Scheduler counters. `stats()` returns the totals across all workers and
/// runs; `worker_stats(w)` the per-worker breakdown. The last four fields
/// only move on the channel backend and stay zero on Chase–Lev.
struct ExecutorStats {
  std::uint64_t tasks_run = 0;      ///< tasks executed
  std::uint64_t pushes = 0;         ///< ready-task enqueues
  std::uint64_t pops = 0;           ///< tasks taken from the worker's own deque
  std::uint64_t steals = 0;         ///< tasks obtained from another worker
  std::uint64_t inject_takes = 0;   ///< tasks taken from an injection lane
  std::uint64_t failed_steals = 0;  ///< full victim scans that found nothing
  std::uint64_t parks = 0;          ///< times a worker blocked on the eventcount
  std::uint64_t cold_takes = 0;     ///< NVM-hinted (deferred) tasks executed
  std::uint64_t steal_requests = 0; ///< explicit steal requests sent
  std::uint64_t steal_declines = 0; ///< requests answered with no work
  std::uint64_t steal_halves = 0;   ///< replies carrying more than one task
  std::uint64_t mode_switches = 0;  ///< adaptive steal-one<->steal-half flips
};

/// Eventcount: lets producers skip the kernel entirely while no consumer is
/// parked. Consumers prepare_wait(), re-check their condition, then either
/// cancel_wait() or commit_wait(); producers notify() after publishing
/// work. The seq_cst epoch bump in notify() orders the producer's work
/// publication before its waiter check, closing the classic lost-wakeup
/// window without a mutex on the fast path.
class EventCount {
 public:
  std::uint64_t prepare_wait() noexcept {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    return epoch_.load(std::memory_order_seq_cst);
  }
  void cancel_wait() noexcept {
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }
  void commit_wait(std::uint64_t epoch) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this, epoch] {
      return epoch_.load(std::memory_order_seq_cst) != epoch;
    });
    lock.unlock();
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }
  void notify() {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_seq_cst) == 0) return;
    {
      // Empty critical section: a waiter between its predicate check and
      // its block cannot miss the notify below.
      const std::lock_guard<std::mutex> lock(mutex_);
    }
    cv_.notify_all();
  }

 private:
  alignas(64) std::atomic<std::uint64_t> epoch_{0};
  alignas(64) std::atomic<std::uint64_t> waiters_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

enum class ExecutorBackend : std::uint8_t {
  kChaseLev = 0,  ///< shared Chase–Lev deques, randomized steal-one
  kChannel = 1,   ///< private deques, SPSC steal requests, steal-half
};

/// "chaselev"/"channel" -> backend; nullopt on anything else.
std::optional<ExecutorBackend> parse_executor_backend(std::string_view name);
const char* to_string(ExecutorBackend backend) noexcept;

class IExecutor {
 public:
  virtual ~IExecutor() = default;

  /// Execute every task in the graph respecting dependences. Blocks until
  /// done. `on_group_start`, if provided, is invoked (on the caller
  /// thread, with no tasks of that or later groups running yet) right
  /// before the first task of each group becomes eligible — the hook the
  /// runtime uses to enforce placement at phase boundaries. When the hook
  /// is set, groups are executed as sequential phases (tasks of group g+1
  /// wait for group g), matching the paper's phase semantics; without it
  /// the DAG runs with maximum overlap.
  ///
  /// `tier_hints`, when non-empty, must have one entry per task; kCold
  /// tasks are deferred while any hot work remains. Hints only affect
  /// scheduling order among *ready* tasks — dependences and phase
  /// barriers are always respected.
  virtual void run(const TaskGraph& graph,
                   const std::function<void(GroupId)>& on_group_start = {},
                   std::span<const TierHint> tier_hints = {}) = 0;

  virtual ExecutorBackend backend() const noexcept = 0;
  virtual unsigned num_workers() const noexcept = 0;
  virtual const ExecutorStats& stats() const noexcept = 0;
  /// Per-worker breakdown (totals across runs; snapshot). `w <
  /// num_workers()`.
  virtual ExecutorStats worker_stats(unsigned w) const = 0;
  /// How many group activations run() has scattered into each injection
  /// slot, per worker (caller-thread data, exact between runs). The
  /// round-robin cursor persists across groups and runs, so over many
  /// small groups the counts stay balanced — see the scatter-bias
  /// regression test.
  virtual std::vector<std::uint64_t> injection_slot_pushes() const = 0;
};

/// Factory: construct the requested backend with `num_workers` workers.
std::unique_ptr<IExecutor> make_executor(ExecutorBackend backend,
                                         unsigned num_workers);

namespace detail {

/// Single-writer counter bump, readable concurrently. atomic_ref keeps the
/// stats structs plain aggregates while making cross-thread snapshots
/// race-free; the owner-only load+store pair compiles to a plain add (no
/// lock prefix), unlike fetch_add.
inline void bump(std::uint64_t& counter, std::uint64_t delta = 1) noexcept {
  const std::atomic_ref<std::uint64_t> ref(counter);
  ref.store(ref.load(std::memory_order_relaxed) + delta,
            std::memory_order_relaxed);
}

inline std::uint64_t peek(const std::uint64_t& counter) noexcept {
  // atomic_ref<const T> support is spotty in C++20 libraries; the cast is
  // sound because the ref is only ever used to load.
  return std::atomic_ref<std::uint64_t>(const_cast<std::uint64_t&>(counter))
      .load(std::memory_order_relaxed);
}

ExecutorStats snapshot_stats(const ExecutorStats& s) noexcept;
void accumulate_stats(ExecutorStats& into, const ExecutorStats& s) noexcept;
void subtract_stats(ExecutorStats& from, const ExecutorStats& s) noexcept;

void cpu_relax() noexcept;
/// Exponential backoff: short pause bursts first, then scheduler yields.
void backoff(int round) noexcept;

/// Idle rescans before a worker parks; backoff doubles each round.
inline constexpr int kSpinRounds = 6;

}  // namespace detail

class ExecutorBase : public IExecutor {
 public:
  void run(const TaskGraph& graph,
           const std::function<void(GroupId)>& on_group_start = {},
           std::span<const TierHint> tier_hints = {}) final;

  unsigned num_workers() const noexcept final { return num_workers_; }
  const ExecutorStats& stats() const noexcept final { return stats_; }
  ExecutorStats worker_stats(unsigned w) const final;
  std::vector<std::uint64_t> injection_slot_pushes() const final;

 protected:
  explicit ExecutorBase(unsigned num_workers);

  // --- backend hooks -----------------------------------------------------
  /// Caller-thread activation handoff into the worker `slot`'s injection
  /// lane (hot or cold by `hints_`). Must wake a parked worker.
  virtual void inject_ready(TaskId id, unsigned slot) = 0;
  /// Worker-thread handoff of a newly released successor (called from
  /// execute_task on the releasing worker). Must wake a parked worker.
  virtual void push_ready(TaskId id, unsigned self) = 0;
  /// Owner-consistent snapshot of worker `w`'s counters.
  virtual ExecutorStats worker_snapshot(unsigned w) const = 0;

  // --- shared machinery for backends -------------------------------------
  /// Runs the task body (tracing + error capture), releases successors via
  /// push_ready, and signals the group barrier / run completion. Does NOT
  /// bump tasks_run — the backend's worker loop owns its stats.
  void execute_task(TaskId id, unsigned self);
  bool cold_hint(TaskId id) const noexcept {
    return hints_ != nullptr && hints_[id] == TierHint::kCold;
  }

  unsigned num_workers_ = 0;
  EventCount park_;  ///< idle workers sleep here; producers notify
  const TaskGraph* graph_ = nullptr;  ///< valid during run()
  std::atomic<std::uint32_t> remaining_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> run_active_{false};

 private:
  void flush_stats_to_counters(const ExecutorStats& delta) const;

  const TierHint* hints_ = nullptr;  ///< valid during run(); may be null
  std::vector<std::atomic<std::uint32_t>> pending_preds_;
  std::atomic<std::uint32_t> barrier_remaining_{0};  ///< tasks left in group
  std::mutex run_mutex_;   ///< one run() at a time
  std::mutex done_mutex_;  ///< run() completion wait (cold path)
  std::condition_variable done_cv_;
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
  /// Round-robin injection cursor. Deliberately NOT reset per group or per
  /// run: restarting at slot 0 for every group would pile the eligible
  /// tasks of many small groups onto workers 0..k (the scatter-bias bug
  /// this replaces).
  unsigned inject_cursor_ = 0;
  std::uint64_t caller_pushes_ = 0;  ///< injection pushes (caller thread)
  std::vector<std::uint64_t> inject_slot_pushes_;  ///< per-slot scatter tally
  ExecutorStats stats_;     ///< aggregate, refreshed after each run
  ExecutorStats reported_;  ///< totals already flushed to counters
};

}  // namespace tahoe::task
