#include "task/graph.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace tahoe::task {
namespace {

using Unit = std::pair<hms::ObjectId, std::size_t>;

}  // namespace

std::vector<GroupId> TaskGraph::groups_referencing(hms::ObjectId obj,
                                                   std::size_t chunk) const {
  std::vector<GroupId> out;
  auto merge = [&out](const std::vector<GroupId>& gs) {
    out.insert(out.end(), gs.begin(), gs.end());
  };
  if (chunk == kAllChunks) {
    // Whole-object query: union over every unit of the object.
    for (auto it = unit_groups_.lower_bound(Unit{obj, 0});
         it != unit_groups_.end() && it->first.first == obj; ++it) {
      merge(it->second);
    }
  } else {
    if (const auto it = unit_groups_.find(Unit{obj, chunk});
        it != unit_groups_.end()) {
      merge(it->second);
    }
    if (const auto it = unit_groups_.find(Unit{obj, kAllChunks});
        it != unit_groups_.end()) {
      merge(it->second);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::optional<GroupId> TaskGraph::last_reference_before(hms::ObjectId obj,
                                                        std::size_t chunk,
                                                        GroupId g) const {
  const std::vector<GroupId> refs = groups_referencing(obj, chunk);
  std::optional<GroupId> best;
  for (GroupId r : refs) {
    if (r < g) best = r;
  }
  return best;
}

bool TaskGraph::group_references(GroupId g, hms::ObjectId obj,
                                 std::size_t chunk) const {
  const std::vector<GroupId> refs = groups_referencing(obj, chunk);
  return std::binary_search(refs.begin(), refs.end(), g);
}

std::vector<Unit> TaskGraph::referenced_units() const {
  std::vector<Unit> out;
  out.reserve(unit_groups_.size());
  for (const auto& [unit, groups] : unit_groups_) {
    (void)groups;
    out.push_back(unit);
  }
  return out;
}

bool TaskGraph::edges_respect_program_order() const {
  for (TaskId from = 0; from < succs_.size(); ++from) {
    for (TaskId to : succs_[from]) {
      if (to <= from) return false;
    }
  }
  return true;
}

GroupId GraphBuilder::begin_group(std::string name) {
  const auto g = static_cast<GroupId>(graph_.groups_.size());
  Group grp;
  grp.name = std::move(name);
  grp.first_task = static_cast<TaskId>(graph_.tasks_.size());
  grp.last_task = grp.first_task;
  graph_.groups_.push_back(std::move(grp));
  group_open_ = true;
  return g;
}

void GraphBuilder::add_edge(TaskId from, TaskId to) {
  if (from == to) return;
  // Cheap dedup: consecutive accesses of one task to sibling units would
  // otherwise create the same edge repeatedly.
  if (from < last_target_of_.size() && last_target_of_[from] == to) return;
  if (from >= last_target_of_.size()) {
    last_target_of_.resize(from + 1, static_cast<TaskId>(-1));
  }
  last_target_of_[from] = to;
  graph_.succs_[from].push_back(to);
  ++graph_.pred_count_[to];
  ++graph_.edge_count_;
}

void GraphBuilder::apply_access(const Unit& unit, TaskId tid, bool writes) {
  UnitState& st = unit_state_[unit];
  if (writes) {
    // WAR edges from all readers since the last write, then WAW from the
    // previous writer (if no readers intervened, the WAR set is empty and
    // the WAW edge orders the writes).
    for (TaskId r : st.readers_since_write) add_edge(r, tid);
    if (st.readers_since_write.empty() && st.last_writer) {
      add_edge(*st.last_writer, tid);
    }
    st.last_writer = tid;
    st.readers_since_write.clear();
  } else {
    if (st.last_writer) add_edge(*st.last_writer, tid);  // RAW
    st.readers_since_write.push_back(tid);
  }
}

void GraphBuilder::consult_access(const UnitState& st, TaskId tid,
                                  bool writes) {
  if (writes) {
    for (TaskId r : st.readers_since_write) add_edge(r, tid);
    if (st.readers_since_write.empty() && st.last_writer) {
      add_edge(*st.last_writer, tid);
    }
  } else {
    if (st.last_writer) add_edge(*st.last_writer, tid);
  }
}

TaskId GraphBuilder::add_task(Task t) {
  TAHOE_REQUIRE(group_open_, "add_task outside of a group");
  const auto tid = static_cast<TaskId>(graph_.tasks_.size());
  t.id = tid;
  t.group = static_cast<GroupId>(graph_.groups_.size() - 1);
  TAHOE_REQUIRE(t.compute_seconds >= 0.0, "negative compute time");

  graph_.succs_.emplace_back();
  graph_.pred_count_.push_back(0);

  for (const DataAccess& a : t.accesses) {
    TAHOE_REQUIRE(a.object != hms::kInvalidObject, "access to invalid object");
    const Unit unit{a.object, a.chunk};

    if (a.chunk == kAllChunks) {
      // A whole-object access conflicts with each tracked chunk of the
      // object as well as the whole-object stream itself.
      for (auto it = unit_state_.lower_bound(Unit{a.object, 0});
           it != unit_state_.end() && it->first.first == a.object; ++it) {
        if (it->first.second == kAllChunks) continue;
        apply_access(it->first, tid, a.writes());
      }
      apply_access(unit, tid, a.writes());
    } else {
      // A chunk access also conflicts with the whole-object stream, but
      // must not register in it: same-chunk ordering lives in the chunk's
      // own unit, and registering here would make later accesses to other
      // chunks of the object conflict with this one spuriously.
      if (const auto it = unit_state_.find(Unit{a.object, kAllChunks});
          it != unit_state_.end()) {
        consult_access(it->second, tid, a.writes());
      }
      apply_access(unit, tid, a.writes());
    }

    auto& groups = graph_.unit_groups_[unit];
    if (groups.empty() || groups.back() != t.group) {
      groups.push_back(t.group);
    }
  }

  graph_.groups_.back().last_task = tid + 1;
  graph_.tasks_.push_back(std::move(t));
  return tid;
}

TaskGraph GraphBuilder::build() {
  TAHOE_REQUIRE(!graph_.groups_.empty(), "graph has no groups");
  unit_state_.clear();
  last_target_of_.clear();
  return std::move(graph_);
}

}  // namespace tahoe::task
