#include "task/executor.hpp"

#include <exception>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "trace/counters.hpp"
#include "trace/trace.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace tahoe::task {

namespace {

/// Idle rescans before a worker parks; backoff doubles each round.
constexpr int kSpinRounds = 6;

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

/// Exponential backoff: short pause bursts first, then scheduler yields.
inline void backoff(int round) noexcept {
  if (round < 3) {
    for (int i = 0; i < (1 << round); ++i) cpu_relax();
  } else {
    std::this_thread::yield();
  }
}

/// Single-writer counter bump, readable concurrently. atomic_ref keeps the
/// stats structs plain aggregates while making cross-thread snapshots
/// race-free; the owner-only load+store pair compiles to a plain add (no
/// lock prefix), unlike fetch_add.
inline void bump(std::uint64_t& counter, std::uint64_t delta = 1) noexcept {
  const std::atomic_ref<std::uint64_t> ref(counter);
  ref.store(ref.load(std::memory_order_relaxed) + delta,
            std::memory_order_relaxed);
}

inline std::uint64_t peek(const std::uint64_t& counter) noexcept {
  // atomic_ref<const T> support is spotty in C++20 libraries; the cast is
  // sound because the ref is only ever used to load.
  return std::atomic_ref<std::uint64_t>(const_cast<std::uint64_t&>(counter))
      .load(std::memory_order_relaxed);
}

ExecutorStats snapshot(const ExecutorStats& s) noexcept {
  ExecutorStats out;
  out.tasks_run = peek(s.tasks_run);
  out.pushes = peek(s.pushes);
  out.pops = peek(s.pops);
  out.steals = peek(s.steals);
  out.inject_takes = peek(s.inject_takes);
  out.failed_steals = peek(s.failed_steals);
  out.parks = peek(s.parks);
  out.cold_takes = peek(s.cold_takes);
  return out;
}

void accumulate(ExecutorStats& into, const ExecutorStats& s) noexcept {
  into.tasks_run += s.tasks_run;
  into.pushes += s.pushes;
  into.pops += s.pops;
  into.steals += s.steals;
  into.inject_takes += s.inject_takes;
  into.failed_steals += s.failed_steals;
  into.parks += s.parks;
  into.cold_takes += s.cold_takes;
}

}  // namespace

Executor::Executor(unsigned num_workers) : num_workers_(num_workers) {
  TAHOE_REQUIRE(num_workers >= 1, "executor needs at least one worker");
  worker_state_.reserve(num_workers);
  inject_hot_.reserve(num_workers);
  inject_cold_.reserve(num_workers);
  for (unsigned w = 0; w < num_workers; ++w) {
    // Deterministic per-worker seeds: only the victim rotation uses them.
    worker_state_.push_back(std::make_unique<WorkerState>(0x7a40e + w));
    inject_hot_.push_back(std::make_unique<WsDeque<TaskId>>());
    inject_cold_.push_back(std::make_unique<WsDeque<TaskId>>());
  }
  workers_.reserve(num_workers);
  for (unsigned w = 0; w < num_workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
  if (trace::global().enabled()) {
    for (unsigned w = 0; w < num_workers; ++w) {
      trace::global().set_track_name(w, "worker " + std::to_string(w));
    }
  }
}

Executor::~Executor() {
  // Single ownership: destroying the executor while another thread is
  // inside run() races the graph state. Warn loudly (throwing from a
  // destructor would terminate) and still drain what we can.
  if (run_active_.load(std::memory_order_acquire)) {
    TAHOE_WARN("Executor destroyed while run() is in flight — the executor "
               "must be owned (and outlived) by its running thread");
  }
  // The seq_cst store orders before the eventcount epoch bump inside
  // notify(), so a worker that re-verifies emptiness before blocking
  // either sees stop_ set or gets the epoch-change wakeup — parked workers
  // drain deterministically.
  stop_.store(true, std::memory_order_seq_cst);
  park_.notify();
  for (std::thread& t : workers_) t.join();
}

ExecutorStats Executor::worker_stats(unsigned w) const {
  TAHOE_REQUIRE(w < num_workers_, "worker index out of range");
  return snapshot(worker_state_[w]->stats);
}

void Executor::push_ready(TaskId id, unsigned self) {
  WorkerState& ws = *worker_state_[self];
  const bool cold = hints_ != nullptr && hints_[id] == TierHint::kCold;
  (cold ? ws.cold : ws.hot).push(id);
  bump(ws.stats.pushes);
  park_.notify();
}

void Executor::inject_ready(TaskId id, unsigned slot) {
  const bool cold = hints_ != nullptr && hints_[id] == TierHint::kCold;
  auto& lane = cold ? inject_cold_ : inject_hot_;
  lane[slot % num_workers_]->push(id);
  ++caller_pushes_;
  park_.notify();
}

bool Executor::try_get_task(unsigned self, TaskId& out) {
  WorkerState& ws = *worker_state_[self];
  // 1. Own hot deque (LIFO for locality).
  if (ws.hot.pop(out)) {
    bump(ws.stats.pops);
    return true;
  }
  // 2. Own injection slot: group activations scattered to this worker.
  if (inject_hot_[self]->steal(out)) {
    bump(ws.stats.inject_takes);
    return true;
  }
  // 3. Steal hot work from the others, randomized rotation. DRAM-resident
  // work anywhere beats NVM-bound work here: cold deques are only
  // consulted after the whole hot scan failed.
  const unsigned n = num_workers_;
  const unsigned start = n > 1 ? static_cast<unsigned>(ws.rng.next_below(n)) : 0;
  for (unsigned k = 0; k < n; ++k) {
    const unsigned v = (start + k) % n;
    if (v == self) continue;
    if (worker_state_[v]->hot.steal(out)) {
      bump(ws.stats.steals);
      trace::Tracer& tracer = trace::global();
      if (tracer.enabled()) {
        tracer.instant(self, "steal", trace::now_seconds(), "victim", v);
      }
      return true;
    }
    if (inject_hot_[v]->steal(out)) {
      bump(ws.stats.inject_takes);
      return true;
    }
  }
  // 4. Cold (NVM-bound) work, same order: own, own injection, then steal.
  if (ws.cold.pop(out)) {
    bump(ws.stats.pops);
    bump(ws.stats.cold_takes);
    return true;
  }
  if (inject_cold_[self]->steal(out)) {
    bump(ws.stats.inject_takes);
    bump(ws.stats.cold_takes);
    return true;
  }
  for (unsigned k = 0; k < n; ++k) {
    const unsigned v = (start + k) % n;
    if (v == self) continue;
    if (worker_state_[v]->cold.steal(out)) {
      bump(ws.stats.steals);
      bump(ws.stats.cold_takes);
      return true;
    }
    if (inject_cold_[v]->steal(out)) {
      bump(ws.stats.inject_takes);
      bump(ws.stats.cold_takes);
      return true;
    }
  }
  bump(ws.stats.failed_steals);
  return false;
}

bool Executor::any_work_visible() const {
  for (unsigned w = 0; w < num_workers_; ++w) {
    if (!worker_state_[w]->hot.empty_approx()) return true;
    if (!worker_state_[w]->cold.empty_approx()) return true;
    if (!inject_hot_[w]->empty_approx()) return true;
    if (!inject_cold_[w]->empty_approx()) return true;
  }
  return false;
}

void Executor::worker_loop(unsigned self) {
  WorkerState& ws = *worker_state_[self];
  int idle_rounds = 0;
  // Work-hunt latency: first failed acquisition attempt -> next success.
  // Negative = not hunting. Only measured when histograms are on, so the
  // idle spin path stays clock-free by default.
  double hunt_begin = -1.0;
  for (;;) {
    TaskId id = 0;
    if (try_get_task(self, id)) {
      if (hunt_begin >= 0.0) {
        static trace::Histogram& steal_latency =
            trace::global_counters().histogram(
                "executor.steal_latency_seconds");
        steal_latency.record_seconds(trace::now_seconds() - hunt_begin);
        hunt_begin = -1.0;
      }
      idle_rounds = 0;
      execute_task(id, self);
      continue;
    }
    if (hunt_begin < 0.0 && trace::histograms_enabled()) {
      hunt_begin = trace::now_seconds();
    }
    if (stop_.load(std::memory_order_acquire)) return;
    if (idle_rounds < kSpinRounds) {
      backoff(idle_rounds++);
      continue;
    }
    idle_rounds = 0;
    // Park. prepare_wait() registers us as a waiter *before* the
    // emptiness re-check, so a push that lands in between is guaranteed
    // to bump the epoch and either abort the commit or wake us.
    const std::uint64_t epoch = park_.prepare_wait();
    if (stop_.load(std::memory_order_acquire) || any_work_visible()) {
      park_.cancel_wait();
      continue;
    }
    bump(ws.stats.parks);
    if (trace::histograms_enabled()) {
      const double park_begin = trace::now_seconds();
      park_.commit_wait(epoch);
      static trace::Histogram& park_seconds =
          trace::global_counters().histogram("executor.park_seconds");
      park_seconds.record_seconds(trace::now_seconds() - park_begin);
    } else {
      park_.commit_wait(epoch);
    }
  }
}

void Executor::execute_task(TaskId id, unsigned self) {
  WorkerState& ws = *worker_state_[self];
  const Task& t = graph_->task(id);
  trace::Tracer& tracer = trace::global();
  const bool traced = tracer.enabled();
  const bool hist = trace::histograms_enabled();
  const double begin = (traced || hist) ? trace::now_seconds() : 0.0;
  if (t.work) {
    try {
      t.work();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
  if (traced || hist) {
    const double dur = trace::now_seconds() - begin;
    if (traced) {
      tracer.complete(self, t.label.empty() ? "task" : t.label.c_str(), begin,
                      dur, "task", id, "group", t.group);
    }
    if (hist) {
      static trace::Histogram& task_seconds =
          trace::global_counters().histogram("executor.task_seconds");
      task_seconds.record_seconds(dur);
    }
  }
  bump(ws.stats.tasks_run);
  // Completion: release successors. Every task starts with an extra
  // "activation token" on top of its predecessor count (see run()), so a
  // task is pushed exactly once — by whichever decrement (the last
  // predecessor or its group's activation) brings the counter to zero.
  // This avoids the double-release race between the activation scan and
  // concurrent completions.
  for (TaskId succ : graph_->successors(id)) {
    if (pending_preds_[succ].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      push_ready(succ, self);
    }
  }
  barrier_remaining_.fetch_sub(1, std::memory_order_acq_rel);
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1 ||
      barrier_remaining_.load(std::memory_order_acquire) == 0) {
    {
      // Empty critical section pairs with run()'s predicate check under
      // done_mutex_ so the notify cannot be lost.
      const std::lock_guard<std::mutex> lock(done_mutex_);
    }
    done_cv_.notify_all();
  }
}

void Executor::flush_stats_to_counters(const ExecutorStats& delta) const {
  trace::CounterRegistry& reg = trace::global_counters();
  reg.get("executor.tasks").add(delta.tasks_run);
  reg.get("executor.pushes").add(delta.pushes);
  reg.get("executor.pops").add(delta.pops);
  reg.get("executor.steals").add(delta.steals);
  reg.get("executor.inject_takes").add(delta.inject_takes);
  reg.get("executor.steals_failed").add(delta.failed_steals);
  reg.get("executor.parks").add(delta.parks);
  reg.get("executor.cold_takes").add(delta.cold_takes);
}

void Executor::run(const TaskGraph& graph,
                   const std::function<void(GroupId)>& on_group_start,
                   std::span<const TierHint> tier_hints) {
  const std::lock_guard<std::mutex> run_lock(run_mutex_);
  TAHOE_REQUIRE(graph.num_tasks() > 0, "empty graph");
  TAHOE_REQUIRE(tier_hints.empty() || tier_hints.size() == graph.num_tasks(),
                "tier_hints must be empty or have one entry per task");
  run_active_.store(true, std::memory_order_release);
  graph_ = &graph;
  hints_ = tier_hints.empty() ? nullptr : tier_hints.data();
  first_error_ = nullptr;

  const std::size_t n = graph.num_tasks();
  // (Re)build the pred counters, each holding one extra activation token.
  pending_preds_ = std::vector<std::atomic<std::uint32_t>>(n);
  for (TaskId id = 0; id < n; ++id) {
    pending_preds_[id].store(graph.num_predecessors(id) + 1,
                             std::memory_order_relaxed);
  }
  remaining_.store(static_cast<std::uint32_t>(n), std::memory_order_release);

  const bool phase_mode = static_cast<bool>(on_group_start);
  if (phase_mode) {
    // Sequential phases: activate one group at a time.
    for (GroupId g = 0; g < graph.num_groups(); ++g) {
      const Group& grp = graph.group(g);
      on_group_start(g);
      barrier_remaining_.store(static_cast<std::uint32_t>(grp.size()),
                               std::memory_order_release);
      // Hand each task of the group its activation token; scatter the
      // eligible ones round-robin over the injection deques.
      unsigned slot = 0;
      for (TaskId id = grp.first_task; id < grp.last_task; ++id) {
        if (pending_preds_[id].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          inject_ready(id, slot++);
        }
      }
      // Wait for the group barrier.
      std::unique_lock<std::mutex> lock(done_mutex_);
      done_cv_.wait(lock, [this] {
        return barrier_remaining_.load(std::memory_order_acquire) == 0;
      });
    }
  } else {
    barrier_remaining_.store(static_cast<std::uint32_t>(n),
                             std::memory_order_release);
    unsigned slot = 0;
    for (TaskId id = 0; id < n; ++id) {
      if (pending_preds_[id].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        inject_ready(id, slot++);
      }
    }
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [this] {
      return remaining_.load(std::memory_order_acquire) == 0;
    });
  }

  TAHOE_ASSERT(remaining_.load(std::memory_order_acquire) == 0,
               "run finished with tasks outstanding");
  // Refresh the aggregate stats and flush the delta since the previous
  // run into the global counter registry.
  ExecutorStats total;
  for (unsigned w = 0; w < num_workers_; ++w) {
    accumulate(total, snapshot(worker_state_[w]->stats));
  }
  total.pushes += caller_pushes_;
  ExecutorStats delta = total;
  delta.tasks_run -= reported_.tasks_run;
  delta.pushes -= reported_.pushes;
  delta.pops -= reported_.pops;
  delta.steals -= reported_.steals;
  delta.inject_takes -= reported_.inject_takes;
  delta.failed_steals -= reported_.failed_steals;
  delta.parks -= reported_.parks;
  delta.cold_takes -= reported_.cold_takes;
  flush_stats_to_counters(delta);
  reported_ = total;
  stats_ = total;
  graph_ = nullptr;
  hints_ = nullptr;
  run_active_.store(false, std::memory_order_release);
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace tahoe::task
