#include "task/executor.hpp"

#include "common/assert.hpp"
#include "common/log.hpp"
#include "trace/counters.hpp"
#include "trace/trace.hpp"

namespace tahoe::task {

using detail::bump;

Executor::Executor(unsigned num_workers) : ExecutorBase(num_workers) {
  worker_state_.reserve(num_workers);
  inject_hot_.reserve(num_workers);
  inject_cold_.reserve(num_workers);
  for (unsigned w = 0; w < num_workers; ++w) {
    // Deterministic per-worker seeds: only the victim rotation uses them.
    worker_state_.push_back(std::make_unique<WorkerState>(0x7a40e + w));
    inject_hot_.push_back(std::make_unique<WsDeque<TaskId>>());
    inject_cold_.push_back(std::make_unique<WsDeque<TaskId>>());
  }
  workers_.reserve(num_workers);
  for (unsigned w = 0; w < num_workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
  if (trace::global().enabled()) {
    for (unsigned w = 0; w < num_workers; ++w) {
      trace::global().set_track_name(w, "worker " + std::to_string(w));
    }
  }
}

Executor::~Executor() {
  // Single ownership: destroying the executor while another thread is
  // inside run() races the graph state. Warn loudly (throwing from a
  // destructor would terminate) and still drain what we can.
  if (run_active_.load(std::memory_order_acquire)) {
    TAHOE_WARN("Executor destroyed while run() is in flight — the executor "
               "must be owned (and outlived) by its running thread");
  }
  // The seq_cst store orders before the eventcount epoch bump inside
  // notify(), so a worker that re-verifies emptiness before blocking
  // either sees stop_ set or gets the epoch-change wakeup — parked workers
  // drain deterministically.
  stop_.store(true, std::memory_order_seq_cst);
  park_.notify();
  for (std::thread& t : workers_) t.join();
}

ExecutorStats Executor::worker_snapshot(unsigned w) const {
  return detail::snapshot_stats(worker_state_[w]->stats);
}

void Executor::push_ready(TaskId id, unsigned self) {
  WorkerState& ws = *worker_state_[self];
  (cold_hint(id) ? ws.cold : ws.hot).push(id);
  bump(ws.stats.pushes);
  park_.notify();
}

void Executor::inject_ready(TaskId id, unsigned slot) {
  auto& lane = cold_hint(id) ? inject_cold_ : inject_hot_;
  lane[slot]->push(id);
  park_.notify();
}

bool Executor::try_get_task(unsigned self, TaskId& out) {
  WorkerState& ws = *worker_state_[self];
  // 1. Own hot deque (LIFO for locality).
  if (ws.hot.pop(out)) {
    bump(ws.stats.pops);
    return true;
  }
  // 2. Own injection slot: group activations scattered to this worker.
  if (inject_hot_[self]->steal(out)) {
    bump(ws.stats.inject_takes);
    return true;
  }
  // 3. Steal hot work from the others, randomized rotation. DRAM-resident
  // work anywhere beats NVM-bound work here: cold deques are only
  // consulted after the whole hot scan failed.
  const unsigned n = num_workers_;
  const unsigned start = n > 1 ? static_cast<unsigned>(ws.rng.next_below(n)) : 0;
  for (unsigned k = 0; k < n; ++k) {
    const unsigned v = (start + k) % n;
    if (v == self) continue;
    if (worker_state_[v]->hot.steal(out)) {
      bump(ws.stats.steals);
      trace::Tracer& tracer = trace::global();
      if (tracer.enabled()) {
        tracer.instant(self, "steal", trace::now_seconds(), "victim", v);
      }
      return true;
    }
    if (inject_hot_[v]->steal(out)) {
      bump(ws.stats.inject_takes);
      return true;
    }
  }
  // 4. Cold (NVM-bound) work, same order: own, own injection, then steal.
  if (ws.cold.pop(out)) {
    bump(ws.stats.pops);
    bump(ws.stats.cold_takes);
    return true;
  }
  if (inject_cold_[self]->steal(out)) {
    bump(ws.stats.inject_takes);
    bump(ws.stats.cold_takes);
    return true;
  }
  for (unsigned k = 0; k < n; ++k) {
    const unsigned v = (start + k) % n;
    if (v == self) continue;
    if (worker_state_[v]->cold.steal(out)) {
      bump(ws.stats.steals);
      bump(ws.stats.cold_takes);
      return true;
    }
    if (inject_cold_[v]->steal(out)) {
      bump(ws.stats.inject_takes);
      bump(ws.stats.cold_takes);
      return true;
    }
  }
  // A "failed steal" requires an actual victim scan: with one worker there
  // are no victims, so an empty round is just an idle spin, not a steal
  // that failed (counting those inflated executor.steals_failed on
  // single-worker runs).
  if (n > 1) bump(ws.stats.failed_steals);
  return false;
}

bool Executor::any_work_visible() const {
  for (unsigned w = 0; w < num_workers_; ++w) {
    if (!worker_state_[w]->hot.empty_approx()) return true;
    if (!worker_state_[w]->cold.empty_approx()) return true;
    if (!inject_hot_[w]->empty_approx()) return true;
    if (!inject_cold_[w]->empty_approx()) return true;
  }
  return false;
}

void Executor::worker_loop(unsigned self) {
  WorkerState& ws = *worker_state_[self];
  int idle_rounds = 0;
  // Work-hunt latency: first failed acquisition attempt -> next success.
  // Negative = not hunting. Only measured when histograms are on, so the
  // idle spin path stays clock-free by default.
  double hunt_begin = -1.0;
  for (;;) {
    TaskId id = 0;
    if (try_get_task(self, id)) {
      if (hunt_begin >= 0.0) {
        static trace::Histogram& steal_latency =
            trace::global_counters().histogram(
                "executor.steal_latency_seconds");
        steal_latency.record_seconds(trace::now_seconds() - hunt_begin);
        hunt_begin = -1.0;
      }
      idle_rounds = 0;
      // Count before executing: execute_task's remaining_ decrement is what
      // releases run()'s stats aggregation, so a bump after it could be
      // missed by the snapshot of the run that this task completes.
      bump(ws.stats.tasks_run);
      execute_task(id, self);
      continue;
    }
    if (hunt_begin < 0.0 && trace::histograms_enabled()) {
      hunt_begin = trace::now_seconds();
    }
    if (stop_.load(std::memory_order_acquire)) return;
    if (idle_rounds < detail::kSpinRounds) {
      detail::backoff(idle_rounds++);
      continue;
    }
    idle_rounds = 0;
    // Park. prepare_wait() registers us as a waiter *before* the
    // emptiness re-check, so a push that lands in between is guaranteed
    // to bump the epoch and either abort the commit or wake us.
    const std::uint64_t epoch = park_.prepare_wait();
    if (stop_.load(std::memory_order_acquire) || any_work_visible()) {
      park_.cancel_wait();
      continue;
    }
    bump(ws.stats.parks);
    if (trace::histograms_enabled()) {
      const double park_begin = trace::now_seconds();
      park_.commit_wait(epoch);
      static trace::Histogram& park_seconds =
          trace::global_counters().histogram("executor.park_seconds");
      park_seconds.record_seconds(trace::now_seconds() - park_begin);
    } else {
      park_.commit_wait(epoch);
    }
  }
}

}  // namespace tahoe::task
