#include "task/executor.hpp"

#include <algorithm>
#include <exception>

#include "common/assert.hpp"
#include "trace/counters.hpp"
#include "trace/trace.hpp"

namespace tahoe::task {

namespace {
/// Sentinel meaning "no group is active yet".
constexpr std::uint32_t kNoGroup = 0xffffffffu;
}  // namespace

Executor::Executor(unsigned num_workers) {
  TAHOE_REQUIRE(num_workers >= 1, "executor needs at least one worker");
  queues_.reserve(num_workers);
  for (unsigned w = 0; w < num_workers; ++w) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_workers);
  for (unsigned w = 0; w < num_workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
  if (trace::global().enabled()) {
    for (unsigned w = 0; w < num_workers; ++w) {
      trace::global().set_track_name(w, "worker " + std::to_string(w));
    }
  }
}

Executor::~Executor() {
  {
    // The store must synchronize with the sleepers' predicate check (see
    // push_ready): otherwise a worker that just found the queues empty
    // but has not blocked yet misses this notification forever.
    const std::lock_guard<std::mutex> lock(state_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Executor::push_ready(TaskId id, unsigned hint) {
  WorkerQueue& q = *queues_[hint % queues_.size()];
  {
    const std::lock_guard<std::mutex> lock(q.mutex);
    q.deque.push_back(id);
  }
  // Synchronize with the sleepers' predicate check: without taking
  // state_mutex_ here, a notify could land between a worker's (empty)
  // queue scan and its block on the condition variable and be lost.
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
  }
  work_cv_.notify_one();
}

bool Executor::try_pop(unsigned self, TaskId& out) {
  // Own queue first (LIFO for locality)...
  {
    WorkerQueue& q = *queues_[self];
    const std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.deque.empty()) {
      out = q.deque.back();
      q.deque.pop_back();
      return true;
    }
  }
  // ...then steal round-robin (FIFO from the victim's cold end).
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    WorkerQueue& q = *queues_[(self + k) % queues_.size()];
    const std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.deque.empty()) {
      out = q.deque.front();
      q.deque.pop_front();
      steal_count_.fetch_add(1, std::memory_order_relaxed);
      static trace::Counter& steals =
          trace::global_counters().get("executor.steals");
      steals.increment();
      trace::Tracer& tracer = trace::global();
      if (tracer.enabled()) {
        tracer.instant(self, "steal", trace::now_seconds(), "victim",
                       (self + k) % queues_.size());
      }
      return true;
    }
  }
  return false;
}

void Executor::worker_loop(unsigned self) {
  for (;;) {
    TaskId id = 0;
    if (try_pop(self, id)) {
      execute_task(id, self);
      continue;
    }
    std::unique_lock<std::mutex> lock(state_mutex_);
    work_cv_.wait(lock, [this, self] {
      if (stop_.load(std::memory_order_acquire)) return true;
      // Re-check queues under the cv to avoid lost wakeups.
      for (std::size_t k = 0; k < queues_.size(); ++k) {
        WorkerQueue& q = *queues_[(self + k) % queues_.size()];
        const std::lock_guard<std::mutex> qlock(q.mutex);
        if (!q.deque.empty()) return true;
      }
      return false;
    });
    if (stop_.load(std::memory_order_acquire)) return;
  }
}

void Executor::execute_task(TaskId id, unsigned self) {
  const Task& t = graph_->task(id);
  trace::Tracer& tracer = trace::global();
  const bool traced = tracer.enabled();
  const double begin = traced ? trace::now_seconds() : 0.0;
  if (t.work) {
    try {
      t.work();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
  if (traced) {
    tracer.complete(self, t.label.empty() ? "task" : t.label.c_str(), begin,
                    trace::now_seconds() - begin, "task", id, "group",
                    t.group);
  }
  // Completion: release successors. Every task starts with an extra
  // "activation token" on top of its predecessor count (see run()), so a
  // task is pushed exactly once — by whichever decrement (the last
  // predecessor or its group's activation) brings the counter to zero.
  // This avoids the double-release race between the activation scan and
  // concurrent completions.
  for (TaskId succ : graph_->successors(id)) {
    if (pending_preds_[succ].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      push_ready(succ, self);
    }
  }
  barrier_remaining_.fetch_sub(1, std::memory_order_acq_rel);
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1 ||
      barrier_remaining_.load(std::memory_order_acquire) == 0) {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    done_cv_.notify_all();
  }
}

void Executor::run(const TaskGraph& graph,
                   const std::function<void(GroupId)>& on_group_start) {
  const std::lock_guard<std::mutex> run_lock(run_mutex_);
  TAHOE_REQUIRE(graph.num_tasks() > 0, "empty graph");
  graph_ = &graph;
  first_error_ = nullptr;

  const std::size_t n = graph.num_tasks();
  // (Re)build the pred counters, each holding one extra activation token.
  pending_preds_ = std::vector<std::atomic<std::uint32_t>>(n);
  for (TaskId id = 0; id < n; ++id) {
    pending_preds_[id].store(graph.num_predecessors(id) + 1,
                             std::memory_order_relaxed);
  }
  remaining_.store(static_cast<std::uint32_t>(n), std::memory_order_release);

  const bool phase_mode = static_cast<bool>(on_group_start);
  if (phase_mode) {
    // Sequential phases: activate one group at a time.
    for (GroupId g = 0; g < graph.num_groups(); ++g) {
      const Group& grp = graph.group(g);
      on_group_start(g);
      barrier_remaining_.store(static_cast<std::uint32_t>(grp.size()),
                               std::memory_order_release);
      active_group_.store(g, std::memory_order_release);
      // Hand each task of the group its activation token.
      unsigned hint = 0;
      for (TaskId id = grp.first_task; id < grp.last_task; ++id) {
        if (pending_preds_[id].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          push_ready(id, hint++);
        }
      }
      // Wait for the group barrier.
      std::unique_lock<std::mutex> lock(state_mutex_);
      done_cv_.wait(lock, [this] {
        return barrier_remaining_.load(std::memory_order_acquire) == 0;
      });
    }
  } else {
    active_group_.store(static_cast<std::uint32_t>(graph.num_groups() - 1),
                        std::memory_order_release);
    barrier_remaining_.store(static_cast<std::uint32_t>(n),
                             std::memory_order_release);
    unsigned hint = 0;
    for (TaskId id = 0; id < n; ++id) {
      if (pending_preds_[id].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        push_ready(id, hint++);
      }
    }
    std::unique_lock<std::mutex> lock(state_mutex_);
    done_cv_.wait(lock, [this] {
      return remaining_.load(std::memory_order_acquire) == 0;
    });
  }

  TAHOE_ASSERT(remaining_.load(std::memory_order_acquire) == 0,
               "run finished with tasks outstanding");
  stats_.tasks_run += n;
  stats_.steals = steal_count_.load(std::memory_order_relaxed);
  graph_ = nullptr;
  active_group_.store(kNoGroup, std::memory_order_release);
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace tahoe::task
