// Task graph: program-order construction, automatic dependence derivation,
// and the reference-index queries the data-placement planner needs.
//
// Tasks are appended in program order inside *groups*. A group is the
// task-parallel analogue of the paper line's execution phase: one static
// task-creation site of the iterative application (all tasks it spawns in
// one iteration). Group boundaries are where placement decisions attach and
// where proactive migrations are triggered/awaited.
//
// Dependences are derived from declared access sets at (object, chunk)
// granularity, with OpenMP-style semantics: read-after-write,
// write-after-read, and write-after-write conflicts create edges. A
// whole-object access conflicts with every chunk of that object.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "task/task.hpp"

namespace tahoe::task {

struct Group {
  std::string name;
  TaskId first_task = 0;  ///< inclusive
  TaskId last_task = 0;   ///< exclusive

  std::size_t size() const noexcept { return last_task - first_task; }
};

class TaskGraph {
 public:
  const std::vector<Task>& tasks() const noexcept { return tasks_; }
  const Task& task(TaskId id) const { return tasks_.at(id); }
  std::size_t num_tasks() const noexcept { return tasks_.size(); }

  const std::vector<Group>& groups() const noexcept { return groups_; }
  const Group& group(GroupId g) const { return groups_.at(g); }
  std::size_t num_groups() const noexcept { return groups_.size(); }

  const std::vector<TaskId>& successors(TaskId id) const {
    return succs_.at(id);
  }
  std::uint32_t num_predecessors(TaskId id) const { return pred_count_.at(id); }
  std::size_t num_edges() const noexcept { return edge_count_; }

  /// Groups that reference the given unit, ascending. A chunk query also
  /// includes groups that referenced the whole object, and a whole-object
  /// query includes groups that referenced any chunk.
  std::vector<GroupId> groups_referencing(hms::ObjectId obj,
                                          std::size_t chunk) const;

  /// Latest group strictly before `g` that references the unit; nullopt if
  /// none. This bounds how early a proactive migration may be triggered.
  std::optional<GroupId> last_reference_before(hms::ObjectId obj,
                                               std::size_t chunk,
                                               GroupId g) const;

  /// Does any task of group `g` access the unit?
  bool group_references(GroupId g, hms::ObjectId obj, std::size_t chunk) const;

  /// All (object, chunk) units referenced anywhere, with chunk == kAllChunks
  /// entries listed as-is.
  std::vector<std::pair<hms::ObjectId, std::size_t>> referenced_units() const;

  /// Topological sanity: true when every edge goes from a lower- or
  /// equal-group task to a later task in program order (always holds for
  /// builder-produced graphs; exposed for property tests).
  bool edges_respect_program_order() const;

 private:
  friend class GraphBuilder;

  std::vector<Task> tasks_;
  std::vector<Group> groups_;
  std::vector<std::vector<TaskId>> succs_;
  std::vector<std::uint32_t> pred_count_;
  std::size_t edge_count_ = 0;
  /// unit -> ascending group ids referencing it (deduplicated).
  std::map<std::pair<hms::ObjectId, std::size_t>, std::vector<GroupId>>
      unit_groups_;
};

class GraphBuilder {
 public:
  /// Open a new group; subsequent add_task calls attach to it.
  GroupId begin_group(std::string name);

  /// Append a task to the current group (a group must be open). The task's
  /// id and group fields are assigned by the builder. Returns the id.
  TaskId add_task(Task t);

  /// Finalize. The builder must not be reused afterwards.
  TaskGraph build();

  std::size_t num_tasks() const noexcept { return graph_.tasks_.size(); }

 private:
  struct UnitState {
    std::optional<TaskId> last_writer;
    std::vector<TaskId> readers_since_write;
  };

  void add_edge(TaskId from, TaskId to);
  /// Apply one access to the dependence state of `unit`.
  void apply_access(const std::pair<hms::ObjectId, std::size_t>& unit,
                    TaskId tid, bool writes);
  /// Add the edges an access would get from `st` without registering in it.
  /// Used to order chunk accesses against the whole-object stream: the
  /// stream must stay kAllChunks-only, or accesses to sibling chunks would
  /// pick each other up as spurious conflicts through it.
  void consult_access(const UnitState& st, TaskId tid, bool writes);

  TaskGraph graph_;
  bool group_open_ = false;
  std::map<std::pair<hms::ObjectId, std::size_t>, UnitState> unit_state_;
  /// Dedup edges from the same source to the same target.
  std::vector<TaskId> last_target_of_;  // indexed by source task id
};

}  // namespace tahoe::task
