// Bounded single-producer/single-consumer channel.
//
// The channel-based executor (channel_executor.hpp) communicates through
// explicit messages instead of shared concurrent deques: steal *requests*
// and task-batch *replies* travel over these channels, and the run()
// caller scatters group activations into per-worker inbox channels. Every
// channel has exactly one producer and one consumer *at a time*, which is
// all an SPSC ring needs: the producer owns `tail_`, the consumer owns
// `head_`, and a release store on the owned index publishes the slot to
// the other side.
//
// The producer identity MAY change over the channel's lifetime (a thief's
// reply channel is written by whichever victim answers its current
// request) as long as successive producers are ordered by some external
// happens-before chain — here the request/reply protocol itself: victim B
// only writes after receiving a request the thief sent after consuming
// victim A's reply. The acquire load of `tail_` in try_send() then
// observes A's final value. The same holds symmetrically for consumers.
//
// T must be trivially copyable: slots are plain storage whose accesses are
// ordered exclusively through the index atomics (this is what keeps the
// structure ThreadSanitizer-clean without annotations).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "common/assert.hpp"

namespace tahoe::task {

template <typename T>
class SpscChannel {
  static_assert(std::is_trivially_copyable_v<T>,
                "SpscChannel slots are synchronized only through the "
                "head/tail indices");

 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SpscChannel(std::size_t capacity)
      : capacity_(round_up_pow2(capacity)),
        mask_(capacity_ - 1),
        slots_(new T[capacity_]) {}

  SpscChannel(const SpscChannel&) = delete;
  SpscChannel& operator=(const SpscChannel&) = delete;

  /// Producer only. Returns false when the channel is full.
  bool try_send(const T& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= capacity_) return false;
    slots_[tail & mask_] = value;
    // Publishes the slot write above to the consumer's acquire load.
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer only. Returns false when the channel is empty.
  bool try_recv(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    out = slots_[head & mask_];
    // Releases the slot back to the producer.
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Racy occupancy estimate (exact when quiescent).
  std::size_t size_approx() const noexcept {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  bool empty_approx() const noexcept { return size_approx() == 0; }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    TAHOE_REQUIRE(n >= 1, "channel capacity must be at least 1");
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<T[]> slots_;
  // Consumer-owned and producer-owned cursors on separate cache lines so
  // the two sides do not false-share.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace tahoe::task
