#include "task/sim_executor.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <tuple>

#include "common/assert.hpp"
#include "memsim/fluid.hpp"
#include "trace/counters.hpp"
#include "trace/telemetry.hpp"

namespace tahoe::task {
namespace {

// Flow tags: tasks use their id; copies use kCopyBit | schedule index.
constexpr std::uint64_t kCopyBit = 1ULL << 63;

struct CopyState {
  bool fired = false;
  bool done = false;
  bool in_flight = false;
  memsim::DeviceId src = memsim::kDram;  ///< captured at start for tracing
};

}  // namespace

SimReport SimExecutor::run(const TaskGraph& graph,
                           const memsim::Machine& machine,
                           hms::PlacementMap& placement,
                           const std::vector<ScheduledCopy>& schedule,
                           const Options& options) {
  TAHOE_REQUIRE(graph.num_tasks() > 0, "empty graph");
  for (const ScheduledCopy& c : schedule) {
    TAHOE_REQUIRE(c.trigger_group <= c.needed_group,
                  "copy triggered after it is needed");
    TAHOE_REQUIRE(c.needed_group < graph.num_groups() + 1,
                  "copy needed past the end of the graph");
  }

  const std::uint32_t workers =
      options.workers != 0 ? options.workers : machine.workers;
  TAHOE_REQUIRE(workers >= 1, "need at least one worker");

  // Instrumentation is fully skipped (not just null-sunk) when the tracer
  // is absent or disabled.
  trace::Tracer* const tracer =
      (options.tracer != nullptr && options.tracer->enabled())
          ? options.tracer
          : nullptr;
  const double t0 = options.trace_time_offset;

  // Progress counter + telemetry driver. The counter registration is
  // hoisted out of the task-completion loop; the sampler pointer is only
  // non-null when the sampler is armed, so steady-state runs pay one
  // relaxed load here and nothing per task.
  trace::Counter& tasks_executed =
      trace::global_counters().get("sim.tasks_executed");
  trace::TelemetrySampler* const sampler =
      trace::telemetry().enabled() ? &trace::telemetry() : nullptr;

  memsim::FluidSim::Tuning sim_tuning;
  if (options.sim_lazy_threshold != 0) {
    sim_tuning.lazy_threshold = options.sim_lazy_threshold;
  }
  memsim::FluidSim sim(machine.devices.size(), sim_tuning);
  SimReport report;
  report.group_seconds.assign(graph.num_groups(), 0.0);
  report.group_start.assign(graph.num_groups(), 0.0);
  report.task_seconds.assign(graph.num_tasks(), 0.0);

  // Dependence counters.
  std::vector<std::uint32_t> pending(graph.num_tasks());
  for (TaskId id = 0; id < graph.num_tasks(); ++id) {
    pending[id] = graph.num_predecessors(id);
  }

  // Copy machinery: FIFO of fired copies, single copy in flight.
  std::vector<CopyState> copy_state(schedule.size());
  std::deque<std::size_t> copy_fifo;
  std::size_t in_flight_copy = schedule.size();  // sentinel: none
  std::map<memsim::FlowId, std::size_t> copy_flow_to_idx;

  // Group-indexed views of the schedule so entering a group touches only
  // its own copies instead of rescanning the whole schedule (which made
  // large sweep scenarios quadratic in the schedule length). Order within
  // a group is schedule order, preserving the firing FIFO semantics.
  std::vector<std::vector<std::size_t>> fired_at(graph.num_groups());
  std::vector<std::vector<std::size_t>> needed_at(graph.num_groups());
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    if (schedule[i].trigger_group < graph.num_groups()) {
      fired_at[schedule[i].trigger_group].push_back(i);
    }
    if (schedule[i].needed_group < graph.num_groups()) {
      needed_at[schedule[i].needed_group].push_back(i);
    }
  }

  // Attribution tables (std::map keeps the dump order deterministic).
  std::map<std::tuple<GroupId, hms::ObjectId, memsim::DeviceId>, AccessTally>
      acc_tally;
  std::map<std::tuple<hms::ObjectId, memsim::DeviceId, memsim::DeviceId>,
           CopyTally>
      cp_tally;

  // DRAM-occupancy counter track: needs the unit-size oracle to price the
  // initial residency; updated at every completed copy.
  const bool track_occupancy = tracer != nullptr && options.unit_size != nullptr;
  std::uint64_t dram_occupancy = 0;
  if (track_occupancy) {
    dram_occupancy =
        placement.bytes_on(memsim::kDram, [&](hms::ObjectId o, std::size_t ch) {
          return options.unit_size(o, ch);
        });
    tracer->counter(trace::kRuntimeTrack, "dram_occupancy_bytes", t0,
                    dram_occupancy);
  }

  // Start queued copies until one is in flight (copies whose source
  // already equals the destination — e.g. residency left over from a
  // previous iteration — complete immediately and cost nothing).
  auto start_next = [&]() {
    while (in_flight_copy == schedule.size() && !copy_fifo.empty()) {
      const std::size_t idx = copy_fifo.front();
      copy_fifo.pop_front();
      const ScheduledCopy& c = schedule[idx];
      const memsim::DeviceId src = placement.device_of(c.object, c.chunk);
      if (src == c.dst) {
        copy_state[idx].done = true;
        continue;  // nothing to move; try the next queued copy
      }
      const memsim::FlowSpec spec =
          machine.copy_flow(c.bytes, src, c.dst, kCopyBit | idx);
      const memsim::FlowId fid = sim.start_flow(spec);
      copy_flow_to_idx[fid] = idx;
      copy_state[idx].in_flight = true;
      copy_state[idx].src = src;
      in_flight_copy = idx;
      if (tracer != nullptr) {
        tracer->counter(trace::kMigrationTrack, "copy_queue_depth",
                        t0 + sim.now(), copy_fifo.size() + 1);
        // Bandwidth-in-flight per direction: one copy at a time, so the
        // track toggles between 0 and the copy's size.
        tracer->counter(trace::kMigrationTrack,
                        c.dst == memsim::kDram ? "inflight_to_dram_bytes"
                                               : "inflight_to_nvm_bytes",
                        t0 + sim.now(), c.bytes);
      }
    }
  };

  auto complete_copy = [&](std::size_t idx, double duration, bool hidden) {
    const ScheduledCopy& c = schedule[idx];
    if (tracer != nullptr) {
      trace::TraceEvent ev;
      ev.kind = trace::EventKind::Complete;
      ev.track = trace::kMigrationTrack;
      ev.ts = t0 + sim.now() - duration;
      ev.dur = duration;
      const std::string label =
          "migrate " + machine.devices[copy_state[idx].src].name + "->" +
          machine.devices[c.dst].name;
      ev.set_name(label.c_str());
      ev.add_arg("bytes", c.bytes);
      ev.add_arg("src_tier", copy_state[idx].src);
      ev.add_arg("dst_tier", c.dst);
      ev.add_arg("object", c.object);
      tracer->emit(ev);
    }
    // Metrics registry: bytes moved per (src, dst) tier pair.
    trace::global_counters()
        .get("migrate.bytes.t" + std::to_string(copy_state[idx].src) + "_t" +
             std::to_string(c.dst))
        .add(c.bytes);
    copy_state[idx].in_flight = false;
    copy_state[idx].done = true;
    placement.set(c.object, c.chunk, c.dst);
    ++report.copies_done;
    report.bytes_copied += c.bytes;
    report.copy_busy_seconds += duration;
    if (trace::histograms_enabled()) {
      static trace::Histogram& copy_seconds =
          trace::global_counters().histogram("sim.copy_seconds");
      copy_seconds.record_seconds(duration);
    }
    if (options.attribution) {
      CopyTally& tally = cp_tally[{c.object, copy_state[idx].src, c.dst}];
      tally.object = c.object;
      tally.src = copy_state[idx].src;
      tally.dst = c.dst;
      ++tally.copies;
      tally.bytes += c.bytes;
      if (hidden) ++tally.hidden;
    }
    TAHOE_ASSERT(in_flight_copy == idx, "copy completion out of order");
    in_flight_copy = schedule.size();
    if (tracer != nullptr) {
      tracer->counter(trace::kMigrationTrack, "copy_queue_depth",
                      t0 + sim.now(), copy_fifo.size());
      tracer->counter(trace::kMigrationTrack,
                      c.dst == memsim::kDram ? "inflight_to_dram_bytes"
                                             : "inflight_to_nvm_bytes",
                      t0 + sim.now(), std::uint64_t{0});
    }
    if (track_occupancy) {
      if (c.dst == memsim::kDram) {
        dram_occupancy += c.bytes;
      } else if (copy_state[idx].src == memsim::kDram) {
        dram_occupancy = dram_occupancy >= c.bytes ? dram_occupancy - c.bytes
                                                   : 0;
      }
      tracer->counter(trace::kRuntimeTrack, "dram_occupancy_bytes",
                      t0 + sim.now(), dram_occupancy);
    }
    if (options.check_capacity && options.unit_size &&
        c.dst < machine.devices.size()) {
      const std::uint64_t resident = placement.bytes_on(
          c.dst, [&](hms::ObjectId o, std::size_t ch) {
            return options.unit_size(o, ch);
          });
      TAHOE_ASSERT(resident <= machine.devices[c.dst].capacity,
                   "placement exceeded device capacity");
    }
    start_next();
  };

  // Worker-lane bookkeeping for tracing: the fluid sim has no thread
  // identity, so each running task borrows a free lane (0..workers-1) and
  // its span lands on that lane's track — giving the familiar one-row-per-
  // worker timeline.
  std::vector<std::uint32_t> task_lane;
  std::vector<std::uint32_t> free_lanes;
  if (tracer != nullptr) {
    task_lane.assign(graph.num_tasks(), 0);
    free_lanes.reserve(workers);
    for (std::uint32_t w = workers; w > 0; --w) free_lanes.push_back(w - 1);
  }

  // Build the flow for one task under the current placement.
  auto start_task = [&](TaskId id) {
    const Task& t = graph.task(id);
    std::vector<std::pair<memsim::ObjectTraffic, memsim::DeviceId>> acc;
    acc.reserve(t.accesses.size());
    for (const DataAccess& a : t.accesses) {
      const std::size_t chunk = (a.chunk == kAllChunks) ? 0 : a.chunk;
      // Whole-object accesses to chunked objects are charged per chunk by
      // the workload layer; kAllChunks here refers to unit 0's placement.
      const memsim::DeviceId dev = placement.device_of(a.object, chunk);
      acc.emplace_back(a.traffic, dev);
      if (options.attribution) {
        AccessTally& tally = acc_tally[{t.group, a.object, dev}];
        tally.group = t.group;
        tally.object = a.object;
        tally.device = dev;
        tally.loads += a.traffic.loads;
        tally.stores += a.traffic.stores;
        ++tally.tasks;
      }
    }
    const memsim::FlowSpec spec =
        machine.task_flow(t.compute_seconds, acc, t.id);
    (void)sim.start_flow(spec);
    if (tracer != nullptr) {
      TAHOE_ASSERT(!free_lanes.empty(), "more running tasks than workers");
      task_lane[id] = free_lanes.back();
      free_lanes.pop_back();
    }
  };

  // ---- main phase loop ----------------------------------------------
  for (GroupId g = 0; g < graph.num_groups(); ++g) {
    const Group& grp = graph.group(g);

    // Fire copies triggered at this group's entry, in schedule order.
    for (const std::size_t i : fired_at[g]) {
      if (!copy_state[i].fired) {
        copy_state[i].fired = true;
        copy_fifo.push_back(i);
      }
    }
    start_next();

    // Wait for the copies this group needs (stall = exposed move cost).
    auto needed_pending = [&]() {
      for (const std::size_t i : needed_at[g]) {
        if (copy_state[i].fired && !copy_state[i].done) return true;
      }
      return false;
    };
    const double wait_begin = sim.now();
    while (needed_pending()) {
      const auto completion = sim.step();
      TAHOE_ASSERT(completion.has_value(),
                   "waiting on copies but no active flows");
      const auto it = copy_flow_to_idx.find(completion->id);
      TAHOE_ASSERT(it != copy_flow_to_idx.end(),
                   "unexpected task completion while only copies should run");
      // A copy the group is blocked on is exposed, not hidden.
      complete_copy(it->second, completion->time - completion->start_time,
                    /*hidden=*/false);
    }
    // Telemetry rides the same run-relative virtual clock as the trace:
    // t0 carries the run's accumulated iteration time, and begin_run()
    // restarts the sampler's epoch at each new Runtime entry point.
    report.stall_seconds += sim.now() - wait_begin;
    if (sampler != nullptr) sampler->advance_virtual(t0 + sim.now());
    if (tracer != nullptr && sim.now() > wait_begin) {
      tracer->complete(trace::kRuntimeTrack, "migration-stall",
                       t0 + wait_begin, sim.now() - wait_begin, "group", g);
    }

    // Run the group's tasks.
    report.group_start[g] = sim.now();
    std::vector<TaskId> ready;
    for (TaskId id = grp.first_task; id < grp.last_task; ++id) {
      if (pending[id] == 0) ready.push_back(id);
    }
    std::size_t running = 0;
    std::size_t remaining = grp.size();
    std::size_t next_ready = 0;
    while (remaining > 0) {
      while (running < workers && next_ready < ready.size()) {
        start_task(ready[next_ready++]);
        ++running;
      }
      const auto completion = sim.step();
      TAHOE_ASSERT(completion.has_value(), "group deadlock in simulation");
      if (completion->tag & kCopyBit) {
        const auto it = copy_flow_to_idx.find(completion->id);
        TAHOE_ASSERT(it != copy_flow_to_idx.end(), "unknown copy flow");
        complete_copy(it->second, completion->time - completion->start_time,
                      /*hidden=*/true);
        continue;
      }
      const auto tid = static_cast<TaskId>(completion->tag);
      report.task_seconds[tid] = completion->time - completion->start_time;
      tasks_executed.increment();
      if (trace::histograms_enabled()) {
        static trace::Histogram& task_durations =
            trace::global_counters().histogram("sim.task_seconds");
        task_durations.record_seconds(report.task_seconds[tid]);
      }
      if (tracer != nullptr) {
        const Task& t = graph.task(tid);
        tracer->complete(task_lane[tid],
                         t.label.empty() ? "task" : t.label.c_str(),
                         t0 + completion->start_time,
                         completion->time - completion->start_time, "task",
                         tid, "group", g);
        free_lanes.push_back(task_lane[tid]);
      }
      --running;
      --remaining;
      for (TaskId succ : graph.successors(tid)) {
        TAHOE_ASSERT(pending[succ] > 0, "pred counter underflow");
        if (--pending[succ] == 0 && graph.task(succ).group == g) {
          ready.push_back(succ);
        }
      }
    }
    report.group_seconds[g] = sim.now() - report.group_start[g];
    if (sampler != nullptr) sampler->advance_virtual(t0 + sim.now());
    if (tracer != nullptr) {
      const std::string label = "group " + grp.name;
      tracer->complete(trace::kRuntimeTrack, label.c_str(),
                       t0 + report.group_start[g], report.group_seconds[g],
                       "tasks", grp.size());
    }
  }

  report.makespan = sim.now();

  // Drain any trailing copies (they do not extend the makespan, but their
  // busy time and placement effects are accounted for).
  while (in_flight_copy != schedule.size() || !copy_fifo.empty()) {
    start_next();
    if (in_flight_copy == schedule.size()) break;  // all remaining were no-ops
    const auto completion = sim.step();
    TAHOE_ASSERT(completion.has_value(), "copy drain deadlock");
    const auto it = copy_flow_to_idx.find(completion->id);
    TAHOE_ASSERT(it != copy_flow_to_idx.end(), "unknown trailing flow");
    complete_copy(it->second, completion->time - completion->start_time,
                  /*hidden=*/true);
  }

  report.device_busy_seconds.resize(machine.devices.size());
  for (std::size_t d = 0; d < machine.devices.size(); ++d) {
    report.device_busy_seconds[d] = sim.device_busy_seconds(d);
  }
  if (options.attribution) {
    report.access_tallies.reserve(acc_tally.size());
    for (const auto& [key, tally] : acc_tally) {
      report.access_tallies.push_back(tally);
    }
    report.copy_tallies.reserve(cp_tally.size());
    for (const auto& [key, tally] : cp_tally) {
      report.copy_tallies.push_back(tally);
    }
  }
  return report;
}

}  // namespace tahoe::task
