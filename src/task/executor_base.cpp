#include "task/executor_base.hpp"

#include <thread>

#include "common/assert.hpp"
#include "task/channel_executor.hpp"
#include "task/executor.hpp"
#include "trace/counters.hpp"
#include "trace/trace.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace tahoe::task {

namespace detail {

void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

void backoff(int round) noexcept {
  if (round < 3) {
    for (int i = 0; i < (1 << round); ++i) cpu_relax();
  } else {
    std::this_thread::yield();
  }
}

ExecutorStats snapshot_stats(const ExecutorStats& s) noexcept {
  ExecutorStats out;
  out.tasks_run = peek(s.tasks_run);
  out.pushes = peek(s.pushes);
  out.pops = peek(s.pops);
  out.steals = peek(s.steals);
  out.inject_takes = peek(s.inject_takes);
  out.failed_steals = peek(s.failed_steals);
  out.parks = peek(s.parks);
  out.cold_takes = peek(s.cold_takes);
  out.steal_requests = peek(s.steal_requests);
  out.steal_declines = peek(s.steal_declines);
  out.steal_halves = peek(s.steal_halves);
  out.mode_switches = peek(s.mode_switches);
  return out;
}

void accumulate_stats(ExecutorStats& into, const ExecutorStats& s) noexcept {
  into.tasks_run += s.tasks_run;
  into.pushes += s.pushes;
  into.pops += s.pops;
  into.steals += s.steals;
  into.inject_takes += s.inject_takes;
  into.failed_steals += s.failed_steals;
  into.parks += s.parks;
  into.cold_takes += s.cold_takes;
  into.steal_requests += s.steal_requests;
  into.steal_declines += s.steal_declines;
  into.steal_halves += s.steal_halves;
  into.mode_switches += s.mode_switches;
}

void subtract_stats(ExecutorStats& from, const ExecutorStats& s) noexcept {
  from.tasks_run -= s.tasks_run;
  from.pushes -= s.pushes;
  from.pops -= s.pops;
  from.steals -= s.steals;
  from.inject_takes -= s.inject_takes;
  from.failed_steals -= s.failed_steals;
  from.parks -= s.parks;
  from.cold_takes -= s.cold_takes;
  from.steal_requests -= s.steal_requests;
  from.steal_declines -= s.steal_declines;
  from.steal_halves -= s.steal_halves;
  from.mode_switches -= s.mode_switches;
}

}  // namespace detail

std::optional<ExecutorBackend> parse_executor_backend(std::string_view name) {
  if (name == "chaselev") return ExecutorBackend::kChaseLev;
  if (name == "channel") return ExecutorBackend::kChannel;
  return std::nullopt;
}

const char* to_string(ExecutorBackend backend) noexcept {
  switch (backend) {
    case ExecutorBackend::kChaseLev: return "chaselev";
    case ExecutorBackend::kChannel: return "channel";
  }
  return "unknown";
}

std::unique_ptr<IExecutor> make_executor(ExecutorBackend backend,
                                         unsigned num_workers) {
  switch (backend) {
    case ExecutorBackend::kChaseLev:
      return std::make_unique<Executor>(num_workers);
    case ExecutorBackend::kChannel:
      return std::make_unique<ChannelExecutor>(num_workers);
  }
  TAHOE_REQUIRE(false, "unknown executor backend");
  return nullptr;
}

ExecutorBase::ExecutorBase(unsigned num_workers) : num_workers_(num_workers) {
  TAHOE_REQUIRE(num_workers >= 1, "executor needs at least one worker");
  inject_slot_pushes_.assign(num_workers, 0);
}

ExecutorStats ExecutorBase::worker_stats(unsigned w) const {
  TAHOE_REQUIRE(w < num_workers_, "worker index out of range");
  return worker_snapshot(w);
}

std::vector<std::uint64_t> ExecutorBase::injection_slot_pushes() const {
  return inject_slot_pushes_;
}

void ExecutorBase::execute_task(TaskId id, unsigned self) {
  const Task& t = graph_->task(id);
  trace::Tracer& tracer = trace::global();
  const bool traced = tracer.enabled();
  const bool hist = trace::histograms_enabled();
  const double begin = (traced || hist) ? trace::now_seconds() : 0.0;
  if (t.work) {
    try {
      t.work();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
  if (traced || hist) {
    const double dur = trace::now_seconds() - begin;
    if (traced) {
      tracer.complete(self, t.label.empty() ? "task" : t.label.c_str(), begin,
                      dur, "task", id, "group", t.group);
    }
    if (hist) {
      static trace::Histogram& task_seconds =
          trace::global_counters().histogram("executor.task_seconds");
      task_seconds.record_seconds(dur);
    }
  }
  // Completion: release successors. Every task starts with an extra
  // "activation token" on top of its predecessor count (see run()), so a
  // task is pushed exactly once — by whichever decrement (the last
  // predecessor or its group's activation) brings the counter to zero.
  // This avoids the double-release race between the activation scan and
  // concurrent completions.
  for (TaskId succ : graph_->successors(id)) {
    if (pending_preds_[succ].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      push_ready(succ, self);
    }
  }
  barrier_remaining_.fetch_sub(1, std::memory_order_acq_rel);
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1 ||
      barrier_remaining_.load(std::memory_order_acquire) == 0) {
    {
      // Empty critical section pairs with run()'s predicate check under
      // done_mutex_ so the notify cannot be lost.
      const std::lock_guard<std::mutex> lock(done_mutex_);
    }
    done_cv_.notify_all();
  }
}

void ExecutorBase::flush_stats_to_counters(const ExecutorStats& delta) const {
  trace::CounterRegistry& reg = trace::global_counters();
  reg.get("executor.tasks").add(delta.tasks_run);
  reg.get("executor.pushes").add(delta.pushes);
  reg.get("executor.pops").add(delta.pops);
  reg.get("executor.steals").add(delta.steals);
  reg.get("executor.inject_takes").add(delta.inject_takes);
  reg.get("executor.steals_failed").add(delta.failed_steals);
  reg.get("executor.parks").add(delta.parks);
  reg.get("executor.cold_takes").add(delta.cold_takes);
  reg.get("executor.steal_requests").add(delta.steal_requests);
  reg.get("executor.steal_declines").add(delta.steal_declines);
  reg.get("executor.steal_halves").add(delta.steal_halves);
  reg.get("executor.mode_switches").add(delta.mode_switches);
}

void ExecutorBase::run(const TaskGraph& graph,
                       const std::function<void(GroupId)>& on_group_start,
                       std::span<const TierHint> tier_hints) {
  const std::lock_guard<std::mutex> run_lock(run_mutex_);
  TAHOE_REQUIRE(graph.num_tasks() > 0, "empty graph");
  TAHOE_REQUIRE(tier_hints.empty() || tier_hints.size() == graph.num_tasks(),
                "tier_hints must be empty or have one entry per task");
  run_active_.store(true, std::memory_order_release);
  graph_ = &graph;
  hints_ = tier_hints.empty() ? nullptr : tier_hints.data();
  first_error_ = nullptr;

  const std::size_t n = graph.num_tasks();
  // (Re)build the pred counters, each holding one extra activation token.
  pending_preds_ = std::vector<std::atomic<std::uint32_t>>(n);
  for (TaskId id = 0; id < n; ++id) {
    pending_preds_[id].store(graph.num_predecessors(id) + 1,
                             std::memory_order_relaxed);
  }
  remaining_.store(static_cast<std::uint32_t>(n), std::memory_order_release);

  // Hand tasks their activation token; scatter the eligible ones
  // round-robin over the injection slots. The cursor is a member so the
  // rotation continues where the previous group (or run) left off.
  const auto activate = [this](TaskId id) {
    if (pending_preds_[id].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      const unsigned slot = inject_cursor_;
      inject_cursor_ = (inject_cursor_ + 1) % num_workers_;
      ++caller_pushes_;
      ++inject_slot_pushes_[slot];
      inject_ready(id, slot);
    }
  };

  const bool phase_mode = static_cast<bool>(on_group_start);
  if (phase_mode) {
    // Sequential phases: activate one group at a time.
    for (GroupId g = 0; g < graph.num_groups(); ++g) {
      const Group& grp = graph.group(g);
      on_group_start(g);
      barrier_remaining_.store(static_cast<std::uint32_t>(grp.size()),
                               std::memory_order_release);
      for (TaskId id = grp.first_task; id < grp.last_task; ++id) activate(id);
      // Wait for the group barrier.
      std::unique_lock<std::mutex> lock(done_mutex_);
      done_cv_.wait(lock, [this] {
        return barrier_remaining_.load(std::memory_order_acquire) == 0;
      });
    }
  } else {
    barrier_remaining_.store(static_cast<std::uint32_t>(n),
                             std::memory_order_release);
    for (TaskId id = 0; id < n; ++id) activate(id);
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [this] {
      return remaining_.load(std::memory_order_acquire) == 0;
    });
  }

  TAHOE_ASSERT(remaining_.load(std::memory_order_acquire) == 0,
               "run finished with tasks outstanding");
  // Refresh the aggregate stats and flush the delta since the previous
  // run into the global counter registry.
  ExecutorStats total;
  for (unsigned w = 0; w < num_workers_; ++w) {
    detail::accumulate_stats(total, worker_snapshot(w));
  }
  total.pushes += caller_pushes_;
  ExecutorStats delta = total;
  detail::subtract_stats(delta, reported_);
  flush_stats_to_counters(delta);
  reported_ = total;
  stats_ = total;
  graph_ = nullptr;
  hints_ = nullptr;
  run_active_.store(false, std::memory_order_release);
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace tahoe::task
