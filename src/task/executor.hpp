// Real (wall-clock) task-graph executor.
//
// Runs task functors on a pool of worker threads scheduled through
// per-worker Chase–Lev lock-free deques (ws_deque.hpp) with an
// eventcount-style parking protocol. This executor exists for
// *correctness*: examples and tests run real kernels through it (optionally
// interleaved with real migrations at group boundaries) and check numerical
// results. All reported *timings* in the benchmark harnesses come from the
// deterministic SimExecutor instead — see sim_executor.hpp.
//
// Scheduling layout. Every worker owns a *hot* and a *cold* lock-free
// deque; the run() caller owns one hot/cold *injection* deque per worker
// into which group activations are scattered round-robin (Chase–Lev push
// is owner-only, so the caller cannot push into a worker's own deque).
// Ready tasks land in a cold deque when the caller supplied tier hints and
// the task is NVM-bound (some input chunk not DRAM-resident under the
// current plan). Workers drain hot work first — own deque, own injection
// slot, then steal from the other hot deques in a randomized rotation —
// and only then fall back to cold work. That global hot-before-cold order
// is the executor-side half of the paper's migration/computation overlap:
// DRAM-resident tasks run while the helper thread is still promoting the
// objects the NVM-bound tasks will touch.
//
// Parking. An idle worker rescans with exponential backoff a few times,
// then registers as a waiter on the eventcount and re-verifies emptiness
// before blocking, so a concurrent push can never be lost. push_ready's
// hot path is one lock-free deque push plus one uncontended atomic
// bump-and-check — it never takes a mutex unless a worker is actually
// parked.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "task/graph.hpp"
#include "task/ws_deque.hpp"

namespace tahoe::task {

/// Per-task scheduling hint derived from planned data residency.
enum class TierHint : std::uint8_t {
  kHot = 0,   ///< inputs DRAM-resident (or unknown): run eagerly
  kCold = 1,  ///< inputs NVM-bound: defer while hot work exists
};

/// Scheduler counters. `stats()` returns the totals across all workers and
/// runs; `worker_stats(w)` the per-worker breakdown.
struct ExecutorStats {
  std::uint64_t tasks_run = 0;      ///< tasks executed
  std::uint64_t pushes = 0;         ///< ready-task enqueues
  std::uint64_t pops = 0;           ///< tasks taken from the worker's own deque
  std::uint64_t steals = 0;         ///< tasks stolen from another worker
  std::uint64_t inject_takes = 0;   ///< tasks taken from an injection deque
  std::uint64_t failed_steals = 0;  ///< full victim scans that found nothing
  std::uint64_t parks = 0;          ///< times a worker blocked on the eventcount
  std::uint64_t cold_takes = 0;     ///< NVM-hinted (deferred) tasks executed
};

/// Eventcount: lets producers skip the kernel entirely while no consumer is
/// parked. Consumers prepare_wait(), re-check their condition, then either
/// cancel_wait() or commit_wait(); producers notify() after publishing
/// work. The seq_cst epoch bump in notify() orders the producer's work
/// publication before its waiter check, closing the classic lost-wakeup
/// window without a mutex on the fast path.
class EventCount {
 public:
  std::uint64_t prepare_wait() noexcept {
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    return epoch_.load(std::memory_order_seq_cst);
  }
  void cancel_wait() noexcept {
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }
  void commit_wait(std::uint64_t epoch) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this, epoch] {
      return epoch_.load(std::memory_order_seq_cst) != epoch;
    });
    lock.unlock();
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }
  void notify() {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_seq_cst) == 0) return;
    {
      // Empty critical section: a waiter between its predicate check and
      // its block cannot miss the notify below.
      const std::lock_guard<std::mutex> lock(mutex_);
    }
    cv_.notify_all();
  }

 private:
  alignas(64) std::atomic<std::uint64_t> epoch_{0};
  alignas(64) std::atomic<std::uint64_t> waiters_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

class Executor {
 public:
  explicit Executor(unsigned num_workers);

  /// Joins the pool. The caller must guarantee no run() is in flight
  /// (single ownership); this is checked and reported as a contract
  /// violation. Parked workers are woken and drained deterministically.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Execute every task in the graph respecting dependences. Blocks until
  /// done. `on_group_start`, if provided, is invoked (on the caller
  /// thread, with no tasks of that or later groups running yet) right
  /// before the first task of each group becomes eligible — the hook the
  /// runtime uses to enforce placement at phase boundaries. When the hook
  /// is set, groups are executed as sequential phases (tasks of group g+1
  /// wait for group g), matching the paper's phase semantics; without it
  /// the DAG runs with maximum overlap.
  ///
  /// `tier_hints`, when non-empty, must have one entry per task; kCold
  /// tasks are deferred while any hot work remains (see file comment).
  /// Hints only affect scheduling order among *ready* tasks — dependences
  /// and phase barriers are always respected.
  void run(const TaskGraph& graph,
           const std::function<void(GroupId)>& on_group_start = {},
           std::span<const TierHint> tier_hints = {});

  unsigned num_workers() const noexcept { return num_workers_; }
  const ExecutorStats& stats() const noexcept { return stats_; }
  /// Per-worker breakdown (totals across runs; snapshot). `w <
  /// num_workers()`.
  ExecutorStats worker_stats(unsigned w) const;

 private:
  /// One worker's scheduling state, cacheline-isolated.
  struct alignas(64) WorkerState {
    explicit WorkerState(std::uint64_t seed) : rng(seed) {}
    WsDeque<TaskId> hot;
    WsDeque<TaskId> cold;
    Rng rng;             ///< victim-rotation randomization (owner-only)
    ExecutorStats stats; ///< owner-written; read by run() when quiescent
  };

  void worker_loop(unsigned self);
  void push_ready(TaskId id, unsigned self);
  /// Caller-side activation push (round-robin over injection deques).
  void inject_ready(TaskId id, unsigned slot);
  bool try_get_task(unsigned self, TaskId& out);
  bool any_work_visible() const;
  void execute_task(TaskId id, unsigned self);
  void flush_stats_to_counters(const ExecutorStats& delta) const;

  unsigned num_workers_ = 0;
  std::vector<std::unique_ptr<WorkerState>> worker_state_;
  /// Caller-owned activation deques, one hot/cold pair per worker.
  std::vector<std::unique_ptr<WsDeque<TaskId>>> inject_hot_;
  std::vector<std::unique_ptr<WsDeque<TaskId>>> inject_cold_;
  std::vector<std::thread> workers_;

  EventCount park_;                 ///< idle workers sleep here
  std::mutex run_mutex_;            ///< one run() at a time
  std::mutex done_mutex_;           ///< run() completion wait (cold path)
  std::condition_variable done_cv_;

  const TaskGraph* graph_ = nullptr;  ///< valid during run()
  const TierHint* hints_ = nullptr;   ///< valid during run(); may be null
  std::vector<std::atomic<std::uint32_t>> pending_preds_;
  std::atomic<std::uint32_t> remaining_{0};
  std::atomic<std::uint32_t> barrier_remaining_{0};  ///< tasks left in group
  std::atomic<bool> stop_{false};
  std::atomic<bool> run_active_{false};
  std::uint64_t caller_pushes_ = 0;  ///< injection pushes (caller thread)
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
  ExecutorStats stats_;            ///< aggregate, refreshed after each run
  ExecutorStats reported_;         ///< totals already flushed to counters
};

}  // namespace tahoe::task
