// Real (wall-clock) task-graph executor.
//
// Runs task functors on a pool of worker threads with per-worker deques and
// work stealing. This executor exists for *correctness*: examples and tests
// run real kernels through it (optionally interleaved with real migrations
// at group boundaries) and check numerical results. All reported *timings*
// in the benchmark harnesses come from the deterministic SimExecutor
// instead — see sim_executor.hpp.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "task/graph.hpp"

namespace tahoe::task {

struct ExecutorStats {
  std::uint64_t tasks_run = 0;
  std::uint64_t steals = 0;
};

class Executor {
 public:
  explicit Executor(unsigned num_workers);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Execute every task in the graph respecting dependences. Blocks until
  /// done. `on_group_start`, if provided, is invoked (on the caller
  /// thread, with no tasks of that or later groups running yet) right
  /// before the first task of each group becomes eligible — the hook the
  /// runtime uses to enforce placement at phase boundaries. When the hook
  /// is set, groups are executed as sequential phases (tasks of group g+1
  /// wait for group g), matching the paper's phase semantics; without it
  /// the DAG runs with maximum overlap.
  void run(const TaskGraph& graph,
           const std::function<void(GroupId)>& on_group_start = {});

  unsigned num_workers() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  const ExecutorStats& stats() const noexcept { return stats_; }

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<TaskId> deque;
  };

  void worker_loop(unsigned self);
  void push_ready(TaskId id, unsigned hint);
  bool try_pop(unsigned self, TaskId& out);
  void execute_task(TaskId id, unsigned self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex run_mutex_;               // one run() at a time
  std::mutex state_mutex_;
  std::condition_variable work_cv_;    // workers sleep here
  std::condition_variable done_cv_;    // run() waits here

  const TaskGraph* graph_ = nullptr;   // valid during run()
  std::vector<std::atomic<std::uint32_t>> pending_preds_;
  std::atomic<std::uint32_t> remaining_{0};
  std::atomic<std::uint32_t> barrier_remaining_{0};  // tasks left in group
  std::atomic<std::uint32_t> active_group_{0xffffffffu};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> steal_count_{0};
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
  ExecutorStats stats_;
};

}  // namespace tahoe::task
