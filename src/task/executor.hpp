// Real (wall-clock) task-graph executor, Chase–Lev backend.
//
// Runs task functors on a pool of worker threads scheduled through
// per-worker Chase–Lev lock-free deques (ws_deque.hpp) with an
// eventcount-style parking protocol. This executor exists for
// *correctness*: examples and tests run real kernels through it (optionally
// interleaved with real migrations at group boundaries) and check numerical
// results. All reported *timings* in the benchmark harnesses come from the
// deterministic SimExecutor instead — see sim_executor.hpp. For the
// channel-based steal-half backend behind the same `IExecutor` interface,
// see channel_executor.hpp; executor_base.hpp documents what the backends
// share.
//
// Scheduling layout. Every worker owns a *hot* and a *cold* lock-free
// deque; the run() caller owns one hot/cold *injection* deque per worker
// into which group activations are scattered round-robin (Chase–Lev push
// is owner-only, so the caller cannot push into a worker's own deque).
// Ready tasks land in a cold deque when the caller supplied tier hints and
// the task is NVM-bound (some input chunk not DRAM-resident under the
// current plan). Workers drain hot work first — own deque, own injection
// slot, then steal from the other hot deques in a randomized rotation —
// and only then fall back to cold work. That global hot-before-cold order
// is the executor-side half of the paper's migration/computation overlap:
// DRAM-resident tasks run while the helper thread is still promoting the
// objects the NVM-bound tasks will touch.
//
// Parking. An idle worker rescans with exponential backoff a few times,
// then registers as a waiter on the eventcount and re-verifies emptiness
// before blocking, so a concurrent push can never be lost. push_ready's
// hot path is one lock-free deque push plus one uncontended atomic
// bump-and-check — it never takes a mutex unless a worker is actually
// parked.
#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "task/executor_base.hpp"
#include "task/graph.hpp"
#include "task/ws_deque.hpp"

namespace tahoe::task {

class Executor final : public ExecutorBase {
 public:
  explicit Executor(unsigned num_workers);

  /// Joins the pool. The caller must guarantee no run() is in flight
  /// (single ownership); this is checked and reported as a contract
  /// violation. Parked workers are woken and drained deterministically.
  ~Executor() override;

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  ExecutorBackend backend() const noexcept override {
    return ExecutorBackend::kChaseLev;
  }

 private:
  /// One worker's scheduling state, cacheline-isolated.
  struct alignas(64) WorkerState {
    explicit WorkerState(std::uint64_t seed) : rng(seed) {}
    WsDeque<TaskId> hot;
    WsDeque<TaskId> cold;
    Rng rng;             ///< victim-rotation randomization (owner-only)
    ExecutorStats stats; ///< owner-written; read by run() when quiescent
  };

  void worker_loop(unsigned self);
  void inject_ready(TaskId id, unsigned slot) override;
  void push_ready(TaskId id, unsigned self) override;
  ExecutorStats worker_snapshot(unsigned w) const override;
  bool try_get_task(unsigned self, TaskId& out);
  bool any_work_visible() const;

  std::vector<std::unique_ptr<WorkerState>> worker_state_;
  /// Caller-owned activation deques, one hot/cold pair per worker.
  std::vector<std::unique_ptr<WsDeque<TaskId>>> inject_hot_;
  std::vector<std::unique_ptr<WsDeque<TaskId>>> inject_cold_;
  std::vector<std::thread> workers_;
};

}  // namespace tahoe::task
