// Chase–Lev lock-free work-stealing deque (Chase & Lev, SPAA'05, with the
// weak-memory-model corrections of Lê, Pop, Cohen & Zappa Nardelli,
// PPoPP'13).
//
// One *owner* thread pushes and pops at the bottom; any number of *thief*
// threads steal single items from the top. The owner's push/pop hot path is
// a handful of relaxed/acq_rel atomics; steals race each other and the
// owner's last-element pop through a seq_cst CAS on `top_`. Where the
// published algorithm uses standalone seq_cst fences we use seq_cst
// operations on `top_`/`bottom_` instead: x86 codegen is the same and —
// unlike `std::atomic_thread_fence` — they are modeled precisely by
// ThreadSanitizer, keeping the stress suite TSan-clean without
// suppressions.
//
// The ring grows geometrically when full. Thieves may still be indexing a
// retired ring while the owner installs a larger one, so retired rings are
// kept alive (chained off the current ring) until the deque is destroyed —
// the standard leak-until-destruction reclamation for this structure. The
// elements of [top, bottom) are copied on growth; retired slots are never
// written again, so a racing thief always reads a value that was current
// when it read `top_`, and the CAS decides whether its claim stands.
//
// T must be trivially copyable (it is stored in std::atomic<T> slots; the
// executor instantiates TaskId = uint32_t).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "common/assert.hpp"

namespace tahoe::task {

template <typename T>
class WsDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "WsDeque elements are stored in atomic slots");

 public:
  explicit WsDeque(std::size_t initial_capacity = 64)
      : ring_(new Ring(round_up_pow2(initial_capacity))) {}

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  ~WsDeque() {
    Ring* r = ring_.load(std::memory_order_relaxed);
    while (r != nullptr) {
      Ring* prev = r->retired;
      delete r;
      r = prev;
    }
  }

  /// Owner only: append at the bottom. Grows the ring when full; never
  /// fails.
  void push(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* r = ring_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(r->capacity)) {
      r = grow(r, t, b);
    }
    r->put(b, value);
    // Publish the slot to thieves: a thief's acquire load of bottom_
    // synchronizes with this store.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only: take the most recently pushed item (LIFO). Returns false
  /// when the deque is empty.
  bool pop(T& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* const r = ring_.load(std::memory_order_relaxed);
    // seq_cst store/load pair: the reservation of slot b must be globally
    // ordered before the read of top_ (StoreLoad), or a concurrent thief
    // could claim the same slot (this is the fence in the published
    // algorithm).
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Already empty: undo the reservation.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    out = r->get(b);
    if (t == b) {
      // Last element: race the thieves for it.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }

  /// Any thread: take the oldest item (FIFO). Returns false when empty or
  /// when another thief (or the owner's last-element pop) won the race.
  bool steal(T& out) {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;
    Ring* const r = ring_.load(std::memory_order_acquire);
    out = r->get(t);
    // seq_cst CAS: claims slot t against other thieves and the owner.
    return top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed);
  }

  /// Racy size estimate (exact when quiescent). May transiently read as -1
  /// during an owner pop; clamped to 0.
  std::size_t size_approx() const noexcept {
    const std::int64_t t = top_.load(std::memory_order_acquire);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_approx() const noexcept { return size_approx() == 0; }

  /// Current ring capacity (owner/test use).
  std::size_t capacity() const noexcept {
    return ring_.load(std::memory_order_acquire)->capacity;
  }

 private:
  struct Ring {
    explicit Ring(std::size_t cap)
        : capacity(cap), mask(cap - 1), slots(new std::atomic<T>[cap]) {}

    void put(std::int64_t i, T v) noexcept {
      slots[static_cast<std::size_t>(i) & mask].store(
          v, std::memory_order_relaxed);
    }
    T get(std::int64_t i) const noexcept {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }

    const std::size_t capacity;
    const std::size_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;
    Ring* retired = nullptr;  ///< chain of outgrown rings, freed with *this
  };

  static std::size_t round_up_pow2(std::size_t n) {
    TAHOE_REQUIRE(n >= 2, "deque capacity must be at least 2");
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  /// Owner only: double the ring, copying the live range [t, b).
  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    Ring* bigger = new Ring(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    bigger->retired = old;
    ring_.store(bigger, std::memory_order_release);
    return bigger;
  }

  // Owner and thief indices chase each other monotonically; 64-bit signed
  // indices make wraparound a non-issue for any realistic run.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Ring*> ring_;
};

}  // namespace tahoe::task
