// Deterministic simulated execution of a task graph on a heterogeneous
// memory machine.
//
// Groups (phases) execute sequentially, as the paper's runtime enforces at
// phase boundaries; inside a group, up to `workers` tasks run concurrently,
// respecting intra-group dependences. Every running task is a fluid flow
// (see memsim/fluid.hpp) whose demands depend on the *current placement* of
// the data objects it touches.
//
// Proactive migration is modeled faithfully: a ScheduledCopy fires when its
// trigger group is entered, joins the helper thread's FIFO (one copy in
// flight at a time — a single helper thread), progresses as a flow that
// contends for device bandwidth with the application, and updates the
// placement map at its completion. Entering a group blocks until every copy
// that the group *needs* has completed; the blocked time is recorded as
// migration stall (the non-overlapped part of the data-movement cost).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hms/placement.hpp"
#include "memsim/machine.hpp"
#include "task/graph.hpp"
#include "trace/trace.hpp"

namespace tahoe::task {

struct ScheduledCopy {
  hms::ObjectId object = hms::kInvalidObject;
  std::size_t chunk = 0;
  std::uint64_t bytes = 0;
  memsim::DeviceId dst = memsim::kDram;
  /// Fire when this group is entered...
  GroupId trigger_group = 0;
  /// ...and must be complete before this group starts running tasks.
  GroupId needed_group = 0;
};

/// Ground-truth access attribution: what tasks of one group did to one
/// object on one tier during the iteration. Collected only when
/// Options::attribution is on; rows are sorted by (group, object, device).
struct AccessTally {
  GroupId group = 0;
  hms::ObjectId object = hms::kInvalidObject;
  memsim::DeviceId device = memsim::kDram;  ///< tier that served the traffic
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t tasks = 0;  ///< task-access pairs contributing to this row
};

/// Per-(object, source tier, destination tier) migration tally. `hidden`
/// counts copies that completed outside any group-entry wait — data
/// movement fully overlapped with computation.
struct CopyTally {
  hms::ObjectId object = hms::kInvalidObject;
  memsim::DeviceId src = memsim::kNvm;  ///< tier the copy read from
  memsim::DeviceId dst = memsim::kDram;
  std::uint64_t copies = 0;
  std::uint64_t bytes = 0;
  std::uint64_t hidden = 0;
};

struct SimReport {
  double makespan = 0.0;              ///< completion time of the last task
  std::vector<double> group_seconds;  ///< wall span of each group
  std::vector<double> group_start;    ///< entry time of each group
  std::vector<double> task_seconds;   ///< duration of each task
  std::uint64_t copies_done = 0;
  std::uint64_t bytes_copied = 0;
  double copy_busy_seconds = 0.0;  ///< sum of copy flow durations
  double stall_seconds = 0.0;      ///< group-entry waits on copies
  std::vector<double> device_busy_seconds;
  std::vector<AccessTally> access_tallies;  ///< empty unless attribution
  std::vector<CopyTally> copy_tallies;      ///< empty unless attribution

  /// Fraction of data-movement time hidden behind computation.
  double overlap_fraction() const noexcept {
    if (copy_busy_seconds <= 0.0) return 1.0;
    const double overlapped = copy_busy_seconds - stall_seconds;
    return overlapped > 0.0 ? overlapped / copy_busy_seconds : 0.0;
  }
};

class SimExecutor {
 public:
  struct Options {
    std::uint32_t workers = 0;  ///< 0 = machine.workers
    /// Unit size oracle for the DRAM-occupancy invariant; optional.
    std::function<std::uint64_t(hms::ObjectId, std::size_t)> unit_size;
    /// When true (default), verify DRAM occupancy never exceeds capacity
    /// after copy completions (requires unit_size).
    bool check_capacity = true;
    /// Event sink for virtual-time spans (task executions on worker-lane
    /// tracks, migration copies on the migration track, group-entry
    /// stalls). Null disables instrumentation entirely.
    trace::Tracer* tracer = nullptr;
    /// Added to every emitted timestamp so multi-iteration runs lay out
    /// consecutively on one timeline (each iteration restarts sim time
    /// at zero).
    double trace_time_offset = 0.0;
    /// Collect SimReport::access_tallies / copy_tallies (per task-type and
    /// per-object attribution). Off by default: it costs a map insertion
    /// per task access.
    bool attribution = false;
    /// Override for memsim::FluidSim::Tuning::lazy_threshold — the active
    /// flow count above which the simulator switches from the exact scan
    /// core to the indexed engine. 0 keeps the library default (which
    /// keeps paper-scale runs on the golden-pinned exact arithmetic).
    std::size_t sim_lazy_threshold = 0;
  };

  /// Execute and return the timing report. `placement` is consumed as the
  /// initial state and left in its final state on return (so callers can
  /// carry residency across iterations).
  SimReport run(const TaskGraph& graph, const memsim::Machine& machine,
                hms::PlacementMap& placement,
                const std::vector<ScheduledCopy>& schedule,
                const Options& options);

  SimReport run(const TaskGraph& graph, const memsim::Machine& machine,
                hms::PlacementMap& placement,
                const std::vector<ScheduledCopy>& schedule) {
    return run(graph, machine, placement, schedule, Options{});
  }
};

}  // namespace tahoe::task
