// Task model.
//
// A task is the unit of scheduling and — together with the data objects it
// declares — the unit of data-placement reasoning. Tasks declare their
// access sets (object, chunk, mode, traffic) exactly like OpenMP
// `depend(in/out/inout)` clauses; the graph builder derives RAW/WAR/WAW
// edges from program order. The declared ObjectTraffic is the ground truth
// the simulator and the sampling emulator consume; the Tahoe core only ever
// sees the sampled view.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "hms/data_object.hpp"
#include "memsim/access.hpp"

namespace tahoe::task {

using TaskId = std::uint32_t;
using GroupId = std::uint32_t;
inline constexpr std::size_t kAllChunks = std::numeric_limits<std::size_t>::max();

enum class AccessMode : std::uint8_t { Read, Write, ReadWrite };

/// Serving-request tag carried by tasks spawned on behalf of an external
/// request (src/serve/); kNoRequest for ordinary DAG tasks.
inline constexpr std::uint64_t kNoRequest =
    std::numeric_limits<std::uint64_t>::max();

struct DataAccess {
  hms::ObjectId object = hms::kInvalidObject;
  /// Specific chunk, or kAllChunks for the whole object.
  std::size_t chunk = kAllChunks;
  AccessMode mode = AccessMode::Read;
  /// Ground-truth application traffic of this task to this unit.
  memsim::ObjectTraffic traffic;

  bool reads() const noexcept { return mode != AccessMode::Write; }
  bool writes() const noexcept { return mode != AccessMode::Read; }
};

struct Task {
  TaskId id = 0;
  GroupId group = 0;
  std::string label;
  double compute_seconds = 0.0;  ///< modeled pure-compute time
  std::vector<DataAccess> accesses;
  /// Optional real kernel; empty for model-only (timing) runs.
  std::function<void()> work;
  /// Serving request this task belongs to, or kNoRequest. The serve
  /// driver maps per-task service time back to request latency through
  /// this tag.
  std::uint64_t request = kNoRequest;
};

}  // namespace tahoe::task
