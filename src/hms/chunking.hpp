// Large-object chunking policy.
//
// Objects larger than the DRAM tier can never be migrated whole; the paper
// line's answer is to partition regular 1-D arrays into chunks and manage
// placement per chunk. The policy here decides how many chunks an object
// should be split into, mirroring the conservative approach of the paper:
// only objects flagged as partitionable (regular references) are split.
#pragma once

#include <cstdint>

namespace tahoe::hms {

struct ChunkingPolicy {
  std::uint64_t dram_capacity = 0;
  /// A chunk should be at most this fraction of DRAM so several can
  /// coexist with other resident objects.
  double max_chunk_dram_fraction = 0.25;
  std::size_t max_chunks = 64;

  /// Number of chunks for an object of `bytes`. Returns 1 (no split) when
  /// the object is not partitionable, already fits the chunk budget, or
  /// chunking is disabled (dram_capacity == 0).
  std::size_t chunks_for(std::uint64_t bytes, bool partitionable) const;
};

}  // namespace tahoe::hms
