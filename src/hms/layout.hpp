// Segment-resident layouts shared by the registry, the arenas and the
// relocation walker.
//
// Everything in this header lives *inside* an hms::Segment and obeys the
// relocatability rules: references to other segment-resident structures
// are OffsetPtrs or segment-relative u64 offsets (0 = null), references to
// process-heap payload buffers are integer addresses that walkers never
// dereference, and all fields are plain integers/inline arrays so an
// attached copy of the bytes is directly interpretable.
//
// The map of a live segment:
//
//   offset 0                SegmentHeader (magic, version, allocator state,
//                           root offset -> RegistryRoot)
//   root                    RegistryRoot (tier count, slot-table geometry,
//                           intrusive slot free list, arena root offsets)
//   root->slots             ObjectSlot[slot_capacity] (generation-tagged;
//                           each holds a DataObject inline)
//   per object              Chunk[] arrays and AliasSlot[] tables,
//                           allocated from the segment heap
//   per tier                ArenaRoot + an offset-linked, offset-ordered
//                           list of RangeNodes (live blocks and free
//                           ranges interleaved)
#pragma once

#include <cstdint>

#include "common/offset_ptr.hpp"
#include "hms/data_object.hpp"

namespace tahoe::hms {

/// Registry slot free-list terminator (slot indices are 24-bit, so this
/// can never collide with a real slot).
inline constexpr std::uint32_t kNoSlot = 0xffffffffu;

/// Upper bound on tiers a registry segment describes; matches the fixed
/// arena_root array below so walkers need no dynamic allocation to find
/// the arenas.
inline constexpr std::size_t kMaxTiers = 16;

/// One entry of the registry's fixed-capacity object table. The
/// generation counts how many times the slot has been recycled; an
/// ObjectId embeds the low 8 bits, making stale handles detectable.
struct ObjectSlot {
  std::uint32_t generation = 0;
  std::uint32_t in_use = 0;
  std::uint32_t next_free = kNoSlot;  ///< intrusive free list (slot index)
  std::uint32_t pad_ = 0;
  DataObject object;
};

/// One node of an arena's range list: either a live allocation or a free
/// range. The list is doubly linked (segment offsets, 0 = null) and kept
/// ordered by logical offset, so adjacency in the list is adjacency in the
/// arena's address space and coalescing is a neighbour check. Using one
/// node type for both states means free() converts a node in place and
/// never needs to allocate.
struct RangeNode {
  std::uint64_t offset = 0;        ///< logical offset within the arena
  std::uint64_t size = 0;          ///< granule-rounded size in bytes
  std::uint64_t payload_addr = 0;  ///< process-heap buffer; 0 for free ranges
  std::uint64_t next = 0;          ///< segment offset of next node (0 = null)
  std::uint64_t prev = 0;          ///< segment offset of prev node (0 = null)
  std::uint32_t live = 0;          ///< 1 = live block, 0 = free range
  std::uint32_t pad_ = 0;
};
static_assert(sizeof(RangeNode) == 48, "RangeNode layout is part of the ABI");

/// Per-arena root describing one tier's offset heap.
struct ArenaRoot {
  static constexpr std::size_t kNameCapacity = 32;

  char name[kNameCapacity] = {};
  std::uint64_t capacity = 0;
  std::uint64_t used = 0;
  std::uint64_t range_head = 0;  ///< first RangeNode by offset (0 = empty)
  std::uint64_t node_count = 0;  ///< nodes on the range list
  std::uint64_t live_count = 0;  ///< live blocks
  std::uint64_t free_count = 0;  ///< free ranges
  std::uint32_t backing = 0;     ///< hms::Backing as an integer
  std::uint32_t pad_ = 0;
};

/// The structure the segment header's root offset points at: everything a
/// walker needs to enumerate objects and arenas.
struct RegistryRoot {
  std::uint32_t num_tiers = 0;
  std::uint32_t slot_capacity = 0;
  std::uint32_t free_head = kNoSlot;  ///< intrusive slot free list
  std::uint32_t live_count = 0;
  std::uint32_t high_slot = 0;  ///< slots ever claimed (walk bound)
  std::uint32_t pad_ = 0;
  std::uint64_t arena_root[kMaxTiers] = {};  ///< ArenaRoot offsets, 0 = unset
  OffsetPtr<ObjectSlot> slots;
};

}  // namespace tahoe::hms
