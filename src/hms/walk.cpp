#include "hms/walk.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"
#include "hms/layout.hpp"

namespace tahoe::hms {

RegistryWalk walk_registry(const Segment& segment) {
  const std::uint64_t root_off = segment.root();
  TAHOE_REQUIRE(root_off != 0, "segment has no registry root");
  const auto* root = segment.at_as<const RegistryRoot>(root_off);
  TAHOE_REQUIRE(root->num_tiers >= 1 && root->num_tiers <= kMaxTiers,
                "registry root is malformed (tier count)");
  TAHOE_REQUIRE(root->high_slot <= root->slot_capacity,
                "registry root is malformed (slot bounds)");

  RegistryWalk walk;
  walk.num_tiers = root->num_tiers;
  walk.live_objects = root->live_count;
  walk.slot_capacity = root->slot_capacity;
  walk.resident_by_tier.assign(root->num_tiers, 0);

  const ObjectSlot* slots = root->slots.get();
  for (std::uint32_t s = 0; s < root->high_slot; ++s) {
    const ObjectSlot& slot = slots[s];
    if (slot.in_use == 0) continue;
    const DataObject& obj = slot.object;
    ObjectWalk ow;
    ow.id = obj.id;
    ow.name = std::string(obj.name());
    ow.bytes = obj.bytes;
    ow.owner = obj.owner;
    ow.static_ref_estimate = obj.static_ref_estimate;
    ow.num_aliases = static_cast<std::uint32_t>(obj.aliases().size());
    ow.chunks.reserve(obj.num_chunks());
    for (const Chunk& c : obj.chunks()) {
      ow.chunks.emplace_back(c.bytes, c.device);
      TAHOE_REQUIRE(c.device < root->num_tiers,
                    "chunk references a tier the registry does not have");
      walk.resident_by_tier[c.device] += c.bytes;
      if (obj.owner != kNoOwner) {
        auto [it, inserted] = walk.owned_by_tier.try_emplace(
            obj.owner, std::vector<std::uint64_t>(root->num_tiers, 0));
        (void)inserted;
        it->second[c.device] += c.bytes;
      }
    }
    walk.objects.push_back(std::move(ow));
  }

  for (std::uint32_t t = 0; t < root->num_tiers; ++t) {
    const std::uint64_t arena_off = root->arena_root[t];
    TAHOE_REQUIRE(arena_off != 0, "registry root lists no arena for a tier");
    const auto* ar = segment.at_as<const ArenaRoot>(arena_off);
    ArenaWalk aw;
    aw.name = std::string(ar->name);
    aw.capacity = ar->capacity;
    aw.used = ar->used;
    aw.live_blocks = ar->live_count;
    aw.free_ranges = ar->free_count;
    for (std::uint64_t off = ar->range_head; off != 0;) {
      const auto* node = segment.at_as<const RangeNode>(off);
      if (node->live == 0) {
        aw.largest_free_range = std::max(aw.largest_free_range, node->size);
      }
      off = node->next;
    }
    walk.arenas.push_back(std::move(aw));
  }
  return walk;
}

std::string RegistryWalk::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"num_tiers\": " << num_tiers << ",\n";
  os << "  \"live_objects\": " << live_objects << ",\n";
  os << "  \"slot_capacity\": " << slot_capacity << ",\n";
  os << "  \"objects\": [\n";
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const ObjectWalk& o = objects[i];
    os << "    {\"id\": " << o.id << ", \"name\": \"" << o.name
       << "\", \"bytes\": " << o.bytes << ", \"owner\": " << o.owner
       << ", \"aliases\": " << o.num_aliases << ", \"chunks\": [";
    for (std::size_t c = 0; c < o.chunks.size(); ++c) {
      os << "[" << o.chunks[c].first << ", " << o.chunks[c].second << "]";
      if (c + 1 < o.chunks.size()) os << ", ";
    }
    os << "]}" << (i + 1 < objects.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"arenas\": [\n";
  for (std::size_t i = 0; i < arenas.size(); ++i) {
    const ArenaWalk& a = arenas[i];
    os << "    {\"name\": \"" << a.name << "\", \"capacity\": " << a.capacity
       << ", \"used\": " << a.used << ", \"live_blocks\": " << a.live_blocks
       << ", \"free_ranges\": " << a.free_ranges
       << ", \"largest_free_range\": " << a.largest_free_range << "}"
       << (i + 1 < arenas.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"resident_by_tier\": [";
  for (std::size_t t = 0; t < resident_by_tier.size(); ++t) {
    os << resident_by_tier[t] << (t + 1 < resident_by_tier.size() ? ", " : "");
  }
  os << "],\n";
  os << "  \"owned_by_tier\": {";
  bool first = true;
  for (const auto& [owner, tiers] : owned_by_tier) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << owner << "\": [";
    for (std::size_t t = 0; t < tiers.size(); ++t) {
      os << tiers[t] << (t + 1 < tiers.size() ? ", " : "");
    }
    os << "]";
  }
  os << "}\n";
  os << "}\n";
  return os.str();
}

}  // namespace tahoe::hms
