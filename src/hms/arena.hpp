// User-level memory arena with a first-fit free-list allocator.
//
// This is the "user-level service" of the paper line: DRAM capacity on the
// heterogeneous system is limited and coordinated at user level, without OS
// changes. The arena manages a *logical* address range of `capacity` bytes
// with real free-list bookkeeping (so fragmentation behaviour is faithful
// and testable), while each live allocation is backed by its own host
// buffer — this lets the test/bench configurations model multi-GiB NVM
// tiers without reserving that much physical memory up front.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace tahoe::hms {

/// Whether allocations carry real host buffers (required to run kernels)
/// or only logical bookkeeping (sufficient for simulation-only runs, and
/// much faster for multi-GiB benchmark configurations).
enum class Backing { Real, Virtual };

class Arena {
 public:
  Arena(std::string name, std::uint64_t capacity,
        Backing backing = Backing::Real);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocate `size` bytes (rounded up to 64-byte granules). Returns
  /// nullptr when no free range can fit the request (caller decides how to
  /// react — the Tahoe planner treats this as "no DRAM space").
  void* alloc(std::uint64_t size);

  /// Release an allocation previously returned by alloc().
  void free(void* p);

  /// True when `p` belongs to this arena.
  bool owns(const void* p) const;

  const std::string& name() const noexcept { return name_; }
  Backing backing() const noexcept { return backing_; }
  std::uint64_t capacity() const noexcept { return capacity_; }
  std::uint64_t used() const noexcept;
  std::uint64_t free_bytes() const noexcept;
  /// Size of the largest single allocatable range (fragmentation metric).
  std::uint64_t largest_free_range() const;
  std::size_t live_allocations() const;

 private:
  struct Block {
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
    std::unique_ptr<std::byte[]> mem;
  };

  std::string name_;
  std::uint64_t capacity_;
  Backing backing_;
  mutable std::mutex mutex_;
  std::uint64_t used_ = 0;
  /// Free ranges keyed by logical offset; adjacent ranges are coalesced.
  std::map<std::uint64_t, std::uint64_t> free_ranges_;
  /// Live blocks keyed by backing pointer.
  std::map<const void*, Block> blocks_;
};

}  // namespace tahoe::hms
