// User-level memory arena with a first-fit free-list allocator.
//
// This is the "user-level service" of the paper line: DRAM capacity on the
// heterogeneous system is limited and coordinated at user level, without OS
// changes. The arena manages a *logical* address range of `capacity` bytes
// with real free-list bookkeeping (so fragmentation behaviour is faithful
// and testable), while each live allocation is backed by its own host
// buffer — this lets the test/bench configurations model multi-GiB NVM
// tiers without reserving that much physical memory up front.
//
// All range bookkeeping (ArenaRoot + the offset-ordered RangeNode list,
// see layout.hpp) lives inside an hms::Segment, linked by segment-relative
// offsets, so an attached or relocated copy of the segment exposes the
// full fragmentation state of every tier. Only the payload buffers (and a
// pointer->node acceleration index that any attacher could rebuild from
// the list) stay process-local.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "hms/layout.hpp"
#include "hms/segment.hpp"

namespace tahoe::trace {
class Counter;
}

namespace tahoe::hms {

/// Whether allocations carry real host buffers (required to run kernels)
/// or only logical bookkeeping (sufficient for simulation-only runs, and
/// much faster for multi-GiB benchmark configurations).
enum class Backing { Real, Virtual };

class Arena {
 public:
  /// Standalone arena: hosts its metadata in a private segment.
  Arena(std::string name, std::uint64_t capacity,
        Backing backing = Backing::Real);

  /// Arena whose metadata lives in `segment` (the registry's shared
  /// segment). The segment must outlive the arena.
  Arena(std::string name, std::uint64_t capacity, Backing backing,
        Segment& segment);

  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocate `size` bytes (rounded up to 64-byte granules). Returns
  /// nullptr when no free range can fit the request (caller decides how to
  /// react — the Tahoe planner treats this as "no DRAM space").
  void* alloc(std::uint64_t size);

  /// Release an allocation previously returned by alloc().
  void free(void* p);

  /// True when `p` belongs to this arena.
  bool owns(const void* p) const;

  const std::string& name() const noexcept { return name_; }
  Backing backing() const noexcept { return backing_; }
  std::uint64_t capacity() const noexcept { return capacity_; }
  std::uint64_t used() const noexcept;
  std::uint64_t free_bytes() const noexcept;
  /// Size of the largest single allocatable range (fragmentation metric).
  std::uint64_t largest_free_range() const;
  std::size_t live_allocations() const;

  /// Segment offset of this arena's ArenaRoot (what walkers start from).
  std::uint64_t root_offset() const noexcept { return root_off_; }

 private:
  void init(std::uint64_t capacity);
  ArenaRoot* root() const { return segment_->at_as<ArenaRoot>(root_off_); }
  RangeNode* node_at(std::uint64_t off) const {
    return off == 0 ? nullptr : segment_->at_as<RangeNode>(off);
  }
  void publish_gauges_locked();

  std::string name_;
  std::uint64_t capacity_ = 0;
  Backing backing_;
  /// Private metadata segment for standalone arenas; null when the
  /// metadata lives in a caller-provided (registry) segment.
  std::unique_ptr<Segment> owned_segment_;
  Segment* segment_ = nullptr;
  std::uint64_t root_off_ = 0;
  mutable std::mutex mutex_;
  /// Process-local pointer->node index so free()/owns() stay O(log n).
  /// Pure acceleration: the segment's range list is the source of truth
  /// and an attacher can rebuild this map by walking it.
  std::map<const void*, std::uint64_t> node_index_;
  trace::Counter* meta_bytes_gauge_ = nullptr;
  trace::Counter* free_ranges_gauge_ = nullptr;
};

}  // namespace tahoe::hms
