// Object registry: allocation, lookup, pointer redirection and migration.
//
// The registry is the application-facing allocation service (the
// `tahoe_malloc` analogue). It owns one Arena per memory tier, creates
// chunked or unchunked data objects, and implements migration as
// allocate-copy-free with atomic pointer redirection plus rewriting of any
// registered alias slots — the mechanism the paper line uses so that
// applications keep working unmodified after a move.
//
// Storage: every registry-managed structure (the slot table, the
// DataObjects, their chunk arrays and alias tables, the arenas' range
// lists) lives inside one hms::Segment and is linked only by self-relative
// offsets — see layout.hpp for the map. The registry hands out
// generation-tagged ObjectIds into a fixed-capacity slot table with an
// intrusive free list, so destroyed slots are recycled and stale ids are
// detected. Statistics, mutexes and the fallback configuration stay
// process-local: they are this runtime's view, not shared state.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "hms/arena.hpp"
#include "hms/data_object.hpp"
#include "hms/layout.hpp"
#include "hms/segment.hpp"
#include "memsim/access.hpp"

namespace tahoe::hms {

struct MigrationStats {
  std::uint64_t migrations = 0;        ///< chunk moves performed
  std::uint64_t bytes_moved = 0;       ///< total bytes copied
  std::uint64_t to_dram = 0;           ///< moves into tier 0 (the fastest)
  std::uint64_t to_nvm = 0;            ///< moves into tier 1
  std::uint64_t failed_no_space = 0;   ///< refused: destination arena full
  std::uint64_t copy_aborts = 0;       ///< copies aborted mid-flight
  std::uint64_t alloc_fallbacks = 0;   ///< creates that fell back to another tier
  /// Moves into each destination tier, indexed by TierId (sized on first
  /// use; to_tier[kDram] == to_dram and to_tier[kNvm] == to_nvm on
  /// two-tier machines).
  std::vector<std::uint64_t> to_tier;
  /// Bytes moved per owning tenant, indexed by OwnerId (sized on first
  /// use; moves of unowned objects are not recorded here).
  std::vector<std::uint64_t> bytes_moved_by_owner;
};

/// Outcome of a single chunk-migration attempt. Aborts are transient
/// (worth retrying); no-space is not (retrying without eviction cannot
/// succeed).
enum class MigrateResult { kMoved, kAlreadyThere, kNoSpace, kAborted };

class ObjectRegistry {
 public:
  /// Slots in the object table. Generous relative to any workload in the
  /// repo; the table is a lazily paged segment allocation, so unused slots
  /// cost no physical memory.
  static constexpr std::uint32_t kDefaultSlotCapacity = 65536;

  /// One capacity per tier, indexed by DeviceId (kDram, kNvm, ...).
  /// Virtual backing skips payload allocation and copies — simulation-only
  /// runs use it to model multi-GiB tiers cheaply.
  explicit ObjectRegistry(const std::vector<std::uint64_t>& tier_capacities,
                          Backing backing = Backing::Real);

  ObjectRegistry(const ObjectRegistry&) = delete;
  ObjectRegistry& operator=(const ObjectRegistry&) = delete;

  /// Allocate a data object of `bytes`, split into `num_chunks` equal-ish
  /// chunks, initially placed on `initial`. When `initial` cannot hold a
  /// chunk (genuinely full, or an injected allocation fault), the chunk
  /// gracefully falls back to the other tiers and the actual device is
  /// recorded (see MigrationStats::alloc_fallbacks). Throws only when no
  /// tier can hold it.
  ObjectId create(const std::string& name, std::uint64_t bytes,
                  memsim::DeviceId initial, std::size_t num_chunks = 1);

  /// Destroy an object and release its storage. The slot is recycled with
  /// a bumped generation, so the old id becomes detectably stale.
  void destroy(ObjectId id);

  const DataObject& get(ObjectId id) const;
  DataObject& get_mutable(ObjectId id);
  std::size_t num_objects() const;
  std::vector<ObjectId> live_objects() const;

  /// Current backing pointer of chunk `chunk` (typed views layer on top).
  std::byte* chunk_ptr(ObjectId id, std::size_t chunk = 0) const;

  /// Register an application alias slot to be rewritten after migrations
  /// of the (unchunked) object.
  void register_alias(ObjectId id, void** slot);

  /// Move one chunk to `dst`. Copies the payload, frees the old backing,
  /// atomically redirects the chunk pointer and rewrites aliases.
  /// Returns false (and leaves everything untouched) when the destination
  /// arena has no room.
  bool migrate_chunk(ObjectId id, std::size_t chunk, memsim::DeviceId dst);

  /// Like migrate_chunk() but reports *why* a move did not happen, so the
  /// MigrationEngine can retry transient aborts and give up on exhaustion.
  MigrateResult try_migrate_chunk(ObjectId id, std::size_t chunk,
                                  memsim::DeviceId dst);

  /// Convenience: migrate every chunk of the object.
  bool migrate(ObjectId id, memsim::DeviceId dst);

  Arena& arena(memsim::DeviceId dev);
  const Arena& arena(memsim::DeviceId dev) const;
  std::size_t num_tiers() const noexcept { return arenas_.size(); }

  /// Last (largest, slowest) tier of the hierarchy — the default home of
  /// every object. Mirrors memsim::Machine::capacity_tier().
  memsim::TierId capacity_tier() const noexcept {
    return static_cast<memsim::TierId>(arenas_.empty() ? 0
                                                       : arenas_.size() - 1);
  }

  /// Configure the chain of tiers tried when an allocation's requested
  /// tier is full (default: every other tier in device order). The chain
  /// lists tiers to try *after* the requested one; entries equal to the
  /// requested tier are skipped, tiers missing from the chain are never
  /// tried. Pass an empty chain to restore the default.
  void set_fallback_order(std::vector<memsim::TierId> order);

  const MigrationStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = MigrationStats{}; }

  /// Bytes currently resident per tier across all objects.
  std::uint64_t resident_bytes(memsim::DeviceId dev) const;

  /// Tag an object with its owning tenant (multi-tenant serving runs).
  void set_owner(ObjectId id, OwnerId owner);

  /// Bytes of `owner`-tagged objects currently resident on `dev`.
  std::uint64_t resident_bytes_owned(OwnerId owner,
                                     memsim::DeviceId dev) const;

  /// Total footprint of `owner`-tagged objects across all tiers.
  std::uint64_t total_bytes_owned(OwnerId owner) const;

  /// The segment hosting every registry-managed structure. Copy its bytes
  /// (or fork) and Segment::attach() the image to walk this registry from
  /// anywhere — see walk.hpp.
  Segment& segment() noexcept { return segment_; }
  const Segment& segment() const noexcept { return segment_; }

 private:
  /// Allocate `bytes` on `initial`, retrying through injected failures and
  /// falling back to the other tiers (Unimem-style fallback-to-NVM
  /// semantics). Returns nullptr only when every tier is truly full.
  /// `chosen` receives the tier that served the allocation.
  void* alloc_with_fallback(std::uint64_t bytes, memsim::DeviceId initial,
                            memsim::DeviceId& chosen);

  RegistryRoot* root() const { return segment_.at_as<RegistryRoot>(root_off_); }
  ObjectSlot* slot_at(std::uint32_t index) const {
    return root()->slots.get() + index;
  }
  /// Validate a generation-tagged id and return its slot; throws
  /// ContractError on unknown/stale ids. Caller holds mutex_.
  ObjectSlot& resolve(ObjectId id) const;
  void publish_gauges_locked();

  Backing backing_;
  Segment segment_;
  std::uint64_t root_off_ = 0;
  std::vector<std::unique_ptr<Arena>> arenas_;
  std::vector<memsim::TierId> fallback_order_;  ///< empty = device order
  mutable std::mutex mutex_;
  MigrationStats stats_;
  /// Destination tiers already warned about a refused (no-space) migration
  /// — warn once per tier; the counter keeps the full tally. Atomic flags:
  /// concurrent alloc/migration paths may race on the first warning.
  std::unique_ptr<std::atomic<bool>[]> warned_no_space_;
  trace::Counter* slots_live_gauge_ = nullptr;
  trace::Counter* bytes_used_gauge_ = nullptr;
  trace::Counter* freelist_blocks_gauge_ = nullptr;
  trace::Counter* freelist_bytes_gauge_ = nullptr;
};

/// Typed view over an unchunked object. The pointer is re-read on every
/// data() call, so a handle stays valid across migrations.
template <typename T>
class Handle {
 public:
  Handle() = default;
  Handle(ObjectRegistry* reg, ObjectId id, std::size_t count)
      : reg_(reg), id_(id), count_(count) {}

  T* data() const {
    return reinterpret_cast<T*>(reg_->chunk_ptr(id_, 0));
  }
  std::span<T> span() const { return {data(), count_}; }
  std::size_t size() const noexcept { return count_; }
  ObjectId id() const noexcept { return id_; }
  bool valid() const noexcept { return reg_ != nullptr; }

  T& operator[](std::size_t i) const { return data()[i]; }

 private:
  ObjectRegistry* reg_ = nullptr;
  ObjectId id_ = kInvalidObject;
  std::size_t count_ = 0;
};

/// Allocate a typed unchunked object ("tahoe_malloc").
template <typename T>
Handle<T> make_array(ObjectRegistry& reg, const std::string& name,
                     std::size_t count, memsim::DeviceId initial) {
  const ObjectId id = reg.create(name, count * sizeof(T), initial, 1);
  return Handle<T>(&reg, id, count);
}

}  // namespace tahoe::hms
