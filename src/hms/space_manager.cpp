#include "hms/space_manager.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/fault.hpp"

namespace tahoe::hms {

SpaceManager::SpaceManager(std::uint64_t capacity) : capacity_(capacity) {
  TAHOE_REQUIRE(capacity > 0, "space manager capacity must be positive");
}

bool SpaceManager::resident(ObjectId id, std::size_t chunk) const {
  return resident_.contains(Unit{id, chunk});
}

bool SpaceManager::can_fit(std::uint64_t bytes) const noexcept {
  return bytes <= free_bytes();
}

bool SpaceManager::add(ObjectId id, std::size_t chunk, std::uint64_t bytes) {
  TAHOE_REQUIRE(bytes > 0, "cannot add empty unit");
  const Unit u{id, chunk};
  if (resident_.contains(u)) return true;
  if (!can_fit(bytes)) return false;
  resident_.emplace(u, bytes);
  used_ += bytes;
  return true;
}

bool SpaceManager::try_reserve(ObjectId id, std::size_t chunk,
                               std::uint64_t bytes) {
  if (fault::global().should_fail(fault::Site::DramReservation)) return false;
  return add(id, chunk, bytes);
}

std::uint64_t SpaceManager::remove(ObjectId id, std::size_t chunk) {
  auto it = resident_.find(Unit{id, chunk});
  if (it == resident_.end()) return 0;
  const std::uint64_t bytes = it->second;
  TAHOE_ASSERT(used_ >= bytes, "space accounting underflow");
  used_ -= bytes;
  resident_.erase(it);
  return bytes;
}

std::vector<SpaceManager::Unit> SpaceManager::pick_victims(
    std::uint64_t bytes, const std::vector<Unit>& pinned) const {
  if (can_fit(bytes)) return {};
  if (bytes > capacity_) return {};  // hopeless even when empty
  const std::uint64_t need = bytes - free_bytes();
  const auto is_pinned = [&pinned](const Unit& u) {
    return std::find(pinned.begin(), pinned.end(), u) != pinned.end();
  };

  // Prefer the single smallest unit that frees enough space ("just big
  // enough"), mirroring the paper's extra-cost minimization.
  const std::pair<const Unit, std::uint64_t>* best_single = nullptr;
  for (const auto& entry : resident_) {
    if (entry.second >= need && !is_pinned(entry.first)) {
      if (best_single == nullptr || entry.second < best_single->second) {
        best_single = &entry;
      }
    }
  }
  if (best_single != nullptr) return {best_single->first};

  // Otherwise evict largest-first until the request fits.
  std::vector<std::pair<Unit, std::uint64_t>> units;
  for (const auto& entry : resident_) {
    if (!is_pinned(entry.first)) units.push_back(entry);
  }
  std::sort(units.begin(), units.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  std::vector<Unit> victims;
  std::uint64_t freed = 0;
  for (const auto& [unit, size] : units) {
    victims.push_back(unit);
    freed += size;
    if (freed >= need) return victims;
  }
  return {};  // evictable units cannot make room
}

}  // namespace tahoe::hms
