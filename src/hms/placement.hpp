// PlacementMap: where each (object, chunk) unit currently lives — or, for
// the planner, where a hypothetical plan puts it. Cheap to copy (plans fork
// it), defaulting unknown units to NVM, which matches the system's default
// initial placement.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "hms/data_object.hpp"
#include "memsim/access.hpp"

namespace tahoe::hms {

class PlacementMap {
 public:
  using Unit = std::pair<ObjectId, std::size_t>;

  memsim::DeviceId device_of(ObjectId id, std::size_t chunk = 0) const {
    const auto it = map_.find(Unit{id, chunk});
    return it == map_.end() ? memsim::kNvm : it->second;
  }

  void set(ObjectId id, std::size_t chunk, memsim::DeviceId dev) {
    map_[Unit{id, chunk}] = dev;
  }

  bool operator==(const PlacementMap&) const = default;

  /// Bytes mapped to `dev` given the authoritative chunk sizes.
  template <typename SizeFn>  // uint64_t(ObjectId, std::size_t chunk)
  std::uint64_t bytes_on(memsim::DeviceId dev, SizeFn size_of) const {
    std::uint64_t total = 0;
    for (const auto& [unit, d] : map_) {
      if (d == dev) total += size_of(unit.first, unit.second);
    }
    return total;
  }

  const std::map<Unit, memsim::DeviceId>& entries() const noexcept {
    return map_;
  }

 private:
  std::map<Unit, memsim::DeviceId> map_;
};

}  // namespace tahoe::hms
