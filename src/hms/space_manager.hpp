// DRAM-occupancy accounting used by the placement planner.
//
// The planner reasons about *future* DRAM contents phase by phase, before
// any migration happens, so it needs bookkeeping that is decoupled from the
// real Arena. SpaceManager tracks which (object, chunk) units are resident
// in a tier of a given capacity, supports what-if queries ("which victims
// would have to leave to fit X?"), and is cheaply copyable so local and
// global searches can fork hypothetical states.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "hms/data_object.hpp"

namespace tahoe::hms {

class SpaceManager {
 public:
  using Unit = std::pair<ObjectId, std::size_t>;  ///< (object, chunk)

  explicit SpaceManager(std::uint64_t capacity);

  std::uint64_t capacity() const noexcept { return capacity_; }
  std::uint64_t used() const noexcept { return used_; }
  std::uint64_t free_bytes() const noexcept { return capacity_ - used_; }

  bool resident(ObjectId id, std::size_t chunk = 0) const;
  bool can_fit(std::uint64_t bytes) const noexcept;

  /// Add a unit. Fails (returns false) if it does not fit.
  bool add(ObjectId id, std::size_t chunk, std::uint64_t bytes);

  /// Fault-aware add() used by the runtime's plan validation: behaves
  /// exactly like add(), except an armed FaultInjector may veto the
  /// reservation (Site::DramReservation) to model racing consumers of
  /// DRAM space. Planner-internal what-if state keeps using add(), whose
  /// invariants stay exact.
  bool try_reserve(ObjectId id, std::size_t chunk, std::uint64_t bytes);

  /// Remove a unit (no-op if absent). Returns bytes released.
  std::uint64_t remove(ObjectId id, std::size_t chunk = 0);

  /// Pick victims to evict so that `bytes` fit, using the paper's rule:
  /// evict resident units whose total size is *just big enough* — smallest
  /// sufficient combination approximated by choosing the smallest single
  /// sufficient unit, else greedily largest-first. Units in `pinned` are
  /// never chosen. Victims are not removed; the caller decides. Returns
  /// empty if even evicting every evictable unit would not fit.
  std::vector<Unit> pick_victims(std::uint64_t bytes,
                                 const std::vector<Unit>& pinned = {}) const;

  /// All resident units with their sizes.
  const std::map<Unit, std::uint64_t>& contents() const noexcept {
    return resident_;
  }

 private:
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::map<Unit, std::uint64_t> resident_;
};

}  // namespace tahoe::hms
