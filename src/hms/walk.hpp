// Registry walker: enumerate a segment's objects and arenas from the
// bytes alone.
//
// walk_registry() starts from the segment header's root offset and follows
// only segment-internal references (OffsetPtrs and u64 offsets), so it
// works identically on the live registry's segment, on a memcpy'd image
// attached at a different base address, and in a forked child — that
// equivalence is the relocatability proof the relocation tests check, and
// the read path the future node-wide daemon will use. Payload addresses
// are deliberately absent from the walk: they reference process-heap
// buffers outside the segment and would differ across processes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hms/data_object.hpp"
#include "hms/segment.hpp"

namespace tahoe::hms {

struct ObjectWalk {
  ObjectId id = kInvalidObject;
  std::string name;
  std::uint64_t bytes = 0;
  OwnerId owner = kNoOwner;
  double static_ref_estimate = 0.0;
  /// (bytes, device) per chunk, in chunk order.
  std::vector<std::pair<std::uint64_t, memsim::DeviceId>> chunks;
  std::uint32_t num_aliases = 0;

  bool operator==(const ObjectWalk&) const = default;
};

struct ArenaWalk {
  std::string name;
  std::uint64_t capacity = 0;
  std::uint64_t used = 0;
  std::uint64_t live_blocks = 0;
  std::uint64_t free_ranges = 0;
  std::uint64_t largest_free_range = 0;

  bool operator==(const ArenaWalk&) const = default;
};

struct RegistryWalk {
  std::uint32_t num_tiers = 0;
  std::uint32_t live_objects = 0;
  std::uint32_t slot_capacity = 0;
  std::vector<ObjectWalk> objects;  ///< slot order
  std::vector<ArenaWalk> arenas;    ///< tier order
  /// Bytes resident per tier, summed over all live objects' chunks.
  std::vector<std::uint64_t> resident_by_tier;
  /// Per-owner per-tier residency (owner accounting); objects without an
  /// owner tag are excluded, mirroring ObjectRegistry's owned queries.
  std::map<OwnerId, std::vector<std::uint64_t>> owned_by_tier;

  bool operator==(const RegistryWalk&) const = default;

  /// Deterministic single-line-per-entry rendering (test diffs, CI
  /// artifacts). Identical walks produce identical strings.
  std::string to_json() const;
};

/// Walk the registry hosted in `segment` (created by ObjectRegistry, or an
/// attached image of one). Throws ContractError when the segment has no
/// root or the layout is malformed.
RegistryWalk walk_registry(const Segment& segment);

}  // namespace tahoe::hms
