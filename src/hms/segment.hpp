// Contiguous mapped segment hosting the runtime's relocatable metadata.
//
// Every structure the hms layer manages — registry slot table, data-object
// chunk arrays, alias tables, arena block metadata — lives inside one
// Segment and references other structures only through self-relative
// OffsetPtrs (src/common/offset_ptr.hpp) or segment-relative offsets. The
// whole image can therefore be copied, remapped at a different base
// address, or attached from another process, and a walker still resolves
// every reference. This is the substrate the ROADMAP's node-wide tiering
// daemon mounts on: today the mapping is an anonymous MAP_SHARED region
// (fork-shareable), and the file-backed constructor places the same layout
// in /dev/shm for unrelated processes to shm_open.
//
// The internal allocator is bump-plus-freelist: fresh allocations advance a
// bump offset; freed blocks go onto power-of-two size-class freelists (one
// first-fit list for large blocks) and are reused exactly. Allocation
// metadata (one 16-byte header per block) and the freelist links live
// inside the segment itself, so an attached copy sees a complete heap.
//
// Thread safety: every public method is serialized by a process-local
// mutex. Cross-*process* synchronization is out of scope here — the
// single-writer (owning runtime) / read-only-walker (tools, relocation
// tests, future daemon clients) split is the supported sharing model until
// the futex-based daemon protocol lands.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace tahoe::hms {

/// Fixed header at offset 0 of every segment image. Plain integers only —
/// the header must be readable from any mapping of the bytes.
struct SegmentHeader {
  static constexpr std::uint64_t kMagic = 0x5461686f65536567ULL;  // "TahoeSeg"
  static constexpr std::uint32_t kVersion = 1;
  /// Power-of-two size classes: 16 B ... 64 KiB; larger blocks go on one
  /// first-fit list (kLargeList).
  static constexpr std::size_t kNumClasses = 13;

  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t flags = 0;
  std::uint64_t bytes = 0;        ///< mapped size recorded at creation
  std::uint64_t bump = 0;         ///< next fresh offset (grows upward)
  std::uint64_t root = 0;         ///< offset of the owner's root struct (0 = unset)
  std::uint64_t live_allocs = 0;  ///< blocks currently handed out
  std::uint64_t live_bytes = 0;   ///< payload bytes currently handed out
  std::uint64_t freelist_blocks = 0;  ///< blocks parked on freelists
  std::uint64_t freelist_bytes = 0;   ///< payload bytes parked on freelists
  std::uint64_t free_heads[kNumClasses] = {};  ///< per-class freelist heads
  std::uint64_t large_head = 0;                ///< first-fit list, blocks > 64 KiB
};

/// One mapped segment. Move-only; the destructor unmaps (and, for
/// shm-backed segments created here, unlinks) the region. Attached views
/// never own the bytes.
class Segment {
 public:
  /// Anonymous MAP_SHARED mapping of `bytes` (rounded up to the page
  /// size). Shared with forked children; pages are allocated lazily, so a
  /// generous reservation costs only what is actually touched.
  explicit Segment(std::uint64_t bytes);

  /// File-backed segment in /dev/shm (`shm_open(name)` + ftruncate +
  /// MAP_SHARED): the layout unrelated processes will attach. The name
  /// must start with '/' (shm_open convention). Unlinked on destruction.
  Segment(const std::string& shm_name, std::uint64_t bytes);

  /// Non-owning view over an existing image (a copied segment, a mapping
  /// of a /dev/shm file, a forked parent's region). Validates the magic,
  /// version and recorded size against `bytes` and throws ContractError on
  /// mismatch — a walker must never interpret foreign bytes.
  static Segment attach(void* image, std::uint64_t bytes);

  ~Segment();
  Segment(Segment&& o) noexcept;
  Segment& operator=(Segment&& o) noexcept;
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  /// Allocate `bytes` (16-byte aligned). Returns nullptr when the segment
  /// is exhausted or an armed FaultInjector fires the SegmentAlloc site.
  void* alloc(std::uint64_t bytes);

  /// Resize an allocation. Same-class resizes return `p` unchanged; larger
  /// ones allocate-copy-free. nullptr on exhaustion (the original block is
  /// untouched). realloc(nullptr, n) == alloc(n).
  void* realloc(void* p, std::uint64_t bytes);

  /// Return a block to its size-class freelist. Never fails.
  void free(void* p);

  // ---- address <-> offset ------------------------------------------------
  std::byte* base() const noexcept { return base_; }
  std::uint64_t size() const noexcept { return bytes_; }
  bool contains(const void* p) const noexcept {
    const auto* b = static_cast<const std::byte*>(p);
    return b >= base_ && b < base_ + bytes_;
  }
  std::uint64_t offset_of(const void* p) const;
  void* at(std::uint64_t offset) const;

  template <typename T>
  T* at_as(std::uint64_t offset) const {
    return static_cast<T*>(at(offset));
  }

  /// Offset of the owner's root structure (e.g. the registry's slot-table
  /// header), so an attached view can find it without out-of-band state.
  void set_root(std::uint64_t offset);
  std::uint64_t root() const;

  // ---- stats (hms.segment.* counters read these) -------------------------
  std::uint64_t used() const;            ///< bump high-water mark in bytes
  std::uint64_t live_allocations() const;
  std::uint64_t live_bytes() const;
  std::uint64_t freelist_blocks() const;
  std::uint64_t freelist_bytes() const;

  bool owning() const noexcept { return owning_; }
  /// Name passed to the shm constructor; empty for anonymous/attached.
  const std::string& shm_name() const noexcept { return shm_name_; }

  const SegmentHeader& header() const { return *header_; }

 private:
  Segment() = default;
  void init_header(std::uint64_t bytes);
  void* alloc_locked(std::uint64_t bytes);
  void free_locked(void* p);

  std::byte* base_ = nullptr;
  std::uint64_t bytes_ = 0;      ///< mapped size of this view
  SegmentHeader* header_ = nullptr;
  bool owning_ = false;          ///< unmap on destruction
  bool mapped_ = false;          ///< this view created the mapping
  std::string shm_name_;
  /// Process-local; unique_ptr so Segment stays movable.
  std::unique_ptr<std::mutex> mutex_ = std::make_unique<std::mutex>();
};

}  // namespace tahoe::hms
