#include "hms/registry.hpp"

#include <cstring>

#include "common/assert.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "common/units.hpp"
#include "trace/counters.hpp"

namespace tahoe::hms {
namespace {

/// Per-attempt retries before giving up on a tier. Injected allocation
/// failures are transient by construction, so a small bound suffices;
/// genuine exhaustion fails every attempt and falls through to fallback.
constexpr int kAllocAttempts = 3;

/// Metadata segment reservation: slot table (~9 MiB at the default
/// capacity) plus chunk arrays, alias tables and arena range lists. The
/// mapping is lazily paged, so the reservation costs only what is touched.
constexpr std::uint64_t kSegmentBytes = 128 * kMiB;

}  // namespace

ObjectRegistry::ObjectRegistry(const std::vector<std::uint64_t>& tier_capacities,
                               Backing backing)
    : backing_(backing), segment_(kSegmentBytes) {
  TAHOE_REQUIRE(tier_capacities.size() >= 2,
                "registry needs at least DRAM and NVM tiers");
  TAHOE_REQUIRE(tier_capacities.size() <= kMaxTiers,
                "more tiers than the segment layout supports");

  void* root_mem = segment_.alloc(sizeof(RegistryRoot));
  TAHOE_REQUIRE(root_mem != nullptr, "segment exhausted creating registry root");
  auto* r = new (root_mem) RegistryRoot{};
  root_off_ = segment_.offset_of(root_mem);

  r->num_tiers = static_cast<std::uint32_t>(tier_capacities.size());
  r->slot_capacity = kDefaultSlotCapacity;
  // The slot table comes from the fresh bump region, so its pages are
  // zero: slots are materialized lazily (placement-new on first claim)
  // rather than eagerly constructed 65536 times.
  void* slots_mem =
      segment_.alloc(sizeof(ObjectSlot) * std::uint64_t{kDefaultSlotCapacity});
  TAHOE_REQUIRE(slots_mem != nullptr, "segment exhausted creating slot table");
  r->slots = static_cast<ObjectSlot*>(slots_mem);
  segment_.set_root(root_off_);

  for (std::size_t d = 0; d < tier_capacities.size(); ++d) {
    arenas_.push_back(std::make_unique<Arena>("tier-" + std::to_string(d),
                                              tier_capacities[d], backing,
                                              segment_));
    root()->arena_root[d] = arenas_.back()->root_offset();
  }

  warned_no_space_ =
      std::make_unique<std::atomic<bool>[]>(tier_capacities.size());
  for (std::size_t d = 0; d < tier_capacities.size(); ++d) {
    warned_no_space_[d].store(false, std::memory_order_relaxed);
  }

  trace::CounterRegistry& reg = trace::global_counters();
  slots_live_gauge_ = &reg.gauge("hms.segment.slots_live");
  bytes_used_gauge_ = &reg.gauge("hms.segment.bytes_used");
  freelist_blocks_gauge_ = &reg.gauge("hms.segment.freelist_blocks");
  freelist_bytes_gauge_ = &reg.gauge("hms.segment.freelist_bytes");
  reg.gauge("hms.segment.slot_capacity").set(kDefaultSlotCapacity);
  reg.gauge("hms.segment.bytes_capacity").set(segment_.size());
  publish_gauges_locked();
}

void ObjectRegistry::publish_gauges_locked() {
  slots_live_gauge_->set(root()->live_count);
  bytes_used_gauge_->set(segment_.used());
  freelist_blocks_gauge_->set(segment_.freelist_blocks());
  freelist_bytes_gauge_->set(segment_.freelist_bytes());
}

ObjectSlot& ObjectRegistry::resolve(ObjectId id) const {
  const RegistryRoot* r = root();
  const std::uint32_t slot_idx = object_slot(id);
  const std::uint32_t gen = object_generation(id);
  TAHOE_REQUIRE(slot_idx < r->high_slot, "unknown object id");
  ObjectSlot* slot = slot_at(slot_idx);
  TAHOE_REQUIRE(slot->in_use != 0 && (slot->generation & 0xffu) == gen,
                "unknown object id");
  return *slot;
}

ObjectId ObjectRegistry::create(const std::string& name, std::uint64_t bytes,
                                memsim::DeviceId initial,
                                std::size_t num_chunks) {
  TAHOE_REQUIRE(bytes > 0, "object must have positive size");
  TAHOE_REQUIRE(num_chunks >= 1, "object needs at least one chunk");
  TAHOE_REQUIRE(initial < arenas_.size(), "initial device out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  RegistryRoot* r = root();
  TAHOE_REQUIRE(r->free_head != kNoSlot || r->high_slot < r->slot_capacity,
                "object table full");

  // The id is determined by the slot that *will* be claimed; the slot is
  // only claimed after every chunk allocation succeeded, so a failed
  // create leaves the table untouched.
  const bool recycled = r->free_head != kNoSlot;
  const std::uint32_t slot_idx = recycled ? r->free_head : r->high_slot;
  const std::uint32_t gen =
      recycled ? (slot_at(slot_idx)->generation & 0xffu) : 0;
  const ObjectId id = make_object_id(gen, slot_idx);

  void* chunks_mem = segment_.alloc(sizeof(Chunk) * num_chunks);
  TAHOE_REQUIRE(chunks_mem != nullptr,
                "segment exhausted creating chunk array");
  auto* chunks = static_cast<Chunk*>(chunks_mem);
  for (std::size_t c = 0; c < num_chunks; ++c) new (chunks + c) Chunk{};

  const std::uint64_t base = bytes / num_chunks;
  std::uint64_t assigned = 0;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::uint64_t sz = (c + 1 == num_chunks) ? bytes - assigned : base;
    assigned += sz;
    chunks[c].bytes = sz;
    memsim::DeviceId chosen = initial;
    void* p = alloc_with_fallback(sz, initial, chosen);
    if (p == nullptr) {
      // Roll back chunks already placed so a failed create leaks nothing.
      for (std::size_t k = 0; k < c; ++k) {
        arenas_[chunks[k].device]->free(chunks[k].data());
      }
      segment_.free(chunks_mem);
      TAHOE_REQUIRE(false, "no tier can hold object '" + name + "'");
    }
    chunks[c].device = chosen;
    if (backing_ == Backing::Real) std::memset(p, 0, sz);
    chunks[c].set_data(static_cast<std::byte*>(p));
  }

  ObjectSlot* slot;
  if (recycled) {
    slot = slot_at(slot_idx);
    r->free_head = slot->next_free;
    slot->next_free = kNoSlot;
  } else {
    slot = new (slot_at(slot_idx)) ObjectSlot{};
    r->high_slot += 1;
  }
  slot->in_use = 1;
  DataObject* obj = new (&slot->object) DataObject{};
  obj->id = id;
  obj->bytes = bytes;
  obj->set_name(name);
  obj->chunks_.reset(chunks, num_chunks);
  r->live_count += 1;
  publish_gauges_locked();
  return id;
}

void ObjectRegistry::destroy(ObjectId id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ObjectSlot& slot = resolve(id);
  DataObject& obj = slot.object;
  for (Chunk& c : obj.chunks()) {
    arenas_[c.device]->free(c.data());
  }
  if (obj.chunks_.data() != nullptr) segment_.free(obj.chunks_.data());
  if (obj.aliases_) segment_.free(obj.aliases_.get());
  obj.chunks_.clear();
  obj.aliases_ = nullptr;
  obj.alias_count_ = obj.alias_capacity_ = 0;

  RegistryRoot* r = root();
  slot.in_use = 0;
  slot.generation += 1;  // stale ids now fail the generation check
  slot.next_free = r->free_head;
  r->free_head = object_slot(id);
  r->live_count -= 1;
  publish_gauges_locked();
}

const DataObject& ObjectRegistry::get(ObjectId id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return resolve(id).object;
}

DataObject& ObjectRegistry::get_mutable(ObjectId id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return resolve(id).object;
}

std::size_t ObjectRegistry::num_objects() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return root()->live_count;
}

std::vector<ObjectId> ObjectRegistry::live_objects() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const RegistryRoot* r = root();
  std::vector<ObjectId> out;
  out.reserve(r->live_count);
  for (std::uint32_t s = 0; s < r->high_slot; ++s) {
    const ObjectSlot* slot = slot_at(s);
    if (slot->in_use != 0) out.push_back(slot->object.id);
  }
  return out;
}

std::byte* ObjectRegistry::chunk_ptr(ObjectId id, std::size_t chunk) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return resolve(id).object.chunk(chunk).data();
}

void ObjectRegistry::register_alias(ObjectId id, void** slot) {
  TAHOE_REQUIRE(slot != nullptr, "null alias slot");
  const std::lock_guard<std::mutex> lock(mutex_);
  DataObject& obj = resolve(id).object;
  TAHOE_REQUIRE(!obj.chunked(),
                "alias registration is only supported for unchunked objects");
  if (obj.alias_count_ == obj.alias_capacity_) {
    const std::uint32_t cap =
        obj.alias_capacity_ == 0 ? 4 : obj.alias_capacity_ * 2;
    void* grown =
        segment_.realloc(obj.aliases_.get(), sizeof(AliasSlot) * cap);
    TAHOE_REQUIRE(grown != nullptr, "segment exhausted growing alias table");
    obj.aliases_ = static_cast<AliasSlot*>(grown);
    obj.alias_capacity_ = cap;
  }
  obj.aliases_[obj.alias_count_].slot_addr =
      static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(slot));
  obj.alias_count_ += 1;
  *slot = obj.chunk(0).data();
}

void ObjectRegistry::set_fallback_order(std::vector<memsim::TierId> order) {
  for (const memsim::TierId t : order) {
    TAHOE_REQUIRE(t < arenas_.size(), "fallback tier out of range");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  fallback_order_ = std::move(order);
}

void* ObjectRegistry::alloc_with_fallback(std::uint64_t bytes,
                                          memsim::DeviceId initial,
                                          memsim::DeviceId& chosen) {
  // Tier order: requested tier first, then the fallback chain. By default
  // the chain is every other tier in device order (DRAM-requested objects
  // degrade toward the capacity tier, mirroring the runtime's
  // fallback-to-slow-tier policy; never silently "upgrade" capacity). A
  // configured chain restricts and reorders the tiers tried.
  std::vector<memsim::DeviceId> order{initial};
  if (fallback_order_.empty()) {
    for (memsim::DeviceId d = 0; d < arenas_.size(); ++d) {
      if (d != initial) order.push_back(d);
    }
  } else {
    for (const memsim::TierId t : fallback_order_) {
      if (t != initial) order.push_back(t);
    }
  }
  fault::FaultInjector& inj = fault::global();
  for (const memsim::DeviceId dev : order) {
    for (int attempt = 0; attempt < kAllocAttempts; ++attempt) {
      if (inj.should_fail(fault::Site::AllocFailure)) continue;
      void* p = arenas_[dev]->alloc(bytes);
      if (p != nullptr) {
        if (dev != initial) {
          ++stats_.alloc_fallbacks;
          trace::global_counters().get("alloc.fallbacks").increment();
          TAHOE_WARN("allocation of " << bytes << " B fell back from tier "
                                      << initial << " to tier " << dev);
        }
        chosen = dev;
        return p;
      }
    }
  }
  return nullptr;
}

bool ObjectRegistry::migrate_chunk(ObjectId id, std::size_t chunk,
                                   memsim::DeviceId dst) {
  const MigrateResult res = try_migrate_chunk(id, chunk, dst);
  return res == MigrateResult::kMoved || res == MigrateResult::kAlreadyThere;
}

MigrateResult ObjectRegistry::try_migrate_chunk(ObjectId id, std::size_t chunk,
                                                memsim::DeviceId dst) {
  TAHOE_REQUIRE(dst < arenas_.size(), "destination device out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  DataObject& obj = resolve(id).object;
  Chunk& c = obj.chunk(chunk);
  if (c.device == dst) return MigrateResult::kAlreadyThere;

  void* fresh = arenas_[dst]->alloc(c.bytes);
  if (fresh == nullptr) {
    ++stats_.failed_no_space;
    trace::global_counters().get("migrate.failed_no_space").increment();
    if (!warned_no_space_[dst].exchange(true, std::memory_order_relaxed)) {
      TAHOE_WARN("migration of '" << obj.name() << "' (object " << id
                                  << ") to tier " << dst
                                  << " refused: no space (warning once per "
                                     "tier; see failed_no_space in the run "
                                     "report)");
    }
    return MigrateResult::kNoSpace;
  }
  // Chaos hook: abort the copy after the destination allocation succeeded —
  // the hardest point to unwind. The fresh block is released and the chunk
  // stays fully valid on its source tier.
  if (fault::global().should_fail(fault::Site::MigrationAbort)) {
    arenas_[dst]->free(fresh);
    ++stats_.copy_aborts;
    trace::global_counters().get("migrate.copy_aborts").increment();
    return MigrateResult::kAborted;
  }
  std::byte* old = c.data();
  if (backing_ == Backing::Real) std::memcpy(fresh, old, c.bytes);
  const memsim::DeviceId src = c.device;
  c.device = dst;
  c.set_data(static_cast<std::byte*>(fresh));
  arenas_[src]->free(old);

  for (std::uint32_t a = 0; a < obj.alias_count_; ++a) {
    *reinterpret_cast<void**>(
        static_cast<std::uintptr_t>(obj.aliases_[a].slot_addr)) = fresh;
  }

  ++stats_.migrations;
  stats_.bytes_moved += c.bytes;
  if (dst == memsim::kDram) ++stats_.to_dram;
  if (dst == memsim::kNvm) ++stats_.to_nvm;
  if (stats_.to_tier.size() < arenas_.size()) {
    stats_.to_tier.resize(arenas_.size(), 0);
  }
  ++stats_.to_tier[dst];
  if (obj.owner != kNoOwner) {
    if (stats_.bytes_moved_by_owner.size() <= obj.owner) {
      stats_.bytes_moved_by_owner.resize(obj.owner + 1, 0);
    }
    stats_.bytes_moved_by_owner[obj.owner] += c.bytes;
  }
  return MigrateResult::kMoved;
}

bool ObjectRegistry::migrate(ObjectId id, memsim::DeviceId dst) {
  std::size_t n = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    n = resolve(id).object.num_chunks();
  }
  for (std::size_t c = 0; c < n; ++c) {
    if (!migrate_chunk(id, c, dst)) return false;
  }
  return true;
}

Arena& ObjectRegistry::arena(memsim::DeviceId dev) {
  TAHOE_REQUIRE(dev < arenas_.size(), "tier out of range");
  return *arenas_[dev];
}

const Arena& ObjectRegistry::arena(memsim::DeviceId dev) const {
  TAHOE_REQUIRE(dev < arenas_.size(), "tier out of range");
  return *arenas_[dev];
}

std::uint64_t ObjectRegistry::resident_bytes(memsim::DeviceId dev) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const RegistryRoot* r = root();
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < r->high_slot; ++s) {
    const ObjectSlot* slot = slot_at(s);
    if (slot->in_use != 0) total += slot->object.bytes_on(dev);
  }
  return total;
}

void ObjectRegistry::set_owner(ObjectId id, OwnerId owner) {
  const std::lock_guard<std::mutex> lock(mutex_);
  resolve(id).object.owner = owner;
}

std::uint64_t ObjectRegistry::resident_bytes_owned(
    OwnerId owner, memsim::DeviceId dev) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const RegistryRoot* r = root();
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < r->high_slot; ++s) {
    const ObjectSlot* slot = slot_at(s);
    if (slot->in_use != 0 && slot->object.owner == owner) {
      total += slot->object.bytes_on(dev);
    }
  }
  return total;
}

std::uint64_t ObjectRegistry::total_bytes_owned(OwnerId owner) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const RegistryRoot* r = root();
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < r->high_slot; ++s) {
    const ObjectSlot* slot = slot_at(s);
    if (slot->in_use != 0 && slot->object.owner == owner) {
      total += slot->object.bytes;
    }
  }
  return total;
}

}  // namespace tahoe::hms
