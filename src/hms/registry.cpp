#include "hms/registry.hpp"

#include <cstring>

#include "common/assert.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "trace/counters.hpp"

namespace tahoe::hms {
namespace {

/// Per-attempt retries before giving up on a tier. Injected allocation
/// failures are transient by construction, so a small bound suffices;
/// genuine exhaustion fails every attempt and falls through to fallback.
constexpr int kAllocAttempts = 3;

}  // namespace

ObjectRegistry::ObjectRegistry(const std::vector<std::uint64_t>& tier_capacities,
                               Backing backing)
    : backing_(backing) {
  TAHOE_REQUIRE(tier_capacities.size() >= 2,
                "registry needs at least DRAM and NVM tiers");
  for (std::size_t d = 0; d < tier_capacities.size(); ++d) {
    arenas_.push_back(std::make_unique<Arena>("tier-" + std::to_string(d),
                                              tier_capacities[d], backing));
  }
}

ObjectId ObjectRegistry::create(const std::string& name, std::uint64_t bytes,
                                memsim::DeviceId initial,
                                std::size_t num_chunks) {
  TAHOE_REQUIRE(bytes > 0, "object must have positive size");
  TAHOE_REQUIRE(num_chunks >= 1, "object needs at least one chunk");
  TAHOE_REQUIRE(initial < arenas_.size(), "initial device out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  auto obj = std::make_unique<DataObject>();
  obj->id = static_cast<ObjectId>(objects_.size());
  obj->name = name;
  obj->bytes = bytes;
  obj->chunks.resize(num_chunks);
  const std::uint64_t base = bytes / num_chunks;
  std::uint64_t assigned = 0;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::uint64_t sz =
        (c + 1 == num_chunks) ? bytes - assigned : base;
    assigned += sz;
    obj->chunks[c].bytes = sz;
    memsim::DeviceId chosen = initial;
    void* p = alloc_with_fallback(sz, initial, chosen);
    if (p == nullptr) {
      // Roll back chunks already placed so a failed create leaks nothing.
      for (std::size_t k = 0; k < c; ++k) {
        arenas_[obj->chunks[k].device]->free(
            obj->chunks[k].ptr.load(std::memory_order_acquire));
      }
      TAHOE_REQUIRE(false, "no tier can hold object '" + name + "'");
    }
    obj->chunks[c].device = chosen;
    if (backing_ == Backing::Real) std::memset(p, 0, sz);
    obj->chunks[c].ptr.store(static_cast<std::byte*>(p),
                             std::memory_order_release);
  }
  const ObjectId id = obj->id;
  objects_.push_back(std::move(obj));
  return id;
}

void ObjectRegistry::destroy(ObjectId id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TAHOE_REQUIRE(id < objects_.size() && objects_[id] != nullptr,
                "destroy of unknown object");
  for (Chunk& c : objects_[id]->chunks) {
    arenas_[c.device]->free(c.ptr.load(std::memory_order_acquire));
  }
  objects_[id].reset();
}

const DataObject& ObjectRegistry::get(ObjectId id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  TAHOE_REQUIRE(id < objects_.size() && objects_[id] != nullptr,
                "unknown object id");
  return *objects_[id];
}

DataObject& ObjectRegistry::get_mutable(ObjectId id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TAHOE_REQUIRE(id < objects_.size() && objects_[id] != nullptr,
                "unknown object id");
  return *objects_[id];
}

std::size_t ObjectRegistry::num_objects() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& o : objects_) {
    if (o) ++n;
  }
  return n;
}

std::vector<ObjectId> ObjectRegistry::live_objects() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ObjectId> out;
  for (const auto& o : objects_) {
    if (o) out.push_back(o->id);
  }
  return out;
}

std::byte* ObjectRegistry::chunk_ptr(ObjectId id, std::size_t chunk) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  TAHOE_REQUIRE(id < objects_.size() && objects_[id] != nullptr,
                "unknown object id");
  const DataObject& obj = *objects_[id];
  TAHOE_REQUIRE(chunk < obj.chunks.size(), "chunk index out of range");
  return obj.chunks[chunk].ptr.load(std::memory_order_acquire);
}

void ObjectRegistry::register_alias(ObjectId id, void** slot) {
  TAHOE_REQUIRE(slot != nullptr, "null alias slot");
  const std::lock_guard<std::mutex> lock(mutex_);
  TAHOE_REQUIRE(id < objects_.size() && objects_[id] != nullptr,
                "unknown object id");
  DataObject& obj = *objects_[id];
  TAHOE_REQUIRE(!obj.chunked(),
                "alias registration is only supported for unchunked objects");
  obj.aliases.push_back(slot);
  *slot = obj.chunks.front().ptr.load(std::memory_order_acquire);
}

void ObjectRegistry::set_fallback_order(std::vector<memsim::TierId> order) {
  for (const memsim::TierId t : order) {
    TAHOE_REQUIRE(t < arenas_.size(), "fallback tier out of range");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  fallback_order_ = std::move(order);
}

void* ObjectRegistry::alloc_with_fallback(std::uint64_t bytes,
                                          memsim::DeviceId initial,
                                          memsim::DeviceId& chosen) {
  // Tier order: requested tier first, then the fallback chain. By default
  // the chain is every other tier in device order (DRAM-requested objects
  // degrade toward the capacity tier, mirroring the runtime's
  // fallback-to-slow-tier policy; never silently "upgrade" capacity). A
  // configured chain restricts and reorders the tiers tried.
  std::vector<memsim::DeviceId> order{initial};
  if (fallback_order_.empty()) {
    for (memsim::DeviceId d = 0; d < arenas_.size(); ++d) {
      if (d != initial) order.push_back(d);
    }
  } else {
    for (const memsim::TierId t : fallback_order_) {
      if (t != initial) order.push_back(t);
    }
  }
  fault::FaultInjector& inj = fault::global();
  for (const memsim::DeviceId dev : order) {
    for (int attempt = 0; attempt < kAllocAttempts; ++attempt) {
      if (inj.should_fail(fault::Site::AllocFailure)) continue;
      void* p = arenas_[dev]->alloc(bytes);
      if (p != nullptr) {
        if (dev != initial) {
          ++stats_.alloc_fallbacks;
          trace::global_counters().get("alloc.fallbacks").increment();
          TAHOE_WARN("allocation of " << bytes << " B fell back from tier "
                                      << initial << " to tier " << dev);
        }
        chosen = dev;
        return p;
      }
    }
  }
  return nullptr;
}

bool ObjectRegistry::migrate_chunk(ObjectId id, std::size_t chunk,
                                   memsim::DeviceId dst) {
  const MigrateResult res = try_migrate_chunk(id, chunk, dst);
  return res == MigrateResult::kMoved || res == MigrateResult::kAlreadyThere;
}

MigrateResult ObjectRegistry::try_migrate_chunk(ObjectId id, std::size_t chunk,
                                                memsim::DeviceId dst) {
  TAHOE_REQUIRE(dst < arenas_.size(), "destination device out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  TAHOE_REQUIRE(id < objects_.size() && objects_[id] != nullptr,
                "unknown object id");
  DataObject& obj = *objects_[id];
  TAHOE_REQUIRE(chunk < obj.chunks.size(), "chunk index out of range");
  Chunk& c = obj.chunks[chunk];
  if (c.device == dst) return MigrateResult::kAlreadyThere;

  void* fresh = arenas_[dst]->alloc(c.bytes);
  if (fresh == nullptr) {
    ++stats_.failed_no_space;
    trace::global_counters().get("migrate.failed_no_space").increment();
    if (id >= warned_no_space_.size()) warned_no_space_.resize(id + 1, false);
    if (!warned_no_space_[id]) {
      warned_no_space_[id] = true;
      TAHOE_WARN("migration of '" << obj.name << "' (object " << id
                                  << ") to tier " << dst
                                  << " refused: no space (warning once; see "
                                     "failed_no_space in the run report)");
    }
    return MigrateResult::kNoSpace;
  }
  // Chaos hook: abort the copy after the destination allocation succeeded —
  // the hardest point to unwind. The fresh block is released and the chunk
  // stays fully valid on its source tier.
  if (fault::global().should_fail(fault::Site::MigrationAbort)) {
    arenas_[dst]->free(fresh);
    ++stats_.copy_aborts;
    trace::global_counters().get("migrate.copy_aborts").increment();
    return MigrateResult::kAborted;
  }
  std::byte* old = c.ptr.load(std::memory_order_acquire);
  if (backing_ == Backing::Real) std::memcpy(fresh, old, c.bytes);
  const memsim::DeviceId src = c.device;
  c.device = dst;
  c.ptr.store(static_cast<std::byte*>(fresh), std::memory_order_release);
  arenas_[src]->free(old);

  for (void** slot : obj.aliases) *slot = fresh;

  ++stats_.migrations;
  stats_.bytes_moved += c.bytes;
  if (dst == memsim::kDram) ++stats_.to_dram;
  if (dst == memsim::kNvm) ++stats_.to_nvm;
  if (stats_.to_tier.size() < arenas_.size()) {
    stats_.to_tier.resize(arenas_.size(), 0);
  }
  ++stats_.to_tier[dst];
  if (obj.owner != kNoOwner) {
    if (stats_.bytes_moved_by_owner.size() <= obj.owner) {
      stats_.bytes_moved_by_owner.resize(obj.owner + 1, 0);
    }
    stats_.bytes_moved_by_owner[obj.owner] += c.bytes;
  }
  return MigrateResult::kMoved;
}

bool ObjectRegistry::migrate(ObjectId id, memsim::DeviceId dst) {
  std::size_t n = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    TAHOE_REQUIRE(id < objects_.size() && objects_[id] != nullptr,
                  "unknown object id");
    n = objects_[id]->chunks.size();
  }
  for (std::size_t c = 0; c < n; ++c) {
    if (!migrate_chunk(id, c, dst)) return false;
  }
  return true;
}

Arena& ObjectRegistry::arena(memsim::DeviceId dev) {
  TAHOE_REQUIRE(dev < arenas_.size(), "tier out of range");
  return *arenas_[dev];
}

const Arena& ObjectRegistry::arena(memsim::DeviceId dev) const {
  TAHOE_REQUIRE(dev < arenas_.size(), "tier out of range");
  return *arenas_[dev];
}

std::uint64_t ObjectRegistry::resident_bytes(memsim::DeviceId dev) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& o : objects_) {
    if (o) total += o->bytes_on(dev);
  }
  return total;
}

void ObjectRegistry::set_owner(ObjectId id, OwnerId owner) {
  const std::lock_guard<std::mutex> lock(mutex_);
  TAHOE_REQUIRE(id < objects_.size() && objects_[id] != nullptr,
                "set_owner: unknown object");
  objects_[id]->owner = owner;
}

std::uint64_t ObjectRegistry::resident_bytes_owned(
    OwnerId owner, memsim::DeviceId dev) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& o : objects_) {
    if (o && o->owner == owner) total += o->bytes_on(dev);
  }
  return total;
}

std::uint64_t ObjectRegistry::total_bytes_owned(OwnerId owner) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& o : objects_) {
    if (o && o->owner == owner) total += o->bytes;
  }
  return total;
}

}  // namespace tahoe::hms
