#include "hms/chunking.hpp"

#include <algorithm>
#include <cmath>

namespace tahoe::hms {

std::size_t ChunkingPolicy::chunks_for(std::uint64_t bytes,
                                       bool partitionable) const {
  if (!partitionable || dram_capacity == 0 || bytes == 0) return 1;
  const double budget =
      static_cast<double>(dram_capacity) * max_chunk_dram_fraction;
  if (budget <= 0.0) return 1;
  if (static_cast<double>(bytes) <= budget) return 1;
  const auto needed = static_cast<std::size_t>(
      std::ceil(static_cast<double>(bytes) / budget));
  return std::min(needed, max_chunks);
}

}  // namespace tahoe::hms
