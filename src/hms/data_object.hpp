// Data objects: the unit of placement, profiling and migration.
//
// A DataObject is what the application allocates through the Tahoe
// allocation API (the analogue of `unimem_malloc` in the paper line). It is
// divided into one or more chunks; unchunked objects have exactly one. Each
// chunk carries its own placement and backing pointer, enabling the
// "handling large data objects" optimization (chunk-granular migration of
// regular 1-D arrays).
//
// Layout note: DataObject is a *segment-resident* structure (it lives in
// the registry's hms::Segment, see segment.hpp). It therefore holds no
// heap-owning members — the name is an inline fixed-capacity array, the
// chunk array and alias table are OffsetSpans into the same segment, and
// payload buffers (which live on the process heap, outside the segment)
// are referenced by integer address, never dereferenced by relocation
// walks.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string_view>

#include "common/offset_ptr.hpp"
#include "memsim/access.hpp"

namespace tahoe::hms {

/// Generation-tagged object handle: low 24 bits are the registry slot
/// index, high 8 bits the slot's generation at creation time. Slots are
/// reused after destroy(); the generation tag makes stale ids detectable.
/// While no object is ever destroyed (the common case for whole-run
/// workloads), ids are numerically equal to creation order, exactly as the
/// pre-segment registry assigned them.
using ObjectId = std::uint32_t;
inline constexpr ObjectId kInvalidObject = 0xffffffffu;

inline constexpr std::uint32_t kObjectSlotBits = 24;
inline constexpr std::uint32_t kObjectSlotMask = 0x00ffffffu;

constexpr ObjectId make_object_id(std::uint32_t generation,
                                  std::uint32_t slot) noexcept {
  return ((generation & 0xffu) << kObjectSlotBits) | (slot & kObjectSlotMask);
}
constexpr std::uint32_t object_slot(ObjectId id) noexcept {
  return id & kObjectSlotMask;
}
constexpr std::uint32_t object_generation(ObjectId id) noexcept {
  return id >> kObjectSlotBits;
}

/// Owner (tenant) tag for multi-tenant accounting; kNoOwner for the
/// single-application case.
using OwnerId = std::uint32_t;
inline constexpr OwnerId kNoOwner = 0xffffffffu;

struct Chunk {
  std::uint64_t bytes = 0;
  memsim::DeviceId device = memsim::kNvm;
  std::uint32_t pad_ = 0;
  /// Current backing storage, as an integer address: the payload lives on
  /// the process heap (outside the segment), so this is deliberately not a
  /// pointer — relocation walks read chunk metadata without ever
  /// dereferencing it. Atomic: kernels read it at task start while the
  /// helper thread may be redirecting other chunks.
  std::atomic<std::uint64_t> addr{0};

  std::byte* data() const noexcept {
    return reinterpret_cast<std::byte*>(
        static_cast<std::uintptr_t>(addr.load(std::memory_order_acquire)));
  }
  void set_data(std::byte* p) noexcept {
    addr.store(static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(p)),
               std::memory_order_release);
  }

  Chunk() = default;
  Chunk(const Chunk& o)
      : bytes(o.bytes), device(o.device), addr(o.addr.load()) {}
  Chunk& operator=(const Chunk& o) {
    bytes = o.bytes;
    device = o.device;
    addr.store(o.addr.load());
    return *this;
  }
};

/// One application alias slot (a `void**` the app registered), stored as an
/// integer address for the same reason as Chunk::addr.
struct AliasSlot {
  std::uint64_t slot_addr = 0;
};

struct DataObject {
  /// Inline name capacity including the NUL terminator; longer names are
  /// truncated (with a warning) at creation.
  static constexpr std::size_t kNameCapacity = 64;

  ObjectId id = kInvalidObject;
  /// Owning tenant (serving runs); kNoOwner outside multi-tenant mode.
  OwnerId owner = kNoOwner;
  std::uint64_t bytes = 0;
  /// Static (compiler-analysis style) estimate of total references, used
  /// by the initial-placement optimization. 0 = unknown.
  double static_ref_estimate = 0.0;

  std::string_view name() const noexcept { return {name_}; }
  void set_name(std::string_view name) noexcept;

  std::span<Chunk> chunks() noexcept { return {chunks_.data(), chunks_.size()}; }
  std::span<const Chunk> chunks() const noexcept {
    return {chunks_.data(), chunks_.size()};
  }
  /// Bounds-checked chunk access (the std::vector::at() replacement).
  Chunk& chunk(std::size_t i);
  const Chunk& chunk(std::size_t i) const;

  std::size_t num_chunks() const noexcept { return chunks_.size(); }
  bool chunked() const noexcept { return chunks_.size() > 1; }

  /// Device of an unchunked object (requires num_chunks() == 1).
  memsim::DeviceId device() const;

  /// Bytes of the object currently resident on `dev`.
  std::uint64_t bytes_on(memsim::DeviceId dev) const noexcept;

  std::span<const AliasSlot> aliases() const noexcept {
    return {aliases_.get(), alias_count_};
  }

  // Segment-resident: copying would silently alias the chunk/alias arrays.
  DataObject() = default;
  DataObject(const DataObject&) = delete;
  DataObject& operator=(const DataObject&) = delete;

 private:
  friend class ObjectRegistry;
  char name_[kNameCapacity] = {};
  OffsetSpan<Chunk> chunks_;
  OffsetPtr<AliasSlot> aliases_;
  std::uint32_t alias_count_ = 0;
  std::uint32_t alias_capacity_ = 0;
};

}  // namespace tahoe::hms
