// Data objects: the unit of placement, profiling and migration.
//
// A DataObject is what the application allocates through the Tahoe
// allocation API (the analogue of `unimem_malloc` in the paper line). It is
// divided into one or more chunks; unchunked objects have exactly one. Each
// chunk carries its own placement and backing pointer, enabling the
// "handling large data objects" optimization (chunk-granular migration of
// regular 1-D arrays).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "memsim/access.hpp"

namespace tahoe::hms {

using ObjectId = std::uint32_t;
inline constexpr ObjectId kInvalidObject = 0xffffffffu;

/// Owner (tenant) tag for multi-tenant accounting; kNoOwner for the
/// single-application case.
using OwnerId = std::uint32_t;
inline constexpr OwnerId kNoOwner = 0xffffffffu;

struct Chunk {
  std::uint64_t bytes = 0;
  memsim::DeviceId device = memsim::kNvm;
  /// Current backing storage. Atomic: kernels read it at task start while
  /// the helper thread may be redirecting other chunks.
  std::atomic<std::byte*> ptr{nullptr};

  Chunk() = default;
  Chunk(const Chunk& o)
      : bytes(o.bytes), device(o.device), ptr(o.ptr.load()) {}
  Chunk& operator=(const Chunk& o) {
    bytes = o.bytes;
    device = o.device;
    ptr.store(o.ptr.load());
    return *this;
  }
};

struct DataObject {
  ObjectId id = kInvalidObject;
  std::string name;
  std::uint64_t bytes = 0;
  std::vector<Chunk> chunks;
  /// Alias slots registered by the application; rewritten after migration
  /// (only meaningful for unchunked objects, as in the paper line).
  std::vector<void**> aliases;
  /// Static (compiler-analysis style) estimate of total references, used
  /// by the initial-placement optimization. 0 = unknown.
  double static_ref_estimate = 0.0;
  /// Owning tenant (serving runs); kNoOwner outside multi-tenant mode.
  OwnerId owner = kNoOwner;

  std::size_t num_chunks() const noexcept { return chunks.size(); }
  bool chunked() const noexcept { return chunks.size() > 1; }

  /// Device of an unchunked object (requires num_chunks() == 1).
  memsim::DeviceId device() const;

  /// Bytes of the object currently resident on `dev`.
  std::uint64_t bytes_on(memsim::DeviceId dev) const noexcept;
};

}  // namespace tahoe::hms
