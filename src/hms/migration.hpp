// Asynchronous migration engine: the "helper thread" of the paper line.
//
// The main thread enqueues migration requests into a FIFO queue; a helper
// thread dequeues and performs the copies (real memcpy + pointer
// redirection via the ObjectRegistry) in parallel with application
// execution. The queue doubles as the synchronization mechanism: at a phase
// boundary the runtime calls wait_tag() to ensure the moves needed by the
// upcoming tasks have completed.
//
// The engine also supports inline mode (no thread), which the
// deterministic simulation executor uses: there, copy *timing* is modeled
// as a flow in the fluid simulator while the data movement itself is done
// synchronously at the modeled completion point.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>
#include <vector>

#include "hms/registry.hpp"

namespace tahoe::hms {

struct MigrationRequest {
  ObjectId object = kInvalidObject;
  std::size_t chunk = 0;
  memsim::DeviceId dst = memsim::kDram;
  /// Monotonic tag; wait_tag(t) blocks until all requests with tag <= t
  /// are done. The runtime tags requests with the phase that needs them.
  std::uint64_t tag = 0;
  /// Stamped by enqueue() in helper mode when histograms are enabled; the
  /// dequeue side records the queue-wait latency from it. 0 = unstamped.
  double enqueue_seconds = 0.0;
};

class MigrationEngine {
 public:
  enum class Mode { HelperThread, Inline };

  /// Degradation knobs. Defaults match the pre-fault-injection engine
  /// except that transient copy aborts are now retried.
  struct Options {
    Mode mode = Mode::HelperThread;
    /// Retries after a transient (aborted) copy before giving up on the
    /// request and pinning its object to NVM.
    int max_retries = 3;
    /// Initial backoff between retries; doubles per attempt. Only slept in
    /// HelperThread mode so inline (simulation) runs stay instantaneous.
    double retry_backoff_seconds = 50e-6;
  };

  MigrationEngine(ObjectRegistry& registry, Mode mode);
  MigrationEngine(ObjectRegistry& registry, const Options& options);
  ~MigrationEngine();

  MigrationEngine(const MigrationEngine&) = delete;
  MigrationEngine& operator=(const MigrationEngine&) = delete;

  /// Enqueue a request (helper mode) or execute it immediately (inline
  /// mode). Never blocks in helper mode. DRAM-bound requests for objects
  /// that earlier degraded to pinned-NVM are dropped (counted as
  /// cancelled).
  void enqueue(const MigrationRequest& req);

  /// Block until every request with tag <= `tag` has been processed.
  void wait_tag(std::uint64_t tag);

  /// Like wait_tag() but gives up after `timeout_seconds`. Returns true if
  /// the tag completed, false on timeout (e.g. a stalled copy); the caller
  /// can then cancel_tag() and proceed degraded.
  bool wait_tag_for(std::uint64_t tag, double timeout_seconds);

  /// Remove every *queued* request with tag <= `tag` that has not started
  /// executing. The in-flight request (if any) is never interrupted — its
  /// copy completes safely. Returns the number of requests cancelled.
  std::size_t cancel_tag(std::uint64_t tag);

  /// Block until the queue is fully drained.
  void drain();

  /// Requests whose destination had no space (the planner should have
  /// prevented these; counted for diagnostics).
  std::uint64_t rejected() const;

  /// Retry attempts after transient copy aborts.
  std::uint64_t retried() const;
  /// Requests abandoned after exhausting retries.
  std::uint64_t aborted() const;
  /// Requests cancelled before execution (cancel_tag or pinned-object drop).
  std::uint64_t cancelled() const;

  /// Objects pinned to NVM after repeated copy failures, in pin order.
  std::vector<ObjectId> degraded_objects() const;
  bool is_pinned(ObjectId id) const;

  std::size_t pending() const;
  Mode mode() const noexcept { return options_.mode; }
  const Options& options() const noexcept { return options_; }

 private:
  void worker_loop();
  void execute(const MigrationRequest& req);

  ObjectRegistry& registry_;
  Options options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_enqueue_;
  std::condition_variable cv_done_;
  std::deque<MigrationRequest> queue_;
  /// Request currently executing on the helper thread; wait_tag/drain/
  /// pending treat it as outstanding even though it left the queue.
  std::optional<MigrationRequest> active_;
  std::uint64_t completed_tag_ = 0;  // all tags <= this are done
  std::uint64_t rejected_ = 0;
  std::uint64_t retried_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t cancelled_ = 0;
  std::unordered_set<ObjectId> nvm_pinned_;
  std::vector<ObjectId> pin_order_;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace tahoe::hms
