// Asynchronous migration engine: the "helper thread" of the paper line.
//
// The main thread enqueues migration requests into a FIFO queue; a helper
// thread dequeues and performs the copies (real memcpy + pointer
// redirection via the ObjectRegistry) in parallel with application
// execution. The queue doubles as the synchronization mechanism: at a phase
// boundary the runtime calls wait_tag() to ensure the moves needed by the
// upcoming tasks have completed.
//
// The engine also supports inline mode (no thread), which the
// deterministic simulation executor uses: there, copy *timing* is modeled
// as a flow in the fluid simulator while the data movement itself is done
// synchronously at the modeled completion point.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>

#include "hms/registry.hpp"

namespace tahoe::hms {

struct MigrationRequest {
  ObjectId object = kInvalidObject;
  std::size_t chunk = 0;
  memsim::DeviceId dst = memsim::kDram;
  /// Monotonic tag; wait_tag(t) blocks until all requests with tag <= t
  /// are done. The runtime tags requests with the phase that needs them.
  std::uint64_t tag = 0;
};

class MigrationEngine {
 public:
  enum class Mode { HelperThread, Inline };

  MigrationEngine(ObjectRegistry& registry, Mode mode);
  ~MigrationEngine();

  MigrationEngine(const MigrationEngine&) = delete;
  MigrationEngine& operator=(const MigrationEngine&) = delete;

  /// Enqueue a request (helper mode) or execute it immediately (inline
  /// mode). Never blocks in helper mode.
  void enqueue(const MigrationRequest& req);

  /// Block until every request with tag <= `tag` has been processed.
  void wait_tag(std::uint64_t tag);

  /// Block until the queue is fully drained.
  void drain();

  /// Requests whose destination had no space (the planner should have
  /// prevented these; counted for diagnostics).
  std::uint64_t rejected() const;

  std::size_t pending() const;
  Mode mode() const noexcept { return mode_; }

 private:
  void worker_loop();
  void execute(const MigrationRequest& req);

  ObjectRegistry& registry_;
  Mode mode_;

  mutable std::mutex mutex_;
  std::condition_variable cv_enqueue_;
  std::condition_variable cv_done_;
  std::deque<MigrationRequest> queue_;
  std::uint64_t completed_tag_ = 0;  // all tags <= this are done
  std::uint64_t rejected_ = 0;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace tahoe::hms
