#include "hms/migration.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "trace/counters.hpp"
#include "trace/trace.hpp"

namespace tahoe::hms {

MigrationEngine::MigrationEngine(ObjectRegistry& registry, Mode mode)
    : registry_(registry), mode_(mode) {
  if (mode_ == Mode::HelperThread) {
    worker_ = std::thread([this] { worker_loop(); });
  }
}

MigrationEngine::~MigrationEngine() {
  if (mode_ == Mode::HelperThread) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_enqueue_.notify_all();
    worker_.join();
  }
}

void MigrationEngine::enqueue(const MigrationRequest& req) {
  if (mode_ == Mode::Inline) {
    execute(req);
    const std::lock_guard<std::mutex> lock(mutex_);
    completed_tag_ = std::max(completed_tag_, req.tag);
    return;
  }
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    TAHOE_REQUIRE(!stop_, "enqueue after engine shutdown");
    queue_.push_back(req);
    depth = queue_.size();
  }
  cv_enqueue_.notify_one();
  trace::Tracer& tracer = trace::global();
  if (tracer.enabled()) {
    tracer.counter(trace::kMigrationTrack, "migrate_queue_depth",
                   trace::now_seconds(), depth);
  }
}

void MigrationEngine::execute(const MigrationRequest& req) {
  trace::Tracer& tracer = trace::global();
  const bool traced = tracer.enabled();
  const DataObject& obj = registry_.get(req.object);
  const std::uint64_t bytes = obj.chunks.at(req.chunk).bytes;
  const memsim::DeviceId src = obj.chunks.at(req.chunk).device;
  const double begin = traced ? trace::now_seconds() : 0.0;
  const bool ok = registry_.migrate_chunk(req.object, req.chunk, req.dst);
  if (traced && src != req.dst) {
    trace::TraceEvent ev;
    ev.kind = trace::EventKind::Complete;
    ev.track = trace::kMigrationTrack;
    ev.ts = begin;
    ev.dur = trace::now_seconds() - begin;
    ev.set_name(ok ? "migrate" : "migrate (rejected)");
    ev.add_arg("bytes", bytes);
    ev.add_arg("src_tier", src);
    ev.add_arg("dst_tier", req.dst);
    ev.add_arg("object", req.object);
    tracer.emit(ev);
  }
  if (ok && src != req.dst) {
    static trace::Counter& to_dram =
        trace::global_counters().get("migrate.bytes.to_dram");
    static trace::Counter& to_nvm =
        trace::global_counters().get("migrate.bytes.to_nvm");
    (req.dst == memsim::kDram ? to_dram : to_nvm).add(bytes);
  }
  if (!ok) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++rejected_;
    TAHOE_WARN("migration of object " << req.object << " chunk " << req.chunk
                                      << " rejected: no space on tier "
                                      << req.dst);
  }
}

void MigrationEngine::worker_loop() {
  for (;;) {
    MigrationRequest req;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_enqueue_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        TAHOE_ASSERT(stop_, "worker woke without work or stop");
        return;
      }
      req = queue_.front();
      // Keep the request at the front while processing so that wait_tag
      // observes it as incomplete; pop after execution.
    }
    execute(req);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      TAHOE_ASSERT(!queue_.empty(), "queue emptied behind the worker");
      queue_.pop_front();
      completed_tag_ = std::max(completed_tag_, req.tag);
    }
    cv_done_.notify_all();
  }
}

void MigrationEngine::wait_tag(std::uint64_t tag) {
  if (mode_ == Mode::Inline) return;
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this, tag] {
    for (const MigrationRequest& r : queue_) {
      if (r.tag <= tag) return false;
    }
    return true;
  });
}

void MigrationEngine::drain() {
  if (mode_ == Mode::Inline) return;
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return queue_.empty(); });
}

std::uint64_t MigrationEngine::rejected() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

std::size_t MigrationEngine::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace tahoe::hms
