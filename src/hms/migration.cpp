#include "hms/migration.hpp"

#include <algorithm>
#include <chrono>

#include "common/assert.hpp"
#include "common/fault.hpp"
#include "common/log.hpp"
#include "trace/counters.hpp"
#include "trace/trace.hpp"

namespace tahoe::hms {
namespace {

void sleep_seconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace

MigrationEngine::MigrationEngine(ObjectRegistry& registry, Mode mode)
    : MigrationEngine(registry, Options{.mode = mode}) {}

MigrationEngine::MigrationEngine(ObjectRegistry& registry,
                                 const Options& options)
    : registry_(registry), options_(options) {
  TAHOE_REQUIRE(options_.max_retries >= 0, "negative retry bound");
  TAHOE_REQUIRE(options_.retry_backoff_seconds >= 0.0, "negative backoff");
  if (options_.mode == Mode::HelperThread) {
    worker_ = std::thread([this] { worker_loop(); });
  }
}

MigrationEngine::~MigrationEngine() {
  if (options_.mode == Mode::HelperThread) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_enqueue_.notify_all();
    worker_.join();
  }
}

void MigrationEngine::enqueue(const MigrationRequest& req) {
  {
    // Degradation: once an object is pinned to NVM, later attempts to
    // promote it are known to fail — drop them instead of burning the
    // helper thread on doomed copies.
    const std::lock_guard<std::mutex> lock(mutex_);
    if (req.dst == memsim::kDram && nvm_pinned_.contains(req.object)) {
      ++cancelled_;
      trace::global_counters().get("migrate.cancelled").increment();
      completed_tag_ = std::max(completed_tag_, req.tag);
      return;
    }
  }
  if (options_.mode == Mode::Inline) {
    execute(req);
    const std::lock_guard<std::mutex> lock(mutex_);
    completed_tag_ = std::max(completed_tag_, req.tag);
    return;
  }
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    TAHOE_REQUIRE(!stop_, "enqueue after engine shutdown");
    queue_.push_back(req);
    if (trace::histograms_enabled()) {
      queue_.back().enqueue_seconds = trace::now_seconds();
    }
    depth = queue_.size();
  }
  cv_enqueue_.notify_one();
  trace::global_counters().gauge("migrate.queue_depth").set(depth);
  trace::Tracer& tracer = trace::global();
  if (tracer.enabled()) {
    tracer.counter(trace::kMigrationTrack, "migrate_queue_depth",
                   trace::now_seconds(), depth);
  }
}

void MigrationEngine::execute(const MigrationRequest& req) {
  trace::Tracer& tracer = trace::global();
  const bool traced = tracer.enabled();
  const DataObject& obj = registry_.get(req.object);
  const std::uint64_t bytes = obj.chunk(req.chunk).bytes;
  const memsim::DeviceId src = obj.chunk(req.chunk).device;
  const bool hist = trace::histograms_enabled();
  const double begin = (traced || hist) ? trace::now_seconds() : 0.0;

  // Chaos hook: a stalled copy. Only slept in helper mode — inline mode
  // backs the deterministic simulator, where time is modeled, not spent.
  if (options_.mode == Mode::HelperThread) {
    sleep_seconds(fault::global().stall_seconds());
  }

  MigrateResult res = registry_.try_migrate_chunk(req.object, req.chunk,
                                                  req.dst);
  // Transient aborts get bounded retries with doubling backoff; exhaustion
  // does not (retrying a full tier without eviction cannot succeed).
  double backoff = options_.retry_backoff_seconds;
  for (int attempt = 0;
       res == MigrateResult::kAborted && attempt < options_.max_retries;
       ++attempt) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++retried_;
    }
    trace::global_counters().get("migrate.retried").increment();
    if (options_.mode == Mode::HelperThread) sleep_seconds(backoff);
    backoff *= 2.0;
    res = registry_.try_migrate_chunk(req.object, req.chunk, req.dst);
  }

  const bool ok =
      res == MigrateResult::kMoved || res == MigrateResult::kAlreadyThere;
  if (traced && src != req.dst) {
    trace::TraceEvent ev;
    ev.kind = trace::EventKind::Complete;
    ev.track = trace::kMigrationTrack;
    ev.ts = begin;
    ev.dur = trace::now_seconds() - begin;
    ev.set_name(ok ? "migrate" : "migrate (rejected)");
    ev.add_arg("bytes", bytes);
    ev.add_arg("src_tier", src);
    ev.add_arg("dst_tier", req.dst);
    ev.add_arg("object", req.object);
    tracer.emit(ev);
  }
  if (ok && src != req.dst) {
    static trace::Counter& to_dram =
        trace::global_counters().get("migrate.bytes.to_dram");
    static trace::Counter& to_nvm =
        trace::global_counters().get("migrate.bytes.to_nvm");
    (req.dst == memsim::kDram ? to_dram : to_nvm).add(bytes);
    if (hist) {
      static trace::Histogram& copy_seconds =
          trace::global_counters().histogram("migrate.copy_seconds");
      copy_seconds.record_seconds(trace::now_seconds() - begin);
    }
  }
  if (res == MigrateResult::kNoSpace) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++rejected_;
    TAHOE_WARN("migration of object " << req.object << " chunk " << req.chunk
                                      << " rejected: no space on tier "
                                      << req.dst);
  } else if (res == MigrateResult::kAborted) {
    // Degrade: give up on this request and pin the object to NVM so the
    // planner stops scheduling promotions that keep failing.
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++aborted_;
      if (req.dst == memsim::kDram && nvm_pinned_.insert(req.object).second) {
        pin_order_.push_back(req.object);
      }
    }
    trace::global_counters().get("migrate.aborted").increment();
    TAHOE_WARN("migration of object " << req.object << " chunk " << req.chunk
                                      << " abandoned after "
                                      << options_.max_retries
                                      << " retries; object pinned to NVM");
  }
}

void MigrationEngine::worker_loop() {
  for (;;) {
    MigrationRequest req;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_enqueue_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        TAHOE_ASSERT(stop_, "worker woke without work or stop");
        return;
      }
      req = queue_.front();
      queue_.pop_front();
      // Mark in-flight so wait_tag/drain observe it as incomplete while
      // the copy runs outside the lock; cancel_tag never touches it.
      active_ = req;
      trace::global_counters().gauge("migrate.queue_depth").set(queue_.size());
    }
    if (req.enqueue_seconds > 0.0 && trace::histograms_enabled()) {
      static trace::Histogram& queue_wait =
          trace::global_counters().histogram("migrate.queue_wait_seconds");
      queue_wait.record_seconds(trace::now_seconds() - req.enqueue_seconds);
    }
    execute(req);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      active_.reset();
      completed_tag_ = std::max(completed_tag_, req.tag);
    }
    cv_done_.notify_all();
  }
}

void MigrationEngine::wait_tag(std::uint64_t tag) {
  if (options_.mode == Mode::Inline) return;
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this, tag] {
    if (active_ && active_->tag <= tag) return false;
    for (const MigrationRequest& r : queue_) {
      if (r.tag <= tag) return false;
    }
    return true;
  });
}

bool MigrationEngine::wait_tag_for(std::uint64_t tag, double timeout_seconds) {
  if (options_.mode == Mode::Inline) return true;
  std::unique_lock<std::mutex> lock(mutex_);
  return cv_done_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds), [this, tag] {
        if (active_ && active_->tag <= tag) return false;
        for (const MigrationRequest& r : queue_) {
          if (r.tag <= tag) return false;
        }
        return true;
      });
}

std::size_t MigrationEngine::cancel_tag(std::uint64_t tag) {
  std::size_t n = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto doomed = [tag](const MigrationRequest& r) {
      return r.tag <= tag;
    };
    n = static_cast<std::size_t>(
        std::count_if(queue_.begin(), queue_.end(), doomed));
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(), doomed),
                 queue_.end());
    cancelled_ += n;
  }
  if (n > 0) {
    trace::global_counters().get("migrate.cancelled").add(n);
    cv_done_.notify_all();
  }
  return n;
}

void MigrationEngine::drain() {
  if (options_.mode == Mode::Inline) return;
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [this] { return queue_.empty() && !active_; });
}

std::uint64_t MigrationEngine::rejected() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

std::uint64_t MigrationEngine::retried() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return retried_;
}

std::uint64_t MigrationEngine::aborted() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return aborted_;
}

std::uint64_t MigrationEngine::cancelled() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cancelled_;
}

std::vector<ObjectId> MigrationEngine::degraded_objects() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return pin_order_;
}

bool MigrationEngine::is_pinned(ObjectId id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return nvm_pinned_.contains(id);
}

std::size_t MigrationEngine::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + (active_ ? 1 : 0);
}

}  // namespace tahoe::hms
