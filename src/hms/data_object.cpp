#include "hms/data_object.hpp"

#include <cstring>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace tahoe::hms {

void DataObject::set_name(std::string_view name) noexcept {
  std::size_t n = name.size();
  if (n > kNameCapacity - 1) {
    TAHOE_WARN("object name '" << std::string(name.substr(0, 16))
                               << "...' exceeds " << (kNameCapacity - 1)
                               << " chars; truncating");
    n = kNameCapacity - 1;
  }
  std::memcpy(name_, name.data(), n);
  name_[n] = '\0';
}

Chunk& DataObject::chunk(std::size_t i) {
  TAHOE_REQUIRE(i < chunks_.size(), "chunk index out of range");
  return chunks_[i];
}

const Chunk& DataObject::chunk(std::size_t i) const {
  TAHOE_REQUIRE(i < chunks_.size(), "chunk index out of range");
  return chunks_[i];
}

memsim::DeviceId DataObject::device() const {
  TAHOE_REQUIRE(chunks_.size() == 1,
                "device() is only defined for unchunked objects");
  return chunks_[0].device;
}

std::uint64_t DataObject::bytes_on(memsim::DeviceId dev) const noexcept {
  std::uint64_t total = 0;
  for (const Chunk& c : chunks()) {
    if (c.device == dev) total += c.bytes;
  }
  return total;
}

}  // namespace tahoe::hms
