#include "hms/data_object.hpp"

#include "common/assert.hpp"

namespace tahoe::hms {

memsim::DeviceId DataObject::device() const {
  TAHOE_REQUIRE(chunks.size() == 1,
                "device() is only defined for unchunked objects");
  return chunks.front().device;
}

std::uint64_t DataObject::bytes_on(memsim::DeviceId dev) const noexcept {
  std::uint64_t total = 0;
  for (const Chunk& c : chunks) {
    if (c.device == dev) total += c.bytes;
  }
  return total;
}

}  // namespace tahoe::hms
