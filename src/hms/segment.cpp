#include "hms/segment.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/assert.hpp"
#include "common/fault.hpp"
#include "trace/counters.hpp"

namespace tahoe::hms {

namespace {

// Every block carries a 16-byte header immediately before its payload. The
// header lives in the segment (offsets, plain integers), so an attached
// copy sees the complete heap structure.
struct BlockHeader {
  static constexpr std::uint32_t kLive = 0xB10CA11Cu;
  static constexpr std::uint32_t kFree = 0xB10CF4EEu;
  /// Class index for blocks larger than the biggest pow2 class (exact
  /// size, parked on the first-fit large list when freed).
  static constexpr std::uint32_t kLargeClass = 0xFFFFFFFFu;

  std::uint64_t payload_bytes = 0;  ///< usable bytes after this header
  std::uint32_t cls = 0;            ///< size-class index or kLargeClass
  std::uint32_t state = 0;          ///< kLive / kFree
};
static_assert(sizeof(BlockHeader) == 16, "block header must stay 16 bytes");

constexpr std::uint64_t kMinPayload = 16;
constexpr std::uint64_t kMaxClassPayload =
    kMinPayload << (SegmentHeader::kNumClasses - 1);  // 64 KiB

std::uint64_t align16(std::uint64_t n) { return (n + 15) & ~std::uint64_t{15}; }

/// Smallest pow2 class holding `bytes`, or kLargeClass.
std::uint32_t class_for(std::uint64_t bytes) {
  if (bytes > kMaxClassPayload) return BlockHeader::kLargeClass;
  std::uint32_t c = 0;
  std::uint64_t size = kMinPayload;
  while (size < bytes) {
    size <<= 1;
    ++c;
  }
  return c;
}

std::uint64_t class_payload(std::uint32_t cls) { return kMinPayload << cls; }

std::uint64_t round_to_page(std::uint64_t bytes) {
  const auto page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  return (bytes + page - 1) / page * page;
}

}  // namespace

Segment::Segment(std::uint64_t bytes) {
  TAHOE_REQUIRE(bytes >= sizeof(SegmentHeader) + 64,
                "segment too small for its header");
  bytes_ = round_to_page(bytes);
  void* map = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  TAHOE_REQUIRE(map != MAP_FAILED, "mmap failed for segment");
  base_ = static_cast<std::byte*>(map);
  owning_ = true;
  mapped_ = true;
  init_header(bytes_);
}

Segment::Segment(const std::string& shm_name, std::uint64_t bytes) {
  TAHOE_REQUIRE(!shm_name.empty() && shm_name.front() == '/',
                "shm name must start with '/'");
  TAHOE_REQUIRE(bytes >= sizeof(SegmentHeader) + 64,
                "segment too small for its header");
  bytes_ = round_to_page(bytes);
  const int fd = ::shm_open(shm_name.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
  TAHOE_REQUIRE(fd >= 0, "shm_open failed: " + std::string(strerror(errno)));
  if (::ftruncate(fd, static_cast<off_t>(bytes_)) != 0) {
    ::close(fd);
    ::shm_unlink(shm_name.c_str());
    TAHOE_REQUIRE(false, "ftruncate failed for shm segment");
  }
  void* map =
      ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    ::shm_unlink(shm_name.c_str());
    TAHOE_REQUIRE(false, "mmap failed for shm segment");
  }
  base_ = static_cast<std::byte*>(map);
  owning_ = true;
  mapped_ = true;
  shm_name_ = shm_name;
  init_header(bytes_);
}

Segment Segment::attach(void* image, std::uint64_t bytes) {
  TAHOE_REQUIRE(image != nullptr, "attach requires a mapped image");
  TAHOE_REQUIRE(bytes >= sizeof(SegmentHeader),
                "attach image smaller than a segment header");
  auto* header = static_cast<SegmentHeader*>(image);
  TAHOE_REQUIRE(header->magic == SegmentHeader::kMagic,
                "attach: bad segment magic");
  TAHOE_REQUIRE(header->version == SegmentHeader::kVersion,
                "attach: unsupported segment version");
  TAHOE_REQUIRE(header->bytes == bytes,
                "attach: image size does not match header");
  Segment seg;
  seg.base_ = static_cast<std::byte*>(image);
  seg.bytes_ = bytes;
  seg.header_ = header;
  seg.owning_ = false;
  seg.mapped_ = false;
  return seg;
}

Segment::~Segment() {
  if (base_ != nullptr && mapped_) {
    ::munmap(base_, bytes_);
  }
  if (owning_ && !shm_name_.empty()) {
    ::shm_unlink(shm_name_.c_str());
  }
}

Segment::Segment(Segment&& o) noexcept
    : base_(o.base_),
      bytes_(o.bytes_),
      header_(o.header_),
      owning_(o.owning_),
      mapped_(o.mapped_),
      shm_name_(std::move(o.shm_name_)),
      mutex_(std::move(o.mutex_)) {
  o.base_ = nullptr;
  o.header_ = nullptr;
  o.owning_ = false;
  o.mapped_ = false;
  o.shm_name_.clear();
}

Segment& Segment::operator=(Segment&& o) noexcept {
  if (this != &o) {
    if (base_ != nullptr && mapped_) {
      ::munmap(base_, bytes_);
    }
    if (owning_ && !shm_name_.empty()) {
      ::shm_unlink(shm_name_.c_str());
    }
    base_ = o.base_;
    bytes_ = o.bytes_;
    header_ = o.header_;
    owning_ = o.owning_;
    mapped_ = o.mapped_;
    shm_name_ = std::move(o.shm_name_);
    mutex_ = std::move(o.mutex_);
    o.base_ = nullptr;
    o.header_ = nullptr;
    o.owning_ = false;
    o.mapped_ = false;
    o.shm_name_.clear();
  }
  return *this;
}

void Segment::init_header(std::uint64_t bytes) {
  std::memset(base_, 0, sizeof(SegmentHeader));
  header_ = new (base_) SegmentHeader{};
  header_->magic = SegmentHeader::kMagic;
  header_->version = SegmentHeader::kVersion;
  header_->bytes = bytes;
  header_->bump = align16(sizeof(SegmentHeader));
}

void* Segment::alloc(std::uint64_t bytes) {
  TAHOE_REQUIRE(bytes > 0, "segment alloc of zero bytes");
  if (fault::global().should_fail(fault::Site::SegmentAlloc)) {
    return nullptr;
  }
  const std::lock_guard<std::mutex> lock(*mutex_);
  return alloc_locked(bytes);
}

void* Segment::alloc_locked(std::uint64_t bytes) {
  const std::uint32_t cls = class_for(bytes);
  BlockHeader* block = nullptr;

  if (cls != BlockHeader::kLargeClass) {
    // Pow2 class: pop the freelist head if one is parked.
    std::uint64_t& head = header_->free_heads[cls];
    if (head != 0) {
      block = at_as<BlockHeader>(head);
      head = *reinterpret_cast<std::uint64_t*>(block + 1);
      header_->freelist_blocks -= 1;
      header_->freelist_bytes -= block->payload_bytes;
    }
  } else {
    // Large block: first fit over the single large list.
    std::uint64_t* link = &header_->large_head;
    const std::uint64_t want = align16(bytes);
    while (*link != 0) {
      auto* candidate = at_as<BlockHeader>(*link);
      auto* next = reinterpret_cast<std::uint64_t*>(candidate + 1);
      if (candidate->payload_bytes >= want) {
        *link = *next;
        block = candidate;
        header_->freelist_blocks -= 1;
        header_->freelist_bytes -= block->payload_bytes;
        break;
      }
      link = next;
    }
  }

  if (block == nullptr) {
    // Fresh allocation from the bump region.
    const std::uint64_t payload = cls == BlockHeader::kLargeClass
                                      ? align16(bytes)
                                      : class_payload(cls);
    const std::uint64_t need = sizeof(BlockHeader) + payload;
    if (header_->bump + need > header_->bytes) {
      return nullptr;  // exhausted
    }
    block = reinterpret_cast<BlockHeader*>(base_ + header_->bump);
    block->payload_bytes = payload;
    block->cls = cls;
    header_->bump += need;
  }

  block->state = BlockHeader::kLive;
  header_->live_allocs += 1;
  header_->live_bytes += block->payload_bytes;
  trace::global_counters().get("hms.segment.allocs").increment();
  return block + 1;
}

void* Segment::realloc(void* p, std::uint64_t bytes) {
  if (p == nullptr) return alloc(bytes);
  TAHOE_REQUIRE(bytes > 0, "segment realloc to zero bytes");
  TAHOE_REQUIRE(contains(p), "realloc of a pointer outside the segment");
  std::uint64_t old_payload = 0;
  {
    const std::lock_guard<std::mutex> lock(*mutex_);
    auto* block = reinterpret_cast<BlockHeader*>(p) - 1;
    TAHOE_REQUIRE(block->state == BlockHeader::kLive,
                  "realloc of a non-live block");
    if (bytes <= block->payload_bytes) {
      return p;  // shrink or same-class grow: block already fits
    }
    old_payload = block->payload_bytes;
  }
  void* fresh = alloc(bytes);
  if (fresh == nullptr) return nullptr;  // original untouched
  std::memcpy(fresh, p, old_payload);
  free(p);
  return fresh;
}

void Segment::free(void* p) {
  TAHOE_REQUIRE(p != nullptr, "segment free of nullptr");
  TAHOE_REQUIRE(contains(p), "free of a pointer outside the segment");
  const std::lock_guard<std::mutex> lock(*mutex_);
  free_locked(p);
}

void Segment::free_locked(void* p) {
  auto* block = reinterpret_cast<BlockHeader*>(p) - 1;
  TAHOE_REQUIRE(block->state == BlockHeader::kLive,
                "free of a block that is not live (double free?)");
  block->state = BlockHeader::kFree;
  const std::uint64_t block_off = offset_of(block);
  auto* next_cell = reinterpret_cast<std::uint64_t*>(block + 1);
  if (block->cls != BlockHeader::kLargeClass) {
    std::uint64_t& head = header_->free_heads[block->cls];
    *next_cell = head;
    head = block_off;
  } else {
    *next_cell = header_->large_head;
    header_->large_head = block_off;
  }
  header_->live_allocs -= 1;
  header_->live_bytes -= block->payload_bytes;
  header_->freelist_blocks += 1;
  header_->freelist_bytes += block->payload_bytes;
  trace::global_counters().get("hms.segment.frees").increment();
}

std::uint64_t Segment::offset_of(const void* p) const {
  TAHOE_REQUIRE(contains(p), "offset_of a pointer outside the segment");
  return static_cast<std::uint64_t>(static_cast<const std::byte*>(p) - base_);
}

void* Segment::at(std::uint64_t offset) const {
  TAHOE_REQUIRE(offset < bytes_, "segment offset out of range");
  return base_ + offset;
}

void Segment::set_root(std::uint64_t offset) {
  const std::lock_guard<std::mutex> lock(*mutex_);
  header_->root = offset;
}

std::uint64_t Segment::root() const {
  const std::lock_guard<std::mutex> lock(*mutex_);
  return header_->root;
}

std::uint64_t Segment::used() const {
  const std::lock_guard<std::mutex> lock(*mutex_);
  return header_->bump;
}

std::uint64_t Segment::live_allocations() const {
  const std::lock_guard<std::mutex> lock(*mutex_);
  return header_->live_allocs;
}

std::uint64_t Segment::live_bytes() const {
  const std::lock_guard<std::mutex> lock(*mutex_);
  return header_->live_bytes;
}

std::uint64_t Segment::freelist_blocks() const {
  const std::lock_guard<std::mutex> lock(*mutex_);
  return header_->freelist_blocks;
}

std::uint64_t Segment::freelist_bytes() const {
  const std::lock_guard<std::mutex> lock(*mutex_);
  return header_->freelist_bytes;
}

}  // namespace tahoe::hms
