#include "hms/arena.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/fault.hpp"
#include "common/units.hpp"

namespace tahoe::hms {
namespace {

std::uint64_t round_up(std::uint64_t v, std::uint64_t granule) {
  return (v + granule - 1) / granule * granule;
}

}  // namespace

Arena::Arena(std::string name, std::uint64_t capacity, Backing backing)
    : name_(std::move(name)),
      capacity_(round_up(capacity, kCacheLine)),
      backing_(backing) {
  TAHOE_REQUIRE(capacity > 0, "arena capacity must be positive");
  free_ranges_.emplace(0, capacity_);
}

void* Arena::alloc(std::uint64_t size) {
  TAHOE_REQUIRE(size > 0, "zero-byte allocation");
  // Chaos hook: an armed injector can make any allocation fail as if the
  // arena were exhausted; callers must already handle nullptr, so the
  // injected failure exercises exactly the production degradation paths.
  if (fault::global().should_fail(fault::Site::ArenaExhaustion)) {
    return nullptr;
  }
  const std::uint64_t need = round_up(size, kCacheLine);
  const std::lock_guard<std::mutex> lock(mutex_);
  // First fit over free ranges ordered by offset.
  for (auto it = free_ranges_.begin(); it != free_ranges_.end(); ++it) {
    if (it->second < need) continue;
    Block block;
    block.offset = it->first;
    block.size = need;
    // Virtual backing allocates a 1-byte identity buffer: the pointer is
    // unique (map key, migration identity) but carries no payload.
    block.mem = std::make_unique<std::byte[]>(
        backing_ == Backing::Real ? need : 1);
    // Shrink or remove the free range.
    const std::uint64_t rest = it->second - need;
    const std::uint64_t rest_offset = it->first + need;
    free_ranges_.erase(it);
    if (rest > 0) free_ranges_.emplace(rest_offset, rest);
    used_ += need;
    void* p = block.mem.get();
    blocks_.emplace(p, std::move(block));
    return p;
  }
  return nullptr;
}

void Arena::free(void* p) {
  TAHOE_REQUIRE(p != nullptr, "freeing nullptr");
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = blocks_.find(p);
  TAHOE_REQUIRE(it != blocks_.end(), "pointer does not belong to arena " + name_);
  const std::uint64_t offset = it->second.offset;
  const std::uint64_t size = it->second.size;
  blocks_.erase(it);
  used_ -= size;

  // Insert the range and coalesce with neighbours.
  auto [ins, ok] = free_ranges_.emplace(offset, size);
  TAHOE_ASSERT(ok, "double free of arena range");
  // Coalesce with successor.
  if (auto next = std::next(ins); next != free_ranges_.end() &&
                                  ins->first + ins->second == next->first) {
    ins->second += next->second;
    free_ranges_.erase(next);
  }
  // Coalesce with predecessor.
  if (ins != free_ranges_.begin()) {
    auto prev = std::prev(ins);
    if (prev->first + prev->second == ins->first) {
      prev->second += ins->second;
      free_ranges_.erase(ins);
    }
  }
}

bool Arena::owns(const void* p) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return blocks_.contains(p);
}

std::uint64_t Arena::used() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return used_;
}

std::uint64_t Arena::free_bytes() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return capacity_ - used_;
}

std::uint64_t Arena::largest_free_range() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t best = 0;
  for (const auto& [offset, size] : free_ranges_) {
    (void)offset;
    best = std::max(best, size);
  }
  return best;
}

std::size_t Arena::live_allocations() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return blocks_.size();
}

}  // namespace tahoe::hms
