#include "hms/arena.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/fault.hpp"
#include "common/units.hpp"
#include "trace/counters.hpp"

namespace tahoe::hms {
namespace {

std::uint64_t round_up(std::uint64_t v, std::uint64_t granule) {
  return (v + granule - 1) / granule * granule;
}

/// Metadata budget for a standalone arena's private segment: one RangeNode
/// (48 B + allocator header) per live allocation, so 32 MiB of lazily
/// paged reservation covers hundreds of thousands of blocks.
constexpr std::uint64_t kStandaloneMetaBytes = 32 * kMiB;

}  // namespace

Arena::Arena(std::string name, std::uint64_t capacity, Backing backing)
    : name_(std::move(name)),
      capacity_(round_up(capacity, kCacheLine)),
      backing_(backing),
      owned_segment_(std::make_unique<Segment>(kStandaloneMetaBytes)),
      segment_(owned_segment_.get()) {
  TAHOE_REQUIRE(capacity > 0, "arena capacity must be positive");
  init(capacity_);
}

Arena::Arena(std::string name, std::uint64_t capacity, Backing backing,
             Segment& segment)
    : name_(std::move(name)),
      capacity_(round_up(capacity, kCacheLine)),
      backing_(backing),
      segment_(&segment) {
  TAHOE_REQUIRE(capacity > 0, "arena capacity must be positive");
  init(capacity_);
}

void Arena::init(std::uint64_t capacity) {
  void* root_mem = segment_->alloc(sizeof(ArenaRoot));
  TAHOE_REQUIRE(root_mem != nullptr, "segment exhausted creating arena root");
  auto* r = new (root_mem) ArenaRoot{};
  const std::size_t n =
      std::min(name_.size(), ArenaRoot::kNameCapacity - 1);
  name_.copy(r->name, n);
  r->capacity = capacity;
  r->backing = static_cast<std::uint32_t>(backing_);
  root_off_ = segment_->offset_of(root_mem);

  // One free range spanning the whole arena.
  void* node_mem = segment_->alloc(sizeof(RangeNode));
  TAHOE_REQUIRE(node_mem != nullptr, "segment exhausted creating arena range");
  auto* node = new (node_mem) RangeNode{};
  node->offset = 0;
  node->size = capacity;
  r->range_head = segment_->offset_of(node);
  r->node_count = 1;
  r->free_count = 1;

  meta_bytes_gauge_ = &trace::global_counters().gauge(
      "hms.segment.arena." + name_ + ".meta_bytes");
  free_ranges_gauge_ = &trace::global_counters().gauge(
      "hms.segment.arena." + name_ + ".free_ranges");
  publish_gauges_locked();
}

Arena::~Arena() {
  // Payload buffers are process-heap allocations the segment does not own.
  for (const auto& [p, node_off] : node_index_) {
    (void)node_off;
    delete[] static_cast<const std::byte*>(p);
  }
}

void Arena::publish_gauges_locked() {
  const ArenaRoot* r = root();
  meta_bytes_gauge_->set(r->node_count * sizeof(RangeNode));
  free_ranges_gauge_->set(r->free_count);
}

void* Arena::alloc(std::uint64_t size) {
  TAHOE_REQUIRE(size > 0, "zero-byte allocation");
  // Chaos hook: an armed injector can make any allocation fail as if the
  // arena were exhausted; callers must already handle nullptr, so the
  // injected failure exercises exactly the production degradation paths.
  if (fault::global().should_fail(fault::Site::ArenaExhaustion)) {
    return nullptr;
  }
  const std::uint64_t need = round_up(size, kCacheLine);
  const std::lock_guard<std::mutex> lock(mutex_);
  ArenaRoot* r = root();
  // First fit over the offset-ordered range list.
  for (std::uint64_t off = r->range_head; off != 0;) {
    RangeNode* node = node_at(off);
    if (node->live != 0 || node->size < need) {
      off = node->next;
      continue;
    }
    if (node->size > need) {
      // Split: the node becomes the live block, the remainder a new free
      // range right after it. The split is the only path that needs fresh
      // metadata; segment exhaustion here reads as arena exhaustion.
      void* rest_mem = segment_->alloc(sizeof(RangeNode));
      if (rest_mem == nullptr) return nullptr;
      auto* rest = new (rest_mem) RangeNode{};
      const std::uint64_t rest_off = segment_->offset_of(rest_mem);
      rest->offset = node->offset + need;
      rest->size = node->size - need;
      rest->prev = off;
      rest->next = node->next;
      if (RangeNode* after = node_at(node->next)) after->prev = rest_off;
      node->next = rest_off;
      node->size = need;
      r->node_count += 1;
      r->free_count += 1;
    }
    // Virtual backing allocates a 1-byte identity buffer: the pointer is
    // unique (index key, migration identity) but carries no payload.
    auto* mem = new std::byte[backing_ == Backing::Real ? need : 1];
    node->live = 1;
    node->payload_addr =
        static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(mem));
    r->used += need;
    r->live_count += 1;
    r->free_count -= 1;
    node_index_.emplace(mem, off);
    publish_gauges_locked();
    return mem;
  }
  return nullptr;
}

void Arena::free(void* p) {
  TAHOE_REQUIRE(p != nullptr, "freeing nullptr");
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = node_index_.find(p);
  TAHOE_REQUIRE(it != node_index_.end(),
                "pointer does not belong to arena " + name_);
  const std::uint64_t off = it->second;
  node_index_.erase(it);
  delete[] static_cast<std::byte*>(p);

  ArenaRoot* r = root();
  RangeNode* node = node_at(off);
  TAHOE_ASSERT(node->live == 1, "arena index points at a free range");
  node->live = 0;
  node->payload_addr = 0;
  r->used -= node->size;
  r->live_count -= 1;
  r->free_count += 1;

  // Coalesce with the successor, then the predecessor; list order is
  // offset order, so neighbours in the list are neighbours in the arena's
  // address space. Merged nodes return to the segment heap (which never
  // fails), so free() as a whole never allocates.
  if (RangeNode* next = node_at(node->next); next != nullptr && next->live == 0) {
    node->size += next->size;
    node->next = next->next;
    if (RangeNode* after = node_at(next->next)) after->prev = off;
    segment_->free(next);
    r->node_count -= 1;
    r->free_count -= 1;
  }
  if (RangeNode* prev = node_at(node->prev); prev != nullptr && prev->live == 0) {
    prev->size += node->size;
    prev->next = node->next;
    if (RangeNode* after = node_at(node->next)) {
      after->prev = node->prev;
    }
    segment_->free(node);
    r->node_count -= 1;
    r->free_count -= 1;
  }
  publish_gauges_locked();
}

bool Arena::owns(const void* p) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return node_index_.contains(p);
}

std::uint64_t Arena::used() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return root()->used;
}

std::uint64_t Arena::free_bytes() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return capacity_ - root()->used;
}

std::uint64_t Arena::largest_free_range() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t best = 0;
  for (std::uint64_t off = root()->range_head; off != 0;) {
    const RangeNode* node = node_at(off);
    if (node->live == 0) best = std::max(best, node->size);
    off = node->next;
  }
  return best;
}

std::size_t Arena::live_allocations() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return root()->live_count;
}

}  // namespace tahoe::hms
