#include "common/fault.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/flags.hpp"

namespace tahoe::fault {

const char* site_name(Site site) noexcept {
  switch (site) {
    case Site::ArenaExhaustion: return "arena_exhaustion";
    case Site::AllocFailure: return "alloc_failure";
    case Site::MigrationAbort: return "migration_abort";
    case Site::DramReservation: return "dram_reservation";
    case Site::CopyStall: return "copy_stall";
    case Site::SamplerNoise: return "sampler_noise";
    case Site::SegmentAlloc: return "segment_alloc";
    case Site::kNumSites: break;
  }
  return "unknown";
}

double FaultConfig::rate(Site site) const noexcept {
  switch (site) {
    case Site::ArenaExhaustion: return arena_exhaustion;
    case Site::AllocFailure: return alloc_failure;
    case Site::MigrationAbort: return migration_abort;
    case Site::DramReservation: return dram_reservation;
    case Site::CopyStall: return copy_stall;
    case Site::SamplerNoise: return sampler_noise;
    case Site::SegmentAlloc: return segment_alloc;
    case Site::kNumSites: break;
  }
  return 0.0;
}

bool FaultConfig::any() const noexcept {
  for (std::size_t s = 0; s < kNumSites; ++s) {
    if (rate(static_cast<Site>(s)) > 0.0) return true;
  }
  return false;
}

void FaultInjector::configure(const FaultConfig& config) {
  for (std::size_t s = 0; s < kNumSites; ++s) {
    TAHOE_REQUIRE(config.rate(static_cast<Site>(s)) >= 0.0 &&
                      config.rate(static_cast<Site>(s)) <= 1.0,
                  "fault rate out of [0, 1]");
  }
  TAHOE_REQUIRE(config.copy_stall_seconds >= 0.0,
                "stall duration must be non-negative");
  const std::lock_guard<std::mutex> lock(config_mutex_);
  config_ = config;
  // Expand the one seed into independent per-site streams so scenarios
  // compose without perturbing each other's schedules.
  SplitMix64 sm(config.seed);
  for (Stream& stream : streams_) {
    const std::lock_guard<std::mutex> slock(stream.mutex);
    stream.rng = Rng(sm.next());
    stream.injected.store(0, std::memory_order_relaxed);
  }
  armed_.store(config.any(), std::memory_order_release);
}

void FaultInjector::disarm() {
  const std::lock_guard<std::mutex> lock(config_mutex_);
  config_ = FaultConfig{};
  for (Stream& stream : streams_) {
    stream.injected.store(0, std::memory_order_relaxed);
  }
  armed_.store(false, std::memory_order_release);
}

FaultConfig FaultInjector::config() const {
  const std::lock_guard<std::mutex> lock(config_mutex_);
  return config_;
}

bool FaultInjector::should_fail(Site site) {
  if (!armed()) return false;
  double rate = 0.0;
  {
    const std::lock_guard<std::mutex> lock(config_mutex_);
    rate = config_.rate(site);
  }
  if (rate <= 0.0) return false;
  Stream& stream = streams_[static_cast<std::size_t>(site)];
  const std::lock_guard<std::mutex> lock(stream.mutex);
  if (stream.rng.next_double() >= rate) return false;
  stream.injected.fetch_add(1, std::memory_order_relaxed);
  return true;
}

double FaultInjector::stall_seconds() {
  if (!should_fail(Site::CopyStall)) return 0.0;
  const std::lock_guard<std::mutex> lock(config_mutex_);
  return config_.copy_stall_seconds;
}

std::uint64_t FaultInjector::spurious_samples(std::uint64_t total_samples) {
  if (!armed() || total_samples == 0) return 0;
  double rate = 0.0;
  {
    const std::lock_guard<std::mutex> lock(config_mutex_);
    rate = config_.sampler_noise;
  }
  if (rate <= 0.0) return 0;
  Stream& stream = streams_[static_cast<std::size_t>(Site::SamplerNoise)];
  const std::lock_guard<std::mutex> lock(stream.mutex);
  const double magnitude = stream.rng.next_double() * rate *
                           static_cast<double>(total_samples);
  const auto spurious = static_cast<std::uint64_t>(std::llround(magnitude));
  if (spurious > 0) {
    stream.injected.fetch_add(1, std::memory_order_relaxed);
  }
  return spurious;
}

std::uint64_t FaultInjector::injected(Site site) const {
  return streams_[static_cast<std::size_t>(site)].injected.load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::total_injected() const {
  std::uint64_t total = 0;
  for (const Stream& stream : streams_) {
    total += stream.injected.load(std::memory_order_relaxed);
  }
  return total;
}

FaultInjector& global() {
  static FaultInjector injector;
  return injector;
}

void register_flags(Flags& flags) {
  flags.define_int("fault-seed", 0x7ab1e5ee,
                   "seed for the deterministic fault-injection streams");
  flags.define_double("fault-arena-exhaustion", 0.0,
                      "P(Arena::alloc artificially fails), 0..1");
  flags.define_double("fault-alloc-failure", 0.0,
                      "P(object chunk allocation fails per attempt), 0..1");
  flags.define_double("fault-migration-abort", 0.0,
                      "P(migration copy aborts mid-flight), 0..1");
  flags.define_double("fault-dram-reservation", 0.0,
                      "P(planner DRAM reservation is vetoed), 0..1");
  flags.define_double("fault-copy-stall", 0.0,
                      "P(helper-thread copy stalls), 0..1");
  flags.define_double("fault-copy-stall-ms", 1.0,
                      "injected stall duration in milliseconds");
  flags.define_double("fault-sampler-noise", 0.0,
                      "max spurious-sample fraction added to counters, 0..1");
  flags.define_double("fault-segment-alloc", 0.0,
                      "P(segment metadata allocation fails), 0..1");
}

FaultConfig config_from_flags(const Flags& flags) {
  FaultConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("fault-seed"));
  config.arena_exhaustion = flags.get_double("fault-arena-exhaustion");
  config.alloc_failure = flags.get_double("fault-alloc-failure");
  config.migration_abort = flags.get_double("fault-migration-abort");
  config.dram_reservation = flags.get_double("fault-dram-reservation");
  config.copy_stall = flags.get_double("fault-copy-stall");
  config.copy_stall_seconds = flags.get_double("fault-copy-stall-ms") * 1e-3;
  config.sampler_noise = flags.get_double("fault-sampler-noise");
  config.segment_alloc = flags.get_double("fault-segment-alloc");
  return config;
}

void configure_from_flags(const Flags& flags) {
  const FaultConfig config = config_from_flags(flags);
  if (config.any()) {
    global().configure(config);
  } else {
    global().disarm();
  }
}

}  // namespace tahoe::fault
