// Assertion macros used throughout Tahoe-TP.
//
// TAHOE_REQUIRE is an always-on precondition check that throws
// std::logic_error so that contract violations are testable with gtest
// (EXPECT_THROW) instead of aborting the process. TAHOE_ASSERT is the
// internal-invariant flavour; it is also always on because this library's
// correctness claims (placement never exceeds DRAM capacity, migrations
// respect dependences, ...) are part of the reproduction's deliverables
// and the checks are cheap relative to simulated work.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tahoe {

/// Error thrown on contract violations (preconditions and invariants).
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractError(os.str());
}
}  // namespace detail

}  // namespace tahoe

#define TAHOE_REQUIRE(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::tahoe::detail::contract_fail("precondition", #expr, __FILE__,       \
                                     __LINE__, (msg));                      \
    }                                                                       \
  } while (false)

#define TAHOE_ASSERT(expr, msg)                                             \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::tahoe::detail::contract_fail("invariant", #expr, __FILE__,          \
                                     __LINE__, (msg));                      \
    }                                                                       \
  } while (false)

#define TAHOE_UNREACHABLE(msg)                                              \
  ::tahoe::detail::contract_fail("unreachable", "false", __FILE__,          \
                                 __LINE__, (msg))
