// Tiny command-line flag parser for the benchmark/example binaries.
//
// Syntax: --name=value or --name value; bare --flag sets a bool to true,
// and a bool flag followed by a literal true/false token consumes it
// (--csv false). Unknown flags, bare "--", and out-of-range numeric values
// are errors so that typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tahoe {

class Flags {
 public:
  /// Register flags with defaults before parsing.
  void define_int(const std::string& name, std::int64_t def,
                  const std::string& help);
  void define_double(const std::string& name, double def,
                     const std::string& help);
  void define_bool(const std::string& name, bool def, const std::string& help);
  void define_string(const std::string& name, const std::string& def,
                     const std::string& help);

  /// Parse argv. Throws ContractError on unknown flags or bad values.
  /// Returns positional (non-flag) arguments.
  std::vector<std::string> parse(int argc, const char* const* argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

  /// Render a usage string from the registered flags.
  std::string usage(const std::string& program) const;

 private:
  enum class Kind { Int, Double, Bool, String };
  struct Entry {
    Kind kind;
    std::string value;  // canonical textual value
    std::string def;
    std::string help;
  };

  const Entry& lookup(const std::string& name, Kind kind) const;

  std::map<std::string, Entry> entries_;
};

}  // namespace tahoe
