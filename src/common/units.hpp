// Size and time unit helpers. All simulator times are double seconds; all
// sizes are std::uint64_t bytes. Conversions live here so magic constants
// do not spread through the code base.
#pragma once

#include <cstdint>

namespace tahoe {

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/// Cache line size assumed by the whole machine model (bytes).
inline constexpr std::uint64_t kCacheLine = 64ULL;

constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v * kMiB; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v * kGiB; }

/// Nanoseconds to seconds.
constexpr double ns(double v) { return v * 1e-9; }
/// Microseconds to seconds.
constexpr double us(double v) { return v * 1e-6; }
/// Milliseconds to seconds.
constexpr double ms(double v) { return v * 1e-3; }

/// GB/s (decimal, as device datasheets quote) to bytes per second.
constexpr double gbps(double v) { return v * 1e9; }
/// MB/s to bytes per second.
constexpr double mbps(double v) { return v * 1e6; }

/// Bytes to mebibytes as a double (for reporting).
constexpr double to_mib(std::uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kMiB);
}

}  // namespace tahoe
