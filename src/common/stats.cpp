#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace tahoe {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

double percentile(std::vector<double> xs, double q) {
  TAHOE_REQUIRE(!xs.empty(), "percentile of empty sample");
  TAHOE_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q out of [0,1]");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double rank = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

double mean_of(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    TAHOE_REQUIRE(x > 0.0, "geomean requires positive values");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double rel_diff(double a, double b) noexcept {
  const double denom = std::max({std::fabs(a), std::fabs(b), 1e-300});
  return std::fabs(a - b) / denom;
}

}  // namespace tahoe
