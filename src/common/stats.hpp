// Small statistics helpers used by the profiler, the adaptivity monitor and
// the benchmark harnesses.
#pragma once

#include <cstddef>
#include <vector>

namespace tahoe {

/// Single-pass running mean/variance (Welford) with min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Percentile of a sample (linear interpolation between closest ranks).
/// `q` in [0,1]. The input is copied; the source is not reordered.
double percentile(std::vector<double> xs, double q);

/// Arithmetic mean of a vector (0 when empty).
double mean_of(const std::vector<double>& xs) noexcept;

/// Geometric mean (requires all-positive entries; 0 when empty).
double geomean_of(const std::vector<double>& xs);

/// Relative difference |a-b| / max(|a|,|b|, eps).
double rel_diff(double a, double b) noexcept;

}  // namespace tahoe
