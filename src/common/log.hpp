// Minimal leveled logger.
//
// The runtime's own overhead is one of the measured quantities, so logging
// defaults to Warn and formats lazily: the ostringstream is only built when
// the level is enabled. Thread-safe via a single mutex on the (rare) emit
// path.
#pragma once

#include <sstream>
#include <string>

namespace tahoe {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

namespace log {

/// Globally enabled level. Not atomic-fancy: set once at startup.
LogLevel level() noexcept;
void set_level(LogLevel lvl) noexcept;

/// Emit a formatted line (internal; use the macros below).
void emit(LogLevel lvl, const char* file, int line, const std::string& msg);

const char* level_name(LogLevel lvl) noexcept;

}  // namespace log
}  // namespace tahoe

#define TAHOE_LOG(lvl, streamed)                                       \
  do {                                                                 \
    if (static_cast<int>(lvl) >= static_cast<int>(::tahoe::log::level())) { \
      std::ostringstream tahoe_log_os;                                 \
      tahoe_log_os << streamed;                                        \
      ::tahoe::log::emit((lvl), __FILE__, __LINE__, tahoe_log_os.str()); \
    }                                                                  \
  } while (false)

#define TAHOE_TRACE(s) TAHOE_LOG(::tahoe::LogLevel::Trace, s)
#define TAHOE_DEBUG(s) TAHOE_LOG(::tahoe::LogLevel::Debug, s)
#define TAHOE_INFO(s) TAHOE_LOG(::tahoe::LogLevel::Info, s)
#define TAHOE_WARN(s) TAHOE_LOG(::tahoe::LogLevel::Warn, s)
#define TAHOE_ERROR(s) TAHOE_LOG(::tahoe::LogLevel::Error, s)
