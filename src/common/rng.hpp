// Deterministic random number generation.
//
// The whole reproduction must be bit-reproducible across runs, so every
// stochastic component (sampling emulation, synthetic workload generation,
// property-test case generation) draws from an explicitly seeded xoshiro256**
// stream. std::mt19937 is avoided because its distributions are not
// guaranteed identical across standard library implementations.
#pragma once

#include <cmath>
#include <cstdint>

#include "common/assert.hpp"

namespace tahoe {

/// SplitMix64: used to expand a single seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality, deterministic PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) {
    TAHOE_REQUIRE(bound > 0, "next_below bound must be positive");
    // 128-bit multiply-shift; rejection keeps the distribution exact.
    while (true) {
      const std::uint64_t x = next_u64();
      const __uint128_t m = static_cast<__uint128_t>(x) * bound;
      const std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    TAHOE_REQUIRE(lo <= hi, "next_in requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Deterministic Binomial(n, p) sample.
  ///
  /// Used by the PEBS-like sampling emulator: with n true memory accesses
  /// and sampling probability p = 1/interval, the number of collected
  /// samples is Binomial(n, p). For the large-n regimes the simulator
  /// operates in, a Gaussian approximation with continuity clamp is both
  /// accurate and O(1); tiny n falls back to exact Bernoulli summation.
  std::uint64_t binomial(std::uint64_t n, double p) {
    TAHOE_REQUIRE(p >= 0.0 && p <= 1.0, "binomial p out of range");
    if (n == 0 || p == 0.0) return 0;
    if (p == 1.0) return n;
    if (n <= 64) {
      std::uint64_t hits = 0;
      for (std::uint64_t i = 0; i < n; ++i) hits += (next_double() < p) ? 1 : 0;
      return hits;
    }
    const double nd = static_cast<double>(n);
    const double mean = nd * p;
    const double sd = std::sqrt(nd * p * (1.0 - p));
    const double g = gaussian();
    double v = mean + sd * g;
    if (v < 0.0) v = 0.0;
    if (v > nd) v = nd;
    return static_cast<std::uint64_t>(std::llround(v));
  }

  /// Standard normal via Box–Muller (deterministic given the stream).
  double gaussian() {
    // Avoid log(0) by nudging u1 away from zero.
    const double u1 = std::fmax(next_double(), 1e-300);
    const double u2 = next_double();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.141592653589793 * u2);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace tahoe
