#include "common/flags.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string_view>

#include "common/assert.hpp"

namespace tahoe {
namespace {

const char* kind_name(int k) {
  switch (k) {
    case 0: return "int";
    case 1: return "double";
    case 2: return "bool";
    case 3: return "string";
  }
  return "?";
}

}  // namespace

void Flags::define_int(const std::string& name, std::int64_t def,
                       const std::string& help) {
  entries_[name] = Entry{Kind::Int, std::to_string(def), std::to_string(def), help};
}

void Flags::define_double(const std::string& name, double def,
                          const std::string& help) {
  std::ostringstream os;
  os << def;
  entries_[name] = Entry{Kind::Double, os.str(), os.str(), help};
}

void Flags::define_bool(const std::string& name, bool def,
                        const std::string& help) {
  const std::string v = def ? "true" : "false";
  entries_[name] = Entry{Kind::Bool, v, v, help};
}

void Flags::define_string(const std::string& name, const std::string& def,
                          const std::string& help) {
  entries_[name] = Entry{Kind::String, def, def, help};
}

std::vector<std::string> Flags::parse(int argc, const char* const* argv) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string name = arg;
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    TAHOE_REQUIRE(!name.empty(),
                  "bare '--' is not a flag; expected --name or --name=value");
    auto it = entries_.find(name);
    TAHOE_REQUIRE(it != entries_.end(), "unknown flag --" + name);
    Entry& e = it->second;
    if (!has_value) {
      if (e.kind == Kind::Bool) {
        // Bare --flag means true, but a following true/false token belongs
        // to the flag (the two-token form) rather than the positionals.
        const std::string_view next = i + 1 < argc ? argv[i + 1] : "";
        if (next == "true" || next == "false") {
          value = argv[++i];
        } else {
          value = "true";
        }
      } else {
        TAHOE_REQUIRE(i + 1 < argc, "flag --" + name + " needs a value");
        value = argv[++i];
      }
    }
    // Validate by round-tripping through the typed getters' parsers.
    if (e.kind == Kind::Int) {
      char* end = nullptr;
      errno = 0;
      (void)std::strtoll(value.c_str(), &end, 10);
      TAHOE_REQUIRE(end != nullptr && *end == '\0' && !value.empty() &&
                        errno != ERANGE,
                    "flag --" + name + " expects an integer, got '" + value + "'");
    } else if (e.kind == Kind::Double) {
      char* end = nullptr;
      errno = 0;
      const double parsed = std::strtod(value.c_str(), &end);
      // ERANGE covers overflow (±HUGE_VAL) and underflow; only overflow is
      // a lie worth rejecting — underflow to (sub)normal zero is benign.
      TAHOE_REQUIRE(end != nullptr && *end == '\0' && !value.empty() &&
                        !(errno == ERANGE && std::isinf(parsed)),
                    "flag --" + name + " expects a number, got '" + value + "'");
    } else if (e.kind == Kind::Bool) {
      TAHOE_REQUIRE(value == "true" || value == "false",
                    "flag --" + name + " expects true/false");
    }
    e.value = value;
  }
  return positional;
}

const Flags::Entry& Flags::lookup(const std::string& name, Kind kind) const {
  auto it = entries_.find(name);
  TAHOE_REQUIRE(it != entries_.end(), "flag --" + name + " was never defined");
  TAHOE_REQUIRE(it->second.kind == kind,
                "flag --" + name + " is not of type " +
                    kind_name(static_cast<int>(kind)));
  return it->second;
}

std::int64_t Flags::get_int(const std::string& name) const {
  return std::strtoll(lookup(name, Kind::Int).value.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name) const {
  return std::strtod(lookup(name, Kind::Double).value.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name) const {
  return lookup(name, Kind::Bool).value == "true";
}

const std::string& Flags::get_string(const std::string& name) const {
  return lookup(name, Kind::String).value;
}

std::string Flags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, e] : entries_) {
    os << "  --" << name << " (" << kind_name(static_cast<int>(e.kind))
       << ", default " << e.def << "): " << e.help << '\n';
  }
  return os.str();
}

}  // namespace tahoe
