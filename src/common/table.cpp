#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace tahoe {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  TAHOE_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  TAHOE_REQUIRE(cells.size() == headers_.size(),
                "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c == 0) {
        os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      } else {
        os << "  " << std::right << std::setw(static_cast<int>(widths[c]))
           << row[c];
      }
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (headers_.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace tahoe
