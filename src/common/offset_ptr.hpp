// Self-relative pointers for segment-hosted (relocatable) data structures.
//
// An OffsetPtr<T> stores the signed byte distance from its *own address* to
// the pointee instead of an absolute address. A structure built entirely
// from OffsetPtrs can be mapped at any base address — or copied wholesale
// into another process over shared memory — and every reference still
// resolves, as long as pointer and pointee move together (i.e. both live in
// the same contiguous segment). This is the primitive the hms storage layer
// is built on; see src/hms/segment.hpp for the mapping that hosts it.
//
// Invariants:
//  - offset 0 encodes null. A live OffsetPtr must therefore never point at
//    its own first byte (the segment layout guarantees distinct addresses
//    for any pointer cell and its pointee).
//  - OffsetPtr is NOT trivially copyable by memcpy *individually*: copying
//    the 8 raw bytes to a different address changes the pointee. Copy
//    construction/assignment rebind correctly; whole-segment copies (same
//    relative layout) are always safe.
//  - The pointee type must be stored in the same mapping; pointing across
//    mappings works only as long as neither side moves.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tahoe {

template <typename T>
class OffsetPtr {
 public:
  OffsetPtr() = default;
  OffsetPtr(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  explicit OffsetPtr(T* p) { set(p); }

  /// Copying rebinds the offset so the copy refers to the same pointee
  /// from its own (possibly different) address.
  OffsetPtr(const OffsetPtr& o) { set(o.get()); }
  OffsetPtr& operator=(const OffsetPtr& o) {
    set(o.get());
    return *this;
  }
  OffsetPtr& operator=(T* p) {
    set(p);
    return *this;
  }
  OffsetPtr& operator=(std::nullptr_t) {
    rel_ = 0;
    return *this;
  }

  T* get() const noexcept {
    if (rel_ == 0) return nullptr;
    return reinterpret_cast<T*>(reinterpret_cast<std::intptr_t>(this) + rel_);
  }

  void set(T* p) noexcept {
    rel_ = (p == nullptr) ? 0
                          : reinterpret_cast<std::intptr_t>(p) -
                                reinterpret_cast<std::intptr_t>(this);
  }

  T* operator->() const noexcept { return get(); }
  T& operator*() const noexcept { return *get(); }
  T& operator[](std::size_t i) const noexcept { return get()[i]; }

  explicit operator bool() const noexcept { return rel_ != 0; }
  bool operator==(std::nullptr_t) const noexcept { return rel_ == 0; }

  /// Raw self-relative distance in bytes (diagnostics/tests).
  std::int64_t raw_offset() const noexcept { return rel_; }

 private:
  std::int64_t rel_ = 0;  ///< pointee address minus this cell's address
};

/// A (self-relative pointer, count) pair: the segment-hosted replacement
/// for std::span/std::vector views inside relocatable structures.
template <typename T>
class OffsetSpan {
 public:
  OffsetSpan() = default;
  OffsetSpan(T* data, std::uint64_t count) : data_(data), count_(count) {}

  T* data() const noexcept { return data_.get(); }
  std::uint64_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  T* begin() const noexcept { return data_.get(); }
  T* end() const noexcept { return data_.get() + count_; }
  T& operator[](std::size_t i) const noexcept { return data_.get()[i]; }

  void reset(T* data, std::uint64_t count) noexcept {
    data_.set(data);
    count_ = count;
  }
  void clear() noexcept {
    data_ = nullptr;
    count_ = 0;
  }

 private:
  OffsetPtr<T> data_;
  std::uint64_t count_ = 0;
};

}  // namespace tahoe
