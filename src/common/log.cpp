#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace tahoe::log {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_emit_mutex;

}  // namespace

LogLevel level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_level(LogLevel lvl) noexcept {
  g_level.store(static_cast<int>(lvl), std::memory_order_relaxed);
}

const char* level_name(LogLevel lvl) noexcept {
  switch (lvl) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

void emit(LogLevel lvl, const char* file, int line, const std::string& msg) {
  // Strip directories from __FILE__ for readable output.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s:%d %s\n", level_name(lvl), base, line,
               msg.c_str());
}

}  // namespace tahoe::log
