// Aligned-column table printer used by the benchmark harnesses to emit the
// paper-style tables/series. Supports plain text (aligned) and CSV output
// so the series can be re-plotted.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tahoe {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 2);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Render with space-padded columns; every cell right-aligned except the
  /// first column (row label).
  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  /// Render to a string (for tests).
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tahoe
