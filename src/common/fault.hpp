// Deterministic fault injection for chaos-testing the HMS/migration layer.
//
// Production-scale behaviour means surviving the scenarios the planner
// assumes away: DRAM arenas filling up mid-run, reservation races, copies
// that abort or stall, counters that lie. The FaultInjector lets tests and
// benches inject exactly those events, *deterministically*: every
// injection site draws from its own seeded xoshiro stream, so identical
// (seed, flags, call sequence) triples reproduce identical fault
// schedules. A disarmed injector costs one relaxed atomic load per site —
// cheap enough to leave compiled into the hot paths.
//
// The injector is process-global (like the tracer and the counter
// registry) because it must be visible from Arena/ObjectRegistry/
// MigrationEngine/SpaceManager/Sampler without threading a handle through
// every constructor the application touches.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/rng.hpp"

namespace tahoe {
class Flags;
}

namespace tahoe::fault {

/// Where a fault can strike. Each site owns an independent random stream:
/// enabling one scenario never perturbs the schedule of another.
enum class Site : std::size_t {
  ArenaExhaustion = 0,  ///< Arena::alloc returns nullptr despite free space
  AllocFailure,         ///< ObjectRegistry::create chunk allocation fails
  MigrationAbort,       ///< migrate_chunk aborts after the destination alloc
  DramReservation,      ///< planner-side DRAM reservation veto
  CopyStall,            ///< helper-thread copy stalls for a configured time
  SamplerNoise,         ///< spurious samples added to hardware counters
  SegmentAlloc,         ///< hms::Segment metadata allocation fails
  kNumSites,
};

inline constexpr std::size_t kNumSites =
    static_cast<std::size_t>(Site::kNumSites);

const char* site_name(Site site) noexcept;

struct FaultConfig {
  std::uint64_t seed = 0x7ab1e5eedf00dULL;
  double arena_exhaustion = 0.0;   ///< P(alloc fails) per Arena::alloc
  double alloc_failure = 0.0;      ///< P(chunk alloc fails) per attempt
  double migration_abort = 0.0;    ///< P(copy aborts) per migrate_chunk
  double dram_reservation = 0.0;   ///< P(reservation vetoed) per attempt
  double copy_stall = 0.0;         ///< P(copy stalls) per engine request
  double copy_stall_seconds = 1e-3;  ///< injected stall duration (real path)
  double sampler_noise = 0.0;      ///< max spurious-sample fraction
  double segment_alloc = 0.0;      ///< P(segment metadata alloc fails)

  double rate(Site site) const noexcept;
  bool any() const noexcept;
};

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arm (or re-arm) with `config`. Reseeds every site stream and resets
  /// the injection counts, so two identically-configured runs observe
  /// identical fault schedules. A config with no positive rate disarms.
  void configure(const FaultConfig& config);

  /// Disable all injection (the default state).
  void disarm();

  bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  FaultConfig config() const;

  /// One Bernoulli draw on the site's stream. False whenever disarmed or
  /// the site's rate is zero (no draw is consumed in either case).
  bool should_fail(Site site);

  /// Copy-stall scenario: 0.0, or the configured stall duration when the
  /// CopyStall site fires.
  double stall_seconds();

  /// Sampler-noise scenario: number of spurious samples to add given
  /// `total_samples` real ones (uniform in [0, noise * total]).
  std::uint64_t spurious_samples(std::uint64_t total_samples);

  /// Injections delivered since the last configure().
  std::uint64_t injected(Site site) const;
  std::uint64_t total_injected() const;

 private:
  struct Stream {
    std::mutex mutex;
    Rng rng{0};
    std::atomic<std::uint64_t> injected{0};
  };

  std::atomic<bool> armed_{false};
  mutable std::mutex config_mutex_;
  FaultConfig config_;
  std::array<Stream, kNumSites> streams_;
};

/// Process-wide injector consulted by the instrumented sites.
FaultInjector& global();

/// Register the --fault-* flag set on a binary's Flags instance.
void register_flags(Flags& flags);

/// Build a FaultConfig from parsed --fault-* flags.
FaultConfig config_from_flags(const Flags& flags);

/// Convenience: configure (or disarm) the global injector from flags.
void configure_from_flags(const Flags& flags);

}  // namespace tahoe::fault
