#include "workloads/sp.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace tahoe::workloads {

SpApp::Config SpApp::config_for(Scale scale, Kind kind) {
  Config c;
  c.kind = kind;
  if (scale == Scale::Test) {
    c.grid = 20;
    c.blocks = 4;
    c.iterations = 6;
  } else {
    c.grid = 176;  // 176^3 cells (NPB class-C scale)
    c.blocks = 16;
    c.iterations = 15;
  }
  return c;
}

void SpApp::setup(hms::ObjectRegistry& registry,
                  const hms::ChunkingPolicy& chunking) {
  (void)chunking;  // multi-dimensional arrays with aliasing: not partitioned
  registry_ = &registry;
  real_ = registry.arena(registry.capacity_tier()).backing() == hms::Backing::Real;
  const std::size_t n = config_.grid;
  cells_ = n * n * n;
  const std::uint64_t cell_bytes = cells_ * sizeof(double);
  const bool bt = config_.kind == Kind::BT;

  // 5 solution components; lhs holds per-line coefficients (SP: 5 diag
  // bands; BT: 3 dense 5x5 blocks per cell -> 3x bigger).
  u_ = registry.create("u", 5 * cell_bytes, registry.capacity_tier());
  rhs_ = registry.create("rhs", 5 * cell_bytes, registry.capacity_tier());
  forcing_ = registry.create("forcing", 5 * cell_bytes, registry.capacity_tier());
  lhs_ = registry.create("lhs", (bt ? 15 : 5) * cell_bytes, registry.capacity_tier());
  us_ = registry.create("us", cell_bytes, registry.capacity_tier());
  vs_ = registry.create("vs", cell_bytes, registry.capacity_tier());
  ws_ = registry.create("ws", cell_bytes, registry.capacity_tier());
  qs_ = registry.create("qs", cell_bytes, registry.capacity_tier());
  rho_i_ = registry.create("rho_i", cell_bytes, registry.capacity_tier());
  square_ = registry.create("square", cell_bytes, registry.capacity_tier());
  // Halo-exchange staging buffers: two faces x 5 components.
  const std::uint64_t buf_bytes = 10 * n * n * sizeof(double);
  in_buffer_ = registry.create("in_buffer", buf_bytes, registry.capacity_tier());
  out_buffer_ = registry.create("out_buffer", buf_bytes, registry.capacity_tier());

  const double iters = static_cast<double>(config_.iterations);
  const auto dc = static_cast<double>(cells_);
  registry.get_mutable(u_).static_ref_estimate = 10 * dc * iters;
  registry.get_mutable(rhs_).static_ref_estimate = 30 * dc * iters;
  registry.get_mutable(forcing_).static_ref_estimate = 5 * dc * iters;
  registry.get_mutable(lhs_).static_ref_estimate =
      (bt ? 45 : 15) * dc * iters;
  for (const hms::ObjectId id : {us_, vs_, ws_, qs_, rho_i_, square_}) {
    registry.get_mutable(id).static_ref_estimate = dc * iters;
  }
  const auto db = static_cast<double>(10 * n * n);
  registry.get_mutable(in_buffer_).static_ref_estimate = 40 * db * iters;
  registry.get_mutable(out_buffer_).static_ref_estimate = 40 * db * iters;

  if (!real_) return;
  double* uv = arr(u_);
  for (std::size_t i = 0; i < 5 * cells_; ++i) {
    uv[i] = 1.0 + 0.001 * static_cast<double>(i % 97);
  }
  double* fv = arr(forcing_);
  for (std::size_t i = 0; i < 5 * cells_; ++i) {
    fv[i] = 0.01 * static_cast<double>(i % 13);
  }
}

double* SpApp::arr(hms::ObjectId id) const {
  return reinterpret_cast<double*>(registry_->chunk_ptr(id));
}

void SpApp::solve_group(task::GraphBuilder& builder, const char* label) {
  const std::size_t nb = config_.blocks;
  const bool bt = config_.kind == Kind::BT;
  const std::uint64_t cells_blk = cells_ / nb;
  const std::uint64_t lhs_elems = (bt ? 15ULL : 5ULL) * cells_blk;
  const std::uint64_t rhs_elems = 5ULL * cells_blk;
  // BT's dense block solves do ~5x the flops of SP's scalar pentadiagonal.
  const double flops =
      static_cast<double>(rhs_elems) * (bt ? 40.0 : 12.0);
  hms::ObjectRegistry* reg = registry_;
  const std::size_t cells = cells_;

  builder.begin_group(label);
  for (std::size_t b = 0; b < nb; ++b) {
    task::Task t;
    t.label = label;
    t.compute_seconds = compute_time(flops);
    t.accesses = {
        // Line recurrences: strongly serialized -> latency-sensitive.
        access(lhs_, task::AccessMode::ReadWrite,
               traffic(lhs_elems, lhs_elems / 2, lhs_elems * 8, 0.10,
                       bt ? 0.85 : 0.80)),
        access(rhs_, task::AccessMode::ReadWrite,
               traffic(rhs_elems, rhs_elems, rhs_elems * 8, 0.15, 0.45)),
    };
    if (real_) {
      const std::size_t lo = cells / nb * b * 5;
      const std::size_t hi =
          (b + 1 == nb) ? cells * 5 : cells / nb * (b + 1) * 5;
      t.work = [reg, this, lo, hi]() {
        // Damped forward/backward line sweep: numerically contracting.
        double* rhs = arr(rhs_);
        double carry = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          rhs[i] = 0.9 * rhs[i] + 0.05 * carry;
          carry = rhs[i];
        }
        carry = 0.0;
        for (std::size_t i = hi; i-- > lo;) {
          rhs[i] = 0.95 * rhs[i] + 0.02 * carry;
          carry = rhs[i];
        }
      };
    }
    builder.add_task(std::move(t));
  }
}

void SpApp::build_iteration(task::GraphBuilder& builder,
                            std::size_t iteration) {
  (void)iteration;
  const std::size_t n = config_.grid;
  const std::size_t nb = config_.blocks;
  const std::uint64_t cells_blk = cells_ / nb;
  const std::uint64_t c5 = 5ULL * cells_blk;
  hms::ObjectRegistry* reg = registry_;
  (void)reg;

  // ---- compute_rhs ----
  builder.begin_group("compute_rhs");
  for (std::size_t b = 0; b < nb; ++b) {
    task::Task t;
    t.label = "compute_rhs";
    t.compute_seconds = compute_time(static_cast<double>(c5) * 12.0);
    t.accesses = {
        access(u_, task::AccessMode::Read,
               traffic(6 * c5, 0, c5 * 8, 0.35, 0.05)),
        access(forcing_, task::AccessMode::Read,
               traffic(c5, 0, c5 * 8, 0.05, 0.0)),
        access(rhs_, task::AccessMode::Write,
               traffic(0, c5, c5 * 8, 0.05, 0.0)),
        access(us_, task::AccessMode::ReadWrite,
               traffic(cells_blk, cells_blk, cells_blk * 8, 0.2, 0.0)),
        access(vs_, task::AccessMode::ReadWrite,
               traffic(cells_blk, cells_blk, cells_blk * 8, 0.2, 0.0)),
        access(ws_, task::AccessMode::ReadWrite,
               traffic(cells_blk, cells_blk, cells_blk * 8, 0.2, 0.0)),
        access(qs_, task::AccessMode::ReadWrite,
               traffic(cells_blk, cells_blk, cells_blk * 8, 0.2, 0.0)),
        access(rho_i_, task::AccessMode::ReadWrite,
               traffic(cells_blk, cells_blk, cells_blk * 8, 0.2, 0.0)),
        access(square_, task::AccessMode::ReadWrite,
               traffic(cells_blk, cells_blk, cells_blk * 8, 0.2, 0.0)),
    };
    if (real_) {
      const std::size_t lo = cells_ / nb * b;
      const std::size_t hi = (b + 1 == nb) ? cells_ : cells_ / nb * (b + 1);
      t.work = [this, lo, hi]() {
        const double* uv = arr(u_);
        const double* fv = arr(forcing_);
        double* rhs = arr(rhs_);
        double* sq = arr(square_);
        for (std::size_t i = lo; i < hi; ++i) {
          sq[i] = uv[i] * uv[i];
          for (std::size_t k = 0; k < 5; ++k) {
            rhs[5 * i + k] = 0.2 * uv[5 * i + k] + 0.1 * fv[5 * i + k];
          }
        }
      };
    }
    builder.add_task(std::move(t));
  }

  // ---- directional solves ----
  solve_group(builder, "x_solve");
  solve_group(builder, "y_solve");
  solve_group(builder, "z_solve");

  // ---- halo exchange: heavy streaming over small buffers ----
  builder.begin_group("exchange");
  const std::uint64_t buf_elems = 10ULL * n * n;
  const std::uint64_t passes = 96;  // repeated pack/unpack sweeps
  for (std::size_t b = 0; b < nb; ++b) {
    const std::uint64_t share = buf_elems * passes / nb;
    task::Task t;
    t.label = "exchange";
    t.compute_seconds = compute_time(static_cast<double>(share) * 2.0);
    t.accesses = {
        access(out_buffer_, task::AccessMode::Write,
               traffic(0, share, buf_elems * 8 / nb, 0.0, 0.0)),
        access(in_buffer_, task::AccessMode::Read,
               traffic(share, 0, buf_elems * 8 / nb, 0.0, 0.0)),
        access(rhs_, task::AccessMode::ReadWrite,
               traffic(share / 4, share / 4, c5 * 8 / 8, 0.1, 0.0)),
    };
    if (real_) {
      const std::size_t lo = buf_elems / nb * b;
      const std::size_t hi =
          (b + 1 == nb) ? buf_elems : buf_elems / nb * (b + 1);
      t.work = [this, lo, hi]() {
        const double* in = arr(in_buffer_);
        double* out = arr(out_buffer_);
        for (std::size_t i = lo; i < hi; ++i) out[i] = 0.5 * in[i];
      };
    }
    builder.add_task(std::move(t));
  }

  // ---- add: u += rhs ----
  builder.begin_group("add");
  for (std::size_t b = 0; b < nb; ++b) {
    task::Task t;
    t.label = "add";
    t.compute_seconds = compute_time(static_cast<double>(c5));
    t.accesses = {
        access(u_, task::AccessMode::ReadWrite,
               traffic(c5, c5, c5 * 8, 0.05, 0.0)),
        access(rhs_, task::AccessMode::Read,
               traffic(c5, 0, c5 * 8, 0.05, 0.0)),
    };
    if (real_) {
      const std::size_t lo = cells_ / nb * b * 5;
      const std::size_t hi =
          (b + 1 == nb) ? cells_ * 5 : cells_ / nb * (b + 1) * 5;
      t.work = [this, lo, hi]() {
        double* uv = arr(u_);
        const double* rhs = arr(rhs_);
        for (std::size_t i = lo; i < hi; ++i) {
          uv[i] = 0.98 * uv[i] + 0.01 * rhs[i];
        }
      };
    }
    builder.add_task(std::move(t));
  }
}

bool SpApp::verify(hms::ObjectRegistry& registry) {
  if (!real_) return true;
  const auto* uv = reinterpret_cast<const double*>(registry.chunk_ptr(u_));
  double norm = 0.0;
  for (std::size_t i = 0; i < 5 * cells_; ++i) {
    if (!std::isfinite(uv[i])) return false;
    norm += uv[i] * uv[i];
  }
  // The damped update keeps the solution bounded by its initial scale.
  return norm > 0.0 && norm < 4.0 * static_cast<double>(5 * cells_);
}

}  // namespace tahoe::workloads
