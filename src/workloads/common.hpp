// Shared helpers for workload construction.
//
// Workloads declare, per task, the ground-truth traffic each data object
// receives (the simulator's and sampler's input) *and* carry real kernels
// operating on the registry-backed arrays (exercised by run_real and the
// correctness tests). The helpers here keep those declarations compact.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/application.hpp"
#include "task/task.hpp"

namespace tahoe::workloads {

/// Modeled per-core compute throughput used to convert kernel flop counts
/// into compute_seconds for the simulator.
inline constexpr double kFlopsPerSecond = 8e9;

inline double compute_time(double flops) { return flops / kFlopsPerSecond; }

/// Compact ObjectTraffic construction. `spatial` is the same-line
/// adjacency probability (default: sequential double stream).
memsim::ObjectTraffic traffic(std::uint64_t loads, std::uint64_t stores,
                              std::uint64_t footprint, double locality,
                              double dep_frac, double spatial = 0.875);

/// Compact DataAccess construction (chunk defaults to whole-object unit 0).
task::DataAccess access(hms::ObjectId obj, task::AccessMode mode,
                        const memsim::ObjectTraffic& t, std::size_t chunk = 0);

/// Problem-size presets: Test keeps real kernels fast enough for unit
/// tests; Bench matches the evaluation configurations (use with virtual
/// backing).
enum class Scale { Test, Bench };

/// Factory over every registered workload.
std::unique_ptr<core::Application> make_workload(const std::string& name,
                                                 Scale scale);

/// Names accepted by make_workload, in canonical (paper) order.
std::vector<std::string> workload_names();

}  // namespace tahoe::workloads
