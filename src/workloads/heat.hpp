// Heat: 2-D Jacobi heat diffusion with a variable-coefficient field.
//
// The classic task-parallel stencil: band tasks update u1 from u0 and the
// conductivity field, a residual group reduces convergence data, and a
// copy-back group advances the time step. Fixed hot/cold boundaries make
// the steady state verifiable.
#pragma once

#include "core/application.hpp"
#include "workloads/common.hpp"

namespace tahoe::workloads {

class HeatApp : public core::Application {
 public:
  struct Config {
    std::size_t nx = 128;  ///< rows
    std::size_t ny = 128;  ///< columns
    std::size_t bands = 4;
    std::size_t iterations = 10;
  };
  static Config config_for(Scale scale);

  explicit HeatApp(Config config) : config_(config) {}

  std::string name() const override { return "heat"; }
  std::size_t iterations() const override { return config_.iterations; }
  void setup(hms::ObjectRegistry& registry,
             const hms::ChunkingPolicy& chunking) override;
  void build_iteration(task::GraphBuilder& builder,
                       std::size_t iteration) override;
  bool verify(hms::ObjectRegistry& registry) override;

  /// Residual of the last completed sweep (real runs only).
  double last_residual(hms::ObjectRegistry& registry) const;

 private:
  Config config_;
  hms::ObjectRegistry* registry_ = nullptr;
  bool real_ = false;
  hms::ObjectId u0_ = hms::kInvalidObject;
  hms::ObjectId u1_ = hms::kInvalidObject;
  hms::ObjectId coeff_ = hms::kInvalidObject;
  hms::ObjectId partial_ = hms::kInvalidObject;  ///< per-band residuals
  hms::ObjectId scalars_ = hms::kInvalidObject;

  double* grid(hms::ObjectId id) const;
};

}  // namespace tahoe::workloads
