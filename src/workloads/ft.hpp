// FT: batched complex FFT with spectral evolution (NPB-FT analogue).
//
// The field is one very large flat array of complex values — the flagship
// of the runtime-driven *chunking* optimization: the application asks the
// ChunkingPolicy how many chunks to split it into, and every task works on
// one chunk. Each iteration performs forward FFT, spectral evolve,
// inverse FFT and the inverse phase twist, so the field returns to its
// initial state — a strong end-to-end correctness check.
#pragma once

#include <complex>

#include "core/application.hpp"
#include "workloads/common.hpp"

namespace tahoe::workloads {

class FtApp : public core::Application {
 public:
  struct Config {
    std::size_t log2_segment = 10;  ///< segment length = 2^log2_segment
    std::size_t segments = 64;      ///< batched independent FFT segments
    std::size_t iterations = 8;
  };
  static Config config_for(Scale scale);

  explicit FtApp(Config config) : config_(config) {}

  std::string name() const override { return "ft"; }
  std::size_t iterations() const override { return config_.iterations; }
  void setup(hms::ObjectRegistry& registry,
             const hms::ChunkingPolicy& chunking) override;
  void build_iteration(task::GraphBuilder& builder,
                       std::size_t iteration) override;
  bool verify(hms::ObjectRegistry& registry) override;

  std::size_t num_chunks() const noexcept { return chunks_; }

 private:
  using Cplx = std::complex<double>;

  std::size_t segment_len() const noexcept {
    return std::size_t{1} << config_.log2_segment;
  }
  std::size_t total_elems() const noexcept {
    return segment_len() * config_.segments;
  }
  Cplx* chunk_data(std::size_t c) const;
  void fft_chunk(std::size_t c, bool inverse) const;
  void twist_chunk(std::size_t c, double sign) const;

  Config config_;
  hms::ObjectRegistry* registry_ = nullptr;
  bool real_ = false;
  std::size_t chunks_ = 1;
  std::size_t elems_per_chunk_ = 0;
  hms::ObjectId field_ = hms::kInvalidObject;
  hms::ObjectId twiddle_ = hms::kInvalidObject;
  hms::ObjectId checksum_ = hms::kInvalidObject;
};

}  // namespace tahoe::workloads
