#include "workloads/ft.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace tahoe::workloads {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Largest divisor of `n` (a power of two) not exceeding `limit`.
std::size_t pow2_divisor_at_most(std::size_t n, std::size_t limit) {
  std::size_t d = 1;
  while (d * 2 <= limit && d * 2 <= n && n % (d * 2) == 0) d *= 2;
  return d;
}

}  // namespace

FtApp::Config FtApp::config_for(Scale scale) {
  Config c;
  if (scale == Scale::Test) {
    c.log2_segment = 10;  // 1024-point segments
    c.segments = 16;
    c.iterations = 6;
  } else {
    c.log2_segment = 16;  // 65536-point segments
    c.segments = 1024;    // 1 GiB field
    c.iterations = 12;
  }
  return c;
}

void FtApp::setup(hms::ObjectRegistry& registry,
                  const hms::ChunkingPolicy& chunking) {
  registry_ = &registry;
  real_ = registry.arena(registry.capacity_tier()).backing() == hms::Backing::Real;
  const std::size_t n = total_elems();
  const std::uint64_t bytes = n * sizeof(Cplx);

  // Runtime-driven partitioning: the policy proposes a chunk count; align
  // it to a divisor of the segment count so chunks hold whole segments.
  const std::size_t suggested = chunking.chunks_for(bytes, true);
  chunks_ = pow2_divisor_at_most(config_.segments, suggested);
  elems_per_chunk_ = n / chunks_;

  field_ = registry.create("field", bytes, registry.capacity_tier(), chunks_);
  twiddle_ = registry.create("twiddle", segment_len() / 2 * sizeof(Cplx),
                             registry.capacity_tier());
  checksum_ = registry.create("checksum", chunks_ * kCacheLine, registry.capacity_tier(),
                              chunks_);

  const double iters = static_cast<double>(config_.iterations);
  const auto dn = static_cast<double>(n);
  const double logn = static_cast<double>(config_.log2_segment);
  registry.get_mutable(field_).static_ref_estimate = 4 * dn * logn * iters;
  registry.get_mutable(twiddle_).static_ref_estimate = dn * logn * iters;

  if (!real_) return;
  // Deterministic initial field with unit-scale energy.
  for (std::size_t c = 0; c < chunks_; ++c) {
    Cplx* data = chunk_data(c);
    for (std::size_t i = 0; i < elems_per_chunk_; ++i) {
      const auto g = static_cast<double>(c * elems_per_chunk_ + i);
      data[i] = Cplx(std::sin(0.001 * g), std::cos(0.003 * g));
    }
  }
  auto* tw = reinterpret_cast<Cplx*>(registry.chunk_ptr(twiddle_));
  const std::size_t half = segment_len() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    const double ang = -2.0 * kPi * static_cast<double>(i) /
                       static_cast<double>(segment_len());
    tw[i] = Cplx(std::cos(ang), std::sin(ang));
  }
}

FtApp::Cplx* FtApp::chunk_data(std::size_t c) const {
  return reinterpret_cast<Cplx*>(registry_->chunk_ptr(field_, c));
}

void FtApp::fft_chunk(std::size_t c, bool inverse) const {
  const std::size_t seg = segment_len();
  const auto* tw =
      reinterpret_cast<const Cplx*>(registry_->chunk_ptr(twiddle_));
  Cplx* base = chunk_data(c);
  const std::size_t segs_here = elems_per_chunk_ / seg;
  for (std::size_t s = 0; s < segs_here; ++s) {
    Cplx* a = base + s * seg;
    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < seg; ++i) {
      std::size_t bit = seg >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      if (i < j) std::swap(a[i], a[j]);
    }
    // Iterative radix-2 butterflies using the shared twiddle table.
    for (std::size_t len = 2; len <= seg; len <<= 1) {
      const std::size_t stride = seg / len;
      for (std::size_t i = 0; i < seg; i += len) {
        for (std::size_t k = 0; k < len / 2; ++k) {
          Cplx w = tw[k * stride];
          if (inverse) w = std::conj(w);
          const Cplx u = a[i + k];
          const Cplx v = a[i + k + len / 2] * w;
          a[i + k] = u + v;
          a[i + k + len / 2] = u - v;
        }
      }
    }
    if (inverse) {
      const double inv = 1.0 / static_cast<double>(seg);
      for (std::size_t i = 0; i < seg; ++i) a[i] *= inv;
    }
  }
}

void FtApp::twist_chunk(std::size_t c, double sign) const {
  Cplx* data = chunk_data(c);
  for (std::size_t i = 0; i < elems_per_chunk_; ++i) {
    const auto g = static_cast<double>(c * elems_per_chunk_ + i);
    const double ang = sign * 1e-4 * g;
    data[i] *= Cplx(std::cos(ang), std::sin(ang));
  }
}

void FtApp::build_iteration(task::GraphBuilder& builder,
                            std::size_t iteration) {
  (void)iteration;
  const auto n_c = static_cast<std::uint64_t>(elems_per_chunk_);
  const std::uint64_t chunk_bytes = n_c * sizeof(Cplx);
  const auto logn = static_cast<std::uint64_t>(config_.log2_segment);
  const std::uint64_t tw_bytes = segment_len() / 2 * sizeof(Cplx);

  auto fft_group = [&](const char* label, bool inverse) {
    builder.begin_group(label);
    for (std::size_t c = 0; c < chunks_; ++c) {
      task::Task t;
      t.label = label;
      // Radix-2 butterflies are strided and scalar: ~1 GF/s effective,
      // an 8x derating of the streaming-kernel rate.
      t.compute_seconds =
          compute_time(40.0 * static_cast<double>(n_c * logn));
      // Butterfly stages reuse each segment from cache: the *memory-level*
      // traffic is ~one pass over the chunk (stream in, stream out).
      t.accesses = {
          access(field_, task::AccessMode::ReadWrite,
                 traffic(n_c, n_c, chunk_bytes, 0.05, 0.20), c),
          access(twiddle_, task::AccessMode::Read,
                 traffic(n_c, 0, tw_bytes, 0.9, 0.0)),
      };
      if (real_) {
        t.work = [this, c, inverse]() { fft_chunk(c, inverse); };
      }
      builder.add_task(std::move(t));
    }
  };

  fft_group("fft_fwd", false);

  builder.begin_group("evolve");
  for (std::size_t c = 0; c < chunks_; ++c) {
    task::Task t;
    t.label = "evolve";
    t.compute_seconds = compute_time(8.0 * static_cast<double>(n_c));
    t.accesses = {access(field_, task::AccessMode::ReadWrite,
                         traffic(n_c, n_c, chunk_bytes, 0.0, 0.0), c)};
    if (real_) {
      t.work = [this, c]() { twist_chunk(c, +1.0); };
    }
    builder.add_task(std::move(t));
  }

  fft_group("fft_inv", true);

  builder.begin_group("checksum");
  for (std::size_t c = 0; c < chunks_; ++c) {
    task::Task t;
    t.label = "checksum";
    t.compute_seconds = compute_time(4.0 * static_cast<double>(n_c));
    t.accesses = {
        access(field_, task::AccessMode::Read,
               traffic(n_c, 0, chunk_bytes, 0.05, 0.0), c),
        access(checksum_, task::AccessMode::Write, traffic(0, 1, 64, 0.9, 0.0),
               c),
    };
    if (real_) {
      t.work = [this, c]() {
        const Cplx* data = chunk_data(c);
        double energy = 0.0;
        for (std::size_t i = 0; i < elems_per_chunk_; ++i) {
          energy += std::norm(data[i]);
        }
        *reinterpret_cast<double*>(registry_->chunk_ptr(checksum_, c)) =
            energy;
      };
    }
    builder.add_task(std::move(t));
  }
}

bool FtApp::verify(hms::ObjectRegistry& registry) {
  if (!real_) return true;
  // The FFT/evolve/inverse pipeline is unitary (up to the 1/N scaling the
  // inverse applies): total energy must match the initial field's.
  double measured = 0.0;
  for (std::size_t c = 0; c < chunks_; ++c) {
    measured +=
        *reinterpret_cast<const double*>(registry.chunk_ptr(checksum_, c));
  }
  double expected = 0.0;
  for (std::size_t i = 0; i < total_elems(); ++i) {
    const auto g = static_cast<double>(i);
    expected += std::sin(0.001 * g) * std::sin(0.001 * g) +
                std::cos(0.003 * g) * std::cos(0.003 * g);
  }
  return std::isfinite(measured) &&
         std::fabs(measured - expected) / expected < 1e-9;
}

}  // namespace tahoe::workloads
