#include "workloads/mg.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace tahoe::workloads {

MgApp::Config MgApp::config_for(Scale scale) {
  Config c;
  if (scale == Scale::Test) {
    c.log2_n = 10;
    c.levels = 4;
    c.bands = 4;
    c.iterations = 10;
  } else {
    c.log2_n = 24;  // 16M points finest -> 128 MiB per finest array
    c.levels = 6;
    c.bands = 16;
    c.iterations = 12;
  }
  return c;
}

void MgApp::setup(hms::ObjectRegistry& registry,
                  const hms::ChunkingPolicy& chunking) {
  (void)chunking;  // aliasing-heavy arrays: never partitioned (paper's MG)
  registry_ = &registry;
  real_ = registry.arena(registry.capacity_tier()).backing() == hms::Backing::Real;
  TAHOE_REQUIRE(config_.levels >= 2, "mg needs at least two levels");
  TAHOE_REQUIRE(level_n(config_.levels - 1) >= 4, "too many levels");

  u_.clear();
  r_.clear();
  for (std::size_t l = 0; l < config_.levels; ++l) {
    const std::uint64_t bytes = level_n(l) * sizeof(double);
    u_.push_back(registry.create("u" + std::to_string(l), bytes,
                                 registry.capacity_tier()));
    r_.push_back(registry.create("r" + std::to_string(l), bytes,
                                 registry.capacity_tier()));
  }
  v_ = registry.create("v", level_n(0) * sizeof(double), registry.capacity_tier());

  const double iters = static_cast<double>(config_.iterations);
  for (std::size_t l = 0; l < config_.levels; ++l) {
    const auto dn = static_cast<double>(level_n(l));
    registry.get_mutable(u_[l]).static_ref_estimate = 12 * dn * iters;
    registry.get_mutable(r_[l]).static_ref_estimate = 8 * dn * iters;
  }
  registry.get_mutable(v_).static_ref_estimate =
      2 * static_cast<double>(level_n(0)) * iters;

  if (!real_) return;
  double* v = reinterpret_cast<double*>(registry.chunk_ptr(v_));
  const std::size_t n = level_n(0);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(2.0 * 3.14159265358979 * static_cast<double>(i) /
                    static_cast<double>(n));
  }
}

double* MgApp::lvl(hms::ObjectId id) const {
  return reinterpret_cast<double*>(registry_->chunk_ptr(id));
}

void MgApp::smooth_band(std::size_t level, std::size_t lo,
                        std::size_t hi) const {
  // Weighted-Jacobi smoothing of -u'' = r at this level.
  double* u = lvl(u_[level]);
  const double* r = lvl(r_[level]);
  const std::size_t n = level_n(level);
  for (std::size_t i = std::max<std::size_t>(lo, 1);
       i < std::min(hi, n - 1); ++i) {
    u[i] = 0.5 * u[i] + 0.25 * (u[i - 1] + u[i + 1] + r[i]);
  }
}

void MgApp::build_iteration(task::GraphBuilder& builder,
                            std::size_t iteration) {
  (void)iteration;
  const std::size_t levels = config_.levels;

  auto bands_at = [this](std::size_t level) {
    // Coarser levels get fewer tasks.
    std::size_t b = config_.bands >> level;
    return std::max<std::size_t>(b, 1);
  };

  auto smooth_group = [&](std::size_t level, const char* tag) {
    builder.begin_group(std::string(tag) + std::to_string(level));
    const std::size_t n = level_n(level);
    const std::size_t nb = bands_at(level);
    const std::uint64_t band = n / nb;
    for (std::size_t b = 0; b < nb; ++b) {
      task::Task t;
      t.label = tag;
      t.compute_seconds = compute_time(5.0 * static_cast<double>(band));
      t.accesses = {
          access(u_[level], task::AccessMode::ReadWrite,
                 traffic(3 * band, band, band * 8, 0.55, 0.10)),
          access(r_[level], task::AccessMode::Read,
                 traffic(band, 0, band * 8, 0.1, 0.0)),
      };
      if (real_) {
        const std::size_t lo = band * b;
        const std::size_t hi = (b + 1 == nb) ? n : band * (b + 1);
        t.work = [this, level, lo, hi]() { smooth_band(level, lo, hi); };
      }
      builder.add_task(std::move(t));
    }
  };

  // ---- finest residual: r0 = v - A u0 ----
  {
    builder.begin_group("residual0");
    const std::size_t n = level_n(0);
    const std::size_t nb = bands_at(0);
    const std::uint64_t band = n / nb;
    for (std::size_t b = 0; b < nb; ++b) {
      task::Task t;
      t.label = "residual";
      t.compute_seconds = compute_time(5.0 * static_cast<double>(band));
      t.accesses = {
          access(v_, task::AccessMode::Read,
                 traffic(band, 0, band * 8, 0.1, 0.0)),
          access(u_[0], task::AccessMode::Read,
                 traffic(3 * band, 0, band * 8, 0.5, 0.0)),
          access(r_[0], task::AccessMode::Write,
                 traffic(0, band, band * 8, 0.1, 0.0)),
      };
      if (real_) {
        const std::size_t lo = band * b;
        const std::size_t hi = (b + 1 == nb) ? n : band * (b + 1);
        t.work = [this, lo, hi, n]() {
          const double* v = lvl(v_);
          const double* u = lvl(u_[0]);
          double* r = lvl(r_[0]);
          for (std::size_t i = std::max<std::size_t>(lo, 1);
               i < std::min(hi, n - 1); ++i) {
            r[i] = v[i] - (2.0 * u[i] - u[i - 1] - u[i + 1]);
          }
        };
      }
      builder.add_task(std::move(t));
    }
  }

  // ---- down sweep: smooth, restrict ----
  for (std::size_t l = 0; l + 1 < levels; ++l) {
    smooth_group(l, "smooth_dn");
    builder.begin_group("restrict" + std::to_string(l));
    const std::size_t nc = level_n(l + 1);
    const std::size_t nb = bands_at(l + 1);
    const std::uint64_t band = nc / nb;
    for (std::size_t b = 0; b < nb; ++b) {
      task::Task t;
      t.label = "restrict";
      t.compute_seconds = compute_time(4.0 * static_cast<double>(band));
      t.accesses = {
          access(r_[l], task::AccessMode::Read,
                 traffic(2 * band, 0, 2 * band * 8, 0.3, 0.0)),
          access(r_[l + 1], task::AccessMode::Write,
                 traffic(0, band, band * 8, 0.1, 0.0)),
          access(u_[l + 1], task::AccessMode::Write,
                 traffic(0, band, band * 8, 0.1, 0.0)),
      };
      if (real_) {
        const std::size_t lo = band * b;
        const std::size_t hi = (b + 1 == nb) ? nc : band * (b + 1);
        t.work = [this, l, lo, hi, nc]() {
          const double* rf = lvl(r_[l]);
          double* rc = lvl(r_[l + 1]);
          double* uc = lvl(u_[l + 1]);
          for (std::size_t i = std::max<std::size_t>(lo, 1);
               i < std::min(hi, nc - 1); ++i) {
            rc[i] = 0.25 * (rf[2 * i - 1] + 2.0 * rf[2 * i] + rf[2 * i + 1]);
            uc[i] = 0.0;
          }
        };
      }
      builder.add_task(std::move(t));
    }
  }

  // ---- coarsest solve: a few smoothing passes ----
  smooth_group(levels - 1, "coarse");

  // ---- up sweep: prolongate, smooth ----
  for (std::size_t l = levels - 1; l-- > 0;) {
    builder.begin_group("prolong" + std::to_string(l));
    const std::size_t nc = level_n(l + 1);
    const std::size_t nb = bands_at(l + 1);
    const std::uint64_t band = nc / nb;
    for (std::size_t b = 0; b < nb; ++b) {
      task::Task t;
      t.label = "prolong";
      t.compute_seconds = compute_time(4.0 * static_cast<double>(band));
      t.accesses = {
          access(u_[l + 1], task::AccessMode::Read,
                 traffic(band, 0, band * 8, 0.3, 0.0)),
          access(u_[l], task::AccessMode::ReadWrite,
                 traffic(2 * band, 2 * band, 2 * band * 8, 0.3, 0.0)),
      };
      if (real_) {
        const std::size_t lo = band * b;
        const std::size_t hi = (b + 1 == nb) ? nc : band * (b + 1);
        t.work = [this, l, lo, hi, nc]() {
          const double* uc = lvl(u_[l + 1]);
          double* uf = lvl(u_[l]);
          for (std::size_t i = std::max<std::size_t>(lo, 1);
               i < std::min(hi, nc - 1); ++i) {
            uf[2 * i] += uc[i];
            uf[2 * i + 1] += 0.5 * (uc[i] + (i + 1 < nc ? uc[i + 1] : 0.0));
          }
        };
      }
      builder.add_task(std::move(t));
    }
    smooth_group(l, "smooth_up");
  }
}

bool MgApp::verify(hms::ObjectRegistry& registry) {
  if (!real_) return true;
  (void)registry;
  // The V-cycles must keep the solution finite and reduce the finest
  // residual well below the RHS norm.
  const std::size_t n = level_n(0);
  const double* u = lvl(u_[0]);
  const double* v = lvl(v_);
  double res = 0.0;
  double rhs = 0.0;
  for (std::size_t i = 1; i + 1 < n; ++i) {
    if (!std::isfinite(u[i])) return false;
    const double r = v[i] - (2.0 * u[i] - u[i - 1] - u[i + 1]);
    res += r * r;
    rhs += v[i] * v[i];
  }
  return res < rhs;  // multigrid strictly reduces the residual
}

}  // namespace tahoe::workloads
