#include "workloads/common.hpp"

#include "common/assert.hpp"
#include "workloads/cg.hpp"
#include "workloads/cholesky.hpp"
#include "workloads/ft.hpp"
#include "workloads/heat.hpp"
#include "workloads/lu.hpp"
#include "workloads/mg.hpp"
#include "workloads/nekproxy.hpp"
#include "workloads/sp.hpp"

namespace tahoe::workloads {

memsim::ObjectTraffic traffic(std::uint64_t loads, std::uint64_t stores,
                              std::uint64_t footprint, double locality,
                              double dep_frac, double spatial) {
  memsim::ObjectTraffic t;
  t.loads = loads;
  t.stores = stores;
  t.footprint = footprint;
  t.locality = locality;
  t.dep_frac = dep_frac;
  t.spatial = spatial;
  return t;
}

task::DataAccess access(hms::ObjectId obj, task::AccessMode mode,
                        const memsim::ObjectTraffic& t, std::size_t chunk) {
  task::DataAccess a;
  a.object = obj;
  a.chunk = chunk;
  a.mode = mode;
  a.traffic = t;
  return a;
}

std::unique_ptr<core::Application> make_workload(const std::string& name,
                                                 Scale scale) {
  if (name == "cg") return std::make_unique<CgApp>(CgApp::config_for(scale));
  if (name == "ft") return std::make_unique<FtApp>(FtApp::config_for(scale));
  if (name == "bt") {
    return std::make_unique<SpApp>(SpApp::config_for(scale, SpApp::Kind::BT));
  }
  if (name == "lu") return std::make_unique<LuApp>(LuApp::config_for(scale));
  if (name == "sp") {
    return std::make_unique<SpApp>(SpApp::config_for(scale, SpApp::Kind::SP));
  }
  if (name == "mg") return std::make_unique<MgApp>(MgApp::config_for(scale));
  if (name == "heat") {
    return std::make_unique<HeatApp>(HeatApp::config_for(scale));
  }
  if (name == "cholesky") {
    return std::make_unique<CholeskyApp>(CholeskyApp::config_for(scale));
  }
  if (name == "nekproxy") {
    return std::make_unique<NekProxyApp>(NekProxyApp::config_for(scale));
  }
  TAHOE_REQUIRE(false, "unknown workload '" + name + "'");
  return nullptr;
}

std::vector<std::string> workload_names() {
  return {"cg", "ft", "bt", "lu", "sp", "mg", "nekproxy"};
}

}  // namespace tahoe::workloads
