// SP / BT: ADI-style pentadiagonal (SP) and block-tridiagonal (BT)
// solver analogues.
//
// Reproduces the NPB SP/BT data-object structure the paper's placement
// study uses: `lhs` with serialized line recurrences (latency-sensitive),
// `in_buffer`/`out_buffer` with heavy streaming over a small footprint
// (bandwidth-sensitive), `rhs` with both characters, and the
// u/us/vs/ws/qs/rho_i/square/forcing field set. BT differs from SP by
// larger block work per line (more compute, deeper lhs recurrences).
#pragma once

#include "core/application.hpp"
#include "workloads/common.hpp"

namespace tahoe::workloads {

class SpApp : public core::Application {
 public:
  enum class Kind { SP, BT };

  struct Config {
    Kind kind = Kind::SP;
    std::size_t grid = 36;       ///< n: conceptual n^3 grid
    std::size_t blocks = 8;      ///< tasks per group (plane bands)
    std::size_t iterations = 12;
  };
  static Config config_for(Scale scale, Kind kind);

  explicit SpApp(Config config) : config_(config) {}

  std::string name() const override {
    return config_.kind == Kind::SP ? "sp" : "bt";
  }
  std::size_t iterations() const override { return config_.iterations; }
  void setup(hms::ObjectRegistry& registry,
             const hms::ChunkingPolicy& chunking) override;
  void build_iteration(task::GraphBuilder& builder,
                       std::size_t iteration) override;
  bool verify(hms::ObjectRegistry& registry) override;

  const Config& config() const noexcept { return config_; }

  /// Object handles exposed for the per-object placement-impact bench
  /// (the paper's Fig. 4 experiment).
  hms::ObjectId lhs() const noexcept { return lhs_; }
  hms::ObjectId rhs() const noexcept { return rhs_; }
  hms::ObjectId in_buffer() const noexcept { return in_buffer_; }
  hms::ObjectId out_buffer() const noexcept { return out_buffer_; }

 private:
  void solve_group(task::GraphBuilder& builder, const char* label);

  Config config_;
  hms::ObjectRegistry* registry_ = nullptr;
  bool real_ = false;
  std::size_t cells_ = 0;  ///< n^3

  hms::ObjectId u_ = hms::kInvalidObject;
  hms::ObjectId rhs_ = hms::kInvalidObject;
  hms::ObjectId forcing_ = hms::kInvalidObject;
  hms::ObjectId lhs_ = hms::kInvalidObject;
  hms::ObjectId us_ = hms::kInvalidObject;
  hms::ObjectId vs_ = hms::kInvalidObject;
  hms::ObjectId ws_ = hms::kInvalidObject;
  hms::ObjectId qs_ = hms::kInvalidObject;
  hms::ObjectId rho_i_ = hms::kInvalidObject;
  hms::ObjectId square_ = hms::kInvalidObject;
  hms::ObjectId in_buffer_ = hms::kInvalidObject;
  hms::ObjectId out_buffer_ = hms::kInvalidObject;

  double* arr(hms::ObjectId id) const;
};

}  // namespace tahoe::workloads
