// CG: conjugate gradient with a CSR sparse matrix (NPB-CG analogue).
//
// Data objects mirror the benchmark's target objects: the matrix (a,
// colidx, rowstr), the vectors (x, z, p, q, r) and small scalar/scratch
// areas. The SpMV gather through `p` is the latency-leaning access; the
// matrix streams are bandwidth-leaning. Real kernels implement textbook
// CG on a diagonally dominant SPD matrix, so convergence is verifiable.
#pragma once

#include "core/application.hpp"
#include "workloads/common.hpp"

namespace tahoe::workloads {

class CgApp : public core::Application {
 public:
  struct Config {
    std::size_t rows = 4096;
    std::size_t nnz_per_row = 8;   ///< including the diagonal
    std::size_t blocks = 4;        ///< row blocks = tasks per group
    std::size_t iterations = 8;
  };
  static Config config_for(Scale scale);

  explicit CgApp(Config config) : config_(config) {}

  std::string name() const override { return "cg"; }
  std::size_t iterations() const override { return config_.iterations; }
  void setup(hms::ObjectRegistry& registry,
             const hms::ChunkingPolicy& chunking) override;
  void build_iteration(task::GraphBuilder& builder,
                       std::size_t iteration) override;
  bool verify(hms::ObjectRegistry& registry) override;

  const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  hms::ObjectRegistry* registry_ = nullptr;
  bool real_ = false;

  hms::ObjectId a_ = hms::kInvalidObject;
  hms::ObjectId colidx_ = hms::kInvalidObject;
  hms::ObjectId rowstr_ = hms::kInvalidObject;
  hms::ObjectId x_ = hms::kInvalidObject;
  hms::ObjectId z_ = hms::kInvalidObject;
  hms::ObjectId p_ = hms::kInvalidObject;
  hms::ObjectId q_ = hms::kInvalidObject;
  hms::ObjectId r_ = hms::kInvalidObject;
  hms::ObjectId scratch_ = hms::kInvalidObject;  ///< per-block dot partials
  hms::ObjectId scalars_ = hms::kInvalidObject;  ///< alpha/beta/rho slots

  double initial_rho_ = 0.0;

  double* vec(hms::ObjectId id) const;
  double* scratch_slot(std::size_t block) const;
};

}  // namespace tahoe::workloads
