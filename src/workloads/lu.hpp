// LU: task-parallel blocked dense LU factorization (no pivoting).
//
// The canonical task-parallel kernel: per step k, a diagonal-block factor
// task, then one panel-update task per trailing block column. The working
// matrix is a single large data object chunked by block column — the
// chunked-placement code path's flagship. Each iteration of the main loop
// re-factorizes (a time-stepping simulation re-assembling a similar
// system), restoring the matrix from a read-only master copy first.
#pragma once

#include "core/application.hpp"
#include "workloads/common.hpp"

namespace tahoe::workloads {

class LuApp : public core::Application {
 public:
  struct Config {
    std::size_t n = 96;        ///< matrix dimension
    std::size_t block = 24;    ///< block size (n % block == 0)
    std::size_t iterations = 6;
  };
  static Config config_for(Scale scale);

  explicit LuApp(Config config) : config_(config) {}

  std::string name() const override { return "lu"; }
  std::size_t iterations() const override { return config_.iterations; }
  void setup(hms::ObjectRegistry& registry,
             const hms::ChunkingPolicy& chunking) override;
  void build_iteration(task::GraphBuilder& builder,
                       std::size_t iteration) override;
  bool verify(hms::ObjectRegistry& registry) override;

  const Config& config() const noexcept { return config_; }

 private:
  std::size_t nblocks() const noexcept { return config_.n / config_.block; }
  /// Pointer to block column j of the working matrix (column-major slab
  /// of n x block doubles).
  double* col(std::size_t j) const;
  const double* col0(std::size_t j) const;

  Config config_;
  hms::ObjectRegistry* registry_ = nullptr;
  bool real_ = false;
  hms::ObjectId a0_ = hms::kInvalidObject;  ///< master copy (read-only)
  hms::ObjectId a_ = hms::kInvalidObject;   ///< working matrix (chunked)
};

}  // namespace tahoe::workloads
