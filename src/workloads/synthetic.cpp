#include "workloads/synthetic.hpp"

#include "common/units.hpp"

namespace tahoe::workloads {

void StreamApp::setup(hms::ObjectRegistry& registry,
                      const hms::ChunkingPolicy& chunking) {
  (void)chunking;
  src_ = registry.create("stream_src", config_.bytes, registry.capacity_tier());
  dst_ = registry.create("stream_dst", config_.bytes, registry.capacity_tier());
  registry.get_mutable(src_).static_ref_estimate =
      static_cast<double>(config_.bytes / 8 * config_.iterations);
  registry.get_mutable(dst_).static_ref_estimate =
      static_cast<double>(config_.bytes / 8 * config_.iterations);
}

void StreamApp::build_iteration(task::GraphBuilder& builder,
                                std::size_t iter) {
  (void)iter;
  const std::uint64_t elems = config_.bytes / 8 / config_.tasks;
  builder.begin_group("stream");
  for (std::size_t i = 0; i < config_.tasks; ++i) {
    task::Task t;
    t.label = "stream";
    t.compute_seconds = compute_time(static_cast<double>(elems));
    t.accesses = {
        access(src_, task::AccessMode::Read,
               traffic(elems, 0, elems * 8, 0.0, 0.0)),
        access(dst_, task::AccessMode::Write,
               traffic(0, elems, elems * 8, 0.0, 0.0)),
    };
    builder.add_task(std::move(t));
  }
}

void ChaseApp::setup(hms::ObjectRegistry& registry,
                     const hms::ChunkingPolicy& chunking) {
  (void)chunking;
  ring_ = registry.create("chase_ring", config_.bytes, registry.capacity_tier());
  registry.get_mutable(ring_).static_ref_estimate =
      static_cast<double>(config_.bytes / kCacheLine * config_.iterations);
}

void ChaseApp::build_iteration(task::GraphBuilder& builder, std::size_t iter) {
  (void)iter;
  const std::uint64_t hops = config_.bytes / kCacheLine;
  builder.begin_group("chase");
  task::Task t;
  t.label = "chase";
  t.compute_seconds = 0.0;
  t.accesses = {access(ring_, task::AccessMode::Read,
                       traffic(hops, 0, config_.bytes, 0.0, 1.0, 0.0))};
  builder.add_task(std::move(t));
}

void DriftApp::setup(hms::ObjectRegistry& registry,
                     const hms::ChunkingPolicy& chunking) {
  (void)chunking;
  a_ = registry.create("drift_a", config_.bytes, registry.capacity_tier());
  b_ = registry.create("drift_b", config_.bytes, registry.capacity_tier());
  // Static analysis cannot see the drift; both look equally important.
  registry.get_mutable(a_).static_ref_estimate = 0.0;
  registry.get_mutable(b_).static_ref_estimate = 0.0;
}

void DriftApp::build_iteration(task::GraphBuilder& builder, std::size_t iter) {
  const bool drifted = iter >= config_.drift_at;
  const hms::ObjectId hot = drifted ? b_ : a_;
  const hms::ObjectId cold = drifted ? a_ : b_;
  const std::uint64_t elems = config_.bytes / 8 / config_.tasks;
  builder.begin_group("mix");
  for (std::size_t i = 0; i < config_.tasks; ++i) {
    task::Task t;
    t.label = "mix";
    t.compute_seconds = compute_time(static_cast<double>(elems));
    t.accesses = {
        access(hot, task::AccessMode::ReadWrite,
               traffic(8 * elems, elems, elems * 8, 0.1, 0.0)),
        access(cold, task::AccessMode::Read,
               traffic(elems / 8, 0, elems * 8, 0.1, 0.0)),
    };
    builder.add_task(std::move(t));
  }
}

}  // namespace tahoe::workloads
