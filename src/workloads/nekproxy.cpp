#include "workloads/nekproxy.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace tahoe::workloads {
namespace {

// Field indices.
constexpr std::size_t kVx = 0, kVy = 1, kVz = 2;
constexpr std::size_t kVxp = 3, kVyp = 4, kVzp = 5;
constexpr std::size_t kPr = 6, kT = 7;
constexpr std::size_t kS0 = 8;  // kS0..kS5 scratch

}  // namespace

NekProxyApp::Config NekProxyApp::config_for(Scale scale) {
  Config c;
  if (scale == Scale::Test) {
    c.points = 1 << 13;
    c.blocks = 4;
    c.iterations = 8;
    c.drift_at = 0;
  } else {
    c.points = 4u << 20;  // 32 MiB per field
    c.blocks = 16;
    c.iterations = 15;
    c.drift_at = 0;
  }
  return c;
}

void NekProxyApp::setup(hms::ObjectRegistry& registry,
                        const hms::ChunkingPolicy& chunking) {
  (void)chunking;
  registry_ = &registry;
  real_ = registry.arena(registry.capacity_tier()).backing() == hms::Backing::Real;
  const std::uint64_t fbytes = config_.points * sizeof(double);
  const double iters = static_cast<double>(config_.iterations);
  const auto dp = static_cast<double>(config_.points);

  static const char* kGeoNames[12] = {"xm", "ym", "zm", "jac", "mass", "gxx",
                                      "gyy", "gzz", "gxy", "gxz", "gyz",
                                      "bm"};
  geometry_.clear();
  for (const char* name : kGeoNames) {
    const hms::ObjectId id = registry.create(name, fbytes, registry.capacity_tier());
    registry.get_mutable(id).static_ref_estimate = 4 * dp * iters;
    geometry_.push_back(id);
  }

  static const char* kFieldNames[14] = {"vx", "vy", "vz", "vxp", "vyp",
                                        "vzp", "pr", "t", "s0", "s1",
                                        "s2", "s3", "s4", "s5"};
  fields_.clear();
  for (const char* name : kFieldNames) {
    const hms::ObjectId id = registry.create(name, fbytes, registry.capacity_tier());
    registry.get_mutable(id).static_ref_estimate = 10 * dp * iters;
    fields_.push_back(id);
  }

  misc_.clear();
  const std::uint64_t mbytes = fbytes / 8;
  for (std::size_t i = 0; i < 22; ++i) {
    const hms::ObjectId id =
        registry.create("w" + std::to_string(i), mbytes, registry.capacity_tier());
    registry.get_mutable(id).static_ref_estimate = dp / 4 * iters;
    misc_.push_back(id);
  }

  if (!real_) return;
  for (const hms::ObjectId id : fields_) {
    double* f = field(id);
    for (std::size_t i = 0; i < config_.points; ++i) {
      f[i] = 0.01 * std::sin(0.001 * static_cast<double>(i + id));
    }
  }
  for (const hms::ObjectId id : geometry_) {
    double* f = field(id);
    for (std::size_t i = 0; i < config_.points; ++i) f[i] = 1.0;
  }
}

double* NekProxyApp::field(hms::ObjectId id) const {
  return reinterpret_cast<double*>(registry_->chunk_ptr(id));
}

void NekProxyApp::build_iteration(task::GraphBuilder& builder,
                                  std::size_t iteration) {
  const std::size_t nb = config_.blocks;
  const std::uint64_t pts = config_.points / nb;
  const std::uint64_t fb = pts * 8;
  const bool drifted =
      config_.drift_at != 0 && iteration >= config_.drift_at;
  const std::uint64_t adv_scale = drifted ? 3 : 1;

  // Helper: one group of `nb` elementwise tasks with the given accesses
  // and a real kernel applying a bounded update to `out`.
  auto group = [&](const std::string& name,
                   std::vector<task::DataAccess> accesses,
                   hms::ObjectId out_field, double flops_per_pt) {
    builder.begin_group(name);
    for (std::size_t b = 0; b < nb; ++b) {
      task::Task t;
      t.label = name;
      t.compute_seconds =
          compute_time(flops_per_pt * static_cast<double>(pts));
      t.accesses = accesses;
      if (real_ && out_field != hms::kInvalidObject) {
        const std::size_t lo = pts * b;
        const std::size_t hi = pts * (b + 1);
        t.work = [this, out_field, lo, hi]() {
          double* f = field(out_field);
          for (std::size_t i = lo; i < hi; ++i) {
            f[i] = 0.99 * f[i] + 1e-6;
          }
        };
      }
      builder.add_task(std::move(t));
    }
  };

  const auto R = task::AccessMode::Read;
  const auto W = task::AccessMode::Write;
  const auto RW = task::AccessMode::ReadWrite;

  // ---- advection: semi-Lagrangian gathers (latency-leaning) ----
  const hms::ObjectId vel[3] = {fields_[kVx], fields_[kVy], fields_[kVz]};
  const hms::ObjectId velp[3] = {fields_[kVxp], fields_[kVyp], fields_[kVzp]};
  static const char* kAdvNames[3] = {"advect_x", "advect_y", "advect_z"};
  for (std::size_t d = 0; d < 3; ++d) {
    group(kAdvNames[d],
          {
              access(velp[d], R,
                     traffic(adv_scale * 4 * pts, 0, config_.points * 8, 0.45,
                             0.40, 0.15)),
              access(geometry_[0 + d], R, traffic(pts, 0, fb, 0.2, 0.0)),
              access(geometry_[3], R, traffic(pts, 0, fb, 0.2, 0.0)),  // jac
              access(misc_[d], R, traffic(pts / 4, 0, fb / 8, 0.5, 0.0)),
              access(vel[d], W, traffic(0, pts, fb, 0.1, 0.0)),
          },
          vel[d], 12.0);
  }

  // ---- diffusion: stencil over velocity (bandwidth+reuse) ----
  group("diffuse",
        {
            access(vel[0], RW, traffic(5 * pts, pts, fb, 0.6, 0.05)),
            access(vel[1], RW, traffic(5 * pts, pts, fb, 0.6, 0.05)),
            access(vel[2], RW, traffic(5 * pts, pts, fb, 0.6, 0.05)),
            access(geometry_[4], R, traffic(pts, 0, fb, 0.2, 0.0)),  // mass
            access(geometry_[5], R, traffic(pts, 0, fb, 0.2, 0.0)),
            access(misc_[3], R, traffic(pts / 4, 0, fb / 8, 0.5, 0.0)),
        },
        fields_[kVx], 20.0);

  // ---- pressure RHS ----
  group("pr_rhs",
        {
            access(vel[0], R, traffic(pts, 0, fb, 0.15, 0.0)),
            access(vel[1], R, traffic(pts, 0, fb, 0.15, 0.0)),
            access(vel[2], R, traffic(pts, 0, fb, 0.15, 0.0)),
            access(fields_[kS0], W, traffic(0, pts, fb, 0.1, 0.0)),
            access(misc_[4], R, traffic(pts / 4, 0, fb / 8, 0.5, 0.0)),
        },
        fields_[kS0], 8.0);

  // ---- pressure solve: three inner sweeps, each with its own hot set ----
  for (std::size_t s = 0; s < 3; ++s) {
    group("pr_solve_" + std::to_string(s),
          {
              access(fields_[kPr], RW,
                     traffic(6 * pts, 2 * pts, config_.points * 8, 0.35,
                             0.30)),
              access(fields_[kS0], R, traffic(pts, 0, fb, 0.2, 0.0)),
              access(fields_[kS0 + 1 + s], RW,
                     traffic(2 * pts, pts, fb, 0.3, 0.1)),
              access(geometry_[6 + s], R, traffic(2 * pts, 0, fb, 0.25, 0.0)),
              access(misc_[5 + 2 * s], R,
                     traffic(pts / 2, 0, fb / 8, 0.5, 0.0)),
              access(misc_[6 + 2 * s], R,
                     traffic(pts / 2, 0, fb / 8, 0.5, 0.0)),
          },
          fields_[kPr], 15.0);
  }

  // ---- projection ----
  group("project",
        {
            access(fields_[kPr], R, traffic(2 * pts, 0, fb, 0.3, 0.1)),
            access(vel[0], RW, traffic(pts, pts, fb, 0.2, 0.0)),
            access(vel[1], RW, traffic(pts, pts, fb, 0.2, 0.0)),
            access(vel[2], RW, traffic(pts, pts, fb, 0.2, 0.0)),
            access(geometry_[3], R, traffic(pts, 0, fb, 0.2, 0.0)),
            access(misc_[11], R, traffic(pts / 4, 0, fb / 8, 0.5, 0.0)),
        },
        fields_[kVx], 10.0);

  // ---- thermal transport ----
  group("thermal",
        {
            access(fields_[kT], RW, traffic(5 * pts, pts, fb, 0.5, 0.1)),
            access(vel[0], R, traffic(pts, 0, fb, 0.2, 0.0)),
            access(geometry_[4], R, traffic(pts, 0, fb, 0.2, 0.0)),
            access(misc_[12], R, traffic(pts / 4, 0, fb / 8, 0.5, 0.0)),
            access(misc_[13], R, traffic(pts / 4, 0, fb / 8, 0.5, 0.0)),
        },
        fields_[kT], 14.0);

  // ---- spectral filter: coefficient-heavy streaming ----
  {
    std::vector<task::DataAccess> acc = {
        access(vel[0], RW, traffic(2 * pts, pts, fb, 0.1, 0.0)),
        access(vel[1], RW, traffic(2 * pts, pts, fb, 0.1, 0.0)),
        access(vel[2], RW, traffic(2 * pts, pts, fb, 0.1, 0.0)),
    };
    for (std::size_t w = 14; w < 22; ++w) {
      acc.push_back(
          access(misc_[w], R, traffic(pts / 2, 0, fb / 8, 0.4, 0.0)));
    }
    group("filter", acc, fields_[kVy], 18.0);
  }

  // ---- save previous velocities ----
  {
    std::vector<task::DataAccess> acc;
    for (std::size_t d = 0; d < 3; ++d) {
      acc.push_back(access(vel[d], R, traffic(pts, 0, fb, 0.05, 0.0)));
      acc.push_back(access(velp[d], W, traffic(0, pts, fb, 0.05, 0.0)));
    }
    group("copy_prev", acc, fields_[kVxp], 2.0);
  }
}

bool NekProxyApp::verify(hms::ObjectRegistry& registry) {
  if (!real_) return true;
  (void)registry;
  for (const hms::ObjectId id : fields_) {
    const double* f = field(id);
    for (std::size_t i = 0; i < config_.points; i += 997) {
      if (!std::isfinite(f[i])) return false;
    }
  }
  return true;
}

}  // namespace tahoe::workloads
