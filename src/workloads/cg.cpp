#include "workloads/cg.hpp"

#include <cmath>
#include <cstring>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace tahoe::workloads {
namespace {

// Scalar slots.
constexpr std::size_t kSlotD = 0;       // p . q
constexpr std::size_t kSlotRho = 1;     // r . r (current)
constexpr std::size_t kSlotRhoNew = 2;  // r . r (next)
constexpr std::size_t kScalars = 8;

}  // namespace

CgApp::Config CgApp::config_for(Scale scale) {
  Config c;
  if (scale == Scale::Test) {
    c.rows = 2048;
    c.nnz_per_row = 8;
    c.blocks = 4;
    c.iterations = 8;
  } else {
    c.rows = 3u << 20;  // ~3.1M rows
    c.nnz_per_row = 16;
    c.blocks = 32;
    c.iterations = 15;
  }
  return c;
}

void CgApp::setup(hms::ObjectRegistry& registry,
                  const hms::ChunkingPolicy& chunking) {
  (void)chunking;  // CG objects are irregular (CSR); never partitioned
  registry_ = &registry;
  real_ = registry.arena(registry.capacity_tier()).backing() == hms::Backing::Real;
  const std::size_t n = config_.rows;
  const std::size_t nnz = n * config_.nnz_per_row;

  a_ = registry.create("a", nnz * sizeof(double), registry.capacity_tier());
  colidx_ = registry.create("colidx", nnz * sizeof(std::uint32_t), registry.capacity_tier());
  rowstr_ = registry.create("rowstr", (n + 1) * sizeof(std::uint64_t),
                            registry.capacity_tier());
  x_ = registry.create("x", n * sizeof(double), registry.capacity_tier());
  z_ = registry.create("z", n * sizeof(double), registry.capacity_tier());
  p_ = registry.create("p", n * sizeof(double), registry.capacity_tier());
  q_ = registry.create("q", n * sizeof(double), registry.capacity_tier());
  r_ = registry.create("r", n * sizeof(double), registry.capacity_tier());
  scratch_ = registry.create("scratch", config_.blocks * kCacheLine,
                             registry.capacity_tier(), config_.blocks);
  scalars_ = registry.create("scalars", kScalars * sizeof(double),
                             registry.capacity_tier());

  // Static reference estimates (compiler-analysis stand-in): references per
  // full run, proportional to the loop bounds.
  const double iters = static_cast<double>(config_.iterations);
  const auto dn = static_cast<double>(n);
  const auto dnnz = static_cast<double>(nnz);
  registry.get_mutable(a_).static_ref_estimate = dnnz * iters;
  registry.get_mutable(colidx_).static_ref_estimate = dnnz * iters;
  registry.get_mutable(rowstr_).static_ref_estimate = dn * iters;
  registry.get_mutable(p_).static_ref_estimate = (dnnz + 3 * dn) * iters;
  registry.get_mutable(q_).static_ref_estimate = 3 * dn * iters;
  registry.get_mutable(r_).static_ref_estimate = 4 * dn * iters;
  registry.get_mutable(z_).static_ref_estimate = dn * iters;
  registry.get_mutable(x_).static_ref_estimate = 0.0;  // touched rarely

  if (!real_) {
    initial_rho_ = static_cast<double>(n);
    return;
  }

  // Diagonally dominant SPD-ish matrix: diag = 2, off-diagonals -1/k.
  auto* av = reinterpret_cast<double*>(registry.chunk_ptr(a_));
  auto* ci = reinterpret_cast<std::uint32_t*>(registry.chunk_ptr(colidx_));
  auto* rs = reinterpret_cast<std::uint64_t*>(registry.chunk_ptr(rowstr_));
  Rng rng(0xc6c6c6ULL);
  const std::size_t off = config_.nnz_per_row - 1;
  std::size_t pos = 0;
  for (std::size_t i = 0; i < n; ++i) {
    rs[i] = pos;
    av[pos] = 2.0;
    ci[pos] = static_cast<std::uint32_t>(i);
    ++pos;
    for (std::size_t k = 0; k < off; ++k) {
      av[pos] = -1.0 / (static_cast<double>(off) + 1.0);
      ci[pos] = static_cast<std::uint32_t>(rng.next_below(n));
      ++pos;
    }
  }
  rs[n] = pos;

  // CG initial state: x = 0, r = b = 1, p = r, rho = r.r = n.
  double* xv = vec(x_);
  double* rv = vec(r_);
  double* pv = vec(p_);
  double* zv = vec(z_);
  for (std::size_t i = 0; i < n; ++i) {
    xv[i] = 0.0;
    zv[i] = 0.0;
    rv[i] = 1.0;
    pv[i] = 1.0;
  }
  auto* sc = reinterpret_cast<double*>(registry.chunk_ptr(scalars_));
  sc[kSlotRho] = static_cast<double>(n);
  initial_rho_ = sc[kSlotRho];
}

double* CgApp::vec(hms::ObjectId id) const {
  return reinterpret_cast<double*>(registry_->chunk_ptr(id));
}

double* CgApp::scratch_slot(std::size_t block) const {
  return reinterpret_cast<double*>(registry_->chunk_ptr(scratch_, block));
}

void CgApp::build_iteration(task::GraphBuilder& builder,
                            std::size_t iteration) {
  (void)iteration;  // CG is perfectly stationary across iterations
  const std::size_t n = config_.rows;
  const std::size_t nb = config_.blocks;
  const std::uint64_t nnz_blk = n / nb * config_.nnz_per_row;
  const std::uint64_t rows_blk = n / nb;
  const bool real = real_;
  hms::ObjectRegistry* reg = registry_;

  auto row_range = [n, nb](std::size_t b) {
    const std::size_t lo = n / nb * b;
    const std::size_t hi = (b + 1 == nb) ? n : n / nb * (b + 1);
    return std::pair<std::size_t, std::size_t>{lo, hi};
  };

  // ---- group 0: q = A * p ----
  builder.begin_group("spmv");
  for (std::size_t b = 0; b < nb; ++b) {
    task::Task t;
    t.label = "spmv";
    t.compute_seconds = compute_time(2.0 * static_cast<double>(nnz_blk));
    t.accesses = {
        access(a_, task::AccessMode::Read,
               traffic(nnz_blk, 0, nnz_blk * 8, 0.05, 0.0)),
        access(colidx_, task::AccessMode::Read,
               traffic(nnz_blk, 0, nnz_blk * 4, 0.05, 0.0)),
        access(rowstr_, task::AccessMode::Read,
               traffic(rows_blk, 0, rows_blk * 8, 0.2, 0.0)),
        // The gather: indices span the whole vector; partially dependent,
        // no spatial adjacency (random columns).
        access(p_, task::AccessMode::Read,
               traffic(nnz_blk, 0, n * 8, 0.5, 0.10, 0.05)),
        access(q_, task::AccessMode::Write,
               traffic(0, rows_blk, rows_blk * 8, 0.0, 0.0)),
    };
    if (real) {
      auto [lo, hi] = row_range(b);
      t.work = [this, reg, lo, hi]() {
        const auto* av = reinterpret_cast<const double*>(reg->chunk_ptr(a_));
        const auto* ci =
            reinterpret_cast<const std::uint32_t*>(reg->chunk_ptr(colidx_));
        const auto* rs =
            reinterpret_cast<const std::uint64_t*>(reg->chunk_ptr(rowstr_));
        const double* pv = vec(p_);
        double* qv = vec(q_);
        for (std::size_t i = lo; i < hi; ++i) {
          double sum = 0.0;
          for (std::uint64_t k = rs[i]; k < rs[i + 1]; ++k) {
            sum += av[k] * pv[ci[k]];
          }
          qv[i] = sum;
        }
      };
    }
    builder.add_task(std::move(t));
  }

  // ---- group 1: d = p . q ----
  builder.begin_group("dot_pq");
  for (std::size_t b = 0; b < nb; ++b) {
    task::Task t;
    t.label = "dot_pq";
    t.compute_seconds = compute_time(2.0 * static_cast<double>(rows_blk));
    t.accesses = {
        access(p_, task::AccessMode::Read,
               traffic(rows_blk, 0, rows_blk * 8, 0.1, 0.0)),
        access(q_, task::AccessMode::Read,
               traffic(rows_blk, 0, rows_blk * 8, 0.1, 0.0)),
        access(scratch_, task::AccessMode::Write, traffic(0, 1, 64, 0.9, 0.0),
               b),
    };
    if (real) {
      auto [lo, hi] = row_range(b);
      t.work = [this, lo, hi, b]() {
        const double* pv = vec(p_);
        const double* qv = vec(q_);
        double sum = 0.0;
        for (std::size_t i = lo; i < hi; ++i) sum += pv[i] * qv[i];
        *scratch_slot(b) = sum;
      };
    }
    builder.add_task(std::move(t));
  }
  {
    task::Task t;
    t.label = "reduce_d";
    t.compute_seconds = compute_time(static_cast<double>(nb));
    t.accesses = {
        access(scratch_, task::AccessMode::Read,
               traffic(nb, 0, nb * 64, 0.9, 0.0), task::kAllChunks),
        access(scalars_, task::AccessMode::ReadWrite,
               traffic(2, 2, 64, 0.9, 0.0)),
    };
    if (real) {
      t.work = [this, nb]() {
        double d = 0.0;
        for (std::size_t b = 0; b < nb; ++b) d += *scratch_slot(b);
        auto* sc = reinterpret_cast<double*>(registry_->chunk_ptr(scalars_));
        sc[kSlotD] = d;
      };
    }
    builder.add_task(std::move(t));
  }

  // ---- group 2: z += alpha p ; r -= alpha q ----
  builder.begin_group("axpy_zr");
  for (std::size_t b = 0; b < nb; ++b) {
    task::Task t;
    t.label = "axpy_zr";
    t.compute_seconds = compute_time(4.0 * static_cast<double>(rows_blk));
    t.accesses = {
        access(scalars_, task::AccessMode::Read, traffic(2, 0, 64, 0.9, 0.0)),
        access(p_, task::AccessMode::Read,
               traffic(rows_blk, 0, rows_blk * 8, 0.1, 0.0)),
        access(q_, task::AccessMode::Read,
               traffic(rows_blk, 0, rows_blk * 8, 0.1, 0.0)),
        access(z_, task::AccessMode::ReadWrite,
               traffic(rows_blk, rows_blk, rows_blk * 8, 0.1, 0.0)),
        access(r_, task::AccessMode::ReadWrite,
               traffic(rows_blk, rows_blk, rows_blk * 8, 0.1, 0.0)),
    };
    if (real) {
      auto [lo, hi] = row_range(b);
      t.work = [this, lo, hi]() {
        const auto* sc =
            reinterpret_cast<const double*>(registry_->chunk_ptr(scalars_));
        const double alpha =
            sc[kSlotD] != 0.0 ? sc[kSlotRho] / sc[kSlotD] : 0.0;
        const double* pv = vec(p_);
        const double* qv = vec(q_);
        double* zv = vec(z_);
        double* rv = vec(r_);
        for (std::size_t i = lo; i < hi; ++i) {
          zv[i] += alpha * pv[i];
          rv[i] -= alpha * qv[i];
        }
      };
    }
    builder.add_task(std::move(t));
  }

  // ---- group 3: rho_new = r . r ----
  builder.begin_group("dot_rr");
  for (std::size_t b = 0; b < nb; ++b) {
    task::Task t;
    t.label = "dot_rr";
    t.compute_seconds = compute_time(2.0 * static_cast<double>(rows_blk));
    t.accesses = {
        access(r_, task::AccessMode::Read,
               traffic(rows_blk, 0, rows_blk * 8, 0.1, 0.0)),
        access(scratch_, task::AccessMode::Write, traffic(0, 1, 64, 0.9, 0.0),
               b),
    };
    if (real) {
      auto [lo, hi] = row_range(b);
      t.work = [this, lo, hi, b]() {
        const double* rv = vec(r_);
        double sum = 0.0;
        for (std::size_t i = lo; i < hi; ++i) sum += rv[i] * rv[i];
        *scratch_slot(b) = sum;
      };
    }
    builder.add_task(std::move(t));
  }
  {
    task::Task t;
    t.label = "reduce_rho";
    t.compute_seconds = compute_time(static_cast<double>(nb));
    t.accesses = {
        access(scratch_, task::AccessMode::Read,
               traffic(nb, 0, nb * 64, 0.9, 0.0), task::kAllChunks),
        access(scalars_, task::AccessMode::ReadWrite,
               traffic(2, 2, 64, 0.9, 0.0)),
    };
    if (real) {
      t.work = [this, nb]() {
        double rho = 0.0;
        for (std::size_t b = 0; b < nb; ++b) rho += *scratch_slot(b);
        auto* sc = reinterpret_cast<double*>(registry_->chunk_ptr(scalars_));
        sc[kSlotRhoNew] = rho;
      };
    }
    builder.add_task(std::move(t));
  }

  // ---- group 4: p = r + beta p ; rho = rho_new ----
  builder.begin_group("update_p");
  for (std::size_t b = 0; b < nb; ++b) {
    task::Task t;
    t.label = "update_p";
    t.compute_seconds = compute_time(2.0 * static_cast<double>(rows_blk));
    t.accesses = {
        access(scalars_, task::AccessMode::Read, traffic(2, 0, 64, 0.9, 0.0)),
        access(r_, task::AccessMode::Read,
               traffic(rows_blk, 0, rows_blk * 8, 0.1, 0.0)),
        access(p_, task::AccessMode::ReadWrite,
               traffic(rows_blk, rows_blk, rows_blk * 8, 0.1, 0.0)),
    };
    if (real) {
      auto [lo, hi] = row_range(b);
      t.work = [this, lo, hi]() {
        const auto* sc =
            reinterpret_cast<const double*>(registry_->chunk_ptr(scalars_));
        const double beta =
            sc[kSlotRho] != 0.0 ? sc[kSlotRhoNew] / sc[kSlotRho] : 0.0;
        const double* rv = vec(r_);
        double* pv = vec(p_);
        for (std::size_t i = lo; i < hi; ++i) pv[i] = rv[i] + beta * pv[i];
      };
    }
    builder.add_task(std::move(t));
  }
  {
    // rho = rho_new, serialized after the updates by the scalars RW.
    task::Task t;
    t.label = "advance_rho";
    t.compute_seconds = 0.0;
    t.accesses = {access(scalars_, task::AccessMode::ReadWrite,
                         traffic(1, 1, 64, 0.9, 0.0))};
    if (real) {
      t.work = [this]() {
        auto* sc = reinterpret_cast<double*>(registry_->chunk_ptr(scalars_));
        sc[kSlotRho] = sc[kSlotRhoNew];
      };
    }
    builder.add_task(std::move(t));
  }
}

bool CgApp::verify(hms::ObjectRegistry& registry) {
  if (!real_) return true;
  const auto* sc =
      reinterpret_cast<const double*>(registry.chunk_ptr(scalars_));
  const double rho = sc[kSlotRho];
  // CG on an SPD system must reduce the residual substantially.
  return std::isfinite(rho) && rho < 0.5 * initial_rho_ && rho >= 0.0;
}

}  // namespace tahoe::workloads
