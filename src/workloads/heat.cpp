#include "workloads/heat.hpp"

#include <cmath>
#include <cstring>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace tahoe::workloads {

HeatApp::Config HeatApp::config_for(Scale scale) {
  Config c;
  if (scale == Scale::Test) {
    c.nx = 96;
    c.ny = 96;
    c.bands = 4;
    c.iterations = 12;
  } else {
    c.nx = 8192;
    c.ny = 8192;
    c.bands = 32;
    c.iterations = 15;
  }
  return c;
}

void HeatApp::setup(hms::ObjectRegistry& registry,
                    const hms::ChunkingPolicy& chunking) {
  (void)chunking;
  registry_ = &registry;
  real_ = registry.arena(registry.capacity_tier()).backing() == hms::Backing::Real;
  const std::uint64_t cells =
      static_cast<std::uint64_t>(config_.nx) * config_.ny;
  const std::uint64_t bytes = cells * sizeof(double);

  u0_ = registry.create("u0", bytes, registry.capacity_tier());
  u1_ = registry.create("u1", bytes, registry.capacity_tier());
  coeff_ = registry.create("coeff", bytes, registry.capacity_tier());
  partial_ = registry.create("partial", config_.bands * kCacheLine,
                             registry.capacity_tier(), config_.bands);
  scalars_ = registry.create("hscalars", 8 * sizeof(double), registry.capacity_tier());

  const double iters = static_cast<double>(config_.iterations);
  const auto dc = static_cast<double>(cells);
  registry.get_mutable(u0_).static_ref_estimate = 6 * dc * iters;
  registry.get_mutable(u1_).static_ref_estimate = 3 * dc * iters;
  registry.get_mutable(coeff_).static_ref_estimate = dc * iters;

  if (!real_) return;
  double* u0 = grid(u0_);
  double* u1 = grid(u1_);
  double* cf = grid(coeff_);
  const std::size_t nx = config_.nx;
  const std::size_t ny = config_.ny;
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < ny; ++j) {
      // Hot left edge, cold right edge, zero interior.
      const double v = (j == 0) ? 1.0 : (j == ny - 1 ? -1.0 : 0.0);
      u0[i * ny + j] = v;
      u1[i * ny + j] = v;
      cf[i * ny + j] = 0.8 + 0.2 * std::sin(0.01 * static_cast<double>(i + j));
    }
  }
}

double* HeatApp::grid(hms::ObjectId id) const {
  return reinterpret_cast<double*>(registry_->chunk_ptr(id));
}

void HeatApp::build_iteration(task::GraphBuilder& builder,
                              std::size_t iteration) {
  (void)iteration;
  const std::size_t nx = config_.nx;
  const std::size_t ny = config_.ny;
  const std::size_t nb = config_.bands;
  const std::uint64_t band_cells = static_cast<std::uint64_t>(nx) / nb * ny;

  auto band_rows = [this](std::size_t b) {
    const std::size_t lo = std::max<std::size_t>(1, config_.nx / config_.bands * b);
    const std::size_t hi = (b + 1 == config_.bands)
                               ? config_.nx - 1
                               : config_.nx / config_.bands * (b + 1);
    return std::pair<std::size_t, std::size_t>{lo, hi};
  };

  // ---- stencil: u1 = jacobi(u0, coeff) ----
  builder.begin_group("stencil");
  for (std::size_t b = 0; b < nb; ++b) {
    task::Task t;
    t.label = "stencil";
    t.compute_seconds = compute_time(6.0 * static_cast<double>(band_cells));
    t.accesses = {
        access(u0_, task::AccessMode::Read,
               traffic(5 * band_cells, 0, band_cells * 8, 0.6, 0.0)),
        access(coeff_, task::AccessMode::Read,
               traffic(band_cells, 0, band_cells * 8, 0.1, 0.0)),
        access(u1_, task::AccessMode::Write,
               traffic(0, band_cells, band_cells * 8, 0.1, 0.0)),
    };
    if (real_) {
      t.work = [this, b, ny, band_rows]() {
        const auto [lo, hi] = band_rows(b);
        const double* u0 = grid(u0_);
        const double* cf = grid(coeff_);
        double* u1 = grid(u1_);
        for (std::size_t i = lo; i < hi; ++i) {
          for (std::size_t j = 1; j + 1 < ny; ++j) {
            const std::size_t c = i * ny + j;
            u1[c] = u0[c] + 0.2 * cf[c] *
                                (u0[c - 1] + u0[c + 1] + u0[c - ny] +
                                 u0[c + ny] - 4.0 * u0[c]);
          }
        }
      };
    }
    builder.add_task(std::move(t));
  }

  // ---- residual reduction ----
  builder.begin_group("residual");
  for (std::size_t b = 0; b < nb; ++b) {
    task::Task t;
    t.label = "residual";
    t.compute_seconds = compute_time(3.0 * static_cast<double>(band_cells));
    t.accesses = {
        access(u0_, task::AccessMode::Read,
               traffic(band_cells, 0, band_cells * 8, 0.2, 0.0)),
        access(u1_, task::AccessMode::Read,
               traffic(band_cells, 0, band_cells * 8, 0.2, 0.0)),
        access(partial_, task::AccessMode::Write, traffic(0, 1, 64, 0.9, 0.0),
               b),
    };
    if (real_) {
      t.work = [this, b, ny, band_rows]() {
        const auto [lo, hi] = band_rows(b);
        const double* u0 = grid(u0_);
        const double* u1 = grid(u1_);
        double sum = 0.0;
        for (std::size_t i = lo; i < hi; ++i) {
          for (std::size_t j = 0; j < ny; ++j) {
            const double d = u1[i * ny + j] - u0[i * ny + j];
            sum += d * d;
          }
        }
        *reinterpret_cast<double*>(registry_->chunk_ptr(partial_, b)) = sum;
      };
    }
    builder.add_task(std::move(t));
  }
  {
    task::Task t;
    t.label = "reduce_residual";
    t.compute_seconds = compute_time(static_cast<double>(nb));
    t.accesses = {
        access(partial_, task::AccessMode::Read,
               traffic(nb, 0, nb * 64, 0.9, 0.0), task::kAllChunks),
        access(scalars_, task::AccessMode::Write, traffic(0, 1, 64, 0.9, 0.0)),
    };
    if (real_) {
      t.work = [this]() {
        double sum = 0.0;
        for (std::size_t b = 0; b < config_.bands; ++b) {
          sum += *reinterpret_cast<const double*>(
              registry_->chunk_ptr(partial_, b));
        }
        *reinterpret_cast<double*>(registry_->chunk_ptr(scalars_)) = sum;
      };
    }
    builder.add_task(std::move(t));
  }

  // ---- advance: u0 = u1 ----
  builder.begin_group("advance");
  for (std::size_t b = 0; b < nb; ++b) {
    task::Task t;
    t.label = "advance";
    t.compute_seconds = compute_time(static_cast<double>(band_cells));
    t.accesses = {
        access(u1_, task::AccessMode::Read,
               traffic(band_cells, 0, band_cells * 8, 0.1, 0.0)),
        access(u0_, task::AccessMode::Write,
               traffic(0, band_cells, band_cells * 8, 0.1, 0.0)),
    };
    if (real_) {
      t.work = [this, b, ny, band_rows]() {
        const auto [lo, hi] = band_rows(b);
        const double* u1 = grid(u1_);
        double* u0 = grid(u0_);
        std::memcpy(u0 + lo * ny, u1 + lo * ny, (hi - lo) * ny * sizeof(double));
      };
    }
    builder.add_task(std::move(t));
  }
}

double HeatApp::last_residual(hms::ObjectRegistry& registry) const {
  return *reinterpret_cast<const double*>(registry.chunk_ptr(scalars_));
}

bool HeatApp::verify(hms::ObjectRegistry& registry) {
  if (!real_) return true;
  // Jacobi on a fixed-boundary Laplace problem: the sweep-to-sweep change
  // must be finite and small after several iterations.
  const double res = last_residual(registry);
  if (!std::isfinite(res)) return false;
  const double cells =
      static_cast<double>(config_.nx) * static_cast<double>(config_.ny);
  return res < cells;  // diffusion contracts; residual far below footprint
}

}  // namespace tahoe::workloads
