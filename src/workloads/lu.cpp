#include "workloads/lu.hpp"

#include <cmath>
#include <cstring>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace {
// Dense panel/update kernels are vectorized and run near machine peak,
// unlike the scalar rate the generic workloads model.
constexpr double kDenseFlops = 64e9;
}  // namespace

namespace tahoe::workloads {

LuApp::Config LuApp::config_for(Scale scale) {
  Config c;
  if (scale == Scale::Test) {
    c.n = 96;
    c.block = 24;
    c.iterations = 4;
  } else {
    c.n = 16384;
    c.block = 512;  // 32 block columns of 64 MiB each
    c.iterations = 12;
  }
  return c;
}

void LuApp::setup(hms::ObjectRegistry& registry,
                  const hms::ChunkingPolicy& chunking) {
  (void)chunking;  // block columns are the algorithmic partition
  TAHOE_REQUIRE(config_.n % config_.block == 0, "block must divide n");
  registry_ = &registry;
  real_ = registry.arena(registry.capacity_tier()).backing() == hms::Backing::Real;
  const std::size_t k = nblocks();
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(config_.n) * config_.n * sizeof(double);

  a0_ = registry.create("a0", bytes, registry.capacity_tier(), k);
  a_ = registry.create("a", bytes, registry.capacity_tier(), k);

  const auto dn = static_cast<double>(config_.n);
  const double iters = static_cast<double>(config_.iterations);
  registry.get_mutable(a_).static_ref_estimate = dn * dn * dn / 2.0 * iters;
  registry.get_mutable(a0_).static_ref_estimate = dn * dn * iters;

  if (!real_) return;
  // Diagonally dominant matrix: safe for pivotless LU.
  Rng rng(0x1c0ffeeULL);
  const std::size_t n = config_.n;
  const std::size_t bs = config_.block;
  for (std::size_t j = 0; j < k; ++j) {
    auto* slab = reinterpret_cast<double*>(registry.chunk_ptr(a0_, j));
    for (std::size_t jj = 0; jj < bs; ++jj) {
      const std::size_t gcol = j * bs + jj;
      for (std::size_t i = 0; i < n; ++i) {
        double v = rng.next_double() - 0.5;
        if (i == gcol) v += static_cast<double>(n);
        slab[jj * n + i] = v;
      }
    }
  }
}

double* LuApp::col(std::size_t j) const {
  return reinterpret_cast<double*>(registry_->chunk_ptr(a_, j));
}

const double* LuApp::col0(std::size_t j) const {
  return reinterpret_cast<const double*>(registry_->chunk_ptr(a0_, j));
}

void LuApp::build_iteration(task::GraphBuilder& builder,
                            std::size_t iteration) {
  (void)iteration;
  const std::size_t n = config_.n;
  const std::size_t bs = config_.block;
  const std::size_t k = nblocks();
  const std::uint64_t col_elems = static_cast<std::uint64_t>(n) * bs;
  const std::uint64_t col_bytes = col_elems * sizeof(double);

  // ---- reset: A = A0 ----
  builder.begin_group("reset");
  for (std::size_t j = 0; j < k; ++j) {
    task::Task t;
    t.label = "reset";
    t.compute_seconds = compute_time(static_cast<double>(col_elems));
    t.accesses = {
        access(a0_, task::AccessMode::Read,
               traffic(col_elems, 0, col_bytes, 0.0, 0.0), j),
        access(a_, task::AccessMode::Write,
               traffic(0, col_elems, col_bytes, 0.0, 0.0), j),
    };
    if (real_) {
      t.work = [this, j, col_bytes]() {
        std::memcpy(col(j), col0(j), col_bytes);
      };
    }
    builder.add_task(std::move(t));
  }

  for (std::size_t step = 0; step < k; ++step) {
    const std::uint64_t panel_rows = n - step * bs;
    const std::uint64_t panel_elems = panel_rows * bs;

    // ---- factor the panel (block column `step`, rows step*bs..n) ----
    builder.begin_group("factor");
    {
      task::Task t;
      t.label = "factor";
      t.compute_seconds = static_cast<double>(panel_elems) *
                          static_cast<double>(bs) / kDenseFlops;
      t.accesses = {access(
          a_, task::AccessMode::ReadWrite,
          traffic(panel_elems * bs / 2, panel_elems, panel_elems * 8, 0.70,
                  0.40),
          step)};
      if (real_) {
        t.work = [this, step, n, bs]() {
          double* slab = col(step);
          const std::size_t r0 = step * bs;
          for (std::size_t jj = 0; jj < bs; ++jj) {
            const std::size_t prow = r0 + jj;  // pivot row (global)
            const double pivot = slab[jj * n + prow];
            TAHOE_ASSERT(pivot != 0.0, "zero pivot in pivotless LU");
            for (std::size_t i = prow + 1; i < n; ++i) {
              slab[jj * n + i] /= pivot;
            }
            for (std::size_t cc = jj + 1; cc < bs; ++cc) {
              const double mult = slab[cc * n + prow];
              for (std::size_t i = prow + 1; i < n; ++i) {
                slab[cc * n + i] -= slab[jj * n + i] * mult;
              }
            }
          }
        };
      }
      builder.add_task(std::move(t));
    }

    // ---- update trailing block columns ----
    if (step + 1 < k) {
      builder.begin_group("update");
      for (std::size_t j = step + 1; j < k; ++j) {
        task::Task t;
        t.label = "update";
        t.compute_seconds = 2.0 * static_cast<double>(panel_elems) *
                            static_cast<double>(bs) / kDenseFlops;
        t.accesses = {
            access(a_, task::AccessMode::Read,
                   traffic(panel_elems, 0, panel_elems * 8, 0.50, 0.05),
                   step),
            access(a_, task::AccessMode::ReadWrite,
                   traffic(panel_elems * 2, panel_elems, panel_elems * 8,
                           0.50, 0.05),
                   j),
        };
        if (real_) {
          t.work = [this, step, j, n, bs]() {
            const double* panel = col(step);
            double* slab = col(j);
            const std::size_t r0 = step * bs;
            // U12 = L11^{-1} A12 (unit lower triangular solve), then
            // A22 -= L21 * U12, column by column of the target slab.
            for (std::size_t cc = 0; cc < bs; ++cc) {
              double* target = slab + cc * n;
              for (std::size_t jj = 0; jj < bs; ++jj) {
                const double u = target[r0 + jj];
                for (std::size_t i = r0 + jj + 1; i < n; ++i) {
                  target[i] -= panel[jj * n + i] * u;
                }
              }
            }
          };
        }
        builder.add_task(std::move(t));
      }
    }
  }
}

bool LuApp::verify(hms::ObjectRegistry& registry) {
  if (!real_) return true;
  (void)registry;
  const std::size_t n = config_.n;
  const std::size_t bs = config_.block;
  const std::size_t k = nblocks();

  // Reconstruct L*U and compare against A0 (Frobenius relative error).
  auto a_at = [&](std::size_t i, std::size_t j) {
    return col(j / bs)[(j % bs) * n + i];
  };
  auto a0_at = [&](std::size_t i, std::size_t j) {
    return col0(j / bs)[(j % bs) * n + i];
  };
  (void)k;
  double err = 0.0;
  double ref = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double lu = 0.0;
      const std::size_t kmax = std::min(i, j);
      for (std::size_t p = 0; p <= kmax; ++p) {
        const double l = (p == i) ? 1.0 : a_at(i, p);
        lu += l * a_at(p, j);
      }
      const double d = lu - a0_at(i, j);
      err += d * d;
      ref += a0_at(i, j) * a0_at(i, j);
    }
  }
  return std::sqrt(err / ref) < 1e-10;
}

}  // namespace tahoe::workloads
