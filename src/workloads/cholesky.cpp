#include "workloads/cholesky.hpp"

#include <cmath>
#include <cstring>

#include "common/assert.hpp"

namespace {
// Vectorized dense kernels run near machine peak (see lu.cpp).
constexpr double kDenseFlops = 64e9;
}  // namespace

namespace tahoe::workloads {

CholeskyApp::Config CholeskyApp::config_for(Scale scale) {
  Config c;
  if (scale == Scale::Test) {
    c.n = 96;
    c.block = 24;
    c.iterations = 4;
  } else {
    c.n = 16384;
    c.block = 512;
    c.iterations = 10;
  }
  return c;
}

void CholeskyApp::setup(hms::ObjectRegistry& registry,
                        const hms::ChunkingPolicy& chunking) {
  (void)chunking;  // block columns are the algorithmic partition
  TAHOE_REQUIRE(config_.n % config_.block == 0, "block must divide n");
  registry_ = &registry;
  real_ = registry.arena(registry.capacity_tier()).backing() == hms::Backing::Real;
  const std::size_t k = nblocks();
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(config_.n) * config_.n * sizeof(double);

  a0_ = registry.create("chol_a0", bytes, registry.capacity_tier(), k);
  a_ = registry.create("chol_a", bytes, registry.capacity_tier(), k);

  const auto dn = static_cast<double>(config_.n);
  const double iters = static_cast<double>(config_.iterations);
  registry.get_mutable(a_).static_ref_estimate = dn * dn * dn / 6.0 * iters;
  registry.get_mutable(a0_).static_ref_estimate = dn * dn * iters;

  if (!real_) return;
  // Symmetric positive definite: small symmetric perturbation + n on the
  // diagonal.
  const std::size_t n = config_.n;
  const std::size_t bs = config_.block;
  for (std::size_t j = 0; j < k; ++j) {
    auto* slab = reinterpret_cast<double*>(registry.chunk_ptr(a0_, j));
    for (std::size_t jj = 0; jj < bs; ++jj) {
      const std::size_t gcol = j * bs + jj;
      for (std::size_t i = 0; i < n; ++i) {
        const auto lo = static_cast<double>(std::min(i, gcol));
        const auto hi = static_cast<double>(std::max(i, gcol));
        double v = 0.3 * std::sin(0.37 * lo + 0.73 * hi);
        if (i == gcol) v += static_cast<double>(n);
        slab[jj * n + i] = v;
      }
    }
  }
}

double* CholeskyApp::col(std::size_t j) const {
  return reinterpret_cast<double*>(registry_->chunk_ptr(a_, j));
}

const double* CholeskyApp::col0(std::size_t j) const {
  return reinterpret_cast<const double*>(registry_->chunk_ptr(a0_, j));
}

void CholeskyApp::build_iteration(task::GraphBuilder& builder,
                                  std::size_t iteration) {
  (void)iteration;
  const std::size_t n = config_.n;
  const std::size_t bs = config_.block;
  const std::size_t k = nblocks();
  const std::uint64_t col_elems = static_cast<std::uint64_t>(n) * bs;
  const std::uint64_t col_bytes = col_elems * sizeof(double);

  // ---- reset: A = A0 ----
  builder.begin_group("chol_reset");
  for (std::size_t j = 0; j < k; ++j) {
    task::Task t;
    t.label = "reset";
    t.compute_seconds = compute_time(static_cast<double>(col_elems));
    t.accesses = {
        access(a0_, task::AccessMode::Read,
               traffic(col_elems, 0, col_bytes, 0.0, 0.0), j),
        access(a_, task::AccessMode::Write,
               traffic(0, col_elems, col_bytes, 0.0, 0.0), j),
    };
    if (real_) {
      t.work = [this, j, col_bytes]() {
        std::memcpy(col(j), col0(j), col_bytes);
      };
    }
    builder.add_task(std::move(t));
  }

  for (std::size_t step = 0; step < k; ++step) {
    const std::uint64_t panel_rows = n - step * bs;
    const std::uint64_t panel_elems = panel_rows * bs;

    // ---- panel: POTRF of the diagonal block + TRSM of the rows below ----
    builder.begin_group("chol_panel");
    {
      task::Task t;
      t.label = "potrf+trsm";
      t.compute_seconds = static_cast<double>(panel_elems) *
                          static_cast<double>(bs) / 3.0 / kDenseFlops;
      t.accesses = {access(
          a_, task::AccessMode::ReadWrite,
          traffic(panel_elems * bs / 4, panel_elems, panel_elems * 8, 0.70,
                  0.45),
          step)};
      if (real_) {
        t.work = [this, step, n, bs]() {
          double* slab = col(step);
          const std::size_t r0 = step * bs;
          for (std::size_t jj = 0; jj < bs; ++jj) {
            const std::size_t prow = r0 + jj;
            const double diag = slab[jj * n + prow];
            TAHOE_ASSERT(diag > 0.0, "matrix not positive definite");
            const double d = std::sqrt(diag);
            for (std::size_t i = prow; i < n; ++i) slab[jj * n + i] /= d;
            for (std::size_t cc = jj + 1; cc < bs; ++cc) {
              const double mult = slab[jj * n + (r0 + cc)];
              for (std::size_t i = r0 + cc; i < n; ++i) {
                slab[cc * n + i] -= slab[jj * n + i] * mult;
              }
            }
          }
        };
      }
      builder.add_task(std::move(t));
    }

    // ---- trailing update: SYRK/GEMM per remaining block column ----
    if (step + 1 < k) {
      builder.begin_group("chol_update");
      for (std::size_t j = step + 1; j < k; ++j) {
        task::Task t;
        t.label = "syrk";
        t.compute_seconds = 2.0 * static_cast<double>(panel_elems) *
                            static_cast<double>(bs) / kDenseFlops;
        t.accesses = {
            access(a_, task::AccessMode::Read,
                   traffic(panel_elems, 0, panel_elems * 8, 0.50, 0.05),
                   step),
            access(a_, task::AccessMode::ReadWrite,
                   traffic(panel_elems, panel_elems / 2, panel_elems * 8,
                           0.50, 0.05),
                   j),
        };
        if (real_) {
          t.work = [this, step, j, n, bs]() {
            const double* panel = col(step);
            double* slab = col(j);
            for (std::size_t cc = 0; cc < bs; ++cc) {
              const std::size_t grow = j * bs + cc;  // target global column
              for (std::size_t jj = 0; jj < bs; ++jj) {
                const double mult = panel[jj * n + grow];
                for (std::size_t i = grow; i < n; ++i) {
                  slab[cc * n + i] -= panel[jj * n + i] * mult;
                }
              }
            }
          };
        }
        builder.add_task(std::move(t));
      }
    }
  }
}

bool CholeskyApp::verify(hms::ObjectRegistry& registry) {
  if (!real_) return true;
  (void)registry;
  const std::size_t n = config_.n;
  const std::size_t bs = config_.block;
  auto l_at = [&](std::size_t i, std::size_t j) {
    // Lower factor is stored in the lower triangle of A.
    return i >= j ? col(j / bs)[(j % bs) * n + i] : 0.0;
  };
  auto a0_at = [&](std::size_t i, std::size_t j) {
    return col0(j / bs)[(j % bs) * n + i];
  };
  double err = 0.0;
  double ref = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double llt = 0.0;
      for (std::size_t p = 0; p <= j; ++p) llt += l_at(i, p) * l_at(j, p);
      const double d = llt - a0_at(i, j);
      err += d * d;
      ref += a0_at(i, j) * a0_at(i, j);
    }
  }
  return std::sqrt(err / ref) < 1e-10;
}

}  // namespace tahoe::workloads
