// Cholesky: task-parallel right-looking blocked Cholesky factorization.
//
// The canonical tiled-DAG benchmark of task-parallel runtimes: per step k,
// a diagonal POTRF task, a TRSM task per block column below it, and a
// SYRK/GEMM update per trailing column. Like LU, the matrix is one large
// object chunked by block column, so placement is chunk-granular; unlike
// LU, the DAG is triangular, so the hot set *shrinks* across the
// iteration — a distinctive pattern for the phase-local search.
#pragma once

#include "core/application.hpp"
#include "workloads/common.hpp"

namespace tahoe::workloads {

class CholeskyApp : public core::Application {
 public:
  struct Config {
    std::size_t n = 96;      ///< matrix dimension
    std::size_t block = 24;  ///< block size (n % block == 0)
    std::size_t iterations = 6;
  };
  static Config config_for(Scale scale);

  explicit CholeskyApp(Config config) : config_(config) {}

  std::string name() const override { return "cholesky"; }
  std::size_t iterations() const override { return config_.iterations; }
  void setup(hms::ObjectRegistry& registry,
             const hms::ChunkingPolicy& chunking) override;
  void build_iteration(task::GraphBuilder& builder,
                       std::size_t iteration) override;
  bool verify(hms::ObjectRegistry& registry) override;

  const Config& config() const noexcept { return config_; }

 private:
  std::size_t nblocks() const noexcept { return config_.n / config_.block; }
  double* col(std::size_t j) const;
  const double* col0(std::size_t j) const;

  Config config_;
  hms::ObjectRegistry* registry_ = nullptr;
  bool real_ = false;
  hms::ObjectId a0_ = hms::kInvalidObject;  ///< SPD master copy
  hms::ObjectId a_ = hms::kInvalidObject;   ///< working matrix (chunked)
};

}  // namespace tahoe::workloads
