// MG: multigrid V-cycle on a 1-D Poisson problem (NPB-MG analogue).
//
// Per-level data objects (u, r at each level, plus the finest-level
// right-hand side v). The finest arrays dominate the footprint and —
// faithfully to the paper's MG discussion — are *not* partitionable (the
// benchmark's heavy use of memory aliasing defeats chunking), which is
// what makes MG the stress case for small DRAM configurations.
#pragma once

#include "core/application.hpp"
#include "workloads/common.hpp"

namespace tahoe::workloads {

class MgApp : public core::Application {
 public:
  struct Config {
    std::size_t log2_n = 12;  ///< finest grid size = 2^log2_n
    std::size_t levels = 5;
    std::size_t bands = 4;    ///< tasks per fine-level group
    std::size_t iterations = 10;
  };
  static Config config_for(Scale scale);

  explicit MgApp(Config config) : config_(config) {}

  std::string name() const override { return "mg"; }
  std::size_t iterations() const override { return config_.iterations; }
  void setup(hms::ObjectRegistry& registry,
             const hms::ChunkingPolicy& chunking) override;
  void build_iteration(task::GraphBuilder& builder,
                       std::size_t iteration) override;
  bool verify(hms::ObjectRegistry& registry) override;

 private:
  std::size_t level_n(std::size_t level) const noexcept {
    return (std::size_t{1} << config_.log2_n) >> level;
  }
  double* lvl(hms::ObjectId id) const;
  void smooth_band(std::size_t level, std::size_t lo, std::size_t hi) const;

  Config config_;
  hms::ObjectRegistry* registry_ = nullptr;
  bool real_ = false;
  std::vector<hms::ObjectId> u_;  ///< solution per level
  std::vector<hms::ObjectId> r_;  ///< residual per level
  hms::ObjectId v_ = hms::kInvalidObject;  ///< finest RHS
};

}  // namespace tahoe::workloads
