// Synthetic workloads: controlled access patterns for calibration-style
// tests, unit tests and the adaptivity ablation.
#pragma once

#include "core/application.hpp"
#include "workloads/common.hpp"

namespace tahoe::workloads {

/// STREAM-like: one large array, pure streaming traffic.
class StreamApp : public core::Application {
 public:
  struct Config {
    std::uint64_t bytes = 64 << 20;
    std::size_t tasks = 8;
    std::size_t iterations = 6;
  };

  explicit StreamApp(Config config) : config_(config) {}
  std::string name() const override { return "stream"; }
  std::size_t iterations() const override { return config_.iterations; }
  void setup(hms::ObjectRegistry& registry,
             const hms::ChunkingPolicy& chunking) override;
  void build_iteration(task::GraphBuilder& builder, std::size_t iter) override;

 private:
  Config config_;
  hms::ObjectId src_ = hms::kInvalidObject;
  hms::ObjectId dst_ = hms::kInvalidObject;
};

/// Pointer-chase-like: one array walked as a fully dependent chain.
class ChaseApp : public core::Application {
 public:
  struct Config {
    std::uint64_t bytes = 16 << 20;
    std::size_t iterations = 6;
  };

  explicit ChaseApp(Config config) : config_(config) {}
  std::string name() const override { return "pchase"; }
  std::size_t iterations() const override { return config_.iterations; }
  void setup(hms::ObjectRegistry& registry,
             const hms::ChunkingPolicy& chunking) override;
  void build_iteration(task::GraphBuilder& builder, std::size_t iter) override;

 private:
  Config config_;
  hms::ObjectId ring_ = hms::kInvalidObject;
};

/// Two objects; the hot one switches at `drift_at` — the adaptivity probe.
/// Before the switch, object A receives heavy traffic and B light traffic;
/// after it, the roles flip. A frozen placement decided on early profiles
/// keeps the wrong object in DRAM.
class DriftApp : public core::Application {
 public:
  struct Config {
    std::uint64_t bytes = 48 << 20;  ///< per object
    std::size_t tasks = 8;
    std::size_t iterations = 16;
    std::size_t drift_at = 8;
  };

  explicit DriftApp(Config config) : config_(config) {}
  std::string name() const override { return "drift"; }
  std::size_t iterations() const override { return config_.iterations; }
  void setup(hms::ObjectRegistry& registry,
             const hms::ChunkingPolicy& chunking) override;
  void build_iteration(task::GraphBuilder& builder, std::size_t iter) override;

 private:
  Config config_;
  hms::ObjectId a_ = hms::kInvalidObject;
  hms::ObjectId b_ = hms::kInvalidObject;
};

}  // namespace tahoe::workloads
