// NekProxy: a spectral-element CFD proxy standing in for Nek5000 (eddy).
//
// 48 data objects (geometry arrays + main simulation variables), ~12
// distinct phases per time step with heterogeneous access patterns, and —
// optionally — workload drift across iterations (the eddy strengthening),
// which exercises the adaptivity machinery. This is the workload where
// phase-local placement matters: the hot set changes from phase to phase
// and does not fit DRAM all at once.
#pragma once

#include "core/application.hpp"
#include "workloads/common.hpp"

namespace tahoe::workloads {

class NekProxyApp : public core::Application {
 public:
  struct Config {
    std::size_t points = 1 << 16;  ///< grid points per field
    std::size_t blocks = 8;        ///< tasks per phase
    std::size_t iterations = 12;
    /// Iteration at which the advection traffic doubles (0 = no drift).
    std::size_t drift_at = 0;
  };
  static Config config_for(Scale scale);

  explicit NekProxyApp(Config config) : config_(config) {}

  std::string name() const override { return "nekproxy"; }
  std::size_t iterations() const override { return config_.iterations; }
  void setup(hms::ObjectRegistry& registry,
             const hms::ChunkingPolicy& chunking) override;
  void build_iteration(task::GraphBuilder& builder,
                       std::size_t iteration) override;
  bool verify(hms::ObjectRegistry& registry) override;

  std::size_t num_objects() const noexcept {
    return geometry_.size() + fields_.size() + misc_.size();
  }

 private:
  Config config_;
  hms::ObjectRegistry* registry_ = nullptr;
  bool real_ = false;
  std::vector<hms::ObjectId> geometry_;  ///< 12 read-only geometry arrays
  std::vector<hms::ObjectId> fields_;    ///< 14 simulation fields
  std::vector<hms::ObjectId> misc_;      ///< 22 work/coefficient arrays

  double* field(hms::ObjectId id) const;
};

}  // namespace tahoe::workloads
