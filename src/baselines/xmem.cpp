#include "baselines/xmem.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "common/assert.hpp"

namespace tahoe::baselines {

core::PlanDecision XMemPolicy::decide(const core::PlanInputs& in) {
  const auto t_begin = std::chrono::steady_clock::now();
  TAHOE_REQUIRE(in.graph != nullptr && in.machine != nullptr,
                "xmem needs graph and machine");

  // Offline profile: aggregate ground-truth traffic per *object* (X-Mem
  // treats access patterns as homogeneous within an object).
  struct Hot {
    double bytes = 0.0;
    double dep_weighted = 0.0;  // accesses weighted by dependence fraction
    double accesses = 0.0;
  };
  std::map<hms::ObjectId, Hot> hotness;
  for (const task::Task& t : in.graph->tasks()) {
    for (const task::DataAccess& a : t.accesses) {
      Hot& h = hotness[a.object];
      const auto acc = static_cast<double>(a.traffic.accesses());
      h.accesses += acc;
      h.bytes += acc * 64.0;
      h.dep_weighted += acc * a.traffic.dep_frac;
    }
  }

  // Rank objects: accessed bytes per byte of size, with latency-bound
  // (pointer-chasing-like) objects boosted — they suffer most on NVM.
  struct Ranked {
    hms::ObjectId id;
    double score;
    std::uint64_t size;
  };
  std::vector<Ranked> ranked;
  for (const auto& [id, h] : hotness) {
    if (in.pinned(id)) continue;  // degraded to NVM; not a DRAM candidate
    const core::ObjectInfo& info = in.object(id);
    const std::uint64_t size = info.total_bytes();
    if (size == 0 || h.accesses <= 0.0) continue;
    const double chase_frac = h.dep_weighted / h.accesses;
    const double density = h.bytes / static_cast<double>(size);
    ranked.push_back(Ranked{id, density * (1.0 + 2.0 * chase_frac), size});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  });

  // Greedy fill of DRAM with whole objects.
  const std::uint64_t capacity =
      in.machine->tier(in.machine->fastest_tier()).capacity;
  std::uint64_t used = 0;
  std::vector<hms::ObjectId> chosen;
  for (const Ranked& r : ranked) {
    if (used + r.size <= capacity) {
      chosen.push_back(r.id);
      used += r.size;
    }
  }

  // Static schedule: evict whatever else is in DRAM, then fill; all at
  // iteration start (no-ops after the first iteration).
  core::PlanDecision decision;
  decision.strategy = "static-offline";
  std::vector<std::pair<hms::ObjectId, std::size_t>> target;
  for (const hms::ObjectId id : chosen) {
    const core::ObjectInfo& info = in.object(id);
    for (std::size_t c = 0; c < info.chunk_bytes.size(); ++c) {
      target.emplace_back(id, c);
    }
  }
  decision.schedule = core::cyclic_preamble(in, target, {});
  decision.decision_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_begin)
          .count();
  return decision;
}

}  // namespace tahoe::baselines
