#include "baselines/reactive.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>

#include "common/assert.hpp"
#include "hms/space_manager.hpp"

namespace tahoe::baselines {
namespace {

using Unit = hms::SpaceManager::Unit;

struct WalkResult {
  std::vector<task::ScheduledCopy> schedule;
  std::vector<Unit> end_residency;
};

/// One iteration's reactive residency walk: fill on first touch of a
/// group, evict LRU. `last_used` persists across walks (recency carries
/// over the iteration boundary).
WalkResult walk(const core::PlanInputs& in, const std::vector<Unit>& start,
                std::map<Unit, task::GroupId>& last_used) {
  const task::TaskGraph& graph = *in.graph;
  const memsim::TierId fast = in.machine->fastest_tier();
  const std::uint64_t capacity = in.machine->tier(fast).capacity;

  WalkResult out;
  hms::SpaceManager space(capacity);
  for (const Unit& u : start) {
    (void)space.add(u.first, u.second, in.unit_bytes(u.first, u.second));
  }

  for (task::GroupId g = 0; g < graph.num_groups(); ++g) {
    std::set<Unit> referenced;
    const task::Group& grp = graph.group(g);
    for (task::TaskId id = grp.first_task; id < grp.last_task; ++id) {
      for (const task::DataAccess& a : graph.task(id).accesses) {
        const std::size_t chunk = (a.chunk == task::kAllChunks) ? 0 : a.chunk;
        referenced.insert(Unit{a.object, chunk});
      }
    }
    for (const Unit& u : referenced) {
      last_used[u] = g;
      if (in.pinned(u.first)) continue;  // degraded to NVM; never fill
      const std::uint64_t bytes = in.unit_bytes(u.first, u.second);
      if (space.resident(u.first, u.second) || bytes > capacity) continue;
      // Evict least-recently-used residents until the unit fits.
      while (!space.can_fit(bytes)) {
        Unit victim{hms::kInvalidObject, 0};
        bool found = false;
        task::GroupId oldest = 0;
        for (const auto& [ru, rbytes] : space.contents()) {
          (void)rbytes;
          if (referenced.contains(ru)) continue;  // needed by this group
          const task::GroupId used =
              last_used.contains(ru) ? last_used.at(ru) : 0;
          if (!found || used < oldest || (used == oldest && ru < victim)) {
            victim = ru;
            oldest = used;
            found = true;
          }
        }
        if (!found) break;  // everything resident is needed right now
        space.remove(victim.first, victim.second);
        out.schedule.push_back(task::ScheduledCopy{
            victim.first, victim.second,
            in.unit_bytes(victim.first, victim.second),
            in.machine->capacity_tier(), g, g});
      }
      if (!space.can_fit(bytes)) continue;
      (void)space.add(u.first, u.second, bytes);
      // Reactive: triggered exactly when needed — fully exposed.
      out.schedule.push_back(
          task::ScheduledCopy{u.first, u.second, bytes, fast, g, g});
    }
  }
  for (const auto& [unit, bytes] : space.contents()) {
    (void)bytes;
    out.end_residency.push_back(unit);
  }
  return out;
}

}  // namespace

core::PlanDecision ReactiveLruPolicy::decide(const core::PlanInputs& in) {
  const auto t_begin = std::chrono::steady_clock::now();
  TAHOE_REQUIRE(in.graph != nullptr && in.machine != nullptr,
                "reactive policy needs graph and machine");

  std::vector<Unit> current;
  for (const auto& [unit, dev] : in.current.entries()) {
    if (dev == in.machine->fastest_tier()) current.push_back(unit);
  }

  // Walk 1 settles recency; walk 2 from its end state produces the cyclic
  // body, and the preamble pins the iteration-start residency.
  std::map<Unit, task::GroupId> last_used;
  const WalkResult first = walk(in, current, last_used);
  const WalkResult steady = walk(in, first.end_residency, last_used);

  core::PlanDecision decision;
  decision.strategy = "reactive";
  decision.schedule =
      core::cyclic_preamble(in, first.end_residency, steady.schedule);
  decision.schedule.insert(decision.schedule.end(), steady.schedule.begin(),
                           steady.schedule.end());
  decision.decision_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_begin)
          .count();
  return decision;
}

}  // namespace tahoe::baselines
