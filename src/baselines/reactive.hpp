// Reactive page-hotness baseline (AutoNUMA/first-touch-migration style).
//
// Moves a data unit to DRAM *when the phase that references it starts* —
// no lookahead, no performance model, LRU eviction. This isolates the
// value of Tahoe's proactive, model-driven migration: the reactive policy
// pays every copy on the critical path.
#pragma once

#include "core/policy.hpp"

namespace tahoe::baselines {

class ReactiveLruPolicy : public core::Policy {
 public:
  std::string name() const override { return "reactive-lru"; }
  bool needs_profiling() const override { return false; }
  core::PlanDecision decide(const core::PlanInputs& in) override;
};

}  // namespace tahoe::baselines
