// Hardware DRAM-cache baseline (Optane "Memory Mode" emulation).
//
// In Memory Mode, DRAM is a hardware-managed direct-mapped write-back
// cache in front of NVM and software cannot direct placement. We emulate
// it as a derived device model: with footprint F and DRAM capacity C, the
// steady-state DRAM hit ratio of a direct-mapped cache with uniform access
// is approximately h = min(1, C/F) (conflict misses shave a further
// `conflict_penalty`). Latency blends linearly (a miss probes DRAM, then
// pays NVM); bandwidth blends harmonically (each byte is served by one of
// the two devices). The application then runs "NVM-only" on the derived
// device — placement is out of software's hands, exactly like the real
// mode.
#pragma once

#include <cstdint>

#include "memsim/machine.hpp"

namespace tahoe::baselines {

/// Derive the Memory-Mode machine for an application footprint.
/// The returned machine's NVM tier is the cached effective device.
memsim::Machine memory_mode_machine(const memsim::Machine& base,
                                    std::uint64_t footprint_bytes,
                                    double conflict_penalty = 0.1);

}  // namespace tahoe::baselines
