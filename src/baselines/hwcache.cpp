#include "baselines/hwcache.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace tahoe::baselines {

memsim::Machine memory_mode_machine(const memsim::Machine& base,
                                    std::uint64_t footprint_bytes,
                                    double conflict_penalty) {
  TAHOE_REQUIRE(footprint_bytes > 0, "footprint must be positive");
  TAHOE_REQUIRE(conflict_penalty >= 0.0 && conflict_penalty < 1.0,
                "conflict penalty out of range");
  memsim::Machine m = base;
  // Memory mode caches the capacity tier behind the fastest tier; middle
  // tiers (if any) are left untouched — real memory-mode hardware only
  // pairs one near and one far memory.
  const memsim::DeviceModel& dram = base.tier(base.fastest_tier());
  const memsim::DeviceModel& nvm = base.tier(base.capacity_tier());

  const double raw_hit = std::min(
      1.0, static_cast<double>(dram.capacity) /
               static_cast<double>(footprint_bytes));
  const double h = raw_hit * (1.0 - conflict_penalty);
  const double miss = 1.0 - h;

  memsim::DeviceModel eff = nvm;
  eff.name = "MemoryMode(" + dram.name + "$" + nvm.name + ")";
  // A hit costs DRAM latency; a miss probes DRAM and then pays NVM.
  eff.read_lat_s = dram.read_lat_s + miss * nvm.read_lat_s;
  eff.write_lat_s = dram.write_lat_s + miss * nvm.write_lat_s;
  // Each byte is served either from DRAM (hit) or NVM (miss): harmonic mix.
  eff.read_bw = 1.0 / (h / dram.read_bw + miss / nvm.read_bw);
  eff.write_bw = 1.0 / (h / dram.write_bw + miss / nvm.write_bw);
  eff.capacity = nvm.capacity;

  m.devices[base.capacity_tier()] = eff;
  return m;
}

}  // namespace tahoe::baselines
