// X-Mem-style baseline: offline-profiling-driven static placement.
//
// Reproduces the comparison system's behaviour as the paper describes it:
// a PIN-based *offline* profile of the application (here: the ground-truth
// traffic declared in the task graph — exactly what an offline
// instrumentation pass would see), classification of each data object's
// dominant access pattern (streaming / pointer-chasing / random), and a
// one-shot static placement of the hottest objects into DRAM. Crucially,
// and unlike Tahoe: no data-movement cost model, no phase awareness
// (placement never changes at runtime), and a homogeneous access pattern
// is assumed within each data object (whole objects only — never chunks).
#pragma once

#include "core/policy.hpp"

namespace tahoe::baselines {

class XMemPolicy : public core::Policy {
 public:
  std::string name() const override { return "xmem"; }
  bool needs_profiling() const override { return false; }
  core::PlanDecision decide(const core::PlanInputs& in) override;
};

}  // namespace tahoe::baselines
