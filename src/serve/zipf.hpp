// Zipfian rank distribution for serving-workload key popularity.
//
// P[X = k] is proportional to 1/(k+1)^s over ranks k in [0, n). The CDF is
// precomputed once (O(n)) and sampling is an inverse-CDF binary search
// (O(log n)), drawing from the repo's deterministic Rng so same-seed runs
// produce identical key streams. The analytic CDF is exposed so tests can
// compare the empirical distribution against it directly.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace tahoe::serve {

class Zipf {
 public:
  /// `n` ranks with exponent `s` (s = 0 degenerates to uniform).
  Zipf(std::size_t n, double s);

  /// Draw one rank in [0, n).
  std::size_t sample(Rng& rng) const;

  /// Analytic CDF: P[X <= k]. Requires k < size().
  double cdf(std::size_t k) const;

  /// Analytic PMF: P[X = k]. Requires k < size().
  double pmf(std::size_t k) const;

  std::size_t size() const noexcept { return cdf_.size(); }
  double exponent() const noexcept { return s_; }

 private:
  std::vector<double> cdf_;  ///< cdf_[k] = P[X <= k]; back() == 1.0
  double s_ = 0.0;
};

}  // namespace tahoe::serve
