// Serve driver: epoch-batched open-loop serving on the simulated machine.
//
// The driver advances a virtual clock in epochs. At each epoch boundary it
// drains every tenant's open-loop arrival stream, batches the queued
// requests into per-tenant task groups (dispatched in priority order, ties
// by registration order), and executes the resulting graph on the
// SimExecutor. Because groups run sequentially at phase barriers, a
// request's completion time is its group's end:
//
//   queue_wait      = group start - arrival
//   request latency = group end   - arrival
//   service time    = sum of the request's task durations (via the
//                     task::Task::request tag)
//
// All three are recorded into per-tenant histograms and folded into the
// schema-v4 RunReport. Every quantity is virtual-time, so same-seed runs
// are byte-reproducible; --deterministic additionally zeroes the
// wall-clock planning cost, mirroring the quickstart convention.
#pragma once

#include <cstdint>

#include "core/report.hpp"
#include "serve/tenant.hpp"
#include "trace/trace.hpp"

namespace tahoe::serve {

struct ServeOptions {
  double duration_seconds = 1.0;  ///< virtual time the source keeps offering
  double epoch_seconds = 0.005;   ///< batching quantum of the virtual clock
  std::size_t max_batch = 64;     ///< per-tenant requests per epoch
  bool enforce_quotas = true;     ///< QoS rows vs. the quota-free knapsack
  bool deterministic = false;     ///< zero wall-clock report fields
  std::uint32_t workers = 0;      ///< 0 = machine.workers
  trace::Tracer* tracer = nullptr;
};

struct ServeResult {
  core::RunReport report;          ///< schema v4 (per-tenant sections)
  core::TenantPlacementPlan plan;  ///< the enforced placement
};

/// Plan + enforce placement, then serve `duration_seconds` of traffic.
ServeResult run_serve(TenantManager& manager, const ServeOptions& options);

}  // namespace tahoe::serve
