#include "serve/service.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "common/assert.hpp"
#include "serve/zipf.hpp"

namespace tahoe::serve {
namespace {

memsim::ObjectTraffic traffic(std::uint64_t loads, std::uint64_t stores,
                              std::uint64_t footprint, double locality,
                              double dep_frac, double spatial) {
  memsim::ObjectTraffic t;
  t.loads = loads;
  t.stores = stores;
  t.footprint = footprint;
  t.locality = locality;
  t.dep_frac = dep_frac;
  t.spatial = spatial;
  return t;
}

// ---- KvService --------------------------------------------------------

class KvService final : public Service {
 public:
  explicit KvService(KvConfig cfg)
      : cfg_(std::move(cfg)), zipf_(cfg_.keys, cfg_.zipf_s) {
    TAHOE_REQUIRE(cfg_.shards > 0 && cfg_.chunks_per_shard > 0,
                  "kv: empty shard layout");
    TAHOE_REQUIRE(cfg_.value_bytes < space(), "kv: value larger than store");
  }

  std::string kind() const override { return "kv"; }

  void provision(hms::ObjectRegistry& reg) override {
    TAHOE_REQUIRE(objects_.empty(), "kv: provisioned twice");
    const std::uint64_t shard_bytes =
        cfg_.chunk_bytes * cfg_.chunks_per_shard;
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      objects_.push_back(reg.create(cfg_.prefix + ".shard" + std::to_string(s),
                                    shard_bytes, reg.capacity_tier(),
                                    cfg_.chunks_per_shard));
    }
  }

  std::vector<UnitHeat> heat() const override {
    TAHOE_REQUIRE(!objects_.empty(), "kv: heat() before provision()");
    // Exact expectation: sum each key's Zipf mass into the chunks its
    // value overlaps. Deterministic because the key -> offset map is a
    // pure hash of the rank.
    const std::size_t total_chunks = cfg_.shards * cfg_.chunks_per_shard;
    std::vector<double> per_chunk(total_chunks, 0.0);
    for (std::size_t k = 0; k < cfg_.keys; ++k) {
      const double mass =
          zipf_.pmf(k) * static_cast<double>(cfg_.ops_per_request);
      const std::uint64_t off = offset_of(k);
      std::uint64_t remaining = cfg_.value_bytes;
      std::uint64_t pos = off;
      while (remaining > 0) {
        const std::size_t gc = static_cast<std::size_t>(pos / cfg_.chunk_bytes);
        const std::uint64_t in_chunk = std::min(
            remaining, cfg_.chunk_bytes - (pos % cfg_.chunk_bytes));
        per_chunk[gc] += mass * static_cast<double>(in_chunk);
        pos += in_chunk;
        remaining -= in_chunk;
      }
    }
    std::vector<UnitHeat> out(total_chunks);
    for (std::size_t gc = 0; gc < total_chunks; ++gc) {
      out[gc].unit = {objects_[gc / cfg_.chunks_per_shard],
                      gc % cfg_.chunks_per_shard};
      out[gc].bytes = cfg_.chunk_bytes;
      out[gc].bytes_per_request = per_chunk[gc];
    }
    return out;
  }

  const std::vector<hms::ObjectId>& objects() const override {
    return objects_;
  }

  void append_request(task::GraphBuilder& builder, std::uint64_t request_tag,
                      Rng& rng) const override {
    // Aggregate the request's ops into per-chunk byte tallies, then emit
    // one task declaring the combined access set.
    std::map<std::size_t, std::pair<std::uint64_t, std::uint64_t>> touched;
    for (std::size_t op = 0; op < cfg_.ops_per_request; ++op) {
      const std::size_t key = zipf_.sample(rng);
      const bool write = rng.next_double() < cfg_.write_frac;
      const std::uint64_t off = offset_of(key);
      std::uint64_t remaining = cfg_.value_bytes;
      std::uint64_t pos = off;
      while (remaining > 0) {
        const std::size_t gc = static_cast<std::size_t>(pos / cfg_.chunk_bytes);
        const std::uint64_t in_chunk = std::min(
            remaining, cfg_.chunk_bytes - (pos % cfg_.chunk_bytes));
        (write ? touched[gc].second : touched[gc].first) += in_chunk;
        pos += in_chunk;
        remaining -= in_chunk;
      }
    }
    task::Task t;
    t.label = cfg_.prefix + ".get";
    t.compute_seconds = cfg_.compute_seconds;
    t.request = request_tag;
    for (const auto& [gc, bytes] : touched) {
      const auto [read_bytes, write_bytes] = bytes;
      task::DataAccess a;
      a.object = objects_[gc / cfg_.chunks_per_shard];
      a.chunk = gc % cfg_.chunks_per_shard;
      a.mode = write_bytes == 0  ? task::AccessMode::Read
               : read_bytes == 0 ? task::AccessMode::Write
                                 : task::AccessMode::ReadWrite;
      // Hash-probe style access: mostly serialized, little spatial reuse —
      // the latency-sensitive end of the serving spectrum.
      a.traffic = traffic(read_bytes / 8, write_bytes / 8,
                          read_bytes + write_bytes, 0.1, 0.7, 0.2);
      t.accesses.push_back(a);
    }
    builder.add_task(std::move(t));
  }

 private:
  std::uint64_t space() const noexcept {
    return cfg_.chunk_bytes * cfg_.chunks_per_shard * cfg_.shards;
  }

  /// Deterministic key -> byte offset map (values may straddle chunks).
  std::uint64_t offset_of(std::size_t key) const {
    SplitMix64 h(0x5e12f00d ^ static_cast<std::uint64_t>(key));
    return h.next() % (space() - cfg_.value_bytes);
  }

  KvConfig cfg_;
  Zipf zipf_;
  std::vector<hms::ObjectId> objects_;
};

// ---- GraphService -----------------------------------------------------

class GraphService final : public Service {
 public:
  explicit GraphService(GraphConfig cfg) : cfg_(std::move(cfg)) {
    TAHOE_REQUIRE(cfg_.vertex_chunks > 0 && cfg_.adj_chunks > 0,
                  "graph: empty layout");
    TAHOE_REQUIRE(cfg_.frontier_chunks <= cfg_.adj_chunks,
                  "graph: frontier larger than adjacency");
  }

  std::string kind() const override { return "graph"; }

  void provision(hms::ObjectRegistry& reg) override {
    TAHOE_REQUIRE(objects_.empty(), "graph: provisioned twice");
    objects_.push_back(reg.create(cfg_.prefix + ".vertices", cfg_.vertex_bytes,
                                  reg.capacity_tier(), cfg_.vertex_chunks));
    objects_.push_back(reg.create(cfg_.prefix + ".adj", cfg_.adj_bytes,
                                  reg.capacity_tier(), cfg_.adj_chunks));
  }

  std::vector<UnitHeat> heat() const override {
    TAHOE_REQUIRE(!objects_.empty(), "graph: heat() before provision()");
    std::vector<UnitHeat> out;
    const std::uint64_t vchunk = cfg_.vertex_bytes / cfg_.vertex_chunks;
    for (std::size_t c = 0; c < cfg_.vertex_chunks; ++c) {
      out.push_back({{objects_[0], c},
                     vchunk,
                     cfg_.vertex_touch_frac * static_cast<double>(vchunk)});
    }
    const std::uint64_t achunk = cfg_.adj_bytes / cfg_.adj_chunks;
    const double hit = static_cast<double>(cfg_.frontier_chunks) /
                       static_cast<double>(cfg_.adj_chunks);
    for (std::size_t c = 0; c < cfg_.adj_chunks; ++c) {
      out.push_back({{objects_[1], c},
                     achunk,
                     hit * kAdjTouchFrac * static_cast<double>(achunk)});
    }
    return out;
  }

  const std::vector<hms::ObjectId>& objects() const override {
    return objects_;
  }

  void append_request(task::GraphBuilder& builder, std::uint64_t request_tag,
                      Rng& rng) const override {
    task::Task t;
    t.label = cfg_.prefix + ".expand";
    t.compute_seconds = cfg_.compute_seconds;
    t.request = request_tag;
    // Hot vertex state: every chunk, partially touched, read-mostly with
    // scattered updates.
    const std::uint64_t vchunk = cfg_.vertex_bytes / cfg_.vertex_chunks;
    const auto vbytes = static_cast<std::uint64_t>(
        cfg_.vertex_touch_frac * static_cast<double>(vchunk));
    for (std::size_t c = 0; c < cfg_.vertex_chunks; ++c) {
      task::DataAccess a;
      a.object = objects_[0];
      a.chunk = c;
      a.mode = task::AccessMode::ReadWrite;
      a.traffic = traffic(vbytes / 8, vbytes / 32, vbytes, 0.3, 0.5, 0.1);
      t.accesses.push_back(a);
    }
    // Irregular adjacency reuse: a few random chunks, partially scanned.
    const std::uint64_t achunk = cfg_.adj_bytes / cfg_.adj_chunks;
    const auto abytes =
        static_cast<std::uint64_t>(kAdjTouchFrac * static_cast<double>(achunk));
    std::vector<std::size_t> frontier;
    while (frontier.size() < cfg_.frontier_chunks) {
      const auto c = static_cast<std::size_t>(rng.next_below(cfg_.adj_chunks));
      if (std::find(frontier.begin(), frontier.end(), c) == frontier.end()) {
        frontier.push_back(c);
      }
    }
    std::sort(frontier.begin(), frontier.end());
    for (const std::size_t c : frontier) {
      task::DataAccess a;
      a.object = objects_[1];
      a.chunk = c;
      a.mode = task::AccessMode::Read;
      a.traffic = traffic(abytes / 8, 0, abytes, 0.05, 0.3, 0.3);
      t.accesses.push_back(a);
    }
    builder.add_task(std::move(t));
  }

 private:
  static constexpr double kAdjTouchFrac = 0.25;

  GraphConfig cfg_;
  std::vector<hms::ObjectId> objects_;
};

// ---- TensorService ----------------------------------------------------

class TensorService final : public Service {
 public:
  explicit TensorService(TensorConfig cfg) : cfg_(std::move(cfg)) {
    TAHOE_REQUIRE(cfg_.layers > 0, "tensor: no layers");
  }

  std::string kind() const override { return "tensor"; }

  void provision(hms::ObjectRegistry& reg) override {
    TAHOE_REQUIRE(objects_.empty(), "tensor: provisioned twice");
    objects_.push_back(reg.create(cfg_.prefix + ".weights",
                                  cfg_.layer_bytes * cfg_.layers,
                                  reg.capacity_tier(), cfg_.layers));
    objects_.push_back(reg.create(cfg_.prefix + ".act",
                                  cfg_.activation_bytes * kActivationSlots,
                                  reg.capacity_tier(), kActivationSlots));
  }

  std::vector<UnitHeat> heat() const override {
    TAHOE_REQUIRE(!objects_.empty(), "tensor: heat() before provision()");
    std::vector<UnitHeat> out;
    for (std::size_t l = 0; l < cfg_.layers; ++l) {
      // Every layer's weights stream through in full, once per request.
      out.push_back({{objects_[0], l},
                     cfg_.layer_bytes,
                     static_cast<double>(cfg_.layer_bytes)});
    }
    for (std::size_t s = 0; s < kActivationSlots; ++s) {
      out.push_back({{objects_[1], s},
                     cfg_.activation_bytes,
                     2.0 * static_cast<double>(cfg_.activation_bytes) *
                         static_cast<double>(cfg_.layers) / kActivationSlots});
    }
    return out;
  }

  const std::vector<hms::ObjectId>& objects() const override {
    return objects_;
  }

  void append_request(task::GraphBuilder& builder, std::uint64_t request_tag,
                      Rng& /*rng*/) const override {
    // One task per layer, chained through the request's activation slot
    // (ReadWrite dependences give the pipeline order); distinct requests
    // use distinct slots, so a batch runs layers in parallel across
    // requests like a real inference server.
    const std::size_t slot =
        static_cast<std::size_t>(request_tag % kActivationSlots);
    for (std::size_t l = 0; l < cfg_.layers; ++l) {
      task::Task t;
      t.label = cfg_.prefix + ".layer" + std::to_string(l);
      t.compute_seconds = cfg_.compute_per_layer;
      t.request = request_tag;
      task::DataAccess w;
      w.object = objects_[0];
      w.chunk = l;
      w.mode = task::AccessMode::Read;
      // Streaming weight read: independent, sequential.
      w.traffic = traffic(cfg_.layer_bytes / 8, 0, cfg_.layer_bytes, 0.0, 0.0,
                          0.875);
      t.accesses.push_back(w);
      task::DataAccess act;
      act.object = objects_[1];
      act.chunk = slot;
      act.mode = task::AccessMode::ReadWrite;
      act.traffic = traffic(cfg_.activation_bytes / 8,
                            cfg_.activation_bytes / 8, cfg_.activation_bytes,
                            0.8, 0.1, 0.875);
      t.accesses.push_back(act);
      builder.add_task(std::move(t));
    }
  }

 private:
  static constexpr std::size_t kActivationSlots = 8;

  TensorConfig cfg_;
  std::vector<hms::ObjectId> objects_;
};

}  // namespace

std::unique_ptr<Service> make_kv_service(KvConfig config) {
  return std::make_unique<KvService>(std::move(config));
}
std::unique_ptr<Service> make_graph_service(GraphConfig config) {
  return std::make_unique<GraphService>(std::move(config));
}
std::unique_ptr<Service> make_tensor_service(TensorConfig config) {
  return std::make_unique<TensorService>(std::move(config));
}

}  // namespace tahoe::serve
