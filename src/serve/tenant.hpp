// TenantManager: N concurrent applications sharing one machine.
//
// Each tenant bundles a Service (its data + request shape), a priority, an
// optional hard DRAM quota, and an offered arrival rate. The manager
// provisions every service against one shared ObjectRegistry (tagging
// object owners for per-tenant accounting), converts service heat into
// fast-tier promotion values, and plans residency either as a multi-tenant
// knapsack with per-tenant capacity rows (QoS mode) or as one shared
// tenant-blind knapsack (the quota-free baseline).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "hms/placement.hpp"
#include "hms/registry.hpp"
#include "memsim/machine.hpp"
#include "serve/service.hpp"

namespace tahoe::serve {

struct TenantConfig {
  std::string name;
  double priority = 1.0;
  /// Hard fast-tier cap in bytes; 0 derives the row from the priority
  /// share (core::derive_tenant_quotas).
  std::uint64_t quota_bytes = 0;
  double arrival_hz = 100.0;     ///< offered open-loop request rate
  std::uint64_t seed = 1;        ///< arrival + workload stream seed
  std::unique_ptr<Service> service;
};

class TenantManager {
 public:
  /// Builds a Virtual-backed registry sized from the machine's tiers —
  /// serving runs are simulation-only, so payloads are never allocated.
  explicit TenantManager(const memsim::Machine& machine);

  /// Register and provision one tenant; returns its OwnerId (the index).
  hms::OwnerId add(TenantConfig config);

  std::size_t size() const noexcept { return tenants_.size(); }
  const TenantConfig& tenant(std::size_t i) const { return tenants_.at(i); }

  hms::ObjectRegistry& registry() noexcept { return registry_; }
  const memsim::Machine& machine() const noexcept { return machine_; }

  /// Plan fast-tier residency for all tenants. Promotion value of a unit
  /// is its expected traffic (bytes/request x arrival rate) times the
  /// bandwidth-time saved per byte between the capacity and fastest tier —
  /// a deliberately throughput-shaped model: quota-free planning maximizes
  /// it globally, which is exactly how a latency-sensitive tenant gets
  /// starved without QoS rows.
  core::TenantPlacementPlan plan(bool enforce_quotas) const;

  /// Enforce a plan: migrate promoted chunks to the fastest tier through
  /// the registry (exercising per-owner migration accounting) and mirror
  /// the full per-chunk residency into `placement` for the simulator.
  void apply(const core::TenantPlacementPlan& plan,
             hms::PlacementMap& placement);

  /// Chunk-size oracle for SimExecutor's capacity invariant.
  std::uint64_t unit_bytes(hms::ObjectId id, std::size_t chunk) const;

 private:
  const memsim::Machine& machine_;
  hms::ObjectRegistry registry_;
  std::vector<TenantConfig> tenants_;
};

}  // namespace tahoe::serve
