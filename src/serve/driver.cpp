#include "serve/driver.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "serve/request.hpp"
#include "task/sim_executor.hpp"
#include "trace/counters.hpp"
#include "trace/histogram.hpp"
#include "trace/telemetry.hpp"

namespace tahoe::serve {
namespace {

/// Per-tenant mutable serving state. Histograms hold atomics, so the state
/// lives behind unique_ptr.
struct TenantState {
  std::unique_ptr<OpenLoopSource> source;
  std::unique_ptr<Rng> work_rng;
  std::deque<Request> queue;
  std::uint64_t completed = 0;
  trace::Histogram request_latency;
  trace::Histogram queue_wait;
  trace::Histogram service_time;
  /// Registry-side mirrors (tenant-labeled, visible to trace exports);
  /// null when histograms are globally disabled.
  trace::Histogram* global_request = nullptr;
  trace::Histogram* global_queue = nullptr;
  trace::Histogram* global_service = nullptr;
  /// Per-tenant queue-depth gauge, sampled once per epoch; registered
  /// only while the telemetry sampler is armed, so non-telemetry runs
  /// leave the registry untouched.
  trace::Counter* queue_depth = nullptr;
};

void record(trace::Histogram& local, trace::Histogram* global,
            double seconds) {
  local.record_seconds(seconds);
  if (global != nullptr) global->record_seconds(seconds);
}

}  // namespace

ServeResult run_serve(TenantManager& manager, const ServeOptions& options) {
  TAHOE_REQUIRE(manager.size() > 0, "run_serve needs at least one tenant");
  TAHOE_REQUIRE(options.epoch_seconds > 0.0, "epoch must be positive");
  TAHOE_REQUIRE(options.max_batch > 0, "max_batch must be positive");
  const memsim::Machine& machine = manager.machine();

  ServeResult result;
  const auto t_plan = std::chrono::steady_clock::now();
  result.plan = manager.plan(options.enforce_quotas);
  hms::PlacementMap placement;
  manager.apply(result.plan, placement);
  const double plan_seconds =
      options.deterministic
          ? 0.0
          : std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t_plan)
                .count();

  // Dispatch order: priority descending, registration order breaking ties.
  // The order is identical with and without quota enforcement, so QoS
  // comparisons isolate the placement difference.
  std::vector<std::size_t> order(manager.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return manager.tenant(a).priority >
                            manager.tenant(b).priority;
                   });

  trace::TelemetrySampler* const sampler =
      trace::telemetry().enabled() ? &trace::telemetry() : nullptr;

  std::vector<std::unique_ptr<TenantState>> states;
  for (std::size_t i = 0; i < manager.size(); ++i) {
    const TenantConfig& cfg = manager.tenant(i);
    auto st = std::make_unique<TenantState>();
    st->source = std::make_unique<OpenLoopSource>(
        static_cast<std::uint32_t>(i), cfg.arrival_hz, cfg.seed);
    st->work_rng = std::make_unique<Rng>(cfg.seed ^ 0x5eedf0c1a11eau);
    if (sampler != nullptr) {
      st->queue_depth = &trace::global_counters().gauge(
          "serve." + cfg.name + ".queue_depth");
    }
    if (trace::histograms_enabled()) {
      trace::CounterRegistry& reg = trace::global_counters();
      st->global_request =
          &reg.histogram("serve." + cfg.name + ".request_ns");
      st->global_queue = &reg.histogram("serve." + cfg.name + ".queue_ns");
      st->global_service =
          &reg.histogram("serve." + cfg.name + ".service_ns");
    }
    states.push_back(std::move(st));
  }

  core::RunReport& report = result.report;
  report.workload = "serve";
  report.policy = options.enforce_quotas ? "tenant-qos" : "quota-free";
  report.strategy = options.enforce_quotas ? "priority-rows" : "shared";
  for (std::size_t t = 0; t < machine.num_tiers(); ++t) {
    report.tier_names.push_back(
        machine.tier(static_cast<memsim::TierId>(t)).name);
  }
  report.decision_seconds = plan_seconds;
  report.overhead_seconds = plan_seconds;

  if (sampler != nullptr) {
    sampler->begin_run("serve:" + report.policy);
  }

  task::SimExecutor executor;
  std::uint64_t next_tag = 0;
  double clock = 0.0;
  while (clock < options.duration_seconds) {
    for (auto& st : states) {
      for (Request& r : st->source->drain_until(clock)) {
        st->queue.push_back(r);
      }
      if (st->queue_depth != nullptr) {
        st->queue_depth->set(static_cast<std::uint64_t>(st->queue.size()));
      }
    }
    // Epoch boundary tick: the executor advances the sampler inside busy
    // epochs (same clock base — trace_time_offset is `clock`), but
    // empty-batch epochs would otherwise leave gaps in the series.
    if (sampler != nullptr) sampler->advance_virtual(clock);

    // Batch this epoch: one group per tenant with queued work, highest
    // priority dispatched first.
    struct Batch {
      std::size_t tenant = 0;
      std::size_t group = 0;
      std::vector<Request> requests;
    };
    std::vector<Batch> batches;
    task::GraphBuilder builder;
    std::vector<std::pair<std::size_t, std::size_t>> tag_slot;  // batch, pos
    for (const std::size_t i : order) {
      TenantState& st = *states[i];
      if (st.queue.empty()) continue;
      Batch b;
      b.tenant = i;
      b.group = builder.begin_group(manager.tenant(i).name);
      while (!st.queue.empty() && b.requests.size() < options.max_batch) {
        Request r = st.queue.front();
        st.queue.pop_front();
        manager.tenant(i).service->append_request(builder, next_tag++,
                                                  *st.work_rng);
        tag_slot.emplace_back(batches.size(), b.requests.size());
        b.requests.push_back(r);
      }
      batches.push_back(std::move(b));
    }
    if (batches.empty()) {
      clock += options.epoch_seconds;
      continue;
    }

    const task::TaskGraph graph = builder.build();
    task::SimExecutor::Options sim_opts;
    sim_opts.workers = options.workers;
    sim_opts.unit_size = [&manager](hms::ObjectId id, std::size_t chunk) {
      return manager.unit_bytes(id, chunk);
    };
    sim_opts.tracer = options.tracer;
    sim_opts.trace_time_offset = clock;
    const task::SimReport sim =
        executor.run(graph, machine, placement, {}, sim_opts);

    // Per-request service time via the request tags the services stamped.
    const std::uint64_t epoch_base = next_tag - tag_slot.size();
    std::vector<double> service_of(tag_slot.size(), 0.0);
    for (const task::Task& t : graph.tasks()) {
      if (t.request == task::kNoRequest) continue;
      TAHOE_ASSERT(t.request >= epoch_base &&
                       t.request - epoch_base < service_of.size(),
                   "request tag outside this epoch");
      service_of[t.request - epoch_base] += sim.task_seconds[t.id];
    }

    for (std::size_t s = 0; s < tag_slot.size(); ++s) {
      const auto [bi, pos] = tag_slot[s];
      const Batch& b = batches[bi];
      TenantState& st = *states[b.tenant];
      const Request& r = b.requests[pos];
      const double start = clock + sim.group_start[b.group];
      const double done =
          clock + sim.group_start[b.group] + sim.group_seconds[b.group];
      record(st.queue_wait, st.global_queue, start - r.arrival);
      record(st.request_latency, st.global_request, done - r.arrival);
      record(st.service_time, st.global_service, service_of[s]);
      ++st.completed;
    }

    report.iteration_seconds.push_back(sim.makespan);
    report.compute_seconds += sim.makespan;
    report.tasks_executed += graph.num_tasks();
    // Open loop: a saturated epoch pushes the clock past its quantum and
    // the backlog grows — the overload signature.
    clock += std::max(options.epoch_seconds, sim.makespan);
  }

  // Whatever arrived before the horizon but never got served counts as
  // dropped (still queued at shutdown).
  for (auto& st : states) {
    for (Request& r : st->source->drain_until(options.duration_seconds)) {
      st->queue.push_back(r);
    }
  }

  const hms::ObjectRegistry& registry = manager.registry();
  const hms::MigrationStats& stats = registry.stats();
  report.migrations = stats.migrations;
  report.bytes_moved = stats.bytes_moved;
  report.failed_no_space = stats.failed_no_space;
  const auto fast = static_cast<memsim::DeviceId>(machine.fastest_tier());
  for (std::size_t i = 0; i < manager.size(); ++i) {
    const TenantConfig& cfg = manager.tenant(i);
    const TenantState& st = *states[i];
    core::TenantReportRow row;
    row.name = cfg.name;
    row.priority = cfg.priority;
    row.quota_bytes = result.plan.quota_bytes[i];
    row.fast_bytes =
        registry.resident_bytes_owned(static_cast<hms::OwnerId>(i), fast);
    row.total_bytes = registry.total_bytes_owned(static_cast<hms::OwnerId>(i));
    row.requests = st.completed;
    row.dropped = st.queue.size();
    row.request_latency = st.request_latency.snapshot();
    row.queue_wait = st.queue_wait.snapshot();
    row.service_time = st.service_time.snapshot();
    report.tenants.push_back(std::move(row));
  }
  return result;
}

}  // namespace tahoe::serve
