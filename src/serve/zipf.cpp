#include "serve/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace tahoe::serve {

Zipf::Zipf(std::size_t n, double s) : s_(s) {
  TAHOE_REQUIRE(n > 0, "Zipf needs at least one rank");
  TAHOE_REQUIRE(s >= 0.0, "Zipf exponent must be non-negative");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding drift at the tail
}

std::size_t Zipf::sample(Rng& rng) const {
  const double u = rng.next_double();  // [0, 1)
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<std::size_t>(it - cdf_.begin());
}

double Zipf::cdf(std::size_t k) const {
  TAHOE_REQUIRE(k < cdf_.size(), "Zipf::cdf rank out of range");
  return cdf_[k];
}

double Zipf::pmf(std::size_t k) const {
  TAHOE_REQUIRE(k < cdf_.size(), "Zipf::pmf rank out of range");
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

}  // namespace tahoe::serve
