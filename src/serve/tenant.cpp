#include "serve/tenant.hpp"

#include <utility>

#include "common/assert.hpp"

namespace tahoe::serve {
namespace {

std::vector<std::uint64_t> tier_capacities(const memsim::Machine& machine) {
  std::vector<std::uint64_t> caps;
  caps.reserve(machine.num_tiers());
  for (std::size_t t = 0; t < machine.num_tiers(); ++t) {
    caps.push_back(machine.tier(static_cast<memsim::TierId>(t)).capacity);
  }
  return caps;
}

}  // namespace

TenantManager::TenantManager(const memsim::Machine& machine)
    : machine_(machine),
      registry_(tier_capacities(machine), hms::Backing::Virtual) {}

hms::OwnerId TenantManager::add(TenantConfig config) {
  TAHOE_REQUIRE(config.service != nullptr, "tenant without a service");
  TAHOE_REQUIRE(config.priority > 0.0, "tenant priority must be positive");
  const auto owner = static_cast<hms::OwnerId>(tenants_.size());
  config.service->provision(registry_);
  for (const hms::ObjectId id : config.service->objects()) {
    registry_.set_owner(id, owner);
  }
  tenants_.push_back(std::move(config));
  return owner;
}

core::TenantPlacementPlan TenantManager::plan(bool enforce_quotas) const {
  const memsim::DeviceModel& fast = machine_.tier(machine_.fastest_tier());
  const memsim::DeviceModel& cap = machine_.tier(machine_.capacity_tier());
  TAHOE_REQUIRE(fast.read_bw > 0.0 && cap.read_bw > 0.0,
                "machine tiers need bandwidth numbers");
  const double saved_per_byte = 1.0 / cap.read_bw - 1.0 / fast.read_bw;

  std::vector<core::TenantDemand> demands;
  demands.reserve(tenants_.size());
  for (const TenantConfig& t : tenants_) {
    core::TenantDemand d;
    d.name = t.name;
    d.priority = t.priority;
    d.quota_bytes = t.quota_bytes;
    for (const UnitHeat& h : t.service->heat()) {
      core::TenantUnitCandidate c;
      c.unit = h.unit;
      c.bytes = h.bytes;
      c.value = h.bytes_per_request * t.arrival_hz * saved_per_byte;
      d.candidates.push_back(c);
    }
    demands.push_back(std::move(d));
  }
  const std::uint64_t fast_capacity =
      machine_.tier(machine_.fastest_tier()).capacity;
  return core::plan_tenants(demands, fast_capacity, enforce_quotas);
}

void TenantManager::apply(const core::TenantPlacementPlan& plan,
                          hms::PlacementMap& placement) {
  TAHOE_REQUIRE(plan.promoted.size() == tenants_.size(),
                "plan does not match registered tenants");
  const auto fast = static_cast<memsim::DeviceId>(machine_.fastest_tier());
  for (const auto& units : plan.promoted) {
    for (const core::UnitKey& u : units) {
      const bool ok = registry_.migrate_chunk(u.object, u.chunk, fast);
      TAHOE_ASSERT(ok, "planned promotion exceeded the fast tier");
    }
  }
  // Mirror the authoritative registry residency (promoted or not) into the
  // simulator's placement map.
  for (const hms::ObjectId id : registry_.live_objects()) {
    const hms::DataObject& obj = registry_.get(id);
    for (std::size_t c = 0; c < obj.num_chunks(); ++c) {
      placement.set(id, c, obj.chunk(c).device);
    }
  }
}

std::uint64_t TenantManager::unit_bytes(hms::ObjectId id,
                                        std::size_t chunk) const {
  return registry_.get(id).chunk(chunk).bytes;
}

}  // namespace tahoe::serve
