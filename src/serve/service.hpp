// Serving workloads: request-shaped task DAG factories.
//
// A Service owns one tenant's data objects and turns each incoming request
// into tasks appended to the current graph group, declaring ground-truth
// ObjectTraffic exactly like the iterative workloads do. It also exposes a
// per-unit heat profile (expected bytes touched per request) that the
// TenantManager converts into fast-tier promotion values.
//
// Three services cover the serving spectrum the evaluation needs:
//  * KvService:    sharded KV/cache lookups with Zipfian key popularity and
//                  values spanning chunk boundaries — latency-sensitive,
//                  dependence-heavy probing with poor spatial locality;
//  * GraphService: a graph-analytics pass with irregular reuse — hot vertex
//                  state plus randomly-touched adjacency chunks;
//  * TensorService: a batch-inference pipeline streaming layer weights in
//                  order — bandwidth-bound, chained through activations.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/profiles.hpp"
#include "hms/registry.hpp"
#include "task/graph.hpp"

namespace tahoe::serve {

/// Expected per-request traffic of one placement unit (object chunk).
struct UnitHeat {
  core::UnitKey unit;
  std::uint64_t bytes = 0;          ///< unit size (knapsack weight)
  double bytes_per_request = 0.0;   ///< expected bytes touched per request
};

class Service {
 public:
  virtual ~Service() = default;

  virtual std::string kind() const = 0;

  /// Allocate the service's data objects on the registry (all chunks start
  /// on the capacity tier, the default home). Called exactly once.
  virtual void provision(hms::ObjectRegistry& reg) = 0;

  /// Per-unit expected traffic, for planning. Requires provision().
  virtual std::vector<UnitHeat> heat() const = 0;

  /// Objects created by provision(), for owner tagging and accounting.
  virtual const std::vector<hms::ObjectId>& objects() const = 0;

  /// Append the tasks serving one request to the currently-open group,
  /// tagging each task with `request_tag`. `rng` is the tenant's workload
  /// stream (key choice, frontier choice) — seeded, so deterministic.
  virtual void append_request(task::GraphBuilder& builder,
                              std::uint64_t request_tag, Rng& rng) const = 0;
};

struct KvConfig {
  std::string prefix = "kv";
  std::size_t shards = 2;
  std::size_t chunks_per_shard = 8;
  std::uint64_t chunk_bytes = 1u << 20;
  std::size_t keys = 4096;
  double zipf_s = 1.1;
  std::size_t ops_per_request = 8;
  std::uint64_t value_bytes = 16u << 10;
  double write_frac = 0.1;
  double compute_seconds = 20e-6;  ///< per-request pure compute
};

struct GraphConfig {
  std::string prefix = "graph";
  std::uint64_t vertex_bytes = 8u << 20;
  std::size_t vertex_chunks = 8;
  std::uint64_t adj_bytes = 32u << 20;
  std::size_t adj_chunks = 16;
  std::size_t frontier_chunks = 4;  ///< adjacency chunks touched per request
  double vertex_touch_frac = 0.5;   ///< fraction of vertex state touched
  double compute_seconds = 50e-6;
};

struct TensorConfig {
  std::string prefix = "tensor";
  std::size_t layers = 6;
  std::uint64_t layer_bytes = 8u << 20;
  std::uint64_t activation_bytes = 1u << 20;
  double compute_per_layer = 100e-6;
};

std::unique_ptr<Service> make_kv_service(KvConfig config);
std::unique_ptr<Service> make_graph_service(GraphConfig config);
std::unique_ptr<Service> make_tensor_service(TensorConfig config);

}  // namespace tahoe::serve
