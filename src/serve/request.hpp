// Open-loop request generation for the serving subsystem.
//
// An OpenLoopSource emits one tenant's request stream with exponential
// inter-arrival times at a configured rate, drawn from a seeded Rng — the
// open-loop discipline: arrivals never wait for completions, so an
// overloaded server accumulates queue depth instead of silently throttling
// the offered load. All timestamps are virtual seconds on the serve
// driver's clock, which is what keeps same-seed runs byte-reproducible.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace tahoe::serve {

struct Request {
  std::uint64_t id = 0;       ///< per-tenant sequence number
  std::uint32_t tenant = 0;
  double arrival = 0.0;       ///< virtual seconds
};

class OpenLoopSource {
 public:
  OpenLoopSource(std::uint32_t tenant, double rate_hz, std::uint64_t seed)
      : rng_(seed), rate_(rate_hz), tenant_(tenant) {
    TAHOE_REQUIRE(rate_hz > 0.0, "arrival rate must be positive");
  }

  /// Every request with arrival < `t`, in arrival order. The stream is
  /// unbounded; successive calls continue where the previous one stopped.
  std::vector<Request> drain_until(double t) {
    std::vector<Request> out;
    if (!has_pending_) advance();
    while (pending_.arrival < t) {
      out.push_back(pending_);
      advance();
    }
    return out;
  }

 private:
  void advance() {
    // Exponential inter-arrival; 1 - u in (0, 1] keeps log() finite.
    const double u = rng_.next_double();
    clock_ += -std::log(1.0 - u) / rate_;
    pending_ = Request{next_id_++, tenant_, clock_};
    has_pending_ = true;
  }

  Rng rng_;
  double rate_ = 0.0;
  std::uint32_t tenant_ = 0;
  std::uint64_t next_id_ = 0;
  double clock_ = 0.0;
  Request pending_;
  bool has_pending_ = false;
};

}  // namespace tahoe::serve
