#include "memsim/fluid.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace tahoe::memsim {
namespace {

// Component residues below this many seconds count as drained. The scale of
// simulated runs is >= microseconds, so 1e-15 s is far below any signal.
constexpr double kEps = 1e-15;

void validate_spec(const FlowSpec& spec, std::size_t num_devices) {
  TAHOE_REQUIRE(spec.device_seconds.size() <= num_devices,
                "flow references more devices than the machine has");
  TAHOE_REQUIRE(spec.serial_seconds >= 0.0, "negative serial demand");
  for (double d : spec.device_seconds) {
    TAHOE_REQUIRE(d >= 0.0, "negative device demand");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// detail::ScanFluidCore — the original engine, arithmetic kept verbatim
// (the golden reports in tests/golden/ pin these exact floating-point
// operation sequences).
// ---------------------------------------------------------------------------

namespace detail {

ScanFluidCore::ScanFluidCore(std::size_t num_devices)
    : active_on_device_(num_devices, 0), busy_seconds_(num_devices, 0.0) {
  TAHOE_REQUIRE(num_devices > 0, "fluid sim needs at least one device");
}

FlowId ScanFluidCore::start_flow(FlowSpec spec, FlowId id) {
  Flow f;
  f.serial_left = spec.serial_seconds;
  f.device_left.assign(active_on_device_.size(), 0.0);
  for (std::size_t d = 0; d < spec.device_seconds.size(); ++d) {
    f.device_left[d] = spec.device_seconds[d];
  }
  f.tag = spec.tag;
  f.start_time = now_;
  for (std::size_t d = 0; d < f.device_left.size(); ++d) {
    if (f.device_left[d] > kEps) ++active_on_device_[d];
  }
  flows_.emplace_back(id, std::move(f));
  ++active_count_;
  harvest_completions();
  return id;
}

double ScanFluidCore::next_component_dt() const {
  double dt = std::numeric_limits<double>::infinity();
  for (const auto& [id, f] : flows_) {
    if (f.serial_left > kEps) dt = std::min(dt, f.serial_left);
    for (std::size_t d = 0; d < f.device_left.size(); ++d) {
      if (f.device_left[d] > kEps) {
        // Equal processor sharing: rate = 1 / (#flows active on device).
        const double rate = 1.0 / static_cast<double>(active_on_device_[d]);
        dt = std::min(dt, f.device_left[d] / rate);
      }
    }
  }
  return dt;
}

void ScanFluidCore::drain(double dt) {
  if (dt <= 0.0) return;
  // Rates are fixed during the interval; compute shares first, then drain.
  std::vector<double> rate(active_on_device_.size(), 0.0);
  for (std::size_t d = 0; d < rate.size(); ++d) {
    if (active_on_device_[d] > 0) {
      rate[d] = 1.0 / static_cast<double>(active_on_device_[d]);
    }
  }
  for (auto& [id, f] : flows_) {
    if (f.serial_left > kEps) {
      f.serial_left = std::max(0.0, f.serial_left - dt);
    }
    for (std::size_t d = 0; d < f.device_left.size(); ++d) {
      if (f.device_left[d] > kEps) {
        const double served = dt * rate[d];
        const double applied = std::min(f.device_left[d], served);
        busy_seconds_[d] += applied;
        f.device_left[d] -= applied;
        if (f.device_left[d] <= kEps) {
          f.device_left[d] = 0.0;
          TAHOE_ASSERT(active_on_device_[d] > 0, "device active underflow");
          --active_on_device_[d];
        }
      }
    }
  }
  now_ += dt;
}

void ScanFluidCore::harvest_completions() {
  // Compact the active list, emitting completions in flow-id order for
  // determinism (the list is kept sorted by insertion, i.e. by id).
  std::size_t keep = 0;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    auto& [id, f] = flows_[i];
    bool drained = f.serial_left <= kEps;
    if (drained) {
      for (double d : f.device_left) {
        if (d > kEps) {
          drained = false;
          break;
        }
      }
    }
    if (drained) {
      TAHOE_ASSERT(active_count_ > 0, "active flow count underflow");
      --active_count_;
      ready_.push_back(FlowCompletion{id, f.tag, now_, f.start_time});
    } else {
      if (keep != i) flows_[keep] = std::move(flows_[i]);
      ++keep;
    }
  }
  flows_.resize(keep);
}

std::optional<FlowCompletion> ScanFluidCore::step() {
  while (ready_head_ >= ready_.size()) {
    if (active_count_ == 0) return std::nullopt;
    const double dt = next_component_dt();
    TAHOE_ASSERT(dt < std::numeric_limits<double>::infinity(),
                 "active flows but nothing draining");
    drain(dt);
    harvest_completions();
  }
  FlowCompletion completion = ready_[ready_head_++];
  if (ready_head_ >= ready_.size()) {
    ready_.clear();
    ready_head_ = 0;
  }
  return completion;
}

double ScanFluidCore::advance(double dt) {
  TAHOE_REQUIRE(dt >= 0.0, "cannot advance backwards");
  double advanced = 0.0;
  // Stop early if a completion becomes available.
  while (advanced < dt && ready_head_ >= ready_.size() && active_count_ > 0) {
    const double step_dt = std::min(dt - advanced, next_component_dt());
    drain(step_dt);
    harvest_completions();
    advanced += step_dt;
  }
  if (ready_head_ >= ready_.size() && active_count_ == 0 && advanced < dt) {
    // Nothing active: time passes freely.
    now_ += dt - advanced;
    advanced = dt;
  }
  return advanced;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// ReferenceFluidSim
// ---------------------------------------------------------------------------

ReferenceFluidSim::ReferenceFluidSim(std::size_t num_devices)
    : core_(num_devices) {}

FlowId ReferenceFluidSim::start_flow(FlowSpec spec) {
  validate_spec(spec, core_.active_on_device_.size());
  return core_.start_flow(std::move(spec), next_id_++);
}

double ReferenceFluidSim::device_busy_seconds(std::size_t dev) const {
  TAHOE_REQUIRE(dev < core_.busy_seconds_.size(), "device index out of range");
  return core_.busy_seconds_[dev];
}

// ---------------------------------------------------------------------------
// FluidSim — exact scan core below the threshold, indexed engine above.
// ---------------------------------------------------------------------------

FluidSim::FluidSim(std::size_t num_devices) : FluidSim(num_devices, Tuning{}) {}

FluidSim::FluidSim(std::size_t num_devices, Tuning tuning)
    : tuning_(tuning), core_(num_devices) {}

FlowId FluidSim::start_flow(FlowSpec spec) {
  const std::size_t num_dev = core_.active_on_device_.size();
  validate_spec(spec, num_dev);

  // A spec with no component above the drain epsilon completes right away
  // at the current time. Doing this explicitly (instead of letting the
  // harvest scan discover it) keeps device active counts — and thus every
  // other flow's sharing rate — untouched, and costs O(1).
  bool has_component = spec.serial_seconds > kEps;
  if (!has_component) {
    for (double d : spec.device_seconds) {
      if (d > kEps) {
        has_component = true;
        break;
      }
    }
  }
  if (!has_component) {
    const FlowId id = next_id_++;
    const double t = now();
    (lazy_ ? ready_ : core_.ready_)
        .push_back(FlowCompletion{id, spec.tag, t, t});
    return id;
  }

  if (!lazy_) {
    const FlowId id = core_.start_flow(std::move(spec), next_id_++);
    if (core_.active_count_ > tuning_.lazy_threshold) switch_to_lazy();
    return id;
  }
  return lazy_start_flow(spec);
}

std::optional<FlowCompletion> FluidSim::step() {
  return lazy_ ? lazy_step() : core_.step();
}

double FluidSim::advance(double dt) {
  if (!lazy_) return core_.advance(dt);
  return lazy_advance(dt);
}

double FluidSim::device_busy_seconds(std::size_t dev) const {
  const std::vector<double>& busy = busy_seconds();
  TAHOE_REQUIRE(dev < busy.size(), "device index out of range");
  return busy[dev];
}

void FluidSim::switch_to_lazy() {
  const std::size_t num_dev = core_.active_on_device_.size();
  now_ = core_.now_;
  active_count_ = core_.active_count_;
  busy_seconds_lazy_ = core_.busy_seconds_;
  active_on_device_ = core_.active_on_device_;
  rate_.assign(num_dev, 0.0);
  virtual_.assign(num_dev, 0.0);
  for (std::size_t d = 0; d < num_dev; ++d) {
    if (active_on_device_[d] > 0) {
      rate_[d] = 1.0 / static_cast<double>(active_on_device_[d]);
    }
  }
  device_heap_.assign(num_dev, {});
  serial_heap_.clear();
  slots_.clear();
  free_slots_.clear();
  ready_ = std::move(core_.ready_);
  ready_head_ = core_.ready_head_;

  // Seed the indexed engine from the scan core's residual demands: every
  // virtual clock starts at zero, so each component's finish key is simply
  // its remaining channel-seconds.
  slots_.reserve(core_.flows_.size());
  for (const auto& [id, f] : core_.flows_) {
    LazyFlow lf;
    lf.id = id;
    lf.tag = f.tag;
    lf.start_time = f.start_time;
    const auto slot = static_cast<std::uint32_t>(slots_.size());
    if (f.serial_left > kEps) {
      ++lf.components_left;
      serial_heap_.push_back(HeapEntry{now_ + f.serial_left, slot});
    }
    for (std::size_t d = 0; d < f.device_left.size(); ++d) {
      if (f.device_left[d] > kEps) {
        ++lf.components_left;
        device_heap_[d].push_back(HeapEntry{f.device_left[d], slot});
      }
    }
    TAHOE_ASSERT(lf.components_left > 0, "undrained flow with no components");
    slots_.push_back(lf);
  }
  const auto greater = [](const HeapEntry& a, const HeapEntry& b) {
    return a.key > b.key || (a.key == b.key && a.slot > b.slot);
  };
  std::make_heap(serial_heap_.begin(), serial_heap_.end(), greater);
  for (auto& heap : device_heap_) {
    std::make_heap(heap.begin(), heap.end(), greater);
  }

  core_.flows_.clear();
  core_.flows_.shrink_to_fit();
  core_.ready_.clear();
  core_.ready_head_ = 0;
  core_.active_count_ = 0;
  lazy_ = true;
}

std::uint32_t FluidSim::alloc_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

FlowId FluidSim::lazy_start_flow(const FlowSpec& spec) {
  const FlowId id = next_id_++;
  const std::uint32_t slot = alloc_slot();
  LazyFlow& lf = slots_[slot];
  lf = LazyFlow{};
  lf.id = id;
  lf.tag = spec.tag;
  lf.start_time = now_;
  const auto greater = [](const HeapEntry& a, const HeapEntry& b) {
    return a.key > b.key || (a.key == b.key && a.slot > b.slot);
  };
  if (spec.serial_seconds > kEps) {
    ++lf.components_left;
    serial_heap_.push_back(HeapEntry{now_ + spec.serial_seconds, slot});
    std::push_heap(serial_heap_.begin(), serial_heap_.end(), greater);
  }
  for (std::size_t d = 0; d < spec.device_seconds.size(); ++d) {
    if (spec.device_seconds[d] > kEps) {
      ++lf.components_left;
      const std::uint32_t count = ++active_on_device_[d];
      rate_[d] = 1.0 / static_cast<double>(count);
      device_heap_[d].push_back(
          HeapEntry{virtual_[d] + spec.device_seconds[d], slot});
      std::push_heap(device_heap_[d].begin(), device_heap_[d].end(), greater);
    }
  }
  TAHOE_ASSERT(lf.components_left > 0, "componentless flow reached lazy path");
  ++active_count_;
  return id;
}

FluidSim::NextEvent FluidSim::lazy_next_event() const {
  NextEvent ev;
  double best = std::numeric_limits<double>::infinity();
  if (!serial_heap_.empty()) {
    best = std::max(0.0, serial_heap_.front().key - now_);
    ev.source = NextEvent::Source::Serial;
  }
  for (std::size_t d = 0; d < device_heap_.size(); ++d) {
    if (device_heap_[d].empty()) continue;
    const double dt =
        std::max(0.0, (device_heap_[d].front().key - virtual_[d]) *
                          static_cast<double>(active_on_device_[d]));
    if (dt < best) {
      best = dt;
      ev.source = NextEvent::Source::Device;
      ev.device = d;
    }
  }
  ev.dt = best;
  return ev;
}

void FluidSim::component_done(std::uint32_t slot) {
  TAHOE_ASSERT(slots_[slot].components_left > 0, "component count underflow");
  if (--slots_[slot].components_left == 0) {
    finished_this_event_.push_back(slot);
  }
}

void FluidSim::lazy_advance_by(double dt, const NextEvent* ev) {
  const auto greater = [](const HeapEntry& a, const HeapEntry& b) {
    return a.key > b.key || (a.key == b.key && a.slot > b.slot);
  };
  for (std::size_t d = 0; d < virtual_.size(); ++d) {
    if (active_on_device_[d] > 0) {
      virtual_[d] += dt * rate_[d];
      busy_seconds_lazy_[d] += dt;
    }
  }
  now_ += dt;

  finished_this_event_.clear();
  const auto pop_serial = [&]() {
    std::pop_heap(serial_heap_.begin(), serial_heap_.end(), greater);
    const std::uint32_t slot = serial_heap_.back().slot;
    serial_heap_.pop_back();
    component_done(slot);
  };
  const auto pop_device = [&](std::size_t d) {
    auto& heap = device_heap_[d];
    std::pop_heap(heap.begin(), heap.end(), greater);
    const std::uint32_t slot = heap.back().slot;
    heap.pop_back();
    TAHOE_ASSERT(active_on_device_[d] > 0, "device active underflow");
    const std::uint32_t count = --active_on_device_[d];
    rate_[d] = count > 0 ? 1.0 / static_cast<double>(count) : 0.0;
    component_done(slot);
  };

  // The component that defined a full-event dt is drained by construction;
  // popping it unconditionally guarantees progress even when rounding left
  // its key a hair above the advanced clock.
  if (ev != nullptr) {
    if (ev->source == NextEvent::Source::Serial) {
      TAHOE_ASSERT(!serial_heap_.empty(), "event source heap empty");
      pop_serial();
    } else if (ev->source == NextEvent::Source::Device) {
      TAHOE_ASSERT(!device_heap_[ev->device].empty(),
                   "event source heap empty");
      pop_device(ev->device);
    }
  }
  while (!serial_heap_.empty() && serial_heap_.front().key <= now_ + kEps) {
    pop_serial();
  }
  for (std::size_t d = 0; d < device_heap_.size(); ++d) {
    while (!device_heap_[d].empty() &&
           device_heap_[d].front().key <= virtual_[d] + kEps) {
      pop_device(d);
    }
  }

  if (finished_this_event_.empty()) return;
  // Simultaneous completions surface in flow-id order, matching the scan
  // core's id-ordered harvest.
  std::sort(finished_this_event_.begin(), finished_this_event_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              return slots_[a].id < slots_[b].id;
            });
  for (const std::uint32_t slot : finished_this_event_) {
    const LazyFlow& lf = slots_[slot];
    ready_.push_back(FlowCompletion{lf.id, lf.tag, now_, lf.start_time});
    TAHOE_ASSERT(active_count_ > 0, "active flow count underflow");
    --active_count_;
    free_slots_.push_back(slot);
  }
  finished_this_event_.clear();
}

std::optional<FlowCompletion> FluidSim::lazy_step() {
  while (ready_head_ >= ready_.size()) {
    if (active_count_ == 0) return std::nullopt;
    const NextEvent ev = lazy_next_event();
    TAHOE_ASSERT(ev.source != NextEvent::Source::None,
                 "active flows but nothing draining");
    lazy_advance_by(ev.dt, &ev);
  }
  FlowCompletion completion = ready_[ready_head_++];
  if (ready_head_ >= ready_.size()) {
    ready_.clear();
    ready_head_ = 0;
  }
  return completion;
}

double FluidSim::lazy_advance(double dt) {
  TAHOE_REQUIRE(dt >= 0.0, "cannot advance backwards");
  double advanced = 0.0;
  // Stop early if a completion becomes available.
  while (advanced < dt && ready_head_ >= ready_.size() && active_count_ > 0) {
    const NextEvent ev = lazy_next_event();
    TAHOE_ASSERT(ev.source != NextEvent::Source::None,
                 "active flows but nothing draining");
    if (ev.dt <= dt - advanced) {
      lazy_advance_by(ev.dt, &ev);
      advanced += ev.dt;
    } else {
      lazy_advance_by(dt - advanced, nullptr);
      advanced = dt;
    }
  }
  if (ready_head_ >= ready_.size() && active_count_ == 0 && advanced < dt) {
    // Nothing active: time passes freely.
    now_ += dt - advanced;
    advanced = dt;
  }
  return advanced;
}

}  // namespace tahoe::memsim
