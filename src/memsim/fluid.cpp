#include "memsim/fluid.hpp"

#include <algorithm>
#include <limits>

#include "common/assert.hpp"

namespace tahoe::memsim {
namespace {

// Component residues below this many seconds count as drained. The scale of
// simulated runs is >= microseconds, so 1e-15 s is far below any signal.
constexpr double kEps = 1e-15;

}  // namespace

FluidSim::FluidSim(std::size_t num_devices)
    : active_on_device_(num_devices, 0), busy_seconds_(num_devices, 0.0) {
  TAHOE_REQUIRE(num_devices > 0, "fluid sim needs at least one device");
}

FlowId FluidSim::start_flow(FlowSpec spec) {
  TAHOE_REQUIRE(spec.device_seconds.size() <= active_on_device_.size(),
                "flow references more devices than the machine has");
  TAHOE_REQUIRE(spec.serial_seconds >= 0.0, "negative serial demand");
  for (double d : spec.device_seconds) {
    TAHOE_REQUIRE(d >= 0.0, "negative device demand");
  }
  Flow f;
  f.serial_left = spec.serial_seconds;
  f.device_left.assign(active_on_device_.size(), 0.0);
  for (std::size_t d = 0; d < spec.device_seconds.size(); ++d) {
    f.device_left[d] = spec.device_seconds[d];
  }
  f.tag = spec.tag;
  f.start_time = now_;
  const FlowId id = next_id_++;
  for (std::size_t d = 0; d < f.device_left.size(); ++d) {
    if (f.device_left[d] > kEps) ++active_on_device_[d];
  }
  flows_.emplace_back(id, std::move(f));
  ++active_count_;
  harvest_completions();
  return id;
}

double FluidSim::next_component_dt() const {
  double dt = std::numeric_limits<double>::infinity();
  for (const auto& [id, f] : flows_) {
    if (f.serial_left > kEps) dt = std::min(dt, f.serial_left);
    for (std::size_t d = 0; d < f.device_left.size(); ++d) {
      if (f.device_left[d] > kEps) {
        // Equal processor sharing: rate = 1 / (#flows active on device).
        const double rate = 1.0 / static_cast<double>(active_on_device_[d]);
        dt = std::min(dt, f.device_left[d] / rate);
      }
    }
  }
  return dt;
}

void FluidSim::drain(double dt) {
  if (dt <= 0.0) return;
  // Rates are fixed during the interval; compute shares first, then drain.
  std::vector<double> rate(active_on_device_.size(), 0.0);
  for (std::size_t d = 0; d < rate.size(); ++d) {
    if (active_on_device_[d] > 0) {
      rate[d] = 1.0 / static_cast<double>(active_on_device_[d]);
    }
  }
  for (auto& [id, f] : flows_) {
    if (f.serial_left > kEps) {
      f.serial_left = std::max(0.0, f.serial_left - dt);
    }
    for (std::size_t d = 0; d < f.device_left.size(); ++d) {
      if (f.device_left[d] > kEps) {
        const double served = dt * rate[d];
        const double applied = std::min(f.device_left[d], served);
        busy_seconds_[d] += applied;
        f.device_left[d] -= applied;
        if (f.device_left[d] <= kEps) {
          f.device_left[d] = 0.0;
          TAHOE_ASSERT(active_on_device_[d] > 0, "device active underflow");
          --active_on_device_[d];
        }
      }
    }
  }
  now_ += dt;
}

void FluidSim::harvest_completions() {
  // Compact the active list, emitting completions in flow-id order for
  // determinism (the list is kept sorted by insertion, i.e. by id).
  std::size_t keep = 0;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    auto& [id, f] = flows_[i];
    bool drained = f.serial_left <= kEps;
    if (drained) {
      for (double d : f.device_left) {
        if (d > kEps) {
          drained = false;
          break;
        }
      }
    }
    if (drained) {
      TAHOE_ASSERT(active_count_ > 0, "active flow count underflow");
      --active_count_;
      ready_.push_back(FlowCompletion{id, f.tag, now_, f.start_time});
    } else {
      if (keep != i) flows_[keep] = std::move(flows_[i]);
      ++keep;
    }
  }
  flows_.resize(keep);
}

std::optional<FlowCompletion> FluidSim::step() {
  while (ready_head_ >= ready_.size()) {
    if (active_count_ == 0) return std::nullopt;
    const double dt = next_component_dt();
    TAHOE_ASSERT(dt < std::numeric_limits<double>::infinity(),
                 "active flows but nothing draining");
    drain(dt);
    harvest_completions();
  }
  FlowCompletion completion = ready_[ready_head_++];
  if (ready_head_ >= ready_.size()) {
    ready_.clear();
    ready_head_ = 0;
  }
  return completion;
}

double FluidSim::advance(double dt) {
  TAHOE_REQUIRE(dt >= 0.0, "cannot advance backwards");
  double advanced = 0.0;
  // Stop early if a completion becomes available.
  while (advanced < dt && ready_head_ >= ready_.size() && active_count_ > 0) {
    const double step_dt = std::min(dt - advanced, next_component_dt());
    drain(step_dt);
    harvest_completions();
    advanced += step_dt;
  }
  if (ready_head_ >= ready_.size() && active_count_ == 0 && advanced < dt) {
    // Nothing active: time passes freely.
    now_ += dt - advanced;
    advanced = dt;
  }
  return advanced;
}

double FluidSim::device_busy_seconds(std::size_t dev) const {
  TAHOE_REQUIRE(dev < busy_seconds_.size(), "device index out of range");
  return busy_seconds_[dev];
}

}  // namespace tahoe::memsim
