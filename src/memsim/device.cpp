#include "memsim/device.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace tahoe::memsim {

double DeviceModel::channel_seconds(const MemTraffic& t) const noexcept {
  const double read_bytes =
      static_cast<double>(t.read_lines) * static_cast<double>(kCacheLine);
  const double write_bytes =
      static_cast<double>(t.write_lines) * static_cast<double>(kCacheLine);
  return read_bytes / read_bw + write_bytes / write_bw;
}

double DeviceModel::latency_seconds(const MemTraffic& t,
                                    double mlp) const noexcept {
  const double chain = static_cast<double>(t.read_lines) * read_lat_s +
                       static_cast<double>(t.write_lines) * write_lat_s;
  const double serial = t.dep_frac * chain;
  const double overlapped = (1.0 - t.dep_frac) * chain / std::max(mlp, 1.0);
  return serial + overlapped;
}

double DeviceModel::uncontended_seconds(const MemTraffic& t,
                                        double mlp) const noexcept {
  return std::max(channel_seconds(t), latency_seconds(t, mlp));
}

namespace devices {

// Bandwidths follow the NVM-characteristics survey table (NVMDB + Optane
// measurements). Latencies are *end-to-end load-to-use* values: the
// survey's device access times (DRAM 10ns, STT-RAM 60/80ns, PCRAM
// 100/500ns, ReRAM 500/5000ns) plus ~70ns of controller/queueing overhead
// that every access pays on a real platform — the quantity a dependent
// access chain actually serializes on. Optane numbers are measured
// end-to-end already.

DeviceModel dram(std::uint64_t capacity) {
  return DeviceModel{"DRAM", ns(80), ns(80), mbps(10'000), mbps(9'000),
                     capacity};
}

DeviceModel stt_ram(std::uint64_t capacity) {
  return DeviceModel{"STT-RAM", ns(130), ns(150), mbps(800), mbps(600),
                     capacity};
}

DeviceModel pcram(std::uint64_t capacity) {
  return DeviceModel{"PCRAM", ns(170), ns(570), mbps(500), mbps(300),
                     capacity};
}

DeviceModel reram(std::uint64_t capacity) {
  return DeviceModel{"ReRAM", ns(570), ns(5'070), mbps(60), mbps(4),
                     capacity};
}

DeviceModel optane_pm(std::uint64_t capacity) {
  return DeviceModel{"Optane-PM", ns(250), ns(150), mbps(3'900), mbps(1'300),
                     capacity};
}

DeviceModel hbm(std::uint64_t capacity) {
  return DeviceModel{"HBM", ns(110), ns(110), mbps(30'000), mbps(27'000),
                     capacity};
}

DeviceModel cxl_dram(std::uint64_t capacity) {
  return DeviceModel{"CXL-DRAM", ns(180), ns(180), mbps(8'000), mbps(7'200),
                     capacity};
}

DeviceModel nvm_bw_fraction(const DeviceModel& dram_model, double fraction,
                            std::uint64_t capacity) {
  TAHOE_REQUIRE(fraction > 0.0 && fraction <= 1.0,
                "bandwidth fraction must be in (0,1]");
  DeviceModel d = dram_model;
  d.name = "NVM(bw*" + std::to_string(fraction) + ")";
  d.read_bw *= fraction;
  d.write_bw *= fraction;
  d.capacity = capacity;
  return d;
}

DeviceModel nvm_lat_multiple(const DeviceModel& dram_model, double multiple,
                             std::uint64_t capacity) {
  TAHOE_REQUIRE(multiple >= 1.0, "latency multiple must be >= 1");
  DeviceModel d = dram_model;
  d.name = "NVM(lat*" + std::to_string(multiple) + ")";
  d.read_lat_s *= multiple;
  d.write_lat_s *= multiple;
  d.capacity = capacity;
  return d;
}

std::vector<DeviceModel> all_presets() {
  const std::uint64_t cap = 16 * kGiB;
  return {dram(cap),  stt_ram(cap), pcram(cap),   reram(cap),
          optane_pm(cap), hbm(cap), cxl_dram(cap)};
}

}  // namespace devices
}  // namespace tahoe::memsim
