#include "memsim/machine.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/units.hpp"

namespace tahoe::memsim {

MemTraffic Machine::filtered(const ObjectTraffic& t,
                             std::uint64_t task_total_footprint) const {
  return llc.filter(t, task_total_footprint);
}

FlowSpec Machine::task_flow(
    double compute_seconds,
    const std::vector<std::pair<ObjectTraffic, DeviceId>>& accesses,
    std::uint64_t tag) const {
  TAHOE_REQUIRE(compute_seconds >= 0.0, "negative compute time");
  std::uint64_t total_footprint = 0;
  for (const auto& [traffic, dev] : accesses) {
    (void)dev;
    total_footprint += traffic.footprint;
  }
  FlowSpec spec;
  spec.tag = tag;
  spec.serial_seconds = compute_seconds;
  spec.device_seconds.assign(devices.size(), 0.0);
  for (const auto& [traffic, dev] : accesses) {
    TAHOE_REQUIRE(dev < devices.size(), "device id out of range");
    const MemTraffic mm = filtered(traffic, total_footprint);
    spec.device_seconds[dev] += devices[dev].channel_seconds(mm);
    spec.serial_seconds += devices[dev].latency_seconds(mm, mlp);
  }
  return spec;
}

double Machine::copy_bw_for(TierId src, TierId dst) const noexcept {
  for (const CopyPathLimit& p : copy_paths) {
    if (p.src == src && p.dst == dst) return p.bw;
  }
  return copy_engine_bw;
}

FlowSpec Machine::copy_flow(std::uint64_t bytes, DeviceId src, DeviceId dst,
                            std::uint64_t tag) const {
  TAHOE_REQUIRE(src < devices.size() && dst < devices.size(),
                "copy device out of range");
  TAHOE_REQUIRE(src != dst, "copy within one device");
  const double b = static_cast<double>(bytes);
  FlowSpec spec;
  spec.tag = tag;
  spec.device_seconds.assign(devices.size(), 0.0);
  spec.device_seconds[src] = b / devices[src].read_bw;
  spec.device_seconds[dst] = b / devices[dst].write_bw;
  const double copy_bw = copy_bw_for(src, dst);
  spec.serial_seconds = copy_bw > 0.0 ? b / copy_bw : 0.0;
  return spec;
}

double Machine::uncontended_task_seconds(
    double compute_seconds,
    const std::vector<std::pair<ObjectTraffic, DeviceId>>& accesses) const {
  const FlowSpec spec = task_flow(compute_seconds, accesses, 0);
  double channel = 0.0;
  for (double d : spec.device_seconds) channel = std::max(channel, d);
  return std::max(spec.serial_seconds, channel);
}

namespace machines {

Machine platform_a(DeviceModel nvm, std::uint64_t dram_capacity) {
  Machine m;
  m.name = "platform-a";
  m.cpu_hz = 2.4e9;
  m.workers = 16;
  m.mlp = 64.0;
  m.llc = CacheModel{20 * kMiB};
  DeviceModel dram_dev = devices::dram(dram_capacity);
  m.devices = {dram_dev, std::move(nvm)};
  // memcpy between tiers is staged through the cores; cap one stream at
  // a typical single-thread copy rate.
  m.copy_engine_bw = gbps(6.0);
  return m;
}

Machine optane_platform(std::uint64_t dram_capacity) {
  Machine m;
  m.name = "optane-pmm";
  m.cpu_hz = 2.4e9;
  m.workers = 48;
  m.mlp = 64.0;
  m.llc = CacheModel{static_cast<std::uint64_t>(35.75 * static_cast<double>(kMiB))};
  m.devices = {devices::dram(dram_capacity),
               devices::optane_pm(1536 * kGiB)};
  m.copy_engine_bw = gbps(6.0);
  return m;
}

Machine cxl_platform(std::uint64_t hbm_capacity, std::uint64_t dram_capacity,
                     std::uint64_t cxl_capacity, std::uint64_t nvm_capacity) {
  if (nvm_capacity == 0) nvm_capacity = 1536 * kGiB;
  Machine m;
  m.name = "cxl-platform";
  m.cpu_hz = 2.4e9;
  m.workers = 32;
  m.mlp = 64.0;
  m.llc = CacheModel{32 * kMiB};
  m.devices = {devices::hbm(hbm_capacity), devices::dram(dram_capacity),
               devices::cxl_dram(cxl_capacity),
               devices::optane_pm(nvm_capacity)};
  m.copy_engine_bw = gbps(6.0);
  // The on-package HBM<->DRAM path has a dedicated DMA engine; copies that
  // cross the CXL link are throttled below the core-staged memcpy rate.
  m.copy_paths = {{0, 1, gbps(12.0)}, {1, 0, gbps(12.0)},
                  {1, 2, gbps(4.0)},  {2, 1, gbps(4.0)},
                  {0, 2, gbps(4.0)},  {2, 0, gbps(4.0)}};
  return m;
}

}  // namespace machines
}  // namespace tahoe::memsim
