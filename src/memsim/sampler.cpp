#include "memsim/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"
#include "common/fault.hpp"

namespace tahoe::memsim {

Sampler::Sampler(std::uint64_t interval_cycles, double cpu_hz,
                 std::uint64_t seed)
    : interval_cycles_(interval_cycles), cpu_hz_(cpu_hz), rng_(seed) {
  TAHOE_REQUIRE(interval_cycles > 0, "sampling interval must be positive");
  TAHOE_REQUIRE(cpu_hz > 0.0, "cpu frequency must be positive");
}

SampledCounts Sampler::sample(const ObjectTraffic& traffic,
                              double duration_s) {
  TAHOE_REQUIRE(duration_s >= 0.0, "duration must be non-negative");
  SampledCounts out;
  const double cycles = duration_s * cpu_hz_;
  out.total_samples = static_cast<std::uint64_t>(
      cycles / static_cast<double>(interval_cycles_));
  if (out.total_samples == 0 || traffic.accesses() == 0) return out;

  // Each retired load/store has probability 1/interval of being the
  // instruction captured by a sample.
  const double p = 1.0 / static_cast<double>(interval_cycles_);
  out.loads = rng_.binomial(traffic.loads, p);
  out.stores = rng_.binomial(traffic.stores, p);

  // Probability that one sampling window (interval cycles long) contains at
  // least one access to this object, assuming accesses arrive Poisson over
  // the execution window: 1 - exp(-rate * interval).
  const double rate = static_cast<double>(traffic.accesses()) / cycles;
  const double p_window =
      1.0 - std::exp(-rate * static_cast<double>(interval_cycles_));
  out.samples_with_access = std::min(
      out.total_samples, rng_.binomial(out.total_samples, p_window));
  // A sample that captured an access trivially "contains" one; keep the
  // estimator consistent under very sparse access streams.
  out.samples_with_access =
      std::max(out.samples_with_access, std::min(out.total_samples,
                                                 out.accesses()));
  // Chaos hook: spurious PEBS hits (mis-attributed samples). Inflates the
  // observed hotness without touching the true traffic, so planners must
  // tolerate noisy profiles gracefully.
  if (fault::FaultInjector& inj = fault::global(); inj.armed()) {
    const std::uint64_t spurious = inj.spurious_samples(out.total_samples);
    out.loads += spurious;
    out.samples_with_access =
        std::min(out.total_samples, out.samples_with_access + spurious);
  }
  return out;
}

}  // namespace tahoe::memsim
