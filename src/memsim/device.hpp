// Memory-device timing models.
//
// A DeviceModel captures the four quantities the paper line's performance
// models depend on: read latency, write latency, read bandwidth and write
// bandwidth. Presets reproduce the NVMDB/Optane characteristics table
// (DRAM, STT-RAM, PCRAM, ReRAM, Optane PM) plus the parametric
// "1/k DRAM bandwidth" and "k x DRAM latency" configurations used by the
// emulation sweeps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memsim/access.hpp"

namespace tahoe::memsim {

struct DeviceModel {
  std::string name;
  double read_lat_s = 0.0;    ///< per-cache-line read latency (seconds)
  double write_lat_s = 0.0;   ///< per-cache-line write latency (seconds)
  double read_bw = 0.0;       ///< sustained read bandwidth (bytes/second)
  double write_bw = 0.0;      ///< sustained write bandwidth (bytes/second)
  std::uint64_t capacity = 0; ///< device capacity in bytes

  /// Seconds of *device channel occupancy* needed to serve the given
  /// main-memory traffic at full bandwidth. This is the "demand" the fluid
  /// simulator shares among concurrent flows.
  double channel_seconds(const MemTraffic& t) const noexcept;

  /// Seconds spent in the serialized latency chain of the traffic: the
  /// dep_frac portion pays full per-access latency back-to-back; the
  /// independent portion is overlapped by hardware memory-level
  /// parallelism (`mlp` outstanding misses).
  double latency_seconds(const MemTraffic& t, double mlp) const noexcept;

  /// Lower-bound duration for this traffic running alone on the device.
  double uncontended_seconds(const MemTraffic& t, double mlp) const noexcept;
};

/// Factory functions for the canonical devices. Capacities are defaults
/// and can be overridden by the caller.
namespace devices {

DeviceModel dram(std::uint64_t capacity);
DeviceModel stt_ram(std::uint64_t capacity);
DeviceModel pcram(std::uint64_t capacity);
DeviceModel reram(std::uint64_t capacity);
DeviceModel optane_pm(std::uint64_t capacity);

/// On-package high-bandwidth memory (HBM2-class): ~3x DRAM bandwidth at
/// slightly higher load-to-use latency, small capacity.
DeviceModel hbm(std::uint64_t capacity);

/// CXL-attached DRAM expander: DRAM-class bandwidth over a link that adds
/// ~100ns of round-trip latency and caps sustained throughput below local
/// DRAM.
DeviceModel cxl_dram(std::uint64_t capacity);

/// NVM emulated as DRAM with bandwidth scaled by `fraction` (e.g. 0.5 for
/// the "1/2 DRAM BW" configuration). Latency equals DRAM latency.
DeviceModel nvm_bw_fraction(const DeviceModel& dram_model, double fraction,
                            std::uint64_t capacity);

/// NVM emulated as DRAM with latency scaled by `multiple` (e.g. 4.0 for
/// the "4x DRAM LAT" configuration). Bandwidth equals DRAM bandwidth.
DeviceModel nvm_lat_multiple(const DeviceModel& dram_model, double multiple,
                             std::uint64_t capacity);

/// All named presets, for the device-characteristics table bench.
std::vector<DeviceModel> all_presets();

}  // namespace devices
}  // namespace tahoe::memsim
