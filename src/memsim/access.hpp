// Shared plain types describing memory traffic, used by the machine model,
// the task runtime, and the Tahoe core. They live in memsim so that the
// dependency graph stays acyclic (task and core both depend on memsim).
#pragma once

#include <cstdint>

namespace tahoe::memsim {

/// Identifies one memory tier of the heterogeneous system. Tiers are
/// ordered fastest-first: tier 0 is the fastest (smallest) device and the
/// last tier is the capacity tier every object can fall back to. The
/// library supports an arbitrary number of tiers; the canonical two-tier
/// configuration names them kDram (fast, small) and kNvm (slow, large).
using DeviceId = std::uint32_t;
/// Alias emphasizing the ordered-hierarchy reading of a device index.
using TierId = DeviceId;
inline constexpr DeviceId kDram = 0;
inline constexpr DeviceId kNvm = 1;

/// Access pattern of one task to one data object, as the *application*
/// produces it (pre-cache). `dep_frac` expresses how serialized the
/// accesses are: 0 for fully independent (streaming) accesses that the
/// memory-level parallelism of the core can overlap, 1 for a fully
/// dependent pointer-chasing chain where every access waits for the
/// previous one.
struct ObjectTraffic {
  std::uint64_t loads = 0;       ///< load instructions touching the object
  std::uint64_t stores = 0;      ///< store instructions touching the object
  std::uint64_t footprint = 0;   ///< bytes of the object the task touches
  double dep_frac = 0.0;         ///< serial-dependence fraction in [0,1]
  double locality = 0.0;         ///< temporal reuse quality in [0,1]
  /// Spatial adjacency: probability that consecutive accesses fall in the
  /// same cache line (7/8 for a sequential double stream — the default —
  /// and ~0 for random gathers / pointer chasing). Same-line neighbours
  /// hit the just-fetched line regardless of cache capacity.
  double spatial = 0.875;

  std::uint64_t accesses() const noexcept { return loads + stores; }
};

/// Main-memory traffic after the cache filter has been applied:
/// what actually reaches a DRAM/NVM device.
struct MemTraffic {
  std::uint64_t read_lines = 0;   ///< cache-line fills (load+store misses)
  std::uint64_t write_lines = 0;  ///< dirty write-backs
  double dep_frac = 0.0;          ///< serialized fraction of the fills

  std::uint64_t lines() const noexcept { return read_lines + write_lines; }

  MemTraffic& operator+=(const MemTraffic& o) noexcept {
    // Combining streams: weight the dependence fraction by line counts.
    const std::uint64_t mine = lines();
    const std::uint64_t total = mine + o.lines();
    if (total > 0) {
      dep_frac = (dep_frac * static_cast<double>(mine) +
                  o.dep_frac * static_cast<double>(o.lines())) /
                 static_cast<double>(total);
    }
    read_lines += o.read_lines;
    write_lines += o.write_lines;
    return *this;
  }
};

}  // namespace tahoe::memsim
