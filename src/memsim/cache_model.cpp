#include "memsim/cache_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/units.hpp"

namespace tahoe::memsim {

MemTraffic CacheModel::filter(const ObjectTraffic& t,
                              std::uint64_t task_total_footprint) const noexcept {
  MemTraffic out;
  out.dep_frac = t.dep_frac;
  if (t.accesses() == 0 || t.footprint == 0) return out;

  const double footprint = static_cast<double>(t.footprint);
  const double total = static_cast<double>(
      std::max<std::uint64_t>(task_total_footprint, t.footprint));
  // Proportional share of LLC capacity for this object.
  const double share = static_cast<double>(llc_bytes) * (footprint / total);

  const double lines_touched =
      std::ceil(footprint / static_cast<double>(kCacheLine));
  const double raw_accesses = static_cast<double>(t.accesses());
  // Collapse spatially adjacent accesses: neighbours within the line just
  // fetched hit unconditionally, independent of cache capacity.
  const double spatial = std::clamp(t.spatial, 0.0, 1.0);
  const double accesses =
      std::max(std::min(lines_touched, raw_accesses),
               raw_accesses * (1.0 - spatial));
  // An object cannot miss more often than it is accessed.
  const double compulsory = std::min(lines_touched, accesses);
  const double reuse = accesses - compulsory;

  const double resident = std::min(1.0, share / footprint);
  const double hit_prob = std::clamp(t.locality, 0.0, 1.0) * resident;
  const double reuse_misses = reuse * (1.0 - hit_prob);

  // Split misses between loads and stores in proportion to the access mix.
  const double store_frac =
      static_cast<double>(t.stores) / raw_accesses;
  const double total_misses = compulsory + reuse_misses;
  const double store_misses = total_misses * store_frac;
  const double load_misses = total_misses - store_misses;

  // Store misses fill the line (read) and later write it back dirty.
  out.read_lines =
      static_cast<std::uint64_t>(std::llround(load_misses + store_misses));
  out.write_lines = static_cast<std::uint64_t>(std::llround(store_misses));
  return out;
}

}  // namespace tahoe::memsim
