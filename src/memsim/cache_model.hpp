// Analytic last-level-cache filter.
//
// The fluid simulator needs, for every (task, data object) pair, the
// main-memory traffic that survives the cache. Trace-driven simulation of
// every access would dominate runtime, so the engine uses a closed-form
// model validated against the reference set-associative simulator
// (cache_sim.hpp) in the test suite:
//
//   line_acc    = accesses collapsed by spatial adjacency (same-line
//                 neighbours of a just-fetched line always hit)
//   compulsory  = footprint / line          (every touched line fills once)
//   reuse       = line_acc - compulsory     (potentially cache-resident)
//   hit_prob    = locality * min(1, share / footprint)
//   read_lines  = compulsory + miss portion of reuse loads + store-miss fills
//   write_lines = dirty lines written back  (store misses)
//
// `share` is the fraction of LLC capacity attributable to this object,
// proportional to its footprint among all objects the task touches — the
// standard proportional-occupancy approximation.
#pragma once

#include <cstdint>

#include "memsim/access.hpp"

namespace tahoe::memsim {

struct CacheModel {
  std::uint64_t llc_bytes = 0;

  /// Filter one object's traffic given the total footprint the task
  /// touches concurrently (for proportional LLC sharing).
  MemTraffic filter(const ObjectTraffic& t,
                    std::uint64_t task_total_footprint) const noexcept;
};

}  // namespace tahoe::memsim
