#include "memsim/cache_sim.hpp"

#include <bit>

#include "common/assert.hpp"

namespace tahoe::memsim {

CacheSim::CacheSim(std::uint64_t capacity_bytes, std::uint32_t associativity,
                   std::uint32_t line_bytes)
    : associativity_(associativity), line_bytes_(line_bytes) {
  TAHOE_REQUIRE(associativity > 0, "associativity must be positive");
  TAHOE_REQUIRE(line_bytes > 0 && std::has_single_bit(line_bytes),
                "line size must be a power of two");
  TAHOE_REQUIRE(capacity_bytes % (static_cast<std::uint64_t>(associativity) *
                                  line_bytes) == 0,
                "capacity must be a multiple of associativity*line");
  sets_ = capacity_bytes /
          (static_cast<std::uint64_t>(associativity) * line_bytes);
  TAHOE_REQUIRE(sets_ > 0, "cache must have at least one set");
  ways_.resize(sets_ * associativity_);
}

bool CacheSim::access(std::uint64_t address, bool is_store) {
  ++stats_.accesses;
  ++tick_;
  const std::uint64_t line = address / line_bytes_;
  const std::uint64_t set = line % sets_;
  const std::uint64_t tag = line / sets_;
  Way* base = &ways_[set * associativity_];

  // Hit path.
  for (std::uint32_t w = 0; w < associativity_; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = tick_;
      way.dirty = way.dirty || is_store;
      ++stats_.hits;
      return true;
    }
  }

  // Miss: find invalid way or evict true-LRU victim.
  Way* victim = base;
  for (std::uint32_t w = 0; w < associativity_; ++w) {
    Way& way = base[w];
    if (!way.valid) {
      victim = &way;
      break;
    }
    if (way.lru < victim->lru) victim = &way;
  }
  if (victim->valid && victim->dirty) ++stats_.writebacks;
  victim->valid = true;
  victim->dirty = is_store;
  victim->tag = tag;
  victim->lru = tick_;
  if (is_store) {
    ++stats_.store_misses;
  } else {
    ++stats_.load_misses;
  }
  return false;
}

void CacheSim::flush() {
  for (Way& way : ways_) {
    if (way.valid && way.dirty) ++stats_.writebacks;
    way = Way{};
  }
}

}  // namespace tahoe::memsim
