// Hardware-performance-counter sampling emulation (PEBS/IBS style).
//
// The Tahoe core never sees ground-truth access counts. It sees what a
// sampling counter configured at one sample per `interval_cycles` would
// deliver: a Binomial(n, 1/interval) subset of the true loads/stores, plus
// the fraction of samples that contained at least one access to the object
// (the denominator of the paper line's Eq. (1) bandwidth estimator). The
// constant factors CF_bw / CF_lat calibrated offline absorb the resulting
// systematic underestimation, exactly as in the paper.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "memsim/access.hpp"

namespace tahoe::memsim {

/// What the counters report for one (task-type, data-object) pair during
/// one profiled execution.
struct SampledCounts {
  std::uint64_t loads = 0;               ///< sampled load events
  std::uint64_t stores = 0;              ///< sampled store events
  std::uint64_t samples_with_access = 0; ///< samples containing >=1 access
  std::uint64_t total_samples = 0;       ///< samples taken over the window

  std::uint64_t accesses() const noexcept { return loads + stores; }

  /// Estimated true access count (sampled count scaled by the interval).
  double est_loads(std::uint64_t interval) const noexcept {
    return static_cast<double>(loads) * static_cast<double>(interval);
  }
  double est_stores(std::uint64_t interval) const noexcept {
    return static_cast<double>(stores) * static_cast<double>(interval);
  }
  /// Fraction of execution time with accesses to the object (Eq. (1)).
  double active_fraction() const noexcept {
    if (total_samples == 0) return 0.0;
    return static_cast<double>(samples_with_access) /
           static_cast<double>(total_samples);
  }
};

class Sampler {
 public:
  /// @param interval_cycles sample period (the evaluation uses 1000).
  /// @param cpu_hz          core clock used to convert time to cycles.
  /// @param seed            seed for the deterministic sampling stream.
  Sampler(std::uint64_t interval_cycles, double cpu_hz, std::uint64_t seed);

  /// Emulate sampling of `traffic` spread over `duration_s` seconds of
  /// execution. Deterministic: identical inputs on the same Sampler state
  /// sequence give identical outputs.
  SampledCounts sample(const ObjectTraffic& traffic, double duration_s);

  std::uint64_t interval() const noexcept { return interval_cycles_; }
  double cpu_hz() const noexcept { return cpu_hz_; }

 private:
  std::uint64_t interval_cycles_;
  double cpu_hz_;
  Rng rng_;
};

}  // namespace tahoe::memsim
