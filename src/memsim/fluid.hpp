// Fluid (processor-sharing) discrete-event simulator of memory channels.
//
// Every unit of concurrent activity — a running task's main-memory stream,
// a helper-thread migration copy — is a *flow*. A flow owns:
//
//   * one private "serial" component (compute time plus the serialized
//     latency chain of dependent accesses), draining at rate 1, and
//   * one component per memory device, sized in channel-seconds (the time
//     the device would need to serve the flow's traffic at full bandwidth).
//
// Each device is a processor-sharing server: its unit capacity is split
// equally among all flows that still have demand on it. A flow completes
// when all of its components have drained. This is the classical fluid
// approximation of bandwidth contention; it reproduces the behaviours the
// paper's evaluation depends on — slowdown under concurrent traffic,
// migration copies stealing bandwidth from computation, and latency-bound
// flows that are insensitive to contention.
//
// The engine is interactive: the caller (the schedule executor) starts
// flows at the current simulated time and steps to the next completion, so
// task-dependence-driven arrivals are expressed naturally.
//
// Two engines implement these semantics:
//
//   * detail::ScanFluidCore — the original O(active flows × devices)
//     per-event scan. Its floating-point arithmetic is pinned byte-for-byte
//     by the golden report JSON in tests/golden/, so it is kept verbatim.
//     ReferenceFluidSim exposes it directly as the oracle for the
//     differential equivalence suite.
//
//   * The indexed engine inside FluidSim — per-device active-flow counts
//     with incrementally maintained processor-sharing rates, a min-heap of
//     component finish times per device (keyed in the device's *virtual
//     service time*, so entries never need rekeying when rates change),
//     and lazy draining: each event advances one virtual clock per device
//     instead of walking every flow. Event cost is O(devices + log flows)
//     instead of O(flows × devices).
//
// FluidSim runs the exact scan core while few flows are active (every
// paper workload and golden config lives here — their timings stay
// bit-identical) and switches to the indexed engine once the active count
// exceeds Tuning::lazy_threshold, where the scan is quadratic and the
// indexed engine tracks it within 1e-9 (bounded by the oracle suite).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace tahoe::memsim {

using FlowId = std::uint64_t;

struct FlowSpec {
  /// Private component: drains at rate 1 regardless of contention.
  double serial_seconds = 0.0;
  /// demands[d] = channel-seconds required on device d.
  std::vector<double> device_seconds;
  /// Opaque caller tag (task id, copy id, ...).
  std::uint64_t tag = 0;
};

struct FlowCompletion {
  FlowId id = 0;
  std::uint64_t tag = 0;
  double time = 0.0;        ///< simulated completion time
  double start_time = 0.0;  ///< when the flow was started
};

namespace detail {

/// The original per-event full-scan engine (see file comment). All members
/// are open: ReferenceFluidSim wraps it unchanged, and FluidSim drains it
/// into the indexed engine when crossing the lazy threshold.
struct ScanFluidCore {
  struct Flow {
    double serial_left = 0.0;
    std::vector<double> device_left;
    std::uint64_t tag = 0;
    double start_time = 0.0;
  };

  explicit ScanFluidCore(std::size_t num_devices);

  FlowId start_flow(FlowSpec spec, FlowId id);
  std::optional<FlowCompletion> step();
  double advance(double dt);

  /// Drain all components by `dt` at current rates; updates active counts.
  void drain(double dt);
  /// Earliest time-to-next-component-finish at current rates (infinity if
  /// nothing is draining).
  double next_component_dt() const;
  /// Move flows whose components are all drained to the ready queue.
  void harvest_completions();

  double now_ = 0.0;
  /// Active flows only, ordered by id; completed flows are compacted away.
  std::vector<std::pair<FlowId, Flow>> flows_;
  std::vector<std::uint32_t> active_on_device_;
  std::vector<double> busy_seconds_;
  std::vector<FlowCompletion> ready_;  // FIFO of pending completions
  std::size_t ready_head_ = 0;
  std::size_t active_count_ = 0;
};

}  // namespace detail

/// The pre-rebuild simulator, byte-for-byte: the oracle the differential
/// equivalence suite (tests/test_fluid_equivalence.cpp) checks FluidSim
/// against, and the baseline bench_sim_throughput measures speedups over.
class ReferenceFluidSim {
 public:
  explicit ReferenceFluidSim(std::size_t num_devices);

  double now() const noexcept { return core_.now_; }
  std::size_t num_devices() const noexcept {
    return core_.active_on_device_.size();
  }

  /// Start a flow at the current simulated time.
  FlowId start_flow(FlowSpec spec);

  /// Number of flows not yet completed.
  std::size_t active_flows() const noexcept { return core_.active_count_; }

  /// Advance simulated time to the next flow completion and return it.
  /// Returns nullopt when no flows are active.
  std::optional<FlowCompletion> step() { return core_.step(); }

  /// Advance simulated time by exactly `dt` (or to the next completion,
  /// whichever is earlier) without consuming a completion. Returns the
  /// amount actually advanced.
  double advance(double dt) { return core_.advance(dt); }

  /// Total channel-seconds ever served per device (utilization metric).
  double device_busy_seconds(std::size_t dev) const;

 private:
  detail::ScanFluidCore core_;
  FlowId next_id_ = 0;
};

class FluidSim {
 public:
  struct Tuning {
    /// Switch from the exact scan core to the indexed engine when more
    /// than this many flows are active. 0 forces the indexed engine from
    /// the first flow (used by the equivalence suite); the default keeps
    /// every paper-scale run — and hence the golden reports — on the
    /// bit-pinned scan arithmetic, where the flat scan also happens to be
    /// faster than heap maintenance.
    std::size_t lazy_threshold = 64;
  };

  explicit FluidSim(std::size_t num_devices);
  FluidSim(std::size_t num_devices, Tuning tuning);

  double now() const noexcept { return lazy_ ? now_ : core_.now_; }
  std::size_t num_devices() const noexcept { return busy_seconds().size(); }

  /// Start a flow at the current simulated time. A spec whose components
  /// are all below the drain epsilon completes immediately at now():
  /// device active counts (and thus sharing rates) are never touched.
  FlowId start_flow(FlowSpec spec);

  /// Number of flows not yet completed.
  std::size_t active_flows() const noexcept {
    return lazy_ ? active_count_ : core_.active_count_;
  }

  /// Advance simulated time to the next flow completion and return it.
  /// Returns nullopt when no flows are active.
  std::optional<FlowCompletion> step();

  /// Advance simulated time by exactly `dt` (or to the next completion,
  /// whichever is earlier) without consuming a completion. Used to model
  /// timed arrivals. Returns the amount actually advanced.
  double advance(double dt);

  /// Total channel-seconds ever served per device (utilization metric).
  double device_busy_seconds(std::size_t dev) const;

  /// True once the indexed engine has taken over (sticky; test hook).
  bool indexed() const noexcept { return lazy_; }

 private:
  /// One (finish key, flow slot) heap entry. Device heaps key on the
  /// device's virtual service time at which the component drains; the
  /// serial heap keys on absolute simulated time. Keys are fixed at flow
  /// start, so rate changes never rekey the heaps.
  struct HeapEntry {
    double key = 0.0;
    std::uint32_t slot = 0;
  };

  struct LazyFlow {
    FlowId id = 0;
    std::uint64_t tag = 0;
    double start_time = 0.0;
    std::uint32_t components_left = 0;
  };

  /// Where the next event's dt was found (device index, or the serial
  /// heap, or nothing active).
  struct NextEvent {
    double dt = 0.0;
    std::size_t device = 0;  ///< valid when source == Source::Device
    enum class Source { None, Serial, Device } source = Source::None;
  };

  void switch_to_lazy();
  FlowId lazy_start_flow(const FlowSpec& spec);
  NextEvent lazy_next_event() const;
  /// Advance the virtual clocks by `dt` and harvest every component that
  /// drains, force-popping `ev`'s entry (the one that defined a full-event
  /// dt) so floating-point rounding can never stall progress.
  void lazy_advance_by(double dt, const NextEvent* ev);
  std::optional<FlowCompletion> lazy_step();
  double lazy_advance(double dt);
  void component_done(std::uint32_t slot);
  std::uint32_t alloc_slot();

  Tuning tuning_;

  // Exact engine (active until the threshold crossing).
  detail::ScanFluidCore core_;

  // Indexed engine state (populated by switch_to_lazy).
  bool lazy_ = false;
  double now_ = 0.0;
  std::size_t active_count_ = 0;
  std::vector<double> busy_seconds_lazy_;
  std::vector<std::uint32_t> active_on_device_;  ///< per-device flow count
  std::vector<double> rate_;       ///< 1 / active count; 0 when idle
  std::vector<double> virtual_;    ///< per-device served-seconds-per-flow clock
  std::vector<std::vector<HeapEntry>> device_heap_;
  std::vector<HeapEntry> serial_heap_;
  std::vector<LazyFlow> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<FlowCompletion> ready_;
  std::size_t ready_head_ = 0;
  /// Flows whose last component drained in the current event; sorted by
  /// flow id before publication so simultaneous completions are emitted in
  /// the same order the scan core's id-ordered harvest produces.
  std::vector<std::uint32_t> finished_this_event_;

  FlowId next_id_ = 0;

  const std::vector<double>& busy_seconds() const noexcept {
    return lazy_ ? busy_seconds_lazy_ : core_.busy_seconds_;
  }
};

}  // namespace tahoe::memsim
