// Fluid (processor-sharing) discrete-event simulator of memory channels.
//
// Every unit of concurrent activity — a running task's main-memory stream,
// a helper-thread migration copy — is a *flow*. A flow owns:
//
//   * one private "serial" component (compute time plus the serialized
//     latency chain of dependent accesses), draining at rate 1, and
//   * one component per memory device, sized in channel-seconds (the time
//     the device would need to serve the flow's traffic at full bandwidth).
//
// Each device is a processor-sharing server: its unit capacity is split
// equally among all flows that still have demand on it. A flow completes
// when all of its components have drained. This is the classical fluid
// approximation of bandwidth contention; it reproduces the behaviours the
// paper's evaluation depends on — slowdown under concurrent traffic,
// migration copies stealing bandwidth from computation, and latency-bound
// flows that are insensitive to contention.
//
// The engine is interactive: the caller (the schedule executor) starts
// flows at the current simulated time and steps to the next completion, so
// task-dependence-driven arrivals are expressed naturally.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace tahoe::memsim {

using FlowId = std::uint64_t;

struct FlowSpec {
  /// Private component: drains at rate 1 regardless of contention.
  double serial_seconds = 0.0;
  /// demands[d] = channel-seconds required on device d.
  std::vector<double> device_seconds;
  /// Opaque caller tag (task id, copy id, ...).
  std::uint64_t tag = 0;
};

struct FlowCompletion {
  FlowId id = 0;
  std::uint64_t tag = 0;
  double time = 0.0;        ///< simulated completion time
  double start_time = 0.0;  ///< when the flow was started
};

class FluidSim {
 public:
  explicit FluidSim(std::size_t num_devices);

  double now() const noexcept { return now_; }
  std::size_t num_devices() const noexcept { return active_on_device_.size(); }

  /// Start a flow at the current simulated time.
  FlowId start_flow(FlowSpec spec);

  /// Number of flows not yet completed.
  std::size_t active_flows() const noexcept { return active_count_; }

  /// Advance simulated time to the next flow completion and return it.
  /// Returns nullopt when no flows are active.
  std::optional<FlowCompletion> step();

  /// Advance simulated time by exactly `dt` (or to the next completion,
  /// whichever is earlier) without consuming a completion. Used to model
  /// timed arrivals. Returns the amount actually advanced.
  double advance(double dt);

  /// Total channel-seconds ever served per device (utilization metric).
  double device_busy_seconds(std::size_t dev) const;

 private:
  struct Flow {
    double serial_left = 0.0;
    std::vector<double> device_left;
    std::uint64_t tag = 0;
    double start_time = 0.0;
  };

  /// Drain all components by `dt` at current rates; updates active counts.
  void drain(double dt);
  /// Earliest time-to-next-component-finish at current rates (infinity if
  /// nothing is draining).
  double next_component_dt() const;
  /// Move flows whose components are all drained to the ready queue.
  void harvest_completions();

  double now_ = 0.0;
  /// Active flows only, ordered by id; completed flows are compacted away.
  std::vector<std::pair<FlowId, Flow>> flows_;
  std::vector<std::uint32_t> active_on_device_;
  std::vector<double> busy_seconds_;
  std::vector<FlowCompletion> ready_;  // FIFO of pending completions
  std::size_t ready_head_ = 0;
  std::size_t active_count_ = 0;
  FlowId next_id_ = 0;
};

}  // namespace tahoe::memsim
